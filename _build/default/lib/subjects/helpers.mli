(** Shared lexing helpers for the instrumented subject parsers. Every
    helper routes character examination through the tracked comparison
    operations so the instrumentation sees each decision. *)

module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site

val skip_set :
  Ctx.t -> Site.t -> label:string -> Pdf_util.Charset.t -> unit
(** Consume characters while they belong to the set. Stops at EOF. *)

val read_set :
  Ctx.t -> Site.t -> label:string -> Pdf_util.Charset.t -> Pdf_taint.Tstring.t
(** Consume and collect characters while they belong to the set. *)

val expect : Ctx.t -> Site.t -> char -> unit
(** Consume the next character, which must equal the expectation;
    otherwise reject (also on EOF). *)

val peek_is : Ctx.t -> Site.t -> char -> bool
(** Tracked test of the next character without consuming it; false at
    EOF (recording the EOF access). *)

val eat_if : Ctx.t -> Site.t -> char -> bool
(** [peek_is] and consume on success. *)

val whitespace : Pdf_util.Charset.t
(** Space, tab, CR, LF. *)
