lib/tables/analysis.mli: Cfg Pdf_util
