lib/eval/report.ml: Experiment Format List Paper_data Pdf_instr Pdf_subjects Pdf_util Printf String Token_report Tool
