(** Input-coverage measurement (§5.3): which of a subject's tokens occur
    in the valid inputs a tool generated, grouped by token length. *)

val found_tags : Pdf_subjects.Subject.t -> string list -> string list
(** [found_tags subject valid_inputs] is the sorted set of inventory tags
    occurring in the valid inputs (tags outside the inventory are
    dropped). *)

val by_length : Pdf_subjects.Subject.t -> string list -> (int * int * int) list
(** [by_length subject tags] groups an inventory against found tags:
    [(length, found, total)] per distinct token length, ascending. *)

val share :
  min_len:int -> max_len:int ->
  (Pdf_subjects.Subject.t * string list) list ->
  float
(** [share ~min_len ~max_len per_subject] is the percentage of all
    inventory tokens with length in [min_len, max_len] (across the given
    subjects) that were found — the §5.3 headline aggregation. *)
