type staged = {
  oc : out_channel;
  tmp : string;
  path : string;
  mutable open_ : bool;
}

let temp_name path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

let stage path =
  let tmp = temp_name path in
  { oc = open_out_bin tmp; tmp; path; open_ = true }

let channel s = s.oc

let commit s =
  if s.open_ then begin
    s.open_ <- false;
    close_out s.oc;
    Sys.rename s.tmp s.path
  end

let abort s =
  if s.open_ then begin
    s.open_ <- false;
    (try close_out s.oc with Sys_error _ -> ());
    (try Sys.remove s.tmp with Sys_error _ -> ())
  end

let with_out path f =
  let s = stage path in
  match f s.oc with
  | v ->
      commit s;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      abort s;
      Printexc.raise_with_backtrace e bt

let write_string path contents =
  with_out path (fun oc -> output_string oc contents)

let read_string path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
