module Vec = Pdf_util.Vec

type crash = { exn : string; site : int; detail : string }
type verdict = Accepted | Rejected of string | Hang | Crash of crash

(* First-occurrence order of outcomes: a compact path identity that is
   insensitive to loop iteration counts ("non-duplicate branches").
   Shared by {!path_hash} and the crash-site hash so a crash keeps the
   same identity whether reached by full execution or a cache resume. *)
let fnv_touched touched =
  let h = ref 0x811c9dc5 in
  Array.iter (fun oid -> h := (!h lxor oid) * 0x0100_0193 land max_int) touched;
  !h

let crash_of ctx e =
  {
    exn = Printexc.exn_slot_name e;
    site = fnv_touched (Ctx.touched ctx);
    detail = Printexc.to_string e;
  }

let crash_id c = Printf.sprintf "%s@%08x" c.exn c.site

type run = {
  input : string;
  verdict : verdict;
  comparisons : Comparison.t array;
  coverage : Coverage.t;
  trace : int array;
  touched : int array;
  eof_access : bool;
  max_depth : int;
  frames : Frame.event array;
}

let package ctx input verdict =
  {
    input;
    verdict;
    comparisons = Ctx.comparisons_array ctx;
    coverage = Ctx.coverage ctx;
    trace = Ctx.trace ctx;
    touched = Ctx.touched ctx;
    eof_access = Ctx.eof_access ctx;
    max_depth = Ctx.max_depth ctx;
    frames = Ctx.frames ctx;
  }

let exec ~registry ~parse ?fuel ?track_comparisons ?track_trace ?track_frames
    input =
  let ctx =
    Ctx.make ~registry ?fuel ?track_comparisons ?track_trace ?track_frames input
  in
  let verdict =
    match parse ctx with
    | () -> Accepted
    | exception Ctx.Reject reason -> Rejected reason
    | exception Ctx.Out_of_fuel -> Hang
    | exception e -> Crash (crash_of ctx e)
  in
  package ctx input verdict

(* {1 Incremental (journaled) execution}

   A machine-form subject reads the input only through explicit
   {!Machine.step}s, so the driver can observe every read boundary — the
   instant the parser is about to look at input position [p] for the
   first time. At each boundary it journals the pending step together
   with an O(1) {!Ctx.mark}. Because the context's recording buffers are
   append-only, the buffer prefixes below a mark's watermarks are still
   intact when the run finishes; materialising a snapshot is therefore
   just pairing the journaled step/mark with the run's packaged arrays —
   no copying. Resuming builds a context via {!Ctx.restore}
   (copy-on-write buffer prefixes) and drives the saved step against it. *)

type boundary = { b_pos : int; b_step : Machine.step; b_mark : Ctx.mark }

(* Two journal representations share one interface:

   - [Boxed] is what {!exec_machine} and {!resume} record: one boundary
     record per position, marks boxed at journaling time.
   - [Replay] is what the compiled tier's {!exec_compiled} returns, and
     it records {e nothing} during the run beyond a high-water read
     position: execution is deterministic and multi-shot, so the
     suspension at position [p] can be rebuilt on demand by re-driving
     the machine over the prefix and capturing the step about to read
     [p] for the first time. The observation state at that instant is
     identical to the original run's, so the snapshot borrows the
     original run's packaged arrays exactly as a journaled boundary
     would. Materialisation costs O(p) — but the fuzzer materialises at
     most two snapshots per execution, and (with {!Cache.mem} gating)
     only for prefixes not already cached, so the steady-state compiled
     hot loop pays nothing at all for resumability. *)
type journal =
  | Boxed of {
      j_registry : Site.registry;
      j_track_comparisons : bool;
      j_track_trace : bool;
      j_track_frames : bool;
      j_boundaries : boundary array;  (* sorted by strictly increasing b_pos *)
      j_run : run;
    }
  | Replay of {
      r_arena : arena;
      r_machine : Machine.recognizer;
      r_input : string;
      r_high_water : int;  (* positions 0..hw-1 were read *)
      r_run : run;
    }

and arena = {
  a_registry : Site.registry;
  a_fuel : int;
  a_track_comparisons : bool;
  a_track_trace : bool;
  a_track_frames : bool;
  mutable a_ctx : Ctx.t option;
}

let arena_ctx a input =
  match a.a_ctx with
  | Some ctx ->
    Ctx.rearm ctx ~fuel:a.a_fuel input;
    ctx
  | None ->
    let ctx =
      Ctx.make ~registry:a.a_registry ~fuel:a.a_fuel
        ~track_comparisons:a.a_track_comparisons ~track_trace:a.a_track_trace
        ~track_frames:a.a_track_frames ~pretaint:true input
    in
    a.a_ctx <- Some ctx;
    ctx

type snapshot = {
  s_pos : int;
  s_step : Machine.step;
  s_mark : Ctx.mark;
  s_registry : Site.registry;
  s_track_comparisons : bool;
  s_track_trace : bool;
  s_track_frames : bool;
  s_comparisons : Comparison.t array;
  s_touched : int array;
  s_trace : int array;
  s_frames : Frame.event array;
}

let snapshot_pos s = s.s_pos

let dummy_mark =
  {
    Ctx.m_comparisons = 0;
    m_touched = 0;
    m_trace = 0;
    m_frames = 0;
    m_stack = 0;
    m_max_stack = 0;
    m_fuel = 0;
    m_eof_access = false;
  }

let dummy_boundary = { b_pos = 0; b_step = Machine.Done; b_mark = dummy_mark }

(* Drive [step0] to completion, journaling the pending step at every
   position >= [first_boundary] just before it is first observed. The
   cursor only ever advances one position per [Next], so positions are
   read in dense increasing order and "first read at [p]" is exactly the
   read step encountered when [p] passes the high-water mark. *)
let drive_journaled ctx step0 ~journal ~first_boundary =
  let next_boundary = ref first_boundary in
  let note step =
    let p = Ctx.pos ctx in
    if p >= !next_boundary then begin
      Vec.push journal { b_pos = p; b_step = step; b_mark = Ctx.mark ctx };
      next_boundary := p + 1
    end
  in
  let rec loop step =
    match step with
    | Machine.Done -> ()
    | Machine.Peek k ->
      note step;
      loop (k (Ctx.peek ctx) ctx)
    | Machine.Next k ->
      note step;
      loop (k (Ctx.next ctx) ctx)
  in
  loop step0

let exec_machine ~registry ~(machine : Machine.recognizer) ?(fuel = 100_000)
    ?(track_comparisons = true) ?(track_trace = false) ?(track_frames = false)
    input =
  let ctx =
    Ctx.make ~registry ~fuel ~track_comparisons ~track_trace ~track_frames input
  in
  let journal = Vec.create dummy_boundary in
  let verdict =
    match drive_journaled ctx (machine ctx) ~journal ~first_boundary:0 with
    | () -> Accepted
    | exception Ctx.Reject reason -> Rejected reason
    | exception Ctx.Out_of_fuel -> Hang
    | exception e -> Crash (crash_of ctx e)
  in
  let run = package ctx input verdict in
  ( run,
    Boxed
      {
        j_registry = registry;
        j_track_comparisons = track_comparisons;
        j_track_trace = track_trace;
        j_track_frames = track_frames;
        j_boundaries = Vec.to_array journal;
        j_run = run;
      } )

let snapshot_at journal pos =
  match journal with
  | Boxed j ->
    let bs = j.j_boundaries in
    (* Binary search: positions are strictly increasing. *)
    let rec find lo hi =
      if lo >= hi then None
      else
        let mid = (lo + hi) / 2 in
        let b = Array.unsafe_get bs mid in
        if b.b_pos = pos then Some b
        else if b.b_pos < pos then find (mid + 1) hi
        else find lo mid
    in
    (match find 0 (Array.length bs) with
     | None -> None
     | Some b ->
       Some
         {
           s_pos = b.b_pos;
           s_step = b.b_step;
           s_mark = b.b_mark;
           s_registry = j.j_registry;
           s_track_comparisons = j.j_track_comparisons;
           s_track_trace = j.j_track_trace;
           s_track_frames = j.j_track_frames;
           s_comparisons = j.j_run.comparisons;
           s_touched = j.j_run.touched;
           s_trace = j.j_run.trace;
           s_frames = j.j_run.frames;
         })
  | Replay r ->
    let a = r.r_arena in
    if pos < 0 || pos >= r.r_high_water then None
    else (
      (* Re-drive the machine over the prefix and capture the pending
         step at the first read of [pos]. Execution is deterministic, so
         the replayed observation state equals the original run's at that
         boundary — the snapshot's arrays can come from the packaged
         original run, just like a journaled boundary's do. The replay
         runs in the arena's recycled context (the previous run is fully
         packaged; its context state is dead) and is abandoned mid-parse
         — the next execution rearms. *)
      let ctx = arena_ctx a r.r_input in
      let capture = ref None in
      let hw = ref 0 in
      let rec loop step =
        match step with
        | Machine.Done -> ()
        | Machine.Peek k ->
          let p = Ctx.pos ctx in
          if p >= !hw then
            if p = pos then capture := Some step
            else begin
              hw := p + 1;
              loop (k (Ctx.peek ctx) ctx)
            end
          else loop (k (Ctx.peek ctx) ctx)
        | Machine.Next k ->
          let p = Ctx.pos ctx in
          if p >= !hw then
            if p = pos then capture := Some step
            else begin
              hw := p + 1;
              loop (k (Ctx.next ctx) ctx)
            end
          else loop (k (Ctx.next ctx) ctx)
      in
      (match loop (r.r_machine ctx) with
       | () | (exception Ctx.Reject _) | (exception Ctx.Out_of_fuel) -> ()
       | exception _ -> ());
      match !capture with
      | None -> None
      | Some step ->
        Some
          {
            s_pos = pos;
            s_step = step;
            s_mark = Ctx.mark ctx;
            s_registry = a.a_registry;
            s_track_comparisons = a.a_track_comparisons;
            s_track_trace = a.a_track_trace;
            s_track_frames = a.a_track_frames;
            s_comparisons = r.r_run.comparisons;
            s_touched = r.r_run.touched;
            s_trace = r.r_run.trace;
            s_frames = r.r_run.frames;
          })

let resume (snap : snapshot) input =
  if String.length input < snap.s_pos then
    invalid_arg "Runner.resume: input shorter than the snapshot's prefix";
  let ctx =
    Ctx.restore ~registry:snap.s_registry ~mark:snap.s_mark ~cursor:snap.s_pos
      ~comparisons:snap.s_comparisons ~touched:snap.s_touched
      ~trace:snap.s_trace ~frames:snap.s_frames
      ~track_comparisons:snap.s_track_comparisons
      ~track_trace:snap.s_track_trace ~track_frames:snap.s_track_frames input
  in
  let journal = Vec.create dummy_boundary in
  let verdict =
    (* The pending step reads position [s_pos], whose prefix is already
       cached under the key that found this snapshot — journal only the
       positions beyond it. *)
    match
      drive_journaled ctx snap.s_step ~journal ~first_boundary:(snap.s_pos + 1)
    with
    | () -> Accepted
    | exception Ctx.Reject reason -> Rejected reason
    | exception Ctx.Out_of_fuel -> Hang
    | exception e -> Crash (crash_of ctx e)
  in
  let run = package ctx input verdict in
  ( run,
    Boxed
      {
        j_registry = snap.s_registry;
        j_track_comparisons = snap.s_track_comparisons;
        j_track_trace = snap.s_track_trace;
        j_track_frames = snap.s_track_frames;
        j_boundaries = Vec.to_array journal;
        j_run = run;
      } )

(* {1 Execution arenas}

   The compiled tier executes the same recognizer millions of times, and
   profiles show a visible share of its per-exec cost is just setting up
   a fresh context: allocating the recording Vecs and the coverage
   presence map. An arena owns one context and rearms it between runs
   ({!Ctx.rearm} clears buffers but keeps their grown capacity), so a
   steady-state execution allocates only what the run itself records.

   Reuse is safe because nothing a run hands out aliases the arena's
   context: [package] copies every buffer out ([Vec.to_array] is an
   [Array.sub]), and resumed (restored) contexts are created per-resume
   by {!resume}, never taken from an arena. A [Replay] journal keeps a
   reference to its arena only to reuse the recycled context for replay;
   it owns everything else it needs (machine, input, high-water mark,
   packaged run), so it never goes stale. *)

let arena ~registry ?(fuel = 100_000) ?(track_comparisons = true)
    ?(track_trace = false) ?(track_frames = false) () =
  {
    a_registry = registry;
    a_fuel = fuel;
    a_track_comparisons = track_comparisons;
    a_track_trace = track_trace;
    a_track_frames = track_frames;
    a_ctx = None;
  }

(* High-water drive loop: the only journaling the compiled tier does per
   run is remembering how far the parser read — an int compare and (on
   the frontier) an int store per step. Everything else a snapshot needs
   is rebuilt on demand by {!snapshot_at}'s replay. *)
let exec_compiled a (machine : Machine.recognizer) input =
  let ctx = arena_ctx a input in
  let hw = ref 0 in
  let rec loop step =
    match step with
    | Machine.Done -> ()
    | Machine.Peek k ->
      let p = Ctx.pos ctx in
      if p >= !hw then hw := p + 1;
      loop (k (Ctx.peek ctx) ctx)
    | Machine.Next k ->
      let p = Ctx.pos ctx in
      if p >= !hw then hw := p + 1;
      loop (k (Ctx.next ctx) ctx)
  in
  let verdict =
    match loop (machine ctx) with
    | () -> Accepted
    | exception Ctx.Reject reason -> Rejected reason
    | exception Ctx.Out_of_fuel -> Hang
    | exception e -> Crash (crash_of ctx e)
  in
  let run = package ctx input verdict in
  ( run,
    Replay
      {
        r_arena = a;
        r_machine = machine;
        r_input = input;
        r_high_water = !hw;
        r_run = run;
      } )

(* Journal-free variant for the non-incremental path: drive the machine
   directly, skipping even the boundary bookkeeping. *)
let exec_staged a (machine : Machine.recognizer) input =
  let ctx = arena_ctx a input in
  let verdict =
    match Machine.run ctx machine with
    | () -> Accepted
    | exception Ctx.Reject reason -> Rejected reason
    | exception Ctx.Out_of_fuel -> Hang
    | exception e -> Crash (crash_of ctx e)
  in
  package ctx input verdict

(* {1 Bounded LRU prefix cache}

   Keys are input prefixes, but the hot-path lookup is always "the first
   [len] characters of this input" — and materialising that prefix as a
   string per execution was two of the fuzzer's three per-exec
   allocations. So the table is keyed by an FNV-1a hash computed over
   the range in place ({!Pdf_util.Fnv}), with small collision buckets
   verified by in-place character comparison against the (string, len)
   pair. Full-string [find]/[mem]/[remove] are the prefix variants at
   [len = length key]. *)

module Cache = struct
  module Fnv = Pdf_util.Fnv

  type stats = {
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
    mutable chars_saved : int;
  }

  type node = {
    key : string;
    hash : int;  (* Fnv.string key, cached for bucket maintenance *)
    mutable snap : snapshot;
    mutable prev : node option;  (* towards most-recent *)
    mutable next : node option;  (* towards least-recent *)
  }

  type t = {
    bound : int;
    table : (int, node list) Hashtbl.t;  (* hash -> collision bucket *)
    mutable count : int;
    mutable head : node option;  (* most recently used *)
    mutable tail : node option;  (* least recently used *)
    stats : stats;
  }

  let create ?(bound = 4096) () =
    {
      bound = max 1 bound;
      table = Hashtbl.create 256;
      count = 0;
      head = None;
      tail = None;
      stats = { hits = 0; misses = 0; evictions = 0; chars_saved = 0 };
    }

  let stats t = t.stats
  let length t = t.count

  (* Does [node.key] equal the first [len] characters of [s]? *)
  let key_matches node s len =
    String.length node.key = len
    &&
    let k = node.key in
    (* [while] over a ref rather than a local [let rec]: the probe runs
       per bucket node on every lookup, and the captured-variable
       closure would be allocated each time. *)
    let i = ref 0 in
    while !i < len && String.unsafe_get k !i = String.unsafe_get s !i do
      incr i
    done;
    !i >= len

  let rec bucket_find bucket s len =
    match bucket with
    | [] -> None
    | n :: rest -> if key_matches n s len then Some n else bucket_find rest s len

  let find_node t s len =
    (* Exception-style lookup: this probe runs several times per
       execution, and [find_opt]'s [Some] wrapper is pure garbage. *)
    match Hashtbl.find t.table (Fnv.prefix s len) with
    | bucket -> bucket_find bucket s len
    | exception Not_found -> None

  (* No recency update, no counter traffic: this is the cheap guard the
     fuzzer uses to decide whether materialising a snapshot (an O(prefix)
     replay for compiled journals) is worth it at all. *)
  let mem_prefix t s ~len = find_node t s len <> None
  let mem t key = mem_prefix t key ~len:(String.length key)

  let unlink t node =
    (match node.prev with
     | Some p -> p.next <- node.next
     | None -> t.head <- node.next);
    (match node.next with
     | Some n -> n.prev <- node.prev
     | None -> t.tail <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front t node =
    node.next <- t.head;
    (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
    t.head <- Some node

  let drop_from_bucket t node =
    match Hashtbl.find_opt t.table node.hash with
    | None -> ()
    | Some bucket ->
      (match List.filter (fun n -> n != node) bucket with
       | [] -> Hashtbl.remove t.table node.hash
       | rest -> Hashtbl.replace t.table node.hash rest);
      t.count <- t.count - 1

  let find_prefix t s ~len =
    match find_node t s len with
    | None ->
      t.stats.misses <- t.stats.misses + 1;
      None
    | Some node ->
      t.stats.hits <- t.stats.hits + 1;
      t.stats.chars_saved <- t.stats.chars_saved + len;
      if t.head != Some node then begin
        unlink t node;
        push_front t node
      end;
      Some node.snap

  let find t key = find_prefix t key ~len:(String.length key)

  let store t key snap =
    let len = String.length key in
    if find_node t key len = None then begin
      if t.count >= t.bound then begin
        match t.tail with
        | None -> ()
        | Some lru ->
          unlink t lru;
          drop_from_bucket t lru;
          t.stats.evictions <- t.stats.evictions + 1
      end;
      let hash = Fnv.prefix key len in
      let node = { key; hash; snap; prev = None; next = None } in
      let bucket =
        match Hashtbl.find_opt t.table hash with Some b -> b | None -> []
      in
      Hashtbl.replace t.table hash (node :: bucket);
      t.count <- t.count + 1;
      push_front t node
    end

  let remove_prefix t s ~len =
    match find_node t s len with
    | None -> ()
    | Some node ->
      unlink t node;
      drop_from_bucket t node

  let remove t key = remove_prefix t key ~len:(String.length key)

  exception Corrupted_snapshot

  let corrupt_all t =
    let poisoned = Machine.Peek (fun _ _ -> raise Corrupted_snapshot) in
    Hashtbl.iter
      (fun _ bucket ->
        List.iter
          (fun node -> node.snap <- { node.snap with s_step = poisoned })
          bucket)
      t.table
end

let accepted run = run.verdict = Accepted

let max_index_where pred run =
  Array.fold_left
    (fun acc (c : Comparison.t) ->
      if pred c then
        match acc with None -> Some c.index | Some i -> Some (max i c.index)
      else acc)
    None run.comparisons

let last_compared_index run = max_index_where (fun _ -> true) run

(* The first invalid character: the rightmost position where the parser's
   expectation failed. Positions beyond it may have been touched by
   class-membership probes (e.g. "is this still a letter?") whose success
   carries no substitution information, so failed comparisons take
   precedence. *)
let substitution_index run =
  match max_index_where (fun (c : Comparison.t) -> not c.result) run with
  | Some _ as failed -> failed
  | None -> last_compared_index run

(* The [~index] variants let a caller that already computed
   {!substitution_index} reuse it — the fuzzer derives several facts per
   run, and each [substitution_index] recomputation is a full scan of the
   comparison log. *)
let comparisons_at run ~index =
  let cs = run.comparisons in
  let acc = ref [] in
  for i = Array.length cs - 1 downto 0 do
    let c = Array.unsafe_get cs i in
    if c.Comparison.index = index then acc := c :: !acc
  done;
  !acc

let comparisons_at_last_index run =
  match substitution_index run with
  | None -> []
  | Some index -> comparisons_at run ~index

let coverage_up_to run ~index =
  (* [trace_pos] counts distinct outcomes covered before the event, and
     [touched] lists outcomes in first-occurrence order — so the
     coverage accumulated before the first comparison at the given index
     is exactly a prefix of [touched]. No full trace required. *)
  let cs = run.comparisons in
  let cut = ref (Array.length run.touched) in
  for i = 0 to Array.length cs - 1 do
    let c = Array.unsafe_get cs i in
    if c.Comparison.index = index && c.Comparison.trace_pos < !cut then
      cut := c.Comparison.trace_pos
  done;
  Coverage.of_array ~len:(min !cut (Array.length run.touched)) run.touched

let coverage_up_to_last_index run =
  match substitution_index run with
  | None -> run.coverage
  | Some index -> coverage_up_to run ~index

let avg_stack_of_last_two run =
  let n = Array.length run.comparisons in
  if n = 0 then 0.0
  else if n = 1 then float_of_int run.comparisons.(0).stack_depth
  else
    float_of_int (run.comparisons.(n - 1).stack_depth + run.comparisons.(n - 2).stack_depth)
    /. 2.0

let path_hash run = fnv_touched run.touched

let pp_verdict ppf = function
  | Accepted -> Format.fprintf ppf "accepted"
  | Rejected reason -> Format.fprintf ppf "rejected (%s)" reason
  | Hang -> Format.fprintf ppf "hang"
  | Crash c -> Format.fprintf ppf "crash (%s: %s)" (crash_id c) c.detail
