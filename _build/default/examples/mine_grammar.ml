(* The Section 7.4 tool chain: pFuzzer -> grammar miner -> grammar fuzzer.

   Parser-directed fuzzing explores short inputs efficiently but is a
   poor generator of deeply recursive structure. The paper proposes
   mining a grammar from its valid inputs and generating from the
   grammar instead. This example runs the whole chain on the JSON
   subject.

   Run with: dune exec examples/mine_grammar.exe *)

let () =
  let subject = Pdf_subjects.Catalog.find "json" in
  (* Step 1: parser-directed fuzzing produces valid, diverse inputs. *)
  let config =
    { Pdf_core.Pfuzzer.default_config with seed = 3; max_executions = 20_000 }
  in
  let result = Pdf_core.Pfuzzer.fuzz config subject in
  Printf.printf "Step 1: pFuzzer found %d valid JSON inputs.\n"
    (List.length result.valid_inputs);
  (* Step 2: mine a grammar from the taint-derived derivation trees. *)
  let grammar = Pdf_grammar.Miner.mine subject result.valid_inputs in
  Printf.printf "Step 2: mined grammar with %d nonterminals, %d productions:\n\n"
    (List.length (Pdf_grammar.Grammar.nonterminals grammar))
    (Pdf_grammar.Grammar.production_count grammar);
  Format.printf "%a@." Pdf_grammar.Grammar.pp grammar;
  (* Step 3: generate deep inputs from the grammar. *)
  let rng = Pdf_util.Rng.make 17 in
  let sentences = Pdf_grammar.Generator.generate_many rng ~max_depth:14 200 grammar in
  let accepted = List.filter (Pdf_subjects.Subject.accepts subject) sentences in
  let max_depth =
    List.fold_left
      (fun acc s ->
        max acc (Pdf_subjects.Subject.run subject s).Pdf_instr.Runner.max_depth)
      0 accepted
  in
  Printf.printf
    "Step 3: generated 200 sentences, %d accepted, max parser recursion depth %d.\n"
    (List.length accepted) max_depth;
  List.iteri
    (fun i s -> if i < 6 then Printf.printf "    %S\n" s)
    (List.sort (fun a b -> compare (String.length b) (String.length a)) accepted)
