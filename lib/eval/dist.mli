(** Distributed campaign orchestration: one coordinator, [N] forked
    worker processes, a deterministic shard plan.

    A campaign's execution budget is split into a fixed plan of [S]
    shards — each an independent {!Pdf_core.Pfuzzer} run with its own
    SplitMix64-derived seed and budget slice — and the shards are dealt
    round-robin to [N] worker processes. Workers stream sync frames
    (periodic {!Pdf_core.Pfuzzer.Checkpoint.partial_result} progress
    plus one final per-shard result) back over pipes; the coordinator
    folds them into a per-shard newest-frame map whose join is
    commutative, associative and idempotent, then merges the final
    per-shard results in shard order.

    The determinism contract: for a fixed plan (same config, same shard
    count), the merged result is {e bit-identical} regardless of worker
    count, worker scheduling, frame arrival order, or worker death
    followed by replay — the plan, not the process topology, defines the
    computation. [pfuzzer check] enforces this as the [dist-equivalence]
    invariant; the wire protocol and the merge semantics are documented
    in DESIGN.md §12. *)

module Pfuzzer = Pdf_core.Pfuzzer

(** {1 Shard plan} *)

type shard = {
  shard_id : int;
  shard_seed : int;  (** derived from the campaign seed, not equal to it *)
  shard_budget : int;  (** this shard's slice of [max_executions] *)
}

type plan = {
  base : Pfuzzer.config;  (** the campaign config shards specialise *)
  shards : shard list;  (** in shard-id order *)
}

val plan : ?shards:int -> Pfuzzer.config -> plan
(** Build the deterministic shard plan: [shards] (default 4, clamped to
    [1 .. max_executions]) entries whose seeds are successive SplitMix64
    draws from [config.seed] and whose budgets split [max_executions]
    evenly, the remainder going one-each to the lowest shard ids. Equal
    configs give equal plans — the plan is a pure function of
    [(config, shards)], which is what makes replay and the
    workers-invariance guarantee possible. *)

val shard_config : plan -> shard -> Pfuzzer.config
(** The config a shard's fuzzing run uses: the base config with the
    shard's seed and budget substituted. *)

val shard_offsets : plan -> int array
(** Exclusive prefix sums of the shard budgets: shard [i]'s executions
    occupy global indices [offsets.(i) + 1 .. offsets.(i) + budget], so
    per-shard execution counters translate into one campaign-global
    clock. *)

(** {1 Sync frames}

    One frame carries one shard's campaign-so-far as a
    {!Pfuzzer.result}. On the wire a frame is a 4-byte big-endian body
    length followed by the body
    [magic "pfsync" | version byte | MD5 of payload | payload]
    — the checkpoint envelope of {!Pfuzzer.Checkpoint}, under a
    distinct magic so a sync frame can never be mistaken for an
    on-disk checkpoint. *)

module Frame : sig
  type t = {
    shard : int;
    seq : int;
        (** per-shard progress clock: the shard's execution count at
            frame time. The final frame uses [budget + 1], so it always
            supersedes every progress frame in the merge. *)
    final : bool;  (** carries the shard's finished result *)
    result : Pfuzzer.result;
    metrics : Pdf_obs.Metrics.snapshot option;
        (** per-shard metrics snapshot piggybacking on the sync channel
            ([origin] = shard id, [clock] = [seq]); [None] from senders
            without a registry. The coordinator folds these with
            {!Pdf_obs.Metrics.Fleet}. *)
  }

  val version : int

  val encode : t -> string
  (** Length prefix plus body, ready to write to a pipe. *)

  val encode_body : t -> string
  (** The body alone (no length prefix) — the canonical bytes the merge
      uses as its deterministic tie-break. *)

  val decode_body : string -> (t, string) result
  (** [Error] carries a one-line reason. Error precedence matches
      {!Pfuzzer.Checkpoint.decode}: too short, bad magic, payload
      digest mismatch, version mismatch, unreadable payload — digest
      before version, so corruption is never misreported as skew. *)

  (** Incremental decoder for a byte stream arriving in arbitrary
      chunks: partial length prefixes, partial bodies and several
      frames per chunk are all handled; a damaged body is rejected
      with its reason and skipped, the stream then resynchronises at
      the next length prefix. An implausible length prefix kills the
      stream (there is nothing to resynchronise on) — the coordinator
      treats the worker as failed and replays its missing shards. *)
  module Decoder : sig
    type frame := t
    type t

    val create : unit -> t
    val feed : t -> bytes -> int -> unit
    (** [feed d chunk n] appends the first [n] bytes of [chunk]. *)

    val next : t -> [ `Frame of frame | `Reject of string | `Await ]
    (** Pop the next complete frame, the rejection reason of the next
        damaged one, or [`Await] when more bytes are needed. *)

    val finish : t -> string option
    (** At EOF: [Some reason] when undecodable bytes remain buffered
        (a truncated trailing frame), [None] on a clean boundary. *)
  end
end

(** {1 Merge}

    The coordinator's accumulator: per shard, the newest frame under
    the total order (seq, finality, encoded bytes). [join] is a
    semilattice join — commutative, associative, idempotent — even on
    adversarial frames, so the fold is insensitive to arrival order
    and to duplicate delivery (a replayed shard re-sends frames the
    dead worker already sent). Property-tested in [test_dist]. *)

module Merge : sig
  type state

  val empty : state
  val add : state -> Frame.t -> state
  val join : state -> state -> state
  val equal : state -> state -> bool

  val frames : state -> Frame.t list
  (** Newest frame per shard, in shard-id order. *)

  val missing : plan -> state -> shard list
  (** Plan shards that do not yet have a {e final} frame. *)
end

val merge_results : plan -> Pfuzzer.result list -> Pfuzzer.result
(** Merge the final per-shard results (given in shard-id order, one per
    plan shard) into the campaign result:
    valid inputs are concatenated in shard order and deduplicated
    keeping first occurrences; valid coverage is the bitset union;
    branch hit-counts the pointwise sum; crashes are re-keyed by
    [(exn, site)] with counts summed and first-witness data from the
    earliest global execution index; [first_valid_at] and each crash's
    [first_at] are translated through {!shard_offsets} onto the
    campaign-global clock; counters sum, [queue_peak] takes the max,
    [engine] comes from shard 0. Wall-clock and throughput are zeroed —
    they are scheduling-dependent, and the merged result is the part of
    a campaign that must be deterministic (timing lives in
    {!outcome.wall_clock_s}). Commutative over shard relabelling only in
    the trivial sense: the input order is the shard order, fixed by the
    plan. *)

(** {1 Campaigns} *)

type outcome = {
  result : Pfuzzer.result;  (** the deterministic merged result *)
  o_plan : plan;
  workers : int;  (** worker processes requested *)
  frames_accepted : int;
  frames_rejected : (int * string) list;
      (** (worker id, one-line reason) for every damaged frame, in
          arrival order — damage never crashes the coordinator *)
  replays : int;  (** shard replays after worker death *)
  worker_status : (int * string) list;
      (** (worker id, ["exit:<code>"] or ["signal:<signum>"]) in reap
          order; replay workers get fresh ids *)
  shard_traces : string list;
      (** per-shard JSONL trace streams in shard-id order, collected
          from the workers; [[]] unless [~trace:true] *)
  metrics : Pdf_obs.Metrics.snapshot option;
      (** fleet totals ({!Pdf_obs.Metrics.Fleet.totals}) folded from the
          snapshots riding the frames; [None] when no frame carried one.
          Deliberately outside [result]: counters are deterministic, but
          gauges and timing histograms are scheduling-dependent, and
          [result] must stay bit-identical across worker counts. *)
  wall_clock_s : float;
}

val run_campaign :
  ?workers:int ->
  ?shards:int ->
  ?frame_every:int ->
  ?retries:int ->
  ?trace:bool ->
  ?obs:Pdf_obs.Observer.t ->
  ?metrics_file:string ->
  ?postmortem:string ->
  ?kill_worker:int ->
  Pfuzzer.config ->
  Pdf_subjects.Subject.t ->
  outcome
(** Fork [workers] (default 2) processes, run the shard plan (shards
    dealt round-robin, each worker running its shards in ascending
    order), fold the frame streams, replay missing shards, merge.

    [frame_every] (default 500) is the progress-frame cadence in
    per-shard executions — frames ride the checkpoint hook, so it is a
    [checkpoint_every]. [retries] (default 2) bounds how many replay
    rounds a failing set of shards gets, in the spirit of
    {!Parallel.map_retry}; a shard still missing after the last round
    raises [Failure]. [trace] buffers each shard's telemetry in its
    worker and returns the streams in {!outcome.shard_traces}. [obs]
    receives the coordinator's lifecycle events ({!Pdf_obs.Event.Shard},
    [Worker_spawn], [Worker_frame], [Worker_exit], plus a [Retry] per
    shard replay). [metrics_file] atomically rewrites a Prometheus text
    snapshot of the fleet totals (time-throttled, plus a final write) as
    frames arrive — [pfuzzer_cli monitor] renders it. [postmortem]
    attaches a coordinator-side flight recorder to the lifecycle stream
    and dumps it to [<postmortem>-worker<id>.jsonl] when a worker dies
    abnormally or leaves shards unfinished. [kill_worker] is the chaos
    hook: SIGKILL that worker on its first accepted frame — the campaign
    must still produce the bit-identical merged result via replay.

    When stderr is a tty the coordinator also paints a live fleet-wide
    status line (the single-run line plus per-worker health columns),
    refreshed as frames arrive; redirected output stays clean.

    Worker-side subject crashes are ordinary {!Pfuzzer} crash verdicts
    inside the shard result ({!Pdf_instr.Runner.exec}'s containment
    contract); only the worker {e process} dying triggers replay. *)

val reference : ?shards:int -> Pfuzzer.config -> Pdf_subjects.Subject.t ->
  Pfuzzer.result
(** The sequential specification: run the same shard plan in-process,
    no forks, no frames, and merge. [run_campaign] with any worker
    count must equal this bit-for-bit — the [dist-equivalence]
    invariant checks exactly that. *)

val simulate_campaign :
  ?shards:int ->
  ?frame_every:int ->
  workers:int ->
  Pfuzzer.config ->
  Pdf_subjects.Subject.t ->
  Pfuzzer.result
(** An N-worker campaign re-enacted in one process: the same shard
    plan and round-robin assignment as {!run_campaign}, each simulated
    worker's frames encoded to bytes and decoded back through
    {!Frame.Decoder} with the streams interleaved in odd-sized chunks,
    then folded through {!Merge} and merged. Everything but the fork.

    This exists because OCaml 5 refuses [Unix.fork] in any process
    that has ever spawned a domain — {!run_campaign} raises [Failure]
    there, and callers that may run after domain-based code (the
    [dist-equivalence] invariant runs after grid determinism's
    [Experiment.run ~jobs]) fall back to this. *)
