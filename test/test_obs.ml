(* Tests for the telemetry subsystem: event serialization (golden lines
   and round-trips), observer stamping, the live status line, trace
   analysis, the allocation contract of the disabled path, and the
   jobs:1 ≡ jobs:N determinism of merged evaluation traces. *)

module Event = Pdf_obs.Event
module Json = Pdf_obs.Json
module Trace = Pdf_obs.Trace
module Observer = Pdf_obs.Observer
module Metrics = Pdf_obs.Metrics
module Progress = Pdf_obs.Progress
module Phase = Pdf_obs.Phase
module Trace_report = Pdf_obs.Trace_report
module Pfuzzer = Pdf_core.Pfuzzer
module Coverage = Pdf_instr.Coverage
module Catalog = Pdf_subjects.Catalog
module Exposition = Pdf_obs.Exposition
module Histogram = Pdf_util.Stats.Histogram

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* {1 Golden serialization: the JSONL schema is a stable format} *)

let stamp t_ns exec ev = { Event.t_ns; exec; ev }

let golden =
  [
    ( stamp 0 0
        (Event.Run_meta
           {
             subject = "json";
             outcomes = 76;
             seed = 1;
             max_executions = 500;
             incremental = true;
             engine = "compiled";
           }),
      {|{"ev":"run_meta","t":0,"n":0,"subject":"json","outcomes":76,"seed":1,"max_executions":500,"incremental":true,"engine":"compiled"}|}
    );
    ( stamp 10 1 (Event.Exec_start { len = 3; prefix = 2 }),
      {|{"ev":"exec_start","t":10,"n":1,"len":3,"prefix":2}|} );
    ( stamp 20 1
        (Event.Exec_done
           {
             dur_ns = 900;
             verdict = "rejected";
             engine = "compiled";
             cached = true;
             sub_index = 2;
             cov = 10;
             cov_delta = 0;
             valid = false;
             len = 3;
           }),
      {|{"ev":"exec_done","t":20,"n":1,"dur_ns":900,"verdict":"rejected","engine":"compiled","cached":true,"sub":2,"cov":10,"cov_delta":0,"valid":false,"len":3}|}
    );
    ( stamp 30 2 (Event.Valid { input = "a\tb\xff"; cov = 12; count = 1 }),
      {|{"ev":"valid","t":30,"n":2,"input":"a\tb\u00ff","cov":12,"count":1}|} );
    ( stamp 40 2 (Event.Queue_push { prio = 1.5; len = 4; depth = 9 }),
      {|{"ev":"queue_push","t":40,"n":2,"prio":1.5,"len":4,"depth":9}|} );
    ( stamp 50 2 (Event.Cache_hit { saved = 7 }),
      {|{"ev":"cache_hit","t":50,"n":2,"saved":7}|} );
    ( stamp 55 2 Event.Cache_miss, {|{"ev":"cache_miss","t":55,"n":2}|} );
    ( stamp 60 3 (Event.Reset { table = "dedupe" }),
      {|{"ev":"reset","t":60,"n":3,"table":"dedupe"}|} );
    ( stamp 70 4
        (Event.Snapshot
           {
             execs_per_sec = 1234.0;
             depth = 5;
             valid = 1;
             cov = 12;
             hits = 3;
             misses = 1;
             rescues = 2;
             plateau = 2;
             hangs = 1;
             crashes = 0;
           }),
      {|{"ev":"snapshot","t":70,"n":4,"execs_per_sec":1234.0,"depth":5,"valid":1,"cov":12,"hits":3,"misses":1,"rescues":2,"plateau":2,"hangs":1,"crashes":0}|}
    );
    ( stamp 72 4 (Event.Hang { total = 3 }),
      {|{"ev":"hang","t":72,"n":4,"total":3}|} );
    ( stamp 74 4
        (Event.Crash
           { exn = "Stdlib.Failure"; site = 0x1a2b; fresh = true; total = 1 }),
      {|{"ev":"crash","t":74,"n":4,"exn":"Stdlib.Failure","site":6699,"fresh":true,"total":1}|}
    );
    ( stamp 76 4 (Event.Fault { kind = "starve_fuel" }),
      {|{"ev":"fault","t":76,"n":4,"kind":"starve_fuel"}|} );
    ( stamp 77 4 (Event.Rescue { prefix = 5 }),
      {|{"ev":"rescue","t":77,"n":4,"prefix":5}|} );
    ( stamp 78 4 (Event.Retry { what = "cell"; attempt = 2; detail = "oops" }),
      {|{"ev":"retry","t":78,"n":4,"what":"cell","attempt":2,"detail":"oops"}|}
    );
    ( stamp 80 5
        (Event.Phases { spans = [ ("exec", 100); ("cache", 50) ]; wall_ns = 400 }),
      {|{"ev":"phases","t":80,"n":5,"exec_ns":100,"cache_ns":50,"wall_ns":400}|}
    );
    ( stamp 90 5
        (Event.Run_done { valid = 1; cov = 12; wall_ns = 400; execs_per_sec = 50.5 }),
      {|{"ev":"run_done","t":90,"n":5,"valid":1,"cov":12,"wall_ns":400,"execs_per_sec":50.5}|}
    );
    ( stamp 91 0 (Event.Shard { shard = 2; seed = 77; budget = 500 }),
      {|{"ev":"shard","t":91,"n":0,"shard":2,"seed":77,"budget":500}|} );
    ( stamp 92 0 (Event.Worker_spawn { worker = 1; pid = 4242; shards = 2 }),
      {|{"ev":"worker_spawn","t":92,"n":0,"worker":1,"pid":4242,"shards":2}|} );
    ( stamp 93 0
        (Event.Worker_frame { worker = 1; shard = 2; seq = 250; final = false }),
      {|{"ev":"worker_frame","t":93,"n":0,"worker":1,"shard":2,"seq":250,"final":false}|}
    );
    ( stamp 94 0 (Event.Worker_exit { worker = 1; status = "signal:9"; missing = 1 }),
      {|{"ev":"worker_exit","t":94,"n":0,"worker":1,"status":"signal:9","missing":1}|}
    );
  ]

let test_golden_lines () =
  List.iter
    (fun (ev, expected) ->
      check Alcotest.string (Event.kind ev.Event.ev) expected (Event.to_json_line ev))
    golden

let test_round_trip () =
  List.iter
    (fun (ev, _) ->
      let back = Event.of_json_line (Event.to_json_line ev) in
      check Alcotest.bool (Event.kind ev.Event.ev) true (back = ev))
    golden;
  (* Valid-input payloads are arbitrary byte strings; every byte must
     survive the trip through the escaper. *)
  let bytes = String.init 256 Char.chr in
  let ev = stamp 1 1 (Event.Valid { input = bytes; cov = 1; count = 1 }) in
  let back = Event.of_json_line (Event.to_json_line ev) in
  (match back.Event.ev with
   | Event.Valid v -> check Alcotest.string "all bytes round-trip" bytes v.input
   | _ -> Alcotest.fail "wrong event kind");
  Alcotest.check_raises "malformed line rejected" (Json.Malformed "expected '{' at 0")
    (fun () -> ignore (Event.of_json_line "not json"));
  (* Traces written before the engine field existed still load, with the
     tag defaulting to "interpreted". *)
  let old_line =
    {|{"ev":"exec_done","t":20,"n":1,"dur_ns":900,"verdict":"rejected","cached":true,"sub":2,"cov":10,"cov_delta":0,"valid":false,"len":3}|}
  in
  (match (Event.of_json_line old_line).Event.ev with
   | Event.Exec_done e ->
     check Alcotest.string "engine defaults on old traces" "interpreted" e.engine
   | _ -> Alcotest.fail "wrong event kind");
  let old_meta =
    {|{"ev":"run_meta","t":0,"n":0,"subject":"json","outcomes":76,"seed":1,"max_executions":500,"incremental":true}|}
  in
  (match (Event.of_json_line old_meta).Event.ev with
   | Event.Run_meta m ->
     check Alcotest.string "run_meta engine defaults" "interpreted" m.engine
   | _ -> Alcotest.fail "wrong event kind");
  (* Snapshot lines written before the rescue column existed parse with
     rescues = 0. *)
  let old_snapshot =
    {|{"ev":"snapshot","t":70,"n":4,"execs_per_sec":1234.0,"depth":5,"valid":1,"cov":12,"hits":3,"misses":1,"plateau":2,"hangs":1,"crashes":0}|}
  in
  match (Event.of_json_line old_snapshot).Event.ev with
  | Event.Snapshot s ->
    check Alcotest.int "rescues defaults on old traces" 0 s.rescues
  | _ -> Alcotest.fail "wrong event kind"

let test_normalize () =
  let line =
    {|{"ev":"exec_done","t":55,"n":1,"dur_ns":900,"verdict":"ok","cached":true,"sub":2,"cov":10,"cov_delta":0,"valid":false,"len":3}|}
  in
  let expected =
    {|{"ev":"exec_done","t":0,"n":1,"dur_ns":0,"verdict":"ok","cached":true,"sub":2,"cov":10,"cov_delta":0,"valid":false,"len":3}|}
  in
  check Alcotest.string "timing keys zeroed" expected (Trace.normalize_line line);
  check Alcotest.string "non-json passes through" "garbage" (Trace.normalize_line "garbage")

(* {1 Observer stamping with a deterministic clock} *)

let test_observer_stamps () =
  let t = ref 0 in
  let clock () = incr t; !t * 100 in
  let sink, contents = Trace.buffer () in
  let obs = Observer.create ~clock ~sink () in
  Observer.emit obs ~exec:3 Event.Cache_miss;
  Observer.emit obs ~exec:4 (Event.Reset { table = "path" });
  let lines = String.split_on_char '\n' (String.trim (contents ())) in
  let parsed = List.map Event.of_json_line lines in
  (match parsed with
   | [ a; b ] ->
     (* t0 was the creation read; each emit reads the clock once, so
        stamps advance by exactly one tick. *)
     check Alcotest.int "first stamp" 100 a.Event.t_ns;
     check Alcotest.int "second stamp" 200 b.Event.t_ns;
     check Alcotest.int "exec clock carried" 3 a.Event.exec;
     check Alcotest.bool "kinds" true
       (a.Event.ev = Event.Cache_miss && b.Event.ev = Event.Reset { table = "path" })
   | _ -> Alcotest.fail "expected exactly two lines");
  check Alcotest.bool "tracing on" true (Observer.tracing obs);
  check Alcotest.bool "tracing off" false
    (Observer.tracing (Observer.create ()))

let test_observer_spans () =
  let t = ref 0 in
  let clock () = incr t; !t * 10 in
  let obs = Observer.create ~clock ~metrics:(Metrics.create ()) () in
  let s = Observer.span_start obs in
  Observer.span_end obs Phase.Exec s;
  let s = Observer.span_start obs in
  let s2 = Observer.span_next obs Phase.Cache s in
  Observer.span_end obs Phase.Queue s2;
  check
    Alcotest.(list (pair string int))
    "phase totals"
    [ ("exec", 10); ("cache", 10); ("score", 0); ("queue", 10); ("gen", 0) ]
    (Observer.phase_totals obs)

(* {1 The live status line} *)

let test_progress_render () =
  check Alcotest.string "status line"
    "[pfuzzer] 500/2000 execs | 1234/s | compiled | queue 42 | valid 7 | cov 50.0% | cache 99.0% | rescue 4 | plateau 12 | hang 2 | crash 3"
    (Progress.render ~execs:500 ~max_executions:2000 ~execs_per_sec:1234.0
       ~engine:"compiled" ~depth:42 ~valid:7 ~cov:38 ~outcomes:76 ~hits:99
       ~misses:1 ~rescues:4 ~plateau:12 ~hangs:2 ~crashes:3);
  check Alcotest.string "no cache consultations, unknown engine"
    "[pfuzzer] 1/10 execs | 0/s | ? | queue 0 | valid 0 | cov 0.0% | cache - | rescue 0 | plateau 1 | hang 0 | crash 0"
    (Progress.render ~execs:1 ~max_executions:10 ~execs_per_sec:0.0 ~engine:""
       ~depth:0 ~valid:0 ~cov:0 ~outcomes:0 ~hits:0 ~misses:0 ~rescues:0
       ~plateau:1 ~hangs:0 ~crashes:0)

(* {1 A real traced run: schema, consistency with the result, report} *)

let traced_run () =
  let subject = Catalog.find "json" in
  let config = { Pfuzzer.default_config with max_executions = 300 } in
  let sink, contents = Trace.buffer () in
  let obs = Observer.create ~sink ~metrics:(Metrics.create ()) () in
  let result = Pfuzzer.fuzz ~obs config subject in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (contents ()))
  in
  (result, List.map Event.of_json_line lines)

let test_traced_run_schema () =
  let result, events = traced_run () in
  check Alcotest.bool "nonempty" true (events <> []);
  let last_t = ref 0 and last_exec = ref 0 in
  List.iter
    (fun (s : Event.stamped) ->
      check Alcotest.bool "t monotone" true (s.t_ns >= !last_t);
      check Alcotest.bool "n non-decreasing" true (s.exec >= !last_exec);
      last_t := s.t_ns;
      last_exec := s.exec)
    events;
  let count p = List.length (List.filter p events) in
  check Alcotest.int "one exec_start per execution" result.executions
    (count (fun s -> match s.Event.ev with Event.Exec_start _ -> true | _ -> false));
  check Alcotest.int "one exec_done per execution" result.executions
    (count (fun s -> match s.Event.ev with Event.Exec_done _ -> true | _ -> false));
  check Alcotest.int "one valid event per valid input"
    (List.length result.valid_inputs)
    (count (fun s -> match s.Event.ev with Event.Valid _ -> true | _ -> false));
  (* The final exec_done's coverage is the run's valid coverage. *)
  let final_cov =
    List.fold_left
      (fun acc (s : Event.stamped) ->
        match s.Event.ev with Event.Exec_done e -> e.cov | _ -> acc)
      (-1) events
  in
  check Alcotest.int "final coverage matches result"
    (Coverage.cardinal result.valid_coverage)
    final_cov;
  (* Run_done agrees with the result. *)
  (match List.rev events with
   | { Event.ev = Event.Run_done r; _ } :: _ ->
     check Alcotest.int "run_done valid" (List.length result.valid_inputs) r.valid;
     check Alcotest.int "run_done cov" (Coverage.cardinal result.valid_coverage) r.cov
   | _ -> Alcotest.fail "last event must be run_done");
  (* Phase spans can never exceed the wall clock. *)
  (match
     List.find_map
       (fun (s : Event.stamped) ->
         match s.Event.ev with
         | Event.Phases p -> Some (p.spans, p.wall_ns)
         | _ -> None)
       events
   with
   | None -> Alcotest.fail "no phases event"
   | Some (spans, wall_ns) ->
     let known = List.map Phase.name Phase.all in
     let spent =
       List.fold_left
         (fun acc (name, ns) -> if List.mem name known then acc + ns else acc)
         0 spans
     in
     check Alcotest.bool "phases sum <= wall" true (spent <= wall_ns))

let test_trace_report_matches_run () =
  let result, events = traced_run () in
  let a = Trace_report.analyse events in
  check Alcotest.int "execs" result.executions a.Trace_report.execs;
  check Alcotest.int "final valid" (List.length result.valid_inputs) a.final_valid;
  check Alcotest.int "final cov"
    (Coverage.cardinal result.valid_coverage)
    a.final_cov;
  check Alcotest.int "cache hits" result.cache.Pfuzzer.hits a.cache_hits;
  check Alcotest.int "cache misses" result.cache.Pfuzzer.misses a.cache_misses;
  (* The bucketed curve ends on the true final point. *)
  let buckets = Trace_report.bucketed ~rows:10 a in
  check Alcotest.bool "rows bounded" true (List.length buckets <= 11);
  (match List.rev buckets with
   | last :: _ ->
     check Alcotest.int "last bucket exec" result.executions last.Trace_report.exec;
     check Alcotest.int "last bucket cov"
       (Coverage.cardinal result.valid_coverage)
       last.Trace_report.cov
   | [] -> Alcotest.fail "empty curve");
  (* CSV: header plus one row per execution. *)
  let csv = Trace_report.csv a in
  check Alcotest.int "csv rows" (result.executions + 1)
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)));
  (* Rendering shouldn't raise and mentions the summary numbers. *)
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Trace_report.render ppf a;
  Format.pp_print_flush ppf ();
  check Alcotest.bool "render nonempty" true (Buffer.length buf > 100)

let test_chrome_sink () =
  let _, events = traced_run () in
  let path = Filename.temp_file "pdf_obs" ".chrome.json" in
  let oc = open_out path in
  let sink = Trace.chrome oc in
  List.iter (Trace.emit sink) events;
  Trace.close sink;
  close_out oc;
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  let trimmed = String.trim content in
  check Alcotest.bool "nonempty" true (String.length trimmed > 2);
  check Alcotest.char "opens array" '[' trimmed.[0];
  check Alcotest.char "closes array" ']' trimmed.[String.length trimmed - 1]

(* {1 The disabled path allocates within the fuzzer's own budget}

   With no observer installed every telemetry site is one branch; no
   event record, no closure, no clock read. The fuzzer itself allocates
   ~1100 minor words per execution on the json subject (measured on the
   seed corpus of this test); the budget below has ~35% headroom. If
   this trips, something started allocating on the disabled hot path —
   tracing on costs ~1800 words/exec more, so even a single stray event
   construction blows the budget immediately. *)

let test_disabled_path_allocation () =
  let subject = Catalog.find "json" in
  let config = { Pfuzzer.default_config with max_executions = 2000 } in
  ignore (Pfuzzer.fuzz config subject) (* warm up *);
  let w0 = Gc.minor_words () in
  let result = Pfuzzer.fuzz config subject in
  let w1 = Gc.minor_words () in
  let per_exec = (w1 -. w0) /. float_of_int result.executions in
  if per_exec > 1500.0 then
    Alcotest.failf "disabled-path allocation: %.0f minor words/exec (budget 1500)"
      per_exec

(* {1 The candidate-generation span is free when telemetry is off}

   The [Gen] span brackets dedupe probing and child construction — the
   hottest code in the fuzzer. With no observer installed each of its
   sites must compile down to one branch, exactly like the other phase
   spans (well under the 2% overhead the phase machinery is allowed):
   no clock read, no event record, and — the part a timer on this noisy
   box can actually enforce deterministically — not one word of
   allocation. The budget has ~35% headroom over the measured disabled
   path (expr, interpreted engine: ~580 minor words/exec, all of it the
   campaign's own working set); if it trips, a span site started paying
   for telemetry nobody asked for. *)

let test_disabled_gen_span_allocation () =
  let subject = Catalog.find "expr" in
  let config =
    {
      Pfuzzer.default_config with
      max_executions = 2000;
      engine = Pfuzzer.Interpreted;
    }
  in
  ignore (Pfuzzer.fuzz config subject) (* warm up *);
  let w0 = Gc.minor_words () in
  let result = Pfuzzer.fuzz config subject in
  let w1 = Gc.minor_words () in
  let per_exec = (w1 -. w0) /. float_of_int result.executions in
  if per_exec > 800.0 then
    Alcotest.failf
      "disabled-obs candidate generation: %.0f minor words/exec (budget 800)"
      per_exec

(* {1 Result timing fields} *)

let test_result_timing () =
  let subject = Catalog.find "json" in
  let result =
    Pfuzzer.fuzz { Pfuzzer.default_config with max_executions = 100 } subject
  in
  check Alcotest.bool "wall clock positive" true (result.wall_clock_s > 0.0);
  check Alcotest.bool "execs/sec consistent" true
    (abs_float
       (result.execs_per_sec -. (float_of_int result.executions /. result.wall_clock_s))
     < 1.0)

(* {1 Metrics fleet merge: the same semilattice laws as Dist.Merge}

   Snapshots are adversarial by design: colliding origins, colliding
   clocks, disagreeing contents. The join must be commutative,
   associative and idempotent on these — duplicate and out-of-order
   snapshot delivery over the frame channel is then invisible. *)

let mk_snapshot ~origin ~clock ~execs ~valid ~rate ~spans =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "shard/executions") execs;
  Metrics.add (Metrics.counter m "shard/valid") valid;
  Metrics.set (Metrics.gauge m "rate") rate;
  let h = Metrics.histogram m "phase/exec_ns" in
  List.iter (Histogram.record h) spans;
  Metrics.snapshot ~origin ~clock m

let gen_snapshot =
  QCheck.Gen.(
    let* origin = int_range 0 3 in
    let* clock = int_range 0 5 in
    let* execs = int_range 0 50 in
    let* valid = int_range 0 10 in
    (* Integer-valued rates keep structural comparison exact. *)
    let* rate = int_range 0 1000 in
    let* spans = small_list (int_range 1 100_000) in
    return (mk_snapshot ~origin ~clock ~execs ~valid ~rate:(float_of_int rate) ~spans))

let arb_snapshots =
  QCheck.make
    ~print:(fun ss ->
      String.concat ";"
        (List.map
           (fun (s : Metrics.snapshot) ->
             Printf.sprintf "(origin %d, clock %d)" s.origin s.clock)
           ss))
    QCheck.Gen.(list_size (int_range 0 12) gen_snapshot)

let fleet_of ss = List.fold_left Metrics.Fleet.add Metrics.Fleet.empty ss

let prop_fleet_commutative =
  QCheck.Test.make ~name:"fleet join is commutative" ~count:300
    (QCheck.pair arb_snapshots arb_snapshots)
    (fun (sa, sb) ->
      let a = fleet_of sa and b = fleet_of sb in
      Metrics.Fleet.equal (Metrics.Fleet.join a b) (Metrics.Fleet.join b a))

let prop_fleet_associative =
  QCheck.Test.make ~name:"fleet join is associative" ~count:300
    (QCheck.triple arb_snapshots arb_snapshots arb_snapshots)
    (fun (sa, sb, sc) ->
      let a = fleet_of sa and b = fleet_of sb and c = fleet_of sc in
      Metrics.Fleet.equal
        (Metrics.Fleet.join a (Metrics.Fleet.join b c))
        (Metrics.Fleet.join (Metrics.Fleet.join a b) c))

let prop_fleet_idempotent =
  QCheck.Test.make ~name:"fleet join is idempotent" ~count:300 arb_snapshots
    (fun ss ->
      let a = fleet_of ss in
      Metrics.Fleet.equal (Metrics.Fleet.join a a) a)

let prop_fleet_duplicate_delivery =
  QCheck.Test.make ~name:"snapshot duplicate delivery is invisible" ~count:300
    arb_snapshots
    (fun ss -> Metrics.Fleet.equal (fleet_of ss) (fleet_of (ss @ ss)))

let test_fleet_totals () =
  let s0 = mk_snapshot ~origin:0 ~clock:10 ~execs:100 ~valid:3 ~rate:50.0 ~spans:[ 10; 20 ] in
  let s1 = mk_snapshot ~origin:1 ~clock:25 ~execs:40 ~valid:1 ~rate:75.0 ~spans:[ 30 ] in
  let t = Metrics.Fleet.totals (fleet_of [ s0; s1 ]) in
  check Alcotest.int "totals origin" (-1) t.Metrics.origin;
  check Alcotest.int "totals clock is the fleet max" 25 t.Metrics.clock;
  check Alcotest.int "counters sum" 140
    (List.assoc "shard/executions" t.Metrics.counters);
  check Alcotest.int "counters sum (valid)" 4
    (List.assoc "shard/valid" t.Metrics.counters);
  check (Alcotest.float 0.0) "gauge is latest by clock" 75.0
    (List.assoc "rate" t.Metrics.gauges);
  check Alcotest.int "histograms merge" 3
    (Histogram.count (List.assoc "phase/exec_ns" t.Metrics.histograms))

(* {1 Flight recorder: wraparound and dump determinism} *)

let test_ring_wraparound () =
  let r = Trace.ring 4 in
  let sink = Trace.ring_sink r in
  for i = 1 to 10 do
    Trace.emit sink (stamp (i * 10) i (Event.Cache_hit { saved = i }))
  done;
  check Alcotest.int "total emitted" 10 (Trace.ring_total r);
  check Alcotest.int "capacity" 4 (Trace.ring_capacity r);
  check
    Alcotest.(list int)
    "retains the newest events, oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun (s : Event.stamped) -> s.exec) (Trace.ring_events r));
  (* Under capacity: everything retained, no dummy slots visible. *)
  let r2 = Trace.ring 8 in
  let sink2 = Trace.ring_sink r2 in
  for i = 1 to 3 do
    Trace.emit sink2 (stamp i i Event.Cache_miss)
  done;
  check Alcotest.int "partial fill" 3 (List.length (Trace.ring_events r2));
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Trace.ring: capacity must be positive") (fun () ->
      ignore (Trace.ring 0))

let test_ring_dump_deterministic () =
  let r = Trace.ring 3 in
  let sink = Trace.ring_sink r in
  for i = 1 to 5 do
    Trace.emit sink (stamp (i * 7) i (Event.Rescue { prefix = i }))
  done;
  let path = Filename.temp_file "pdf_obs" ".ring.jsonl" in
  Trace.dump_ring r path;
  let once = Pdf_util.Atomic_file.read_string path in
  Trace.dump_ring r path;
  let twice = Pdf_util.Atomic_file.read_string path in
  Sys.remove path;
  check Alcotest.string "dumping twice writes identical bytes" once twice;
  check Alcotest.string "dump is the retained events as JSONL"
    (String.concat ""
       (List.map (fun s -> Event.to_json_line s ^ "\n") (Trace.ring_events r)))
    once

let test_observer_flight_dump () =
  let dir = Filename.temp_dir "pdf_obs" "" in
  let prefix = Filename.concat dir "pm" in
  let obs =
    Observer.create ~ring:(Trace.ring 16) ~postmortem:prefix ()
  in
  Observer.emit obs ~exec:1 (Event.Hang { total = 1 });
  (match Observer.flight_dump obs ~reason:"hang" with
   | None -> Alcotest.fail "flight_dump returned no path"
   | Some path ->
     check Alcotest.string "dump path" (prefix ^ "-hang.jsonl") path;
     let content = Pdf_util.Atomic_file.read_string path in
     check Alcotest.bool "dump holds the hang event" true
       (match String.index_opt content '\n' with
        | None -> false
        | Some _ ->
          (match (Event.of_json_line (List.hd (String.split_on_char '\n' content))).Event.ev with
           | Event.Hang h -> h.total = 1
           | _ -> false));
     Sys.remove path);
  Unix.rmdir dir;
  (* No ring or no prefix: dump is a no-op. *)
  check Alcotest.bool "no ring, no dump" true
    (Observer.flight_dump (Observer.create ()) ~reason:"x" = None)

(* {1 Sampled tracing: 1/1 is today's full trace, 1/N is deterministic} *)

let sampled_trace ?sample () =
  let subject = Catalog.find "json" in
  let config = { Pfuzzer.default_config with max_executions = 200 } in
  let sink, contents = Trace.buffer () in
  let obs = Observer.create ~sink ?sample () in
  let result = Pfuzzer.fuzz ~obs config subject in
  (result, contents ())

let count_events pred trace =
  List.length
    (List.filter
       (fun l -> l <> "" && pred (Event.of_json_line l).Event.ev)
       (String.split_on_char '\n' trace))

let test_sample_one_is_full_trace () =
  let _, full = sampled_trace () in
  let _, one = sampled_trace ~sample:1 () in
  check Alcotest.string "sample 1 ≡ unsampled trace"
    (Trace.normalize full) (Trace.normalize one)

let test_sampling_thins_exec_events () =
  let result, full = sampled_trace () in
  let result', sampled = sampled_trace ~sample:100 () in
  check Alcotest.int "fuzzing result unaffected by sampling"
    result.Pfuzzer.executions result'.Pfuzzer.executions;
  let is_exec = function
    | Event.Exec_start _ | Event.Exec_done _ -> true
    | _ -> false
  in
  let full_exec = count_events is_exec full in
  let sampled_exec = count_events is_exec sampled in
  check Alcotest.bool "exec-level events thinned" true
    (sampled_exec * 10 < full_exec);
  (* Structural events survive sampling untouched. *)
  let is_valid = function Event.Valid _ -> true | _ -> false in
  check Alcotest.int "valid events all retained"
    (count_events is_valid full) (count_events is_valid sampled);
  let is_run_done = function Event.Run_done _ -> true | _ -> false in
  check Alcotest.int "run_done retained" 1 (count_events is_run_done sampled);
  (* Deterministic on the execution index: two sampled runs agree. *)
  let _, sampled' = sampled_trace ~sample:100 () in
  check Alcotest.string "sampling is deterministic"
    (Trace.normalize sampled) (Trace.normalize sampled');
  Alcotest.check_raises "sample must be >= 1"
    (Invalid_argument "Observer.create: sample must be >= 1") (fun () ->
      ignore (Observer.create ~sample:0 ()))

(* {1 Prometheus exposition and the monitor dashboard} *)

let test_exposition_golden () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "shard/executions") 500;
  Metrics.set (Metrics.gauge m "rate") 1234.5;
  let text = Exposition.prometheus (Metrics.snapshot ~origin:0 ~clock:500 m) in
  check Alcotest.string "exposition text"
    "# TYPE pfuzzer_snapshot_clock gauge\n\
     pfuzzer_snapshot_clock 500\n\
     # TYPE pfuzzer_shard_executions counter\n\
     pfuzzer_shard_executions 500\n\
     # TYPE pfuzzer_rate gauge\n\
     pfuzzer_rate 1234.5\n"
    text

let test_exposition_roundtrip () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "shard/executions") 42;
  Metrics.set (Metrics.gauge m "rate") 7.0;
  let h = Metrics.histogram m "phase/exec_ns" in
  List.iter (Histogram.record h) [ 100; 200; 300 ];
  let text = Exposition.prometheus (Metrics.snapshot ~origin:0 ~clock:9 m) in
  let fams = Exposition.parse text in
  check
    Alcotest.(list (pair string string))
    "family names and types in declaration order"
    [
      ("pfuzzer_snapshot_clock", "gauge");
      ("pfuzzer_shard_executions", "counter");
      ("pfuzzer_rate", "gauge");
      ("pfuzzer_phase_exec_ns", "summary");
    ]
    (List.map (fun f -> (f.Exposition.fname, f.Exposition.ftype)) fams);
  (* The summary family owns its quantile, _sum and _count series. *)
  let summary =
    List.find (fun f -> f.Exposition.fname = "pfuzzer_phase_exec_ns") fams
  in
  check Alcotest.int "summary series count" 5
    (List.length summary.Exposition.samples);
  check (Alcotest.float 0.0) "count series" 3.0
    (List.assoc "pfuzzer_phase_exec_ns_count" summary.Exposition.samples);
  (* The dashboard render is pure and headed by the family count. *)
  let rendered = Exposition.render fams in
  check Alcotest.bool "render headed by family count" true
    (String.length rendered > 0
    && List.hd (String.split_on_char '\n' rendered)
       = "[pfuzzer monitor] 4 families");
  (* Unparseable lines are skipped, not fatal. *)
  check
    Alcotest.(list (pair string string))
    "garbage lines skipped"
    [ ("pfuzzer_x", "counter") ]
    (List.map
       (fun f -> (f.Exposition.fname, f.Exposition.ftype))
       (Exposition.parse "# TYPE pfuzzer_x counter\nnot a sample line\npfuzzer_x 1\n"))

(* {1 jobs:1 ≡ jobs:N merged-trace determinism} *)

let grid_trace ~jobs =
  let path = Filename.temp_file "pdf_obs" ".jsonl" in
  let oc = open_out path in
  let config =
    { Pdf_eval.Experiment.budget_units = 10_000; seeds = [ 1; 2 ]; verbose = false }
  in
  let subjects = [ Catalog.find "json"; Catalog.find "ini" ] in
  let (_ : Pdf_eval.Experiment.t) =
    Pdf_eval.Experiment.run ~jobs ~trace:oc config subjects
  in
  close_out oc;
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  content

let test_merged_trace_determinism () =
  let a = grid_trace ~jobs:1 and b = grid_trace ~jobs:3 in
  check Alcotest.bool "same structure up to timestamps" true
    (Trace.normalize a = Trace.normalize b);
  (* Cell headers appear once per (subject, tool, seed), in grid order. *)
  let cells =
    List.filter_map
      (fun l ->
        if l = "" then None
        else
          match Event.of_json_line l with
          | { Event.ev = Event.Cell c; _ } -> Some c.tool
          | _ -> None)
      (String.split_on_char '\n' a)
  in
  check Alcotest.int "cell count" (2 * 3 * 2) (List.length cells)

let () =
  Alcotest.run "pdf_obs"
    [
      ( "serialization",
        [
          Alcotest.test_case "golden JSONL lines" `Quick test_golden_lines;
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "normalize" `Quick test_normalize;
        ] );
      ( "observer",
        [
          Alcotest.test_case "stamping" `Quick test_observer_stamps;
          Alcotest.test_case "phase spans" `Quick test_observer_spans;
        ] );
      ("progress", [ Alcotest.test_case "render" `Quick test_progress_render ]);
      ( "fleet metrics",
        [
          qtest prop_fleet_commutative;
          qtest prop_fleet_associative;
          qtest prop_fleet_idempotent;
          qtest prop_fleet_duplicate_delivery;
          Alcotest.test_case "totals" `Quick test_fleet_totals;
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "dump determinism" `Quick
            test_ring_dump_deterministic;
          Alcotest.test_case "observer flight dump" `Quick
            test_observer_flight_dump;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "sample 1 is the full trace" `Quick
            test_sample_one_is_full_trace;
          Alcotest.test_case "sample N thins exec events" `Quick
            test_sampling_thins_exec_events;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus golden" `Quick test_exposition_golden;
          Alcotest.test_case "parse and render" `Quick
            test_exposition_roundtrip;
        ] );
      ( "traced run",
        [
          Alcotest.test_case "schema and consistency" `Quick test_traced_run_schema;
          Alcotest.test_case "trace-report matches run" `Quick
            test_trace_report_matches_run;
          Alcotest.test_case "chrome sink" `Quick test_chrome_sink;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "disabled path allocation" `Quick
            test_disabled_path_allocation;
          Alcotest.test_case "disabled gen span allocation" `Quick
            test_disabled_gen_span_allocation;
          Alcotest.test_case "result timing fields" `Quick test_result_timing;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "jobs:1 = jobs:N merged trace" `Quick
            test_merged_trace_determinism;
        ] );
    ]
