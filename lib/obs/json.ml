(* Minimal JSON support for the trace format. Trace events are single
   flat objects (string/int/float/bool values, no nesting), which keeps
   both the writer and the reader trivial and dependency-free. *)

type v = S of string | I of int | F of float | B of bool

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
        (* Fuzzed inputs are arbitrary byte strings, not UTF-8; escaping
           everything outside printable ASCII keeps every line valid
           JSON. The reader maps \u00XX back to the raw byte. *)
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_value buf = function
  | S s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | I i -> Buffer.add_string buf (string_of_int i)
  | F f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | B b -> Buffer.add_string buf (if b then "true" else "false")

(* One flat object on one line, fields in the given order. *)
let write_flat buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      escape buf k;
      Buffer.add_string buf "\":";
      add_value buf v)
    fields;
  Buffer.add_char buf '}'

let flat_to_string fields =
  let buf = Buffer.create 128 in
  write_flat buf fields;
  Buffer.contents buf

exception Malformed of string

let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

(* Parser for exactly what [write_flat] produces: a single flat object.
   Raises [Malformed] on anything else. *)
let parse_flat line =
  let n = String.length line in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos >= n || line.[!pos] <> c then fail "expected %C at %d" c !pos;
    incr pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          if !pos + 1 >= n then fail "dangling escape";
          (match line.[!pos + 1] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | '/' -> Buffer.add_char buf '/'
           | 'u' ->
             if !pos + 5 >= n then fail "short \\u escape";
             let code = int_of_string ("0x" ^ String.sub line (!pos + 2) 4) in
             if code > 0xff then fail "non-latin \\u escape %04x" code
             else Buffer.add_char buf (Char.chr code);
             pos := !pos + 4
           | c -> fail "unknown escape \\%c" c);
          pos := !pos + 2;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char line.[!pos] do
      incr pos
    done;
    let s = String.sub line start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> I i
    | None ->
      (match float_of_string_opt s with
       | Some f -> F f
       | None -> fail "bad number %S at %d" s start)
  in
  let parse_value () =
    skip_ws ();
    if !pos >= n then fail "missing value"
    else
      match line.[!pos] with
      | '"' -> S (parse_string ())
      | 't' when !pos + 4 <= n && String.sub line !pos 4 = "true" ->
        pos := !pos + 4;
        B true
      | 'f' when !pos + 5 <= n && String.sub line !pos 5 = "false" ->
        pos := !pos + 5;
        B false
      | _ -> parse_number ()
  in
  expect '{';
  skip_ws ();
  let fields = ref [] in
  if !pos < n && line.[!pos] = '}' then incr pos
  else begin
    let rec members () =
      let k = parse_string () in
      expect ':';
      let v = parse_value () in
      fields := (k, v) :: !fields;
      skip_ws ();
      if !pos < n && line.[!pos] = ',' then begin
        incr pos;
        skip_ws ();
        members ()
      end
      else expect '}'
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then fail "trailing garbage at %d" !pos;
  List.rev !fields
