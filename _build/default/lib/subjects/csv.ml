module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site
module Charset = Pdf_util.Charset

let registry = Site.create_registry "csv"
let s_parse = Site.block registry "parse"
let s_record = Site.block registry "record"
let s_field = Site.block registry "field"
let s_quoted = Site.block registry "quoted"
let b_quote_open = Site.branch registry "field.quote?"
let b_bare_char = Site.branch registry "field.bare-char?"
let b_quote_close = Site.branch registry "quoted.quote?"
let b_quote_escape = Site.branch registry "quoted.escaped-quote?"
let b_comma = Site.branch registry "record.comma?"
let b_newline = Site.branch registry "parse.newline?"
let b_final_eof = Site.branch registry "parse.final-eof"

let bare_chars = Charset.complement (Charset.of_string ",\"\n")

let quoted ctx =
  Ctx.with_frame ctx s_quoted @@ fun () ->
  ignore (Ctx.next ctx);
  (* opening quote *)
  let rec body () =
    match Ctx.next ctx with
    | None -> Ctx.reject ctx "unterminated quoted field"
    | Some c ->
      if Ctx.eq ctx b_quote_close c '"' then begin
        (* A doubled quote continues the field. *)
        match Ctx.peek ctx with
        | Some c2 when Ctx.eq ctx b_quote_escape c2 '"' ->
          ignore (Ctx.next ctx);
          body ()
        | Some _ | None -> ()
      end
      else body ()
  in
  body ()

let field ctx =
  Ctx.with_frame ctx s_field @@ fun () ->
  match Ctx.peek ctx with
  | None -> ()
  | Some c ->
    if Ctx.eq ctx b_quote_open c '"' then quoted ctx
    else ignore (Helpers.read_set ctx b_bare_char ~label:"bare-char" bare_chars)

let record ctx =
  Ctx.with_frame ctx s_record @@ fun () ->
  field ctx;
  let rec more () =
    if Helpers.eat_if ctx b_comma ',' then begin
      field ctx;
      more ()
    end
  in
  more ()

let parse ctx =
  Ctx.with_frame ctx s_parse @@ fun () ->
  record ctx;
  let rec rest () =
    match Ctx.peek ctx with
    | None -> ignore (Ctx.branch ctx b_final_eof true)
    | Some c ->
      if Ctx.eq ctx b_newline c '\n' then begin
        ignore (Ctx.next ctx);
        if not (Ctx.at_eof ctx) then begin
          record ctx;
          rest ()
        end
        else (* trailing newline; probe EOF for extensibility *)
          ignore (Ctx.peek ctx)
      end
      else Ctx.reject ctx "unexpected character after field"
  in
  rest ()

let tokens = [ Token.literal ","; Token.make "field" 1 ]

let tokenize input =
  let tags = ref [] in
  let push tag = if not (List.mem tag !tags) then tags := tag :: !tags in
  String.iter
    (fun c ->
      match c with
      | ',' -> push ","
      | '\n' -> ()
      | _ -> push "field")
    input;
  List.rev !tags

let subject =
  {
    Subject.name = "csv";
    description = "comma-separated values (paper subject: csvparser)";
    registry;
    parse;
    fuel = 100_000;
    tokens;
    tokenize;
    original_loc = 297;
  }
