module Iset = Set.Make (Int)

(* Taints on the execution hot path are almost always contiguous: a
   character carries a singleton index, and a token accumulates the
   union of consecutive indices. Representing that common case as an
   interval makes [singleton] a 3-word allocation and [union] /
   [max_index] O(1), instead of building balanced-tree nodes per
   character. Non-contiguous taints (values derived from scattered input
   positions) fall back to a real integer set.

   Invariant: [Interval] has [lo <= hi]; [Set] is non-empty and
   non-contiguous. Every constructor re-normalises, so structural
   comparison of cases is sound in [equal]. *)
type t = Empty | Interval of { lo : int; hi : int } | Set of Iset.t

let empty = Empty
let singleton i = Interval { lo = i; hi = i }

let to_set = function
  | Empty -> Iset.empty
  | Interval { lo; hi } ->
    let rec go acc i = if i < lo then acc else go (Iset.add i acc) (i - 1) in
    go Iset.empty hi
  | Set s -> s

let of_set s =
  match (Iset.min_elt_opt s, Iset.max_elt_opt s) with
  | None, _ -> Empty
  | Some lo, Some hi when hi - lo + 1 = Iset.cardinal s -> Interval { lo; hi }
  | _ -> Set s

let union a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | Interval { lo = l1; hi = h1 }, Interval { lo = l2; hi = h2 }
    when l2 <= h1 + 1 && l1 <= h2 + 1 ->
    (* Overlapping or adjacent intervals merge without leaving the fast
       representation. *)
    Interval { lo = min l1 l2; hi = max h1 h2 }
  | _ -> of_set (Iset.union (to_set a) (to_set b))

let is_empty t = t = Empty

let mem i = function
  | Empty -> false
  | Interval { lo; hi } -> lo <= i && i <= hi
  | Set s -> Iset.mem i s

let max_index = function
  | Empty -> None
  | Interval { hi; _ } -> Some hi
  | Set s -> Iset.max_elt_opt s

(* [Set] is non-empty by invariant, so [max_elt] cannot raise. *)
let max_index_raw = function
  | Empty -> -1
  | Interval { hi; _ } -> hi
  | Set s -> Iset.max_elt s

let min_index = function
  | Empty -> None
  | Interval { lo; _ } -> Some lo
  | Set s -> Iset.min_elt_opt s

let cardinal = function
  | Empty -> 0
  | Interval { lo; hi } -> hi - lo + 1
  | Set s -> Iset.cardinal s

let to_list = function
  | Empty -> []
  | Interval { lo; hi } -> List.init (hi - lo + 1) (fun i -> lo + i)
  | Set s -> Iset.elements s

let of_list l = of_set (Iset.of_list l)

let equal a b =
  match (a, b) with
  | Empty, Empty -> true
  | Interval { lo = l1; hi = h1 }, Interval { lo = l2; hi = h2 } ->
    l1 = l2 && h1 = h2
  | Set s1, Set s2 -> Iset.equal s1 s2
  | _ -> false

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (to_list t)))
