module Site = Pdf_instr.Site
module Coverage = Pdf_instr.Coverage
module Comparison = Pdf_instr.Comparison
module Ctx = Pdf_instr.Ctx
module Runner = Pdf_instr.Runner
module Frame = Pdf_instr.Frame
module Charset = Pdf_util.Charset
module Rng = Pdf_util.Rng
module Tchar = Pdf_taint.Tchar
module Tstring = Pdf_taint.Tstring

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* {1 Site} *)

let test_site_registry () =
  let r = Site.create_registry "t" in
  let a = Site.block r "a" in
  let b = Site.branch r "b" in
  check Alcotest.int "dense ids" 0 (Site.id a);
  check Alcotest.int "dense ids" 1 (Site.id b);
  check Alcotest.string "name" "a" (Site.name a);
  check Alcotest.int "site count" 2 (Site.site_count r);
  check Alcotest.int "outcome total: block 1 + branch 2" 3 (Site.total_outcomes r);
  check Alcotest.int "block outcome ignores taken" (Site.outcome a true) (Site.outcome a false);
  Alcotest.(check bool) "branch outcomes differ" true
    (Site.outcome b true <> Site.outcome b false);
  check Alcotest.(list string) "declaration order" [ "a"; "b" ]
    (List.map Site.name (Site.sites r));
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Site: duplicate site \"a\" in registry \"t\"") (fun () ->
      ignore (Site.block r "a"))

let test_site_outcome_names () =
  let r = Site.create_registry "t" in
  let a = Site.block r "blk" in
  let b = Site.branch r "br" in
  check Alcotest.string "block name" "blk" (Site.outcome_name r (Site.outcome a true));
  check Alcotest.string "branch taken" "br:taken" (Site.outcome_name r (Site.outcome b true));
  check Alcotest.string "branch fall" "br:fall" (Site.outcome_name r (Site.outcome b false))

(* {1 Coverage} *)

let test_coverage () =
  let c = Coverage.of_list [ 1; 2; 3 ] in
  check Alcotest.int "cardinal" 3 (Coverage.cardinal c);
  Alcotest.(check bool) "mem" true (Coverage.mem 2 c);
  let d = Coverage.of_list [ 3; 4 ] in
  check Alcotest.int "union" 4 (Coverage.cardinal (Coverage.union c d));
  check Alcotest.int "new_against" 1 (Coverage.new_against d ~baseline:c);
  check Alcotest.int "diff" 2 (Coverage.cardinal (Coverage.diff c d));
  Alcotest.(check bool) "equal" true (Coverage.equal c (Coverage.of_list [ 3; 2; 1 ]))

(* {1 Comparison} *)

let mk_cmp ?(index = 0) ?(result = false) kind =
  { Comparison.trace_pos = 0; index; kind; result; stack_depth = 1 }

let test_replacements () =
  let rng = Rng.make 1 in
  check Alcotest.(list string) "char eq" [ "x" ]
    (Comparison.replacements rng (mk_cmp (Comparison.Char_eq 'x')));
  let digits = Comparison.replacements rng (mk_cmp (Comparison.Char_range ('0', '9'))) in
  check Alcotest.int "digit range enumerated" 10 (List.length digits);
  let suffix =
    Comparison.replacements rng
      (mk_cmp (Comparison.Str_eq { expected = "while"; offset = 2 }))
  in
  check Alcotest.(list string) "keyword suffix" [ "ile" ] suffix;
  check Alcotest.(list string) "exhausted keyword" []
    (Comparison.replacements rng
       (mk_cmp (Comparison.Str_eq { expected = "do"; offset = 2 })));
  let sampled =
    Comparison.replacements rng (mk_cmp (Comparison.Char_set (Charset.printable, "p")))
  in
  Alcotest.(check bool) "large set sampled, bounded" true
    (List.length sampled >= 1 && List.length sampled <= 4)

let prop_char_constraint =
  QCheck.Test.make ~name:"char_constraint matches observed result" ~count:500
    QCheck.(triple (map Char.chr (int_range 0 255)) (map Char.chr (int_range 0 255)) bool)
    (fun (observed, expected, result) ->
      (* For a Char_eq event with the given result, the constraint set
         contains exactly the chars that would reproduce that result. *)
      let cmp = mk_cmp ~result (Comparison.Char_eq expected) in
      let set = Comparison.char_constraint cmp in
      Charset.mem observed set = (if result then observed = expected else observed <> expected))

(* {1 Ctx: a toy parser} *)

let toy_registry = Site.create_registry "toy"
let toy_root = Site.block toy_registry "root"
let toy_digit = Site.branch toy_registry "digit?"
let toy_kw = Site.branch toy_registry "kw?"
let toy_inner = Site.block toy_registry "inner"

(* Accepts one digit, or the keyword "hi". *)
let toy_parse ctx =
  Ctx.with_frame ctx toy_root @@ fun () ->
  match Ctx.peek ctx with
  | None -> Ctx.reject ctx "empty"
  | Some c ->
    if Ctx.in_range ctx toy_digit c '0' '9' then begin
      ignore (Ctx.next ctx);
      if not (Ctx.at_eof ctx) then Ctx.reject ctx "trailing"
    end
    else begin
      let word =
        Ctx.with_frame ctx toy_inner @@ fun () ->
        let rec go acc =
          match Ctx.next ctx with
          | None -> acc
          | Some c -> go (Tstring.append_char acc c)
        in
        go Tstring.empty
      in
      if not (Ctx.str_eq ctx toy_kw word "hi") then Ctx.reject ctx "bad keyword"
    end

let toy_run input =
  Runner.exec ~registry:toy_registry ~parse:toy_parse ~track_trace:true input

let test_ctx_accept_digit () =
  let run = toy_run "7" in
  Alcotest.(check bool) "accepted" true (Runner.accepted run);
  Alcotest.(check bool) "no eof hunger" false run.eof_access;
  Alcotest.(check bool) "covered root" true
    (Coverage.mem (Site.outcome toy_root true) run.coverage)

let test_ctx_eof_access () =
  let run = toy_run "" in
  Alcotest.(check bool) "rejected" true (not (Runner.accepted run));
  Alcotest.(check bool) "eof access on empty peek" true run.eof_access

let test_ctx_comparisons () =
  let run = toy_run "hx" in
  (* digit check at 0 fails; word = "hx"; str_eq "hi": 'h' matches, 'x'
     mismatches at index 1 with suffix event. *)
  Alcotest.(check bool) "rejected" true (not (Runner.accepted run));
  let idx = Runner.substitution_index run in
  check Alcotest.(option int) "substitution at mismatch" (Some 1) idx;
  let comps = Runner.comparisons_at_last_index run in
  let has_i_suggestion =
    List.exists
      (fun (c : Comparison.t) ->
        match c.kind with Comparison.Char_eq 'i' -> not c.result | _ -> false)
      comps
  in
  Alcotest.(check bool) "suggests 'i' at index 1" true has_i_suggestion

let test_ctx_str_eq_prefix () =
  (* Input "h" is a proper prefix of "hi": the comparison must point one
     past the token with the completing suffix. *)
  let run = toy_run "h" in
  let comps = Runner.comparisons_at_last_index run in
  check Alcotest.(option int) "index just past token" (Some 1)
    (Runner.substitution_index run);
  let rng = Rng.make 1 in
  let repls = List.concat_map (Comparison.replacements rng) comps in
  Alcotest.(check bool) "suggests completing 'i'" true (List.mem "i" repls)

let test_ctx_stack_depth () =
  let run = toy_run "hx" in
  check Alcotest.int "max depth: root + inner" 2 run.max_depth;
  Alcotest.(check bool) "comparison depths recorded" true
    (Array.exists (fun (c : Comparison.t) -> c.stack_depth >= 1) run.comparisons)

let test_ctx_depth_restored_on_reject () =
  let registry = Site.create_registry "depth-restore" in
  let outer = Site.block registry "outer" in
  let ctx = Ctx.make ~registry "x" in
  (try Ctx.with_frame ctx outer (fun () -> Ctx.reject ctx "boom")
   with Ctx.Reject _ -> ());
  check Alcotest.int "depth restored after exception" 0 (Ctx.depth ctx)

let test_ctx_fuel () =
  let registry = Site.create_registry "fuel" in
  let s = Site.block registry "loop" in
  let parse ctx =
    Ctx.with_frame ctx s @@ fun () ->
    while true do
      Ctx.tick ctx
    done
  in
  let run = Runner.exec ~registry ~parse ~fuel:100 "x" in
  Alcotest.(check bool) "hang verdict" true (run.verdict = Runner.Hang)

let test_ctx_untracked () =
  let ctx = Ctx.make ~registry:toy_registry ~track_comparisons:false "a" in
  (try toy_parse ctx with Ctx.Reject _ -> ());
  check Alcotest.int "no comparison events" 0 (List.length (Ctx.comparisons ctx));
  Alcotest.(check bool) "coverage still recorded" true
    (Coverage.cardinal (Ctx.coverage ctx) > 0)

let test_ctx_untainted_no_event () =
  let registry = Site.create_registry "untainted" in
  let b = Site.branch registry "cmp" in
  let ctx = Ctx.make ~registry "xyz" in
  ignore (Ctx.eq ctx b (Tchar.untainted 'q') 'q');
  check Alcotest.int "constant comparison emits nothing" 0
    (List.length (Ctx.comparisons ctx))

let test_expect_token () =
  let registry = Site.create_registry "expect-token" in
  let b = Site.branch registry "want-while" in
  let ctx = Ctx.make ~registry "do x;" in
  let matched = Ctx.expect_token ctx b ~at:5 ~spelling:"while" ~matched:false in
  Alcotest.(check bool) "returns matched" false matched;
  (match Ctx.comparisons ctx with
   | [ c ] ->
     check Alcotest.int "event at the token position" 5 c.Comparison.index;
     let rng = Rng.make 1 in
     check Alcotest.(list string) "suggests the spelling" [ "while" ]
       (Comparison.replacements rng c)
   | other -> Alcotest.failf "expected one event, got %d" (List.length other));
  (* A matching expectation emits nothing. *)
  let ctx2 = Ctx.make ~registry "while" in
  ignore (Ctx.expect_token ctx2 b ~at:0 ~spelling:"while" ~matched:true);
  check Alcotest.int "match emits no event" 0 (List.length (Ctx.comparisons ctx2))

let test_frames () =
  let ctx = Ctx.make ~registry:toy_registry ~track_frames:true "hi" in
  toy_parse ctx;
  let frames = Ctx.frames ctx in
  check Alcotest.int "enter/exit pairs: root + inner" 4 (Array.length frames);
  (match frames.(0) with
   | Frame.Enter { site; pos } ->
     check Alcotest.string "root first" "root" (Site.name site);
     check Alcotest.int "at position 0" 0 pos
   | Frame.Exit _ -> Alcotest.fail "expected enter");
  match frames.(3) with
  | Frame.Exit { pos } -> check Alcotest.int "root exits at end" 2 pos
  | Frame.Enter _ -> Alcotest.fail "expected exit"

(* {1 Runner helpers} *)

let test_trace_and_path () =
  let r1 = toy_run "3" and r2 = toy_run "hx" in
  Alcotest.(check bool) "traces nonempty" true
    (Array.length r1.trace > 0 && Array.length r2.trace > 0);
  Alcotest.(check bool) "different paths hash differently" true
    (Runner.path_hash r1 <> Runner.path_hash r2);
  check Alcotest.int "same input same hash" (Runner.path_hash r1)
    (Runner.path_hash (toy_run "3"))

let test_avg_stack () =
  let run = toy_run "hx" in
  Alcotest.(check bool) "avg stack positive" true (Runner.avg_stack_of_last_two run > 0.0);
  let empty_run = toy_run "" in
  check (Alcotest.float 1e-9) "no comparisons -> 0" 0.0
    (Runner.avg_stack_of_last_two empty_run)

let test_coverage_up_to () =
  let run = toy_run "hx" in
  let upto = Runner.coverage_up_to_last_index run in
  Alcotest.(check bool) "prefix coverage is a subset" true
    (Coverage.cardinal (Coverage.diff upto run.coverage) = 0);
  Alcotest.(check bool) "prefix coverage nonempty" true (Coverage.cardinal upto > 0)

(* {1 Substitution-index edge cases}

   The search derives every new candidate from [substitution_index] and
   [comparisons_at_last_index]; these pin down the boundary behaviours
   the algorithm depends on. *)

let test_subst_empty_input () =
  (* EOF-only run: the empty input dies on the first peek without a
     single comparison, so there is no substitution point — only the
     EOF-hunger flag. *)
  let run = toy_run "" in
  check Alcotest.(option int) "no comparisons, no index" None
    (Runner.substitution_index run);
  check Alcotest.int "no comparisons at last index" 0
    (List.length (Runner.comparisons_at_last_index run));
  Alcotest.(check bool) "run is eof-hungry" true run.eof_access

let test_subst_index_zero () =
  (* "x" fails both the digit probe and the keyword comparison at input
     index 0: Some 0 must not be conflated with None. *)
  let run = toy_run "x" in
  check Alcotest.(option int) "substitution at the first character" (Some 0)
    (Runner.substitution_index run);
  let comps = Runner.comparisons_at_last_index run in
  Alcotest.(check bool) "events reported at index 0" true (comps <> []);
  Alcotest.(check bool) "all events sit at index 0" true
    (List.for_all (fun (c : Comparison.t) -> c.index = 0) comps)

let test_subst_all_successful () =
  (* An accepted run has no failed comparison; the index falls back to
     the rightmost compared position. *)
  let run = toy_run "7" in
  Alcotest.(check bool) "accepted" true (Runner.accepted run);
  check Alcotest.(option int) "rightmost successful comparison" (Some 0)
    (Runner.substitution_index run)

let test_subst_untainted_last () =
  (* The chronologically last comparison involves only an untainted
     constant, which emits no event — the substitution point must stay
     at the last tainted comparison. *)
  let registry = Site.create_registry "untainted-last" in
  let tainted = Site.branch registry "tainted" in
  let const = Site.branch registry "const" in
  let parse ctx =
    (match Ctx.next ctx with
     | Some c -> ignore (Ctx.eq ctx tainted c 'a')
     | None -> ());
    ignore (Ctx.eq ctx const (Tchar.untainted 'z') 'z')
  in
  let run = Runner.exec ~registry ~parse "q" in
  check Alcotest.(option int) "index of the tainted comparison" (Some 0)
    (Runner.substitution_index run);
  check Alcotest.int "one event at it" 1
    (List.length (Runner.comparisons_at_last_index run))

(* {1 Snapshot / resume} *)

module Subject = Pdf_subjects.Subject

let run_equal (a : Runner.run) (b : Runner.run) =
  a.input = b.input && a.verdict = b.verdict
  && a.comparisons = b.comparisons
  && Coverage.equal a.coverage b.coverage
  && a.trace = b.trace && a.touched = b.touched
  && a.eof_access = b.eof_access && a.max_depth = b.max_depth
  && a.frames = b.frames

let json_subject = Pdf_subjects.Catalog.find "json"

let json_machine =
  match json_subject.Subject.machine with
  | Some m -> m
  | None -> failwith "json subject has no machine-form parser"

let exec_json input =
  Subject.exec_journaled ~track_trace:true ~track_frames:true json_subject
    json_machine input

let test_snapshot_resume_identity () =
  (* Resuming from the snapshot at any position — on the same input or
     on one that diverges right after the prefix — is bit-identical to a
     full execution. *)
  let input = {|{"a": [1, true]}|} in
  let full, journal = exec_json input in
  for p = 1 to String.length input do
    match Runner.snapshot_at journal p with
    | None -> Alcotest.failf "no snapshot at position %d" p
    | Some snap ->
      check Alcotest.int "snapshot position" p (Runner.snapshot_pos snap);
      let resumed, _ = Runner.resume snap input in
      Alcotest.(check bool)
        (Printf.sprintf "identical resume at %d" p)
        true (run_equal full resumed);
      let mutated = String.sub input 0 p ^ "#" in
      let mutated_full, _ = exec_json mutated in
      let mutated_resumed, _ = Runner.resume snap mutated in
      Alcotest.(check bool)
        (Printf.sprintf "identical diverging resume at %d" p)
        true
        (run_equal mutated_full mutated_resumed)
  done

let test_snapshot_unread_positions () =
  (* "[1]#" rejects at the trailing '#', so position 4 is never read and
     has no snapshot; every read position has one. *)
  let _run, journal = exec_json "[1]#" in
  Alcotest.(check bool) "read position has a snapshot" true
    (Runner.snapshot_at journal 3 <> None);
  Alcotest.(check bool) "unread position has none" true
    (Runner.snapshot_at journal 4 = None)

let test_resume_chains () =
  (* A resumed run's journal covers the new suffix, so grandchildren can
     resume from a child's snapshot. *)
  let parent = "[1," in
  let child = "[1,2" in
  let grandchild = "[1,2]" in
  let _, j0 = exec_json parent in
  let snap0 = Option.get (Runner.snapshot_at j0 (String.length parent)) in
  let _, j1 = Runner.resume snap0 child in
  let snap1 = Option.get (Runner.snapshot_at j1 (String.length child)) in
  let resumed, _ = Runner.resume snap1 grandchild in
  let full, _ = exec_json grandchild in
  Alcotest.(check bool) "grandchild identical via two hops" true
    (run_equal full resumed)

let test_prefix_cache_lru () =
  let snap input pos =
    let _, j = exec_json input in
    Option.get (Runner.snapshot_at j pos)
  in
  let cache = Runner.Cache.create ~bound:2 () in
  Runner.Cache.store cache "[" (snap "[1]" 1);
  Runner.Cache.store cache "[1" (snap "[1]" 2);
  check Alcotest.int "both resident" 2 (Runner.Cache.length cache);
  (* Touch "[" so that "[1" becomes the LRU victim. *)
  Alcotest.(check bool) "hit" true (Runner.Cache.find cache "[" <> None);
  Runner.Cache.store cache "[1," (snap "[1,2]" 3);
  check Alcotest.int "bound respected" 2 (Runner.Cache.length cache);
  Alcotest.(check bool) "least-recently-used entry evicted" true
    (Runner.Cache.find cache "[1" = None);
  Alcotest.(check bool) "recently-used entry survives" true
    (Runner.Cache.find cache "[" <> None);
  (* Duplicate store keeps the first entry and the length. *)
  Runner.Cache.store cache "[" (snap "[2]" 1);
  check Alcotest.int "duplicate store does not grow" 2
    (Runner.Cache.length cache);
  let s = Runner.Cache.stats cache in
  check Alcotest.int "hits" 2 s.Runner.Cache.hits;
  check Alcotest.int "misses" 1 s.Runner.Cache.misses;
  check Alcotest.int "evictions" 1 s.Runner.Cache.evictions;
  Alcotest.(check bool) "chars saved counted" true (s.Runner.Cache.chars_saved > 0)

(* {1 Crash containment}

   The exception contract of runner.mli: any exception a subject raises
   — other than [Ctx.Reject] and [Ctx.Out_of_fuel] — surfaces as a
   [Crash] verdict, in both the direct-style and the machine-form
   execution paths, with an (exception, site) identity that separates
   distinct raise points and coincides for the same raise point. *)

let test_crash_containment () =
  let registry = Site.create_registry "crashy" in
  let a = Site.branch registry "a" in
  let b = Site.branch registry "b" in
  let direct parse = (Runner.exec ~registry ~parse "x").Runner.verdict in
  let v_fail =
    direct (fun ctx ->
        ignore (Ctx.branch ctx a true);
        failwith "boom")
  in
  let v_deep =
    direct (fun ctx ->
        ignore (Ctx.branch ctx a true);
        ignore (Ctx.branch ctx b true);
        failwith "boom")
  in
  let v_arg =
    direct (fun ctx ->
        ignore (Ctx.branch ctx a true);
        invalid_arg "bad")
  in
  let machine_run, _journal =
    Runner.exec_machine ~registry
      ~machine:(fun ctx ->
        ignore (Ctx.branch ctx a true);
        failwith "boom")
      "x"
  in
  (match (v_fail, v_deep, v_arg, machine_run.Runner.verdict) with
   | Runner.Crash c1, Runner.Crash c2, Runner.Crash c3, Runner.Crash cm ->
     check Alcotest.string "constructor name"
       (Printexc.exn_slot_name (Failure "boom"))
       c1.Runner.exn;
     check Alcotest.string "same exception, same label" c1.Runner.exn
       c2.Runner.exn;
     Alcotest.(check bool) "different raise points get different sites" true
       (c1.Runner.site <> c2.Runner.site);
     Alcotest.(check bool) "different exceptions get different identities" true
       (Runner.crash_id c3 <> Runner.crash_id c1);
     check Alcotest.string "machine form crashes with the same identity"
       (Runner.crash_id c1) (Runner.crash_id cm)
   | _ -> Alcotest.fail "a raising subject did not yield a Crash verdict");
  (* The two blessed control-flow exceptions keep their own verdicts. *)
  (match direct (fun ctx -> Ctx.reject ctx "no") with
   | Runner.Rejected _ -> ()
   | v -> Alcotest.failf "Reject mapped to %a" Runner.pp_verdict v);
  match direct (fun _ -> raise Ctx.Out_of_fuel) with
  | Runner.Hang -> ()
  | v -> Alcotest.failf "Out_of_fuel mapped to %a" Runner.pp_verdict v

(* A crash reached through a cached resume has the same identity as the
   same crash reached by full execution: the site hash covers only the
   outcomes touched, which are bit-identical either way. *)
let test_crash_identity_stable_across_resume () =
  let registry = Site.create_registry "resumable-crash" in
  let a = Site.branch registry "a" in
  let machine _ctx =
    let open Pdf_instr.Machine in
    Next
      (fun c ctx ->
        match c with
        | Some t when Tchar.code t = Char.code '{' ->
          Next
            (fun _ ctx ->
              ignore (Ctx.branch ctx a true);
              failwith "late boom")
        | _ -> Ctx.reject ctx "want {")
  in
  let full, journal = Runner.exec_machine ~registry ~machine "{x" in
  let snap = Option.get (Runner.snapshot_at journal 1) in
  let resumed, _ = Runner.resume snap "{x" in
  match (full.Runner.verdict, resumed.Runner.verdict) with
  | Runner.Crash cf, Runner.Crash cr ->
    check Alcotest.string "crash identity stable across resume"
      (Runner.crash_id cf) (Runner.crash_id cr)
  | _ -> Alcotest.fail "crash not contained on both paths"

(* {1 Cross-subject invariants} *)

let printable_gen =
  QCheck.string_gen_of_size (QCheck.Gen.int_range 0 16) QCheck.Gen.printable

let subject_invariants (subject : Pdf_subjects.Subject.t) =
  QCheck.Test.make
    ~name:(Printf.sprintf "instrumentation invariants hold on %s" subject.name)
    ~count:300 printable_gen
    (fun input ->
      let run =
        Pdf_subjects.Subject.run ~track_trace:true ~track_frames:true subject
          input
      in
      (* Coverage is the set of trace outcomes. *)
      let trace_cov = Coverage.of_list (Array.to_list run.trace) in
      let cov_ok = Coverage.equal trace_cov run.coverage in
      (* Every comparison's trace position lies within the trace. *)
      let pos_ok =
        Array.for_all
          (fun (c : Comparison.t) ->
            c.trace_pos >= 0 && c.trace_pos <= Array.length run.trace)
          run.comparisons
      in
      (* Comparison indices stay within (or just past) the input. *)
      let idx_ok =
        Array.for_all
          (fun (c : Comparison.t) ->
            c.index >= 0 && c.index <= String.length input)
          run.comparisons
      in
      (* Frames balance on accepted runs. *)
      let balance =
        Array.fold_left
          (fun acc event ->
            match event with Frame.Enter _ -> acc + 1 | Frame.Exit _ -> acc - 1)
          0 run.frames
      in
      let frames_ok = (not (Runner.accepted run)) || balance = 0 in
      cov_ok && pos_ok && idx_ok && frames_ok)

let invariant_tests =
  List.map (fun s -> qtest (subject_invariants s)) Pdf_subjects.Catalog.all

let () =
  Alcotest.run "pdf_instr"
    [
      ( "site",
        [
          Alcotest.test_case "registry" `Quick test_site_registry;
          Alcotest.test_case "outcome names" `Quick test_site_outcome_names;
        ] );
      ("coverage", [ Alcotest.test_case "set operations" `Quick test_coverage ]);
      ( "comparison",
        [
          Alcotest.test_case "replacements" `Quick test_replacements;
          qtest prop_char_constraint;
        ] );
      ( "ctx",
        [
          Alcotest.test_case "accepts digit" `Quick test_ctx_accept_digit;
          Alcotest.test_case "eof access" `Quick test_ctx_eof_access;
          Alcotest.test_case "comparison log" `Quick test_ctx_comparisons;
          Alcotest.test_case "str_eq prefix suffix" `Quick test_ctx_str_eq_prefix;
          Alcotest.test_case "stack depth" `Quick test_ctx_stack_depth;
          Alcotest.test_case "depth restored on reject" `Quick test_ctx_depth_restored_on_reject;
          Alcotest.test_case "fuel exhaustion" `Quick test_ctx_fuel;
          Alcotest.test_case "untracked mode" `Quick test_ctx_untracked;
          Alcotest.test_case "constants emit no events" `Quick test_ctx_untainted_no_event;
          Alcotest.test_case "expect_token (7.2)" `Quick test_expect_token;
          Alcotest.test_case "frame events" `Quick test_frames;
        ] );
      ( "runner",
        [
          Alcotest.test_case "trace and path hash" `Quick test_trace_and_path;
          Alcotest.test_case "avg stack" `Quick test_avg_stack;
          Alcotest.test_case "coverage up to last index" `Quick test_coverage_up_to;
          Alcotest.test_case "substitution: empty input" `Quick test_subst_empty_input;
          Alcotest.test_case "substitution: index 0" `Quick test_subst_index_zero;
          Alcotest.test_case "substitution: all successful" `Quick test_subst_all_successful;
          Alcotest.test_case "substitution: untainted last" `Quick test_subst_untainted_last;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "resume identity at every position" `Quick
            test_snapshot_resume_identity;
          Alcotest.test_case "unread positions have no snapshot" `Quick
            test_snapshot_unread_positions;
          Alcotest.test_case "resume chains" `Quick test_resume_chains;
          Alcotest.test_case "prefix cache LRU" `Quick test_prefix_cache_lru;
        ] );
      ( "crash containment",
        [
          Alcotest.test_case "contract: direct and machine form" `Quick
            test_crash_containment;
          Alcotest.test_case "identity stable across resume" `Quick
            test_crash_identity_stable_across_resume;
        ] );
      ("invariants", invariant_tests);
    ]
