(** First-class subject descriptions.

    A subject bundles everything the fuzzers and the evaluation need: the
    instrumented parser, its site registry (coverage denominator), its
    token inventory and an oracle tokenizer that maps a {e valid} input to
    the set of token tags it contains. *)

type t = {
  name : string;
  description : string;
  registry : Pdf_instr.Site.registry;
  parse : Pdf_instr.Ctx.t -> unit;
  fuel : int;  (** per-run fuel budget (interpreting subjects hang) *)
  tokens : Token.t list;
  tokenize : string -> string list;
      (** token tags occurring in a valid input; behaviour on invalid
          inputs is unspecified *)
  original_loc : int;  (** lines of code of the paper's C subject (Table 1) *)
}

val run :
  ?track_comparisons:bool -> ?track_trace:bool -> ?track_frames:bool ->
  t -> string ->
  Pdf_instr.Runner.run
(** Execute the subject on one input with its fuel budget. Pass
    [~track_comparisons:false] to skip the comparison log (lexical
    fuzzers need only coverage) and [~track_trace:true] to record the
    full outcome trace with multiplicities (the AFL shim's bitmap needs
    it; the pFuzzer search does not). *)

val accepts : t -> string -> bool
