lib/util/render.ml: Array Format List String
