(** Context-free grammars mined from parser executions (paper §7.4).

    Nonterminals are parser-function names; terminals are literal input
    fragments. A grammar maps each nonterminal to the set of
    right-hand-side productions observed across the mined inputs. *)

type symbol = Terminal of string | Nonterminal of string

type production = symbol list

type t

val empty : start:string -> t
val start : t -> string

val add_production : t -> string -> production -> t
(** Idempotent: duplicate productions of a nonterminal are kept once. *)

val productions : t -> string -> production list
val nonterminals : t -> string list
val production_count : t -> int

val pp : Format.formatter -> t -> unit
(** BNF-style rendering. *)
