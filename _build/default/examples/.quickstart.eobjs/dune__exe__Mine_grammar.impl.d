examples/mine_grammar.ml: Format List Pdf_core Pdf_grammar Pdf_instr Pdf_subjects Pdf_util Printf String
