module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site
module Charset = Pdf_util.Charset
module Tstring = Pdf_taint.Tstring

let registry = Site.create_registry "ini"
let s_parse = Site.block registry "parse"
let s_line = Site.block registry "line"
let s_section = Site.block registry "section"
let s_kvpair = Site.block registry "kvpair"
let s_comment = Site.block registry "comment"
let b_blank = Site.branch registry "line.blank"
let b_comment_semi = Site.branch registry "line.semicolon?"
let b_comment_hash = Site.branch registry "line.hash?"
let b_lbracket = Site.branch registry "line.lbracket?"
let b_newline = Site.branch registry "line.newline?"
let b_keychar = Site.branch registry "line.keychar?"
let b_rbracket = Site.branch registry "section.rbracket?"
let b_section_nl = Site.branch registry "section.newline?"
let b_section_empty = Site.branch registry "section.empty-name?"
let b_key_more = Site.branch registry "key.more?"
let b_equals = Site.branch registry "kvpair.equals"
let b_value_char = Site.branch registry "value.char?"
let b_inline_ws = Site.branch registry "inline-ws?"

let inline_ws = Charset.of_string " \t\r"
let key_chars = Charset.union Charset.letters (Charset.union Charset.digits (Charset.of_string "_.-"))
let value_chars = Charset.complement (Charset.singleton '\n')

module Machine = Pdf_instr.Machine
module K = Helpers.K

let skip_inline_ws k = K.skip_set b_inline_ws ~label:"inline-ws" inline_ws k
let skip_to_eol k = K.skip_set b_value_char ~label:"line-char" value_chars k

(* [section] parses the body after '[': a (possibly empty, as in inih)
   name terminated by ']'. Any character except ']' and newline may
   appear in a name. *)
let section (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_section
    (fun k ->
      let rec name len ctx =
        K.next
          (fun c ctx ->
            match c with
            | None -> Ctx.reject ctx "unterminated section header"
            | Some c ->
              if Ctx.eq ctx b_rbracket c ']' then begin
                ignore (Ctx.branch ctx b_section_empty (len = 0));
                skip_to_eol k ctx
              end
              else if Ctx.eq ctx b_section_nl c '\n' then
                Ctx.reject ctx "newline in section header"
              else name (len + 1) ctx)
          ctx
      in
      name 0)
    k ctx

(* [kvpair] parses a key (whose first character has already been
   examined but not consumed) up to '=', then the value to end of line. *)
let kvpair (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_kvpair
    (fun k ->
      K.skip_set b_key_more ~label:"key-char" key_chars
        (skip_inline_ws (K.expect b_equals '=' (skip_inline_ws (skip_to_eol k)))))
    k ctx

let line (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_line
    (fun k ->
      skip_inline_ws
        (K.peek (fun c ctx ->
             match c with
             | None ->
               ignore (Ctx.branch ctx b_blank true);
               k ctx
             | Some c ->
               ignore (Ctx.branch ctx b_blank false);
               if Ctx.eq ctx b_newline c '\n' then K.skip k ctx
               else if
                 Ctx.eq ctx b_comment_semi c ';'
                 || Ctx.eq ctx b_comment_hash c '#'
               then K.with_frame s_comment (fun k -> K.skip (skip_to_eol k)) k ctx
               else if Ctx.eq ctx b_lbracket c '[' then K.skip (section k) ctx
               else if Ctx.in_set ctx b_keychar ~label:"key-char" c key_chars
               then kvpair k ctx
               else Ctx.reject ctx "invalid start of line")))
    k ctx

let machine : Machine.recognizer =
 fun ctx ->
  K.with_frame s_parse
    (fun k ->
      let rec lines ctx =
        (* The loop-head peek decides whether another line follows; at end
           of input it doubles as the final EOF probe, so an accepted
           input still signals extensibility. *)
        K.peek
          (fun c ctx ->
            match c with
            | None -> k ctx
            | Some _ ->
              line
                (* [line] stops either at a newline it consumed or at end
                   of line; consume the terminating newline if present. *)
                (K.peek (fun c2 ctx ->
                     match c2 with
                     | Some c2 when Ctx.eq ctx b_newline c2 '\n' ->
                       K.skip lines ctx
                     | Some _ | None -> lines ctx))
                ctx)
          ctx
      in
      lines)
    K.stop ctx

let parse ctx = Machine.run ctx machine

(* {1 Staged (compiled) form}

   INI has no recursive nesting, so the whole recognizer stages at
   module initialisation: every loop ([lines], the section-name scan,
   the skip-sets) closes over itself with [C.fix] or the static
   [skip_set] cycle, and a steady-state run allocates no step nodes at
   all. The section-name scan needs its [len = 0] emptiness branch only
   on the first iteration, so it is staged as a first-iteration node
   chained into a fixed rest-loop. *)
module C = Pdf_instr.Compiled

let sl_rbracket = C.slot_eq b_rbracket ']'
let sl_section_nl = C.slot_eq b_section_nl '\n'
let sl_newline = C.slot_eq b_newline '\n'
let sl_comment_semi = C.slot_eq b_comment_semi ';'
let sl_comment_hash = C.slot_eq b_comment_hash '#'
let sl_lbracket = C.slot_eq b_lbracket '['
let sl_keychar = C.slot_set b_keychar ~label:"key-char" key_chars

let compiled : C.t =
  let skip_inline_ws k = C.skip_set b_inline_ws ~label:"inline-ws" inline_ws k in
  let skip_to_eol k = C.skip_set b_value_char ~label:"line-char" value_chars k in
  let section (k : C.k) : C.k =
    C.with_frame s_section
      (fun k ->
        let after = skip_to_eol k in
        let body ~first rest =
          C.next (fun c ->
              fun ctx ->
                match c with
                | None -> Ctx.reject ctx "unterminated section header"
                | Some c ->
                  if Ctx.eq_slot ctx sl_rbracket c ']' then begin
                    ignore (Ctx.branch ctx b_section_empty first);
                    after ctx
                  end
                  else if Ctx.eq_slot ctx sl_section_nl c '\n' then
                    Ctx.reject ctx "newline in section header"
                  else rest ctx)
        in
        let rest = C.fix (fun rest -> body ~first:false rest) in
        body ~first:true rest)
      k
  in
  let kvpair (k : C.k) : C.k =
    C.with_frame s_kvpair
      (fun k ->
        C.skip_set b_key_more ~label:"key-char" key_chars
          (skip_inline_ws
             (C.expect b_equals '=' (skip_inline_ws (skip_to_eol k)))))
      k
  in
  let line (k : C.k) : C.k =
    C.with_frame s_line
      (fun k ->
        let skip_k = C.skip k in
        let comment =
          C.with_frame s_comment (fun k -> C.skip (skip_to_eol k)) k
        in
        let sec = C.skip (section k) in
        let kv = kvpair k in
        skip_inline_ws
          (C.peek (fun c ->
               fun ctx ->
                 match c with
                 | None ->
                   ignore (Ctx.branch ctx b_blank true);
                   k ctx
                 | Some c ->
                   ignore (Ctx.branch ctx b_blank false);
                   if Ctx.eq_slot ctx sl_newline c '\n' then skip_k ctx
                   else if
                     Ctx.eq_slot ctx sl_comment_semi c ';'
                     || Ctx.eq_slot ctx sl_comment_hash c '#'
                   then comment ctx
                   else if Ctx.eq_slot ctx sl_lbracket c '[' then sec ctx
                   else if Ctx.in_set_slot ctx sl_keychar c key_chars then
                     kv ctx
                   else Ctx.reject ctx "invalid start of line")))
      k
  in
  C.with_frame s_parse
    (fun k ->
      C.fix (fun lines ->
          let skip_lines = C.skip lines in
          let after_line =
            C.peek (fun c2 ->
                fun ctx ->
                  match c2 with
                  | Some c2 when Ctx.eq_slot ctx sl_newline c2 '\n' ->
                    skip_lines ctx
                  | Some _ | None -> lines ctx)
          in
          let body = line after_line in
          (* Loop-head peek doubles as the final EOF probe, exactly as in
             the interpreted machine. *)
          C.peek (fun c -> match c with None -> k | Some _ -> body)))
    C.stop

let tokens =
  [
    Token.literal "[";
    Token.literal "]";
    Token.literal "=";
    Token.literal ";";
    Token.make "identifier" 1;
  ]

let tokenize input =
  let tags = ref [] in
  let push tag = if not (List.mem tag !tags) then tags := tag :: !tags in
  String.iter
    (fun c ->
      match c with
      | '[' -> push "["
      | ']' -> push "]"
      | '=' -> push "="
      | ';' | '#' -> push ";"
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> push "identifier"
      | _ -> ())
    input;
  List.rev !tags

let subject =
  {
    Subject.name = "ini";
    description = "INI configuration files (paper subject: inih)";
    registry;
    parse;
    machine = Some machine;
    compiled = Some compiled;
    compiled_preferred = true;
    fuel = 100_000;
    tokens;
    tokenize;
    original_loc = 293;
  }
