module Render = Pdf_util.Render

type meta = {
  subject : string;
  outcomes : int;
  seed : int;
  max_executions : int;
  incremental : bool;
  engine : string;
}

type point = { exec : int; t_ns : int; cov : int; valid : int }

type slow = {
  s_exec : int;
  s_dur_ns : int;
  s_verdict : string;
  s_len : int;
  s_cached : bool;
}

type t = {
  cell : (string * string * int) option;  (* tool, subject, seed in merged traces *)
  meta : meta option;
  execs : int;
  wall_ns : int;
  final_cov : int;
  final_valid : int;
  execs_per_sec : float;
  curve : point list;  (* one point per execution, in order *)
  phases : (string * int) list;  (* cumulative span totals *)
  phase_percentiles : (string * int) list;  (* <phase>_p50 / _p99 entries *)
  slowest : slow list;  (* top-N by duration, longest first *)
  cache_hits : int;
  cache_misses : int;
  valids : (int * string) list;  (* exec count, input — in discovery order *)
  engines : (string * (int * int)) list;
      (* engine tag -> (executions, total exec duration ns), in
         first-seen order; one entry for a homogeneous run, two when a
         merged trace mixes tiers *)
  hangs : int;
  crashes : int;
  crash_unique : int;  (* distinct (exn, site) identities *)
  faults : int;  (* injected faults that fired (chaos runs) *)
  rescues : int;  (* crashed cache resumes recovered by cold re-execution *)
}

(* Split a merged evaluate trace into per-cell runs. A trace with no
   Cell events is one anonymous segment. *)
let segments events =
  let flush cell acc segs =
    match (cell, acc) with
    | None, [] -> segs
    | _ -> (cell, List.rev acc) :: segs
  in
  let rec go cell acc segs = function
    | [] -> List.rev (flush cell acc segs)
    | ({ Event.ev = Event.Cell c; _ } : Event.stamped) :: rest ->
      go (Some (c.tool, c.subject, c.seed)) [] (flush cell acc segs) rest
    | ev :: rest -> go cell (ev :: acc) segs rest
  in
  go None [] [] events

let known_phases = List.map Phase.name Phase.all

let analyse ?(top = 10) ?cell events =
  let meta = ref None in
  let curve_rev = ref [] in
  let execs = ref 0 in
  let last_t = ref 0 in
  let cov = ref 0 in
  let valid = ref 0 in
  let phases = ref [] in
  let phase_percentiles = ref [] in
  let wall = ref 0 in
  let eps = ref 0.0 in
  let hits = ref 0 in
  let misses = ref 0 in
  let valids_rev = ref [] in
  let engines_rev = ref [] in
  let note_engine tag dur =
    match List.assoc_opt tag !engines_rev with
    | Some cell ->
      let n, ns = !cell in
      cell := (n + 1, ns + dur)
    | None -> engines_rev := !engines_rev @ [ (tag, ref (1, dur)) ]
  in
  let slow_all = ref [] in
  let hangs = ref 0 in
  let crashes = ref 0 in
  let crash_unique = ref 0 in
  let faults = ref 0 in
  let rescues = ref 0 in
  List.iter
    (fun (s : Event.stamped) ->
      last_t := max !last_t s.t_ns;
      execs := max !execs s.exec;
      match s.ev with
      | Event.Run_meta m ->
        meta :=
          Some
            {
              subject = m.subject;
              outcomes = m.outcomes;
              seed = m.seed;
              max_executions = m.max_executions;
              incremental = m.incremental;
              engine = m.engine;
            }
      | Event.Exec_done e ->
        cov := e.cov;
        note_engine e.engine e.dur_ns;
        if e.valid then incr valid;
        curve_rev := { exec = s.exec; t_ns = s.t_ns; cov = e.cov; valid = !valid } :: !curve_rev;
        slow_all :=
          {
            s_exec = s.exec;
            s_dur_ns = e.dur_ns;
            s_verdict = e.verdict;
            s_len = e.len;
            s_cached = e.cached;
          }
          :: !slow_all
      | Event.Valid v -> valids_rev := (s.exec, v.input) :: !valids_rev
      | Event.Cache_hit _ -> incr hits
      | Event.Cache_miss -> incr misses
      | Event.Hang h -> hangs := max !hangs h.total
      | Event.Crash c ->
        crashes := max !crashes c.total;
        if c.fresh then incr crash_unique
      | Event.Fault _ -> incr faults
      | Event.Rescue _ -> incr rescues
      | Event.Phases p ->
        phases := List.filter (fun (name, _) -> List.mem name known_phases) p.spans;
        phase_percentiles :=
          List.filter (fun (name, _) -> not (List.mem name known_phases)) p.spans;
        wall := p.wall_ns
      | Event.Run_done r ->
        wall := r.wall_ns;
        eps := r.execs_per_sec;
        cov := max !cov r.cov;
        valid := max !valid r.valid
      | _ -> ())
    events;
  let wall = if !wall > 0 then !wall else !last_t in
  let slowest =
    List.sort (fun a b -> compare b.s_dur_ns a.s_dur_ns) !slow_all
    |> List.filteri (fun i _ -> i < top)
  in
  {
    cell;
    meta = !meta;
    execs = !execs;
    wall_ns = wall;
    final_cov = !cov;
    final_valid = !valid;
    execs_per_sec =
      (if !eps > 0.0 then !eps
       else if wall > 0 then float_of_int !execs *. 1e9 /. float_of_int wall
       else 0.0);
    curve = List.rev !curve_rev;
    phases = !phases;
    phase_percentiles = !phase_percentiles;
    slowest;
    cache_hits = !hits;
    cache_misses = !misses;
    valids = List.rev !valids_rev;
    engines = List.map (fun (tag, cell) -> (tag, !cell)) !engines_rev;
    hangs = !hangs;
    crashes = !crashes;
    crash_unique = !crash_unique;
    faults = !faults;
    rescues = !rescues;
  }

(* Thin the per-execution curve to at most [rows] evenly spaced points
   (by execution count), always keeping the final point — the Figure-2
   x-axis at table resolution. *)
let bucketed ~rows t =
  match t.curve with
  | [] -> []
  | curve ->
    let last = List.nth curve (List.length curve - 1) in
    let n = max 1 (min rows last.exec) in
    let points = Array.of_list curve in
    let res = ref [] and pi = ref 0 in
    for b = 1 to n do
      let target = b * last.exec / n in
      while
        !pi < Array.length points - 1 && points.(!pi + 1).exec <= target
      do
        incr pi
      done;
      let p = points.(!pi) in
      match !res with
      | q :: _ when q.exec = p.exec -> ()
      | _ -> res := p :: !res
    done;
    let res = if (List.hd !res).exec < last.exec then last :: !res else !res in
    List.rev res

let seconds ns = float_of_int ns /. 1e9

let csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "exec,t_s,branches,coverage_pct,valid\n";
  let outcomes = match t.meta with Some m -> m.outcomes | None -> 0 in
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%.6f,%d,%.2f,%d\n" p.exec (seconds p.t_ns) p.cov
           (if outcomes = 0 then 0.0 else 100.0 *. float_of_int p.cov /. float_of_int outcomes)
           p.valid))
    t.curve;
  Buffer.contents buf

let render ?(rows = 20) ppf t =
  (match t.cell with
   | Some (tool, subject, seed) ->
     Render.section ppf (Printf.sprintf "%s on %s, seed %d" tool subject seed)
   | None -> ());
  (match t.meta with
   | Some m ->
     Format.fprintf ppf
       "subject %s, seed %d, budget %d executions, incremental %b, engine %s@."
       m.subject m.seed m.max_executions m.incremental m.engine
   | None -> ());
  Format.fprintf ppf
    "%d executions in %.2fs (%.0f execs/sec), %d valid inputs, %d branches covered"
    t.execs (seconds t.wall_ns) t.execs_per_sec t.final_valid t.final_cov;
  (match t.meta with
   | Some m when m.outcomes > 0 ->
     Format.fprintf ppf " (%.1f%%)"
       (100.0 *. float_of_int t.final_cov /. float_of_int m.outcomes)
   | _ -> ());
  Format.fprintf ppf "@.";
  if t.cache_hits + t.cache_misses > 0 then
    Format.fprintf ppf "prefix cache: %d hits, %d misses (%.1f%% hit rate)@."
      t.cache_hits t.cache_misses
      (100.0 *. float_of_int t.cache_hits /. float_of_int (t.cache_hits + t.cache_misses));
  if t.hangs + t.crashes + t.faults + t.rescues > 0 then begin
    Format.fprintf ppf "resilience: %d hangs, %d crashes (%d unique)" t.hangs
      t.crashes t.crash_unique;
    if t.faults > 0 then Format.fprintf ppf ", %d injected faults" t.faults;
    if t.rescues > 0 then Format.fprintf ppf ", %d snapshot rescues" t.rescues;
    Format.fprintf ppf "@."
  end;
  (* Per-engine breakdown of the executions themselves (from the tagged
     exec_done events); one row for a homogeneous run, one per tier for
     merged traces comparing engines. *)
  if t.engines <> [] then
    Render.table ppf ~title:"per-engine execution breakdown"
      ~header:[ "engine"; "execs"; "exec time (s)"; "mean (us)" ]
      (List.map
         (fun (tag, (n, ns)) ->
           [
             tag;
             string_of_int n;
             Printf.sprintf "%.3f" (seconds ns);
             (if n = 0 then "-"
              else
                Printf.sprintf "%.1f"
                  (float_of_int ns /. float_of_int n /. 1e3));
           ])
         t.engines);
  (* Coverage over time: the paper's Figure 2 as a table + bar chart. *)
  let buckets = bucketed ~rows t in
  let outcomes = match t.meta with Some m -> m.outcomes | None -> 0 in
  if buckets <> [] then begin
    Render.table ppf ~title:"coverage over time"
      ~header:[ "execs"; "t (s)"; "branches"; "coverage %"; "valid inputs" ]
      (List.map
         (fun p ->
           [
             string_of_int p.exec;
             Printf.sprintf "%.2f" (seconds p.t_ns);
             string_of_int p.cov;
             (if outcomes = 0 then "-"
              else Printf.sprintf "%.1f" (100.0 *. float_of_int p.cov /. float_of_int outcomes));
             string_of_int p.valid;
           ])
         buckets);
    Render.bar_chart ppf ~title:"branch coverage over executions"
      (List.map (fun p -> (string_of_int p.exec, float_of_int p.cov)) buckets)
  end;
  (* Per-phase wall-clock breakdown; "other" is everything outside the
     instrumented spans, so the rows sum to the wall clock exactly. *)
  if t.phases <> [] then begin
    let spent = List.fold_left (fun acc (_, ns) -> acc + ns) 0 t.phases in
    let rows =
      t.phases @ [ ("other", t.wall_ns - spent) ]
      |> List.map (fun (name, ns) ->
             let pct =
               if t.wall_ns = 0 then 0.0
               else 100.0 *. float_of_int ns /. float_of_int t.wall_ns
             in
             let pick suffix =
               match List.assoc_opt (name ^ suffix) t.phase_percentiles with
               | Some v -> Printf.sprintf "%.1f" (float_of_int v /. 1e3)
               | None -> "-"
             in
             [
               name;
               Printf.sprintf "%.3f" (seconds ns);
               Printf.sprintf "%.1f" pct;
               pick "_p50";
               pick "_p99";
             ])
    in
    Render.table ppf ~title:"per-phase time breakdown"
      ~header:[ "phase"; "total (s)"; "% of wall"; "p50 (us)"; "p99 (us)" ]
      (rows
      @ [
          [ "wall clock"; Printf.sprintf "%.3f" (seconds t.wall_ns); "100.0"; "-"; "-" ];
        ])
  end;
  if t.slowest <> [] then
    Render.table ppf ~title:"slowest executions"
      ~header:[ "exec #"; "dur (us)"; "verdict"; "input len"; "cached" ]
      (List.map
         (fun s ->
           [
             string_of_int s.s_exec;
             Printf.sprintf "%.1f" (float_of_int s.s_dur_ns /. 1e3);
             s.s_verdict;
             string_of_int s.s_len;
             string_of_bool s.s_cached;
           ])
         t.slowest)

let report_events ?rows ?top ppf events =
  List.map
    (fun (cell, evs) ->
      let a = analyse ?top ?cell evs in
      render ?rows ppf a;
      a)
    (segments events)
