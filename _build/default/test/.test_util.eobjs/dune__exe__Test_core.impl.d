test/test_core.ml: Alcotest Float List Pdf_core Pdf_eval Pdf_instr Pdf_subjects Pdf_tables Printf QCheck QCheck_alcotest String
