module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site
module Charset = Pdf_util.Charset
module Tstring = Pdf_taint.Tstring

let whitespace = Charset.of_string " \t\r\n"

let rec skip_set ctx site ~label set =
  match Ctx.peek ctx with
  | None -> ()
  | Some c ->
    if Ctx.in_set ctx site ~label c set then begin
      ignore (Ctx.next ctx);
      skip_set ctx site ~label set
    end

let read_set ctx site ~label set =
  (* Accumulate in reverse and build the token once: appending to an
     immutable Tstring per character would copy the whole prefix each
     time (quadratic in token length). *)
  let rec go acc =
    match Ctx.peek ctx with
    | None -> acc
    | Some c ->
      if Ctx.in_set ctx site ~label c set then begin
        ignore (Ctx.next ctx);
        go (c :: acc)
      end
      else acc
  in
  Tstring.of_chars (List.rev (go []))

let expect ctx site expected =
  match Ctx.next ctx with
  | None -> Ctx.reject ctx (Printf.sprintf "expected %C, found end of input" expected)
  | Some c ->
    if not (Ctx.eq ctx site c expected) then
      Ctx.reject ctx (Printf.sprintf "expected %C" expected)

let peek_is ctx site expected =
  match Ctx.peek ctx with
  | None -> false
  | Some c -> Ctx.eq ctx site c expected

let eat_if ctx site expected =
  if peek_is ctx site expected then begin
    ignore (Ctx.next ctx);
    true
  end
  else false

(* {1 Continuation-style combinators for machine-form (resumable)
   parsers}

   A parser fragment is a [k = Ctx.t -> Machine.step]; sequencing is by
   continuation. Two rules keep fragments suspension-safe (see
   {!Pdf_instr.Machine}): every input observation goes through a
   [Peek]/[Next] step (never [Ctx.peek]/[Ctx.next]/[Ctx.at_eof]
   directly), and no closure captures a [Ctx.t] across a step — the
   context always re-arrives as the continuation's argument, so the
   combinators below systematically shadow [ctx]. *)
module K = struct
  module Machine = Pdf_instr.Machine

  type k = Ctx.t -> Machine.step

  let stop : k = fun _ctx -> Machine.Done

  let peek (f : Pdf_taint.Tchar.t option -> k) : k =
   fun _ctx -> Machine.Peek (fun c ctx -> f c ctx)

  let next (f : Pdf_taint.Tchar.t option -> k) : k =
   fun _ctx -> Machine.Next (fun c ctx -> f c ctx)

  (* Consume the (already peeked) character at the cursor, ignoring it. *)
  let skip (k : k) : k = fun _ctx -> Machine.Next (fun _ ctx -> k ctx)

  let with_frame site (body : k -> k) (k : k) : k =
   fun ctx ->
    Ctx.enter_frame ctx site;
    body
      (fun ctx ->
        Ctx.exit_frame ctx;
        k ctx)
      ctx

  let skip_set site ~label set (k : k) : k =
   fun ctx ->
    let rec go ctx =
      peek
        (fun c ctx ->
          match c with
          | None -> k ctx
          | Some c ->
            if Ctx.in_set ctx site ~label c set then skip go ctx else k ctx)
        ctx
    in
    go ctx

  let read_set site ~label set (f : Tstring.t -> k) : k =
   fun ctx ->
    let rec go acc ctx =
      peek
        (fun c ctx ->
          match c with
          | None -> f (Tstring.of_chars (List.rev acc)) ctx
          | Some c ->
            if Ctx.in_set ctx site ~label c set then skip (go (c :: acc)) ctx
            else f (Tstring.of_chars (List.rev acc)) ctx)
        ctx
    in
    go [] ctx

  let expect site expected (k : k) : k =
    next (fun c ctx ->
        match c with
        | None ->
          Ctx.reject ctx
            (Printf.sprintf "expected %C, found end of input" expected)
        | Some c ->
          if Ctx.eq ctx site c expected then k ctx
          else Ctx.reject ctx (Printf.sprintf "expected %C" expected))

  let peek_is site expected (f : bool -> k) : k =
    peek (fun c ctx ->
        match c with
        | None -> f false ctx
        | Some c -> f (Ctx.eq ctx site c expected) ctx)

  let eat_if site expected (f : bool -> k) : k =
    peek_is site expected (fun matched ctx ->
        if matched then skip (f true) ctx else f false ctx)
end
