(** Rendering of every table and figure of the paper's evaluation from an
    {!Experiment.t}, with the paper's reported values alongside for
    comparison. *)

val table_1 : Format.formatter -> Pdf_subjects.Subject.t list -> unit
(** Table 1: the evaluation subjects. *)

val token_inventory : Format.formatter -> Pdf_subjects.Subject.t -> unit
(** Tables 2–4: a subject's tokens grouped by length. *)

val figure_2 : Format.formatter -> Experiment.t -> unit
(** Figure 2: branch coverage per subject and tool (bar chart), plus the
    paper's qualitative winner per subject. *)

val figure_3 : Format.formatter -> Experiment.t -> unit
(** Figure 3: tokens generated per subject, tool and token length. *)

val headline : Format.formatter -> Experiment.t -> unit
(** The §5.3 aggregate shares for short (≤ 3) and long (> 3) tokens,
    measured vs paper. *)

val cache_report : Format.formatter -> Experiment.t -> unit
(** pFuzzer's prefix-snapshot cache accounting per subject: hits, misses,
    hit rate, evictions and prefix characters saved. *)

val throughput : Format.formatter -> Experiment.t -> unit
(** Real (wall-clock) cost per cell: executions, seconds, execs/sec. *)

val resilience : Format.formatter -> Experiment.t -> unit
(** Hangs and contained crashes per misbehaving cell, or a one-line
    all-clear when no cell misbehaved. *)

val failed_cells : Format.formatter -> Experiment.t -> unit
(** The cells that exhausted their retries ({!Experiment.t.failures});
    prints nothing for a healthy grid. *)

val full : Format.formatter -> Experiment.t -> unit
(** All of the above in paper order, followed by the incremental-execution
    accounting and the resilience summary. *)
