lib/klee/solver.mli: Path_constraint Pdf_util
