(** AutoGram-style grammar mining (paper §7.4): rerun valid inputs with
    frame tracking, turn each run's frame spans into a derivation tree
    (one nonterminal per parser function), and union the observed
    productions into a grammar.

    The paper positions this as the natural consumer of pFuzzer's
    output — pFuzzer supplies the valid, diverse inputs that mining
    needs, and the mined grammar then generates recursive structures far
    more cheaply than the character-level search (§7.4). *)

val mine : Pdf_subjects.Subject.t -> string list -> Grammar.t
(** [mine subject valid_inputs] mines a grammar from the accepted inputs
    (inputs the subject rejects are skipped). The start symbol is the
    root frame of the subject's parser. *)
