lib/instr/ctx.ml: Bytes Comparison Coverage Frame Pdf_taint Pdf_util Site String
