(** Deterministic, splittable pseudo-random number generator.

    All randomised components of the system (fuzzers, solvers, workload
    generators) draw from an explicit [Rng.t] so that every experiment is
    reproducible from its seed. The implementation is SplitMix64, which is
    fast, statistically solid for this purpose, and supports {!split} for
    handing independent streams to sub-components. *)

type t

val make : int -> t
(** [make seed] creates a generator from an integer seed. Generators made
    from equal seeds produce equal streams. *)

val split : t -> t
(** [split t] derives a fresh generator whose stream is independent of
    subsequent draws from [t]. Mutates [t] (one draw). *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the
    same stream. *)

val state : t -> int64
(** [state t] exposes the raw SplitMix64 state word, for serialising the
    generator into a checkpoint. *)

val of_state : int64 -> t
(** [of_state s] rebuilds a generator from a {!state} word. The rebuilt
    generator continues the exact stream of the serialised one. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val char : t -> char
(** Uniform over all 256 bytes. *)

val printable : t -> char
(** Uniform over printable ASCII (0x20–0x7e) plus ['\n'] and ['\t'] — the
    alphabet the paper's fuzzer appends from. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
