(** Step-wise (resumable) recognizers.

    A recognizer expressed in this form performs every input read
    through an explicit {!step}, so the run can be suspended at any
    read boundary — the instant the parser is about to observe input
    position [p] for the first time — and resumed later against a
    different context whose observation state matches.

    The contract that makes suspension sound:

    - continuations must not capture a [Ctx.t] across a step: the
      context to use always arrives as the continuation's second
      argument (shadow it);
    - all input observations go through [Peek]/[Next] steps — never
      call [Ctx.peek]/[Ctx.next]/[Ctx.at_eof] directly from recognizer
      code, since a direct probe would not be a suspension point and
      would break prefix/child equivalence;
    - values derived from already-read input (characters, tokens,
      counters) may be captured freely: they are identical for every
      input sharing the prefix.

    Under these rules a pending step is {e multi-shot}: one snapshot can
    serve any number of children that extend the same prefix. *)

type step =
  | Done  (** the recognizer accepted (ran to completion) *)
  | Peek of (Pdf_taint.Tchar.t option -> Ctx.t -> step)
      (** observe the character at the cursor without consuming it *)
  | Next of (Pdf_taint.Tchar.t option -> Ctx.t -> step)
      (** observe and consume the character at the cursor *)

type recognizer = Ctx.t -> step
(** Runs synchronously up to the first read (or completion). *)

val run : Ctx.t -> recognizer -> unit
(** Drive a recognizer to completion, delivering each read from the
    context. Equivalent to a direct-style parse: {!Ctx.Reject} and
    {!Ctx.Out_of_fuel} propagate to the caller. *)

val drive : Ctx.t -> step -> unit
(** Drive a pending step (e.g. one restored from a snapshot) to
    completion. *)
