module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site

let registry = Site.create_registry "expr"
let s_parse = Site.block registry "parse"
let s_expr = Site.block registry "expr"
let s_factor = Site.block registry "factor"
let s_number = Site.block registry "number"
let b_sign_plus = Site.branch registry "factor.sign-plus?"
let b_sign_minus = Site.branch registry "factor.sign-minus?"
let b_digit_first = Site.branch registry "factor.digit?"
let b_lparen = Site.branch registry "factor.lparen?"
let b_rparen = Site.branch registry "factor.rparen"
let b_digit_more = Site.branch registry "number.more-digit?"
let b_op_plus = Site.branch registry "expr.op-plus?"
let b_op_minus = Site.branch registry "expr.op-minus?"
let b_trailing = Site.branch registry "parse.trailing?"

module Machine = Pdf_instr.Machine
module K = Helpers.K

(* The first digit is consumed by [factor]; [number] eats the rest. *)
let number (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_number
    (fun k ->
      let rec more ctx =
        K.peek
          (fun c ctx ->
            match c with
            | None -> k ctx
            | Some c ->
              if Ctx.in_range ctx b_digit_more c '0' '9' then K.skip more ctx
              else k ctx)
          ctx
      in
      more)
    k ctx

let rec expr (k : K.k) : K.k =
 fun ctx -> K.with_frame s_expr (fun k -> factor (ops k)) k ctx

and ops (k : K.k) : K.k =
 fun ctx ->
  K.eat_if b_op_plus '+'
    (fun ate ->
      if ate then factor (ops k)
      else
        K.eat_if b_op_minus '-' (fun ate ->
            if ate then factor (ops k) else k))
    ctx

and factor (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_factor
    (fun k ->
      let body : K.k =
        K.peek (fun c ctx ->
            match c with
            | None -> Ctx.reject ctx "expected digit or '(', found end of input"
            | Some c ->
              if Ctx.in_range ctx b_digit_first c '0' '9' then
                K.skip (number k) ctx
              else if Ctx.eq ctx b_lparen c '(' then
                K.skip (expr (K.expect b_rparen ')' k)) ctx
              else Ctx.reject ctx "expected digit or '('")
      in
      (* Optional unary sign. *)
      K.peek_is b_sign_plus '+' (fun plus ->
          if plus then K.skip body
          else
            K.peek_is b_sign_minus '-' (fun minus ->
                if minus then K.skip body else body)))
    k ctx

let machine : Machine.recognizer =
 fun ctx ->
  K.with_frame s_parse
    (fun k ->
      expr
        (K.peek (fun c ctx ->
             match c with
             | Some _ ->
               ignore (Ctx.branch ctx b_trailing true);
               Ctx.reject ctx "trailing input after expression"
             | None ->
               ignore (Ctx.branch ctx b_trailing false);
               k ctx)))
    K.stop ctx

let parse ctx = Machine.run ctx machine

(* {1 Staged (compiled) form}

   [number]'s digit loop becomes a static two-node cycle; [factor]
   hoists its dispatch body, the hoistable continuations ([number k],
   the ')'-expect) and the sign-probe chain at nonterminal entry; [ops]'
   operator loop closes over itself with [C.fix] so the +/- cycle stages
   exactly once per [expr] entry. Only the genuinely recursive calls
   ([expr] under parentheses, [factor] under an operator) re-stage at
   runtime. Observation order is identical to the interpreted machine. *)
module C = Pdf_instr.Compiled

let msg_eof_rparen, msg_rparen = C.reject_msgs ')'

let sl_digit_first = C.slot_range b_digit_first '0' '9'
let sl_lparen = C.slot_eq b_lparen '('

let compiled : C.t =
  let number (k : C.k) : C.k =
    C.with_frame s_number (fun k -> C.skip_range b_digit_more '0' '9' k) k
  in
  let rec expr (k : C.k) : C.k =
    C.with_frame s_expr (fun k -> factor (ops k)) k
  and ops (k : C.k) : C.k =
    (* Without [fix], staging [ops] would stage [factor ops] which
       stages [ops] … — the operator loop must close over itself. The
       two operator branches continue identically, so [factor ops]
       stages once, shared. *)
    C.fix (fun ops ->
        let fo = factor ops in
        C.eat_if b_op_plus '+' (fun ate ->
            if ate then fo
            else C.eat_if b_op_minus '-' (fun ate -> if ate then fo else k)))
  and factor (k : C.k) : C.k =
    C.with_frame s_factor
      (fun k ->
        let num = number k in
        let after_rparen =
          C.expect_with ~msg_eof:msg_eof_rparen ~msg:msg_rparen b_rparen ')' k
        in
        let body : C.k =
          C.peek (fun c ->
              fun ctx ->
                match c with
                | None ->
                  Ctx.reject ctx "expected digit or '(', found end of input"
                | Some c ->
                  if Ctx.in_range_slot ctx sl_digit_first c '0' '9' then
                    C.skip num ctx
                  else if Ctx.eq_slot ctx sl_lparen c '(' then
                    (* [expr] must stay a runtime call: staging it here
                       would recurse factor → expr → factor forever. *)
                    C.skip (expr after_rparen) ctx
                  else Ctx.reject ctx "expected digit or '('")
        in
        C.peek_is b_sign_plus '+' (fun plus ->
            if plus then C.skip body
            else
              C.peek_is b_sign_minus '-' (fun minus ->
                  if minus then C.skip body else body)))
      k
  in
  C.with_frame s_parse
    (fun k ->
      expr
        (C.peek (fun c ->
             fun ctx ->
               match c with
               | Some _ ->
                 ignore (Ctx.branch ctx b_trailing true);
                 Ctx.reject ctx "trailing input after expression"
               | None ->
                 ignore (Ctx.branch ctx b_trailing false);
                 k ctx)))
    C.stop

let tokens =
  [
    Token.literal "(";
    Token.literal ")";
    Token.literal "+";
    Token.literal "-";
    Token.make "number" 1;
  ]

let tokenize input =
  let tags = ref [] in
  let push tag = if not (List.mem tag !tags) then tags := tag :: !tags in
  String.iter
    (fun c ->
      match c with
      | '(' -> push "("
      | ')' -> push ")"
      | '+' -> push "+"
      | '-' -> push "-"
      | '0' .. '9' -> push "number"
      | _ -> ())
    input;
  List.rev !tags

let subject =
  {
    Subject.name = "expr";
    description = "arithmetic expressions (the paper's Section 2 example)";
    registry;
    parse;
    machine = Some machine;
    compiled = Some compiled;
    compiled_preferred = true;
    fuel = 100_000;
    tokens;
    tokenize;
    original_loc = 60;
  }
