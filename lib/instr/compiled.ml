module Tchar = Pdf_taint.Tchar
module Tstring = Pdf_taint.Tstring
module Charset = Pdf_util.Charset

(* Staged combinators: the same fragment algebra as the subjects'
   continuation-style [K] module (lib/subjects/helpers.ml), but every
   combinator does its construction work when the parser is *staged* —
   once, at module initialisation or at nonterminal entry — instead of
   every time a fragment meets a context. A staged fragment is still an
   ordinary [Ctx.t -> Machine.step] function, so the whole incremental
   machinery (read-boundary journaling, snapshots, resume) works on it
   unchanged; the difference is that applying it allocates no step
   constructors, no reject strings and no intermediate closures on the
   hot path.

   The staging discipline mirrors partial evaluation:

   - [peek]/[next]/[skip] hoist their step node: one [Machine.Peek] /
     [Machine.Next] value is built per *staging*, not per character.
   - [expect] precomputes both reject messages (the [K] version runs two
     [Printf.sprintf]s per application).
   - [peek_is]/[eat_if] force both boolean continuations at stage time,
     so the runtime dispatch is a branch between two existing fragments.
   - [skip_while]/[skip_set] tie their two step nodes into a cycle with
     [let rec]: a character-skipping loop of any length allocates
     nothing at all.
   - [fix] closes self-referential fragments (line loops, record/rest
     cycles) so statically bounded recursion stages once. Truly
     recursive nonterminals (JSON values, nested expressions) remain
     plain OCaml functions that stage at each entry — same shape as
     [K], minus the per-character costs inside.

   Equivalence contract: a staged parser must make exactly the [Ctx]
   calls its [K] twin makes, in the same order, with the same arguments
   (including reject strings byte-for-byte) — the cross-engine
   invariant in [lib/check] holds both to it. The combinators here keep
   that order by construction; only the *when* of closure construction
   moves, never the observation sequence. *)

type k = Ctx.t -> Machine.step

type t = k
(** A staged recognizer. [Machine.recognizer] and [t] coincide, so a
    compiled subject plugs into every interpreter-facing API. *)

let stop : k =
  let step = Machine.Done in
  fun _ -> step

let peek (f : Tchar.t option -> k) : k =
  let step = Machine.Peek (fun c ctx -> f c ctx) in
  fun _ -> step

let next (f : Tchar.t option -> k) : k =
  let step = Machine.Next (fun c ctx -> f c ctx) in
  fun _ -> step

(* Consume the (already peeked) character at the cursor, ignoring it. *)
let skip (k : k) : k =
  let step = Machine.Next (fun _ ctx -> k ctx) in
  fun _ -> step

let with_frame site (body : k -> k) (k : k) : k =
  let inner =
    body
      (fun ctx ->
        Ctx.exit_frame ctx;
        k ctx)
  in
  fun ctx ->
    Ctx.enter_frame ctx site;
    inner ctx

(* Tie a self-referential fragment: [fix (fun self -> body)] stages
   [body] exactly once, with [self] dispatching back to it. The ref is
   written once during staging and only read afterwards, so staged
   programs stay safe to share across domains (module-level staging runs
   before any domain spawns). *)
let fix (f : k -> k) : k =
  let r = ref stop in
  let dispatch : k = fun ctx -> !r ctx in
  r := f dispatch;
  dispatch

(* Character-skipping loop: two step nodes tied into a cycle, so a run
   of any length allocates nothing. [test] must be the observation
   itself (a [Ctx.in_set]/[Ctx.in_range]/… call): it runs once per
   character, exactly as the [K] twin's loop body does. *)
let skip_while (test : Tchar.t -> Ctx.t -> bool) (k : k) : k =
  let rec next_node = Machine.Next (fun _ _ -> peek_node)
  and peek_node =
    Machine.Peek
      (fun c ctx ->
        match c with
        | None -> k ctx
        | Some c -> if test c ctx then next_node else k ctx)
  in
  fun _ -> peek_node

(* Pre-resolved instrumentation slots: freeze a site's outcome ids and
   the comparison-event kind at staging time (see {!Ctx.slot}). The
   kinds built here are exactly what the tracked [Ctx] operations build
   per call, so comparison logs stay structurally identical. *)
let slot_eq site expected = Ctx.slot site (Comparison.Char_eq expected)
let slot_range site lo hi = Ctx.slot site (Comparison.Char_range (lo, hi))
let slot_set site ~label set = Ctx.slot site (Comparison.Char_set (set, label))

let slot_one_of site chars =
  Ctx.slot site (Comparison.Char_set (Charset.of_string chars, "one-of " ^ chars))

let skip_set site ~label set (k : k) : k =
  let sl = slot_set site ~label set in
  skip_while (fun c ctx -> Ctx.in_set_slot ctx sl c set) k

let skip_range site lo hi (k : k) : k =
  let sl = slot_range site lo hi in
  skip_while (fun c ctx -> Ctx.in_range_slot ctx sl c lo hi) k

(* The accumulator makes each loop state distinct, so the nodes cannot
   be tied into a static cycle: a suspension taken mid-token must
   remember the characters read so far, and a mutable accumulator would
   be shared with every resume. Build per character, like [K]. *)
let read_set site ~label set (f : Tstring.t -> k) : k =
  let sl = slot_set site ~label set in
  fun ctx ->
    let rec go acc _ctx =
      Machine.Peek
        (fun c ctx ->
          match c with
          | None -> f (Tstring.of_chars (List.rev acc)) ctx
          | Some c ->
            if Ctx.in_set_slot ctx sl c set then
              Machine.Next (fun _ ctx -> go (c :: acc) ctx)
            else f (Tstring.of_chars (List.rev acc)) ctx)
    in
    go [] ctx

let reject_msgs expected =
  ( Printf.sprintf "expected %C, found end of input" expected,
    Printf.sprintf "expected %C" expected )

let expect_with ~msg_eof ~msg site expected (k : k) : k =
  let sl = slot_eq site expected in
  next (fun c ->
      fun ctx ->
        match c with
        | None -> Ctx.reject ctx msg_eof
        | Some c ->
          if Ctx.eq_slot ctx sl c expected then k ctx else Ctx.reject ctx msg)

let expect site expected (k : k) : k =
  let msg_eof, msg = reject_msgs expected in
  expect_with ~msg_eof ~msg site expected k

let peek_is site expected (f : bool -> k) : k =
  let sl = slot_eq site expected in
  let on_hit = f true and on_miss = f false in
  peek (fun c ->
      fun ctx ->
        match c with
        | None -> on_miss ctx
        | Some c ->
          if Ctx.eq_slot ctx sl c expected then on_hit ctx else on_miss ctx)

let eat_if site expected (f : bool -> k) : k =
  peek_is site expected (fun matched ->
      if matched then skip (f true) else f false)
