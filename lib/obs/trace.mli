(** Trace sinks: where stamped events go.

    A sink is a pair of closures, so callers can compose them ({!tee})
    or buffer per-shard and merge deterministically afterwards
    ({!buffer}, used by the parallel evaluation grid). The fuzzer holds
    an optional observer; with no observer installed the hot path pays
    nothing — not even event construction. *)

type sink = { emit : Event.stamped -> unit; close : unit -> unit }

val null : sink
(** Swallows everything. *)

val emit : sink -> Event.stamped -> unit

val close : sink -> unit
(** Flush / finalize. Does not close underlying channels — the opener
    owns them. *)

val jsonl : out_channel -> sink
(** One event per line, flat JSON; the format {!read_channel} reads
    back. *)

val chrome : out_channel -> sink
(** Chrome [trace_event] JSON array for chrome://tracing and Perfetto:
    executions as complete spans, valid inputs as instant events,
    coverage and queue depth as counter tracks, final phase totals as
    spans on a second thread lane. {!close} writes the closing bracket
    — forgetting it produces an unloadable file. *)

val buffer : unit -> sink * (unit -> string)
(** In-memory JSONL sink and an accessor for its contents so far. *)

val tee : sink -> sink -> sink

(** {1 Flight recorder} *)

type ring
(** A fixed-capacity ring of the most recent stamped events, for
    post-mortem dumps. Emission is one array store — no serialization —
    so the recorder can stay attached even with file tracing off. *)

val ring : int -> ring
(** [ring capacity]. Raises [Invalid_argument] on capacity <= 0. *)

val ring_sink : ring -> sink

val ring_events : ring -> Event.stamped list
(** Retained events, oldest first: the last [capacity] emitted (fewer if
    the ring never wrapped). *)

val ring_total : ring -> int
(** Events emitted over the ring's lifetime, including overwritten ones. *)

val ring_capacity : ring -> int

val dump_ring : ring -> string -> unit
(** Atomically write the retained events as JSONL to a path (via
    {!Pdf_util.Atomic_file}); a crash mid-dump never leaves a truncated
    post-mortem. *)

val read_channel : in_channel -> Event.stamped list
(** Parse a JSONL trace; blank lines are skipped. Raises [Failure] with
    the offending line number on malformed input. *)

val read_file : string -> Event.stamped list

val normalize_line : string -> string
(** Zero the wall-clock-dependent fields ([t], any [*_ns],
    [execs_per_sec]) of one JSONL line, preserving field order — the
    structural residue that must be identical between [jobs:1] and
    [jobs:N] merged traces. Non-JSON input passes through unchanged. *)

val normalize : string -> string
(** {!normalize_line} over every line of a trace. *)
