(** Plain-text rendering of experiment results: aligned tables and
    horizontal bar charts, in the spirit of the paper's tables and
    figures. All output goes through a [Format.formatter] so reports can
    be captured or printed. *)

val table :
  Format.formatter -> title:string -> header:string list -> string list list -> unit
(** [table ppf ~title ~header rows] prints an aligned ASCII table. Every
    row must have the same arity as [header]. *)

val bar_chart :
  Format.formatter ->
  title:string ->
  ?max_width:int ->
  ?unit_label:string ->
  (string * float) list ->
  unit
(** [bar_chart ppf ~title rows] prints one horizontal bar per row, scaled
    to the maximum value. *)

val grouped_bar_chart :
  Format.formatter ->
  title:string ->
  series:string list ->
  ?max_width:int ->
  (string * float list) list ->
  unit
(** [grouped_bar_chart ppf ~title ~series rows] prints, for each row
    label, one bar per series — the shape of the paper's Figure 2. Each
    row's value list must have the same arity as [series]. *)

val section : Format.formatter -> string -> unit
(** Prominent section heading. *)
