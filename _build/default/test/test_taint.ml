module Taint = Pdf_taint.Taint
module Tchar = Pdf_taint.Tchar
module Tstring = Pdf_taint.Tstring

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_taint_basics () =
  Alcotest.(check bool) "empty is empty" true (Taint.is_empty Taint.empty);
  let t = Taint.singleton 3 in
  Alcotest.(check bool) "singleton mem" true (Taint.mem 3 t);
  Alcotest.(check bool) "singleton not mem" false (Taint.mem 4 t);
  check Alcotest.(option int) "max of singleton" (Some 3) (Taint.max_index t);
  check Alcotest.(option int) "min of singleton" (Some 3) (Taint.min_index t);
  check Alcotest.(option int) "max of empty" None (Taint.max_index Taint.empty);
  check Alcotest.int "cardinal" 1 (Taint.cardinal t)

let prop_taint_union =
  QCheck.Test.make ~name:"union membership" ~count:300
    QCheck.(triple small_nat (small_list small_nat) (small_list small_nat))
    (fun (i, xs, ys) ->
      let a = Taint.of_list xs and b = Taint.of_list ys in
      Taint.mem i (Taint.union a b) = (Taint.mem i a || Taint.mem i b))

let prop_taint_max =
  QCheck.Test.make ~name:"max_index is the maximum" ~count:300
    QCheck.(small_list small_nat)
    (fun xs ->
      match (Taint.max_index (Taint.of_list xs), xs) with
      | None, [] -> true
      | None, _ :: _ -> false
      | Some m, _ -> List.for_all (fun x -> x <= m) xs && List.mem m xs)

let prop_taint_roundtrip =
  QCheck.Test.make ~name:"of_list/to_list sorts and dedups" ~count:300
    QCheck.(small_list small_nat)
    (fun xs -> Taint.to_list (Taint.of_list xs) = List.sort_uniq compare xs)

let test_tchar () =
  let a = Tchar.input 2 'x' in
  check Alcotest.char "payload" 'x' a.Tchar.ch;
  Alcotest.(check bool) "tainted" true (Tchar.is_tainted a);
  Alcotest.(check bool) "constant untainted" false (Tchar.is_tainted (Tchar.untainted 'k'));
  check Alcotest.int "code" (Char.code 'x') (Tchar.code a);
  let upper = Tchar.map Char.uppercase_ascii a in
  check Alcotest.char "map payload" 'X' upper.Tchar.ch;
  Alcotest.(check bool) "map keeps taint" true (Taint.mem 2 upper.Tchar.taint);
  let b = Tchar.input 5 'y' in
  let combined = Tchar.combine (fun c _ -> c) a b in
  Alcotest.(check bool) "combine accumulates taints" true
    (Taint.mem 2 combined.Tchar.taint && Taint.mem 5 combined.Tchar.taint)

let test_tstring_basics () =
  let s = Tstring.of_string "abc" in
  check Alcotest.int "length" 3 (Tstring.length s);
  check Alcotest.string "to_string" "abc" (Tstring.to_string s);
  Alcotest.(check bool) "constant string has no taint" true
    (Taint.is_empty (Tstring.taint s));
  let t = Tstring.of_chars [ Tchar.input 0 'h'; Tchar.input 1 'i' ] in
  check Alcotest.string "of_chars payload" "hi" (Tstring.to_string t);
  check Alcotest.(list int) "taint union" [ 0; 1 ] (Taint.to_list (Tstring.taint t));
  check Alcotest.(list int) "per-char taint" [ 1 ]
    (Taint.to_list (Tstring.taint_of_char t 1))

let test_tstring_ops () =
  let t = Tstring.of_chars [ Tchar.input 4 'x'; Tchar.input 5 'y' ] in
  let t2 = Tstring.append_char t (Tchar.input 6 'z') in
  check Alcotest.string "append" "xyz" (Tstring.to_string t2);
  check Alcotest.int "append leaves original" 2 (Tstring.length t);
  let c = Tstring.concat t t2 in
  check Alcotest.string "concat" "xyxyz" (Tstring.to_string c);
  let sub = Tstring.sub c 2 3 in
  check Alcotest.string "sub" "xyz" (Tstring.to_string sub);
  Alcotest.(check bool) "equal_payload ignores taints" true
    (Tstring.equal_payload t2 (Tstring.of_string "xyz"));
  Alcotest.(check bool) "equal_payload detects difference" false
    (Tstring.equal_payload t2 (Tstring.of_string "xyw"));
  Alcotest.(check bool) "equal_payload detects length" false
    (Tstring.equal_payload t2 (Tstring.of_string "xy"))

let prop_tstring_roundtrip =
  QCheck.Test.make ~name:"of_string/to_string round trip" ~count:300
    QCheck.printable_string
    (fun s -> Tstring.to_string (Tstring.of_string s) = s)

let prop_tstring_taint_union =
  QCheck.Test.make ~name:"string taint is the union of char taints" ~count:300
    QCheck.(small_list small_nat)
    (fun idxs ->
      let chars = List.map (fun i -> Tchar.input i 'a') idxs in
      let s = Tstring.of_chars chars in
      Taint.to_list (Tstring.taint s) = List.sort_uniq compare idxs)

let () =
  Alcotest.run "pdf_taint"
    [
      ( "taint",
        [
          Alcotest.test_case "basics" `Quick test_taint_basics;
          qtest prop_taint_union;
          qtest prop_taint_max;
          qtest prop_taint_roundtrip;
        ] );
      ("tchar", [ Alcotest.test_case "tainted chars" `Quick test_tchar ]);
      ( "tstring",
        [
          Alcotest.test_case "basics" `Quick test_tstring_basics;
          Alcotest.test_case "operations" `Quick test_tstring_ops;
          qtest prop_tstring_roundtrip;
          qtest prop_tstring_taint_union;
        ] );
    ]
