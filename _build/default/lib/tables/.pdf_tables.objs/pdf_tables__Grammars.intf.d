lib/tables/grammars.mli: Cfg Ll1 Pdf_subjects
