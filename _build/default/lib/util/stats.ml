let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let minimum = function
  | [] -> 0.0
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> 0.0
  | x :: xs -> List.fold_left max x xs

let percentile p = function
  | [] -> 0.0
  | xs ->
    let sorted = List.sort compare xs in
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    List.nth sorted (rank - 1)

let ratio num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den
