lib/afl/mutator.ml: Array Bytes Char List Pdf_util String
