module Rng = Pdf_util.Rng
module Pqueue = Pdf_util.Pqueue
module Fnv = Pdf_util.Fnv
module Atomic_file = Pdf_util.Atomic_file
module Coverage = Pdf_instr.Coverage
module Runner = Pdf_instr.Runner
module Comparison = Pdf_instr.Comparison
module Subject = Pdf_subjects.Subject
module Fault = Pdf_fault.Fault
module Obs = Pdf_obs.Observer
module Event = Pdf_obs.Event
module Phase = Pdf_obs.Phase

(* Which execution tier runs the subject. [Compiled] is a request: it
   takes effect only when the subject ships a staged recognizer, and
   silently degrades to the interpreted engine otherwise — observable
   results are bit-identical either way, so the knob is pure
   performance. *)
type engine = Interpreted | Compiled

let engine_to_string = function
  | Interpreted -> "interpreted"
  | Compiled -> "compiled"

let engine_of_string s =
  match String.lowercase_ascii s with
  | "interpreted" -> Some Interpreted
  | "compiled" -> Some Compiled
  | _ -> None

type config = {
  seed : int;
  max_executions : int;
  max_input_len : int;
  heuristic : Heuristic.variant;
  queue_bound : int;
  dedupe : bool;
  incremental : bool;
  engine : engine;
  batch : int;
}

let default_config =
  {
    seed = 1;
    max_executions = 2000;
    max_input_len = 64;
    heuristic = Heuristic.Prose;
    queue_bound = 50_000;
    dedupe = true;
    incremental = true;
    engine = Compiled;
    batch = 16;
  }

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  chars_saved : int;
  rescues : int;
}

let no_cache_stats =
  { hits = 0; misses = 0; evictions = 0; chars_saved = 0; rescues = 0 }

type crash = {
  exn : string;
  site : int;
  detail : string;
  input : string;
  first_at : int;
  count : int;
}

(* Distinct (exn, site) identities retained for triage. Beyond the bound
   new identities still count towards [crash_total] but are not kept —
   a subject that crashes everywhere must not turn the corpus into a
   memory leak. *)
let crash_bound = 256

type result = {
  valid_inputs : string list;
  valid_coverage : Coverage.t;
  hits : Pdf_instr.Hits.t;
  engine : string;
  executions : int;
  candidates_created : int;
  queue_peak : int;
  first_valid_at : int option;
  dedupe_resets : int;
  path_resets : int;
  cache : cache_stats;
  crashes : crash list;
  crash_total : int;
  hangs : int;
  wall_clock_s : float;
  execs_per_sec : float;
}

type queue_event =
  | Pushed of float * string
  | Popped of float * string
  | Reranked of (float * string) list
  | Truncated of (float * string) list

(* {1 Checkpoints}

   Everything the deterministic part of a campaign depends on, in
   Marshal-safe form (no closures, no Hashtbls — tables flatten to
   lists). The prefix-snapshot cache is deliberately excluded: resuming
   with a cold cache is safe because incremental execution is
   bit-identical to full execution, and cache counters are timing-like
   accounting that result comparisons already ignore. *)

module Checkpoint = struct
  type payload = {
    ck_subject : string;
    ck_config : config;
    ck_rng : int64;
    ck_queue : (float * Candidate.t) list;  (* insertion order *)
    ck_current : Candidate.t;  (* the candidate about to be executed *)
    ck_vbr : Coverage.t;
    ck_valid_rev : string list;
    ck_valid_count : int;
    ck_first_valid_at : int option;
    ck_last_progress_at : int;
    ck_executions : int;
    ck_candidates_created : int;
    ck_queue_peak : int;
    ck_dedupe_resets : int;
    ck_path_resets : int;
    ck_seen : string list;
    ck_paths : (int * int) list;
    ck_hits : (int * int) list;  (* canonical Hits.to_list form *)
    ck_hangs : int;
    ck_crashes : ((string * int) * crash) list;  (* first-seen order *)
    ck_crash_total : int;
  }

  type t = payload

  (* v2: [config] gained the [engine] and [batch] fields.
     v3: the payload gained [ck_hits], the global branch hit-counts. *)
  let version = 3
  let magic = "pfckpt"

  let subject_name t = t.ck_subject
  let executions t = t.ck_executions
  let config t = t.ck_config

  let encode t =
    let payload = Marshal.to_string t [] in
    let b = Buffer.create (String.length payload + 32) in
    Buffer.add_string b magic;
    Buffer.add_char b (Char.chr version);
    Buffer.add_string b (Digest.string payload);
    Buffer.add_string b payload;
    Buffer.contents b

  (* Error precedence is part of the decode contract and deliberately
     explicit: length, then magic, then DIGEST, then version, then
     unmarshal. The digest is verified before the version byte is
     interpreted — the header layout (magic | version | MD5 | payload)
     is frozen across versions precisely so this is well-defined — which
     means corruption is never misreported as version skew: a file whose
     bytes rotted reports "corrupted" even if the rot also hit the
     version byte, while a clean checkpoint from another build reports a
     genuine version mismatch. *)
  (* [range_equal a apos b bpos len]: are the two ranges byte-equal?
     The header checks below run in place over the encoded string — a
     decode allocates nothing besides the unmarshalled payload
     ([Digest.substring] hashes the payload range directly and
     [Marshal.from_string] reads at an offset, so neither the magic, the
     digest, nor the payload is ever copied out first). *)
  let range_equal a apos b bpos len =
    let rec go i =
      i >= len
      || (String.unsafe_get a (apos + i) = String.unsafe_get b (bpos + i)
          && go (i + 1))
    in
    go 0

  let decode s =
    let mlen = String.length magic in
    let hlen = mlen + 1 + 16 in
    if String.length s < hlen then Error "checkpoint file too short to be valid"
    else if not (range_equal s 0 magic 0 mlen) then
      Error "not a pfuzzer checkpoint (bad magic)"
    else
      let computed = Digest.substring s hlen (String.length s - hlen) in
      if not (range_equal s (mlen + 1) computed 0 16) then
        Error "checkpoint corrupted (payload digest mismatch)"
      else
        let v = Char.code s.[mlen] in
        if v <> version then
          Error
            (Printf.sprintf
               "checkpoint version mismatch (file has v%d, this build reads v%d)"
               v version)
        else
          match (Marshal.from_string s hlen : payload) with
          | p -> Ok p
          | exception _ ->
            Error "checkpoint payload unreadable (truncated or incompatible)"

  (* The campaign-so-far as a result record — what a sync frame in a
     distributed campaign carries. Cache accounting and wall-clock are
     zero (a checkpoint deliberately excludes them), and [engine] is the
     *requested* tier: a checkpoint cannot know whether the request
     degraded, only the final per-shard result can, and final frames
     supersede progress frames in the merge. *)
  let partial_result t =
    {
      valid_inputs = List.rev t.ck_valid_rev;
      valid_coverage = t.ck_vbr;
      hits = Pdf_instr.Hits.of_list t.ck_hits;
      engine = engine_to_string t.ck_config.engine;
      executions = t.ck_executions;
      candidates_created = t.ck_candidates_created;
      queue_peak = t.ck_queue_peak;
      first_valid_at = t.ck_first_valid_at;
      dedupe_resets = t.ck_dedupe_resets;
      path_resets = t.ck_path_resets;
      cache = no_cache_stats;
      crashes = List.map snd t.ck_crashes;
      crash_total = t.ck_crash_total;
      hangs = t.ck_hangs;
      wall_clock_s = 0.0;
      execs_per_sec = 0.0;
    }

  let save path t = Atomic_file.write_string path (encode t)

  let load path =
    match Atomic_file.read_string path with
    | s -> decode s
    | exception Sys_error msg -> Error msg
end

(* {1 Candidate dedupe, hash-before-allocate}

   Membership of a would-be child [input[0..index) ^ repl] is decided by
   hashing the parts in place ({!Pdf_util.Fnv}) and verifying stored
   strings with in-place comparison, so a duplicate child is rejected
   without the child string ever existing. *)

(* Does [s.[pos ..]] start with [repl]? Bounds are the caller's: [s] is
   known to be long enough. *)
(* These comparisons run for every proposed child (the parent-equality
   gate and dedupe probes), so they are [while] loops over register-able
   refs — a captured-variable [let rec] would cost a closure allocation
   per call. *)
let ends_with_at s pos repl =
  let rl = String.length repl in
  let i = ref 0 in
  while
    !i < rl && String.unsafe_get s (pos + !i) = String.unsafe_get repl !i
  do
    incr i
  done;
  !i >= rl

(* Does [s] (of length [index + length repl], checked by the caller)
   equal [input[0..index) ^ repl]? *)
let matches_concat s input index repl =
  let i = ref 0 in
  while !i < index && String.unsafe_get s !i = String.unsafe_get input !i do
    incr i
  done;
  !i >= index && ends_with_at s index repl

(* The dedupe set: open-addressed linear probing over parallel
   (hash, string) arrays. A generic [Hashtbl] here costs a generic-hash
   call plus a bucket-cons allocation per insert and shows up directly
   in candidate-generation time; this table allocates nothing per
   operation (the arrays double rarely, and entries are never deleted —
   the campaign resets the whole generation instead, see
   [seen_inputs_cap]). FNV hashes are non-negative, so [-1] marks an
   empty slot. *)
module Seen = struct
  type t = {
    mutable hashes : int array;  (* -1 = empty slot *)
    mutable vals : string array;
    mutable mask : int;  (* Array.length hashes - 1; length a power of 2 *)
    mutable count : int;
  }

  let create () =
    {
      hashes = Array.make 1024 (-1);
      vals = Array.make 1024 "";
      mask = 1023;
      count = 0;
    }

  let count t = t.count

  (* Is a string equal to [input[0..index) ^ repl] present? [h] must be
     the FNV hash of that concatenation. *)
  (* The probe loops are [while]s over a mutable slot index rather than
     local recursive functions: the compiler turns these non-escaping
     refs into registers, whereas a captured-variable [let rec] costs a
     closure allocation per call — on the hottest path in the fuzzer. *)
  let mem_parts t h input index repl =
    let n = index + String.length repl in
    let mask = t.mask in
    let hashes = t.hashes and vals = t.vals in
    let i = ref (h land mask) in
    let res = ref false in
    let probing = ref true in
    while !probing do
      let hi = Array.unsafe_get hashes !i in
      if hi = -1 then probing := false
      else if
        hi = h
        &&
        let s = Array.unsafe_get vals !i in
        String.length s = n && matches_concat s input index repl
      then begin
        res := true;
        probing := false
      end
      else i := (!i + 1) land mask
    done;
    !res

  let insert_raw t h v =
    let mask = t.mask in
    let hashes = t.hashes in
    let i = ref (h land mask) in
    while Array.unsafe_get hashes !i >= 0 do
      i := (!i + 1) land mask
    done;
    hashes.(!i) <- h;
    t.vals.(!i) <- v

  let grow t =
    let old_h = t.hashes and old_v = t.vals in
    let n = 2 * Array.length old_h in
    t.hashes <- Array.make n (-1);
    t.vals <- Array.make n "";
    t.mask <- n - 1;
    Array.iteri (fun i h -> if h >= 0 then insert_raw t h old_v.(i)) old_h

  (* The caller has already checked membership; duplicates are its
     problem. Load factor stays below 1/2. *)
  let add t h v =
    if 2 * (t.count + 1) > Array.length t.hashes then grow t;
    insert_raw t h v;
    t.count <- t.count + 1

  (* Generational reset: clear in place, keeping the grown capacity.
     Values must be cleared too or the dead generation's strings stay
     reachable. *)
  let reset t =
    Array.fill t.hashes 0 (Array.length t.hashes) (-1);
    Array.fill t.vals 0 (Array.length t.vals) "";
    t.count <- 0

  let fold f t acc =
    let acc = ref acc in
    for i = 0 to Array.length t.hashes - 1 do
      if Array.unsafe_get t.hashes i >= 0 then acc := f t.vals.(i) !acc
    done;
    !acc
end

(* Path-novelty counts, same open-addressed scheme with int values. The
   key is already a path hash ({!Runner.path_hash}), so the table maps
   hash -> count exactly as the [Hashtbl] it replaces did (hash
   collisions conflate paths in both). *)
module Paths = struct
  type t = {
    mutable hashes : int array;  (* -1 = empty slot *)
    mutable counts : int array;
    mutable mask : int;
    mutable count : int;  (* distinct keys stored *)
  }

  let create () =
    {
      hashes = Array.make 1024 (-1);
      counts = Array.make 1024 0;
      mask = 1023;
      count = 0;
    }

  let count t = t.count

  (* Slot of key [h], or [-1] when absent. *)
  let find_slot t h =
    let mask = t.mask in
    let hashes = t.hashes in
    let i = ref (h land mask) in
    let res = ref (-2) in
    while !res = -2 do
      let hi = Array.unsafe_get hashes !i in
      if hi = -1 then res := -1
      else if hi = h then res := !i
      else i := (!i + 1) land mask
    done;
    !res

  let get_count t slot = t.counts.(slot)
  let bump t slot = t.counts.(slot) <- t.counts.(slot) + 1

  let insert_raw t h c =
    let mask = t.mask in
    let hashes = t.hashes in
    let i = ref (h land mask) in
    while Array.unsafe_get hashes !i >= 0 do
      i := (!i + 1) land mask
    done;
    hashes.(!i) <- h;
    t.counts.(!i) <- c

  let grow t =
    let old_h = t.hashes and old_c = t.counts in
    let n = 2 * Array.length old_h in
    t.hashes <- Array.make n (-1);
    t.counts <- Array.make n 0;
    t.mask <- n - 1;
    Array.iteri (fun i h -> if h >= 0 then insert_raw t h old_c.(i)) old_h

  let add t h c =
    if 2 * (t.count + 1) > Array.length t.hashes then grow t;
    insert_raw t h c;
    t.count <- t.count + 1

  let reset t =
    Array.fill t.hashes 0 (Array.length t.hashes) (-1);
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.count <- 0

  let fold f t acc =
    let acc = ref acc in
    for i = 0 to Array.length t.hashes - 1 do
      if Array.unsafe_get t.hashes i >= 0 then
        acc := f t.hashes.(i) t.counts.(i) !acc
    done;
    !acc
end

type state = {
  config : config;
  subject : Subject.t;
  (* The incremental engine: present only when the config enables it and
     the subject ships a machine-form parser. [cache] maps an input
     prefix to the snapshot suspended at its end. *)
  machine : Pdf_instr.Machine.recognizer option;
  cache : Runner.Cache.t option;
  (* The compiled tier: when the config asks for it and the subject
     ships a staged recognizer, cold executions run through the arena
     ([Runner.exec_compiled] on the incremental path,
     [Runner.exec_staged] otherwise) instead of the interpreted
     journaled runner. [engine_label] is the engine that actually
     executes — "interpreted" when the request degraded. *)
  staged : Pdf_instr.Machine.recognizer option;
  arena : Runner.arena option;
  engine_label : string;
  rng : Rng.t;
  queue : Candidate.t Pqueue.t;
  on_queue_event : (queue_event -> unit) option;
  (* Deterministic chaos: when a plan is installed, each execution index
     is looked up and a planned fault replaces or degrades that single
     execution. [None] is the production path. *)
  faults : Fault.plan option;
  (* Telemetry. [obs = None] is the fast path: no events, no clock
     reads, no allocation — the observability layer costs nothing when
     off. Every emission site matches on [obs] *before* constructing
     its event. *)
  obs : Obs.t option;
  mutable evictions_seen : int;
  mutable vbr : Coverage.t;  (* branches covered by valid inputs *)
  (* Global branch hit-counts: how many executions reached each outcome,
     across every verdict. The distributed sync protocol merges these
     across shards (pointwise sum), so workers can learn what the fleet
     has saturated. *)
  mutable hits : Pdf_instr.Hits.t;
  mutable valid_rev : string list;
  mutable valid_count : int;
  mutable last_progress_at : int;  (* execution count when vbr last grew *)
  mutable executions : int;
  mutable candidates_created : int;
  mutable queue_peak : int;
  mutable first_valid_at : int option;
  mutable dedupe_resets : int;
  mutable path_resets : int;
  path_counts : Paths.t;
  (* Candidate dedupe, keyed by content hash with stored strings
     verified by in-place comparison. Hash-keying is what lets
     [add_inputs] test "was prefix^repl already queued?" before the
     child string exists: hash the prefix once per run, extend it over
     each replacement, and only allocate on a genuinely fresh child. *)
  seen_inputs : Seen.t;
  (* Crash triage: bounded dedup table keyed on (exn, site) plus the
     first-seen order, so the corpus lists crashes in discovery order. *)
  crash_tab : (string * int, crash) Hashtbl.t;
  mutable crash_order_rev : (string * int) list;
  mutable crash_total : int;
  mutable hangs : int;
  mutable cache_rescues : int;
  on_valid : string -> unit;
  on_execution : (Runner.run -> unit) option;
}

(* The dedupe table would otherwise grow without bound over a long run:
   every distinct candidate string ever queued stays referenced. Cap it
   at a small multiple of the queue bound and reset generationally —
   after a reset some early duplicates may be re-executed once, which is
   cheap compared to retaining millions of dead strings. *)
let seen_inputs_cap config = 4 * config.queue_bound

(* Same bound and policy for the path-novelty table: its keys are path
   hashes of runs, which also accumulate forever. After a reset the
   counts rebuild from the paths still being exercised; a transient
   novelty boost for re-seen paths is cheap compared to unbounded
   growth. *)
let path_counts_cap = seen_inputs_cap

(* Queue-event sites must match on [on_queue_event] *before* building
   the event (and before even capturing its pieces in a closure): pushes
   run several times per execution, and a closure per push is real
   allocation traffic when nobody is listening. *)

(* Queue snapshot for the observer, in insertion order. Only built when
   an observer is installed (see [emit]'s laziness). *)
let observed_snapshot st =
  List.map (fun (prio, (c : Candidate.t)) -> (prio, c.data)) (Pqueue.snapshot st.queue)

(* Telemetry helpers. [tsink] answers "is a trace sink attached" without
   allocating, so hot-path call sites construct events only behind it;
   [span_begin]/[span_end] bracket a phase and are near-free when [obs]
   is [None] (one branch, no clock read). *)
let[@inline] tsink st =
  match st.obs with Some o when Obs.tracing o -> Some o | _ -> None

(* High-frequency exec-level sites (exec_start/exec_done, cache
   consult, queue push/pop) additionally respect the observer's
   deterministic sampling predicate, keyed on the execution counter the
   event would be stamped with. Structural events (valid, crash, hang,
   fault, rescue, resets) always record — they are rare and are exactly
   what a post-mortem needs. *)
let[@inline] tsink_exec st =
  match st.obs with
  | Some o when Obs.tracing o && Obs.sampled o ~exec:st.executions -> Some o
  | _ -> None

(* Dump the flight recorder (when one is attached) on triage-worthy
   moments: fresh crash identities, the first hang, fault drills. *)
let flight_dump st reason =
  match st.obs with None -> () | Some o -> ignore (Obs.flight_dump o ~reason)

(* Phase spans obey the same sampling predicate as exec-level events:
   at [sample > 1] only the sampled executions pay the monotonic-clock
   reads, which is what keeps the always-on modes (sampled trace,
   flight recorder) within a few percent of running blind. A skipped
   [span_begin] returns the sentinel 0 and [span_end]/[span_next]
   discard it, so a begin/end pair never mixes a real timestamp with a
   skipped one even if the execution counter moves between them.
   (CLOCK_MONOTONIC is ns since boot — it is never 0 in practice.) *)
let[@inline] span_begin st =
  match st.obs with
  | Some o when Obs.sampled o ~exec:st.executions -> Obs.span_start o
  | _ -> 0

let[@inline] span_end st phase t0 =
  if t0 <> 0 then
    match st.obs with None -> () | Some o -> Obs.span_end o phase t0

let[@inline] span_next st phase t0 =
  if t0 = 0 then 0
  else match st.obs with None -> 0 | Some o -> Obs.span_next o phase t0

let cache_counters st =
  match st.cache with
  | None -> (0, 0)
  | Some cache ->
    let s = Runner.Cache.stats cache in
    (s.Runner.Cache.hits, s.Runner.Cache.misses)

let maybe_snapshot st =
  match st.obs with
  | None -> ()
  | Some o ->
    if Obs.snapshot_due o then begin
      let hits, misses = cache_counters st in
      Obs.snapshot o ~exec:st.executions ~depth:(Pqueue.length st.queue)
        ~valid:st.valid_count
        ~cov:(Coverage.cardinal st.vbr)
        ~hits ~misses ~rescues:st.cache_rescues
        ~plateau:(st.executions - st.last_progress_at)
        ~hangs:st.hangs ~crashes:st.crash_total
    end

exception Budget_exhausted

(* After an incremental run, remember the suspensions future executions
   will want: the one at the substitution index (children are
   [prefix ^ repl] sharing exactly that prefix) and the one at the end of
   the input (the extension probe [input ^ c] resumes there). The
   {!Runner.Cache.mem} gate matters for the compiled tier, where
   materialising a snapshot replays the prefix: prefixes already cached
   (the common steady-state case) skip the materialisation entirely. *)
let remember_snapshots cache journal (run : Runner.run) =
  let store pos =
    if pos > 0 && pos <= String.length run.input then begin
      (* The presence probe hashes the prefix in place; the prefix
         string is only materialised for a genuine store (a miss),
         which the steady state almost never takes. *)
      if not (Runner.Cache.mem_prefix cache run.input ~len:pos) then
        match Runner.snapshot_at journal pos with
        | Some snap -> Runner.Cache.store cache (String.sub run.input 0 pos) snap
        | None -> ()
    end
  in
  (match Runner.substitution_index run with Some i -> store i | None -> ());
  store (String.length run.input)

(* Cold (non-resumed) journaled execution through the active engine. *)
let exec_cold st machine input =
  match (st.staged, st.arena) with
  | Some staged, Some arena -> Runner.exec_compiled arena staged input
  | _ -> Subject.exec_journaled st.subject machine input

(* Busy-wait used by [Slow] faults: deterministic work the optimizer
   cannot delete, with no observable effect besides wall clock. *)
let spin n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + (i land 7)
  done;
  ignore (Sys.opaque_identity !acc)

(* Run the subject under a planned fault. [Raise] and [Starve_fuel]
   replace the execution entirely (the faulty execution is skipped — its
   observations are whatever the degraded run saw); [Slow] burns time
   and then falls through to the normal path; [Corrupt_cache] poisons
   every cached snapshot first, exercising the rescue path below.
   Returns [None] when the normal execution should proceed. *)
let faulted_run st kind input =
  let registry = st.subject.Subject.registry in
  match kind with
  | Fault.Raise msg ->
    Some
      (Runner.exec ~registry
         ~parse:(fun _ -> raise (Fault.Injected msg))
         ~fuel:st.subject.Subject.fuel input)
  | Fault.Starve_fuel ->
    (* Raise [Out_of_fuel] before the parse makes any progress: a
       guaranteed [Hang] for every subject, including those whose parsers
       never consume fuel themselves. *)
    Some
      (Runner.exec ~registry
         ~parse:(fun _ -> raise Pdf_instr.Ctx.Out_of_fuel)
         ~fuel:st.subject.Subject.fuel input)
  | Fault.Slow n ->
    spin n;
    None
  | Fault.Corrupt_cache ->
    (match st.cache with
     | Some cache -> Runner.Cache.corrupt_all cache
     | None -> ());
    None
  | Fault.Kill_worker ->
    (* Worker death is a grid-level fault; inside the single-domain
       fuzzer loop it degrades to a no-op. *)
    None

(* One execution of the subject. [prefix_len] is the caller's hint that
   the first [prefix_len] characters of [input] were inherited verbatim
   from an already-executed parent; when the incremental engine is on and
   that prefix's suspension is cached, only the suffix is executed. The
   observable run is bit-identical either way. Returns the run and
   whether it resumed from a cached snapshot. *)
let execute st ~prefix_len input =
  if st.executions >= st.config.max_executions then raise Budget_exhausted;
  let fault =
    match st.faults with
    | None -> None
    | Some plan -> Fault.consume plan st.executions
  in
  st.executions <- st.executions + 1;
  (match fault with
   | None -> ()
   | Some kind ->
     match tsink st with
     | None -> ()
     | Some o ->
       Obs.emit o ~exec:st.executions
         (Event.Fault { kind = Fault.kind_label kind }));
  (match tsink_exec st with
   | None -> ()
   | Some o ->
     Obs.emit o ~exec:st.executions
       (Event.Exec_start { len = String.length input; prefix = prefix_len }));
  let injected =
    match fault with
    | None -> None
    | Some kind ->
      let t_exec = span_begin st in
      let run = faulted_run st kind input in
      span_end st Phase.Exec t_exec;
      run
  in
  let run, cached =
    match injected with
    | Some run -> (run, false)
    | None ->
      (match st.cache, st.machine with
       | Some cache, Some machine ->
         let t_cache = span_begin st in
         let consulted = prefix_len > 0 && prefix_len <= String.length input in
         let snap =
           if consulted then Runner.Cache.find_prefix cache input ~len:prefix_len
           else None
         in
         span_end st Phase.Cache t_cache;
         (if consulted then
            match tsink_exec st with
            | None -> ()
            | Some o ->
              Obs.emit o ~exec:st.executions
                (match snap with
                 | Some s -> Event.Cache_hit { saved = Runner.snapshot_pos s }
                 | None -> Event.Cache_miss));
         let t_exec = span_begin st in
         let (run, journal), cached =
           match snap with
           | Some snap -> begin
             let ((r, _) as resumed) = Runner.resume snap input in
             (* A crashing resume is ambiguous: the subject may crash on
                this input, or the snapshot may be corrupt. Invalidate
                the entry and re-execute cold — a real subject crash
                reproduces identically, a poisoned snapshot is healed
                with zero observable difference. *)
             match r.Runner.verdict with
             | Runner.Crash _ ->
               Runner.Cache.remove_prefix cache input ~len:prefix_len;
               st.cache_rescues <- st.cache_rescues + 1;
               (match tsink st with
                | None -> ()
                | Some o ->
                  Obs.emit o ~exec:st.executions
                    (Event.Rescue { prefix = prefix_len }));
               (exec_cold st machine input, false)
             | _ -> (resumed, true)
           end
           | None -> (exec_cold st machine input, false)
         in
         span_end st Phase.Exec t_exec;
         let t_store = span_begin st in
         remember_snapshots cache journal run;
         span_end st Phase.Cache t_store;
         (match tsink st with
          | None -> ()
          | Some o ->
            let ev = (Runner.Cache.stats cache).Runner.Cache.evictions in
            if ev > st.evictions_seen then begin
              st.evictions_seen <- ev;
              Obs.emit o ~exec:st.executions (Event.Cache_evict { evictions = ev })
            end);
         (run, cached)
       | _ ->
         let t_exec = span_begin st in
         let run =
           match (st.staged, st.arena) with
           | Some staged, Some arena -> Runner.exec_staged arena staged input
           | _ -> Subject.run st.subject input
         in
         span_end st Phase.Exec t_exec;
         (run, false))
  in
  Pdf_instr.Hits.record st.hits run.Runner.touched;
  (match st.on_execution with None -> () | Some f -> f run);
  (run, cached)

(* Observe a completed run's path and return how often it had been seen
   before (the novelty signal of §3.2). *)
let note_path st run =
  let h = Runner.path_hash run in
  let slot = Paths.find_slot st.path_counts h in
  if slot >= 0 then begin
    let count = Paths.get_count st.path_counts slot in
    Paths.bump st.path_counts slot;
    count
  end
  else begin
    if Paths.count st.path_counts >= path_counts_cap st.config then begin
      Paths.reset st.path_counts;
      st.path_resets <- st.path_resets + 1;
      match tsink st with
      | None -> ()
      | Some o -> Obs.emit o ~exec:st.executions (Event.Reset { table = "path" })
    end;
    Paths.add st.path_counts h 1;
    0
  end

(* Is [input[0..index) ^ repl] already in the dedupe table? [h] must be
   the FNV hash of that concatenation. *)
let seen_mem st h input index repl =
  Seen.mem_parts st.seen_inputs h input index repl

let seen_add st h data =
  if Seen.count st.seen_inputs >= seen_inputs_cap st.config then begin
    Seen.reset st.seen_inputs;
    st.dedupe_resets <- st.dedupe_resets + 1;
    match tsink st with
    | None -> ()
    | Some o -> Obs.emit o ~exec:st.executions (Event.Reset { table = "dedupe" })
  end;
  Seen.add st.seen_inputs h data

(* [String.sub input 0 index ^ repl] in a single allocation. *)
let concat_blit input index repl =
  let rl = String.length repl in
  let b = Bytes.create (index + rl) in
  Bytes.blit_string input 0 b 0 index;
  Bytes.blit_string repl 0 b index rl;
  Bytes.unsafe_to_string b

(* Score and enqueue a candidate that already passed the dedupe and
   length gates. The queue entry carries the candidate's new-coverage
   count as aux scratch, letting a later valid input re-rank the queue
   incrementally (see [valid_input]). *)
let enqueue st (candidate : Candidate.t) =
  st.candidates_created <- st.candidates_created + 1;
  let t_score = span_begin st in
  let new_cov =
    Coverage.new_against candidate.parent_coverage ~baseline:st.vbr
  in
  let prio = Heuristic.score_with_cov st.config.heuristic ~new_cov candidate in
  let t_queue = span_next st Phase.Score t_score in
  Pqueue.push ~aux:new_cov st.queue prio candidate;
  span_end st Phase.Queue t_queue;
  (match st.on_queue_event with
   | None -> ()
   | Some f -> f (Pushed (prio, candidate.data)));
  (match tsink_exec st with
   | None -> ()
   | Some o ->
     Obs.emit o ~exec:st.executions
       (Event.Queue_push
          { prio; len = String.length candidate.data; depth = Pqueue.length st.queue }));
  (* Truncate with hysteresis: a full drop sorts the heap, so only do
     it after the queue has doubled past its bound. *)
  if Pqueue.length st.queue > 2 * st.config.queue_bound then begin
    let before = Pqueue.length st.queue in
    let t_trunc = span_begin st in
    Pqueue.drop_worst st.queue st.config.queue_bound;
    span_end st Phase.Queue t_trunc;
    (match st.on_queue_event with
     | None -> ()
     | Some f -> f (Truncated (observed_snapshot st)));
    match tsink st with
    | None -> ()
    | Some o ->
      let depth = Pqueue.length st.queue in
      Obs.emit o ~exec:st.executions
        (Event.Queue_trunc { dropped = before - depth; depth })
  end;
  st.queue_peak <- max st.queue_peak (Pqueue.length st.queue)

(* Entry point for already-materialised candidates (seed inputs). *)
let push_candidate st (candidate : Candidate.t) =
  let data = candidate.Candidate.data in
  let h = if st.config.dedupe then Fnv.string data else 0 in
  let fresh =
    (not st.config.dedupe) || not (seen_mem st h data (String.length data) "")
  in
  if fresh && String.length data <= st.config.max_input_len then begin
    if st.config.dedupe then seen_add st h data;
    enqueue st candidate
  end

(* Algorithm 1, [addInputs]: one child per comparison made against the
   last compared input position, splicing in the expected character(s).
   The loop is allocation-disciplined: the parent prefix is hashed once
   in place, each replacement extends that hash, and the dedupe table is
   probed before anything is built — a rejected duplicate allocates no
   string at all. Only a genuinely fresh child is materialised, with a
   single [Bytes] blit. Dedupe and construction time lands in the [Gen]
   phase span; scoring and queue maintenance stay in [Score]/[Queue]
   inside [enqueue]. *)
let add_inputs st ~(parent : Candidate.t) (run : Runner.run) =
  match Runner.substitution_index run with
  | None -> ()
  | Some index ->
    let t_gen = ref (span_begin st) in
    (* One substitution-index computation feeds every derived fact —
       the [~index] variants skip the per-call comparison-log rescan. *)
    let parent_coverage = Runner.coverage_up_to run ~index in
    let comps = Runner.comparisons_at run ~index in
    let avg_stack = Runner.avg_stack_of_last_two run in
    let path_count = note_path st run in
    let input = run.input in
    let index = min index (String.length input) in
    let prefix_hash = Fnv.prefix input index in
    List.iter
      (fun (comp : Comparison.t) ->
        List.iter
          (fun repl ->
            let len = index + String.length repl in
            (* A child equal to the parent input would only re-queue it;
               equal length plus a matching splice means equal strings
               (the prefix is shared by construction). *)
            let is_parent =
              len = String.length input && ends_with_at input index repl
            in
            if (not is_parent) && len <= st.config.max_input_len then begin
              let h =
                if st.config.dedupe then Fnv.continue prefix_hash repl else 0
              in
              if not (st.config.dedupe && seen_mem st h input index repl)
              then begin
                let data = concat_blit input index repl in
                if st.config.dedupe then seen_add st h data;
                span_end st Phase.Gen !t_gen;
                enqueue st
                  {
                    Candidate.data;
                    repl;
                    parents = parent.parents + 1;
                    parent_coverage;
                    avg_stack;
                    path_count;
                  };
                t_gen := span_begin st
              end
            end)
          (Comparison.replacements st.rng comp))
      comps;
    span_end st Phase.Gen !t_gen

(* Algorithm 1, [validInp]: report, extend vBr, re-rank the queue. *)
let valid_input st ~(parent : Candidate.t) (run : Runner.run) =
  st.valid_rev <- run.input :: st.valid_rev;
  st.valid_count <- st.valid_count + 1;
  if st.first_valid_at = None then st.first_valid_at <- Some st.executions;
  st.on_valid run.input;
  (* The freshly covered outcomes relative to the old vBr — the only
     part of any queued candidate's score that this input can change. *)
  let delta = Coverage.diff run.coverage st.vbr in
  st.vbr <- Coverage.union st.vbr run.coverage;
  st.last_progress_at <- st.executions;
  (match tsink st with
   | None -> ()
   | Some o ->
     Obs.emit o ~exec:st.executions
       (Event.Valid
          { input = run.input; cov = Coverage.cardinal st.vbr; count = st.valid_count }));
  (* Incremental re-rank: a candidate's score depends on vBr only
     through [new_cov = |parent_coverage \ vBr|], and vBr just grew by
     [delta] (disjoint from the old vBr by construction), so the updated
     count is the cached one minus [|parent_coverage ∩ delta|].
     Candidates that miss the delta keep bit-identical priorities and
     are skipped; the rest re-score through the same arithmetic a full
     rerank would use. The re-scoring lands in the Score phase. *)
  let t_rerank = span_begin st in
  Pqueue.update st.queue (fun (candidate : Candidate.t) ~aux ->
      let d = Coverage.inter_cardinal candidate.parent_coverage delta in
      if d = 0 then None
      else
        let new_cov = aux - d in
        Some (Heuristic.score_with_cov st.config.heuristic ~new_cov candidate, new_cov));
  span_end st Phase.Score t_rerank;
  (match st.on_queue_event with
   | None -> ()
   | Some f -> f (Reranked (observed_snapshot st)));
  (match tsink st with
   | None -> ()
   | Some o ->
     Obs.emit o ~exec:st.executions
       (Event.Queue_rerank { depth = Pqueue.length st.queue }));
  add_inputs st ~parent run

let verdict_string (run : Runner.run) =
  match run.verdict with
  | Runner.Accepted -> "accepted"
  | Runner.Rejected _ -> "rejected"
  | Runner.Hang -> "hang"
  | Runner.Crash _ -> "crash"

(* Crash triage: count every crash, retain the first witness per
   (exn, site) identity up to the corpus bound, and emit a typed event
   marking whether the identity is fresh. *)
let record_crash st (run : Runner.run) (c : Runner.crash) =
  st.crash_total <- st.crash_total + 1;
  let key = (c.Runner.exn, c.Runner.site) in
  let fresh =
    match Hashtbl.find_opt st.crash_tab key with
    | Some entry ->
      Hashtbl.replace st.crash_tab key { entry with count = entry.count + 1 };
      false
    | None ->
      if Hashtbl.length st.crash_tab < crash_bound then begin
        Hashtbl.replace st.crash_tab key
          {
            exn = c.Runner.exn;
            site = c.Runner.site;
            detail = c.Runner.detail;
            input = run.Runner.input;
            first_at = st.executions;
            count = 1;
          };
        st.crash_order_rev <- key :: st.crash_order_rev;
        true
      end
      else false
  in
  (match tsink st with
   | None -> ()
   | Some o ->
     Obs.emit o ~exec:st.executions
       (Event.Crash
          { exn = c.Runner.exn; site = c.Runner.site; fresh; total = st.crash_total }));
  if fresh then flight_dump st "crash"

let crashed (run : Runner.run) =
  match run.Runner.verdict with Runner.Crash _ -> true | _ -> false

(* Algorithm 1, [runCheck]: an input counts as valid only if it is
   accepted and covers branches no previous valid input covered. *)
let run_check st ~parent ~prefix_len input =
  (* [execute] will bump the counter, so the sampling decision for this
     execution's [Exec_done] keys on [executions + 1] — read the clock
     only when that event will actually be recorded. *)
  let t0 =
    match st.obs with
    | Some o when Obs.sampled o ~exec:(st.executions + 1) -> Obs.now_ns o
    | _ -> 0
  in
  let run, cached = execute st ~prefix_len input in
  (match run.Runner.verdict with
   | Runner.Hang -> begin
     st.hangs <- st.hangs + 1;
     (match tsink st with
      | None -> ()
      | Some o -> Obs.emit o ~exec:st.executions (Event.Hang { total = st.hangs }));
     if st.hangs = 1 then flight_dump st "hang"
   end
   | Runner.Crash c -> record_crash st run c
   | _ -> ());
  let cov_before =
    match tsink_exec st with None -> 0 | Some _ -> Coverage.cardinal st.vbr
  in
  let valid =
    Runner.accepted run && Coverage.new_against run.coverage ~baseline:st.vbr > 0
  in
  if valid then valid_input st ~parent run;
  (match tsink_exec st with
   | None -> ()
   | Some o ->
     let cov_now = Coverage.cardinal st.vbr in
     Obs.emit o ~exec:st.executions
       (Event.Exec_done
          {
            dur_ns = Obs.now_ns o - t0;
            verdict = verdict_string run;
            engine = st.engine_label;
            cached;
            sub_index =
              (match Runner.substitution_index run with Some i -> i | None -> -1);
            cov = cov_now;
            cov_delta = cov_now - cov_before;
            valid;
            len = String.length run.input;
          }));
  maybe_snapshot st;
  (valid, run)

(* Restarts and extension probes happen on every iteration of the main
   loop; keep them allocation-free by passing raw characters around and
   interning the 1-character seed strings. *)
let singleton_strings = Array.init 256 (fun i -> String.make 1 (Char.chr i))
let random_char st = Rng.printable st.rng
let seed_of_char c = Candidate.seed singleton_strings.(Char.code c)

(* [data ^ String.make 1 c] in one allocation. *)
let extend data c =
  let n = String.length data in
  let b = Bytes.create (n + 1) in
  Bytes.blit_string data 0 b 0 n;
  Bytes.unsafe_set b n c;
  Bytes.unsafe_to_string b

let make_state ~on_valid ~on_queue_event ~on_execution ~obs ~faults ~rng config
    subject =
  (* Fault drills dump the flight recorder the moment they fire, via
     pdf_fault's telemetry-agnostic trigger hook: the post-mortem shows
     the events leading up to the drill. *)
  (match (faults, obs) with
   | Some plan, Some o ->
     Fault.set_on_trigger plan (fun _index kind ->
         ignore (Obs.flight_dump o ~reason:("fault-" ^ Fault.kind_label kind)))
   | _ -> ());
  let machine = if config.incremental then subject.Subject.machine else None in
  let staged =
    match config.engine with
    | Compiled when subject.Subject.compiled_preferred -> subject.Subject.compiled
    | Compiled | Interpreted -> None
  in
  {
    config;
    subject;
    machine;
    cache =
      (match machine with
       | Some _ -> Some (Runner.Cache.create ())
       | None -> None);
    staged;
    arena =
      (match staged with
       | Some _ ->
         Some
           (Runner.arena ~registry:subject.Subject.registry
              ~fuel:subject.Subject.fuel ())
       | None -> None);
    engine_label =
      (if staged <> None then "compiled" else "interpreted");
    rng;
    queue = Pqueue.create ();
    on_queue_event;
    faults;
    obs;
    evictions_seen = 0;
    vbr = Coverage.empty;
    hits = Pdf_instr.Hits.create ();
    valid_rev = [];
    valid_count = 0;
    last_progress_at = 0;
    executions = 0;
    candidates_created = 0;
    queue_peak = 0;
    first_valid_at = None;
    dedupe_resets = 0;
    path_resets = 0;
    path_counts = Paths.create ();
    seen_inputs = Seen.create ();
    crash_tab = Hashtbl.create 16;
    crash_order_rev = [];
    crash_total = 0;
    hangs = 0;
    cache_rescues = 0;
    on_valid;
    on_execution;
  }

(* A checkpoint captures the loop-top instant: the candidate about to be
   executed, the queue without it, and the RNG exactly as the previous
   iteration left it. Resuming replays from that instant bit-for-bit
   (modulo cache accounting, which restarts cold). *)
let checkpoint_of st (current : Candidate.t) : Checkpoint.t =
  {
    ck_subject = st.subject.Subject.name;
    ck_config = st.config;
    ck_rng = Rng.state st.rng;
    ck_queue = Pqueue.snapshot st.queue;
    ck_current = current;
    ck_vbr = st.vbr;
    ck_valid_rev = st.valid_rev;
    ck_valid_count = st.valid_count;
    ck_first_valid_at = st.first_valid_at;
    ck_last_progress_at = st.last_progress_at;
    ck_executions = st.executions;
    ck_candidates_created = st.candidates_created;
    ck_queue_peak = st.queue_peak;
    ck_dedupe_resets = st.dedupe_resets;
    ck_path_resets = st.path_resets;
    ck_seen = Seen.fold (fun s acc -> s :: acc) st.seen_inputs [];
    ck_paths = Paths.fold (fun k v acc -> (k, v) :: acc) st.path_counts [];
    ck_hits = Pdf_instr.Hits.to_list st.hits;
    ck_hangs = st.hangs;
    ck_crashes =
      List.rev_map (fun key -> (key, Hashtbl.find st.crash_tab key))
        st.crash_order_rev;
    ck_crash_total = st.crash_total;
  }

let restore_state ~on_valid ~on_queue_event ~on_execution ~obs ~faults
    (ck : Checkpoint.t) subject =
  if not (String.equal subject.Subject.name ck.ck_subject) then
    invalid_arg
      (Printf.sprintf
         "Pfuzzer.resume_from: checkpoint was taken for subject %S, not %S"
         ck.ck_subject subject.Subject.name);
  let st =
    make_state ~on_valid ~on_queue_event ~on_execution ~obs ~faults
      ~rng:(Rng.of_state ck.ck_rng) ck.ck_config subject
  in
  (* The queue snapshot is in insertion order; re-pushing in that order
     preserves the heap's priority/insertion-order total order, so the
     resumed run pops the exact sequence the original would have. *)
  (* vBr must be restored before the queue so each re-pushed entry's
     cached new-coverage aux is computed against the same baseline the
     snapshot priorities reflect. *)
  st.vbr <- ck.ck_vbr;
  List.iter
    (fun (prio, (c : Candidate.t)) ->
      Pqueue.push
        ~aux:(Coverage.new_against c.parent_coverage ~baseline:st.vbr)
        st.queue prio c)
    ck.ck_queue;
  List.iter (fun s -> Seen.add st.seen_inputs (Fnv.string s) s) ck.ck_seen;
  List.iter (fun (h, n) -> Paths.add st.path_counts h n) ck.ck_paths;
  List.iter (fun (key, cr) -> Hashtbl.replace st.crash_tab key cr) ck.ck_crashes;
  st.crash_order_rev <- List.rev_map fst ck.ck_crashes;
  st.hits <- Pdf_instr.Hits.of_list ck.ck_hits;
  st.valid_rev <- ck.ck_valid_rev;
  st.valid_count <- ck.ck_valid_count;
  st.first_valid_at <- ck.ck_first_valid_at;
  st.last_progress_at <- ck.ck_last_progress_at;
  st.executions <- ck.ck_executions;
  st.candidates_created <- ck.ck_candidates_created;
  st.queue_peak <- ck.ck_queue_peak;
  st.dedupe_resets <- ck.ck_dedupe_resets;
  st.path_resets <- ck.ck_path_resets;
  st.hangs <- ck.ck_hangs;
  st.crash_total <- ck.ck_crash_total;
  (st, ck.ck_current)

let drive st ~first ~checkpoint_every ~on_checkpoint =
  let t_start = Pdf_obs.Clock.now_ns () in
  (match st.obs with
   | None -> ()
   | Some o ->
     Obs.run_meta o ~subject:st.subject.Subject.name
       ~outcomes:(Pdf_instr.Site.total_outcomes st.subject.Subject.registry)
       ~seed:st.config.seed ~max_executions:st.config.max_executions
       ~incremental:(st.machine <> None) ~engine:st.engine_label);
  let next_candidate () =
    (* The popped priority is only ever reported to listeners; when
       nobody is listening, take the value-only pop and skip the
       (prio, value) pair allocation. Both paths remove the same entry. *)
    match st.on_queue_event with
    | None when tsink st = None ->
      let t_pop = span_begin st in
      let popped = Pqueue.pop st.queue in
      span_end st Phase.Queue t_pop;
      (match popped with
       | Some c -> c
       | None -> seed_of_char (random_char st))
    | listener -> (
      let t_pop = span_begin st in
      let popped = Pqueue.pop_with_priority st.queue in
      span_end st Phase.Queue t_pop;
      match popped with
      | Some (prio, c) ->
        (match listener with
         | None -> ()
         | Some f -> f (Popped (prio, c.Candidate.data)));
        (match tsink_exec st with
         | None -> ()
         | Some o ->
           Obs.emit o ~exec:st.executions
             (Event.Queue_pop
                {
                  prio;
                  len = String.length c.Candidate.data;
                  depth = Pqueue.length st.queue;
                }));
        c
      | None ->
        (* Queue exhausted: restart from a fresh random character, as at
           the beginning of the search. *)
        seed_of_char (random_char st))
  in
  (try
     let candidate = ref first in
     let last_checkpoint = ref st.executions in
     (* Drain candidates in batches: checkpoint opportunities (and with
        them any checkpoint-file I/O) happen only at batch boundaries,
        so the hot loop between boundaries is pure fuzzing. Results are
        batch-size-independent — the per-candidate work is identical and
        strictly sequential; only checkpoint cadence shifts. *)
     let batch = max 1 st.config.batch in
     while true do
       (match on_checkpoint with
        | Some save when st.executions - !last_checkpoint >= checkpoint_every ->
          save (checkpoint_of st !candidate);
          last_checkpoint := st.executions
        | _ -> ());
       for _ = 1 to batch do
         let c = !candidate in
         (* A queued candidate is [prefix ^ repl] for an already-executed
            parent input sharing [prefix] — exactly the part a cached
            suspension lets us skip. *)
         let prefix_len = String.length c.data - String.length c.repl in
         let valid, run = run_check st ~parent:c ~prefix_len c.data in
         if (not valid) && not (crashed run) then begin
           (* Second execution: the same input extended by one random
              character, probing whether the parser wants more input. The
              just-executed candidate is the extension's parent prefix. A
              crashed candidate is triaged and dropped instead — extending
              past the crash point would only reproduce it. *)
           let extended = extend c.data (random_char st) in
           if String.length extended <= st.config.max_input_len then begin
             let valid2, run2 =
               run_check st ~parent:c ~prefix_len:(String.length c.data)
                 extended
             in
             if (not valid2) && not (crashed run2) then
               add_inputs st ~parent:c run2
           end
         end;
         candidate := next_candidate ()
       done
     done
   with Budget_exhausted -> ());
  (match st.obs with
   | None -> ()
   | Some o ->
     Obs.finish o ~exec:st.executions ~valid:st.valid_count
       ~cov:(Coverage.cardinal st.vbr));
  let wall_ns = Pdf_obs.Clock.now_ns () - t_start in
  let wall_clock_s = float_of_int wall_ns /. 1e9 in
  {
    valid_inputs = List.rev st.valid_rev;
    valid_coverage = st.vbr;
    hits = st.hits;
    engine = st.engine_label;
    executions = st.executions;
    candidates_created = st.candidates_created;
    queue_peak = st.queue_peak;
    first_valid_at = st.first_valid_at;
    dedupe_resets = st.dedupe_resets;
    path_resets = st.path_resets;
    cache =
      (match st.cache with
       | None -> { no_cache_stats with rescues = st.cache_rescues }
       | Some cache ->
         let s = Runner.Cache.stats cache in
         {
           hits = s.Runner.Cache.hits;
           misses = s.misses;
           evictions = s.evictions;
           chars_saved = s.chars_saved;
           rescues = st.cache_rescues;
         });
    crashes =
      List.rev_map (fun key -> Hashtbl.find st.crash_tab key) st.crash_order_rev;
    crash_total = st.crash_total;
    hangs = st.hangs;
    wall_clock_s;
    execs_per_sec =
      (if wall_ns <= 0 then 0.0
       else float_of_int st.executions /. wall_clock_s);
  }

let fuzz ?(on_valid = fun _ -> ()) ?on_queue_event ?on_execution ?obs ?faults
    ?(checkpoint_every = 1000) ?on_checkpoint ?(initial_inputs = []) config
    subject =
  let st =
    make_state ~on_valid ~on_queue_event ~on_execution ~obs ~faults
      ~rng:(Rng.make config.seed) config subject
  in
  List.iter (fun input -> push_candidate st (Candidate.seed input)) initial_inputs;
  let first = seed_of_char (random_char st) in
  drive st ~first ~checkpoint_every ~on_checkpoint

let resume_from ?(on_valid = fun _ -> ()) ?on_queue_event ?on_execution ?obs
    ?faults ?(checkpoint_every = 1000) ?on_checkpoint checkpoint subject =
  let st, first =
    restore_state ~on_valid ~on_queue_event ~on_execution ~obs ~faults
      checkpoint subject
  in
  drive st ~first ~checkpoint_every ~on_checkpoint
