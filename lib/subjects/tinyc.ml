module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site
module Charset = Pdf_util.Charset
module Tstring = Pdf_taint.Tstring

(* The subject is functorised so the paper-faithful parser and the Â§7.2
   token-taint variant share one implementation: the only difference is
   whether a token-kind expectation emits a comparison event at the
   token's input position. *)
module Make (Config : sig
  val name : string
  val token_taints : bool

  val semantic_checks : bool
  (** §7.3: when on, execution rejects programs that read a variable
      before any assignment to it — a context-sensitive restriction the
      parser cannot see. *)
end) =
struct
let registry = Site.create_registry Config.name
let s_parse = Site.block registry "parse"
let s_lex = Site.block registry "lex"
let s_statement = Site.block registry "statement"
let s_paren_expr = Site.block registry "paren-expr"
let s_expr = Site.block registry "expr"
let s_test = Site.block registry "test"
let s_sum = Site.block registry "sum"
let s_term = Site.block registry "term"
let s_exec = Site.block registry "exec"
let s_exec_if = Site.block registry "exec.if"
let s_exec_while = Site.block registry "exec.while"
let s_exec_do = Site.block registry "exec.do"
let s_exec_assign = Site.block registry "exec.assign"
let b_ws = Site.branch registry "lex.ws?"
let b_letter = Site.branch registry "lex.letter?"
let b_digit = Site.branch registry "lex.digit?"

let symbols = "<+-;={}()"

(* One branch per symbol, as in the original lexer's if/else-if chain. *)
let b_symbols =
  List.map
    (fun c -> (c, Site.branch registry (Printf.sprintf "lex.sym-%c?" c)))
    (List.init (String.length symbols) (String.get symbols))
let b_kw_if = Site.branch registry "lex.kw-if?"
let b_kw_else = Site.branch registry "lex.kw-else?"
let b_kw_while = Site.branch registry "lex.kw-while?"
let b_kw_do = Site.branch registry "lex.kw-do?"
let b_word_is_id = Site.branch registry "lex.word-is-id?"
let b_stmt_if = Site.branch registry "stmt.if?"
let b_stmt_else = Site.branch registry "stmt.else?"
let b_stmt_while = Site.branch registry "stmt.while?"
let b_stmt_do = Site.branch registry "stmt.do?"
let b_stmt_block = Site.branch registry "stmt.block?"
let b_stmt_empty = Site.branch registry "stmt.empty?"
let b_block_more = Site.branch registry "block.more?"
let b_lparen = Site.branch registry "paren.lparen"
let b_rparen = Site.branch registry "paren.rparen"
let b_semicolon = Site.branch registry "stmt.semicolon"
let b_do_while = Site.branch registry "do.while-kw"
let b_assign = Site.branch registry "expr.assign?"
let b_lvalue = Site.branch registry "expr.lvalue?"
let b_less = Site.branch registry "test.less?"
let b_add = Site.branch registry "sum.add?"
let b_sub = Site.branch registry "sum.sub?"
let b_term_id = Site.branch registry "term.id?"
let b_term_num = Site.branch registry "term.num?"
let b_term_paren = Site.branch registry "term.paren?"
let b_exec_cond = Site.branch registry "exec.cond?"
let b_exec_less = Site.branch registry "exec.less?"
let b_sem_defined = Site.branch registry "exec.sem-defined?"
let b_trailing = Site.branch registry "parse.trailing?"

type token =
  | Sym of char
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_do
  | Id of int  (** variable index 0..25 *)
  | Num of int
  | Eof

type expr =
  | E_assign of int * expr
  | E_less of expr * expr
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_id of int
  | E_num of int

type stmt =
  | S_if of expr * stmt * stmt option
  | S_while of expr * stmt
  | S_do of stmt * expr
  | S_block of stmt list
  | S_expr of expr
  | S_empty

type parser_state = { ctx : Ctx.t; mutable tok : token; mutable tok_start : int }

let ws = Charset.of_string " \t\r\n"
let lower = Charset.range 'a' 'z'

(* Returns the token and the input position where it starts. *)
let next_token ctx =
  Ctx.with_frame ctx s_lex @@ fun () ->
  Helpers.skip_set ctx b_ws ~label:"whitespace" ws;
  let start = Ctx.pos ctx in
  let token =
    match Ctx.peek ctx with
  | None -> Eof
  | Some c ->
    if Ctx.in_range ctx b_letter c 'a' 'z' then begin
      let word = Helpers.read_set ctx b_letter ~label:"letter" lower in
      if Ctx.str_eq ctx b_kw_if word "if" then Kw_if
      else if Ctx.str_eq ctx b_kw_else word "else" then Kw_else
      else if Ctx.str_eq ctx b_kw_while word "while" then Kw_while
      else if Ctx.str_eq ctx b_kw_do word "do" then Kw_do
      else if Ctx.branch ctx b_word_is_id (Tstring.length word = 1) then
        Id (Char.code (Tstring.get word 0).Pdf_taint.Tchar.ch - Char.code 'a')
      else Ctx.reject ctx "unknown keyword"
    end
    else if Ctx.in_range ctx b_digit c '0' '9' then begin
      let num = Helpers.read_set ctx b_digit ~label:"digit" Charset.digits in
      (* Accumulate with silent wrap-around, as C's int arithmetic does;
         [int_of_string] would fail on fuzzer-generated digit floods. *)
      let value =
        Tstring.chars num
        |> List.fold_left
             (fun acc (c : Pdf_taint.Tchar.t) ->
               (acc * 10) + (Char.code c.ch - Char.code '0'))
             0
      in
      Num value
    end
    else begin
      let rec try_symbols = function
        | [] -> Ctx.reject ctx "unexpected character"
        | (sym, site) :: rest ->
          if Ctx.eq ctx site c sym then begin
            ignore (Ctx.next ctx);
            Sym sym
          end
          else try_symbols rest
      in
      try_symbols b_symbols
    end
  in
  (token, start)

let advance st =
  let token, start = next_token st.ctx in
  st.tok <- token;
  st.tok_start <- start

(* Token-kind expectation. The lexer's dispatch comparisons already
   happened; the structural check here has no data flow from the input
   (Â§7.2), unless the token-taint extension re-attaches it. *)
let expect_sym st c site =
  let matched = st.tok = Sym c in
  let matched =
    if Config.token_taints then
      Ctx.expect_token st.ctx site ~at:st.tok_start ~spelling:(String.make 1 c)
        ~matched
    else Ctx.branch st.ctx site matched
  in
  if matched then advance st
  else Ctx.reject st.ctx (Printf.sprintf "expected %C" c)

let rec expr st =
  Ctx.with_frame st.ctx s_expr @@ fun () ->
  let left = test st in
  if Ctx.branch st.ctx b_assign (st.tok = Sym '=') then begin
    match left with
    | E_id v ->
      ignore (Ctx.branch st.ctx b_lvalue true);
      advance st;
      E_assign (v, expr st)
    | E_assign _ | E_less _ | E_add _ | E_sub _ | E_num _ ->
      ignore (Ctx.branch st.ctx b_lvalue false);
      Ctx.reject st.ctx "assignment to non-variable"
  end
  else left

and test st =
  Ctx.with_frame st.ctx s_test @@ fun () ->
  let left = sum st in
  if Ctx.branch st.ctx b_less (st.tok = Sym '<') then begin
    advance st;
    E_less (left, sum st)
  end
  else left

and sum st =
  Ctx.with_frame st.ctx s_sum @@ fun () ->
  let rec more acc =
    if Ctx.branch st.ctx b_add (st.tok = Sym '+') then begin
      advance st;
      more (E_add (acc, term st))
    end
    else if Ctx.branch st.ctx b_sub (st.tok = Sym '-') then begin
      advance st;
      more (E_sub (acc, term st))
    end
    else acc
  in
  more (term st)

and term st =
  Ctx.with_frame st.ctx s_term @@ fun () ->
  match st.tok with
  | Id v ->
    ignore (Ctx.branch st.ctx b_term_id true);
    advance st;
    E_id v
  | Num n ->
    ignore (Ctx.branch st.ctx b_term_num true);
    advance st;
    E_num n
  | Sym '(' ->
    ignore (Ctx.branch st.ctx b_term_paren true);
    paren_expr st
  | Sym _ | Kw_if | Kw_else | Kw_while | Kw_do | Eof ->
    ignore (Ctx.branch st.ctx b_term_paren false);
    Ctx.reject st.ctx "expected term"

and paren_expr st =
  Ctx.with_frame st.ctx s_paren_expr @@ fun () ->
  expect_sym st '(' b_lparen;
  let e = expr st in
  expect_sym st ')' b_rparen;
  e

let rec statement st =
  Ctx.with_frame st.ctx s_statement @@ fun () ->
  Ctx.tick st.ctx;
  if Ctx.branch st.ctx b_stmt_if (st.tok = Kw_if) then begin
    advance st;
    let cond = paren_expr st in
    let then_branch = statement st in
    if Ctx.branch st.ctx b_stmt_else (st.tok = Kw_else) then begin
      advance st;
      S_if (cond, then_branch, Some (statement st))
    end
    else S_if (cond, then_branch, None)
  end
  else if Ctx.branch st.ctx b_stmt_while (st.tok = Kw_while) then begin
    advance st;
    let cond = paren_expr st in
    S_while (cond, statement st)
  end
  else if Ctx.branch st.ctx b_stmt_do (st.tok = Kw_do) then begin
    advance st;
    let body = statement st in
    let matched = st.tok = Kw_while in
    let matched =
      if Config.token_taints then
        Ctx.expect_token st.ctx b_do_while ~at:st.tok_start ~spelling:"while"
          ~matched
      else Ctx.branch st.ctx b_do_while matched
    in
    if matched then begin
      advance st;
      let cond = paren_expr st in
      expect_sym st ';' b_semicolon;
      S_do (body, cond)
    end
    else Ctx.reject st.ctx "expected 'while' after do-body"
  end
  else if Ctx.branch st.ctx b_stmt_block (st.tok = Sym '{') then begin
    advance st;
    let rec stmts acc =
      if Ctx.branch st.ctx b_block_more (st.tok <> Sym '}' && st.tok <> Eof) then
        stmts (statement st :: acc)
      else begin
        expect_sym st '}' b_stmt_block;
        S_block (List.rev acc)
      end
    in
    stmts []
  end
  else if Ctx.branch st.ctx b_stmt_empty (st.tok = Sym ';') then begin
    advance st;
    S_empty
  end
  else begin
    let e = expr st in
    expect_sym st ';' b_semicolon;
    S_expr e
  end

(* Execution, as in the paper's evaluation setup (tinyC programs are run
   after parsing). The fuel budget turns infinite loops into hangs. *)
let exec ctx program =
  Ctx.with_frame ctx s_exec @@ fun () ->
  let vars = Array.make 26 0 in
  let assigned = Array.make 26 false in
  let rec eval = function
    | E_assign (v, e) ->
      Ctx.cover ctx s_exec_assign;
      let value = eval e in
      vars.(v) <- value;
      assigned.(v) <- true;
      value
    | E_less (a, b) ->
      if Ctx.branch ctx b_exec_less (eval a < eval b) then 1 else 0
    | E_add (a, b) -> eval a + eval b
    | E_sub (a, b) -> eval a - eval b
    | E_id v ->
      if Config.semantic_checks then begin
        if not (Ctx.branch ctx b_sem_defined assigned.(v)) then
          Ctx.reject ctx
            (Printf.sprintf "use of variable '%c' before assignment"
               (Char.chr (Char.code 'a' + v)))
      end;
      vars.(v)
    | E_num n -> n
  in
  let rec run = function
    | S_if (cond, then_branch, else_branch) ->
      Ctx.cover ctx s_exec_if;
      if Ctx.branch ctx b_exec_cond (eval cond <> 0) then run then_branch
      else (match else_branch with Some s -> run s | None -> ())
    | S_while (cond, body) ->
      Ctx.cover ctx s_exec_while;
      while Ctx.branch ctx b_exec_cond (eval cond <> 0) do
        Ctx.tick ctx;
        run body
      done
    | S_do (body, cond) ->
      Ctx.cover ctx s_exec_do;
      let continue = ref true in
      while !continue do
        Ctx.tick ctx;
        run body;
        continue := Ctx.branch ctx b_exec_cond (eval cond <> 0)
      done
    | S_block stmts -> List.iter run stmts
    | S_expr e -> ignore (eval e)
    | S_empty -> ()
  in
  run program

let parse ctx =
  Ctx.with_frame ctx s_parse @@ fun () ->
  let tok, tok_start = next_token ctx in
  let st = { ctx; tok; tok_start } in
  if st.tok = Eof then Ctx.reject ctx "empty program";
  let program = statement st in
  if Ctx.branch ctx b_trailing (st.tok <> Eof) then
    Ctx.reject ctx "trailing input after statement";
  exec ctx program

end

let tokens =
  [
    Token.literal "<";
    Token.literal "+";
    Token.literal "-";
    Token.literal ";";
    Token.literal "=";
    Token.literal "{";
    Token.literal "}";
    Token.literal "(";
    Token.literal ")";
    Token.make "identifier" 1;
    Token.make "number" 1;
    Token.literal "if";
    Token.literal "do";
    Token.literal "else";
    Token.literal "while";
  ]

let tokenize input =
  let tags = ref [] in
  let push tag = if not (List.mem tag !tags) then tags := tag :: !tags in
  let n = String.length input in
  let rec scan i =
    if i < n then
      match input.[i] with
      | '<' | '+' | '-' | ';' | '=' | '{' | '}' | '(' | ')' ->
        push (String.make 1 input.[i]);
        scan (i + 1)
      | '0' .. '9' ->
        push "number";
        scan (i + 1)
      | 'a' .. 'z' ->
        let rec word j = if j < n && input.[j] >= 'a' && input.[j] <= 'z' then word (j + 1) else j in
        let j = word i in
        (match String.sub input i (j - i) with
         | "if" | "else" | "while" | "do" -> push (String.sub input i (j - i))
         | _ -> push "identifier");
        scan j
      | _ -> scan (i + 1)
  in
  scan 0;
  List.rev !tags

module Plain = Make (struct
  let name = "tinyc"
  let token_taints = false
  let semantic_checks = false
end)

module Token_taints = Make (struct
  let name = "tinyc-tt"
  let token_taints = true
  let semantic_checks = false
end)

module Semantic = Make (struct
  let name = "tinyc-sem"
  let token_taints = false
  let semantic_checks = true
end)

let subject =
  {
    Subject.name = "tinyc";
    description = "Tiny-C: a C subset with execution (paper subject: tinyC)";
    registry = Plain.registry;
    parse = Plain.parse;
    machine = None;
    compiled = None;
    compiled_preferred = false;
    fuel = 1_500;
    tokens;
    tokenize;
    original_loc = 191;
  }

let subject_semantic =
  {
    Subject.name = "tinyc-sem";
    description = "Tiny-C with Â§7.3 semantic checks (use before assignment)";
    registry = Semantic.registry;
    parse = Semantic.parse;
    machine = None;
    compiled = None;
    compiled_preferred = false;
    fuel = 1_500;
    tokens;
    tokenize;
    original_loc = 191;
  }

let subject_token_taints =
  {
    Subject.name = "tinyc-tt";
    description = "Tiny-C with Â§7.2 token-taint recovery";
    registry = Token_taints.registry;
    parse = Token_taints.parse;
    machine = None;
    compiled = None;
    compiled_preferred = false;
    fuel = 1_500;
    tokens;
    tokenize;
    original_loc = 191;
  }
