lib/afl/bitmap.ml: Array Bytes Char List
