test/test_tables.ml: Alcotest Buffer List Pdf_core Pdf_instr Pdf_subjects Pdf_tables Pdf_util Printf QCheck QCheck_alcotest
