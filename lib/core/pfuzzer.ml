module Rng = Pdf_util.Rng
module Pqueue = Pdf_util.Pqueue
module Coverage = Pdf_instr.Coverage
module Runner = Pdf_instr.Runner
module Comparison = Pdf_instr.Comparison
module Subject = Pdf_subjects.Subject
module Obs = Pdf_obs.Observer
module Event = Pdf_obs.Event
module Phase = Pdf_obs.Phase

type config = {
  seed : int;
  max_executions : int;
  max_input_len : int;
  heuristic : Heuristic.variant;
  queue_bound : int;
  dedupe : bool;
  incremental : bool;
}

let default_config =
  {
    seed = 1;
    max_executions = 2000;
    max_input_len = 64;
    heuristic = Heuristic.Prose;
    queue_bound = 50_000;
    dedupe = true;
    incremental = true;
  }

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  chars_saved : int;
}

let no_cache_stats = { hits = 0; misses = 0; evictions = 0; chars_saved = 0 }

type result = {
  valid_inputs : string list;
  valid_coverage : Coverage.t;
  executions : int;
  candidates_created : int;
  queue_peak : int;
  first_valid_at : int option;
  dedupe_resets : int;
  path_resets : int;
  cache : cache_stats;
  wall_clock_s : float;
  execs_per_sec : float;
}

type queue_event =
  | Pushed of float * string
  | Popped of float * string
  | Reranked of (float * string) list
  | Truncated of (float * string) list

type state = {
  config : config;
  subject : Subject.t;
  (* The incremental engine: present only when the config enables it and
     the subject ships a machine-form parser. [cache] maps an input
     prefix to the snapshot suspended at its end. *)
  machine : Pdf_instr.Machine.recognizer option;
  cache : Runner.Cache.t option;
  rng : Rng.t;
  queue : Candidate.t Pqueue.t;
  on_queue_event : (queue_event -> unit) option;
  (* Telemetry. [obs = None] is the fast path: no events, no clock
     reads, no allocation — the observability layer costs nothing when
     off. Every emission site matches on [obs] *before* constructing
     its event. *)
  obs : Obs.t option;
  mutable evictions_seen : int;
  mutable vbr : Coverage.t;  (* branches covered by valid inputs *)
  mutable valid_rev : string list;
  mutable valid_count : int;
  mutable last_progress_at : int;  (* execution count when vbr last grew *)
  mutable executions : int;
  mutable candidates_created : int;
  mutable queue_peak : int;
  mutable first_valid_at : int option;
  mutable dedupe_resets : int;
  mutable path_resets : int;
  path_counts : (int, int) Hashtbl.t;
  seen_inputs : (string, unit) Hashtbl.t;
  on_valid : string -> unit;
  on_execution : (Runner.run -> unit) option;
}

(* The dedupe table would otherwise grow without bound over a long run:
   every distinct candidate string ever queued stays referenced. Cap it
   at a small multiple of the queue bound and reset generationally —
   after a reset some early duplicates may be re-executed once, which is
   cheap compared to retaining millions of dead strings. *)
let seen_inputs_cap config = 4 * config.queue_bound

(* Same bound and policy for the path-novelty table: its keys are path
   hashes of runs, which also accumulate forever. After a reset the
   counts rebuild from the paths still being exercised; a transient
   novelty boost for re-seen paths is cheap compared to unbounded
   growth. *)
let path_counts_cap = seen_inputs_cap

let emit st event =
  match st.on_queue_event with None -> () | Some f -> f (event ())

(* Queue snapshot for the observer, in insertion order. Only built when
   an observer is installed (see [emit]'s laziness). *)
let observed_snapshot st =
  List.map (fun (prio, (c : Candidate.t)) -> (prio, c.data)) (Pqueue.snapshot st.queue)

(* Telemetry helpers. [tsink] answers "is a trace sink attached" without
   allocating, so hot-path call sites construct events only behind it;
   [span_begin]/[span_end] bracket a phase and are near-free when [obs]
   is [None] (one branch, no clock read). *)
let[@inline] tsink st =
  match st.obs with Some o when Obs.tracing o -> Some o | _ -> None

let[@inline] span_begin st =
  match st.obs with None -> 0 | Some o -> Obs.span_start o

let[@inline] span_end st phase t0 =
  match st.obs with None -> () | Some o -> Obs.span_end o phase t0

let[@inline] span_next st phase t0 =
  match st.obs with None -> 0 | Some o -> Obs.span_next o phase t0

let cache_counters st =
  match st.cache with
  | None -> (0, 0)
  | Some cache ->
    let s = Runner.Cache.stats cache in
    (s.Runner.Cache.hits, s.Runner.Cache.misses)

let maybe_snapshot st =
  match st.obs with
  | None -> ()
  | Some o ->
    if Obs.snapshot_due o then begin
      let hits, misses = cache_counters st in
      Obs.snapshot o ~exec:st.executions ~depth:(Pqueue.length st.queue)
        ~valid:st.valid_count
        ~cov:(Coverage.cardinal st.vbr)
        ~hits ~misses
        ~plateau:(st.executions - st.last_progress_at)
    end

exception Budget_exhausted

(* After an incremental run, remember the suspensions future executions
   will want: the one at the substitution index (children are
   [prefix ^ repl] sharing exactly that prefix) and the one at the end of
   the input (the extension probe [input ^ c] resumes there). Both are
   O(log boundaries) lookups sharing the run's arrays — no copying. *)
let remember_snapshots cache journal (run : Runner.run) =
  let store pos =
    if pos > 0 && pos <= String.length run.input then
      match Runner.snapshot_at journal pos with
      | Some snap -> Runner.Cache.store cache (String.sub run.input 0 pos) snap
      | None -> ()
  in
  (match Runner.substitution_index run with Some i -> store i | None -> ());
  store (String.length run.input)

(* One execution of the subject. [prefix_len] is the caller's hint that
   the first [prefix_len] characters of [input] were inherited verbatim
   from an already-executed parent; when the incremental engine is on and
   that prefix's suspension is cached, only the suffix is executed. The
   observable run is bit-identical either way. Returns the run and
   whether it resumed from a cached snapshot. *)
let execute st ~prefix_len input =
  if st.executions >= st.config.max_executions then raise Budget_exhausted;
  st.executions <- st.executions + 1;
  (match tsink st with
   | None -> ()
   | Some o ->
     Obs.emit o ~exec:st.executions
       (Event.Exec_start { len = String.length input; prefix = prefix_len }));
  let run, cached =
    match st.cache, st.machine with
    | Some cache, Some machine ->
      let t_cache = span_begin st in
      let consulted = prefix_len > 0 && prefix_len <= String.length input in
      let snap =
        if consulted then Runner.Cache.find cache (String.sub input 0 prefix_len)
        else None
      in
      span_end st Phase.Cache t_cache;
      (if consulted then
         match tsink st with
         | None -> ()
         | Some o ->
           Obs.emit o ~exec:st.executions
             (match snap with
              | Some s -> Event.Cache_hit { saved = Runner.snapshot_pos s }
              | None -> Event.Cache_miss));
      let t_exec = span_begin st in
      let run, journal =
        match snap with
        | Some snap -> Runner.resume snap input
        | None -> Subject.exec_journaled st.subject machine input
      in
      span_end st Phase.Exec t_exec;
      let t_store = span_begin st in
      remember_snapshots cache journal run;
      span_end st Phase.Cache t_store;
      (match tsink st with
       | None -> ()
       | Some o ->
         let ev = (Runner.Cache.stats cache).Runner.Cache.evictions in
         if ev > st.evictions_seen then begin
           st.evictions_seen <- ev;
           Obs.emit o ~exec:st.executions (Event.Cache_evict { evictions = ev })
         end);
      (run, snap <> None)
    | _ ->
      let t_exec = span_begin st in
      let run = Subject.run st.subject input in
      span_end st Phase.Exec t_exec;
      (run, false)
  in
  (match st.on_execution with None -> () | Some f -> f run);
  (run, cached)

(* Observe a completed run's path and return how often it had been seen
   before (the novelty signal of §3.2). *)
let note_path st run =
  let h = Runner.path_hash run in
  match Hashtbl.find_opt st.path_counts h with
  | Some count ->
    Hashtbl.replace st.path_counts h (count + 1);
    count
  | None ->
    if Hashtbl.length st.path_counts >= path_counts_cap st.config then begin
      Hashtbl.reset st.path_counts;
      st.path_resets <- st.path_resets + 1;
      match tsink st with
      | None -> ()
      | Some o -> Obs.emit o ~exec:st.executions (Event.Reset { table = "path" })
    end;
    Hashtbl.replace st.path_counts h 1;
    0

let push_candidate st (candidate : Candidate.t) =
  let fresh =
    (not st.config.dedupe) || not (Hashtbl.mem st.seen_inputs candidate.data)
  in
  if fresh && String.length candidate.data <= st.config.max_input_len then begin
    if st.config.dedupe then begin
      if Hashtbl.length st.seen_inputs >= seen_inputs_cap st.config then begin
        Hashtbl.reset st.seen_inputs;
        st.dedupe_resets <- st.dedupe_resets + 1;
        match tsink st with
        | None -> ()
        | Some o -> Obs.emit o ~exec:st.executions (Event.Reset { table = "dedupe" })
      end;
      Hashtbl.replace st.seen_inputs candidate.data ()
    end;
    st.candidates_created <- st.candidates_created + 1;
    let t_score = span_begin st in
    let prio = Heuristic.score st.config.heuristic ~vbr:st.vbr candidate in
    let t_queue = span_next st Phase.Score t_score in
    Pqueue.push st.queue prio candidate;
    span_end st Phase.Queue t_queue;
    emit st (fun () -> Pushed (prio, candidate.data));
    (match tsink st with
     | None -> ()
     | Some o ->
       Obs.emit o ~exec:st.executions
         (Event.Queue_push
            { prio; len = String.length candidate.data; depth = Pqueue.length st.queue }));
    (* Truncate with hysteresis: a full drop sorts the heap, so only do
       it after the queue has doubled past its bound. *)
    if Pqueue.length st.queue > 2 * st.config.queue_bound then begin
      let before = Pqueue.length st.queue in
      let t_trunc = span_begin st in
      Pqueue.drop_worst st.queue st.config.queue_bound;
      span_end st Phase.Queue t_trunc;
      emit st (fun () -> Truncated (observed_snapshot st));
      match tsink st with
      | None -> ()
      | Some o ->
        let depth = Pqueue.length st.queue in
        Obs.emit o ~exec:st.executions
          (Event.Queue_trunc { dropped = before - depth; depth })
    end;
    st.queue_peak <- max st.queue_peak (Pqueue.length st.queue)
  end

(* Algorithm 1, [addInputs]: one child per comparison made against the
   last compared input position, splicing in the expected character(s). *)
let add_inputs st ~(parent : Candidate.t) (run : Runner.run) =
  match Runner.substitution_index run with
  | None -> ()
  | Some index ->
    let parent_coverage = Runner.coverage_up_to_last_index run in
    let avg_stack = Runner.avg_stack_of_last_two run in
    let path_count = note_path st run in
    let prefix = String.sub run.input 0 (min index (String.length run.input)) in
    let comps = Runner.comparisons_at_last_index run in
    List.iter
      (fun (comp : Comparison.t) ->
        List.iter
          (fun repl ->
            let data = prefix ^ repl in
            if data <> run.input then
              push_candidate st
                {
                  Candidate.data;
                  repl;
                  parents = parent.parents + 1;
                  parent_coverage;
                  avg_stack;
                  path_count;
                })
          (Comparison.replacements st.rng comp))
      comps

(* Algorithm 1, [validInp]: report, extend vBr, re-rank the queue. *)
let valid_input st ~(parent : Candidate.t) (run : Runner.run) =
  st.valid_rev <- run.input :: st.valid_rev;
  st.valid_count <- st.valid_count + 1;
  if st.first_valid_at = None then st.first_valid_at <- Some st.executions;
  st.on_valid run.input;
  st.vbr <- Coverage.union st.vbr run.coverage;
  st.last_progress_at <- st.executions;
  (match tsink st with
   | None -> ()
   | Some o ->
     Obs.emit o ~exec:st.executions
       (Event.Valid
          { input = run.input; cov = Coverage.cardinal st.vbr; count = st.valid_count }));
  (* The rerank is dominated by re-scoring every pending candidate, so
     it lands in the Score phase. *)
  let t_rerank = span_begin st in
  Pqueue.rerank st.queue (fun candidate ->
      Heuristic.score st.config.heuristic ~vbr:st.vbr candidate);
  span_end st Phase.Score t_rerank;
  emit st (fun () -> Reranked (observed_snapshot st));
  (match tsink st with
   | None -> ()
   | Some o ->
     Obs.emit o ~exec:st.executions
       (Event.Queue_rerank { depth = Pqueue.length st.queue }));
  add_inputs st ~parent run

let verdict_string (run : Runner.run) =
  match run.verdict with
  | Runner.Accepted -> "accepted"
  | Runner.Rejected _ -> "rejected"
  | Runner.Hang -> "hang"

(* Algorithm 1, [runCheck]: an input counts as valid only if it is
   accepted and covers branches no previous valid input covered. *)
let run_check st ~parent ~prefix_len input =
  let t0 = match st.obs with None -> 0 | Some o -> Obs.now_ns o in
  let run, cached = execute st ~prefix_len input in
  let cov_before =
    match tsink st with None -> 0 | Some _ -> Coverage.cardinal st.vbr
  in
  let valid =
    Runner.accepted run && Coverage.new_against run.coverage ~baseline:st.vbr > 0
  in
  if valid then valid_input st ~parent run;
  (match tsink st with
   | None -> ()
   | Some o ->
     let cov_now = Coverage.cardinal st.vbr in
     Obs.emit o ~exec:st.executions
       (Event.Exec_done
          {
            dur_ns = Obs.now_ns o - t0;
            verdict = verdict_string run;
            cached;
            sub_index =
              (match Runner.substitution_index run with Some i -> i | None -> -1);
            cov = cov_now;
            cov_delta = cov_now - cov_before;
            valid;
            len = String.length run.input;
          }));
  maybe_snapshot st;
  (valid, run)

(* Restarts and extension probes happen on every iteration of the main
   loop; keep them allocation-free by passing raw characters around and
   interning the 1-character seed strings. *)
let singleton_strings = Array.init 256 (fun i -> String.make 1 (Char.chr i))
let random_char st = Rng.printable st.rng
let seed_of_char c = Candidate.seed singleton_strings.(Char.code c)

(* [data ^ String.make 1 c] in one allocation. *)
let extend data c =
  let n = String.length data in
  let b = Bytes.create (n + 1) in
  Bytes.blit_string data 0 b 0 n;
  Bytes.unsafe_set b n c;
  Bytes.unsafe_to_string b

let fuzz ?(on_valid = fun _ -> ()) ?on_queue_event ?on_execution ?obs
    ?(initial_inputs = []) config subject =
  let t_start = Pdf_obs.Clock.now_ns () in
  let machine = if config.incremental then subject.Subject.machine else None in
  let st =
    {
      config;
      subject;
      machine;
      cache =
        (match machine with
         | Some _ -> Some (Runner.Cache.create ())
         | None -> None);
      rng = Rng.make config.seed;
      queue = Pqueue.create ();
      on_queue_event;
      obs;
      evictions_seen = 0;
      vbr = Coverage.empty;
      valid_rev = [];
      valid_count = 0;
      last_progress_at = 0;
      executions = 0;
      candidates_created = 0;
      queue_peak = 0;
      first_valid_at = None;
      dedupe_resets = 0;
      path_resets = 0;
      path_counts = Hashtbl.create 1024;
      seen_inputs = Hashtbl.create 4096;
      on_valid;
      on_execution;
    }
  in
  (match obs with
   | None -> ()
   | Some o ->
     Obs.run_meta o ~subject:subject.Subject.name
       ~outcomes:(Pdf_instr.Site.total_outcomes subject.Subject.registry)
       ~seed:config.seed ~max_executions:config.max_executions
       ~incremental:(machine <> None));
  let next_candidate () =
    let t_pop = span_begin st in
    let popped = Pqueue.pop_with_priority st.queue in
    span_end st Phase.Queue t_pop;
    match popped with
    | Some (prio, c) ->
      emit st (fun () -> Popped (prio, c.Candidate.data));
      (match tsink st with
       | None -> ()
       | Some o ->
         Obs.emit o ~exec:st.executions
           (Event.Queue_pop
              {
                prio;
                len = String.length c.Candidate.data;
                depth = Pqueue.length st.queue;
              }));
      c
    | None ->
      (* Queue exhausted: restart from a fresh random character, as at
         the beginning of the search. *)
      seed_of_char (random_char st)
  in
  List.iter (fun input -> push_candidate st (Candidate.seed input)) initial_inputs;
  (try
     let candidate = ref (seed_of_char (random_char st)) in
     while true do
       let c = !candidate in
       (* A queued candidate is [prefix ^ repl] for an already-executed
          parent input sharing [prefix] — exactly the part a cached
          suspension lets us skip. *)
       let prefix_len = String.length c.data - String.length c.repl in
       let valid, _run = run_check st ~parent:c ~prefix_len c.data in
       if not valid then begin
         (* Second execution: the same input extended by one random
            character, probing whether the parser wants more input. The
            just-executed candidate is the extension's parent prefix. *)
         let extended = extend c.data (random_char st) in
         if String.length extended <= config.max_input_len then begin
           let valid2, run2 =
             run_check st ~parent:c ~prefix_len:(String.length c.data) extended
           in
           if not valid2 then add_inputs st ~parent:c run2
         end
       end;
       candidate := next_candidate ()
     done
   with Budget_exhausted -> ());
  (match obs with
   | None -> ()
   | Some o ->
     Obs.finish o ~exec:st.executions ~valid:st.valid_count
       ~cov:(Coverage.cardinal st.vbr));
  let wall_ns = Pdf_obs.Clock.now_ns () - t_start in
  let wall_clock_s = float_of_int wall_ns /. 1e9 in
  {
    valid_inputs = List.rev st.valid_rev;
    valid_coverage = st.vbr;
    executions = st.executions;
    candidates_created = st.candidates_created;
    queue_peak = st.queue_peak;
    first_valid_at = st.first_valid_at;
    dedupe_resets = st.dedupe_resets;
    path_resets = st.path_resets;
    cache =
      (match st.cache with
       | None -> no_cache_stats
       | Some cache ->
         let s = Runner.Cache.stats cache in
         {
           hits = s.Runner.Cache.hits;
           misses = s.misses;
           evictions = s.evictions;
           chars_saved = s.chars_saved;
         });
    wall_clock_s;
    execs_per_sec =
      (if wall_ns <= 0 then 0.0
       else float_of_int st.executions /. wall_clock_s);
  }
