module Subject = Pdf_subjects.Subject
module Token = Pdf_subjects.Token

let found_tags (subject : Subject.t) valid_inputs =
  let inventory = List.map (fun (t : Token.t) -> t.tag) subject.tokens in
  let occurring =
    List.sort_uniq compare (List.concat_map subject.tokenize valid_inputs)
  in
  List.filter (fun tag -> List.mem tag inventory) occurring

let by_length (subject : Subject.t) tags =
  Token.lengths subject.tokens
  |> List.map (fun len ->
         let of_len = Token.of_length len subject.tokens in
         let found =
           List.length (List.filter (fun (t : Token.t) -> List.mem t.tag tags) of_len)
         in
         (len, found, List.length of_len))

let share ~min_len ~max_len per_subject =
  let total = ref 0 and found = ref 0 in
  List.iter
    (fun ((subject : Subject.t), tags) ->
      List.iter
        (fun (t : Token.t) ->
          if t.length >= min_len && t.length <= max_len then begin
            incr total;
            if List.mem t.tag tags then incr found
          end)
        subject.tokens)
    per_subject;
  Pdf_util.Stats.ratio !found !total
