module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site
module Subject = Pdf_subjects.Subject

type coverage_mode = Code | Table_elements

type diagnostics = Silent | Expected_sets

(* Parse-stack elements: grammar symbols plus an end-of-frame marker so
   nonterminal expansions show up as stack frames for the heuristic. *)
type stack_element = Sym of Cfg.symbol | Pop_frame

let subject ~name ~description ?(coverage = Table_elements)
    ?(diagnostics = Expected_sets) ?(tokens = []) ?(tokenize = fun _ -> [])
    table =
  let registry = Site.create_registry name in
  let s_driver = Site.block registry "driver" in
  let b_match_terminal = Site.branch registry "driver.match-terminal" in
  let b_lookup_hit = Site.branch registry "driver.lookup-hit?" in
  let b_eof_lookup = Site.branch registry "driver.eof-lookup?" in
  let b_trailing = Site.branch registry "driver.trailing?" in
  let b_expected = Site.branch registry "driver.expected-set" in
  let grammar = Ll1.grammar table in
  (* Per-nonterminal frame sites (for the stack-depth signal) and, in
     table-element mode, one site per populated cell. *)
  let frame_sites =
    List.map
      (fun nt -> (nt, Site.block registry (Printf.sprintf "expand.%s" nt)))
      (Cfg.nonterminals grammar)
  in
  let cell_sites =
    match coverage with
    | Code -> []
    | Table_elements ->
      List.map
        (fun (nt, lookahead, production) ->
          let label =
            match lookahead with
            | Some c -> Printf.sprintf "cell.%s.%C" nt c
            | None -> Printf.sprintf "cell.%s.EOF" nt
          in
          ((nt, lookahead), Site.block registry (Printf.sprintf "%s->%d" label production)))
        (Ll1.entries table)
  in
  let cover_cell ctx nt lookahead =
    match List.assoc_opt (nt, lookahead) cell_sites with
    | Some site -> Ctx.cover ctx site
    | None -> ()
  in
  let parse ctx =
    Ctx.cover ctx s_driver;
    let expand ctx nt production =
      (match List.assoc_opt nt frame_sites with
       | Some site -> Ctx.enter_frame ctx site
       | None -> ());
      List.rev_append
        (List.rev_map (fun sym -> Sym sym) production.Cfg.rhs)
        [ Pop_frame ]
    in
    let reject_with_diagnostics ctx nt reason =
      (match (diagnostics, Ctx.peek ctx) with
       | Expected_sets, Some c ->
         (* Building the "expected one of …" message compares the
            lookahead against the row's key set — the comparison that
            makes table misses visible to the fuzzer. *)
         ignore
           (Ctx.in_set ctx b_expected ~label:(Printf.sprintf "expected(%s)" nt) c
              (Ll1.expected table nt))
       | Expected_sets, None | Silent, _ -> ());
      Ctx.reject ctx reason
    in
    let rec loop stack =
      Ctx.tick ctx;
      match stack with
      | [] ->
        (match Ctx.peek ctx with
         | Some _ ->
           ignore (Ctx.branch ctx b_trailing true);
           Ctx.reject ctx "trailing input"
         | None -> ignore (Ctx.branch ctx b_trailing false))
      | Pop_frame :: rest ->
        Ctx.exit_frame ctx;
        loop rest
      | Sym (Cfg.T expected) :: rest ->
        (match Ctx.next ctx with
         | None -> Ctx.reject ctx "unexpected end of input"
         | Some c ->
           if Ctx.eq ctx b_match_terminal c expected then loop rest
           else Ctx.reject ctx (Printf.sprintf "expected %C" expected))
      | Sym (Cfg.N nt) :: rest ->
        (match Ctx.peek ctx with
         | None ->
           (match Ll1.lookup_eof table nt with
            | Some production ->
              ignore (Ctx.branch ctx b_eof_lookup true);
              cover_cell ctx nt None;
              loop (expand ctx nt production @ rest)
            | None ->
              ignore (Ctx.branch ctx b_eof_lookup false);
              Ctx.reject ctx "unexpected end of input")
         | Some c ->
           (* Direct table indexing: no comparison happens here, exactly
              as in a real table-driven parser. *)
           (match Ll1.lookup table nt c.Pdf_taint.Tchar.ch with
            | Some production ->
              ignore (Ctx.branch ctx b_lookup_hit true);
              cover_cell ctx nt (Some c.Pdf_taint.Tchar.ch);
              loop (expand ctx nt production @ rest)
            | None ->
              ignore (Ctx.branch ctx b_lookup_hit false);
              reject_with_diagnostics ctx nt "no table entry"))
    in
    loop [ Sym (Cfg.N (Cfg.start grammar)) ]
  in
  {
    Subject.name;
    description;
    registry;
    parse;
    machine = None;
    compiled = None;
    compiled_preferred = false;
    fuel = 50_000;
    tokens;
    tokenize;
    original_loc = 0;
  }
