(** Running a subject parser on one input and packaging the observations.

    This is the harness boundary every fuzzer goes through: one call to
    {!exec} corresponds to one execution of the instrumented program in
    the paper (exit status, comparison log, coverage, trace, EOF flag). *)

type crash = {
  exn : string;
      (** the exception's constructor name ([Printexc.exn_slot_name]),
          e.g. ["Stdlib.Failure"] — the coarse triage key *)
  site : int;
      (** FNV-1a hash of the run's first-occurrence outcome sequence at
          the moment of the crash — a callsite identity that
          distinguishes the same exception raised from different places
          in the subject, and is stable between full and resumed
          executions of the same input *)
  detail : string;  (** [Printexc.to_string] of the exception *)
}
(** Identity of a subject crash. Two crashes with equal [(exn, site)]
    are duplicates for triage purposes. *)

type verdict =
  | Accepted  (** the parser consumed the input without error: exit 0 *)
  | Rejected of string  (** first parse error: non-zero exit *)
  | Hang  (** fuel exhausted, the analogue of the paper's infinite loop *)
  | Crash of crash
      (** the subject raised something other than {!Ctx.Reject} /
          {!Ctx.Out_of_fuel} — the analogue of a SIGSEGV in the paper's
          C subjects. Contained, never propagated. *)

type run = {
  input : string;
  verdict : verdict;
  comparisons : Comparison.t array;  (** in event order *)
  coverage : Coverage.t;
  trace : int array;
      (** outcome ids in recording order, with multiplicities; empty
          unless run with [~track_trace:true] *)
  touched : int array;
      (** distinct outcome ids in first-occurrence order — the run's
          path identity *)
  eof_access : bool;
  max_depth : int;
  frames : Frame.event array;
      (** empty unless run with [~track_frames:true] *)
}

val exec :
  registry:Site.registry ->
  parse:(Ctx.t -> unit) ->
  ?fuel:int ->
  ?track_comparisons:bool ->
  ?track_trace:bool ->
  ?track_frames:bool ->
  string ->
  run
(** Run the parser on the given input. The exception contract:
    {!Ctx.Reject} maps to [Rejected], {!Ctx.Out_of_fuel} to [Hang], and
    {e every other exception} the subject raises — [Failure],
    [Invalid_argument], [Stack_overflow], anything — is contained as
    [Crash] with the observations accumulated up to the raise. A
    misbehaving subject can therefore never abort a campaign; crashes
    are ordinary verdicts that the fuzzer triages and keeps fuzzing
    past. The same containment holds inside a distributed worker
    process: a subject exception becomes a [Crash] in that shard's
    result, exactly as it would in-process. What this contract does
    {e not} cover is the worker process itself dying (a signal, an
    [exit], OOM) — that is handled one level up by the coordinator,
    which replays the whole shard; determinism makes the replay
    indistinguishable from a run that never died. [track_trace]
    (default false) fills the [trace] field; see {!Ctx.make}. *)

val accepted : run -> bool

val crash_id : crash -> string
(** ["<exn>@<site-hex>"] — the dedup key as a printable label. *)

(** {1 Incremental execution}

    A machine-form subject ({!Machine.recognizer}) can be executed with a
    journal of its read boundaries. Each boundary can be materialised into
    a {!snapshot} — the parser's pending step plus the observation state
    accumulated over the prefix — and a snapshot can be {!resume}d
    against any input that extends the same prefix, producing a run
    bit-identical to full re-execution while only executing the suffix.

    Snapshots are cheap: materialisation shares the run's packaged
    arrays (no copy), and {!resume} borrows them copy-on-write; the only
    O(prefix) work on resume is rebuilding the dense coverage presence
    map from the touched prefix, bounded by the registry size. *)

type journal
(** Read-boundary journal of one journaled execution. *)

type snapshot
(** A suspended parse: everything needed to continue a run from the
    first observation of input position {!snapshot_pos} under a new
    suffix. Immutable and multi-shot — one snapshot can serve any number
    of children sharing the prefix. *)

val exec_machine :
  registry:Site.registry ->
  machine:Machine.recognizer ->
  ?fuel:int ->
  ?track_comparisons:bool ->
  ?track_trace:bool ->
  ?track_frames:bool ->
  string ->
  run * journal
(** Run a machine-form subject, journaling every read boundary. The
    [run] is identical to what {!exec} over [Machine.run] would
    produce — including the crash-containment contract: a raising
    continuation yields a [Crash] run (journaled up to the last
    boundary before the raise), never an escaped exception; defaults
    match {!Ctx.make}. *)

val snapshot_at : journal -> int -> snapshot option
(** [snapshot_at journal p] is the suspension at the first read of input
    position [p] — the state after the parser observed exactly positions
    [0..p-1] — or [None] if the run never read position [p] (it rejected
    or accepted earlier, or [p] lies below a resumed run's own start).
    O(log boundaries), no copying. *)

val snapshot_pos : snapshot -> int
(** Length of the input prefix the snapshot depends on. *)

val resume : snapshot -> string -> run * journal
(** [resume snap input] continues the suspended parse on [input], which
    must extend the snapshot's prefix: [String.length input >=
    snapshot_pos snap] (checked) and the first [snapshot_pos snap]
    characters equal to the parent's (the caller's responsibility — the
    prefix cache guarantees it by keying on the prefix). The resulting
    run (verdict, comparisons, coverage, trace, touched, path identity)
    is bit-identical to a full execution of [input]. The returned
    journal covers the newly executed suffix, so children of the child
    can be snapshotted in turn. *)

(** {1 Execution arenas}

    The compiled tier's answer to per-exec setup cost: an arena owns one
    reusable context (created on first use, {!Ctx.rearm}ed between runs)
    so that steady-state execution does not re-allocate the recording
    buffers or the coverage presence map. Results are safe to retain —
    packaging copies every buffer out of the context — but an arena is
    single-threaded state: one arena per domain. *)

type arena

val arena :
  registry:Site.registry ->
  ?fuel:int ->
  ?track_comparisons:bool ->
  ?track_trace:bool ->
  ?track_frames:bool ->
  unit ->
  arena
(** An empty arena; defaults match {!Ctx.make}. The tracking flags and
    fuel apply to every execution made through it. *)

val exec_compiled : arena -> Machine.recognizer -> string -> run * journal
(** Like {!exec_machine} — same verdict contract, same snapshot
    semantics, bit-identical observations — but executing in the arena's
    recycled context and recording {e nothing} per input position beyond
    a high-water read mark. Execution of a machine-form subject is
    deterministic and its continuations are multi-shot, so
    {!snapshot_at} can rebuild the suspension at any read position on
    demand by replaying the run over the prefix (an O(position) cost
    paid only when a snapshot is actually materialised — gate with
    {!Cache.mem} to skip it for prefixes already cached, and the steady
    state pays nothing for resumability). Works on any recognizer; pairs
    with the staged recognizers from {!Compiled} for the full compiled
    tier. The journal owns everything it needs and never goes stale;
    replay borrows the arena's context transiently, so journals from one
    arena must be consulted from the same domain that executes on it. *)

val exec_staged : arena -> Machine.recognizer -> string -> run
(** Arena execution without journaling, for the non-incremental engine
    path: drives the recognizer directly and skips the boundary
    bookkeeping entirely. *)

(** {1 Bounded LRU prefix cache}

    Maps a prefix string to the snapshot suspended at its end. One cache
    per fuzzing run (snapshots are registry-specific); bounded, with
    least-recently-used eviction and accounting counters. *)

module Cache : sig
  type t

  type stats = {
    mutable hits : int;
    mutable misses : int;  (** lookups that found nothing *)
    mutable evictions : int;
    mutable chars_saved : int;
        (** total prefix characters whose re-execution a hit avoided *)
  }

  val create : ?bound:int -> unit -> t
  (** [bound] (default 4096, min 1) caps the number of cached prefixes. *)

  val find : t -> string -> snapshot option
  (** Lookup by exact prefix; updates recency and the hit/miss/saved
      counters. *)

  val find_prefix : t -> string -> len:int -> snapshot option
  (** [find_prefix t s ~len] is [find t (String.sub s 0 len)] without
      allocating the substring: the prefix is hashed in place and
      candidate entries verified by in-place comparison. This is the
      fuzzer's per-execution lookup — the input's inherited prefix never
      needs to exist as its own string. *)

  val mem : t -> string -> bool
  (** Presence check with no recency or counter side effects. Used to
      decide whether materialising a snapshot for a prefix is worth it —
      for compiled-tier journals that materialisation costs a replay of
      the prefix, so the fuzzer only pays it for prefixes not already
      cached. *)

  val mem_prefix : t -> string -> len:int -> bool
  (** Allocation-free [mem] on the first [len] characters of [s]. *)

  val store : t -> string -> snapshot -> unit
  (** Insert, evicting the least-recently-used entry at the bound. An
      existing entry for the same prefix is kept (first-in wins — the
      snapshots are equivalent by construction). *)

  val remove : t -> string -> unit
  (** Drop one entry (no-op when absent). Used by the fuzzer to
      invalidate a snapshot whose resume crashed, before falling back
      to cold execution. Does not count as an eviction. *)

  val remove_prefix : t -> string -> len:int -> unit
  (** Allocation-free [remove] keyed on the first [len] characters of
      [s] — the rescue path's invalidation, which would otherwise be the
      one remaining [String.sub] per crashing resume. *)

  exception Corrupted_snapshot

  val corrupt_all : t -> unit
  (** Chaos hook: poison every cached snapshot so that resuming it
      raises {!Corrupted_snapshot} (and is therefore contained as a
      [Crash] run). Models on-disk/in-memory snapshot corruption; the
      fuzzer must recover by invalidating and re-executing cold. *)

  val stats : t -> stats
  val length : t -> int
end

(** {1 Derived observations used by the search} *)

val last_compared_index : run -> int option
(** The rightmost input index involved in any comparison. *)

val substitution_index : run -> int option
(** The position of the first invalid character: the rightmost index with
    a {e failed} comparison, falling back to {!last_compared_index} when
    every comparison succeeded. Substitutions are applied here. *)

val comparisons_at : run -> index:int -> Comparison.t list
(** All comparison events touching input position [index], in trace
    order. With [index = substitution_index run] this is
    {!comparisons_at_last_index} without the extra index scan — for
    callers that already computed the index. *)

val comparisons_at_last_index : run -> Comparison.t list
(** All comparison events touching {!substitution_index}, the
    substitution candidates of Algorithm 1's [addInputs]. *)

val coverage_up_to : run -> index:int -> Coverage.t
(** {!coverage_up_to_last_index} with the substitution index supplied by
    the caller instead of recomputed. *)

val coverage_up_to_last_index : run -> Coverage.t
(** Coverage restricted to what was covered before the first comparison
    of the last compared character — §3.1's "covered branches up to the
    last accepted character", which keeps error-handling code from
    attracting the search. Computed from the first-occurrence prefix of
    [touched], so it does not require [~track_trace:true]. *)

val avg_stack_of_last_two : run -> float
(** Mean stack depth of the last two comparison events (§3.1's
    [avgStackSize]); 0 when there are no comparisons. *)

val path_hash : run -> int
(** Hash of the sequence of first occurrences of outcomes in the trace
    (the [touched] field) — the "path" identity used to rank inputs
    exploring novel paths higher. Allocation-free. *)

val pp_verdict : Format.formatter -> verdict -> unit
