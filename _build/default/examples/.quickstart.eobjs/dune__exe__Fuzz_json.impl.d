examples/fuzz_json.ml: Hashtbl List Pdf_core Pdf_subjects Printf
