examples/quickstart.mli:
