lib/subjects/json.ml: Char Helpers List Pdf_instr Pdf_taint Pdf_util String Subject Token
