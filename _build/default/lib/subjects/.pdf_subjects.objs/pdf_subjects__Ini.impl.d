lib/subjects/ini.ml: Helpers List Pdf_instr Pdf_taint Pdf_util String Subject Token
