(** Constraint solving over the per-position character domain.

    Complete for the fragment: every position's allowed set is explicit,
    so satisfiability is emptiness checking and model construction is
    per-position choice. Models stay close to the base input (positions
    already satisfying their constraint keep their character), and free
    choices prefer printable characters to keep generated inputs
    readable. *)

val solve :
  Pdf_util.Rng.t -> base:string -> min_length:int -> Path_constraint.t -> string option
(** [solve rng ~base ~min_length pc] returns a model of [pc] of length
    [max (String.length base) min_length] (also covering every
    constrained position), or [None] when unsatisfiable. *)

val pick : Pdf_util.Rng.t -> Pdf_util.Charset.t -> char option
(** Choose a character from a set, preferring printable members. *)
