module Histogram = Pdf_util.Stats.Histogram

type counter = int ref
type gauge = float ref

type entry =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t

type t = { entries : (string, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 32 }

let find_or_add t name make cast =
  match Hashtbl.find_opt t.entries name with
  | Some e ->
    (match cast e with
     | Some v -> v
     | None -> invalid_arg (Printf.sprintf "Metrics: %S registered with another type" name))
  | None ->
    let e, v = make () in
    Hashtbl.replace t.entries name e;
    v

let counter t name =
  find_or_add t name
    (fun () ->
      let c = ref 0 in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let add c by = c := !c + by
let incr c = add c 1
let value c = !c

let gauge t name =
  find_or_add t name
    (fun () ->
      let g = ref 0.0 in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let set g v = g := v
let gauge_value g = !g

let histogram t name =
  find_or_add t name
    (fun () ->
      let h = Histogram.create () in
      (Hist h, h))
    (function Hist h -> Some h | _ -> None)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Histogram.t) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot t =
  let cs = ref [] and gs = ref [] and hs = ref [] in
  Hashtbl.iter
    (fun name -> function
      | Counter c -> cs := (name, !c) :: !cs
      | Gauge g -> gs := (name, !g) :: !gs
      | Hist h -> hs := (name, h) :: !hs)
    t.entries;
  {
    counters = List.sort by_name !cs;
    gauges = List.sort by_name !gs;
    histograms = List.sort by_name !hs;
  }
