(** FNV-1a hashing over string ranges, without substring allocation.

    Used by the hot-loop tables that key on parts of strings (the prefix
    cache, the candidate dedupe table): hash the range in place, then
    verify matches with in-place comparison. Values are non-negative and
    deterministic across processes — safe as [Hashtbl] keys and safe to
    round-trip through checkpoints. *)

val byte : int -> char -> int
(** Fold one character into a running hash. *)

val range : string -> int -> int -> int
(** [range s pos len] hashes [s.[pos .. pos+len-1]]. *)

val prefix : string -> int -> int
(** [prefix s len] = [range s 0 len]. *)

val string : string -> int
(** Hash of the whole string; equals [prefix s (String.length s)]. *)

val continue : int -> string -> int
(** [continue h b] resumes hash [h] over all of [b]:
    [continue (prefix a n) b = string (String.sub a 0 n ^ b)]. *)
