(* GC sizing for campaign workloads. A fuzzing campaign's allocation
   profile is dominated by short-lived per-execution garbage (journal
   records, candidate strings, scoring floats); with OCaml's default
   256k-word minor heap most of it is promoted by sheer arrival rate and
   then collected by the major GC at several times the cost. Sizing the
   minor heap to the campaign's working set lets that garbage die young.

   The sizing never changes what the fuzzer computes — GC pacing is
   invisible to the search — so it is safe to apply from any entry
   point. *)

(* Derived from the queue bound, the knob that scales the resident
   candidate set (queue entries plus the 4x dedupe table riding on it):
   32 words of minor headroom per potential queue slot, clamped to
   [256k, 4M] words so tiny configs keep the runtime default and huge
   ones do not starve the major heap. *)
let default_minor_words ~queue_bound =
  let words = queue_bound * 32 in
  max 262_144 (min 4_194_304 words)

let set_minor_heap words =
  if words > 0 && Gc.((get ()).minor_heap_size) <> words then
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = words }

let minor_heap_words () = Gc.((get ()).minor_heap_size)
