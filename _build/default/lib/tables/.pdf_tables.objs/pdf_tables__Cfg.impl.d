lib/tables/cfg.ml: Format List Printf
