lib/core/candidate.mli: Format Pdf_instr
