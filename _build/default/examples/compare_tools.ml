(* A miniature of the paper's evaluation (Figures 2 and 3) on two
   subjects, small enough to finish in seconds.

   Run with: dune exec examples/compare_tools.exe *)

let () =
  let subjects =
    [ Pdf_subjects.Catalog.find "ini"; Pdf_subjects.Catalog.find "json" ]
  in
  let config =
    { Pdf_eval.Experiment.budget_units = 400_000; seeds = [ 1 ]; verbose = false }
  in
  let experiment = Pdf_eval.Experiment.run config subjects in
  Pdf_eval.Report.figure_2 Format.std_formatter experiment;
  Pdf_eval.Report.figure_3 Format.std_formatter experiment;
  Format.printf
    "@.The full evaluation over all five subjects is@.  dune exec bin/pfuzzer_cli.exe -- evaluate@.or the bench harness:  dune exec bench/main.exe@."
