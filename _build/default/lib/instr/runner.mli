(** Running a subject parser on one input and packaging the observations.

    This is the harness boundary every fuzzer goes through: one call to
    {!exec} corresponds to one execution of the instrumented program in
    the paper (exit status, comparison log, coverage, trace, EOF flag). *)

type verdict =
  | Accepted  (** the parser consumed the input without error: exit 0 *)
  | Rejected of string  (** first parse error: non-zero exit *)
  | Hang  (** fuel exhausted, the analogue of the paper's infinite loop *)

type run = {
  input : string;
  verdict : verdict;
  comparisons : Comparison.t array;  (** in event order *)
  coverage : Coverage.t;
  trace : int array;
      (** outcome ids in recording order, with multiplicities; empty
          unless run with [~track_trace:true] *)
  touched : int array;
      (** distinct outcome ids in first-occurrence order — the run's
          path identity *)
  eof_access : bool;
  max_depth : int;
  frames : Frame.event array;
      (** empty unless run with [~track_frames:true] *)
}

val exec :
  registry:Site.registry ->
  parse:(Ctx.t -> unit) ->
  ?fuel:int ->
  ?track_comparisons:bool ->
  ?track_trace:bool ->
  ?track_frames:bool ->
  string ->
  run
(** Run the parser on the given input. Only {!Ctx.Reject} and
    {!Ctx.Out_of_fuel} are caught; any other exception is a bug in the
    subject and propagates. [track_trace] (default false) fills the
    [trace] field; see {!Ctx.make}. *)

val accepted : run -> bool

(** {1 Derived observations used by the search} *)

val last_compared_index : run -> int option
(** The rightmost input index involved in any comparison. *)

val substitution_index : run -> int option
(** The position of the first invalid character: the rightmost index with
    a {e failed} comparison, falling back to {!last_compared_index} when
    every comparison succeeded. Substitutions are applied here. *)

val comparisons_at_last_index : run -> Comparison.t list
(** All comparison events touching {!substitution_index}, the
    substitution candidates of Algorithm 1's [addInputs]. *)

val coverage_up_to_last_index : run -> Coverage.t
(** Coverage restricted to what was covered before the first comparison
    of the last compared character — §3.1's "covered branches up to the
    last accepted character", which keeps error-handling code from
    attracting the search. Computed from the first-occurrence prefix of
    [touched], so it does not require [~track_trace:true]. *)

val avg_stack_of_last_two : run -> float
(** Mean stack depth of the last two comparison events (§3.1's
    [avgStackSize]); 0 when there are no comparisons. *)

val path_hash : run -> int
(** Hash of the sequence of first occurrences of outcomes in the trace
    (the [touched] field) — the "path" identity used to rank inputs
    exploring novel paths higher. Allocation-free. *)

val pp_verdict : Format.formatter -> verdict -> unit
