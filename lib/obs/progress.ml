(* AFL-style live status line. The observer decides *when* (its snapshot
   cadence); this module decides *what it looks like* and how to paint
   it: carriage-return overwrite on a tty, plain lines otherwise. *)

type t = {
  out : out_channel;
  interval_ns : int;
  tty : bool;
  mutable painted : bool;  (* a live line is currently on screen *)
}

let create ?(out = stderr) ?(interval_s = 1.0) () =
  {
    out;
    interval_ns = int_of_float (interval_s *. 1e9);
    tty = (try Unix.isatty (Unix.descr_of_out_channel out) with Unix.Unix_error _ -> false);
    painted = false;
  }

let interval_ns t = t.interval_ns

let render ~execs ~max_executions ~execs_per_sec ~engine ~depth ~valid ~cov
    ~outcomes ~hits ~misses ~rescues ~plateau ~hangs ~crashes =
  let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den in
  let cache =
    if hits + misses = 0 then "-" else Printf.sprintf "%.1f%%" (pct hits (hits + misses))
  in
  Printf.sprintf
    "[pfuzzer] %d/%d execs | %.0f/s | %s | queue %d | valid %d | cov %.1f%% | cache %s | rescue %d | plateau %d | hang %d | crash %d"
    execs max_executions execs_per_sec
    (if engine = "" then "?" else engine)
    depth valid (pct cov outcomes) cache rescues plateau hangs crashes

let print t line =
  if t.tty then begin
    output_string t.out "\r\027[K";
    output_string t.out line;
    t.painted <- true
  end
  else begin
    output_string t.out line;
    output_char t.out '\n'
  end;
  flush t.out

let finish t =
  if t.painted then begin
    output_char t.out '\n';
    flush t.out;
    t.painted <- false
  end
