lib/instr/frame.mli: Format Site
