(** Call-frame events: which parser function was active over which input
    span. This is the derivation structure AutoGram-style grammar mining
    (paper §7.4) consumes: a nonterminal per parser function, with the
    input characters consumed inside it as its yield. *)

type event =
  | Enter of { site : Site.t; pos : int }
  | Exit of { pos : int }

val pp : Format.formatter -> event -> unit
