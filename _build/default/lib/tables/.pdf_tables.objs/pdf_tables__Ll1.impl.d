lib/tables/ll1.ml: Analysis Cfg Format Hashtbl List Pdf_util Printf
