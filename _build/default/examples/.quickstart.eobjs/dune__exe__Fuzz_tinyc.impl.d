examples/fuzz_tinyc.ml: List Pdf_eval Pdf_instr Pdf_subjects Printf String
