lib/eval/token_report.ml: List Pdf_subjects Pdf_util
