lib/instr/coverage.mli: Site
