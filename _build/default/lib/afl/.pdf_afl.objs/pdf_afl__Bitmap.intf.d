lib/afl/bitmap.mli:
