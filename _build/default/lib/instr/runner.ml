type verdict = Accepted | Rejected of string | Hang

type run = {
  input : string;
  verdict : verdict;
  comparisons : Comparison.t array;
  coverage : Coverage.t;
  trace : int array;
  eof_access : bool;
  max_depth : int;
  frames : Frame.event array;
}

let exec ~registry ~parse ?fuel ?track_comparisons ?track_frames input =
  let ctx = Ctx.make ~registry ?fuel ?track_comparisons ?track_frames input in
  let verdict =
    match parse ctx with
    | () -> Accepted
    | exception Ctx.Reject reason -> Rejected reason
    | exception Ctx.Out_of_fuel -> Hang
  in
  {
    input;
    verdict;
    comparisons = Array.of_list (Ctx.comparisons ctx);
    coverage = Ctx.coverage ctx;
    trace = Ctx.trace ctx;
    eof_access = Ctx.eof_access ctx;
    max_depth = Ctx.max_depth ctx;
    frames = Ctx.frames ctx;
  }

let accepted run = run.verdict = Accepted

let max_index_where pred run =
  Array.fold_left
    (fun acc (c : Comparison.t) ->
      if pred c then
        match acc with None -> Some c.index | Some i -> Some (max i c.index)
      else acc)
    None run.comparisons

let last_compared_index run = max_index_where (fun _ -> true) run

(* The first invalid character: the rightmost position where the parser's
   expectation failed. Positions beyond it may have been touched by
   class-membership probes (e.g. "is this still a letter?") whose success
   carries no substitution information, so failed comparisons take
   precedence. *)
let substitution_index run =
  match max_index_where (fun (c : Comparison.t) -> not c.result) run with
  | Some _ as failed -> failed
  | None -> last_compared_index run

let comparisons_at_last_index run =
  match substitution_index run with
  | None -> []
  | Some idx ->
    Array.fold_left
      (fun acc (c : Comparison.t) -> if c.index = idx then c :: acc else acc)
      [] run.comparisons
    |> List.rev

let coverage_up_to_last_index run =
  match substitution_index run with
  | None -> run.coverage
  | Some idx ->
    (* Trace position of the first comparison touching the last index. *)
    let cut =
      Array.fold_left
        (fun acc (c : Comparison.t) ->
          if c.index = idx then min acc c.trace_pos else acc)
        (Array.length run.trace) run.comparisons
    in
    let cov = ref Coverage.empty in
    for i = 0 to min cut (Array.length run.trace) - 1 do
      cov := Coverage.add run.trace.(i) !cov
    done;
    !cov

let avg_stack_of_last_two run =
  let n = Array.length run.comparisons in
  if n = 0 then 0.0
  else if n = 1 then float_of_int run.comparisons.(0).stack_depth
  else
    float_of_int (run.comparisons.(n - 1).stack_depth + run.comparisons.(n - 2).stack_depth)
    /. 2.0

let path_hash run =
  (* First-occurrence order of outcomes: a compact path identity that is
     insensitive to loop iteration counts ("non-duplicate branches"). *)
  let seen = Hashtbl.create 64 in
  let firsts = ref [] in
  Array.iter
    (fun oid ->
      if not (Hashtbl.mem seen oid) then begin
        Hashtbl.add seen oid ();
        firsts := oid :: !firsts
      end)
    run.trace;
  Hashtbl.hash (List.rev !firsts)

let pp_verdict ppf = function
  | Accepted -> Format.fprintf ppf "accepted"
  | Rejected reason -> Format.fprintf ppf "rejected (%s)" reason
  | Hang -> Format.fprintf ppf "hang"
