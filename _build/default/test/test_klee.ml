module Path_constraint = Pdf_klee.Path_constraint
module Solver = Pdf_klee.Solver
module Klee = Pdf_klee.Klee
module Comparison = Pdf_instr.Comparison
module Charset = Pdf_util.Charset
module Rng = Pdf_util.Rng
module Catalog = Pdf_subjects.Catalog
module Subject = Pdf_subjects.Subject

let qtest = QCheck_alcotest.to_alcotest

(* {1 Path constraints} *)

let test_pc_basics () =
  let pc = Path_constraint.empty in
  Alcotest.(check bool) "empty satisfiable" true (Path_constraint.satisfiable pc);
  Alcotest.(check int) "unconstrained allows all" 256
    (Charset.cardinal (Path_constraint.allowed 0 pc));
  let pc = Path_constraint.constrain 0 Charset.digits pc in
  Alcotest.(check int) "constrained" 10 (Charset.cardinal (Path_constraint.allowed 0 pc));
  let pc = Path_constraint.constrain 0 (Charset.singleton '5') pc in
  Alcotest.(check int) "conjunction intersects" 1
    (Charset.cardinal (Path_constraint.allowed 0 pc));
  Alcotest.(check bool) "still satisfiable" true (Path_constraint.satisfiable pc);
  let pc = Path_constraint.constrain 0 (Charset.singleton 'x') pc in
  Alcotest.(check bool) "contradiction unsatisfiable" false
    (Path_constraint.satisfiable pc);
  Alcotest.(check (option int)) "max index" (Some 0) (Path_constraint.max_index pc);
  Alcotest.(check int) "cardinality" 1 (Path_constraint.cardinality pc)

let mk_cmp ~index ~result kind =
  { Comparison.trace_pos = 0; index; kind; result; stack_depth = 0 }

let test_pc_of_comparisons () =
  (* Events: input[0] was not '{' (observed), input[1] was a digit
     (observed). Negating event 1 demands a non-digit at index 1 while
     keeping index 0 away from '{'. *)
  let events =
    [|
      mk_cmp ~index:0 ~result:false (Comparison.Char_eq '{');
      mk_cmp ~index:1 ~result:true (Comparison.Char_range ('0', '9'));
    |]
  in
  let pc = Path_constraint.of_comparisons events 1 in
  Alcotest.(check bool) "index 0 excludes brace" false
    (Charset.mem '{' (Path_constraint.allowed 0 pc));
  Alcotest.(check bool) "index 1 excludes digits" false
    (Charset.mem '5' (Path_constraint.allowed 1 pc));
  Alcotest.(check bool) "index 1 allows letters" true
    (Charset.mem 'a' (Path_constraint.allowed 1 pc));
  (* Negating event 0 instead demands the brace. *)
  let pc0 = Path_constraint.of_comparisons events 0 in
  Alcotest.(check bool) "negation forces brace" true
    (Charset.equal (Path_constraint.allowed 0 pc0) (Charset.singleton '{'))

(* {1 Solver} *)

let test_solver_basic () =
  let rng = Rng.make 1 in
  let pc = Path_constraint.constrain 0 (Charset.singleton 'x') Path_constraint.empty in
  Alcotest.(check (option string)) "solves a forced char" (Some "x")
    (Solver.solve rng ~base:"a" ~min_length:0 pc);
  let unsat = Path_constraint.constrain 0 Charset.empty Path_constraint.empty in
  Alcotest.(check (option string)) "unsat gives None" None
    (Solver.solve rng ~base:"a" ~min_length:0 unsat)

let test_solver_keeps_base () =
  let rng = Rng.make 1 in
  let pc = Path_constraint.constrain 1 (Charset.singleton 'z') Path_constraint.empty in
  Alcotest.(check (option string)) "unconstrained positions keep the base"
    (Some "az") (Solver.solve rng ~base:"ab" ~min_length:0 pc)

let test_solver_extends () =
  let rng = Rng.make 1 in
  let pc = Path_constraint.constrain 3 (Charset.singleton 'k') Path_constraint.empty in
  match Solver.solve rng ~base:"ab" ~min_length:0 pc with
  | None -> Alcotest.fail "should be satisfiable"
  | Some s ->
    Alcotest.(check int) "extended to cover constraint" 4 (String.length s);
    Alcotest.(check char) "constraint honoured" 'k' s.[3];
    Alcotest.(check string) "base prefix kept" "ab" (String.sub s 0 2)

let prop_solver_sound =
  QCheck.Test.make ~name:"solved strings satisfy every constraint" ~count:300
    QCheck.(triple small_int (list_of_size (QCheck.Gen.int_range 0 5)
      (pair (int_range 0 7) (small_list (map Char.chr (int_range 32 126))))) small_string)
    (fun (seed, constraints, base) ->
      let rng = Rng.make seed in
      let pc =
        List.fold_left
          (fun pc (i, chars) ->
            Path_constraint.constrain i (Charset.of_list chars) pc)
          Path_constraint.empty constraints
      in
      match Solver.solve rng ~base ~min_length:0 pc with
      | None -> not (Path_constraint.satisfiable pc)
      | Some s ->
        Path_constraint.satisfiable pc
        && List.for_all
             (fun (i, _) -> Charset.mem s.[i] (Path_constraint.allowed i pc))
             constraints)

let test_pick_prefers_printable () =
  let rng = Rng.make 1 in
  let set = Charset.of_list [ '\001'; 'a' ] in
  for _ = 1 to 20 do
    Alcotest.(check (option char)) "printable member preferred" (Some 'a')
      (Solver.pick rng set)
  done;
  Alcotest.(check (option char)) "falls back to any member" (Some '\001')
    (Solver.pick rng (Charset.singleton '\001'));
  Alcotest.(check (option char)) "empty set" None (Solver.pick rng Charset.empty)

(* {1 The engine} *)

let fuzz ?(seed = 1) ?(execs = 5000) name =
  let subject = Catalog.find name in
  (Klee.fuzz { Klee.default_config with seed; max_executions = execs } subject, subject)

let test_klee_finds_valid () =
  let result, subject = fuzz "expr" in
  Alcotest.(check bool) "found valid inputs" true (List.length result.valid_inputs > 0);
  List.iter
    (fun input ->
      if not (Subject.accepts subject input) then
        Alcotest.failf "reported valid input %S is rejected" input)
    result.valid_inputs

let test_klee_deterministic () =
  let r1, _ = fuzz "csv" ~execs:2000 in
  let r2, _ = fuzz "csv" ~execs:2000 in
  Alcotest.(check (list string)) "same seed, same outputs" r1.valid_inputs r2.valid_inputs

let test_klee_budget () =
  let result, _ = fuzz "json" ~execs:300 in
  Alcotest.(check bool) "budget respected" true (result.executions <= 300)

let test_klee_state_explosion () =
  (* The paper's observation: on mjs the frontier explodes and KLEE
     reaches almost nothing. States must vastly outnumber executions. *)
  let result, _ = fuzz "mjs" ~execs:2000 in
  Alcotest.(check bool) "frontier explodes" true
    (result.states_created > 2 * result.executions)

let test_klee_solver_failures_counted () =
  let result, _ = fuzz "json" ~execs:2000 in
  Alcotest.(check bool) "some negations are unsatisfiable" true
    (result.solver_failures > 0)

let () =
  Alcotest.run "pdf_klee"
    [
      ( "path-constraint",
        [
          Alcotest.test_case "basics" `Quick test_pc_basics;
          Alcotest.test_case "of_comparisons" `Quick test_pc_of_comparisons;
        ] );
      ( "solver",
        [
          Alcotest.test_case "basic" `Quick test_solver_basic;
          Alcotest.test_case "keeps base" `Quick test_solver_keeps_base;
          Alcotest.test_case "extends" `Quick test_solver_extends;
          Alcotest.test_case "pick printable" `Quick test_pick_prefers_printable;
          qtest prop_solver_sound;
        ] );
      ( "engine",
        [
          Alcotest.test_case "finds valid inputs" `Quick test_klee_finds_valid;
          Alcotest.test_case "deterministic" `Quick test_klee_deterministic;
          Alcotest.test_case "budget respected" `Quick test_klee_budget;
          Alcotest.test_case "state explosion on mjs" `Quick test_klee_state_explosion;
          Alcotest.test_case "solver failures counted" `Quick test_klee_solver_failures_counted;
        ] );
    ]
