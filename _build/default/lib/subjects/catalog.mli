(** The subject catalogue. *)

val evaluation : Subject.t list
(** The paper's five evaluation subjects (Table 1), in the paper's
    order: ini, csv, json, tinyc, mjs. *)

val all : Subject.t list
(** Every subject: the demonstration subjects [expr] and [paren], the
    evaluation five, and the future-work variants [tinyc-tt] (§7.2) and
    [tinyc-sem] (§7.3). *)

val find : string -> Subject.t
(** Look up a subject by name.
    @raise Not_found if no subject has that name. *)
