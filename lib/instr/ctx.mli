(** Execution context of one instrumented run.

    A context bundles the input string, the instrumented input stream
    (with EOF-access detection), the coverage set and trace, the call
    stack depth, and the comparison log. Subject parsers are functions
    [Ctx.t -> unit] that read through {!peek}/{!next}, record coverage
    through {!cover}/{!branch}/{!with_frame}, compare input-derived data
    through the tracked comparison operations, and signal invalid input
    with {!reject}. *)

type t

exception Reject of string
(** Raised by {!reject}: the subject's equivalent of exiting non-zero on
    the first parse error. *)

exception Out_of_fuel
(** Raised by {!tick} when the run's fuel budget is exhausted: the
    subject's equivalent of a hang. *)

val make :
  registry:Site.registry ->
  ?fuel:int ->
  ?track_comparisons:bool ->
  ?track_trace:bool ->
  ?track_frames:bool ->
  ?pretaint:bool ->
  string ->
  t
(** [make ~registry input] prepares a run. [fuel] bounds the number of
    {!tick} calls (default 100_000). [track_comparisons] (default true)
    controls whether comparison events are logged; lexical fuzzers that
    only consume coverage can turn it off, mirroring the much lighter
    instrumentation AFL needs (§4, §6.2). [track_trace] (default false)
    records the full outcome sequence with multiplicities — needed only
    by consumers that care about hit counts, such as the AFL shim's edge
    bitmap; the search heuristics work from the deduplicated
    first-occurrence order, which is always maintained. [pretaint]
    (default false) taints every input character up front so that
    {!peek} is a plain array read — no allocation and no write barrier
    on the memo fields. The observed {!Pdf_taint.Tchar.t} values are
    identical either way; the flag only moves the work. Used by the
    compiled tier's execution arena, where the same context is recycled
    across many runs. *)

val rearm : t -> fuel:int -> string -> unit
(** [rearm t ~fuel input] resets [t] in place for a fresh run over
    [input], keeping the recording buffers it has already grown — the
    allocation-free restart that {!Runner}'s execution arena is built
    on. Only contexts created by {!make} may be rearmed; a {!restore}d
    context borrows buffers from its parent run and must not be
    recycled. Tracking flags are fixed at {!make} time. *)

(** {1 Snapshot marks}

    Support for suspending a run at a read boundary and resuming it —
    against a different input sharing the prefix — from an equivalent
    context. Used by {!Runner}'s incremental execution engine. *)

type mark = {
  m_comparisons : int;  (** comparison events recorded so far *)
  m_touched : int;  (** distinct outcomes covered so far *)
  m_trace : int;  (** trace entries recorded so far *)
  m_frames : int;  (** frame events recorded so far *)
  m_stack : int;
  m_max_stack : int;
  m_fuel : int;  (** fuel remaining *)
  m_eof_access : bool;
}
(** O(1) summary of the observation state at a suspension point:
    watermarks into the append-only recording buffers plus scalar run
    state. Combined with the buffer prefixes below the watermarks it
    fully determines the context at that instant. *)

val mark : t -> mark

val restore :
  registry:Site.registry ->
  mark:mark ->
  cursor:int ->
  comparisons:Comparison.t array ->
  touched:int array ->
  trace:int array ->
  frames:Frame.event array ->
  ?track_comparisons:bool ->
  ?track_trace:bool ->
  ?track_frames:bool ->
  string ->
  t
(** [restore ~registry ~mark ~cursor ~comparisons … text] is a context
    for input [text] whose observation state equals the state the parent
    run had when [mark] was taken: the recording buffers are borrowed
    (copy-on-write) prefixes of the given arrays, cut at the mark's
    watermarks, and the coverage presence map is rebuilt from the
    touched prefix. The arrays must come from a run over the same
    registry and must not be mutated afterwards. Cost: O(outcomes
    covered in the prefix); the buffers themselves are shared. *)

(** {1 Input access} *)

val peek : t -> Pdf_taint.Tchar.t option
(** The next character without consuming it, tainted with its input
    index. [None] at end of input — and the attempt is recorded as an
    EOF access, the signal the fuzzer uses to decide the input should be
    extended. *)

val next : t -> Pdf_taint.Tchar.t option
(** Consume and return the next character; [None] (and an EOF-access
    record) at end of input. *)

val pos : t -> int
val input : t -> string
val at_eof : t -> bool
(** True when all input has been consumed. Does not itself record an EOF
    access. *)

(** {1 Coverage and stack} *)

val cover : t -> Site.t -> unit
(** Record that a block site was reached. *)

val branch : t -> Site.t -> bool -> bool
(** [branch t site cond] records the branch outcome and returns [cond],
    so it wraps conditions in place: [if Ctx.branch t s (x > 0) then …]. *)

val with_frame : t -> Site.t -> (unit -> 'a) -> 'a
(** [with_frame t site f] records the block site, runs [f] with the
    call-stack depth increased by one, and restores the depth afterwards
    (also on exceptions). Parsers wrap each nonterminal function in a
    frame; the resulting depth is the stack-size signal of the
    heuristic. *)

val enter_frame : t -> Site.t -> unit
(** Non-scoped variant of {!with_frame} for parsers that manage an
    explicit stack (e.g. table-driven drivers). Every {!enter_frame} must
    be balanced by one {!exit_frame}. *)

val exit_frame : t -> unit

val depth : t -> int

val tick : t -> unit
(** Consume one unit of fuel; raises {!Out_of_fuel} when exhausted. Call
    from loop heads of interpreters. *)

(** {1 Tracked comparisons}

    Each operation records the branch outcome at the given site and, when
    the compared value is tainted, appends a comparison event to the log.
    All return the boolean result of the comparison. *)

val eq : t -> Site.t -> Pdf_taint.Tchar.t -> char -> bool
val one_of : t -> Site.t -> Pdf_taint.Tchar.t -> string -> bool
(** Membership of the characters of the given string. *)

val in_range : t -> Site.t -> Pdf_taint.Tchar.t -> char -> char -> bool
val in_set :
  t -> Site.t -> label:string -> Pdf_taint.Tchar.t -> Pdf_util.Charset.t -> bool

(** {2 Pre-resolved slots}

    Staged variants of the comparison operations for the compiled tier:
    a {!slot} freezes a site's two outcome ids and the comparison-event
    kind at staging time, so the per-character call performs no
    [Site.outcome] dispatch and allocates no kind block. Each [_slot]
    operation records exactly the same observations as its tracked
    counterpart above (the supplied kind must match what that
    counterpart would build). *)

type slot

val slot : Site.t -> Comparison.kind -> slot

val eq_slot : t -> slot -> Pdf_taint.Tchar.t -> char -> bool
val in_range_slot : t -> slot -> Pdf_taint.Tchar.t -> char -> char -> bool
val in_set_slot : t -> slot -> Pdf_taint.Tchar.t -> Pdf_util.Charset.t -> bool
val one_of_slot : t -> slot -> Pdf_taint.Tchar.t -> string -> bool

val str_eq : t -> Site.t -> Pdf_taint.Tstring.t -> string -> bool
(** Instrumented [strcmp]-style equality: emits one character-comparison
    event per compared position, and — on a mismatch after partial
    progress into the keyword — an additional suffix event whose
    multi-character replacement is what lets the fuzzer complete
    keywords. *)

val expect_token : t -> Site.t -> at:int -> spelling:string -> matched:bool -> bool
(** Token-level expectation with taint recovery (the §7.2 proposal):
    records the branch outcome and, on mismatch, emits a comparison event
    at input position [at] whose replacement is the expected token's
    [spelling]. This restores the substitution signal that tokenization's
    broken data flow otherwise loses. Returns [matched]. *)

(** {1 Termination} *)

val reject : t -> string -> 'a
(** Abort the run: the input is invalid. *)

(** {1 Results} (read by the run harness) *)

val comparisons : t -> Comparison.t list
(** In event order. *)

val comparisons_array : t -> Comparison.t array
(** In event order, without an intermediate list. *)

val coverage : t -> Coverage.t
val trace : t -> int array
(** Outcome ids in the order they were recorded; empty unless the
    context was created with [~track_trace:true]. *)

val touched : t -> int array
(** Distinct outcome ids in first-occurrence order — the run's path
    identity, maintained incrementally during execution. *)

val eof_access : t -> bool
val max_depth : t -> int

val frames : t -> Frame.event array
(** Frame enter/exit events with input positions, in order; empty unless
    the context was created with [~track_frames:true]. *)
