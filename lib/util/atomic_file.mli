(** Crash-safe file output: write to a temp file, rename into place.

    Every artifact the fuzzer persists (traces, checkpoints, crash corpora,
    bench dumps) goes through this module so that a process killed mid-write
    never leaves a truncated file at the destination path. The temp file
    lives next to the target ([<path>.tmp.<pid>]) so the final [rename] is
    atomic on POSIX filesystems; an aborted write leaves the destination
    untouched. *)

type staged
(** An in-progress write: an open channel on the temp file. *)

val stage : string -> staged
(** [stage path] opens [<path>.tmp.<pid>] for writing (binary mode,
    truncating any stale temp from a previous crashed run). *)

val channel : staged -> out_channel
(** The channel to write through. *)

val commit : staged -> unit
(** Close the channel and rename the temp file onto the destination.
    Idempotent; after [commit] the write is durable under kill. *)

val abort : staged -> unit
(** Close the channel and delete the temp file, leaving any previous
    destination file untouched. Idempotent, never raises. *)

val with_out : string -> (out_channel -> 'a) -> 'a
(** [with_out path f] stages, runs [f], and commits on success. If [f]
    raises, the temp file is removed and the exception re-raised — the
    destination is only ever replaced by a complete file. *)

val write_string : string -> string -> unit
(** [write_string path s] atomically replaces [path] with contents [s]. *)

val read_string : string -> string
(** [read_string path] reads the whole file (binary). Raises [Sys_error]
    on missing or unreadable files. *)
