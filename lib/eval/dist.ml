module Pfuzzer = Pdf_core.Pfuzzer
module Rng = Pdf_util.Rng
module Atomic_file = Pdf_util.Atomic_file
module Subject = Pdf_subjects.Subject
module Observer = Pdf_obs.Observer
module Event = Pdf_obs.Event
module Trace = Pdf_obs.Trace
module Metrics = Pdf_obs.Metrics
module Progress = Pdf_obs.Progress
module Exposition = Pdf_obs.Exposition

(* {1 Shard plan} *)

type shard = { shard_id : int; shard_seed : int; shard_budget : int }
type plan = { base : Pfuzzer.config; shards : shard list }

let plan ?(shards = 4) (config : Pfuzzer.config) =
  if shards < 1 then invalid_arg "Dist.plan: shards must be positive";
  let s = max 1 (min shards config.max_executions) in
  let rng = Rng.make config.seed in
  let base = config.max_executions / s in
  let extra = config.max_executions mod s in
  (* Explicit recursion: each seed is the next SplitMix64 draw, so the
     draws must happen in shard order. *)
  let rec build i acc =
    if i = s then List.rev acc
    else
      let seed = Int64.to_int (Rng.bits64 rng) land max_int in
      let budget = base + if i < extra then 1 else 0 in
      build (i + 1) ({ shard_id = i; shard_seed = seed; shard_budget = budget } :: acc)
  in
  { base = config; shards = build 0 [] }

let shard_config p sh =
  { p.base with Pfuzzer.seed = sh.shard_seed; max_executions = sh.shard_budget }

let shard_offsets p =
  let n = List.length p.shards in
  let offsets = Array.make n 0 in
  let acc = ref 0 in
  List.iter
    (fun sh ->
      offsets.(sh.shard_id) <- !acc;
      acc := !acc + sh.shard_budget)
    p.shards;
  offsets

(* Timing is scheduling-dependent; everything a frame carries must be a
   pure function of the shard, so final results are scrubbed before
   they are encoded. *)
let scrub (r : Pfuzzer.result) = { r with wall_clock_s = 0.0; execs_per_sec = 0.0 }

(* {1 Sync frames} *)

module Frame = struct
  type t = {
    shard : int;
    seq : int;
    final : bool;
    result : Pfuzzer.result;
    (* Per-shard metrics snapshot riding the existing sync frame — the
       fleet telemetry channel. [None] from pre-metrics senders (the
       in-process simulation, tests); the coordinator folds whatever
       arrives. *)
    metrics : Metrics.snapshot option;
  }

  let magic = "pfsync"

  (* v2: frames carry an optional metrics snapshot. Frames only ever
     cross a pipe between a coordinator and the workers it forked — both
     ends are the same binary — so the bump is pure hygiene against a
     stale reader. *)
  let version = 2

  (* Frames cross a pipe, not a filesystem: anything claiming to be
     larger than this is a corrupted length prefix, not a real frame. *)
  let max_body = 1 lsl 28

  let encode_body t =
    let payload = Marshal.to_string t [] in
    let b = Buffer.create (String.length payload + 32) in
    Buffer.add_string b magic;
    Buffer.add_char b (Char.chr version);
    Buffer.add_string b (Digest.string payload);
    Buffer.add_string b payload;
    Buffer.contents b

  let encode t =
    let body = encode_body t in
    let n = String.length body in
    let b = Bytes.create (4 + n) in
    Bytes.set_int32_be b 0 (Int32.of_int n);
    Bytes.blit_string body 0 b 4 n;
    Bytes.unsafe_to_string b

  (* Same precedence contract as [Pfuzzer.Checkpoint.decode]: length,
     magic, digest, version, unmarshal — digest before version, so
     corruption is never misreported as version skew. *)
  let decode_body s =
    let mlen = String.length magic in
    let hlen = mlen + 1 + 16 in
    if String.length s < hlen then Error "sync frame too short to be valid"
    else if String.sub s 0 mlen <> magic then
      Error "not a pfuzzer sync frame (bad magic)"
    else
      let digest = String.sub s (mlen + 1) 16 in
      let payload = String.sub s hlen (String.length s - hlen) in
      if not (String.equal (Digest.string payload) digest) then
        Error "sync frame corrupted (payload digest mismatch)"
      else
        let v = Char.code s.[mlen] in
        if v <> version then
          Error
            (Printf.sprintf
               "sync frame version mismatch (frame has v%d, this build reads v%d)"
               v version)
        else
          match (Marshal.from_string payload 0 : t) with
          | f -> Ok f
          | exception _ ->
            Error "sync frame payload unreadable (truncated or incompatible)"

  module Decoder = struct
    type frame = t

    type status = Alive | Dead

    type t = {
      mutable pending : string;
      mutable off : int;
      mutable status : status;
    }

    let create () = { pending = ""; off = 0; status = Alive }

    let feed d chunk n =
      match d.status with
      | Dead -> ()
      | Alive ->
        let keep = String.length d.pending - d.off in
        let b = Bytes.create (keep + n) in
        Bytes.blit_string d.pending d.off b 0 keep;
        Bytes.blit chunk 0 b keep n;
        d.pending <- Bytes.unsafe_to_string b;
        d.off <- 0

    let u32 s i =
      (Char.code s.[i] lsl 24)
      lor (Char.code s.[i + 1] lsl 16)
      lor (Char.code s.[i + 2] lsl 8)
      lor Char.code s.[i + 3]

    let next d : [ `Frame of frame | `Reject of string | `Await ] =
      match d.status with
      | Dead -> `Await
      | Alive ->
        let avail = String.length d.pending - d.off in
        if avail < 4 then `Await
        else
          let n = u32 d.pending d.off in
          if n > max_body then begin
            (* A garbage length prefix leaves nothing to resynchronise
               on: the stream is dead, its owner will be replayed. *)
            d.status <- Dead;
            `Reject (Printf.sprintf "sync frame length implausible (%d bytes)" n)
          end
          else if avail < 4 + n then `Await
          else begin
            let body = String.sub d.pending (d.off + 4) n in
            d.off <- d.off + 4 + n;
            match decode_body body with
            | Ok f -> `Frame f
            | Error e -> `Reject e
          end

    let finish d =
      match d.status with
      | Dead -> None
      | Alive ->
        let avail = String.length d.pending - d.off in
        if avail = 0 then None
        else if avail < 4 then
          Some "truncated sync frame (incomplete length prefix)"
        else Some "truncated sync frame (body shorter than declared length)"
  end
end

(* {1 Merge} *)

module IntMap = Map.Make (Int)

module Merge = struct
  type entry = { e_frame : Frame.t; e_bytes : string }
  type state = entry IntMap.t

  let entry f = { e_frame = f; e_bytes = Frame.encode_body f }

  (* Total order on a shard's frames: progress clock, then finality,
     then the canonical encoded bytes. The bytes tie-break makes the
     order total on {e arbitrary} frames (the property tests feed
     adversarial ones with colliding [seq]), which is what turns
     per-shard max into a true semilattice join. *)
  let cmp a b =
    let c = compare a.e_frame.Frame.seq b.e_frame.Frame.seq in
    if c <> 0 then c
    else
      let c = Bool.compare a.e_frame.Frame.final b.e_frame.Frame.final in
      if c <> 0 then c else String.compare a.e_bytes b.e_bytes

  let add_entry st e =
    IntMap.update e.e_frame.Frame.shard
      (function
        | None -> Some e
        | Some cur -> Some (if cmp e cur > 0 then e else cur))
      st

  let empty = IntMap.empty
  let add st f = add_entry st (entry f)
  let join a b = IntMap.fold (fun _ e acc -> add_entry acc e) b a
  let equal a b = IntMap.equal (fun x y -> String.equal x.e_bytes y.e_bytes) a b
  let frames st = List.map (fun (_, e) -> e.e_frame) (IntMap.bindings st)

  let missing p st =
    List.filter
      (fun sh ->
        match IntMap.find_opt sh.shard_id st with
        | Some { e_frame = { Frame.final = true; _ }; _ } -> false
        | _ -> true)
      p.shards
end

(* {1 Result merge} *)

let sum_cache (a : Pfuzzer.cache_stats) (b : Pfuzzer.cache_stats) =
  {
    Pfuzzer.hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    evictions = a.evictions + b.evictions;
    chars_saved = a.chars_saved + b.chars_saved;
    rescues = a.rescues + b.rescues;
  }

let merge_results p (results : Pfuzzer.result list) =
  let n = List.length p.shards in
  if List.length results <> n then
    invalid_arg "Dist.merge_results: one result per plan shard required";
  let offsets = shard_offsets p in
  let results = Array.of_list results in
  (* Valid inputs: shard-order concatenation, first occurrence wins. *)
  let seen = Hashtbl.create 64 in
  let valid_rev = ref [] in
  Array.iter
    (fun (r : Pfuzzer.result) ->
      List.iter
        (fun input ->
          if not (Hashtbl.mem seen input) then begin
            Hashtbl.add seen input ();
            valid_rev := input :: !valid_rev
          end)
        r.valid_inputs)
    results;
  (* Crashes: re-keyed by identity; the first sighting in shard order is
     also the earliest on the global clock (shard ranges are disjoint
     and increasing), so it keeps the witness input and [first_at]. *)
  let crash_tbl : (string * int, Pfuzzer.crash) Hashtbl.t = Hashtbl.create 16 in
  let crash_order = ref [] in
  Array.iteri
    (fun i (r : Pfuzzer.result) ->
      List.iter
        (fun (c : Pfuzzer.crash) ->
          let key = (c.exn, c.site) in
          match Hashtbl.find_opt crash_tbl key with
          | None ->
            Hashtbl.add crash_tbl key { c with first_at = offsets.(i) + c.first_at };
            crash_order := key :: !crash_order
          | Some prev ->
            Hashtbl.replace crash_tbl key { prev with count = prev.count + c.count })
        r.crashes)
    results;
  let fold f init = Array.fold_left f init results in
  let first_valid_at =
    let best = ref None in
    Array.iteri
      (fun i (r : Pfuzzer.result) ->
        match r.first_valid_at with
        | None -> ()
        | Some at ->
          let g = offsets.(i) + at in
          (match !best with Some b when b <= g -> () | _ -> best := Some g))
      results;
    !best
  in
  {
    Pfuzzer.valid_inputs = List.rev !valid_rev;
    valid_coverage =
      fold
        (fun acc (r : Pfuzzer.result) ->
          Pdf_instr.Coverage.union acc r.valid_coverage)
        Pdf_instr.Coverage.empty;
    hits =
      fold
        (fun acc (r : Pfuzzer.result) -> Pdf_instr.Hits.merge acc r.hits)
        (Pdf_instr.Hits.create ());
    engine = results.(0).engine;
    executions = fold (fun acc (r : Pfuzzer.result) -> acc + r.executions) 0;
    candidates_created =
      fold (fun acc (r : Pfuzzer.result) -> acc + r.candidates_created) 0;
    queue_peak = fold (fun acc (r : Pfuzzer.result) -> max acc r.queue_peak) 0;
    first_valid_at;
    dedupe_resets = fold (fun acc (r : Pfuzzer.result) -> acc + r.dedupe_resets) 0;
    path_resets = fold (fun acc (r : Pfuzzer.result) -> acc + r.path_resets) 0;
    cache =
      fold
        (fun acc (r : Pfuzzer.result) -> sum_cache acc r.cache)
        Pfuzzer.no_cache_stats;
    crashes =
      List.map (fun key -> Hashtbl.find crash_tbl key) (List.rev !crash_order);
    crash_total = fold (fun acc (r : Pfuzzer.result) -> acc + r.crash_total) 0;
    hangs = fold (fun acc (r : Pfuzzer.result) -> acc + r.hangs) 0;
    wall_clock_s = 0.0;
    execs_per_sec = 0.0;
  }

(* {1 Shard execution (shared by workers and the reference)} *)

let run_shard ?obs ?metrics ?frame_every ?send p subject sh =
  let cfg = shard_config p sh in
  let snap seq =
    Option.map (fun m -> Metrics.snapshot ~origin:sh.shard_id ~clock:seq m) metrics
  in
  let on_checkpoint =
    Option.map
      (fun send ck ->
        let seq = Pfuzzer.Checkpoint.executions ck in
        send
          {
            Frame.shard = sh.shard_id;
            seq;
            final = false;
            result = Pfuzzer.Checkpoint.partial_result ck;
            metrics = snap seq;
          })
      send
  in
  Pfuzzer.fuzz ?obs ?checkpoint_every:frame_every ?on_checkpoint cfg subject

let reference ?shards config subject =
  let p = plan ?shards config in
  merge_results p (List.map (fun sh -> scrub (run_shard p subject sh)) p.shards)

(* In-process re-enactment of an N-worker campaign: same shard plan,
   same round-robin assignment, and the full wire path (encode, chunked
   decode, order-insensitive merge) — only the fork is missing. This is
   the fallback when the process has already spawned domains, which
   OCaml 5 forbids mixing with [Unix.fork]. *)
let simulate_campaign ?shards ?(frame_every = 500) ~workers config subject =
  let p = plan ?shards config in
  let nspawn = min (max 1 workers) (List.length p.shards) in
  let stream w_id =
    let buf = Buffer.create 4096 in
    let send f = Buffer.add_string buf (Frame.encode f) in
    List.iter
      (fun sh ->
        if sh.shard_id mod nspawn = w_id then begin
          let result = run_shard ~frame_every ~send p subject sh in
          send
            {
              Frame.shard = sh.shard_id;
              seq = sh.shard_budget + 1;
              final = true;
              result = scrub result;
              metrics = None;
            }
        end)
      p.shards;
    Buffer.contents buf
  in
  let streams = Array.init nspawn stream in
  let pos = Array.make nspawn 0 in
  let decs = Array.init nspawn (fun _ -> Frame.Decoder.create ()) in
  let st = ref Merge.empty in
  (* Interleave the worker streams in odd-sized chunks so frames arrive
     split across reads, as they do from a real pipe. *)
  let chunk = 4093 in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iteri
      (fun w s ->
        let len = String.length s - pos.(w) in
        if len > 0 then begin
          progress := true;
          let n = min chunk len in
          Frame.Decoder.feed decs.(w)
            (Bytes.of_string (String.sub s pos.(w) n))
            n;
          pos.(w) <- pos.(w) + n;
          let rec drain () =
            match Frame.Decoder.next decs.(w) with
            | `Frame f ->
              st := Merge.add !st f;
              drain ()
            | `Reject reason -> failwith ("Dist.simulate_campaign: " ^ reason)
            | `Await -> ()
          in
          drain ()
        end)
      streams
  done;
  let finals =
    List.map
      (fun (f : Frame.t) ->
        assert f.final;
        f.result)
      (Merge.frames !st)
  in
  merge_results p finals

(* {1 Worker processes} *)

let rec write_all fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | n -> write_all fd b (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b off len

let shard_trace_path dir sh = Filename.concat dir (Printf.sprintf "shard%04d.jsonl" sh.shard_id)

(* Runs inside the forked child: execute the assigned shards in
   ascending order, streaming frames to [fd]. Per-shard telemetry is
   buffered in-process and dropped into [trace_dir] at shard end, so
   the coordinator can concatenate the streams in shard order. *)
let worker_main ~fd ~frame_every ~trace_dir p subject shards =
  List.iter
    (fun sh ->
      (* Every shard gets a metrics registry regardless of tracing: its
         snapshots ride the sync frames, so the coordinator always has
         fleet telemetry to fold. *)
      let metrics = Metrics.create () in
      let buffered =
        Option.map (fun dir -> (dir, Trace.buffer ())) trace_dir
      in
      let obs =
        match buffered with
        | Some (_, (sink, _)) -> Observer.create ~sink ~metrics ()
        | None -> Observer.create ~metrics ()
      in
      let send f =
        let s = Frame.encode f in
        write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)
      in
      let result = run_shard ~obs ~metrics ~frame_every ~send p subject sh in
      Option.iter
        (fun (dir, (_, contents)) ->
          Atomic_file.write_string (shard_trace_path dir sh) (contents ()))
        buffered;
      (* Deterministic per-shard tallies: pure functions of the shard
         result, so summed fleet counters are reproducible across worker
         counts. Gauges and the timing histograms the observer recorded
         are the scheduling-dependent part; deterministic reports
         (result digests, --out) must not include them. *)
      let tally name v = Metrics.add (Metrics.counter metrics name) v in
      tally "shard/executions" result.Pfuzzer.executions;
      tally "shard/valid" (List.length result.Pfuzzer.valid_inputs);
      tally "shard/crashes" result.Pfuzzer.crash_total;
      tally "shard/hangs" result.Pfuzzer.hangs;
      tally "cache/hits" result.Pfuzzer.cache.Pfuzzer.hits;
      tally "cache/misses" result.Pfuzzer.cache.Pfuzzer.misses;
      tally "cache/rescues" result.Pfuzzer.cache.Pfuzzer.rescues;
      let seq = sh.shard_budget + 1 in
      send
        {
          Frame.shard = sh.shard_id;
          seq;
          final = true;
          result = scrub result;
          metrics = Some (Metrics.snapshot ~origin:sh.shard_id ~clock:seq metrics);
        })
    shards

(* {1 The coordinator} *)

type outcome = {
  result : Pfuzzer.result;
  o_plan : plan;
  workers : int;
  frames_accepted : int;
  frames_rejected : (int * string) list;
  replays : int;
  worker_status : (int * string) list;
  shard_traces : string list;
  metrics : Metrics.snapshot option;
      (* fleet totals folded from the per-shard snapshots on the frames;
         kept out of [result] so the merged result stays bit-identical
         across worker counts *)
  wall_clock_s : float;
}

type wrec = {
  w_id : int;
  w_pid : int;
  w_fd : Unix.file_descr;
  w_dec : Frame.Decoder.t;
  w_shards : shard list;
  mutable w_killed : bool;
}

let status_string = function
  | Unix.WEXITED c -> Printf.sprintf "exit:%d" c
  | Unix.WSIGNALED s ->
    (* OCaml numbers signals internally; report the conventional POSIX
       number for the ones a campaign can realistically meet. *)
    let posix =
      if s = Sys.sigkill then 9
      else if s = Sys.sigterm then 15
      else if s = Sys.sigint then 2
      else if s = Sys.sigsegv then 11
      else if s = Sys.sigpipe then 13
      else abs s
    in
    Printf.sprintf "signal:%d" posix
  | Unix.WSTOPPED s -> Printf.sprintf "stopped:%d" s

let rec waitpid_eintr pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_eintr pid

let rec read_eintr fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_eintr fd buf

let run_campaign ?(workers = 2) ?shards ?(frame_every = 500) ?(retries = 2)
    ?(trace = false) ?obs ?metrics_file ?postmortem ?kill_worker config subject
    =
  let t0 = Unix.gettimeofday () in
  let p = plan ?shards config in
  (* Coordinator-side flight recorder: a SIGKILLed worker cannot dump
     its own post-mortem, so the coordinator retains the fleet's
     lifecycle events and writes them the moment a worker dies
     abnormally or leaves shards behind. *)
  let recorder =
    Option.map
      (fun prefix -> Observer.create ~ring:(Trace.ring 512) ~postmortem:prefix ())
      postmortem
  in
  let emit ev =
    (match obs with Some o -> Observer.emit o ~exec:0 ev | None -> ());
    match recorder with Some r -> Observer.emit r ~exec:0 ev | None -> ()
  in
  List.iter
    (fun sh ->
      emit (Event.Shard { shard = sh.shard_id; seed = sh.shard_seed; budget = sh.shard_budget }))
    p.shards;
  let trace_dir = if trace then Some (Filename.temp_dir "pfdist" "") else None in
  let accepted = ref 0 in
  let rejected = ref [] in
  let statuses = ref [] in
  let replays = ref 0 in
  (* Fleet telemetry: fold every snapshot that rides a frame. The join
     is idempotent, so a replayed shard re-delivering snapshots the dead
     worker already sent changes nothing. *)
  let telemetry = ref Metrics.Fleet.empty in
  let last_metrics_write = ref 0.0 in
  let write_metrics ~force =
    match metrics_file with
    | None -> ()
    | Some path ->
      let now = Unix.gettimeofday () in
      if force || now -. !last_metrics_write >= 1.0 then begin
        last_metrics_write := now;
        Atomic_file.write_string path
          (Exposition.prometheus (Metrics.Fleet.totals !telemetry))
      end
  in
  (* The live fleet status line: always on when stderr is a tty (no
     opt-in flag needed), absent otherwise — a redirected campaign log
     stays clean. Rendering reuses the single-run line, extended with
     per-worker health columns. *)
  let live =
    if (try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false) then
      Some (Progress.create ())
    else None
  in
  let worker_health : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let outcomes_total =
    Pdf_instr.Site.total_outcomes subject.Subject.registry
  in
  let last_paint = ref t0 in
  let last_paint_execs = ref 0 in
  let paint_live ~final st =
    match live with
    | None -> ()
    | Some pl ->
      let now = Unix.gettimeofday () in
      if final || now -. !last_paint >= 0.5 then begin
        let frames = Merge.frames st in
        let stat f acc (fr : Frame.t) = acc + f fr.result in
        let execs = List.fold_left (stat (fun r -> r.Pfuzzer.executions)) 0 frames in
        let valid =
          List.fold_left (stat (fun r -> List.length r.Pfuzzer.valid_inputs)) 0 frames
        in
        let cov =
          Pdf_instr.Coverage.cardinal
            (List.fold_left
               (fun acc (fr : Frame.t) ->
                 Pdf_instr.Coverage.union acc fr.result.Pfuzzer.valid_coverage)
               Pdf_instr.Coverage.empty frames)
        in
        let hits = List.fold_left (stat (fun r -> r.Pfuzzer.cache.Pfuzzer.hits)) 0 frames in
        let misses = List.fold_left (stat (fun r -> r.Pfuzzer.cache.Pfuzzer.misses)) 0 frames in
        let rescues = List.fold_left (stat (fun r -> r.Pfuzzer.cache.Pfuzzer.rescues)) 0 frames in
        let hangs = List.fold_left (stat (fun r -> r.Pfuzzer.hangs)) 0 frames in
        let crashes = List.fold_left (stat (fun r -> r.Pfuzzer.crash_total)) 0 frames in
        let queue =
          List.fold_left (fun acc (fr : Frame.t) -> max acc fr.result.Pfuzzer.queue_peak) 0 frames
        in
        let engine =
          match frames with [] -> "?" | fr :: _ -> fr.result.Pfuzzer.engine
        in
        let dt = now -. !last_paint in
        let execs_per_sec =
          if dt <= 0.0 then 0.0 else float_of_int (execs - !last_paint_execs) /. dt
        in
        last_paint := now;
        last_paint_execs := execs;
        let health =
          Hashtbl.fold (fun w s acc -> (w, s) :: acc) worker_health []
          |> List.sort compare
          |> List.map (fun (w, s) -> Printf.sprintf "w%d:%s" w s)
          |> String.concat " "
        in
        let line =
          Progress.render ~execs ~max_executions:config.Pfuzzer.max_executions
            ~execs_per_sec ~engine ~depth:queue ~valid ~cov
            ~outcomes:outcomes_total ~hits ~misses ~rescues ~plateau:0 ~hangs
            ~crashes
        in
        Progress.print pl (if health = "" then line else line ^ " | " ^ health)
      end
  in
  let spawn ~extra_close w_id shards =
    let r, w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      (* Child: sees only its own write end. [_exit], not [exit] — the
         parent's at_exit handlers and channel buffers are not ours to
         run or flush. *)
      (try
         Unix.close r;
         List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) extra_close;
         worker_main ~fd:w ~frame_every ~trace_dir p subject shards;
         Unix.close w;
         Unix._exit 0
       with _ -> Unix._exit 3)
    | pid ->
      Unix.close w;
      emit (Event.Worker_spawn { worker = w_id; pid; shards = List.length shards });
      Hashtbl.replace worker_health w_id "run";
      {
        w_id;
        w_pid = pid;
        w_fd = r;
        w_dec = Frame.Decoder.create ();
        w_shards = shards;
        w_killed = false;
      }
  in
  let on_frame st w (f : Frame.t) =
    incr accepted;
    (match f.metrics with
     | Some s -> telemetry := Metrics.Fleet.add !telemetry s
     | None -> ());
    emit
      (Event.Worker_frame
         { worker = w.w_id; shard = f.shard; seq = f.seq; final = f.final });
    write_metrics ~force:false;
    paint_live ~final:false st;
    if (not w.w_killed) && kill_worker = Some w.w_id then begin
      w.w_killed <- true;
      Unix.kill w.w_pid Sys.sigkill
    end
  in
  let on_reject w reason = rejected := (w.w_id, reason) :: !rejected in
  let drain st w =
    let rec go st =
      match Frame.Decoder.next w.w_dec with
      | `Frame f ->
        let st = Merge.add st f in
        on_frame st w f;
        go st
      | `Reject reason ->
        on_reject w reason;
        go st
      | `Await -> st
    in
    go st
  in
  let buf = Bytes.create 65536 in
  (* Read every live pipe until all workers reach EOF; frames arrive in
     whatever order the kernel delivers them, which is exactly what the
     order-insensitive merge absorbs. *)
  let rec supervise st live =
    match live with
    | [] -> st
    | _ -> (
      match Unix.select (List.map (fun w -> w.w_fd) live) [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> supervise st live
      | ready, _, _ ->
        let st = ref st in
        let live =
          List.filter
            (fun w ->
              if not (List.mem w.w_fd ready) then true
              else begin
                let n = read_eintr w.w_fd buf in
                if n > 0 then begin
                  Frame.Decoder.feed w.w_dec buf n;
                  st := drain !st w;
                  true
                end
                else begin
                  (match Frame.Decoder.finish w.w_dec with
                   | Some reason -> on_reject w reason
                   | None -> ());
                  Unix.close w.w_fd;
                  let status = status_string (waitpid_eintr w.w_pid) in
                  statuses := (w.w_id, status) :: !statuses;
                  let missing =
                    Merge.missing { p with shards = w.w_shards } !st
                  in
                  emit
                    (Event.Worker_exit
                       { worker = w.w_id; status; missing = List.length missing });
                  Hashtbl.replace worker_health w.w_id status;
                  (* Abnormal death: dump the coordinator's retained
                     lifecycle events as the post-mortem — the worker
                     itself is in no state to write one. *)
                  if status <> "exit:0" || missing <> [] then
                    Option.iter
                      (fun r ->
                        ignore
                          (Observer.flight_dump r
                             ~reason:(Printf.sprintf "worker%d" w.w_id)))
                      recorder;
                  paint_live ~final:false !st;
                  false
                end
              end)
            live
        in
        supervise !st live)
  in
  (* Initial fleet: shards dealt round-robin across the worker count. *)
  let nworkers = max 1 workers in
  let nspawn = min nworkers (List.length p.shards) in
  let assignment w_id =
    List.filter (fun sh -> sh.shard_id mod nspawn = w_id) p.shards
  in
  let fleet = ref [] in
  for w_id = 0 to nspawn - 1 do
    let extra_close = List.map (fun w -> w.w_fd) !fleet in
    fleet := spawn ~extra_close w_id (assignment w_id) :: !fleet
  done;
  let st = ref (supervise Merge.empty (List.rev !fleet)) in
  (* Replay rounds: shards whose final frame never arrived get a fresh
     worker, [retries] times — the process-level analogue of
     [Parallel.map_retry]'s bounded sequential retries. *)
  let next_id = ref nspawn in
  let attempt = ref 0 in
  let rec replay () =
    match Merge.missing p !st with
    | [] -> ()
    | miss ->
      incr attempt;
      if !attempt > retries then
        failwith
          (Printf.sprintf
             "dist: shard(s) %s produced no final frame after %d replay round(s)"
             (String.concat ", "
                (List.map (fun sh -> string_of_int sh.shard_id) miss))
             retries);
      List.iter
        (fun sh ->
          incr replays;
          emit
            (Event.Retry
               {
                 what = "shard";
                 attempt = !attempt;
                 detail = Printf.sprintf "shard %d replayed after worker death" sh.shard_id;
               }))
        miss;
      let w = spawn ~extra_close:[] !next_id miss in
      incr next_id;
      st := supervise !st [ w ];
      replay ()
  in
  replay ();
  paint_live ~final:true !st;
  (match live with None -> () | Some pl -> Progress.finish pl);
  write_metrics ~force:true;
  let finals =
    List.map
      (fun (f : Frame.t) ->
        assert f.final;
        f.result)
      (Merge.frames !st)
  in
  let result = merge_results p finals in
  let shard_traces =
    match trace_dir with
    | None -> []
    | Some dir ->
      let streams =
        List.map (fun sh -> Atomic_file.read_string (shard_trace_path dir sh)) p.shards
      in
      List.iter
        (fun sh -> try Sys.remove (shard_trace_path dir sh) with Sys_error _ -> ())
        p.shards;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ());
      streams
  in
  {
    result;
    o_plan = p;
    workers = nworkers;
    frames_accepted = !accepted;
    frames_rejected = List.rev !rejected;
    replays = !replays;
    worker_status = List.rev !statuses;
    shard_traces;
    metrics =
      (if Metrics.Fleet.equal !telemetry Metrics.Fleet.empty then None
       else Some (Metrics.Fleet.totals !telemetry));
    wall_clock_s = Unix.gettimeofday () -. t0;
  }
