(** A character together with its taint. *)

type t = { ch : char; taint : Taint.t }

val make : char -> Taint.t -> t

val untainted : char -> t
(** A constant character (empty taint). *)

val input : int -> char -> t
(** [input i c] is the character [c] read from input position [i]. *)

val code : t -> int
(** [Char.code] of the underlying character; taint is unaffected because
    the result is used only transiently. Use {!map} for derived values
    that live on. *)

val map : (char -> char) -> t -> t
(** Derived character: same taint, transformed payload (e.g. case
    folding). *)

val combine : (char -> char -> char) -> t -> t -> t
(** Derived from two tainted characters; taints accumulate. *)

val is_tainted : t -> bool
val pp : Format.formatter -> t -> unit
