(** Greedy delta-debugging-style input minimisation.

    [shrink p s] requires [p s = true] and returns a string on which [p]
    still holds and from which no single chunk deletion or character
    canonicalisation [p]-preservingly applies — a local minimum, reached
    by trying ever-smaller chunk deletions (halves down to single
    characters) and then replacing surviving characters with canonical
    ones. The predicate evaluation budget is bounded, so shrinking always
    terminates quickly even when [p] runs a subject twice. *)

val shrink : ?max_evals:int -> (string -> bool) -> string -> string
