(** Flat single-line JSON, the trace wire format. Only what the event
    schema needs: objects of string/int/float/bool fields. *)

type v = S of string | I of int | F of float | B of bool

exception Malformed of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Malformed} with a formatted message. *)

val escape : Buffer.t -> string -> unit
val add_value : Buffer.t -> v -> unit
val write_flat : Buffer.t -> (string * v) list -> unit
val flat_to_string : (string * v) list -> string

val parse_flat : string -> (string * v) list
(** Parse one flat object, preserving field order. Raises {!Malformed}
    on nesting, bad escapes, or trailing input. *)
