(** GC sizing for campaign workloads.

    Campaigns allocate mostly short-lived per-execution garbage; a minor
    heap sized to the working set lets it die young instead of being
    promoted. Purely a pacing knob: results are bit-identical for every
    setting. *)

val default_minor_words : queue_bound:int -> int
(** Minor-heap size (in words) derived from the campaign's queue bound —
    32 words per potential queue slot, clamped to [256k, 4M] words. *)

val set_minor_heap : int -> unit
(** [set_minor_heap words] resizes the minor heap (no-op when [words] is
    not positive or already current). *)

val minor_heap_words : unit -> int
(** The current minor-heap size in words. *)
