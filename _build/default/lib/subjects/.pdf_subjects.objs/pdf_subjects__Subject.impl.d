lib/subjects/subject.ml: Pdf_instr Token
