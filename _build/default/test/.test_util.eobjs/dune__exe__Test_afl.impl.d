test/test_afl.ml: Alcotest Array List Pdf_afl Pdf_eval Pdf_subjects Pdf_util Printf QCheck QCheck_alcotest String
