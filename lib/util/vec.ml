type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 0) dummy =
  {
    data = (if capacity <= 0 then [||] else Array.make capacity dummy);
    len = 0;
    dummy;
  }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let ndata = Array.make ncap t.dummy in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t x =
  if t.len = Array.length t.data then grow t;
  (* len < capacity after the grow check, so the store needs no bound
     check of its own. *)
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := t.data.(i) :: !acc
  done;
  !acc
