lib/instr/runner.mli: Comparison Coverage Ctx Format Frame Site
