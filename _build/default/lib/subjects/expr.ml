module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site

let registry = Site.create_registry "expr"
let s_parse = Site.block registry "parse"
let s_expr = Site.block registry "expr"
let s_factor = Site.block registry "factor"
let s_number = Site.block registry "number"
let b_sign_plus = Site.branch registry "factor.sign-plus?"
let b_sign_minus = Site.branch registry "factor.sign-minus?"
let b_digit_first = Site.branch registry "factor.digit?"
let b_lparen = Site.branch registry "factor.lparen?"
let b_rparen = Site.branch registry "factor.rparen"
let b_digit_more = Site.branch registry "number.more-digit?"
let b_op_plus = Site.branch registry "expr.op-plus?"
let b_op_minus = Site.branch registry "expr.op-minus?"
let b_trailing = Site.branch registry "parse.trailing?"

let number ctx =
  Ctx.with_frame ctx s_number @@ fun () ->
  let rec more () =
    match Ctx.peek ctx with
    | None -> ()
    | Some c ->
      if Ctx.in_range ctx b_digit_more c '0' '9' then begin
        ignore (Ctx.next ctx);
        more ()
      end
  in
  more ()

let rec expr ctx =
  Ctx.with_frame ctx s_expr @@ fun () ->
  factor ctx;
  let rec ops () =
    if Helpers.eat_if ctx b_op_plus '+' then begin
      factor ctx;
      ops ()
    end
    else if Helpers.eat_if ctx b_op_minus '-' then begin
      factor ctx;
      ops ()
    end
  in
  ops ()

and factor ctx =
  Ctx.with_frame ctx s_factor @@ fun () ->
  (* Optional unary sign. *)
  (if Helpers.peek_is ctx b_sign_plus '+' then ignore (Ctx.next ctx)
   else if Helpers.peek_is ctx b_sign_minus '-' then ignore (Ctx.next ctx));
  match Ctx.peek ctx with
  | None -> Ctx.reject ctx "expected digit or '(', found end of input"
  | Some c ->
    if Ctx.in_range ctx b_digit_first c '0' '9' then begin
      ignore (Ctx.next ctx);
      number ctx
    end
    else if Ctx.eq ctx b_lparen c '(' then begin
      ignore (Ctx.next ctx);
      expr ctx;
      Helpers.expect ctx b_rparen ')'
    end
    else Ctx.reject ctx "expected digit or '('"

let parse ctx =
  Ctx.with_frame ctx s_parse @@ fun () ->
  expr ctx;
  match Ctx.peek ctx with
  | Some _ ->
    ignore (Ctx.branch ctx b_trailing true);
    Ctx.reject ctx "trailing input after expression"
  | None -> ignore (Ctx.branch ctx b_trailing false)

let tokens =
  [
    Token.literal "(";
    Token.literal ")";
    Token.literal "+";
    Token.literal "-";
    Token.make "number" 1;
  ]

let tokenize input =
  let tags = ref [] in
  let push tag = if not (List.mem tag !tags) then tags := tag :: !tags in
  String.iter
    (fun c ->
      match c with
      | '(' -> push "("
      | ')' -> push ")"
      | '+' -> push "+"
      | '-' -> push "-"
      | '0' .. '9' -> push "number"
      | _ -> ())
    input;
  List.rev !tags

let subject =
  {
    Subject.name = "expr";
    description = "arithmetic expressions (the paper's Section 2 example)";
    registry;
    parse;
    fuel = 100_000;
    tokens;
    tokenize;
    original_loc = 60;
  }
