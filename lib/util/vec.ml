(* [cap] is the writable capacity. For vectors that own their backing
   array it equals [Array.length data]; for borrowed vectors (see
   [of_prefix]) it equals [len], so the very first push routes through
   [grow] and copies the shared prefix into owned storage — copy-on-write
   with no extra test on the push hot path. *)
type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  mutable cap : int;
  dummy : 'a;
}

let create ?(capacity = 0) dummy =
  let data = if capacity <= 0 then [||] else Array.make capacity dummy in
  { data; len = 0; cap = Array.length data; dummy }

let of_prefix arr ~len dummy =
  if len < 0 || len > Array.length arr then invalid_arg "Vec.of_prefix";
  (* cap = len marks the backing array as shared: it is never written. *)
  { data = arr; len; cap = len; dummy }

let[@inline] length t = t.len
let[@inline] is_empty t = t.len = 0

let grow t =
  let ncap = if t.len = 0 then 16 else 2 * t.len in
  let ndata = Array.make ncap t.dummy in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata;
  t.cap <- ncap

let[@inline] push t x =
  if t.len >= t.cap then grow t;
  (* len < cap <= Array.length data after the grow check, so the store
     needs no bound check of its own. *)
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let[@inline] get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let clear t =
  (* A borrowed backing array (cap < length data only happens for
     borrowed prefixes) must not be scrubbed: it is shared with the
     lender. Dropping the reference is enough. *)
  if t.cap = Array.length t.data then Array.fill t.data 0 t.len t.dummy
  else begin
    t.data <- [||];
    t.cap <- 0
  end;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := t.data.(i) :: !acc
  done;
  !acc
