lib/instr/coverage.ml: Array List Pdf_util Site Sys
