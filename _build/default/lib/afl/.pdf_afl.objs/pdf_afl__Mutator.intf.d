lib/afl/mutator.mli: Pdf_util
