module Coverage = Pdf_instr.Coverage
module Subject = Pdf_subjects.Subject

type stage_report = {
  stage : Tool.name;
  new_valid : int;
  coverage_after : float;
  executions : int;
}

type result = {
  valid_inputs : string list;
  valid_coverage : Coverage.t;
  stages : stage_report list;
}

let dedup_append existing extra =
  List.fold_left
    (fun acc input -> if List.mem input acc then acc else acc @ [ input ])
    existing extra

let run ~budget_units ?(shares = (0.5, 0.4, 0.1)) ~seed (subject : Subject.t) =
  let afl_share, pf_share, klee_share = shares in
  let units share = max 1 (int_of_float (float_of_int budget_units *. share)) in
  (* Stage 1: lexical — cheap executions, shallow exploration. *)
  let afl =
    Pdf_afl.Afl.fuzz
      {
        Pdf_afl.Afl.default_config with
        seed;
        max_executions = units afl_share / Tool.cost_per_execution Tool.Afl;
      }
      subject
  in
  let corpus = afl.valid_inputs in
  let coverage = afl.valid_coverage in
  let stage1 =
    {
      stage = Tool.Afl;
      new_valid = List.length corpus;
      coverage_after = Coverage.percent coverage subject.registry;
      executions = afl.executions;
    }
  in
  (* Stage 2: syntactic — pFuzzer seeded with the lexical corpus. *)
  let pf =
    Pdf_core.Pfuzzer.fuzz ~initial_inputs:corpus
      {
        Pdf_core.Pfuzzer.default_config with
        seed;
        max_executions = units pf_share / Tool.cost_per_execution Tool.Pfuzzer;
      }
      subject
  in
  let corpus = dedup_append corpus pf.valid_inputs in
  let coverage = Coverage.union coverage pf.valid_coverage in
  let stage2 =
    {
      stage = Tool.Pfuzzer;
      new_valid = List.length pf.valid_inputs;
      coverage_after = Coverage.percent coverage subject.registry;
      executions = pf.executions;
    }
  in
  (* Stage 3: symbolic — concolic negation from the combined corpus. *)
  let klee =
    Pdf_klee.Klee.fuzz ~initial_inputs:corpus
      {
        Pdf_klee.Klee.default_config with
        seed;
        max_executions = units klee_share / Tool.cost_per_execution Tool.Klee;
      }
      subject
  in
  let corpus = dedup_append corpus klee.valid_inputs in
  let coverage = Coverage.union coverage klee.valid_coverage in
  let stage3 =
    {
      stage = Tool.Klee;
      new_valid = List.length klee.valid_inputs;
      coverage_after = Coverage.percent coverage subject.registry;
      executions = klee.executions;
    }
  in
  { valid_inputs = corpus; valid_coverage = coverage; stages = [ stage1; stage2; stage3 ] }
