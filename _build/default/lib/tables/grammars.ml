let digit_productions nt rest =
  List.init 10 (fun i ->
      { Cfg.lhs = nt; rhs = Cfg.T (Char.chr (Char.code '0' + i)) :: rest })

let arith =
  Cfg.make ~start:"expr"
    ([
       { Cfg.lhs = "expr"; rhs = [ Cfg.N "factor"; Cfg.N "expr'" ] };
       { Cfg.lhs = "expr'"; rhs = [ Cfg.T '+'; Cfg.N "factor"; Cfg.N "expr'" ] };
       { Cfg.lhs = "expr'"; rhs = [ Cfg.T '-'; Cfg.N "factor"; Cfg.N "expr'" ] };
       { Cfg.lhs = "expr'"; rhs = [] };
       { Cfg.lhs = "factor"; rhs = [ Cfg.N "sign"; Cfg.N "core" ] };
       { Cfg.lhs = "sign"; rhs = [ Cfg.T '+' ] };
       { Cfg.lhs = "sign"; rhs = [ Cfg.T '-' ] };
       { Cfg.lhs = "sign"; rhs = [] };
       { Cfg.lhs = "core"; rhs = [ Cfg.T '('; Cfg.N "expr"; Cfg.T ')' ] };
       { Cfg.lhs = "digits'"; rhs = [] };
     ]
    @ digit_productions "core" [ Cfg.N "digits'" ]
    @ digit_productions "digits'" [ Cfg.N "digits'" ])

let dyck =
  let pair o c =
    { Cfg.lhs = "s"; rhs = [ Cfg.T o; Cfg.N "s"; Cfg.T c; Cfg.N "s" ] }
  in
  Cfg.make ~start:"s"
    [ pair '(' ')'; pair '[' ']'; pair '{' '}'; pair '<' '>'; { Cfg.lhs = "s"; rhs = [] } ]

(* Scannerless LL(1) JSON. Character classes (string-safe characters,
   digits, hex digits) expand to one production per character, which is
   exactly what a generated parse table looks like. Whitespace is the
   nullable nonterminal [ws]; every list construct is left-factored. *)
let json =
  let p lhs rhs = { Cfg.lhs; rhs } in
  let t c = Cfg.T c and n name = Cfg.N name in
  let char_class nt chars rest =
    List.map (fun c -> p nt (t c :: rest)) chars
  in
  let chars_of_string s = List.init (String.length s) (String.get s) in
  let keyword word =
    p "value" (List.map t (chars_of_string word))
  in
  let digits = chars_of_string "0123456789" in
  let hex = chars_of_string "0123456789abcdefABCDEF" in
  (* Printable string content except '"' and '\\'. *)
  let safe =
    List.filter (fun c -> c <> '"' && c <> '\\') (chars_of_string (String.init 95 (fun i -> Char.chr (0x20 + i))))
  in
  Cfg.make ~start:"json"
    ([
       p "json" [ n "ws"; n "value"; n "ws" ];
       p "ws" [ t ' '; n "ws" ];
       p "ws" [ t '\t'; n "ws" ];
       p "ws" [ t '\n'; n "ws" ];
       p "ws" [ t '\r'; n "ws" ];
       p "ws" [];
       (* values *)
       keyword "true";
       keyword "false";
       keyword "null";
       p "value" [ n "string" ];
       p "value" [ n "number" ];
       p "value" [ t '{'; n "ws"; n "obj-body" ];
       p "value" [ t '['; n "ws"; n "arr-body" ];
       p "obj-body" [ t '}' ];
       p "obj-body" [ n "pair"; n "obj-more" ];
       p "obj-more" [ t '}' ];
       p "obj-more" [ t ','; n "ws"; n "pair"; n "obj-more" ];
       p "pair" [ n "string"; n "ws"; t ':'; n "ws"; n "value"; n "ws" ];
       p "arr-body" [ t ']' ];
       p "arr-body" [ n "value"; n "ws"; n "arr-more" ];
       p "arr-more" [ t ']' ];
       p "arr-more" [ t ','; n "ws"; n "value"; n "ws"; n "arr-more" ];
       (* strings *)
       p "string" [ t '"'; n "chars" ];
       p "chars" [ t '"' ];
       p "chars" [ t '\\'; n "escape"; n "chars" ];
       p "escape" [ t 'u'; n "hex"; n "hex"; n "hex"; n "hex" ];
       (* numbers *)
       p "number" [ t '-'; n "int" ];
       p "int-rest" [ n "frac" ];
       p "frac" [ t '.'; n "frac-digits" ];
       p "frac" [ n "exp" ];
       p "exp" [ t 'e'; n "exp-sign"; n "exp-digits" ];
       p "exp" [ t 'E'; n "exp-sign"; n "exp-digits" ];
       p "exp" [];
       p "exp-sign" [ t '+' ];
       p "exp-sign" [ t '-' ];
       p "exp-sign" [];
     ]
    @ char_class "chars" safe [ n "chars" ]
    @ char_class "escape" (chars_of_string "\"\\/bfnrt") []
    @ char_class "hex" hex []
    @ char_class "number" digits [ n "int-rest" ]
    @ char_class "int" digits [ n "int-rest" ]
    @ char_class "int-rest" digits [ n "int-rest" ]
    @ char_class "frac-digits" digits [ n "frac-more" ]
    @ char_class "frac-more" digits [ n "frac-more" ]
    @ [ p "frac-more" [ n "exp" ] ]
    @ char_class "exp-digits" digits [ n "exp-more" ]
    @ char_class "exp-more" digits [ n "exp-more" ]
    @ [ p "exp-more" [] ])

let force_table grammar =
  match Ll1.build grammar with
  | Ok table -> table
  | Error conflict ->
    invalid_arg (Format.asprintf "Grammars: %a" Ll1.pp_conflict conflict)

let arith_table = force_table arith
let dyck_table = force_table dyck
let json_table = force_table json

let expr_tokens = (Pdf_subjects.Catalog.find "expr").Pdf_subjects.Subject.tokens
let expr_tokenize = (Pdf_subjects.Catalog.find "expr").Pdf_subjects.Subject.tokenize

let table_expr =
  Driver.subject ~name:"table-expr"
    ~description:"arithmetic expressions, LL(1) table-driven (§7.1)"
    ~coverage:Driver.Table_elements ~diagnostics:Driver.Expected_sets
    ~tokens:expr_tokens ~tokenize:expr_tokenize arith_table

let table_expr_naive =
  Driver.subject ~name:"table-expr-naive"
    ~description:"arithmetic expressions, table-driven, code coverage + silent driver"
    ~coverage:Driver.Code ~diagnostics:Driver.Silent ~tokens:expr_tokens
    ~tokenize:expr_tokenize arith_table

let json_subject = Pdf_subjects.Catalog.find "json"

let table_json =
  Driver.subject ~name:"table-json"
    ~description:"JSON, LL(1) table-driven (§7.1)"
    ~coverage:Driver.Table_elements ~diagnostics:Driver.Expected_sets
    ~tokens:json_subject.Pdf_subjects.Subject.tokens
    ~tokenize:json_subject.Pdf_subjects.Subject.tokenize json_table
