type t = {
  name : string;
  description : string;
  registry : Pdf_instr.Site.registry;
  parse : Pdf_instr.Ctx.t -> unit;
  machine : Pdf_instr.Machine.recognizer option;
  compiled : Pdf_instr.Compiled.t option;
  compiled_preferred : bool;
  fuel : int;
  tokens : Token.t list;
  tokenize : string -> string list;
  original_loc : int;
}

let run ?track_comparisons ?track_trace ?track_frames t input =
  Pdf_instr.Runner.exec ~registry:t.registry ~parse:t.parse ~fuel:t.fuel
    ?track_comparisons ?track_trace ?track_frames input

let exec_journaled ?track_comparisons ?track_trace ?track_frames t machine input
    =
  Pdf_instr.Runner.exec_machine ~registry:t.registry ~machine ~fuel:t.fuel
    ?track_comparisons ?track_trace ?track_frames input

let accepts t input = Pdf_instr.Runner.accepted (run t input)
