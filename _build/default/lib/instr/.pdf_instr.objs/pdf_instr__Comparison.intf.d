lib/instr/comparison.mli: Format Pdf_util
