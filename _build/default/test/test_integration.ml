(* End-to-end properties across the whole toolkit: every fuzzer on every
   subject honours the core contracts (reported inputs really are valid,
   tags stay within inventories, budgets are respected), and the
   tool-chain compositions (pipeline, mining) work on every subject they
   claim to support. *)

module Subject = Pdf_subjects.Subject
module Catalog = Pdf_subjects.Catalog
module Runner = Pdf_instr.Runner
module Coverage = Pdf_instr.Coverage

let subjects_under_test =
  [ "expr"; "paren"; "ini"; "csv"; "json"; "tinyc"; "tinyc-tt"; "tinyc-sem"; "mjs" ]

let check_corpus name subject inputs =
  List.iter
    (fun input ->
      if not (Subject.accepts subject input) then
        Alcotest.failf "%s: reported valid input %S is rejected" name input)
    inputs;
  let inventory = List.map (fun (t : Pdf_subjects.Token.t) -> t.tag) subject.Subject.tokens in
  List.iter
    (fun tag ->
      if not (List.mem tag inventory) then
        Alcotest.failf "%s: tag %S escaped the inventory" name tag)
    (Pdf_eval.Token_report.found_tags subject inputs)

let test_pfuzzer_contract () =
  List.iter
    (fun name ->
      let subject = Catalog.find name in
      let result =
        Pdf_core.Pfuzzer.fuzz
          { Pdf_core.Pfuzzer.default_config with max_executions = 1500 }
          subject
      in
      Alcotest.(check int)
        (name ^ ": budget exact") 1500 result.executions;
      check_corpus ("pfuzzer/" ^ name) subject result.valid_inputs)
    subjects_under_test

let test_afl_contract () =
  List.iter
    (fun name ->
      let subject = Catalog.find name in
      let result =
        Pdf_afl.Afl.fuzz
          { Pdf_afl.Afl.default_config with max_executions = 5000 }
          subject
      in
      check_corpus ("afl/" ^ name) subject result.valid_inputs)
    subjects_under_test

let test_klee_contract () =
  List.iter
    (fun name ->
      let subject = Catalog.find name in
      let result =
        Pdf_klee.Klee.fuzz
          { Pdf_klee.Klee.default_config with max_executions = 1000 }
          subject
      in
      check_corpus ("klee/" ^ name) subject result.valid_inputs)
    subjects_under_test

let test_table_subjects_contract () =
  List.iter
    (fun subject ->
      let result =
        Pdf_core.Pfuzzer.fuzz
          { Pdf_core.Pfuzzer.default_config with max_executions = 2000 }
          subject
      in
      check_corpus ("pfuzzer/" ^ subject.Subject.name) subject result.valid_inputs)
    [
      Pdf_tables.Grammars.table_expr;
      Pdf_tables.Grammars.table_expr_naive;
      Pdf_tables.Grammars.table_json;
    ]

let test_mining_round_trip () =
  (* Mining from a pFuzzer corpus and regenerating must stay within the
     language for the subjects whose frames map cleanly to nonterminals
     (mjs shares one frame site across precedence tiers, so its mined
     grammar legitimately overgeneralises; see DESIGN.md). *)
  List.iter
    (fun name ->
      let subject = Catalog.find name in
      let result =
        Pdf_core.Pfuzzer.fuzz
          { Pdf_core.Pfuzzer.default_config with max_executions = 4000 }
          subject
      in
      let grammar = Pdf_grammar.Miner.mine subject result.valid_inputs in
      let rng = Pdf_util.Rng.make 5 in
      let sentences = Pdf_grammar.Generator.generate_many rng ~max_depth:10 50 grammar in
      List.iter
        (fun s ->
          if s <> "" && not (Subject.accepts subject s) then
            Alcotest.failf "%s: mined grammar generated rejected %S" name s)
        sentences)
    [ "expr"; "paren"; "json"; "csv" ]

let test_pipeline_on_all_evaluation_subjects () =
  List.iter
    (fun (subject : Subject.t) ->
      let result = Pdf_eval.Pipeline.run ~budget_units:60_000 ~seed:1 subject in
      List.iter
        (fun input ->
          if not (Subject.accepts subject input) then
            Alcotest.failf "pipeline/%s: corpus input %S invalid" subject.name input)
        result.valid_inputs)
    Catalog.evaluation

let test_determinism_across_stack () =
  (* One fixed seed must give byte-identical results through every layer. *)
  let run () =
    let subject = Catalog.find "json" in
    let p =
      Pdf_core.Pfuzzer.fuzz
        { Pdf_core.Pfuzzer.default_config with seed = 9; max_executions = 2000 }
        subject
    in
    let pipeline = Pdf_eval.Pipeline.run ~budget_units:50_000 ~seed:9 subject in
    (p.valid_inputs, pipeline.valid_inputs)
  in
  let a = run () and b = run () in
  Alcotest.(check (pair (list string) (list string))) "fully deterministic" a b

let () =
  Alcotest.run "integration"
    [
      ( "contracts",
        [
          Alcotest.test_case "pfuzzer on all subjects" `Quick test_pfuzzer_contract;
          Alcotest.test_case "afl on all subjects" `Quick test_afl_contract;
          Alcotest.test_case "klee on all subjects" `Quick test_klee_contract;
          Alcotest.test_case "table-driven subjects" `Quick test_table_subjects_contract;
        ] );
      ( "tool-chains",
        [
          Alcotest.test_case "mining round trip" `Quick test_mining_round_trip;
          Alcotest.test_case "pipeline on evaluation subjects" `Quick
            test_pipeline_on_all_evaluation_subjects;
          Alcotest.test_case "determinism across the stack" `Quick
            test_determinism_across_stack;
        ] );
    ]
