lib/klee/path_constraint.mli: Pdf_instr Pdf_util
