type name = Afl | Klee | Pfuzzer

let all = [ Afl; Klee; Pfuzzer ]

let display_name = function Afl -> "AFL" | Klee -> "KLEE" | Pfuzzer -> "pFuzzer"

let of_string s =
  match String.lowercase_ascii s with
  | "afl" -> Some Afl
  | "klee" -> Some Klee
  | "pfuzzer" -> Some Pfuzzer
  | _ -> None

let cost_per_execution = function Afl -> 1 | Klee -> 100 | Pfuzzer -> 100

type outcome = {
  tool : name;
  subject : string;
  valid_inputs : string list;
  valid_coverage : Pdf_instr.Coverage.t;
  executions : int;
  cache : Pdf_core.Pfuzzer.cache_stats;
  crashes : Pdf_core.Pfuzzer.crash list;
  crash_total : int;
  hangs : int;
  wall_clock_s : float;
  execs_per_sec : float;
}

let empty_outcome tool ~subject =
  {
    tool;
    subject;
    valid_inputs = [];
    valid_coverage = Pdf_instr.Coverage.empty;
    executions = 0;
    cache = Pdf_core.Pfuzzer.no_cache_stats;
    crashes = [];
    crash_total = 0;
    hangs = 0;
    wall_clock_s = 0.0;
    execs_per_sec = 0.0;
  }

let throughput ~executions wall_clock_s =
  if wall_clock_s <= 0.0 then 0.0 else float_of_int executions /. wall_clock_s

let run ?(incremental = true) ?(engine = Pdf_core.Pfuzzer.Compiled) ?batch ?obs
    ?faults ?checkpoint_every ?on_checkpoint ?resume_from ?on_execution tool
    ~budget_units ~seed subject =
  let max_executions = max 1 (budget_units / cost_per_execution tool) in
  match tool with
  | Afl ->
    let t0 = Pdf_obs.Clock.now_ns () in
    let result =
      Pdf_afl.Afl.fuzz { Pdf_afl.Afl.default_config with seed; max_executions } subject
    in
    let wall_clock_s = float_of_int (Pdf_obs.Clock.now_ns () - t0) /. 1e9 in
    {
      tool;
      subject = subject.Pdf_subjects.Subject.name;
      valid_inputs = result.valid_inputs;
      valid_coverage = result.valid_coverage;
      executions = result.executions;
      cache = Pdf_core.Pfuzzer.no_cache_stats;
      crashes = [];
      crash_total = 0;
      hangs = 0;
      wall_clock_s;
      execs_per_sec = throughput ~executions:result.executions wall_clock_s;
    }
  | Klee ->
    let t0 = Pdf_obs.Clock.now_ns () in
    let result =
      Pdf_klee.Klee.fuzz
        { Pdf_klee.Klee.default_config with seed; max_executions }
        subject
    in
    let wall_clock_s = float_of_int (Pdf_obs.Clock.now_ns () - t0) /. 1e9 in
    {
      tool;
      subject = subject.Pdf_subjects.Subject.name;
      valid_inputs = result.valid_inputs;
      valid_coverage = result.valid_coverage;
      executions = result.executions;
      cache = Pdf_core.Pfuzzer.no_cache_stats;
      crashes = [];
      crash_total = 0;
      hangs = 0;
      wall_clock_s;
      execs_per_sec = throughput ~executions:result.executions wall_clock_s;
    }
  | Pfuzzer ->
    let result =
      match resume_from with
      | Some checkpoint ->
        Pdf_core.Pfuzzer.resume_from ?obs ?faults ?checkpoint_every
          ?on_checkpoint ?on_execution checkpoint subject
      | None ->
        let config =
          {
            Pdf_core.Pfuzzer.default_config with
            seed;
            max_executions;
            incremental;
            engine;
            batch =
              (match batch with
               | Some b -> b
               | None -> Pdf_core.Pfuzzer.default_config.batch);
          }
        in
        Pdf_core.Pfuzzer.fuzz ?obs ?faults ?checkpoint_every ?on_checkpoint
          ?on_execution config subject
    in
    {
      tool;
      subject = subject.Pdf_subjects.Subject.name;
      valid_inputs = result.valid_inputs;
      valid_coverage = result.valid_coverage;
      executions = result.executions;
      cache = result.cache;
      crashes = result.crashes;
      crash_total = result.crash_total;
      hangs = result.hangs;
      wall_clock_s = result.wall_clock_s;
      execs_per_sec = result.execs_per_sec;
    }
