module Render = Pdf_util.Render
module Subject = Pdf_subjects.Subject
module Token = Pdf_subjects.Token

let table_1 ppf subjects =
  let rows =
    List.map
      (fun (s : Subject.t) ->
        let paper_loc =
          match List.assoc_opt s.name Paper_data.table1_loc with
          | Some n -> string_of_int n
          | None -> "-"
        in
        [
          s.name;
          paper_loc;
          string_of_int (Pdf_instr.Site.site_count s.registry);
          string_of_int (Pdf_instr.Site.total_outcomes s.registry);
          string_of_int (List.length s.tokens);
        ])
      subjects
  in
  Render.table ppf ~title:"Table 1: evaluation subjects"
    ~header:[ "subject"; "paper C LoC"; "sites"; "branch outcomes"; "tokens" ]
    rows

let token_inventory ppf (s : Subject.t) =
  let rows =
    Token.lengths s.tokens
    |> List.map (fun len ->
           let of_len = Token.of_length len s.tokens in
           let examples =
             of_len |> List.map (fun (t : Token.t) -> t.tag) |> fun tags ->
             let shown = List.filteri (fun i _ -> i < 8) tags in
             String.concat " " shown
             ^ if List.length tags > 8 then " ..." else ""
           in
           [ string_of_int len; string_of_int (List.length of_len); examples ])
  in
  Render.table ppf
    ~title:(Printf.sprintf "%s tokens and their number for each length" s.name)
    ~header:[ "length"; "#"; "examples" ]
    rows

let figure_2 ppf (e : Experiment.t) =
  let series = List.map Tool.display_name Tool.all in
  let rows =
    List.map
      (fun (subject, _) ->
        ( subject,
          List.map
            (fun tool -> (Experiment.cell e subject tool).Experiment.coverage_percent)
            Tool.all ))
      e.cells
  in
  Render.grouped_bar_chart ppf
    ~title:"Figure 2: branch coverage of valid inputs, per subject and tool (%)"
    ~series rows;
  let check_rows =
    List.filter_map
      (fun (subject, _) ->
        match List.assoc_opt subject Paper_data.coverage_order with
        | None -> None
        | Some paper_winner ->
          let measured_winner =
            Tool.all
            |> List.map (fun tool ->
                   ( Tool.display_name tool,
                     (Experiment.cell e subject tool).Experiment.coverage_percent ))
            |> List.fold_left
                 (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
                 ("-", neg_infinity)
            |> fst
          in
          Some [ subject; paper_winner; measured_winner ])
      e.cells
  in
  if check_rows <> [] then
    Render.table ppf ~title:"Highest coverage per subject: paper vs measured"
      ~header:[ "subject"; "paper"; "measured" ]
      check_rows

let figure_3 ppf (e : Experiment.t) =
  Format.fprintf ppf
    "@.Figure 3: tokens generated, grouped by token length (found/total)@.";
  List.iter
    (fun (s : Subject.t) ->
      Format.fprintf ppf "%s@." s.name;
      List.iter
        (fun tool ->
          let cell = Experiment.cell e s.name tool in
          let groups = Token_report.by_length s cell.Experiment.found_tags in
          let cells =
            groups
            |> List.map (fun (len, found, total) ->
                   Printf.sprintf "len %d: %d/%d" len found total)
          in
          Format.fprintf ppf "  %-8s %s@." (Tool.display_name tool)
            (String.concat "  " cells))
        Tool.all)
    e.subjects

let pp_shares ppf title measured paper =
  let rows =
    List.map
      (fun (tool, value) ->
        let paper_value =
          match List.assoc_opt tool paper with
          | Some v -> Printf.sprintf "%.1f%%" v
          | None -> "-"
        in
        [ Tool.display_name tool; Printf.sprintf "%.1f%%" value; paper_value ])
      measured
  in
  Render.table ppf ~title ~header:[ "tool"; "measured"; "paper" ] rows

let headline ppf (e : Experiment.t) =
  pp_shares ppf "Tokens of length <= 3 found (all subjects)"
    (Experiment.headline e ~min_len:0 ~max_len:3)
    Paper_data.headline_short;
  pp_shares ppf "Tokens of length > 3 found (all subjects)"
    (Experiment.headline e ~min_len:4 ~max_len:max_int)
    Paper_data.headline_long

(* Incremental-execution accounting: how much prefix re-parsing the
   snapshot cache saved pFuzzer, per subject. Inert rows (subjects
   without a machine-form parser) are shown with zero consultations. *)
let cache_report ppf (e : Experiment.t) =
  let rows =
    List.map
      (fun (subject, _) ->
        let c = (Experiment.cell e subject Tool.Pfuzzer).Experiment.outcome.cache in
        let consulted = c.Pdf_core.Pfuzzer.hits + c.misses in
        let hit_rate =
          if consulted = 0 then "-"
          else Printf.sprintf "%.1f%%" (100. *. float_of_int c.hits /. float_of_int consulted)
        in
        [
          subject;
          string_of_int c.hits;
          string_of_int c.misses;
          hit_rate;
          string_of_int c.evictions;
          string_of_int c.chars_saved;
        ])
      e.cells
  in
  Render.table ppf ~title:"pFuzzer incremental execution: prefix-snapshot cache"
    ~header:[ "subject"; "hits"; "misses"; "hit rate"; "evictions"; "chars saved" ]
    rows

(* Wall-clock throughput per cell. The virtual unit budget equalizes the
   tools' simulated effort; this table shows the real cost of producing
   each cell. *)
let throughput ppf (e : Experiment.t) =
  let rows =
    List.concat_map
      (fun (subject, per_tool) ->
        List.map
          (fun (tool, cell) ->
            let o = cell.Experiment.outcome in
            [
              subject;
              Tool.display_name tool;
              string_of_int o.Tool.executions;
              Printf.sprintf "%.2f" o.Tool.wall_clock_s;
              Printf.sprintf "%.0f" o.Tool.execs_per_sec;
            ])
          per_tool)
      e.cells
  in
  Render.table ppf ~title:"Throughput: executions and wall clock per cell"
    ~header:[ "subject"; "tool"; "executions"; "wall (s)"; "execs/sec" ]
    rows

(* Contained misbehaviour per cell: fuel exhaustions and deduplicated
   crashes. Only cells that misbehaved are listed; a fully healthy grid
   renders a one-line all-clear instead of an empty table. *)
let resilience ppf (e : Experiment.t) =
  let rows =
    List.concat_map
      (fun (subject, per_tool) ->
        List.filter_map
          (fun (tool, cell) ->
            let o = cell.Experiment.outcome in
            if o.Tool.hangs = 0 && o.Tool.crash_total = 0 then None
            else
              Some
                [
                  subject;
                  Tool.display_name tool;
                  string_of_int o.Tool.hangs;
                  string_of_int o.Tool.crash_total;
                  string_of_int (List.length o.Tool.crashes);
                ])
          per_tool)
      e.cells
  in
  if rows = [] then
    Format.fprintf ppf "no hangs or contained crashes in any cell@."
  else
    Render.table ppf ~title:"Contained misbehaviour per cell"
      ~header:[ "subject"; "tool"; "hangs"; "crashes"; "unique crashes" ]
      rows

let failed_cells ppf (e : Experiment.t) =
  if e.failures <> [] then
    Render.table ppf
      ~title:"Failed cells (all retries exhausted; reported as all-zero)"
      ~header:[ "subject"; "tool"; "seed"; "error" ]
      (List.map
         (fun (f : Experiment.failure) ->
           [
             f.f_subject;
             Tool.display_name f.f_tool;
             string_of_int f.f_seed;
             f.f_error;
           ])
         e.failures)

let full ppf (e : Experiment.t) =
  Render.section ppf "Table 1";
  table_1 ppf e.subjects;
  Render.section ppf "Tables 2-4: token inventories";
  List.iter
    (fun (s : Subject.t) ->
      if List.mem s.name [ "json"; "tinyc"; "mjs" ] then token_inventory ppf s)
    e.subjects;
  Render.section ppf "Figure 2";
  figure_2 ppf e;
  Render.section ppf "Figure 3";
  figure_3 ppf e;
  Render.section ppf "Headline (Section 5.3)";
  headline ppf e;
  Render.section ppf "Incremental execution";
  cache_report ppf e;
  Render.section ppf "Throughput";
  throughput ppf e;
  Render.section ppf "Resilience";
  resilience ppf e;
  failed_cells ppf e
