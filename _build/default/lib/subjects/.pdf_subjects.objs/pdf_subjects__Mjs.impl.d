lib/subjects/mjs.ml: Helpers List Pdf_instr Pdf_taint Pdf_util Printf String Subject Token
