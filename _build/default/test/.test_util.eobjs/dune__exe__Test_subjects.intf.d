test/test_subjects.mli:
