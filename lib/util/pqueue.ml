(* [aux] is caller-owned scratch carried with the entry — the fuzzer
   caches each candidate's coverage-dependent score component there so a
   re-rank can adjust priorities incrementally instead of re-deriving
   them from the value. The queue itself never interprets it.

   Priorities live in a [float array] parallel to the entry array rather
   than in the entries themselves: a float field in a mixed record is
   boxed, so storing it there costs an allocation per push and a pointer
   chase per comparison, and sift comparisons are the hottest thing this
   module does. The parallel array keeps every priority unboxed. *)
type 'a entry = { seq : int; value : 'a; mutable aux : int }

type 'a t = {
  mutable prios : float array;  (* prios.(i) is heap.(i)'s priority *)
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

(* Sentinel entry filling every slot at index >= size. Vacated slots must
   not keep pointing at popped entries: the backing array would otherwise
   retain dead values (and their whole candidate payloads) until the slot
   happens to be overwritten. The sentinel is a single shared record whose
   payload is [()]; it is never returned, so the unsafe cast never
   escapes. *)
let dummy : unit entry = { seq = -1; value = (); aux = 0 }
let dummy_entry () : 'a entry = Obj.magic dummy

let create () = { prios = [||]; heap = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* Max-heap order between slots: higher priority first; on equal
   priority, lower seq (earlier insertion) first. Sequence numbers are
   unique, so this is a total order. Callers guarantee [i], [j] are live
   slots. *)
let[@inline] before t i j =
  let pi = Array.unsafe_get t.prios i and pj = Array.unsafe_get t.prios j in
  pi > pj
  || (pi = pj
      && (Array.unsafe_get t.heap i).seq < (Array.unsafe_get t.heap j).seq)

let swap t i j =
  let p = t.prios.(i) in
  t.prios.(i) <- t.prios.(j);
  t.prios.(j) <- p;
  let e = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- e

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = if l < t.size && before t l i then l else i in
  let best = if r < t.size && before t r best then r else best in
  if best <> i then begin
    swap t i best;
    sift_down t best
  end

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let nheap = Array.make ncap (dummy_entry ()) in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap;
    let nprios = Array.make ncap neg_infinity in
    Array.blit t.prios 0 nprios 0 t.size;
    t.prios <- nprios
  end

let push ?(aux = 0) t prio value =
  let entry = { seq = t.next_seq; value; aux } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.heap.(t.size) <- entry;
  t.prios.(t.size) <- prio;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(* Caller guarantees [size > 0]. *)
let remove_top t =
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    t.prios.(0) <- t.prios.(t.size);
    t.heap.(t.size) <- dummy_entry ();
    t.prios.(t.size) <- neg_infinity;
    sift_down t 0
  end
  else begin
    t.heap.(0) <- dummy_entry ();
    t.prios.(0) <- neg_infinity
  end

let pop t =
  if t.size = 0 then None
  else begin
    let v = t.heap.(0).value in
    remove_top t;
    Some v
  end

let pop_with_priority t =
  if t.size = 0 then None
  else begin
    let prio = t.prios.(0) in
    let v = t.heap.(0).value in
    remove_top t;
    Some (prio, v)
  end

let peek t = if t.size = 0 then None else Some t.heap.(0).value

let iter f t =
  for i = 0 to t.size - 1 do
    f t.heap.(i).value
  done

let heapify t =
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let rerank t f =
  for i = 0 to t.size - 1 do
    t.prios.(i) <- f t.heap.(i).value
  done;
  heapify t

(* Selective re-rank: [f value ~aux] returns [None] to leave an entry
   untouched or [Some (prio, aux)] to update it. The heap is restored
   only if something actually changed, so a delta that misses every
   pending entry costs one pass and no sifting. Equivalent to [rerank]
   whenever [f]'s [None] means "the recomputed priority equals the
   stored one": untouched entries keep bit-identical priorities and
   sequence numbers, so the heap pops in the same sequence a full
   rerank would produce. *)
let update t f =
  let changed = ref false in
  for i = 0 to t.size - 1 do
    let e = t.heap.(i) in
    match f e.value ~aux:e.aux with
    | None -> ()
    | Some (prio, aux) ->
      if prio <> t.prios.(i) then changed := true;
      t.prios.(i) <- prio;
      e.aux <- aux
  done;
  if !changed then heapify t

(* Selection for [drop_worst]: rearrange live slots so the [n] best
   under the total order occupy [0..n). Median-of-three Lomuto
   quickselect, average O(size) — replacing a full [Array.sort] whose
   O(size log size) comparator calls dominated truncation cost. The kept
   set is identical to what sorting kept ([before] is a total order, so
   "the best n" is unique), and pops from the rebuilt heap are
   layout-independent, so the change is invisible to results. *)
let partition t lo hi =
  let mid = lo + ((hi - lo) / 2) in
  (* Move the median of slots (lo, mid, hi) to [hi] as the pivot. *)
  let m =
    if before t lo mid then
      if before t mid hi then mid else if before t lo hi then hi else lo
    else if before t lo hi then lo
    else if before t mid hi then hi
    else mid
  in
  if m <> hi then swap t m hi;
  let store = ref lo in
  for i = lo to hi - 1 do
    if before t i hi then begin
      if i <> !store then swap t i !store;
      incr store
    end
  done;
  if !store <> hi then swap t !store hi;
  !store

let rec select t lo hi n =
  if lo < hi then begin
    let p = partition t lo hi in
    if p > n then select t lo (p - 1) n
    else if p < n - 1 then select t (p + 1) hi n
    (* p = n - 1 or p = n: every slot below [n] comes before every slot
       at or beyond it — selection done. *)
  end

let drop_worst t n =
  if t.size > n then begin
    let n = max 0 n in
    if n > 0 then select t 0 (t.size - 1) n;
    for i = n to t.size - 1 do
      t.heap.(i) <- dummy_entry ();
      t.prios.(i) <- neg_infinity
    done;
    t.size <- n;
    heapify t
  end

let to_list t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    acc := (t.prios.(i), t.heap.(i).value) :: !acc
  done;
  !acc

let snapshot t =
  let pairs = Array.init t.size (fun i -> (t.prios.(i), t.heap.(i))) in
  Array.sort (fun (_, a) (_, b) -> compare a.seq b.seq) pairs;
  Array.to_list (Array.map (fun (p, e) -> (p, e.value)) pairs)
