lib/core/heuristic.mli: Candidate Pdf_instr
