(** A queued input candidate together with the heuristic ingredients
    snapshotted from the run that produced it (§3.2: re-evaluating the
    queue must not re-run inputs, so everything the heuristic needs is
    stored alongside the input). *)

type t = {
  data : string;  (** the input to execute next *)
  repl : string;  (** the substitution that created it; [""] for seeds *)
  parents : int;  (** substitutions on the path from the initial input *)
  parent_coverage : Pdf_instr.Coverage.t;
      (** coverage of the creating run up to the last accepted character —
          diffed against the valid-branch set when (re)ranking *)
  avg_stack : float;  (** mean stack depth of the last two comparisons *)
  path_count : int;
      (** how often the creating run's path had already been seen *)
}

val seed : string -> t
(** A fresh random seed input with neutral metadata. *)

val pp : Format.formatter -> t -> unit
