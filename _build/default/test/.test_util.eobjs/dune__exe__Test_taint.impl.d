test/test_taint.ml: Alcotest Char List Pdf_taint QCheck QCheck_alcotest
