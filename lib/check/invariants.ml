module Rng = Pdf_util.Rng
module Coverage = Pdf_instr.Coverage
module Runner = Pdf_instr.Runner
module Subject = Pdf_subjects.Subject
module Pfuzzer = Pdf_core.Pfuzzer
module Experiment = Pdf_eval.Experiment
module Dist = Pdf_eval.Dist

type check = { name : string; ok : bool; detail : string }

type report = { subject : string; checks : check list }

(* {1 Reference queue model}

   A list in insertion order with explicit sequence numbers. Pop must
   return the entry with maximal priority, earliest insertion first on
   ties — exactly {!Pdf_util.Pqueue}'s contract. Snapshot events
   (rerank, truncation) replace the population while preserving relative
   insertion order. *)

module Queue_model = struct
  type entry = { prio : float; seq : int; data : string }

  type t = { mutable entries : entry list; mutable next_seq : int }

  let create () = { entries = []; next_seq = 0 }

  let fresh_seq t =
    let s = t.next_seq in
    t.next_seq <- s + 1;
    s

  let push t prio data =
    t.entries <- t.entries @ [ { prio; seq = fresh_seq t; data } ]

  let replace t snapshot =
    t.entries <- List.map (fun (prio, data) -> { prio; seq = fresh_seq t; data }) snapshot

  let best t =
    match t.entries with
    | [] -> None
    | e :: rest ->
      Some
        (List.fold_left
           (fun acc e ->
             if e.prio > acc.prio || (e.prio = acc.prio && e.seq < acc.seq) then e
             else acc)
           e rest)

  let remove t e = t.entries <- List.filter (fun e' -> e'.seq <> e.seq) t.entries
end

(* Replay the fuzzer's queue events; return the first violation. *)
let replay_queue_events config subject =
  let model = Queue_model.create () in
  let violation = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !violation = None then violation := Some m) fmt in
  let on_queue_event = function
    | Pfuzzer.Pushed (prio, data) -> Queue_model.push model prio data
    | Pfuzzer.Reranked snapshot | Pfuzzer.Truncated snapshot ->
      Queue_model.replace model snapshot
    | Pfuzzer.Popped (prio, data) -> begin
      match Queue_model.best model with
      | None -> fail "popped %S from an empty model queue" data
      | Some e ->
        if e.prio <> prio || e.data <> data then
          fail "popped (%g, %S) but model expected (%g, %S)" prio data e.prio
            e.data
        else Queue_model.remove model e
    end
  in
  ignore (Pfuzzer.fuzz ~on_queue_event config subject);
  !violation

(* {1 Trace/coverage agreement} *)

let first_occurrences trace =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  Array.iter
    (fun oid ->
      if not (Hashtbl.mem seen oid) then begin
        Hashtbl.add seen oid ();
        acc := oid :: !acc
      end)
    trace;
  Array.of_list (List.rev !acc)

let trace_agreement subject input =
  let traced = Subject.run ~track_trace:true subject input in
  let plain = Subject.run subject input in
  if first_occurrences traced.trace <> traced.touched then
    Some (Printf.sprintf "%S: touched is not the trace's first-occurrence order" input)
  else if not (Coverage.equal (Coverage.of_array traced.touched) traced.coverage) then
    Some (Printf.sprintf "%S: touched and the coverage bitset disagree" input)
  else if traced.touched <> plain.touched then
    Some (Printf.sprintf "%S: tracking the trace perturbed touched" input)
  else if Runner.path_hash traced <> Runner.path_hash plain then
    Some (Printf.sprintf "%S: path_hash unstable across runs" input)
  else if traced.verdict <> plain.verdict then
    Some (Printf.sprintf "%S: tracking the trace perturbed the verdict" input)
  else if
    not (Coverage.subset (Runner.coverage_up_to_last_index traced) traced.coverage)
  then Some (Printf.sprintf "%S: coverage_up_to_last_index not a subset" input)
  else None

(* {1 Incremental-execution equivalence}

   The prefix-snapshot cache must be a pure optimisation: a run resumed
   from a parent's suspension must be bit-identical to a full
   re-execution, and a whole fuzzing session with the cache on must
   produce exactly the executions and results of one with the cache
   off. *)

let runs_equal (a : Runner.run) (b : Runner.run) =
  a.input = b.input && a.verdict = b.verdict
  && a.comparisons = b.comparisons
  && Coverage.equal a.coverage b.coverage
  && a.trace = b.trace && a.touched = b.touched
  && a.eof_access = b.eof_access && a.max_depth = b.max_depth
  && a.frames = b.frames

(* Resume from every read boundary of [input]'s journal — both against
   the identical input and against one with a mutated suffix — and
   demand bit-identity with the corresponding full execution. *)
let snapshot_resume_identity subject machine input =
  let full, journal = Subject.exec_journaled subject machine input in
  let resume_diverged p =
    match Runner.snapshot_at journal p with
    | None -> None
    | Some snap ->
      let resumed, _ = Runner.resume snap input in
      if not (runs_equal full resumed) then
        Some (Printf.sprintf "%S: resume at %d diverged from full execution" input p)
      else
        let mutated = String.sub input 0 p ^ "}X" in
        let full_m, _ = Subject.exec_journaled subject machine mutated in
        let resumed_m, _ = Runner.resume snap mutated in
        if not (runs_equal full_m resumed_m) then
          Some
            (Printf.sprintf "%S: resume at %d on a mutated suffix diverged" input p)
        else None
  in
  let rec check p =
    if p > String.length input then None
    else match resume_diverged p with Some _ as v -> v | None -> check (p + 1)
  in
  check 1

(* {1 The checks} *)

(* Deliberately ignores wall-clock timing and cache accounting (hit
   counts, rescues): those legitimately differ between cache-on/off,
   interrupted/uninterrupted and slow/fast runs of the same campaign. *)
let results_equal (a : Pfuzzer.result) (b : Pfuzzer.result) =
  a.valid_inputs = b.valid_inputs
  && Coverage.equal a.valid_coverage b.valid_coverage
  && a.executions = b.executions
  && a.candidates_created = b.candidates_created
  && a.queue_peak = b.queue_peak
  && a.first_valid_at = b.first_valid_at
  && a.dedupe_resets = b.dedupe_resets
  && a.path_resets = b.path_resets
  && a.hangs = b.hangs
  && a.crash_total = b.crash_total
  && a.crashes = b.crashes
  && Pdf_instr.Hits.equal a.hits b.hits

let run ?(execs = 400) ?(seed = 1) subject =
  let checks = ref [] in
  let add name ok detail = checks := { name; ok; detail } :: !checks in
  let config = { Pfuzzer.default_config with seed; max_executions = execs } in
  let r1 = Pfuzzer.fuzz config subject in
  let r2 = Pfuzzer.fuzz config subject in
  add "pfuzzer-determinism" (results_equal r1 r2)
    (if results_equal r1 r2 then
       Printf.sprintf "%d executions, %d valid inputs, bit-identical twice"
         r1.executions (List.length r1.valid_inputs)
     else "two runs from the same seed diverged");
  (* Incremental ≡ full: the same seeded session with the prefix cache on
     and off must execute exactly the same inputs with bit-identical
     observations and results. *)
  let exec_stream incremental =
    let runs = ref [] in
    let result =
      Pfuzzer.fuzz
        ~on_execution:(fun r -> runs := r :: !runs)
        { config with incremental } subject
    in
    (result, List.rev !runs)
  in
  let r_inc, runs_inc = exec_stream true in
  let r_full, runs_full = exec_stream false in
  let streams_equal =
    List.length runs_inc = List.length runs_full
    && List.for_all2 runs_equal runs_inc runs_full
  in
  let incremental_ok = results_equal r_inc r_full && streams_equal in
  add "incremental-equivalence" incremental_ok
    (if incremental_ok then
       Printf.sprintf
         "%d executions bit-identical with cache on/off (%d hits, %d chars saved)%s"
         r_inc.executions r_inc.cache.hits r_inc.cache.chars_saved
         (if subject.Subject.machine = None then
            " — no machine-form parser, cache inert" else "")
     else if not streams_equal then
       "per-execution run streams diverge between incremental and full"
     else "aggregate results diverge between incremental and full");
  (* Cross-engine equivalence: the same seeded session through the
     compiled tier and through the interpreted tier must execute exactly
     the same inputs with bit-identical observations and results — the
     staged recognizers' contract that staging never changes what a
     parser observes. Checked on both the incremental path
     (exec_compiled + replay snapshots) and the cold path (exec_staged). *)
  let engine_stream engine incremental =
    let runs = ref [] in
    let result =
      Pfuzzer.fuzz
        ~on_execution:(fun r -> runs := r :: !runs)
        { config with engine; incremental }
        subject
    in
    (result, List.rev !runs)
  in
  let engine_pair_equal incremental =
    let r_c, runs_c = engine_stream Pfuzzer.Compiled incremental in
    let r_i, runs_i = engine_stream Pfuzzer.Interpreted incremental in
    results_equal r_c r_i
    && List.length runs_c = List.length runs_i
    && List.for_all2 runs_equal runs_c runs_i
  in
  let engines_ok = engine_pair_equal true && engine_pair_equal false in
  add "engine-equivalence" engines_ok
    (if engines_ok then
       Printf.sprintf "compiled and interpreted tiers bit-identical%s"
         (if subject.Subject.compiled = None then
            " — no staged recognizer, compiled tier inert"
          else " (incremental and cold paths)")
     else "compiled and interpreted engines diverge");
  (* Snapshot/resume identity at every read boundary of sample inputs. *)
  (match subject.Subject.machine with
   | None ->
     add "snapshot-resume-identity" true "no machine-form parser; skipped"
   | Some machine ->
     let rng = Rng.make (seed + 23) in
     let sample =
       (let rec take n = function
          | x :: rest when n > 0 -> x :: take (n - 1) rest
          | _ -> []
        in
        take 8 r1.valid_inputs)
       @ List.init 8 (fun _ -> Producer.random_input rng)
     in
     (match
        List.find_map (snapshot_resume_identity subject machine) sample
      with
      | None ->
        add "snapshot-resume-identity" true
          (Printf.sprintf "%d inputs resumed at every read boundary"
             (List.length sample))
      | Some violation -> add "snapshot-resume-identity" false violation));
  (* Checkpoint/resume equivalence: capture a checkpoint mid-campaign,
     round-trip it through the wire encoding, resume it (with a cold
     prefix cache) and demand the same campaign as the uninterrupted
     run — timing and cache accounting aside. *)
  let captured = ref None in
  let _interrupted : Pfuzzer.result =
    Pfuzzer.fuzz
      ~checkpoint_every:(max 1 (execs / 3))
      ~on_checkpoint:(fun ck -> if !captured = None then captured := Some ck)
      config subject
  in
  (match !captured with
   | None ->
     add "checkpoint-resume-equivalence" false "no checkpoint was captured"
   | Some ck ->
     (match Pfuzzer.Checkpoint.(decode (encode ck)) with
      | Error e ->
        add "checkpoint-resume-equivalence" false
          (Printf.sprintf "encode/decode round-trip failed: %s" e)
      | Ok ck' ->
        let resumed = Pfuzzer.resume_from ck' subject in
        let equal = results_equal r1 resumed in
        add "checkpoint-resume-equivalence" equal
          (if equal then
             Printf.sprintf
               "interrupted at execution %d, resumed to an identical campaign"
               (Pfuzzer.Checkpoint.executions ck')
           else "resumed campaign diverged from the uninterrupted run")));
  (match replay_queue_events config subject with
   | None ->
     add "queue-priority-monotonicity" true
       (Printf.sprintf "%d candidates replayed against the model"
          r1.candidates_created)
   | Some violation -> add "queue-priority-monotonicity" false violation);
  (* Coverage-union monotonicity: replay the valid inputs in discovery
     order. Each must be accepted, contribute new coverage over its
     predecessors, and their union must be the reported set. *)
  let union = ref Coverage.empty in
  let monotone = ref true in
  let why = ref "" in
  List.iter
    (fun input ->
      let run = Subject.run subject input in
      if not (Runner.accepted run) then begin
        monotone := false;
        why := Printf.sprintf "reported valid input %S is not accepted" input
      end
      else if Coverage.new_against run.coverage ~baseline:!union = 0 then begin
        monotone := false;
        why := Printf.sprintf "valid input %S added no new coverage" input
      end;
      let extended = Coverage.union !union run.coverage in
      if not (Coverage.subset !union extended) then begin
        monotone := false;
        why := "coverage union shrank"
      end;
      union := extended)
    r1.valid_inputs;
  if !monotone && not (Coverage.equal !union r1.valid_coverage) then begin
    monotone := false;
    why := "union of valid inputs' coverage differs from reported valid_coverage"
  end;
  add "coverage-union-monotonicity" !monotone
    (if !monotone then
       Printf.sprintf "%d valid inputs, %d outcomes"
         (List.length r1.valid_inputs)
         (Coverage.cardinal !union)
     else !why);
  (* Grid determinism: the parallel evaluation must be bit-identical to
     the sequential one. *)
  let econfig =
    {
      Experiment.budget_units = execs * 100;
      seeds = [ seed; seed + 1 ];
      verbose = false;
    }
  in
  let sequential = Experiment.run ~jobs:1 econfig [ subject ] in
  let parallel = Experiment.run ~jobs:3 econfig [ subject ] in
  add "grid-determinism"
    (Experiment.equal sequential parallel)
    (if Experiment.equal sequential parallel then "jobs:1 = jobs:3 on the full tool grid"
     else "jobs:1 and jobs:3 grids differ");
  (* Distributed equivalence: the same campaign through the in-process
     sequential reference and through fleets of 1, 2 and 4 workers must
     merge to one bit-identical result — the shard plan, not the
     process topology, defines the campaign. Grid determinism above has
     already spawned domains, and OCaml 5 forbids [Unix.fork] for the
     rest of the process's life after that, so the fleets here go
     through [Dist.simulate_campaign] — same plan, assignment, wire
     encode/decode and merge, minus the fork (forked campaigns are
     exercised by [test_dist] and the CLI, which fork first). *)
  let dist_shards = 4 in
  let dist_ref = Dist.reference ~shards:dist_shards config subject in
  let frame_every = max 1 (execs / (2 * dist_shards)) in
  let dist_results =
    List.map
      (fun workers ->
        Dist.simulate_campaign ~workers ~shards:dist_shards ~frame_every
          config subject)
      [ 1; 2; 4 ]
  in
  let dist_vs_ref = List.for_all (results_equal dist_ref) dist_results in
  let dist_bytes = List.map (fun r -> Marshal.to_string r []) dist_results in
  let dist_bitwise =
    match dist_bytes with
    | first :: rest -> List.for_all (String.equal first) rest
    | [] -> false
  in
  add "dist-equivalence"
    (dist_vs_ref && dist_bitwise)
    (if dist_vs_ref && dist_bitwise then
       Printf.sprintf
         "reference = workers:1 = workers:2 = workers:4 (%d shards, in-process protocol)"
         dist_shards
     else if not dist_vs_ref then
       "a simulated campaign diverged from the sequential reference"
     else "merged results differ bitwise across worker counts");
  (* Trace/coverage agreement over a mixed sample: the fuzzer's valid
     inputs plus random strings. *)
  let rng = Rng.make (seed + 17) in
  let sample =
    (let rec take n = function
       | x :: rest when n > 0 -> x :: take (n - 1) rest
       | _ -> []
     in
     take 15 r1.valid_inputs)
    @ List.init 30 (fun _ -> Producer.random_input rng)
  in
  (match List.find_map (trace_agreement subject) sample with
   | None ->
     add "trace-coverage-agreement" true
       (Printf.sprintf "%d inputs cross-checked" (List.length sample))
   | Some violation -> add "trace-coverage-agreement" false violation);
  { subject = subject.Subject.name; checks = List.rev !checks }

let ok r = List.for_all (fun c -> c.ok) r.checks

let pp_report ppf r =
  Format.fprintf ppf "invariants %s:" r.subject;
  List.iter
    (fun c ->
      Format.fprintf ppf "@.  [%s] %s: %s"
        (if c.ok then "ok" else "FAIL")
        c.name c.detail)
    r.checks
