lib/subjects/csv.mli: Subject
