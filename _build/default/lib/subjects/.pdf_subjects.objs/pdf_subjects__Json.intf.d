lib/subjects/json.mli: Subject
