(** Domain-pool execution of independent tasks (OCaml 5 [Domain]s).

    The evaluation grid is embarrassingly parallel: every
    (tool, subject, seed) cell is a pure function of its arguments, so
    the cells can be fanned out across domains and merged back in a
    deterministic order. Tasks must not share mutable state; every
    fuzzer run in this repository builds its own RNG, queue and tables,
    and registries are only mutated at module initialisation, before any
    domain is spawned. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism to
    use when the caller asks for "as many workers as make sense". *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] computes [List.map f items], running up to
    [jobs] tasks concurrently on separate domains. Results are returned
    in input order regardless of completion order, so output is
    deterministic whenever [f] is. [jobs] is honoured as requested,
    clamped only to the number of items (use {!default_jobs} for a
    machine-sized pool);
    with [jobs <= 1] (the default) this {e is} [List.map f items] — same
    order of evaluation, no domain is spawned. If [f] raises, the first
    exception in input order is re-raised after all workers finish. *)

val map_retry :
  ?jobs:int ->
  ?retries:int ->
  ?backoff_s:float ->
  ?on_retry:(index:int -> attempt:int -> exn -> unit) ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn) result list
(** Resilient {!map}: a task whose [f] raises (including one whose
    worker domain died mid-task) does not sink the whole grid. The first
    pass runs exactly like {!map} but captures each item's outcome as a
    [result]; failed items are then retried up to [retries] (default 2)
    more times, sequentially on the calling domain, sleeping
    [backoff_s × attempt] seconds before each retry (default 0 — tasks
    here are deterministic, so backoff only matters for callers whose
    failures are environmental). [on_retry ~index ~attempt e] fires just
    before each retry with the input-order index of the failing item and
    the exception from the previous attempt. The returned list is in
    input order; [Error e] marks an item whose every attempt failed,
    carrying the last exception. This function itself never raises. *)
