lib/instr/ctx.ml: Array Bytes Comparison Coverage Frame Fun List Pdf_taint Pdf_util Printf Site String
