(** The paper's evaluation protocol (§5.1): every tool runs on every
    subject with the same budget, repeated over several seeds, and the
    best run per (tool, subject) is reported. *)

type config = {
  budget_units : int;  (** virtual units; see {!Tool}. *)
  seeds : int list;  (** one run per seed; best is kept *)
  verbose : bool;  (** print progress lines while running *)
}

val default_config : config
(** 2,000,000 units (AFL 2M executions, pFuzzer/KLEE 20k), seed [1],
    quiet. *)

type cell = {
  outcome : Tool.outcome;  (** the best run for this (tool, subject) *)
  coverage_percent : float;
  found_tags : string list;
}

type failure = {
  f_subject : string;
  f_tool : Tool.name;
  f_seed : int;
  f_error : string;  (** printed exception from the last attempt *)
}
(** A grid cell whose every execution attempt (first run plus retries)
    raised. Its contribution to {!t.cells} is the all-zero
    {!Tool.empty_outcome}. *)

type t = {
  config : config;
  subjects : Pdf_subjects.Subject.t list;
  cells : (string * (Tool.name * cell) list) list;
      (** subject name → per-tool best cells *)
  failures : failure list;
      (** cells abandoned after exhausting their retries, in grid
          order; empty for a healthy evaluation *)
}

val run :
  ?tools:Tool.name list ->
  ?jobs:int ->
  ?retries:int ->
  ?trace:out_channel ->
  config ->
  Pdf_subjects.Subject.t list ->
  t
(** Execute the full grid. Best per cell = highest valid-input branch
    coverage, ties broken by number of tokens found. [jobs] (default 1:
    strictly sequential, bit-identical to the historical behaviour) fans
    the independent (tool, subject, seed) cells across a {!Parallel}
    domain pool; the merge order is deterministic, so the resulting
    cells are identical to the sequential run for the same seeds.

    [trace] streams every cell's telemetry as JSONL to the channel: each
    cell records into a private buffer headed by a [cell] event naming
    its (tool, subject, seed) coordinates, and the buffers are written in
    grid order after all cells finish — so the merged trace has the same
    structure for any [jobs] (timestamps aside; see
    {!Pdf_obs.Trace.normalize}).

    A cell whose run raises is retried up to [retries] (default 2) more
    times on the main domain ({!Parallel.map_retry}); each retry emits a
    [retry] event into the merged trace, and a cell that exhausts its
    retries is recorded in {!t.failures} with an all-zero outcome instead
    of aborting the grid. *)

val cell : t -> string -> Tool.name -> cell
(** Lookup; raises [Not_found] for an unknown subject/tool. *)

val equal : t -> t -> bool
(** Cell-wise semantic equality: same grid shape and, per cell, the same
    valid inputs, executions, coverage set, coverage percentage and found
    tokens. The determinism invariant [run ~jobs:1 ≡ run ~jobs:n] is
    checked with this. *)

val headline : t -> min_len:int -> max_len:int -> (Tool.name * float) list
(** Token share per tool in a length band, across all subjects in the
    experiment. *)
