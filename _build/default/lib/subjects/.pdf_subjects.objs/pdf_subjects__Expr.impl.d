lib/subjects/expr.ml: Helpers List Pdf_instr String Subject Token
