lib/afl/afl.mli: Pdf_instr Pdf_subjects
