(** One-call correctness harness: differential and invariant passes over
    a set of subjects, as exposed by [pfuzzer check]. *)

type subject_outcome = {
  differential : Differential.report option;
      (** [None] when the subject has no reference oracle *)
  invariants : Invariants.report;
  chaos : Invariants.report option;
      (** present only when the harness ran with [~chaos:true] *)
}

type t = { outcomes : (string * subject_outcome) list }

val run :
  ?execs:int -> ?seed:int -> ?chaos:bool -> Pdf_subjects.Subject.t list -> t
(** [run subjects] checks every subject: a differential pass against its
    oracle (when {!Oracle.find} knows one) and the full invariant
    suite. [execs] (default 2000) is the per-subject differential
    execution budget; invariants run on a quarter of it. [chaos]
    (default false) additionally runs the {!Chaos} fault-injection
    drills on the same quarter budget. *)

val ok : t -> bool
(** No disagreements and no failed invariant checks. *)

val pp : Format.formatter -> t -> unit

val checked_subjects : unit -> Pdf_subjects.Subject.t list
(** The catalog subjects that have reference oracles — the default
    subject set of [pfuzzer check]. *)
