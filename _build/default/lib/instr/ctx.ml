module Tchar = Pdf_taint.Tchar
module Tstring = Pdf_taint.Tstring
module Taint = Pdf_taint.Taint
module Charset = Pdf_util.Charset

exception Reject of string
exception Out_of_fuel

type t = {
  registry : Site.registry;
  text : string;
  mutable cursor : int;
  mutable eof_access : bool;
  mutable seq : int;
  mutable comparisons : Comparison.t list; (* reverse order *)
  covered : Bytes.t; (* dense outcome presence, indexed by outcome id *)
  mutable touched : int list; (* outcomes covered, first-occurrence order *)
  mutable rev_trace : int list;
  mutable trace_len : int;
  mutable stack : int;
  mutable max_stack : int;
  mutable fuel : int;
  track_comparisons : bool;
  track_frames : bool;
  mutable rev_frames : Frame.event list;
}

let make ~registry ?(fuel = 100_000) ?(track_comparisons = true)
    ?(track_frames = false) text =
  {
    registry;
    text;
    cursor = 0;
    eof_access = false;
    seq = 0;
    comparisons = [];
    covered = Bytes.make (2 * Site.site_count registry) '\000';
    touched = [];
    rev_trace = [];
    trace_len = 0;
    stack = 0;
    max_stack = 0;
    fuel;
    track_comparisons;
    track_frames;
    rev_frames = [];
  }

let pos t = t.cursor
let input t = t.text
let at_eof t = t.cursor >= String.length t.text
let depth t = t.stack

let peek t =
  if at_eof t then begin
    t.eof_access <- true;
    None
  end
  else Some (Tchar.input t.cursor t.text.[t.cursor])

let next t =
  match peek t with
  | None -> None
  | Some _ as c ->
    t.cursor <- t.cursor + 1;
    c

let record_outcome t oid =
  if Bytes.get t.covered oid = '\000' then begin
    Bytes.set t.covered oid '\001';
    t.touched <- oid :: t.touched
  end;
  t.rev_trace <- oid :: t.rev_trace;
  t.trace_len <- t.trace_len + 1

let cover t site = record_outcome t (Site.outcome site true)

let branch t site cond =
  record_outcome t (Site.outcome site cond);
  cond

let enter_frame t site =
  cover t site;
  t.stack <- t.stack + 1;
  if t.stack > t.max_stack then t.max_stack <- t.stack;
  if t.track_frames then
    t.rev_frames <- Frame.Enter { site; pos = t.cursor } :: t.rev_frames

let exit_frame t =
  t.stack <- t.stack - 1;
  if t.track_frames then
    t.rev_frames <- Frame.Exit { pos = t.cursor } :: t.rev_frames

let with_frame t site f =
  enter_frame t site;
  Fun.protect ~finally:(fun () -> exit_frame t) f

let tick t =
  if t.fuel <= 0 then raise Out_of_fuel;
  t.fuel <- t.fuel - 1

let emit t ~index ~kind ~result =
  if t.track_comparisons then begin
  let event =
    {
      Comparison.seq = t.seq;
      trace_pos = t.trace_len;
      index;
      kind;
      result;
      stack_depth = t.stack;
    }
  in
  t.seq <- t.seq + 1;
  t.comparisons <- event :: t.comparisons
  end

(* A comparison against a tainted character: record the branch outcome
   always; log the comparison event only when the operand actually derives
   from the input (constants have nothing to substitute). *)
let compare_tainted t site (c : Tchar.t) kind result =
  (match Taint.max_index c.taint with
   | None -> ()
   | Some index -> emit t ~index ~kind ~result);
  branch t site result

let eq t site c expected =
  compare_tainted t site c (Comparison.Char_eq expected) (c.Tchar.ch = expected)

let in_range t site c lo hi =
  let result = c.Tchar.ch >= lo && c.Tchar.ch <= hi in
  compare_tainted t site c (Comparison.Char_range (lo, hi)) result

let in_set t site ~label c set =
  compare_tainted t site c (Comparison.Char_set (set, label)) (Charset.mem c.Tchar.ch set)

let one_of t site c chars =
  in_set t site ~label:(Printf.sprintf "one-of %S" chars) c (Charset.of_string chars)

(* Instrumented strcmp. Walk the token and the keyword in lockstep,
   emitting a per-position character event; on a mismatch after partial
   progress, additionally emit the keyword-suffix event whose replacement
   completes the keyword in one substitution. *)
let str_eq t site (tok : Tstring.t) keyword =
  let tok_len = Tstring.length tok and kw_len = String.length keyword in
  let next_input_index () =
    (* Position just past the token in the input: where an extension of
       the token would have to appear. *)
    match Taint.max_index (Tstring.taint tok) with
    | Some i -> Some (i + 1)
    | None -> None
  in
  let emit_char_event i result =
    let c = Tstring.get tok i in
    match Taint.max_index c.Tchar.taint with
    | None -> ()
    | Some index -> emit t ~index ~kind:(Comparison.Char_eq keyword.[i]) ~result
  in
  let emit_suffix_event ~index ~offset =
    emit t ~index ~kind:(Comparison.Str_eq { expected = keyword; offset }) ~result:false
  in
  let rec walk i =
    if i >= tok_len && i >= kw_len then true (* full match *)
    else if i >= tok_len then begin
      (* Token is a proper prefix of the keyword: the mismatch is at the
         position just past the token. *)
      (match next_input_index () with
       | None -> ()
       | Some index ->
         emit t ~index ~kind:(Comparison.Char_eq keyword.[i]) ~result:false;
         if i > 0 then emit_suffix_event ~index ~offset:i);
      false
    end
    else if i >= kw_len then begin
      (* Token is longer than the keyword: no substitution can help at
         this position, but record the failed comparison for coverage. *)
      (match Taint.max_index (Tstring.get tok i).Tchar.taint with
       | None -> ()
       | Some index ->
         emit t ~index
           ~kind:(Comparison.Str_eq { expected = keyword; offset = kw_len })
           ~result:false);
      false
    end
    else if (Tstring.get tok i).Tchar.ch = keyword.[i] then begin
      emit_char_event i true;
      walk (i + 1)
    end
    else begin
      emit_char_event i false;
      (match Taint.max_index (Tstring.get tok i).Tchar.taint with
       | Some index when i > 0 -> emit_suffix_event ~index ~offset:i
       | Some _ | None -> ());
      false
    end
  in
  branch t site (walk 0)

(* §7.2 token-taint recovery: a parser that demands a specific token can
   report the expectation at the token's input position even though the
   token value itself carries no direct data flow. On mismatch the event's
   replacement is the expected spelling, to be spliced at [at]. *)
let expect_token t site ~at ~spelling ~matched =
  if not matched then
    emit t ~index:at
      ~kind:(Comparison.Str_eq { expected = spelling; offset = 0 })
      ~result:false;
  branch t site matched

let reject _t reason = raise (Reject reason)

let comparisons t = List.rev t.comparisons
let coverage t = Coverage.of_list t.touched

let trace t =
  let arr = Array.make t.trace_len 0 in
  let rec fill i = function
    | [] -> ()
    | x :: rest ->
      arr.(i) <- x;
      fill (i - 1) rest
  in
  fill (t.trace_len - 1) t.rev_trace;
  arr

let eof_access t = t.eof_access
let max_depth t = t.max_stack
let frames t = Array.of_list (List.rev t.rev_frames)
