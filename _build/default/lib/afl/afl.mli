(** The AFL-like baseline: a coverage-guided mutational fuzzer.

    Faithful to the paper's comparison setup: seeded with a single space
    character (§5.1), guided only by edge-coverage novelty, mutating
    blindly with AFL's deterministic and havoc stages. An input enters
    the queue when its classified edge bitmap shows new bits; the valid
    corpus is the set of accepted queue entries, which is what the paper
    measures token and code coverage on. *)

type config = {
  seed : int;
  max_executions : int;
  seed_input : string;  (** the paper uses a single space *)
  havoc_per_entry : int;  (** havoc executions per queue cycle entry *)
  deterministic_limit : int;
      (** skip deterministic stages for inputs longer than this *)
}

val default_config : config

type result = {
  valid_inputs : string list;  (** accepted queue entries, discovery order *)
  valid_coverage : Pdf_instr.Coverage.t;
      (** union coverage of the valid inputs *)
  executions : int;
  queue_length : int;  (** total interesting entries found *)
  bitmap_density : int;  (** nonzero cells in the virgin map *)
}

val fuzz :
  ?on_valid:(string -> unit) -> config -> Pdf_subjects.Subject.t -> result
