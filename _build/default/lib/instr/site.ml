type kind = Block | Branch

type t = { id : int; name : string; kind : kind }

type registry = {
  reg_name : string;
  mutable next_id : int;
  mutable declared : t list; (* reverse declaration order *)
  names : (string, unit) Hashtbl.t;
}

let create_registry reg_name =
  { reg_name; next_id = 0; declared = []; names = Hashtbl.create 64 }

let declare registry name kind =
  if Hashtbl.mem registry.names name then
    invalid_arg (Printf.sprintf "Site: duplicate site %S in registry %S" name registry.reg_name);
  Hashtbl.add registry.names name ();
  let site = { id = registry.next_id; name; kind } in
  registry.next_id <- registry.next_id + 1;
  registry.declared <- site :: registry.declared;
  site

let block registry name = declare registry name Block
let branch registry name = declare registry name Branch

let kind t = t.kind
let name t = t.name
let id t = t.id

(* Outcome ids are dense: site [i] owns outcomes [2i] and [2i+1]; a block
   only ever emits [2i]. *)
let outcome t taken =
  match t.kind with
  | Block -> 2 * t.id
  | Branch -> (2 * t.id) + if taken then 1 else 0

let registry_name r = r.reg_name
let site_count r = r.next_id

let total_outcomes r =
  List.fold_left
    (fun acc s -> acc + match s.kind with Block -> 1 | Branch -> 2)
    0 r.declared

let sites r = List.rev r.declared

let outcome_name r oid =
  let sid = oid / 2 in
  match List.find_opt (fun s -> s.id = sid) r.declared with
  | None -> Printf.sprintf "<unknown outcome %d>" oid
  | Some s ->
    (match s.kind with
     | Block -> s.name
     | Branch -> Printf.sprintf "%s:%s" s.name (if oid land 1 = 1 then "taken" else "fall"))
