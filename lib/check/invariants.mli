(** Machine-checked invariants of the fuzzer's own machinery, run
    against a live {!Pdf_core.Pfuzzer} search under a seeded RNG.

    Checked:
    - {b determinism}: two runs from the same seed are identical;
    - {b queue-priority monotonicity}: every queue operation the fuzzer
      performs, replayed against a reference model (sorted list with
      insertion-order tie-break), pops exactly the entry the model
      predicts;
    - {b coverage-union monotonicity}: the reported valid coverage is
      the union of the valid inputs' coverage, and each valid input
      contributed branches new at its discovery time (Algorithm 1's
      [runCheck] condition);
    - {b engine equivalence}: the compiled execution tier and the
      interpreted tier produce bit-identical per-execution streams and
      results, on both the incremental and cold paths — staging is a
      pure optimisation;
    - {b checkpoint/resume equivalence}: a campaign interrupted at a
      checkpoint and resumed from the encode/decode round-trip of that
      checkpoint produces exactly the uninterrupted campaign (timing and
      cache accounting aside);
    - {b grid determinism}: [Experiment.run ~jobs:1] and [~jobs:3]
      produce semantically equal cells;
    - {b distributed equivalence}: the same campaign through
      {!Pdf_eval.Dist}'s in-process sequential reference and through
      forked fleets of 1, 2 and 4 workers merges to one bit-identical
      result — worker count, scheduling and frame arrival order are
      invisible in the merged campaign;
    - {b trace/coverage agreement}: the [touched] first-occurrence
      order, the coverage bitset, [coverage_up_to_last_index] and
      [path_hash] are mutually consistent, and opting into the full
      trace does not perturb any of them. *)

type check = { name : string; ok : bool; detail : string }

type report = { subject : string; checks : check list }

val results_equal : Pdf_core.Pfuzzer.result -> Pdf_core.Pfuzzer.result -> bool
(** Timing- and cache-insensitive campaign equality: same valid inputs,
    coverage, branch hit-counts, execution/candidate/queue counters,
    hang count and crash corpus. Wall-clock fields and cache accounting
    (including snapshot rescues) are deliberately ignored — they may
    differ between runs that are semantically the same campaign. *)

val runs_equal : Pdf_instr.Runner.run -> Pdf_instr.Runner.run -> bool
(** Full observational equality of two executions: input, verdict,
    comparison log, coverage, trace, touched order, EOF accesses, stack
    depth and frames. Timing is the only field excluded. *)

val run : ?execs:int -> ?seed:int -> Pdf_subjects.Subject.t -> report
(** [run subject] drives the fuzzer for [execs] (default 400)
    executions with [seed] (default 1) and evaluates every invariant. *)

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit
