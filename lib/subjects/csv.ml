module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site
module Charset = Pdf_util.Charset

let registry = Site.create_registry "csv"
let s_parse = Site.block registry "parse"
let s_record = Site.block registry "record"
let s_field = Site.block registry "field"
let s_quoted = Site.block registry "quoted"
let b_quote_open = Site.branch registry "field.quote?"
let b_bare_char = Site.branch registry "field.bare-char?"
let b_quote_close = Site.branch registry "quoted.quote?"
let b_quote_escape = Site.branch registry "quoted.escaped-quote?"
let b_comma = Site.branch registry "record.comma?"
let b_newline = Site.branch registry "parse.newline?"
let b_final_eof = Site.branch registry "parse.final-eof"

let bare_chars = Charset.complement (Charset.of_string ",\"\n")

module Machine = Pdf_instr.Machine
module K = Helpers.K

let quoted (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_quoted
    (fun k ->
      let rec body ctx =
        K.next
          (fun c ctx ->
            match c with
            | None -> Ctx.reject ctx "unterminated quoted field"
            | Some c ->
              if Ctx.eq ctx b_quote_close c '"' then
                (* A doubled quote continues the field. *)
                K.peek
                  (fun c2 ctx ->
                    match c2 with
                    | Some c2 when Ctx.eq ctx b_quote_escape c2 '"' ->
                      K.skip body ctx
                    | Some _ | None -> k ctx)
                  ctx
              else body ctx)
          ctx
      in
      K.skip (* opening quote *) body)
    k ctx

let field (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_field
    (fun k ->
      K.peek (fun c ctx ->
          match c with
          | None -> k ctx
          | Some c ->
            if Ctx.eq ctx b_quote_open c '"' then quoted k ctx
            else K.skip_set b_bare_char ~label:"bare-char" bare_chars k ctx))
    k ctx

let record (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_record
    (fun k ->
      let rec more ctx =
        K.eat_if b_comma ',' (fun ate -> if ate then field more else k) ctx
      in
      field more)
    k ctx

let machine : Machine.recognizer =
 fun ctx ->
  K.with_frame s_parse
    (fun k ->
      let rec rest ctx =
        K.peek
          (fun c ctx ->
            match c with
            | None ->
              ignore (Ctx.branch ctx b_final_eof true);
              k ctx
            | Some c ->
              if Ctx.eq ctx b_newline c '\n' then
                (* After a newline, either another record follows or the
                   input ends; the peek doubles as the trailing-newline
                   EOF probe for extensibility. *)
                K.skip
                  (K.peek (fun c2 ctx ->
                       match c2 with
                       | None -> k ctx
                       | Some _ -> record rest ctx))
                  ctx
              else Ctx.reject ctx "unexpected character after field")
          ctx
      in
      record rest)
    K.stop ctx

let parse ctx = Machine.run ctx machine

(* {1 Staged (compiled) form}

   CSV has no recursive nesting either, so the whole recognizer stages
   at module initialisation: the quoted-field scan, the comma loop and
   the record/newline cycle all close over themselves with [C.fix], the
   bare-field scan is a static [skip_set] cycle, and a steady-state run
   allocates no step nodes. *)
module C = Pdf_instr.Compiled

let sl_quote_open = C.slot_eq b_quote_open '"'
let sl_quote_close = C.slot_eq b_quote_close '"'
let sl_quote_escape = C.slot_eq b_quote_escape '"'
let sl_newline = C.slot_eq b_newline '\n'

let compiled : C.t =
  let quoted (k : C.k) : C.k =
    C.with_frame s_quoted
      (fun k ->
        let body =
          C.fix (fun body ->
              let skip_body = C.skip body in
              let after_quote =
                (* A doubled quote continues the field. *)
                C.peek (fun c2 ->
                    fun ctx ->
                      match c2 with
                      | Some c2 when Ctx.eq_slot ctx sl_quote_escape c2 '"' ->
                        skip_body ctx
                      | Some _ | None -> k ctx)
              in
              C.next (fun c ->
                  fun ctx ->
                    match c with
                    | None -> Ctx.reject ctx "unterminated quoted field"
                    | Some c ->
                      if Ctx.eq_slot ctx sl_quote_close c '"' then
                        after_quote ctx
                      else body ctx))
        in
        C.skip (* opening quote *) body)
      k
  in
  let field (k : C.k) : C.k =
    C.with_frame s_field
      (fun k ->
        let q = quoted k in
        let bare = C.skip_set b_bare_char ~label:"bare-char" bare_chars k in
        C.peek (fun c ->
            fun ctx ->
              match c with
              | None -> k ctx
              | Some c ->
                if Ctx.eq_slot ctx sl_quote_open c '"' then q ctx
                else bare ctx))
      k
  in
  let record (k : C.k) : C.k =
    C.with_frame s_record
      (fun k ->
        let more =
          C.fix (fun more ->
              C.eat_if b_comma ',' (fun ate -> if ate then field more else k))
        in
        field more)
      k
  in
  C.with_frame s_parse
    (fun k ->
      let rest =
        C.fix (fun rest ->
            let rec_rest = record rest in
            let after_nl =
              (* After a newline, either another record follows or the
                 input ends; the peek doubles as the trailing-newline EOF
                 probe for extensibility. *)
              C.peek (fun c2 -> match c2 with None -> k | Some _ -> rec_rest)
            in
            let skip_after = C.skip after_nl in
            C.peek (fun c ->
                fun ctx ->
                  match c with
                  | None ->
                    ignore (Ctx.branch ctx b_final_eof true);
                    k ctx
                  | Some c ->
                    if Ctx.eq_slot ctx sl_newline c '\n' then skip_after ctx
                    else Ctx.reject ctx "unexpected character after field"))
      in
      record rest)
    C.stop

let tokens = [ Token.literal ","; Token.make "field" 1 ]

let tokenize input =
  let tags = ref [] in
  let push tag = if not (List.mem tag !tags) then tags := tag :: !tags in
  String.iter
    (fun c ->
      match c with
      | ',' -> push ","
      | '\n' -> ()
      | _ -> push "field")
    input;
  List.rev !tags

let subject =
  {
    Subject.name = "csv";
    description = "comma-separated values (paper subject: csvparser)";
    registry;
    parse;
    machine = Some machine;
    compiled = Some compiled;
    compiled_preferred = true;
    fuel = 100_000;
    tokens;
    tokenize;
    original_loc = 297;
  }
