module Iset = Set.Make (Int)

type t = Iset.t

let empty = Iset.empty
let add = Iset.add
let mem = Iset.mem
let union = Iset.union
let diff = Iset.diff
let cardinal = Iset.cardinal
let is_empty = Iset.is_empty
let of_list = Iset.of_list
let to_list = Iset.elements
let new_against c ~baseline = Iset.cardinal (Iset.diff c baseline)
let percent c registry = Pdf_util.Stats.ratio (Iset.cardinal c) (Site.total_outcomes registry)
let equal = Iset.equal
