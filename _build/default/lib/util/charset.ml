(* A char set is eight 32-bit words packed in immediate OCaml ints;
   character [c] lives in word [c/32], bit [c mod 32]. Plain ints keep
   the hot [mem] test allocation-free — the previous int64 encoding
   boxed every intermediate word. *)
type t = {
  w0 : int;
  w1 : int;
  w2 : int;
  w3 : int;
  w4 : int;
  w5 : int;
  w6 : int;
  w7 : int;
}

let mask32 = 0xffff_ffff

let empty = { w0 = 0; w1 = 0; w2 = 0; w3 = 0; w4 = 0; w5 = 0; w6 = 0; w7 = 0 }

let full =
  {
    w0 = mask32;
    w1 = mask32;
    w2 = mask32;
    w3 = mask32;
    w4 = mask32;
    w5 = mask32;
    w6 = mask32;
    w7 = mask32;
  }

let word t i =
  match i with
  | 0 -> t.w0
  | 1 -> t.w1
  | 2 -> t.w2
  | 3 -> t.w3
  | 4 -> t.w4
  | 5 -> t.w5
  | 6 -> t.w6
  | 7 -> t.w7
  | _ -> assert false

let with_word t i w =
  match i with
  | 0 -> { t with w0 = w }
  | 1 -> { t with w1 = w }
  | 2 -> { t with w2 = w }
  | 3 -> { t with w3 = w }
  | 4 -> { t with w4 = w }
  | 5 -> { t with w5 = w }
  | 6 -> { t with w6 = w }
  | 7 -> { t with w7 = w }
  | _ -> assert false

let bit c = 1 lsl (Char.code c land 31)
let idx c = Char.code c lsr 5

let add c t =
  let i = idx c in
  with_word t i (word t i lor bit c)

let remove c t =
  let i = idx c in
  with_word t i (word t i land lnot (bit c))

let mem c t = word t (idx c) land bit c <> 0

let singleton c = add c empty
let of_list cs = List.fold_left (fun t c -> add c t) empty cs

let of_string s =
  let t = ref empty in
  String.iter (fun c -> t := add c !t) s;
  !t

let range lo hi =
  let t = ref empty in
  for c = Char.code lo to Char.code hi do
    t := add (Char.chr c) !t
  done;
  !t

let map2 f a b =
  {
    w0 = f a.w0 b.w0;
    w1 = f a.w1 b.w1;
    w2 = f a.w2 b.w2;
    w3 = f a.w3 b.w3;
    w4 = f a.w4 b.w4;
    w5 = f a.w5 b.w5;
    w6 = f a.w6 b.w6;
    w7 = f a.w7 b.w7;
  }

let union = map2 ( lor )
let inter = map2 ( land )
let diff a b = map2 (fun x y -> x land lnot y land mask32) a b
let complement t = diff full t

let popcount32 x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t =
  popcount32 t.w0 + popcount32 t.w1 + popcount32 t.w2 + popcount32 t.w3
  + popcount32 t.w4 + popcount32 t.w5 + popcount32 t.w6 + popcount32 t.w7

let is_empty t =
  t.w0 = 0 && t.w1 = 0 && t.w2 = 0 && t.w3 = 0 && t.w4 = 0 && t.w5 = 0
  && t.w6 = 0 && t.w7 = 0

let equal a b =
  a.w0 = b.w0 && a.w1 = b.w1 && a.w2 = b.w2 && a.w3 = b.w3 && a.w4 = b.w4
  && a.w5 = b.w5 && a.w6 = b.w6 && a.w7 = b.w7

let subset a b = is_empty (diff a b)

let iter f t =
  for c = 0 to 255 do
    let ch = Char.chr c in
    if mem ch t then f ch
  done

let fold f t init =
  let acc = ref init in
  iter (fun c -> acc := f c !acc) t;
  !acc

let to_list t = List.rev (fold (fun c acc -> c :: acc) t [])

let min_elt t =
  let rec go c = if c > 255 then None else if mem (Char.chr c) t then Some (Char.chr c) else go (c + 1) in
  go 0

let pick rng t =
  let n = cardinal t in
  if n = 0 then None
  else begin
    let k = Rng.int rng n in
    let found = ref None and seen = ref 0 in
    (try
       iter
         (fun c ->
           if !seen = k then begin
             found := Some c;
             raise Exit
           end;
           incr seen)
         t
     with Exit -> ());
    !found
  end

let digits = range '0' '9'
let letters = union (range 'a' 'z') (range 'A' 'Z')
let printable = range ' ' '~'

let pp ppf t =
  Format.fprintf ppf "{";
  iter
    (fun c ->
      if c >= ' ' && c <= '~' then Format.fprintf ppf "%c" c
      else Format.fprintf ppf "\\x%02x" (Char.code c))
    t;
  Format.fprintf ppf "}"
