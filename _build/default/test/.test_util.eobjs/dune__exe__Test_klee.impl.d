test/test_klee.ml: Alcotest Char List Pdf_instr Pdf_klee Pdf_subjects Pdf_util QCheck QCheck_alcotest String
