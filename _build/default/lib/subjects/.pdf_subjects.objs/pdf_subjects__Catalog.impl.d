lib/subjects/catalog.ml: Csv Expr Ini Json List Mjs Paren Subject Tinyc
