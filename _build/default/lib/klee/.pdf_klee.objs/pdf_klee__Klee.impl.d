lib/klee/klee.ml: Array Hashtbl List Option Path_constraint Pdf_instr Pdf_subjects Pdf_util Solver String
