lib/eval/pipeline.ml: List Pdf_afl Pdf_core Pdf_instr Pdf_klee Pdf_subjects Tool
