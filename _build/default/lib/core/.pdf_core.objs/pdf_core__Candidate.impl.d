lib/core/candidate.ml: Format Pdf_instr
