test/test_grammar.ml: Alcotest Format List Pdf_grammar Pdf_instr Pdf_subjects Pdf_util Printf QCheck QCheck_alcotest String
