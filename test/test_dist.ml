(* Tests for distributed campaign orchestration: the semilattice laws of
   the coordinator's frame merge (on adversarial QCheck frames), a
   model-based replay of a recorded 2-worker campaign against the
   sequential reference, frame-decode damage (truncation, version skew,
   digest corruption, interleaved partial frames), and forked end-to-end
   campaigns — workers:1 = workers:2 = workers:4 bit-identical, worker
   death + replay included. *)

module Dist = Pdf_eval.Dist
module Frame = Dist.Frame
module Merge = Dist.Merge
module Pfuzzer = Pdf_core.Pfuzzer
module Coverage = Pdf_instr.Coverage
module Hits = Pdf_instr.Hits
module Catalog = Pdf_subjects.Catalog
module Invariants = Pdf_check.Invariants
module Event = Pdf_obs.Event
module Metrics = Pdf_obs.Metrics
module Rng = Pdf_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let subject name =
  try Catalog.find name
  with Not_found -> Alcotest.failf "no subject %S in the catalog" name

(* {1 Frame generators}

   Adversarial by design: colliding shard ids, colliding sequence
   numbers, progress and final frames mixed freely. The merge laws must
   hold on these, not just on well-formed campaign traffic. *)

let mk_result ~valid ~cov ~hits ~execs ~hangs =
  {
    Pfuzzer.valid_inputs = valid;
    valid_coverage = Coverage.of_list cov;
    hits = Hits.of_list hits;
    engine = "compiled";
    executions = execs;
    candidates_created = 2 * execs;
    queue_peak = execs / 2;
    first_valid_at = (if valid = [] then None else Some (1 + (execs / 3)));
    dedupe_resets = 0;
    path_resets = 0;
    cache = Pfuzzer.no_cache_stats;
    crashes = [];
    crash_total = 0;
    hangs;
    wall_clock_s = 0.0;
    execs_per_sec = 0.0;
  }

let gen_result =
  QCheck.Gen.(
    let* valid = small_list (string_size (int_range 0 3)) in
    let* cov = small_list (int_range 0 40) in
    let* hits = small_list (pair (int_range 0 20) (int_range 1 4)) in
    let* execs = int_range 0 60 in
    let* hangs = int_range 0 3 in
    return (mk_result ~valid ~cov ~hits ~execs ~hangs))

let gen_metrics =
  QCheck.Gen.(
    let* present = bool in
    if not present then return None
    else
      let* clock = int_range 0 5 in
      let* execs = int_range 0 100 in
      let m = Metrics.create () in
      Metrics.add (Metrics.counter m "shard/executions") execs;
      return (Some (Metrics.snapshot ~origin:0 ~clock m)))

let gen_frame =
  QCheck.Gen.(
    let* shard = int_range 0 3 in
    let* seq = int_range 0 5 in
    let* final = bool in
    let* result = gen_result in
    let* metrics = gen_metrics in
    return { Frame.shard; seq; final; result; metrics })

let arb_frames =
  QCheck.make
    ~print:(fun fs ->
      String.concat ";"
        (List.map
           (fun (f : Frame.t) ->
             Printf.sprintf "(shard %d, seq %d%s)" f.shard f.seq
               (if f.final then ", final" else ""))
           fs))
    QCheck.Gen.(list_size (int_range 0 12) gen_frame)

let state_of frames = List.fold_left Merge.add Merge.empty frames

(* {1 Merge laws} *)

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge join is commutative" ~count:300
    (QCheck.pair arb_frames arb_frames)
    (fun (fa, fb) ->
      let a = state_of fa and b = state_of fb in
      Merge.equal (Merge.join a b) (Merge.join b a))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge join is associative" ~count:300
    (QCheck.triple arb_frames arb_frames arb_frames)
    (fun (fa, fb, fc) ->
      let a = state_of fa and b = state_of fb and c = state_of fc in
      Merge.equal
        (Merge.join a (Merge.join b c))
        (Merge.join (Merge.join a b) c))

let prop_merge_idempotent =
  QCheck.Test.make ~name:"merge join is idempotent" ~count:300 arb_frames
    (fun fs ->
      let a = state_of fs in
      Merge.equal (Merge.join a a) a)

let prop_merge_arrival_order_invariant =
  QCheck.Test.make ~name:"fold order and duplicate delivery are invisible"
    ~count:300
    (QCheck.pair arb_frames QCheck.small_int)
    (fun (fs, seed) ->
      let arr = Array.of_list fs in
      Rng.shuffle (Rng.make seed) arr;
      (* Shuffled, and with every frame delivered twice. *)
      let twice = Array.to_list arr @ Array.to_list arr in
      Merge.equal (state_of fs) (state_of twice))

(* {1 Frame wire format} *)

let sample_frame ?(shard = 0) ?(seq = 5) ?(final = true) () =
  {
    Frame.shard;
    seq;
    final;
    result =
      mk_result ~valid:[ "()"; "(())" ] ~cov:[ 1; 4; 9 ]
        ~hits:[ (1, 3); (4, 1) ] ~execs:40 ~hangs:1;
    metrics = None;
  }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_reject name fragment = function
  | Ok _ -> Alcotest.failf "%s: damaged frame was accepted" name
  | Error reason ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: reason %S mentions %S" name reason fragment)
      true (contains reason fragment)

let test_frame_roundtrip () =
  let f = sample_frame () in
  match Frame.decode_body (Frame.encode_body f) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok f' ->
    Alcotest.(check string) "canonical bytes survive the round-trip"
      (Frame.encode_body f) (Frame.encode_body f');
    Alcotest.(check bool) "fields survive" true
      (f'.Frame.shard = f.Frame.shard
      && f'.seq = f.seq && f'.final = f.final
      && f'.result.Pfuzzer.executions = f.result.Pfuzzer.executions)

let corrupt_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Bytes.to_string b

let test_frame_damage () =
  let body = Frame.encode_body (sample_frame ()) in
  (* Truncation below the fixed header. *)
  check_reject "short" "too short" (Frame.decode_body (String.sub body 0 10));
  (* Wrong magic. *)
  check_reject "magic" "bad magic" (Frame.decode_body (corrupt_byte body 0));
  (* Version skew alone: digest still matches, skew is reported. *)
  check_reject "version" "version mismatch" (Frame.decode_body (corrupt_byte body 6));
  (* Payload corruption alone. *)
  check_reject "digest" "digest mismatch"
    (Frame.decode_body (corrupt_byte body (String.length body - 1)));
  (* Corruption AND a bumped version byte: precedence says the digest
     verdict wins — rot is never misreported as skew. *)
  check_reject "digest-before-version" "digest mismatch"
    (Frame.decode_body
       (corrupt_byte (corrupt_byte body 6) (String.length body - 1)))

(* {1 Streaming decoder} *)

let feed_string d s =
  Frame.Decoder.feed d (Bytes.of_string s) (String.length s)

let feed_chunked d chunk s =
  let n = String.length s in
  let rec go i =
    if i < n then begin
      let len = min chunk (n - i) in
      feed_string d (String.sub s i len);
      go (i + len)
    end
  in
  go 0

let drain d =
  let rec go acc =
    match Frame.Decoder.next d with
    | `Frame f -> go (`Frame f :: acc)
    | `Reject r -> go (`Reject r :: acc)
    | `Await -> List.rev acc
  in
  go []

let test_decoder_interleaved_partials () =
  (* Three frames fed 7 bytes at a time: every chunk boundary lands
     mid-frame somewhere, several frames straddle a single feed. *)
  let frames =
    [
      sample_frame ~shard:0 ~seq:1 ~final:false ();
      sample_frame ~shard:1 ~seq:2 ~final:false ();
      sample_frame ~shard:0 ~seq:9 ~final:true ();
    ]
  in
  let wire = String.concat "" (List.map Frame.encode frames) in
  let d = Frame.Decoder.create () in
  feed_chunked d 7 wire;
  let got = drain d in
  Alcotest.(check int) "three frames decoded" 3 (List.length got);
  List.iter2
    (fun (expect : Frame.t) out ->
      match out with
      | `Frame (f : Frame.t) ->
        Alcotest.(check bool) "frame order and identity preserved" true
          (f.shard = expect.shard && f.seq = expect.seq && f.final = expect.final)
      | `Reject r -> Alcotest.failf "unexpected reject: %s" r)
    frames got;
  Alcotest.(check (option string)) "clean EOF" None (Frame.Decoder.finish d)

let test_decoder_damaged_frame_resync () =
  (* good | corrupted | good, split into 5-byte chunks: the damaged
     body is rejected with its one-line reason and the stream picks
     back up at the next length prefix. *)
  let g1 = Frame.encode (sample_frame ~shard:0 ~seq:1 ()) in
  let bad =
    let whole = Frame.encode (sample_frame ~shard:1 ~seq:2 ()) in
    corrupt_byte whole (String.length whole - 2)
  in
  let g2 = Frame.encode (sample_frame ~shard:2 ~seq:3 ()) in
  let d = Frame.Decoder.create () in
  feed_chunked d 5 (g1 ^ bad ^ g2);
  (match drain d with
   | [ `Frame f1; `Reject reason; `Frame f2 ] ->
     Alcotest.(check int) "first frame" 0 f1.Frame.shard;
     Alcotest.(check bool) "one-line digest reason" true
       (String.length reason > 0
       && not (String.contains reason '\n')
       && f2.Frame.shard = 2)
   | outs -> Alcotest.failf "expected frame/reject/frame, got %d outputs" (List.length outs));
  Alcotest.(check (option string)) "clean EOF" None (Frame.Decoder.finish d)

let test_decoder_truncation () =
  let wire = Frame.encode (sample_frame ()) in
  (* Cut inside the length prefix. *)
  let d = Frame.Decoder.create () in
  feed_string d (String.sub wire 0 2);
  Alcotest.(check bool) "awaiting" true (drain d = []);
  (match Frame.Decoder.finish d with
   | Some reason ->
     Alcotest.(check bool) "prefix truncation named" true
       (String.length reason > 0 && not (String.contains reason '\n'))
   | None -> Alcotest.fail "truncated length prefix went unreported");
  (* Cut inside the body. *)
  let d = Frame.Decoder.create () in
  feed_string d (String.sub wire 0 (String.length wire - 3));
  Alcotest.(check bool) "awaiting body" true (drain d = []);
  (match Frame.Decoder.finish d with
   | Some _ -> ()
   | None -> Alcotest.fail "truncated body went unreported")

let test_decoder_implausible_length () =
  let d = Frame.Decoder.create () in
  feed_string d "\xff\xff\xff\xff garbage follows";
  (match drain d with
   | [ `Reject reason ] ->
     Alcotest.(check bool) "implausible length named" true
       (String.length reason > 0 && not (String.contains reason '\n'))
   | _ -> Alcotest.fail "garbage length prefix not rejected");
  (* The stream is dead, not crashed: further bytes are swallowed. *)
  feed_string d "more garbage";
  Alcotest.(check bool) "dead stream stays quiet" true (drain d = []);
  Alcotest.(check (option string)) "dead stream EOF is clean" None
    (Frame.Decoder.finish d)

(* {1 Model-based replay}

   Record the frame streams a 2-worker campaign would produce (each
   worker's shards run in-process, frames captured instead of piped),
   interleave them in several adversarial delivery orders, and demand
   that every fold reaches the same state and that the merged result
   equals the sequential reference. *)

let record_shard_frames p subject (sh : Dist.shard) =
  let frames = ref [] in
  let send f = frames := f :: !frames in
  let cfg = Dist.shard_config p sh in
  let result =
    Pfuzzer.fuzz ~checkpoint_every:20
      ~on_checkpoint:(fun ck ->
        send
          {
            Frame.shard = sh.Dist.shard_id;
            seq = Pfuzzer.Checkpoint.executions ck;
            final = false;
            result = Pfuzzer.Checkpoint.partial_result ck;
            metrics = None;
          })
      cfg subject
  in
  send
    {
      Frame.shard = sh.Dist.shard_id;
      seq = sh.Dist.shard_budget + 1;
      final = true;
      result = { result with Pfuzzer.wall_clock_s = 0.0; execs_per_sec = 0.0 };
      metrics = None;
    };
  List.rev !frames

let test_model_replay () =
  let subject = subject "paren" in
  let config = { Pfuzzer.default_config with max_executions = 240; seed = 11 } in
  let p = Dist.plan ~shards:4 config in
  (* Worker 0 owns shards 0 and 2, worker 1 owns 1 and 3 — the
     campaign's round-robin deal. *)
  let stream w =
    List.concat_map
      (fun sh -> record_shard_frames p subject sh)
      (List.filter (fun (sh : Dist.shard) -> sh.Dist.shard_id mod 2 = w) p.Dist.shards)
  in
  let w0 = stream 0 and w1 = stream 1 in
  let rec interleave = function
    | [], rest | rest, [] -> rest
    | a :: ra, b :: rb -> a :: b :: interleave (ra, rb)
  in
  let deliveries =
    [
      w0 @ w1;  (* worker 0 entirely first *)
      w1 @ w0;  (* worker 1 entirely first *)
      interleave (w0, w1);  (* frame-by-frame alternation *)
      interleave (w1, w0) @ w0;  (* alternation plus duplicate delivery *)
    ]
  in
  let states = List.map state_of deliveries in
  (match states with
   | first :: rest ->
     List.iteri
       (fun i st ->
         Alcotest.(check bool)
           (Printf.sprintf "delivery order %d folds to the same state" (i + 1))
           true (Merge.equal first st))
       rest
   | [] -> assert false);
  let finals =
    List.map
      (fun (f : Frame.t) ->
        Alcotest.(check bool) "completed state holds final frames" true f.final;
        f.result)
      (Merge.frames (List.hd states))
  in
  let merged = Dist.merge_results p finals in
  let reference = Dist.reference ~shards:4 config subject in
  Alcotest.(check bool)
    "replayed 2-worker campaign equals the sequential reference" true
    (Invariants.results_equal reference merged)

(* {1 Forked campaigns} *)

let campaign_bytes (o : Dist.outcome) = Marshal.to_string o.result []

let test_campaign_worker_invariance () =
  let subject = subject "expr" in
  let config = { Pfuzzer.default_config with max_executions = 300; seed = 7 } in
  let reference = Dist.reference ~shards:4 config subject in
  let outcomes =
    List.map
      (fun workers ->
        Dist.run_campaign ~workers ~shards:4 ~frame_every:40 config subject)
      [ 1; 2; 4 ]
  in
  List.iter
    (fun (o : Dist.outcome) ->
      Alcotest.(check (list (pair int string))) "no frames rejected" []
        o.frames_rejected;
      Alcotest.(check bool) "forked campaign equals the reference" true
        (Invariants.results_equal reference o.result))
    outcomes;
  match List.map campaign_bytes outcomes with
  | first :: rest ->
    List.iteri
      (fun i bytes ->
        Alcotest.(check bool)
          (Printf.sprintf "workers:1 and workers:%d bit-identical" (2 * (i + 1)))
          true
          (String.equal first bytes))
      rest
  | [] -> assert false

let test_campaign_kill_worker () =
  let subject = subject "json" in
  let config = { Pfuzzer.default_config with max_executions = 1200; seed = 3 } in
  let undisturbed =
    Dist.run_campaign ~workers:2 ~shards:4 ~frame_every:10 config subject
  in
  let killed =
    Dist.run_campaign ~workers:2 ~shards:4 ~frame_every:10 ~kill_worker:1 config
      subject
  in
  Alcotest.(check string)
    "merged result identical despite a SIGKILLed worker"
    (campaign_bytes undisturbed) (campaign_bytes killed);
  (* The kill should normally land mid-campaign; when it does, the
     worker's missing shards must have been replayed. *)
  (match List.assoc_opt 1 killed.worker_status with
   | Some status when String.length status >= 6 && String.sub status 0 6 = "signal"
     ->
     Alcotest.(check bool) "killed worker's shards were replayed" true
       (killed.replays > 0)
   | Some _ | None -> ())

let test_campaign_traces_in_shard_order () =
  let subject = subject "paren" in
  let config = { Pfuzzer.default_config with max_executions = 160; seed = 2 } in
  let o =
    Dist.run_campaign ~workers:2 ~shards:3 ~frame_every:50 ~trace:true config
      subject
  in
  let p = o.o_plan in
  Alcotest.(check int) "one trace stream per shard"
    (List.length p.Dist.shards)
    (List.length o.shard_traces);
  List.iter2
    (fun (sh : Dist.shard) stream ->
      match String.index_opt stream '\n' with
      | None -> Alcotest.fail "empty shard trace stream"
      | Some nl -> (
        match Event.of_json_line (String.sub stream 0 nl) with
        | { Event.ev = Event.Run_meta m; _ } ->
          Alcotest.(check int)
            (Printf.sprintf "shard %d stream starts with its own run_meta"
               sh.Dist.shard_id)
            sh.Dist.shard_seed m.seed
        | _ -> Alcotest.fail "shard trace does not start with run_meta"))
    p.Dist.shards o.shard_traces

let test_campaign_lifecycle_events () =
  let subject = subject "paren" in
  let config = { Pfuzzer.default_config with max_executions = 120; seed = 4 } in
  let sink, contents = Pdf_obs.Trace.buffer () in
  let obs = Pdf_obs.Observer.create ~sink () in
  let o = Dist.run_campaign ~workers:2 ~shards:2 ~frame_every:30 ~obs config subject in
  Pdf_obs.Trace.close sink;
  let events =
    String.split_on_char '\n' (contents ())
    |> List.filter (fun l -> String.length l > 0)
    |> List.map Event.of_json_line
  in
  let count pred = List.length (List.filter pred events) in
  Alcotest.(check int) "one shard event per plan entry" 2
    (count (fun e -> match e.Event.ev with Event.Shard _ -> true | _ -> false));
  Alcotest.(check int) "one spawn per worker" 2
    (count (fun e ->
         match e.Event.ev with Event.Worker_spawn _ -> true | _ -> false));
  Alcotest.(check int) "one exit per worker" 2
    (count (fun e ->
         match e.Event.ev with Event.Worker_exit _ -> true | _ -> false));
  Alcotest.(check int) "every accepted frame has an event" o.frames_accepted
    (count (fun e ->
         match e.Event.ev with Event.Worker_frame _ -> true | _ -> false));
  Alcotest.(check bool) "final frames observed for both shards" true
    (count (fun e ->
         match e.Event.ev with
         | Event.Worker_frame { final = true; _ } -> true
         | _ -> false)
    = 2)

(* {1 Plan determinism} *)

let test_plan_determinism () =
  let config = { Pfuzzer.default_config with max_executions = 103; seed = 9 } in
  let p1 = Dist.plan ~shards:4 config in
  let p2 = Dist.plan ~shards:4 config in
  Alcotest.(check bool) "equal configs give equal plans" true (p1 = p2);
  let budgets = List.map (fun (sh : Dist.shard) -> sh.Dist.shard_budget) p1.Dist.shards in
  Alcotest.(check int) "budgets cover the campaign" 103
    (List.fold_left ( + ) 0 budgets);
  Alcotest.(check (list int)) "remainder goes to the low shards"
    [ 26; 26; 26; 25 ] budgets;
  let seeds = List.map (fun (sh : Dist.shard) -> sh.Dist.shard_seed) p1.Dist.shards in
  Alcotest.(check bool) "shard seeds are pairwise distinct" true
    (List.length (List.sort_uniq compare seeds) = List.length seeds)

let () =
  Alcotest.run "dist"
    [
      ( "merge-laws",
        [
          qtest prop_merge_commutative;
          qtest prop_merge_associative;
          qtest prop_merge_idempotent;
          qtest prop_merge_arrival_order_invariant;
        ] );
      ( "wire-format",
        [
          Alcotest.test_case "encode/decode round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "damage is rejected with one-line reasons" `Quick
            test_frame_damage;
        ] );
      ( "decoder",
        [
          Alcotest.test_case "interleaved partial frames" `Quick
            test_decoder_interleaved_partials;
          Alcotest.test_case "damaged frame then resync" `Quick
            test_decoder_damaged_frame_resync;
          Alcotest.test_case "truncation at EOF" `Quick test_decoder_truncation;
          Alcotest.test_case "implausible length kills the stream" `Quick
            test_decoder_implausible_length;
        ] );
      ( "model-replay",
        [
          Alcotest.test_case "recorded 2-worker campaign = reference" `Quick
            test_model_replay;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "plan is deterministic" `Quick test_plan_determinism;
          Alcotest.test_case "workers:1 = workers:2 = workers:4" `Quick
            test_campaign_worker_invariance;
          Alcotest.test_case "SIGKILLed worker is replayed" `Slow
            test_campaign_kill_worker;
          Alcotest.test_case "per-shard traces in shard order" `Quick
            test_campaign_traces_in_shard_order;
          Alcotest.test_case "coordinator lifecycle events" `Quick
            test_campaign_lifecycle_events;
        ] );
    ]
