let section ppf title =
  let line = String.make (String.length title + 4) '=' in
  Format.fprintf ppf "@.%s@.= %s =@.%s@." line title line

let table ppf ~title ~header rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Render.table: row arity mismatch")
    rows;
  let cols = List.length header in
  let widths = Array.make cols 0 in
  let measure row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  measure header;
  List.iter measure rows;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let print_row row =
    Format.fprintf ppf "| %s |@." (String.concat " | " (List.mapi pad row))
  in
  let rule =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  Format.fprintf ppf "@.%s@.%s@." title rule;
  print_row header;
  Format.fprintf ppf "%s@." rule;
  List.iter print_row rows;
  Format.fprintf ppf "%s@." rule

let bar ~max_width ~max_value v =
  let w =
    if max_value <= 0.0 then 0
    else int_of_float (float_of_int max_width *. v /. max_value +. 0.5)
  in
  String.make w '#'

let bar_chart ppf ~title ?(max_width = 50) ?(unit_label = "") rows =
  let max_value = List.fold_left (fun acc (_, v) -> max acc v) 0.0 rows in
  let label_width = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows in
  Format.fprintf ppf "@.%s@." title;
  List.iter
    (fun (label, v) ->
      Format.fprintf ppf "  %-*s | %s %.1f%s@." label_width label
        (bar ~max_width ~max_value v) v unit_label)
    rows

let grouped_bar_chart ppf ~title ~series ?(max_width = 50) rows =
  List.iter
    (fun (_, vs) ->
      if List.length vs <> List.length series then
        invalid_arg "Render.grouped_bar_chart: series arity mismatch")
    rows;
  let max_value =
    List.fold_left (fun acc (_, vs) -> List.fold_left max acc vs) 0.0 rows
  in
  let label_width =
    List.fold_left (fun acc s -> max acc (String.length s)) 0 series
  in
  Format.fprintf ppf "@.%s@." title;
  List.iter
    (fun (group, vs) ->
      Format.fprintf ppf "%s@." group;
      List.iter2
        (fun s v ->
          Format.fprintf ppf "  %-*s | %s %.1f@." label_width s
            (bar ~max_width ~max_value v) v)
        series vs)
    rows
