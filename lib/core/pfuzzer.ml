module Rng = Pdf_util.Rng
module Pqueue = Pdf_util.Pqueue
module Coverage = Pdf_instr.Coverage
module Runner = Pdf_instr.Runner
module Comparison = Pdf_instr.Comparison
module Subject = Pdf_subjects.Subject

type config = {
  seed : int;
  max_executions : int;
  max_input_len : int;
  heuristic : Heuristic.variant;
  queue_bound : int;
  dedupe : bool;
}

let default_config =
  {
    seed = 1;
    max_executions = 2000;
    max_input_len = 64;
    heuristic = Heuristic.Prose;
    queue_bound = 50_000;
    dedupe = true;
  }

type result = {
  valid_inputs : string list;
  valid_coverage : Coverage.t;
  executions : int;
  candidates_created : int;
  queue_peak : int;
  first_valid_at : int option;
  dedupe_resets : int;
}

type queue_event =
  | Pushed of float * string
  | Popped of float * string
  | Reranked of (float * string) list
  | Truncated of (float * string) list

type state = {
  config : config;
  subject : Subject.t;
  rng : Rng.t;
  queue : Candidate.t Pqueue.t;
  on_queue_event : (queue_event -> unit) option;
  mutable vbr : Coverage.t;  (* branches covered by valid inputs *)
  mutable valid_rev : string list;
  mutable executions : int;
  mutable candidates_created : int;
  mutable queue_peak : int;
  mutable first_valid_at : int option;
  mutable dedupe_resets : int;
  path_counts : (int, int) Hashtbl.t;
  seen_inputs : (string, unit) Hashtbl.t;
  on_valid : string -> unit;
}

(* The dedupe table would otherwise grow without bound over a long run:
   every distinct candidate string ever queued stays referenced. Cap it
   at a small multiple of the queue bound and reset generationally —
   after a reset some early duplicates may be re-executed once, which is
   cheap compared to retaining millions of dead strings. *)
let seen_inputs_cap config = 4 * config.queue_bound

let emit st event =
  match st.on_queue_event with None -> () | Some f -> f (event ())

(* Queue snapshot for the observer, in insertion order. Only built when
   an observer is installed (see [emit]'s laziness). *)
let observed_snapshot st =
  List.map (fun (prio, (c : Candidate.t)) -> (prio, c.data)) (Pqueue.snapshot st.queue)

exception Budget_exhausted

let execute st input =
  if st.executions >= st.config.max_executions then raise Budget_exhausted;
  st.executions <- st.executions + 1;
  Subject.run st.subject input

(* Observe a completed run's path and return how often it had been seen
   before (the novelty signal of §3.2). *)
let note_path st run =
  let h = Runner.path_hash run in
  let count = Option.value ~default:0 (Hashtbl.find_opt st.path_counts h) in
  Hashtbl.replace st.path_counts h (count + 1);
  count

let push_candidate st (candidate : Candidate.t) =
  let fresh =
    (not st.config.dedupe) || not (Hashtbl.mem st.seen_inputs candidate.data)
  in
  if fresh && String.length candidate.data <= st.config.max_input_len then begin
    if st.config.dedupe then begin
      if Hashtbl.length st.seen_inputs >= seen_inputs_cap st.config then begin
        Hashtbl.reset st.seen_inputs;
        st.dedupe_resets <- st.dedupe_resets + 1
      end;
      Hashtbl.replace st.seen_inputs candidate.data ()
    end;
    st.candidates_created <- st.candidates_created + 1;
    let prio = Heuristic.score st.config.heuristic ~vbr:st.vbr candidate in
    Pqueue.push st.queue prio candidate;
    emit st (fun () -> Pushed (prio, candidate.data));
    (* Truncate with hysteresis: a full drop sorts the heap, so only do
       it after the queue has doubled past its bound. *)
    if Pqueue.length st.queue > 2 * st.config.queue_bound then begin
      Pqueue.drop_worst st.queue st.config.queue_bound;
      emit st (fun () -> Truncated (observed_snapshot st))
    end;
    st.queue_peak <- max st.queue_peak (Pqueue.length st.queue)
  end

(* Algorithm 1, [addInputs]: one child per comparison made against the
   last compared input position, splicing in the expected character(s). *)
let add_inputs st ~(parent : Candidate.t) (run : Runner.run) =
  match Runner.substitution_index run with
  | None -> ()
  | Some index ->
    let parent_coverage = Runner.coverage_up_to_last_index run in
    let avg_stack = Runner.avg_stack_of_last_two run in
    let path_count = note_path st run in
    let prefix = String.sub run.input 0 (min index (String.length run.input)) in
    let comps = Runner.comparisons_at_last_index run in
    List.iter
      (fun (comp : Comparison.t) ->
        List.iter
          (fun repl ->
            let data = prefix ^ repl in
            if data <> run.input then
              push_candidate st
                {
                  Candidate.data;
                  repl;
                  parents = parent.parents + 1;
                  parent_coverage;
                  avg_stack;
                  path_count;
                })
          (Comparison.replacements st.rng comp))
      comps

(* Algorithm 1, [validInp]: report, extend vBr, re-rank the queue. *)
let valid_input st ~(parent : Candidate.t) (run : Runner.run) =
  st.valid_rev <- run.input :: st.valid_rev;
  if st.first_valid_at = None then st.first_valid_at <- Some st.executions;
  st.on_valid run.input;
  st.vbr <- Coverage.union st.vbr run.coverage;
  Pqueue.rerank st.queue (fun candidate ->
      Heuristic.score st.config.heuristic ~vbr:st.vbr candidate);
  emit st (fun () -> Reranked (observed_snapshot st));
  add_inputs st ~parent run

(* Algorithm 1, [runCheck]: an input counts as valid only if it is
   accepted and covers branches no previous valid input covered. *)
let run_check st ~parent input =
  let run = execute st input in
  if Runner.accepted run && Coverage.new_against run.coverage ~baseline:st.vbr > 0
  then begin
    valid_input st ~parent run;
    (true, run)
  end
  else (false, run)

let random_char st = String.make 1 (Rng.printable st.rng)

let fuzz ?(on_valid = fun _ -> ()) ?on_queue_event ?(initial_inputs = []) config
    subject =
  let st =
    {
      config;
      subject;
      rng = Rng.make config.seed;
      queue = Pqueue.create ();
      on_queue_event;
      vbr = Coverage.empty;
      valid_rev = [];
      executions = 0;
      candidates_created = 0;
      queue_peak = 0;
      first_valid_at = None;
      dedupe_resets = 0;
      path_counts = Hashtbl.create 1024;
      seen_inputs = Hashtbl.create 4096;
      on_valid;
    }
  in
  let next_candidate () =
    match Pqueue.pop_with_priority st.queue with
    | Some (prio, c) ->
      emit st (fun () -> Popped (prio, c.Candidate.data));
      c
    | None ->
      (* Queue exhausted: restart from a fresh random character, as at
         the beginning of the search. *)
      Candidate.seed (random_char st)
  in
  List.iter (fun input -> push_candidate st (Candidate.seed input)) initial_inputs;
  (try
     let candidate = ref (Candidate.seed (random_char st)) in
     while true do
       let c = !candidate in
       let valid, _run = run_check st ~parent:c c.data in
       if not valid then begin
         (* Second execution: the same input extended by one random
            character, probing whether the parser wants more input. *)
         let extended = c.data ^ random_char st in
         if String.length extended <= config.max_input_len then begin
           let valid2, run2 = run_check st ~parent:c extended in
           if not valid2 then add_inputs st ~parent:c run2
         end
       end;
       candidate := next_candidate ()
     done
   with Budget_exhausted -> ());
  {
    valid_inputs = List.rev st.valid_rev;
    valid_coverage = st.vbr;
    executions = st.executions;
    candidates_created = st.candidates_created;
    queue_peak = st.queue_peak;
    first_valid_at = st.first_valid_at;
    dedupe_resets = st.dedupe_resets;
  }
