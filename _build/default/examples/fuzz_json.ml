(* Keyword discovery on JSON (the paper's cJSON subject).

   The intro motivates the input-language challenge with keywords: a
   random fuzzer produces "true" from letters with probability 1/26^4.
   Parser-directed fuzzing reads the keyword off the parser's own
   comparisons instead. This example shows the moment each JSON token is
   first covered.

   Run with: dune exec examples/fuzz_json.exe *)

let () =
  let subject = Pdf_subjects.Catalog.find "json" in
  let seen = Hashtbl.create 16 in
  let executions_at_valid = ref [] in
  let count = ref 0 in
  let config =
    { Pdf_core.Pfuzzer.default_config with seed = 3; max_executions = 30_000 }
  in
  let result =
    Pdf_core.Pfuzzer.fuzz
      ~on_valid:(fun input ->
        incr count;
        List.iter
          (fun tag ->
            if not (Hashtbl.mem seen tag) then begin
              Hashtbl.add seen tag ();
              executions_at_valid := (tag, input, !count) :: !executions_at_valid
            end)
          (subject.tokenize input))
      config subject
  in
  Printf.printf "First valid input covering each JSON token:\n\n";
  Printf.printf "%-8s %-10s %s\n" "token" "valid #" "input";
  List.iter
    (fun (tag, input, n) -> Printf.printf "%-8s %-10d %S\n" tag n input)
    (List.rev !executions_at_valid);
  Printf.printf "\n%d executions, %d valid inputs.\n" result.executions !count;
  Printf.printf
    "Note the keywords true/false/null: each was completed in one\n\
     substitution from the parser's string comparison, not guessed.\n"
