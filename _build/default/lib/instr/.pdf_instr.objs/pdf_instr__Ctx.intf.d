lib/instr/ctx.mli: Comparison Coverage Frame Pdf_taint Pdf_util Site
