(** The search heuristic of Algorithm 1 (procedure [heur], lines 47–51),
    with variants for the ablation study.

    The paper's prose and its pseudo-code disagree on the sign of the
    [numParents] term: line 50 {e adds} it, while §3.1 says inputs with
    fewer parents "should be ranked higher in the queue". {!Prose} (the
    default everywhere) subtracts; {!Paper_formula} adds, reproducing the
    pseudo-code literally. The remaining variants drop individual terms,
    and {!Dfs}/{!Bfs} replace the heuristic with pure depth-/breadth-first
    ordering for the Section 3 search-strategy comparison. *)

type variant =
  | Prose  (** full heuristic, parents subtracted *)
  | Paper_formula  (** full heuristic, parents added (pseudo-code literal) *)
  | No_stack  (** drop the average-stack-size term *)
  | No_length  (** drop the input-length term *)
  | No_replacement  (** drop the replacement-length bonus *)
  | Coverage_only  (** new-coverage count alone *)
  | Dfs  (** longest input first *)
  | Bfs  (** shortest input first *)

val all : (string * variant) list
(** Name/variant pairs for command lines and reports. *)

val score : variant -> vbr:Pdf_instr.Coverage.t -> Candidate.t -> float
(** Priority of a candidate against the current valid-branch set; higher
    runs earlier. *)

val score_with_cov : variant -> new_cov:int -> Candidate.t -> float
(** [score] with the coverage-dependent input supplied directly:
    [new_cov] must equal [Coverage.new_against c.parent_coverage
    ~baseline:vbr]. This is the entry point the incremental queue
    re-rank uses with its cached per-candidate counts; the arithmetic is
    shared with {!score}, so the resulting float is bit-identical. *)
