(** Strings of tainted characters.

    Used by subject lexers to accumulate tokens character by character;
    keeping per-character taints lets the instrumentation report, for a
    failed string comparison, exactly which input position must change
    (the paper's wrapped [strcpy]/[strcmp] behaviour). *)

type t

val empty : t
val of_string : string -> t
(** Untainted constant string. *)

val of_chars : Tchar.t list -> t
val length : t -> int
val get : t -> int -> Tchar.t
val append_char : t -> Tchar.t -> t
val concat : t -> t -> t
val sub : t -> int -> int -> t
val to_string : t -> string
(** Drops taints. *)

val taint : t -> Taint.t
(** Union of all character taints. *)

val taint_of_char : t -> int -> Taint.t
val chars : t -> Tchar.t list
val equal_payload : t -> t -> bool
(** Payload equality, ignoring taints. *)

val pp : Format.formatter -> t -> unit
