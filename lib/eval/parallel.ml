let default_jobs () = Domain.recommended_domain_count ()

(* [jobs] is honoured as requested (clamped only by the number of
   items): domains are OS threads, so asking for more than the
   recommended domain count is legal, and silently clamping to it would
   make an explicit [~jobs:4] untestable on small machines. Callers that
   want a machine-sized pool pass [default_jobs ()]. *)
let map ?(jobs = 1) f items =
  let n = List.length items in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f items
  else begin
    let input = Array.of_list items in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Work-stealing by shared counter: each worker claims the next
       unclaimed index. Every [results] slot is written by exactly one
       domain; Domain.join publishes the writes to the main domain. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            Some
              (match f input.(i) with
               | v -> Ok v
               | exception e -> Error (e, Printexc.get_raw_backtrace ()));
          loop ()
        end
      in
      loop ()
    in
    let others = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join others;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

(* Retries run sequentially on the calling domain: a worker that died
   mid-task may have left its domain-local state unusable, and failed
   tasks are expected to be rare, so the simple, observable order (all
   parallel work first, then retries in input order) wins over spawning
   replacement domains. *)
let map_retry ?(jobs = 1) ?(retries = 2) ?(backoff_s = 0.0) ?on_retry f items =
  let attempt x = match f x with v -> Ok v | exception e -> Error e in
  let first_pass = map ~jobs attempt items in
  let rec redo index x attempt_no last_err =
    if attempt_no > retries then Error last_err
    else begin
      (match on_retry with
       | Some cb -> cb ~index ~attempt:attempt_no last_err
       | None -> ());
      if backoff_s > 0.0 then
        Unix.sleepf (backoff_s *. float_of_int attempt_no);
      match f x with
      | v -> Ok v
      | exception e -> redo index x (attempt_no + 1) e
    end
  in
  List.mapi
    (fun i (x, r) ->
      match r with Ok v -> Ok v | Error e -> redo i x 1 e)
    (List.combine items first_pass)
