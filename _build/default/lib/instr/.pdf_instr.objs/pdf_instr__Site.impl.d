lib/instr/site.ml: Hashtbl List Printf
