(** Prometheus text exposition of metrics snapshots, the inverse parse,
    and the [pfuzzer_cli monitor] dashboard render.

    All three are pure functions of their inputs so the whole
    `--metrics-file` → `monitor` pipeline is golden-testable without a
    running fuzzer. *)

val metric_name : string -> string
(** Registry name to Prometheus name: '/' and other non-identifier
    characters become '_', with a ["pfuzzer_"] prefix. *)

val prometheus : Metrics.snapshot -> string
(** Prometheus text format: counters and gauges verbatim, histograms as
    summaries (p50/p90/p99 quantiles plus [_sum]/[_count]), and a
    [pfuzzer_snapshot_clock] gauge carrying the snapshot's logical
    clock. Written atomically by the observer each status interval. *)

type family = {
  fname : string;
  ftype : string;  (** "counter", "gauge", "summary" or "untyped" *)
  samples : (string * float) list;
      (** sample name (including any label suffix) and value, in file
          order *)
}

val parse : string -> family list
(** Parse Prometheus text back into families, tolerant of comments and
    blank lines; [_sum]/[_count] series attach to their declared summary
    family. Unparseable lines are skipped, never fatal — the monitor
    must survive a half-written or foreign file. *)

val render : family list -> string
(** The monitor dashboard: one aligned block per family. Pure, so the
    dashboard is golden-testable. *)
