module Rng = Pdf_util.Rng
module Subject = Pdf_subjects.Subject
module Runner = Pdf_instr.Runner

type kind = Verdict_mismatch | Hang | Eof_starvation

type disagreement = {
  input : string;
  shrunk : string;
  kind : kind;
  detail : string;
}

type report = {
  subject : string;
  executions : int;
  inputs_checked : int;
  prefixes_checked : int;
  disagreements : disagreement list;
}

let max_disagreements = 10

(* Prefix sweeps are quadratic in input length; keep them on short
   inputs, where the EOF-hunger property is just as observable. *)
let max_prefix_len = 32

type state = {
  subject : Subject.t;
  oracle : Oracle.t;
  mutable executions : int;
  mutable inputs_checked : int;
  mutable prefixes_checked : int;
  mutable disagreements : disagreement list;
}

let run_subject st input =
  st.executions <- st.executions + 1;
  Subject.run st.subject input

(* [None] = hang; [Some b] = accepted? *)
let subject_accepts st input =
  match (run_subject st input).verdict with
  | Runner.Accepted -> Some true
  | Runner.Rejected _ | Runner.Crash _ -> Some false
  | Runner.Hang -> None

let disagrees st input =
  match subject_accepts st input with
  | None -> true
  | Some a -> a <> st.oracle.accepts input

(* A rejected prefix of a valid input must have asked for input at EOF:
   the only thing wrong with it is that it ends too early. *)
let starving_prefix st input =
  let n = String.length input in
  let rec go i =
    if i >= n then None
    else begin
      st.prefixes_checked <- st.prefixes_checked + 1;
      let run = run_subject st (String.sub input 0 i) in
      match run.verdict with
      | Runner.Rejected _ when not run.eof_access -> Some (String.sub input 0 i)
      | Runner.Hang -> Some (String.sub input 0 i)
      | _ -> go (i + 1)
    end
  in
  go 0

let record st ~input ~shrunk ~kind ~detail =
  st.disagreements <- { input; shrunk; kind; detail } :: st.disagreements

let verdict_detail st input =
  let subject =
    match subject_accepts st input with
    | None -> "hang"
    | Some true -> "accept"
    | Some false -> "reject"
  in
  Printf.sprintf "subject: %s, oracle: %s" subject
    (if st.oracle.accepts input then "accept" else "reject")

let check_input st input =
  st.inputs_checked <- st.inputs_checked + 1;
  match subject_accepts st input with
  | None ->
    let shrunk = Shrink.shrink (fun s -> subject_accepts st s = None) input in
    record st ~input ~shrunk ~kind:Hang ~detail:"subject ran out of fuel"
  | Some a when a <> st.oracle.accepts input ->
    let shrunk = Shrink.shrink (disagrees st) input in
    record st ~input ~shrunk ~kind:Verdict_mismatch
      ~detail:(verdict_detail st shrunk)
  | Some true when String.length input <= max_prefix_len -> begin
    (* Subject and oracle agree the input is valid: sweep its prefixes
       for EOF-hunger violations. *)
    match starving_prefix st input with
    | None -> ()
    | Some prefix ->
      let starves s =
        st.oracle.accepts s
        && subject_accepts st s = Some true
        && String.length s <= max_prefix_len
        && starving_prefix st s <> None
      in
      let shrunk_valid = Shrink.shrink ~max_evals:300 starves input in
      let shrunk =
        Option.value ~default:prefix (starving_prefix st shrunk_valid)
      in
      record st ~input ~shrunk ~kind:Eof_starvation
        ~detail:
          (Printf.sprintf "prefix %S rejected without EOF access" shrunk)
  end
  | Some _ -> ()

let run ?(execs = 2000) ?(seed = 1) subject oracle =
  let st =
    {
      subject;
      oracle;
      executions = 0;
      inputs_checked = 0;
      prefixes_checked = 0;
      disagreements = [];
    }
  in
  let rng = Rng.make seed in
  while
    st.executions < execs
    && List.length st.disagreements < max_disagreements
  do
    let input =
      match st.inputs_checked mod 3 with
      | 0 -> Option.value ~default:(Producer.random_input rng) (Producer.valid rng oracle)
      | 1 -> Option.value ~default:(Producer.random_input rng) (Producer.invalid rng oracle)
      | _ -> Producer.random_input rng
    in
    check_input st input
  done;
  {
    subject = subject.Subject.name;
    executions = st.executions;
    inputs_checked = st.inputs_checked;
    prefixes_checked = st.prefixes_checked;
    disagreements = List.rev st.disagreements;
  }

let pp_kind ppf = function
  | Verdict_mismatch -> Format.pp_print_string ppf "verdict-mismatch"
  | Hang -> Format.pp_print_string ppf "hang"
  | Eof_starvation -> Format.pp_print_string ppf "eof-starvation"

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "differential %s: %d inputs (%d prefixes, %d executions), %d disagreement(s)"
    r.subject r.inputs_checked r.prefixes_checked r.executions
    (List.length r.disagreements);
  List.iter
    (fun d ->
      Format.fprintf ppf "@.  [%a] %S (from %S): %s" pp_kind d.kind d.shrunk
        d.input d.detail)
    r.disagreements
