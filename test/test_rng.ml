(* Tests for {!Pdf_util.Rng} (SplitMix64): determinism under equal
   seeds across the whole operation surface, copy semantics, and the
   independence of split streams. Reproducibility of every experiment in
   the repo reduces to these properties. *)

module Rng = Pdf_util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* One draw of every kind, so determinism covers the full API, including
   the rejection-sampling paths in [int] and [choose]. *)
let mixed_draw rng =
  let b = Rng.bits64 rng in
  let i = Rng.int rng 1000 in
  let f = Rng.float rng 2.0 in
  let bo = Rng.bool rng in
  let c = Rng.char rng in
  let p = Rng.printable rng in
  let ch = Rng.choose rng [| 'x'; 'y'; 'z'; 'w' |] in
  let cl = Rng.choose_list rng [ 10; 20; 30 ] in
  let arr = Array.init 8 Fun.id in
  Rng.shuffle rng arr;
  (b, i, f, bo, c, p, ch, cl, Array.to_list arr)

let stream rng n = List.init n (fun _ -> mixed_draw rng)

let test_determinism =
  QCheck.Test.make ~name:"equal seeds produce equal streams" ~count:200
    QCheck.small_int (fun seed ->
      stream (Rng.make seed) 20 = stream (Rng.make seed) 20)

let test_distinct_seeds () =
  (* Not a theorem, but a regression tripwire: nearby seeds must not
     produce identical streams (SplitMix64 mixes the seed). *)
  let distinct = ref 0 in
  for seed = 0 to 49 do
    if stream (Rng.make seed) 4 <> stream (Rng.make (seed + 1)) 4 then
      incr distinct
  done;
  Alcotest.(check int) "all 50 adjacent-seed pairs differ" 50 !distinct

let test_copy =
  QCheck.Test.make ~name:"copy duplicates the stream mid-flight" ~count:200
    QCheck.small_int (fun seed ->
      let r = Rng.make seed in
      ignore (stream r 3);
      let c = Rng.copy r in
      stream r 10 = stream c 10)

let test_split_deterministic =
  QCheck.Test.make ~name:"split children of equal parents are equal"
    ~count:200 QCheck.small_int (fun seed ->
      let r1 = Rng.make seed and r2 = Rng.make seed in
      let c1 = Rng.split r1 and c2 = Rng.split r2 in
      stream c1 10 = stream c2 10 && stream r1 10 = stream r2 10)

let test_split_independent =
  QCheck.Test.make
    ~name:"draws from a split child never perturb the parent" ~count:200
    QCheck.small_int (fun seed ->
      (* Parent stream with the child left untouched... *)
      let r1 = Rng.make seed in
      let _c1 = Rng.split r1 in
      let parent_untouched = stream r1 10 in
      (* ...and with the child drained hard in between. *)
      let r2 = Rng.make seed in
      let c2 = Rng.split r2 in
      ignore (stream c2 50);
      stream r2 10 = parent_untouched)

let test_split_diverges () =
  (* The child must not replay the parent's continuation. *)
  let r = Rng.make 42 in
  let c = Rng.split r in
  Alcotest.(check bool) "child and parent streams differ" true
    (stream c 4 <> stream r 4)

let test_int_bounds =
  QCheck.Test.make ~name:"int stays in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.make seed in
      List.for_all
        (fun _ ->
          let v = Rng.int r bound in
          0 <= v && v < bound)
        (List.init 50 Fun.id))

let test_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle yields a permutation" ~count:200
    QCheck.(pair small_int (int_range 0 50))
    (fun (seed, n) ->
      let r = Rng.make seed in
      let arr = Array.init n Fun.id in
      Rng.shuffle r arr;
      List.sort compare (Array.to_list arr) = List.init n Fun.id)

let test_printable_alphabet () =
  let r = Rng.make 9 in
  for _ = 1 to 2000 do
    let c = Rng.printable r in
    Alcotest.(check bool)
      (Printf.sprintf "printable %C" c)
      true
      ((c >= '\x20' && c <= '\x7e') || c = '\n' || c = '\t')
  done

let () =
  Alcotest.run "rng"
    [
      ( "determinism",
        [
          qtest test_determinism;
          Alcotest.test_case "adjacent seeds differ" `Quick test_distinct_seeds;
          qtest test_copy;
        ] );
      ( "split",
        [
          qtest test_split_deterministic;
          qtest test_split_independent;
          Alcotest.test_case "child diverges from parent" `Quick
            test_split_diverges;
        ] );
      ( "distribution",
        [
          qtest test_int_bounds;
          qtest test_shuffle_permutes;
          Alcotest.test_case "printable alphabet" `Quick
            test_printable_alphabet;
        ] );
    ]
