module Subject = Pdf_subjects.Subject

type subject_outcome = {
  differential : Differential.report option;
  invariants : Invariants.report;
  chaos : Invariants.report option;
}

type t = { outcomes : (string * subject_outcome) list }

let checked_subjects () =
  List.filter
    (fun (s : Subject.t) -> Oracle.find s.name <> None)
    Pdf_subjects.Catalog.all

let run ?(execs = 2000) ?(seed = 1) ?(chaos = false) subjects =
  let outcomes =
    List.map
      (fun (subject : Subject.t) ->
        let differential =
          Option.map
            (fun oracle -> Differential.run ~execs ~seed subject oracle)
            (Oracle.find subject.name)
        in
        let invariants =
          Invariants.run ~execs:(max 100 (execs / 4)) ~seed subject
        in
        let chaos =
          if chaos then Some (Chaos.run ~execs:(max 100 (execs / 4)) ~seed subject)
          else None
        in
        (subject.name, { differential; invariants; chaos }))
      subjects
  in
  { outcomes }

let subject_ok o =
  (match o.differential with
   | None -> true
   | Some d -> d.Differential.disagreements = [])
  && Invariants.ok o.invariants
  && (match o.chaos with None -> true | Some c -> Chaos.ok c)

let ok t = List.for_all (fun (_, o) -> subject_ok o) t.outcomes

let pp ppf t =
  List.iter
    (fun (name, o) ->
      Format.fprintf ppf "== %s%s@." name
        (if subject_ok o then "" else "  ** PROBLEMS FOUND **");
      (match o.differential with
       | None -> Format.fprintf ppf "no reference oracle; differential pass skipped@."
       | Some d -> Format.fprintf ppf "%a@." Differential.pp_report d);
      Format.fprintf ppf "%a@." Invariants.pp_report o.invariants;
      match o.chaos with
      | None -> ()
      | Some c -> Format.fprintf ppf "%a@." Chaos.pp_report c)
    t.outcomes;
  Format.fprintf ppf "%s@."
    (if ok t then "all checks passed" else "CHECKS FAILED")
