type t = { mutable counts : int array }

let create () = { counts = [||] }

let copy t = { counts = Array.copy t.counts }

let ensure t n =
  let len = Array.length t.counts in
  if len < n then begin
    let grown = Array.make (max n (2 * len)) 0 in
    Array.blit t.counts 0 grown 0 len;
    t.counts <- grown
  end

let record t touched =
  Array.iter
    (fun oid ->
      ensure t (oid + 1);
      t.counts.(oid) <- t.counts.(oid) + 1)
    touched

let count t oid = if oid < Array.length t.counts then t.counts.(oid) else 0

let merge a b =
  let n = max (Array.length a.counts) (Array.length b.counts) in
  let counts = Array.init n (fun i -> count a i + count b i) in
  { counts }

let equal a b =
  let n = max (Array.length a.counts) (Array.length b.counts) in
  let rec go i = i >= n || (count a i = count b i && go (i + 1)) in
  go 0

let cardinal t =
  Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 t.counts

let total t = Array.fold_left ( + ) 0 t.counts

let to_list t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (i, t.counts.(i)) :: !acc
  done;
  !acc

let of_list l =
  let t = create () in
  List.iter
    (fun (oid, c) ->
      ensure t (oid + 1);
      t.counts.(oid) <- t.counts.(oid) + c)
    l;
  t
