module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site
module Charset = Pdf_util.Charset
module Tchar = Pdf_taint.Tchar
module Tstring = Pdf_taint.Tstring

let registry = Site.create_registry "json"
let s_parse = Site.block registry "parse"
let s_value = Site.block registry "value"
let s_object = Site.block registry "object"
let s_array = Site.block registry "array"
let s_string = Site.block registry "string"
let s_number = Site.block registry "number"
let s_keyword = Site.block registry "keyword"
let s_escape = Site.block registry "escape"
let s_utf16 = Site.block registry "escape.utf16"
let s_utf16_surrogate = Site.block registry "escape.utf16-surrogate-pair"
let b_ws = Site.branch registry "ws?"
let b_lbrace = Site.branch registry "value.lbrace?"
let b_lbracket = Site.branch registry "value.lbracket?"
let b_quote = Site.branch registry "value.quote?"
let b_minus = Site.branch registry "value.minus?"
let b_digit = Site.branch registry "value.digit?"
let b_letter = Site.branch registry "value.letter?"
let b_kw_true = Site.branch registry "keyword.true?"
let b_kw_false = Site.branch registry "keyword.false?"
let b_kw_null = Site.branch registry "keyword.null?"
let b_obj_empty = Site.branch registry "object.empty?"
let b_obj_key_quote = Site.branch registry "object.key-quote"
let b_colon = Site.branch registry "object.colon"
let b_obj_comma = Site.branch registry "object.comma?"
let b_rbrace = Site.branch registry "object.rbrace"
let b_arr_empty = Site.branch registry "array.empty?"
let b_arr_comma = Site.branch registry "array.comma?"
let b_rbracket = Site.branch registry "array.rbracket"
let b_str_close = Site.branch registry "string.close?"
let b_str_backslash = Site.branch registry "string.backslash?"
let b_str_control = Site.branch registry "string.control?"
let b_esc_simple = Site.branch registry "escape.simple?"
let b_esc_u = Site.branch registry "escape.u?"
let b_hex_valid = Site.branch registry "escape.hex-valid?"
let b_surrogate_high = Site.branch registry "escape.high-surrogate?"
let b_surrogate_low = Site.branch registry "escape.low-surrogate-ok?"
let b_num_int = Site.branch registry "number.int-digit?"
let b_num_dot = Site.branch registry "number.dot?"
let b_num_frac = Site.branch registry "number.frac-digit?"
let b_num_exp = Site.branch registry "number.exp?"
let b_num_exp_sign = Site.branch registry "number.exp-sign?"
let b_num_exp_digit = Site.branch registry "number.exp-digit?"
let b_trailing = Site.branch registry "parse.trailing?"

module Machine = Pdf_instr.Machine
module K = Helpers.K

let ws = Charset.of_string " \t\r\n"
let skip_ws k = K.skip_set b_ws ~label:"whitespace" ws k

let digits site_first site_more (k : K.k) : K.k =
  K.next (fun c ctx ->
      match c with
      | None -> Ctx.reject ctx "expected digit, found end of input"
      | Some c ->
        if not (Ctx.in_range ctx site_first c '0' '9') then
          Ctx.reject ctx "expected digit"
        else
          let rec more ctx =
            K.peek
              (fun c ctx ->
                match c with
                | None -> k ctx
                | Some c ->
                  if Ctx.in_range ctx site_more c '0' '9' then K.skip more ctx
                  else k ctx)
              ctx
          in
          more ctx)

(* cJSON's UTF-16 decoding relies on implicit flow: the hex digits are
   turned into a code point by table lookups and arithmetic, never by a
   comparison the taint tracker sees. We model that by classifying hex
   characters with plain (untracked) OCaml tests — the branch outcome is
   still recorded for coverage, but no comparison event is emitted, so the
   parser-directed fuzzer cannot learn the alphabet here. *)
let untracked_hex_value (c : Tchar.t) =
  match c.Tchar.ch with
  | '0' .. '9' -> Some (Char.code c.Tchar.ch - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c.Tchar.ch - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c.Tchar.ch - Char.code 'A' + 10)
  | _ -> None

let utf16_quad (f : int -> K.k) : K.k =
 fun ctx ->
  let rec quad acc n ctx =
    if n = 0 then f acc ctx
    else
      K.next
        (fun c ctx ->
          match c with
          | None -> Ctx.reject ctx "unterminated \\u escape"
          | Some c -> (
            match untracked_hex_value c with
            | Some v ->
              ignore (Ctx.branch ctx b_hex_valid true);
              quad ((acc * 16) + v) (n - 1) ctx
            | None ->
              ignore (Ctx.branch ctx b_hex_valid false);
              Ctx.reject ctx "invalid hex digit in \\u escape"))
        ctx
  in
  quad 0 4 ctx

(* The surrogate-pair glue characters are matched without tracking, like
   [untracked_hex_value]: cJSON recognises them via implicit flow. *)
let expect_untracked expected (k : K.k) : K.k =
  K.next (fun c ctx ->
      match c with
      | Some c when c.Tchar.ch = expected -> k ctx
      | Some _ | None -> Ctx.reject ctx "missing low surrogate")

let utf16_escape (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_utf16
    (fun k ->
      utf16_quad (fun first ctx ->
          if
            Ctx.branch ctx b_surrogate_high (first >= 0xD800 && first <= 0xDBFF)
          then
            (* A high surrogate must be followed by "\uDC00".."\uDFFF". *)
            K.with_frame s_utf16_surrogate
              (fun k ->
                expect_untracked '\\'
                  (expect_untracked 'u'
                     (utf16_quad (fun second ctx ->
                          if
                            not
                              (Ctx.branch ctx b_surrogate_low
                                 (second >= 0xDC00 && second <= 0xDFFF))
                          then Ctx.reject ctx "invalid low surrogate"
                          else k ctx))))
              k ctx
          else if first >= 0xDC00 && first <= 0xDFFF then
            Ctx.reject ctx "unpaired low surrogate"
          else k ctx))
    k ctx

let escape (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_escape
    (fun k ->
      K.next (fun c ctx ->
          match c with
          | None -> Ctx.reject ctx "unterminated escape"
          | Some c ->
            if Ctx.one_of ctx b_esc_simple c "\"\\/bfnrt" then k ctx
            else if Ctx.branch ctx b_esc_u (c.Tchar.ch = 'u') then
              utf16_escape k ctx
            else Ctx.reject ctx "invalid escape character"))
    k ctx

let string_body (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_string
    (fun k ->
      let rec body ctx =
        K.next
          (fun c ctx ->
            match c with
            | None -> Ctx.reject ctx "unterminated string"
            | Some c ->
              if Ctx.eq ctx b_str_close c '"' then k ctx
              else if Ctx.eq ctx b_str_backslash c '\\' then escape body ctx
              else if Ctx.branch ctx b_str_control (Char.code c.Tchar.ch < 0x20)
              then Ctx.reject ctx "control character in string"
              else body ctx)
          ctx
      in
      K.skip (* opening quote *) body)
    k ctx

let number (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_number
    (fun k ->
      let exp_digits = digits b_num_exp_digit b_num_exp_digit k in
      let exp_part ctx =
        K.peek
          (fun c ctx ->
            match c with
            | Some c when Ctx.one_of ctx b_num_exp c "eE" ->
              K.skip
                (K.peek (fun c2 ctx ->
                     match c2 with
                     | Some c2 when Ctx.one_of ctx b_num_exp_sign c2 "+-" ->
                       K.skip exp_digits ctx
                     | Some _ | None -> exp_digits ctx))
                ctx
            | Some _ | None -> k ctx)
          ctx
      in
      let frac_part ctx =
        K.peek
          (fun c ctx ->
            match c with
            | Some c when Ctx.eq ctx b_num_dot c '.' ->
              K.skip (digits b_num_frac b_num_frac exp_part) ctx
            | Some _ | None -> exp_part ctx)
          ctx
      in
      let int_part = digits b_num_int b_num_int frac_part in
      K.peek (fun c ctx ->
          match c with
          | Some c when Ctx.eq ctx b_minus c '-' -> K.skip int_part ctx
          | Some _ | None -> int_part ctx))
    k ctx

let keyword (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_keyword
    (fun k ->
      K.read_set b_letter ~label:"letter" Charset.letters (fun word ctx ->
          if Ctx.str_eq ctx b_kw_true word "true" then k ctx
          else if Ctx.str_eq ctx b_kw_false word "false" then k ctx
          else if Ctx.str_eq ctx b_kw_null word "null" then k ctx
          else Ctx.reject ctx "invalid literal"))
    k ctx

let rec value (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_value
    (fun k ctx ->
      Ctx.tick ctx;
      K.peek
        (fun c ctx ->
          match c with
          | None -> Ctx.reject ctx "expected value, found end of input"
          | Some c ->
            if Ctx.eq ctx b_lbrace c '{' then object_ k ctx
            else if Ctx.eq ctx b_lbracket c '[' then array k ctx
            else if Ctx.eq ctx b_quote c '"' then string_body k ctx
            else if Ctx.eq ctx b_minus c '-' then number k ctx
            else if Ctx.in_range ctx b_digit c '0' '9' then number k ctx
            else if Ctx.in_set ctx b_letter ~label:"letter" c Charset.letters
            then keyword k ctx
            else Ctx.reject ctx "unexpected character at start of value")
        ctx)
    k ctx

and object_ (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_object
    (fun k ->
      K.skip (* '{' *)
        (skip_ws
           (K.peek_is b_obj_empty '}' (fun empty ->
                if empty then K.skip k
                else
                  let rec members ctx =
                    skip_ws
                      (K.peek (fun c ctx ->
                           match c with
                           | Some c when Ctx.eq ctx b_obj_key_quote c '"' ->
                             string_body
                               (skip_ws
                                  (K.expect b_colon ':'
                                     (skip_ws
                                        (value
                                           (skip_ws
                                              (K.eat_if b_obj_comma ','
                                                 (fun ate ->
                                                   if ate then members
                                                   else K.expect b_rbrace '}' k)))))))
                               ctx
                           | Some _ -> Ctx.reject ctx "expected string key"
                           | None ->
                             Ctx.reject ctx
                               "expected string key, found end of input"))
                      ctx
                  in
                  members))))
    k ctx

and array (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_array
    (fun k ->
      K.skip (* '[' *)
        (skip_ws
           (K.peek_is b_arr_empty ']' (fun empty ->
                if empty then K.skip k
                else
                  let rec elements ctx =
                    skip_ws
                      (value
                         (skip_ws
                            (K.eat_if b_arr_comma ',' (fun ate ->
                                 if ate then elements
                                 else K.expect b_rbracket ']' k))))
                      ctx
                  in
                  elements))))
    k ctx

let machine : Machine.recognizer =
 fun ctx ->
  K.with_frame s_parse
    (fun k ->
      skip_ws
        (value
           (skip_ws
              (K.peek (fun c ctx ->
                   match c with
                   | Some _ ->
                     ignore (Ctx.branch ctx b_trailing true);
                     Ctx.reject ctx "trailing input after value"
                   | None ->
                     ignore (Ctx.branch ctx b_trailing false);
                     k ctx)))))
    K.stop ctx

let parse ctx = Machine.run ctx machine

(* {1 Staged (compiled) form}

   The hot loops — string bodies, digit runs, whitespace — become
   static node cycles; the number grammar's peek chain and the
   escape/utf16 machinery stage once per nonterminal entry with all
   continuations hoisted. [value]/[object_]/[array] stay runtime
   recursion (JSON nests arbitrarily), with each entry staging its
   dispatch node once; the recursive calls are deferred inside peek
   continuations, exactly like the interpreted twin, so staging always
   terminates. Shadows the interpreted helpers' names: same grammar,
   same observation order. *)
module C = Pdf_instr.Compiled

(* Slots for every staged comparison site, resolved once at module
   initialisation — the recursive nonterminals re-stage per entry, and
   must not rebuild site/kind data each time. *)
let sl_ws = C.slot_set b_ws ~label:"whitespace" ws
let sl_str_close = C.slot_eq b_str_close '"'
let sl_str_backslash = C.slot_eq b_str_backslash '\\'
let sl_esc_simple = C.slot_one_of b_esc_simple "\"\\/bfnrt"
let sl_num_exp_sign = C.slot_one_of b_num_exp_sign "+-"
let sl_num_exp = C.slot_one_of b_num_exp "eE"
let sl_num_dot = C.slot_eq b_num_dot '.'
let sl_minus = C.slot_eq b_minus '-'
let sl_lbrace = C.slot_eq b_lbrace '{'
let sl_lbracket = C.slot_eq b_lbracket '['
let sl_quote = C.slot_eq b_quote '"'
let sl_digit = C.slot_range b_digit '0' '9'
let sl_letter = C.slot_set b_letter ~label:"letter" Charset.letters
let sl_obj_key_quote = C.slot_eq b_obj_key_quote '"'
let sl_num_int = C.slot_range b_num_int '0' '9'
let sl_num_frac = C.slot_range b_num_frac '0' '9'
let sl_num_exp_digit = C.slot_range b_num_exp_digit '0' '9'

let compiled : C.t =
  let skip_ws k =
    C.skip_while (fun c ctx -> Ctx.in_set_slot ctx sl_ws c ws) k
  in
  let digits sl_first sl_more (k : C.k) : C.k =
    let more =
      C.skip_while (fun c ctx -> Ctx.in_range_slot ctx sl_more c '0' '9') k
    in
    C.next (fun c ->
        fun ctx ->
          match c with
          | None -> Ctx.reject ctx "expected digit, found end of input"
          | Some c ->
            if not (Ctx.in_range_slot ctx sl_first c '0' '9') then
              Ctx.reject ctx "expected digit"
            else more ctx)
  in
  let utf16_quad (f : int -> C.k) : C.k =
   fun ctx ->
    let rec quad acc n ctx =
      if n = 0 then f acc ctx
      else
        C.next
          (fun c ->
            fun ctx ->
              match c with
              | None -> Ctx.reject ctx "unterminated \\u escape"
              | Some c -> (
                match untracked_hex_value c with
                | Some v ->
                  ignore (Ctx.branch ctx b_hex_valid true);
                  quad ((acc * 16) + v) (n - 1) ctx
                | None ->
                  ignore (Ctx.branch ctx b_hex_valid false);
                  Ctx.reject ctx "invalid hex digit in \\u escape"))
          ctx
    in
    quad 0 4 ctx
  in
  let expect_untracked expected (k : C.k) : C.k =
    C.next (fun c ->
        fun ctx ->
          match c with
          | Some c when c.Tchar.ch = expected -> k ctx
          | Some _ | None -> Ctx.reject ctx "missing low surrogate")
  in
  let utf16_escape (k : C.k) : C.k =
    C.with_frame s_utf16
      (fun k ->
        let surrogate =
          (* A high surrogate must be followed by "\uDC00".."\uDFFF". *)
          C.with_frame s_utf16_surrogate
            (fun k ->
              expect_untracked '\\'
                (expect_untracked 'u'
                   (utf16_quad (fun second ->
                        fun ctx ->
                          if
                            not
                              (Ctx.branch ctx b_surrogate_low
                                 (second >= 0xDC00 && second <= 0xDFFF))
                          then Ctx.reject ctx "invalid low surrogate"
                          else k ctx))))
            k
        in
        utf16_quad (fun first ->
            fun ctx ->
              if
                Ctx.branch ctx b_surrogate_high
                  (first >= 0xD800 && first <= 0xDBFF)
              then surrogate ctx
              else if first >= 0xDC00 && first <= 0xDFFF then
                Ctx.reject ctx "unpaired low surrogate"
              else k ctx))
      k
  in
  let escape (k : C.k) : C.k =
    C.with_frame s_escape
      (fun k ->
        let u = utf16_escape k in
        C.next (fun c ->
            fun ctx ->
              match c with
              | None -> Ctx.reject ctx "unterminated escape"
              | Some c ->
                if Ctx.one_of_slot ctx sl_esc_simple c "\"\\/bfnrt" then k ctx
                else if Ctx.branch ctx b_esc_u (c.Tchar.ch = 'u') then u ctx
                else Ctx.reject ctx "invalid escape character"))
      k
  in
  let string_body (k : C.k) : C.k =
    C.with_frame s_string
      (fun k ->
        let body =
          C.fix (fun body ->
              (* Escapes are rare in discovered inputs; defer staging the
                 whole escape/utf16 chain until a backslash actually
                 appears, so the common all-literal string pays one lazy
                 block instead of the full machinery per entry. *)
              let esc = lazy (escape body) in
              C.next (fun c ->
                  fun ctx ->
                    match c with
                    | None -> Ctx.reject ctx "unterminated string"
                    | Some c ->
                      if Ctx.eq_slot ctx sl_str_close c '"' then k ctx
                      else if Ctx.eq_slot ctx sl_str_backslash c '\\' then
                        Lazy.force esc ctx
                      else if
                        Ctx.branch ctx b_str_control
                          (Char.code c.Tchar.ch < 0x20)
                      then Ctx.reject ctx "control character in string"
                      else body ctx))
        in
        C.skip (* opening quote *) body)
      k
  in
  let number (k : C.k) : C.k =
    C.with_frame s_number
      (fun k ->
        (* Staged in dependency order, every continuation hoisted: the
           whole optional-part chain is built once per [number] entry. *)
        let exp_digits = digits sl_num_exp_digit sl_num_exp_digit k in
        let skip_exp_digits = C.skip exp_digits in
        let after_e =
          C.peek (fun c2 ->
              fun ctx ->
                match c2 with
                | Some c2 when Ctx.one_of_slot ctx sl_num_exp_sign c2 "+-" ->
                  skip_exp_digits ctx
                | Some _ | None -> exp_digits ctx)
        in
        let skip_after_e = C.skip after_e in
        let exp_part =
          C.peek (fun c ->
              fun ctx ->
                match c with
                | Some c when Ctx.one_of_slot ctx sl_num_exp c "eE" ->
                  skip_after_e ctx
                | Some _ | None -> k ctx)
        in
        let frac_digits = digits sl_num_frac sl_num_frac exp_part in
        let skip_frac = C.skip frac_digits in
        let frac_part =
          C.peek (fun c ->
              fun ctx ->
                match c with
                | Some c when Ctx.eq_slot ctx sl_num_dot c '.' -> skip_frac ctx
                | Some _ | None -> exp_part ctx)
        in
        let int_part = digits sl_num_int sl_num_int frac_part in
        let skip_int = C.skip int_part in
        C.peek (fun c ->
            fun ctx ->
              match c with
              | Some c when Ctx.eq_slot ctx sl_minus c '-' -> skip_int ctx
              | Some _ | None -> int_part ctx))
      k
  in
  let keyword (k : C.k) : C.k =
    C.with_frame s_keyword
      (fun k ->
        C.read_set b_letter ~label:"letter" Charset.letters (fun word ->
            fun ctx ->
              if Ctx.str_eq ctx b_kw_true word "true" then k ctx
              else if Ctx.str_eq ctx b_kw_false word "false" then k ctx
              else if Ctx.str_eq ctx b_kw_null word "null" then k ctx
              else Ctx.reject ctx "invalid literal"))
      k
  in
  let rec value (k : C.k) : C.k =
    C.with_frame s_value
      (fun k ->
        let node =
          (* The branch targets stage on demand inside the continuation,
             like the interpreted twin: a value that turns out to be a
             number never stages the string machinery. *)
          C.peek (fun c ->
              fun ctx ->
                match c with
                | None -> Ctx.reject ctx "expected value, found end of input"
                | Some c ->
                  if Ctx.eq_slot ctx sl_lbrace c '{' then object_ k ctx
                  else if Ctx.eq_slot ctx sl_lbracket c '[' then array k ctx
                  else if Ctx.eq_slot ctx sl_quote c '"' then string_body k ctx
                  else if Ctx.eq_slot ctx sl_minus c '-' then number k ctx
                  else if Ctx.in_range_slot ctx sl_digit c '0' '9' then
                    number k ctx
                  else if Ctx.in_set_slot ctx sl_letter c Charset.letters then
                    keyword k ctx
                  else Ctx.reject ctx "unexpected character at start of value")
        in
        fun ctx ->
          Ctx.tick ctx;
          node ctx)
      k
  and object_ (k : C.k) : C.k =
    C.with_frame s_object
      (fun k ->
        let skip_k = C.skip k in
        let members =
          C.fix (fun members ->
              let member_body =
                string_body
                  (skip_ws
                     (C.expect b_colon ':'
                        (skip_ws
                           (value
                              (skip_ws
                                 (C.eat_if b_obj_comma ',' (fun ate ->
                                      if ate then members
                                      else C.expect b_rbrace '}' k)))))))
              in
              skip_ws
                (C.peek (fun c ->
                     fun ctx ->
                       match c with
                       | Some c when Ctx.eq_slot ctx sl_obj_key_quote c '"' ->
                         member_body ctx
                       | Some _ -> Ctx.reject ctx "expected string key"
                       | None ->
                         Ctx.reject ctx
                           "expected string key, found end of input")))
        in
        C.skip (* '{' *)
          (skip_ws
             (C.peek_is b_obj_empty '}' (fun empty ->
                  if empty then skip_k else members))))
      k
  and array (k : C.k) : C.k =
    C.with_frame s_array
      (fun k ->
        let skip_k = C.skip k in
        let elements =
          C.fix (fun elements ->
              skip_ws
                (value
                   (skip_ws
                      (C.eat_if b_arr_comma ',' (fun ate ->
                           if ate then elements
                           else C.expect b_rbracket ']' k)))))
        in
        C.skip (* '[' *)
          (skip_ws
             (C.peek_is b_arr_empty ']' (fun empty ->
                  if empty then skip_k else elements))))
      k
  in
  C.with_frame s_parse
    (fun k ->
      skip_ws
        (value
           (skip_ws
              (C.peek (fun c ->
                   fun ctx ->
                     match c with
                     | Some _ ->
                       ignore (Ctx.branch ctx b_trailing true);
                       Ctx.reject ctx "trailing input after value"
                     | None ->
                       ignore (Ctx.branch ctx b_trailing false);
                       k ctx)))))
    C.stop

let tokens =
  [
    Token.literal "{";
    Token.literal "}";
    Token.literal "[";
    Token.literal "]";
    Token.literal "-";
    Token.literal ":";
    Token.literal ",";
    Token.make "number" 1;
    Token.make "string" 2;
    Token.make "null" 4;
    Token.make "true" 4;
    Token.make "false" 5;
  ]

(* Untracked scanner over a known-valid input, for the token-coverage
   measurement. *)
let tokenize input =
  let tags = ref [] in
  let push tag = if not (List.mem tag !tags) then tags := tag :: !tags in
  let n = String.length input in
  let rec scan i =
    if i < n then
      match input.[i] with
      | '{' | '}' | '[' | ']' | ':' | ',' | '-' ->
        push (String.make 1 input.[i]);
        scan (i + 1)
      | '"' ->
        push "string";
        let rec close j =
          if j >= n then j
          else if input.[j] = '\\' then close (j + 2)
          else if input.[j] = '"' then j + 1
          else close (j + 1)
        in
        scan (close (i + 1))
      | '0' .. '9' ->
        push "number";
        scan (i + 1)
      | 'a' .. 'z' | 'A' .. 'Z' ->
        let rec word j =
          if j < n && (match input.[j] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
          then word (j + 1)
          else j
        in
        let j = word i in
        (match String.sub input i (j - i) with
         | "true" -> push "true"
         | "false" -> push "false"
         | "null" -> push "null"
         | _ -> ());
        scan j
      | _ -> scan (i + 1)
  in
  scan 0;
  List.rev !tags

let subject =
  {
    Subject.name = "json";
    description = "JSON documents (paper subject: cJSON)";
    registry;
    parse;
    machine = Some machine;
    compiled = Some compiled;
    (* the staged json recognizer re-stages its recursive nonterminals per
       entry and measures slower than the interpreted walker
       (BENCH_compiled.json); keep it for equivalence checks only *)
    compiled_preferred = false;
    fuel = 100_000;
    tokens;
    tokenize;
    original_loc = 2483;
  }
