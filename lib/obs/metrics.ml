module Histogram = Pdf_util.Stats.Histogram

type counter = int ref
type gauge = float ref

type entry =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t

type t = { entries : (string, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 32 }

let find_or_add t name make cast =
  match Hashtbl.find_opt t.entries name with
  | Some e ->
    (match cast e with
     | Some v -> v
     | None -> invalid_arg (Printf.sprintf "Metrics: %S registered with another type" name))
  | None ->
    let e, v = make () in
    Hashtbl.replace t.entries name e;
    v

let counter t name =
  find_or_add t name
    (fun () ->
      let c = ref 0 in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let add c by = c := !c + by
let incr c = add c 1
let value c = !c

let gauge t name =
  find_or_add t name
    (fun () ->
      let g = ref 0.0 in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let set g v = g := v
let gauge_value g = !g

let histogram t name =
  find_or_add t name
    (fun () ->
      let h = Histogram.create () in
      (Hist h, h))
    (function Hist h -> Some h | _ -> None)

type snapshot = {
  origin : int;
  clock : int;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Histogram.t) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot ?(origin = 0) ?(clock = 0) t =
  let cs = ref [] and gs = ref [] and hs = ref [] in
  Hashtbl.iter
    (fun name -> function
      | Counter c -> cs := (name, !c) :: !cs
      | Gauge g -> gs := (name, !g) :: !gs
      | Hist h -> hs := (name, h) :: !hs)
    t.entries;
  {
    origin;
    clock;
    counters = List.sort by_name !cs;
    gauges = List.sort by_name !gs;
    histograms = List.sort by_name !hs;
  }

let empty_snapshot = { origin = -1; clock = 0; counters = []; gauges = []; histograms = [] }

(* {1 Fleet merge}

   The coordinator folds worker snapshots the same way [Dist.Merge]
   folds sync frames: keyed per origin, latest logical clock wins, ties
   broken by a total structural order so duplicate and out-of-order
   delivery are invisible. That keying is what makes the join a genuine
   semilattice — commutative, associative and idempotent — even though
   the cross-origin totals below *sum* counters. *)

module Fleet = struct
  (* Sorted by origin, at most one snapshot per origin. *)
  type nonrec t = snapshot list

  let empty = []

  (* Total order on same-origin snapshots: clock first, then structure.
     [compare] is safe here: snapshots are pure data (ints, floats,
     strings, histogram bucket arrays). *)
  let supersedes a b =
    a.clock > b.clock || (a.clock = b.clock && compare a b >= 0)

  let add t s =
    let rec go = function
      | [] -> [ s ]
      | x :: rest when x.origin < s.origin -> x :: go rest
      | x :: rest when x.origin = s.origin ->
        (if supersedes s x then s else x) :: rest
      | rest -> s :: rest
    in
    go t

  let join a b = List.fold_left add a b
  let equal (a : t) (b : t) = a = b
  let snapshots t = t

  (* Latest-by-clock across origins, ties to the higher origin: fold in
     ascending (clock, origin) order and let later snapshots overwrite. *)
  let latest_order a b = compare (a.clock, a.origin) (b.clock, b.origin)

  let totals t =
    let sum_int m (name, v) =
      let prev = try List.assoc name m with Not_found -> 0 in
      (name, prev + v) :: List.remove_assoc name m
    in
    let merge_hist m (name, h) =
      match List.assoc_opt name m with
      | None -> (name, h) :: m
      | Some h0 -> (name, Histogram.merge h0 h) :: List.remove_assoc name m
    in
    let counters =
      List.sort by_name
        (List.fold_left (fun m s -> List.fold_left sum_int m s.counters) [] t)
    in
    let gauges =
      List.sort by_name
        (List.fold_left
           (fun m s ->
             List.fold_left
               (fun m (name, v) -> (name, v) :: List.remove_assoc name m)
               m s.gauges)
           []
           (List.sort latest_order t))
    in
    let histograms =
      List.sort by_name
        (List.fold_left (fun m s -> List.fold_left merge_hist m s.histograms) [] t)
    in
    let clock = List.fold_left (fun acc s -> max acc s.clock) 0 t in
    { origin = -1; clock; counters; gauges; histograms }
end
