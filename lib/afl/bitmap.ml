let size = 65536

type t = Bytes.t
type sparse = (int * int) list
type builder = { counts : int array; mutable touched : int list }

let create () = Bytes.make size '\000'
let builder () = { counts = Array.make size 0; touched = [] }

(* AFL's hit-count bucketing: 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+. *)
let classify n =
  if n = 0 then 0
  else if n = 1 then 1
  else if n = 2 then 2
  else if n = 3 then 4
  else if n <= 7 then 8
  else if n <= 15 then 16
  else if n <= 31 then 32
  else if n <= 127 then 64
  else 128

let mix h =
  let h = h * 0x9E3779B1 in
  (h lxor (h lsr 16)) land (size - 1)

let sparse_of_trace b trace =
  let prev = ref 0 in
  Array.iter
    (fun oid ->
      let cur = mix (oid + 1) in
      let edge = (!prev lsr 1) lxor cur land (size - 1) in
      if b.counts.(edge) = 0 then b.touched <- edge :: b.touched;
      b.counts.(edge) <- b.counts.(edge) + 1;
      prev := cur)
    trace;
  let sparse =
    List.map (fun edge -> (edge, classify b.counts.(edge))) b.touched
  in
  List.iter (fun edge -> b.counts.(edge) <- 0) b.touched;
  b.touched <- [];
  sparse

let new_bits ~virgin sparse =
  List.exists
    (fun (edge, v) -> Char.code (Bytes.get virgin edge) land v <> v)
    sparse

let merge ~into sparse =
  List.iter
    (fun (edge, v) ->
      Bytes.set into edge (Char.chr (Char.code (Bytes.get into edge) lor v)))
    sparse

let union a b =
  let u = Bytes.create size in
  for i = 0 to size - 1 do
    Bytes.unsafe_set u i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get a i) lor Char.code (Bytes.unsafe_get b i)))
  done;
  u

let equal = Bytes.equal

let count_nonzero t =
  let n = ref 0 in
  for i = 0 to size - 1 do
    if Bytes.get t i <> '\000' then incr n
  done;
  !n
