(** Mergeable branch hit-counts.

    Where {!Coverage} answers "was this outcome ever observed", hit
    counts answer "by how many executions" — the global branch
    frequencies FairFuzz-style scheduling and distributed corpus sync
    need. Counts are kept in a dense array keyed by outcome id (ids are
    dense within a registry, like {!Coverage}'s bits) and grow on
    demand.

    The merge is pointwise addition, so folding per-shard counters from
    a distributed campaign in any grouping yields the same global
    counters: [merge] is commutative and associative, and the identity
    is {!create}[ ()]. Equality and serialisation ignore trailing
    zeroes, so two counters that witnessed the same executions compare
    equal regardless of internal capacity. *)

type t

val create : unit -> t
(** A fresh all-zero counter (the merge identity). *)

val copy : t -> t

val record : t -> int array -> unit
(** [record t touched] bumps the count of every outcome id in [touched]
    by one. Passing a run's [touched] array (first-occurrence outcome
    order) counts each branch once per execution that reached it —
    branch hit-counts in the FairFuzz sense, not loop iteration
    counts. *)

val count : t -> int -> int
(** Hits recorded for one outcome id (0 for ids never seen). *)

val merge : t -> t -> t
(** Pointwise sum, into a fresh counter. Commutative and associative;
    [merge t (create ())] equals [t]. *)

val equal : t -> t -> bool
(** Same count for every outcome id; internal capacity is ignored. *)

val cardinal : t -> int
(** Outcome ids with a non-zero count. *)

val total : t -> int
(** Sum of all counts — the number of (execution, branch) observations
    recorded. *)

val to_list : t -> (int * int) list
(** Non-zero [(outcome id, count)] pairs in increasing id order — the
    canonical serialised form. *)

val of_list : (int * int) list -> t
(** Inverse of {!to_list}; duplicate ids accumulate. *)
