(** A uniform driver over the three test generators, with the virtual
    time-budget model described in DESIGN.md §5: every (tool, subject)
    pair receives the same budget in {e units}, one AFL execution costs 1
    unit, and one pFuzzer or KLEE execution costs 100 units (the paper's
    ~100× instrumentation slowdown, §4; AFL generated ~1000× more inputs,
    §5.2). *)

type name = Afl | Klee | Pfuzzer

val all : name list
(** In the paper's presentation order: AFL, KLEE, pFuzzer. *)

val display_name : name -> string
val of_string : string -> name option
val cost_per_execution : name -> int

type outcome = {
  tool : name;
  subject : string;
  valid_inputs : string list;
  valid_coverage : Pdf_instr.Coverage.t;
  executions : int;
  cache : Pdf_core.Pfuzzer.cache_stats;
      (** pFuzzer's prefix-snapshot cache accounting; all zero for AFL
          and KLEE (they have no incremental engine) *)
  crashes : Pdf_core.Pfuzzer.crash list;
      (** deduplicated crash corpus; always empty for AFL and KLEE
          (their subjects run through the same contained runner via
          pFuzzer only) *)
  crash_total : int;  (** executions that ended in a contained crash *)
  hangs : int;  (** executions that exhausted their fuel *)
  wall_clock_s : float;  (** wall-clock duration of the run *)
  execs_per_sec : float;  (** [executions /. wall_clock_s], 0 if untimed *)
}

val empty_outcome : name -> subject:string -> outcome
(** The all-zero outcome: no inputs, no coverage, no executions. Used by
    {!Experiment} to mark a grid cell whose every execution attempt
    failed, so one sick cell cannot sink a whole evaluation. *)

val run :
  ?incremental:bool ->
  ?engine:Pdf_core.Pfuzzer.engine ->
  ?batch:int ->
  ?obs:Pdf_obs.Observer.t ->
  ?faults:Pdf_fault.Fault.plan ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Pdf_core.Pfuzzer.Checkpoint.t -> unit) ->
  ?resume_from:Pdf_core.Pfuzzer.Checkpoint.t ->
  ?on_execution:(Pdf_instr.Runner.run -> unit) ->
  name -> budget_units:int -> seed:int -> Pdf_subjects.Subject.t -> outcome
(** Run one tool on one subject until the unit budget is exhausted.
    [incremental] (default true) toggles pFuzzer's prefix-snapshot cache;
    the other tools ignore it. [engine] (default [Compiled]) selects
    pFuzzer's execution tier and [batch] its main-loop drain size — both
    pure-performance knobs with bit-identical results, ignored by AFL
    and KLEE. [obs] attaches a telemetry observer to
    pFuzzer's run (the other tools are merely wall-clock timed). The
    resilience arguments apply to pFuzzer only and are ignored by AFL and
    KLEE: [faults] installs a deterministic chaos plan, [on_checkpoint]
    receives a checkpoint every [checkpoint_every] executions,
    [resume_from] continues a checkpointed campaign (its config overrides
    [budget_units] and [seed]), and [on_execution] observes every
    completed run. *)
