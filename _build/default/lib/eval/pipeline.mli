(** The pragmatic tool chain the paper sketches at the end of §6.2:
    "start fuzzing with a fast lexical fuzzer such as AFL, continue with
    syntactic fuzzing such as pFuzzer, and solve remaining semantic
    constraints with symbolic analysis."

    Each stage receives a share of the common virtual budget and hands
    its valid corpus to the next stage as seed inputs. *)

type stage_report = {
  stage : Tool.name;
  new_valid : int;  (** valid inputs this stage added *)
  coverage_after : float;  (** cumulative valid-input coverage (%) *)
  executions : int;
}

type result = {
  valid_inputs : string list;  (** union corpus, discovery order *)
  valid_coverage : Pdf_instr.Coverage.t;
  stages : stage_report list;
}

val run :
  budget_units:int ->
  ?shares:(float * float * float) ->
  seed:int ->
  Pdf_subjects.Subject.t ->
  result
(** [run ~budget_units subject] executes AFL, then pFuzzer, then KLEE,
    splitting the budget by [shares] (default [0.5, 0.4, 0.1] of the
    total for AFL/pFuzzer/KLEE respectively, in units). *)
