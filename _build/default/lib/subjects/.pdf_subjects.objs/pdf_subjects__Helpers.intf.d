lib/subjects/helpers.mli: Pdf_instr Pdf_taint Pdf_util
