(** A uniform driver over the three test generators, with the virtual
    time-budget model described in DESIGN.md §5: every (tool, subject)
    pair receives the same budget in {e units}, one AFL execution costs 1
    unit, and one pFuzzer or KLEE execution costs 100 units (the paper's
    ~100× instrumentation slowdown, §4; AFL generated ~1000× more inputs,
    §5.2). *)

type name = Afl | Klee | Pfuzzer

val all : name list
(** In the paper's presentation order: AFL, KLEE, pFuzzer. *)

val display_name : name -> string
val of_string : string -> name option
val cost_per_execution : name -> int

type outcome = {
  tool : name;
  subject : string;
  valid_inputs : string list;
  valid_coverage : Pdf_instr.Coverage.t;
  executions : int;
  cache : Pdf_core.Pfuzzer.cache_stats;
      (** pFuzzer's prefix-snapshot cache accounting; all zero for AFL
          and KLEE (they have no incremental engine) *)
  wall_clock_s : float;  (** wall-clock duration of the run *)
  execs_per_sec : float;  (** [executions /. wall_clock_s], 0 if untimed *)
}

val run :
  ?incremental:bool ->
  ?obs:Pdf_obs.Observer.t ->
  name -> budget_units:int -> seed:int -> Pdf_subjects.Subject.t -> outcome
(** Run one tool on one subject until the unit budget is exhausted.
    [incremental] (default true) toggles pFuzzer's prefix-snapshot cache;
    the other tools ignore it. [obs] attaches a telemetry observer to
    pFuzzer's run (the other tools are merely wall-clock timed). *)
