module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site
module Charset = Pdf_util.Charset
module Tchar = Pdf_taint.Tchar
module Tstring = Pdf_taint.Tstring

let registry = Site.create_registry "mjs"
let block = Site.block registry
let branch = Site.branch registry

(* {1 Lexer} *)

let s_lex = block "lex"
let s_lex_word = block "lex.word"
let s_lex_number = block "lex.number"
let s_lex_string = block "lex.string"
let s_lex_op = block "lex.op"
let b_ws = branch "lex.ws?"
let b_word_start = branch "lex.word-start?"
let b_word_more = branch "lex.word-more?"
let b_digit = branch "lex.digit?"
let b_quote_double = branch "lex.double-quote?"
let b_quote_single = branch "lex.single-quote?"
let b_num_hex = branch "lex.hex-prefix?"
let b_num_hex_digit = branch "lex.hex-digit?"
let b_num_more = branch "lex.digit-more?"
let b_num_dot = branch "lex.num-dot?"
let b_num_frac = branch "lex.frac-digit?"
let b_num_exp = branch "lex.exp?"
let b_num_exp_sign = branch "lex.exp-sign?"
let b_num_exp_digit = branch "lex.exp-digit?"
let b_str_close = branch "lex.string-close?"
let b_str_escape = branch "lex.string-escape?"
let b_str_newline = branch "lex.string-newline?"
let b_esc_known = branch "lex.escape-known?"

type token =
  | Punct of string
  | Kw of string
  | Ident
  | Number
  | Str
  | Eof

(* Keywords and builtin names are recognised by instrumented string
   comparison, which is what lets the parser-directed fuzzer synthesise
   them character by character. The list mirrors mjs's reserved words plus
   the builtins the paper counts as tokens. *)
let keywords =
  [
    "break"; "case"; "catch"; "const"; "continue"; "debugger"; "default";
    "delete"; "do"; "else"; "false"; "finally"; "for"; "function"; "if";
    "in"; "instanceof"; "let"; "new"; "null"; "return"; "switch"; "this";
    "throw"; "true"; "try"; "typeof"; "undefined"; "var"; "void"; "while";
    "with"; "NaN"; "Object"; "JSON";
  ]

let b_keyword = List.map (fun kw -> (kw, branch (Printf.sprintf "lex.kw-%s?" kw))) keywords

(* Builtin member names, compared after a '.' member access. *)
let members = [ "stringify"; "indexOf"; "length" ]
let b_member = List.map (fun m -> (m, branch (Printf.sprintf "lex.member-%s?" m))) members
let s_member_known = block "lex.member-known"

(* All multi-character operators and punctuation, matched through a trie
   whose every edge is a tracked character comparison. *)
let operators =
  [
    "{"; "}"; "("; ")"; "["; "]"; ";"; ","; "."; "?"; ":"; "~";
    "+"; "+="; "++"; "-"; "-="; "--"; "*"; "*="; "/"; "/=";
    "%"; "%="; "&"; "&="; "&&"; "|"; "|="; "||"; "^"; "^=";
    "="; "=="; "==="; "!"; "!="; "!=="; "<"; "<="; "<<"; "<<=";
    ">"; ">="; ">>"; ">>="; ">>>"; ">>>=";
  ]

type op_node = {
  mutable terminal : string option;
  mutable edges : (char * Site.t * op_node) list;
}

let op_root = { terminal = None; edges = [] }

let () =
  let add op =
    let node = ref op_root in
    String.iteri
      (fun i c ->
        let prefix = String.sub op 0 (i + 1) in
        match List.find_opt (fun (ec, _, _) -> ec = c) !node.edges with
        | Some (_, _, child) -> node := child
        | None ->
          let site = branch (Printf.sprintf "lex.op-%s?" prefix) in
          let child = { terminal = None; edges = [] } in
          !node.edges <- !node.edges @ [ (c, site, child) ];
          node := child)
      op;
    !node.terminal <- Some op
  in
  List.iter add operators

let word_start = Charset.union Charset.letters (Charset.of_string "_$")
let word_chars = Charset.union word_start Charset.digits
let ws = Charset.of_string " \t\r\n"

let hex_digits =
  Charset.union Charset.digits
    (Charset.union (Charset.range 'a' 'f') (Charset.range 'A' 'F'))

let lex_word ctx =
  Ctx.with_frame ctx s_lex_word @@ fun () ->
  let word = Helpers.read_set ctx b_word_more ~label:"word-char" word_chars in
  let rec find = function
    | [] -> Ident
    | (kw, site) :: rest -> if Ctx.str_eq ctx site word kw then Kw kw else find rest
  in
  find b_keyword

let lex_number ctx =
  Ctx.with_frame ctx s_lex_number @@ fun () ->
  (match Ctx.next ctx with
   | None -> assert false (* caller saw a digit *)
   | Some first ->
     (match Ctx.peek ctx with
      | Some c
        when first.Tchar.ch = '0' && Ctx.one_of ctx b_num_hex c "xX" ->
        ignore (Ctx.next ctx);
        let ds = Helpers.read_set ctx b_num_hex_digit ~label:"hex-digit" hex_digits in
        if Tstring.length ds = 0 then Ctx.reject ctx "missing hex digits"
      | Some _ | None ->
        ignore (Helpers.read_set ctx b_num_more ~label:"digit" Charset.digits);
        (match Ctx.peek ctx with
         | Some c when Ctx.eq ctx b_num_dot c '.' ->
           ignore (Ctx.next ctx);
           let frac = Helpers.read_set ctx b_num_frac ~label:"digit" Charset.digits in
           if Tstring.length frac = 0 then Ctx.reject ctx "missing fraction digits"
         | Some _ | None -> ());
        (match Ctx.peek ctx with
         | Some c when Ctx.one_of ctx b_num_exp c "eE" ->
           ignore (Ctx.next ctx);
           (match Ctx.peek ctx with
            | Some c2 when Ctx.one_of ctx b_num_exp_sign c2 "+-" -> ignore (Ctx.next ctx)
            | Some _ | None -> ());
           let ex = Helpers.read_set ctx b_num_exp_digit ~label:"digit" Charset.digits in
           if Tstring.length ex = 0 then Ctx.reject ctx "missing exponent digits"
         | Some _ | None -> ())));
  Number

let lex_string ctx quote_site quote =
  Ctx.with_frame ctx s_lex_string @@ fun () ->
  ignore quote_site;
  ignore (Ctx.next ctx);
  (* opening quote *)
  let rec body () =
    match Ctx.next ctx with
    | None -> Ctx.reject ctx "unterminated string"
    | Some c ->
      if Ctx.eq ctx b_str_close c quote then Str
      else if Ctx.eq ctx b_str_escape c '\\' then begin
        (match Ctx.next ctx with
         | None -> Ctx.reject ctx "unterminated escape"
         | Some e ->
           if not (Ctx.one_of ctx b_esc_known e "nrtbfv0\\'\"") then
             Ctx.reject ctx "unknown escape");
        body ()
      end
      else if Ctx.eq ctx b_str_newline c '\n' then
        Ctx.reject ctx "newline in string literal"
      else body ()
  in
  body ()

let lex_op ctx =
  Ctx.with_frame ctx s_lex_op @@ fun () ->
  let rec walk node matched =
    let try_extend () =
      match Ctx.peek ctx with
      | None -> None
      | Some c ->
        let rec find = function
          | [] -> None
          | (ec, site, child) :: rest ->
            if Ctx.eq ctx site c ec then Some child else find rest
        in
        find node.edges
    in
    match try_extend () with
    | Some child ->
      ignore (Ctx.next ctx);
      walk child child.terminal
    | None ->
      (match matched with
       | Some op -> Punct op
       | None -> Ctx.reject ctx "unexpected character")
  in
  walk op_root None

let next_token ctx =
  Ctx.with_frame ctx s_lex @@ fun () ->
  Helpers.skip_set ctx b_ws ~label:"whitespace" ws;
  match Ctx.peek ctx with
  | None -> Eof
  | Some c ->
    if Ctx.in_set ctx b_word_start ~label:"word-start" c word_start then lex_word ctx
    else if Ctx.in_range ctx b_digit c '0' '9' then lex_number ctx
    else if Ctx.eq ctx b_quote_double c '"' then lex_string ctx b_quote_double '"'
    else if Ctx.eq ctx b_quote_single c '\'' then lex_string ctx b_quote_single '\''
    else lex_op ctx

(* {1 Parser} *)

let s_program = block "program"
let s_statement = block "statement"
let s_block = block "stmt.block"
let s_var = block "stmt.var"
let s_if = block "stmt.if"
let s_while = block "stmt.while"
let s_do = block "stmt.do"
let s_for = block "stmt.for"
let s_switch = block "stmt.switch"
let s_try = block "stmt.try"
let s_function = block "function"
let s_with = block "stmt.with"
let s_expr_stmt = block "stmt.expr"
let s_assign = block "expr.assign"
let s_cond = block "expr.cond"
let s_binary = block "expr.binary"
let s_unary = block "expr.unary"
let s_postfix = block "expr.postfix"
let s_call = block "expr.call"
let s_member = block "expr.member"
let s_primary = block "expr.primary"
let s_array_lit = block "expr.array"
let s_object_lit = block "expr.object"
let s_new = block "expr.new"
let b_stmt_kind = branch "stmt.kind-keyword?"
let b_block_more = branch "block.more?"
let b_var_init = branch "var.init?"
let b_var_more = branch "var.more?"
let b_else = branch "if.else?"
let b_for_in = branch "for.in?"
let b_for_cond = branch "for.cond?"
let b_for_step = branch "for.step?"
let b_case_more = branch "switch.case-more?"
let b_case_default = branch "switch.default?"
let b_catch = branch "try.catch?"
let b_finally = branch "try.finally?"
let b_return_value = branch "return.value?"
let b_fn_params_more = branch "function.params-more?"
let b_fn_anonymous = branch "function.anonymous?"
let b_assign_op = branch "assign.op?"
let b_ternary = branch "cond.ternary?"
let b_binop = branch "binary.op?"
let b_unop = branch "unary.op?"
let b_postop = branch "postfix.op?"
let b_call_more = branch "call.more?"
let b_args_more = branch "args.more?"
let b_elem_more = branch "array.more?"
let b_prop_more = branch "object.more?"
let b_prop_key = branch "object.key-kind?"
let b_new_args = branch "new.args?"
let b_trailing = branch "program.trailing?"
let b_semicolon = branch "stmt.semicolon"

type state = { ctx : Ctx.t; mutable tok : token }

let advance st = st.tok <- next_token st.ctx

let expect st expected site =
  if Ctx.branch st.ctx site (st.tok = Punct expected) then advance st
  else Ctx.reject st.ctx (Printf.sprintf "expected %S" expected)

let expect_kw st kw site =
  if Ctx.branch st.ctx site (st.tok = Kw kw) then advance st
  else Ctx.reject st.ctx (Printf.sprintf "expected keyword %S" kw)

let b_expect_lparen = branch "expect.lparen"
let b_expect_rparen = branch "expect.rparen"
let b_expect_lbrace = branch "expect.lbrace"
let b_expect_rbrace = branch "expect.rbrace"
let b_expect_rbracket = branch "expect.rbracket"
let b_expect_colon = branch "expect.colon"
let b_expect_while = branch "expect.while"
let b_expect_ident = branch "expect.ident"

let assign_ops =
  [ "="; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "<<="; ">>="; ">>>=" ]

let is_assign_op = function Punct p -> List.mem p assign_ops | _ -> false

(* Binary operator precedence tiers, loosest first. [Kw] entries cover
   [instanceof] and [in]. *)
let binary_tiers =
  [
    [ Punct "||" ];
    [ Punct "&&" ];
    [ Punct "|" ];
    [ Punct "^" ];
    [ Punct "&" ];
    [ Punct "=="; Punct "!="; Punct "==="; Punct "!==" ];
    [ Punct "<"; Punct ">"; Punct "<="; Punct ">="; Kw "instanceof"; Kw "in" ];
    [ Punct "<<"; Punct ">>"; Punct ">>>" ];
    [ Punct "+"; Punct "-" ];
    [ Punct "*"; Punct "/"; Punct "%" ];
  ]

let unary_ops = [ Punct "!"; Punct "~"; Punct "+"; Punct "-"; Punct "++"; Punct "--" ]
let unary_kws = [ "typeof"; "delete"; "void" ]

let rec statement st =
  Ctx.with_frame st.ctx s_statement @@ fun () ->
  Ctx.tick st.ctx;
  match st.tok with
  | Punct "{" -> block_stmt st
  | Punct ";" -> advance st
  | Kw ("var" | "let" | "const") -> var_stmt st
  | Kw "if" -> if_stmt st
  | Kw "while" -> while_stmt st
  | Kw "do" -> do_stmt st
  | Kw "for" -> for_stmt st
  | Kw "switch" -> switch_stmt st
  | Kw "try" -> try_stmt st
  | Kw "function" -> function_decl st ~named:true
  | Kw "with" -> with_stmt st
  | Kw "debugger" ->
    advance st;
    expect st ";" b_semicolon
  | Kw "break" | Kw "continue" ->
    ignore (Ctx.branch st.ctx b_stmt_kind true);
    advance st;
    expect st ";" b_semicolon
  | Kw "return" ->
    advance st;
    if Ctx.branch st.ctx b_return_value (st.tok <> Punct ";") then expression st;
    expect st ";" b_semicolon
  | Kw "throw" ->
    advance st;
    expression st;
    expect st ";" b_semicolon
  | Punct _ | Kw _ | Ident | Number | Str ->
    Ctx.with_frame st.ctx s_expr_stmt @@ fun () ->
    expression st;
    expect st ";" b_semicolon
  | Eof -> Ctx.reject st.ctx "expected statement, found end of input"

and block_stmt st =
  Ctx.with_frame st.ctx s_block @@ fun () ->
  expect st "{" b_expect_lbrace;
  let rec stmts () =
    if Ctx.branch st.ctx b_block_more (st.tok <> Punct "}" && st.tok <> Eof) then begin
      statement st;
      stmts ()
    end
  in
  stmts ();
  expect st "}" b_expect_rbrace

and var_stmt st =
  Ctx.with_frame st.ctx s_var @@ fun () ->
  advance st;
  (* var/let/const *)
  var_declarations st;
  expect st ";" b_semicolon

and var_declarations st =
  let rec decl () =
    (if Ctx.branch st.ctx b_expect_ident (st.tok = Ident) then advance st
     else Ctx.reject st.ctx "expected variable name");
    if Ctx.branch st.ctx b_var_init (st.tok = Punct "=") then begin
      advance st;
      assignment st
    end;
    if Ctx.branch st.ctx b_var_more (st.tok = Punct ",") then begin
      advance st;
      decl ()
    end
  in
  decl ()

and if_stmt st =
  Ctx.with_frame st.ctx s_if @@ fun () ->
  advance st;
  expect st "(" b_expect_lparen;
  expression st;
  expect st ")" b_expect_rparen;
  statement st;
  if Ctx.branch st.ctx b_else (st.tok = Kw "else") then begin
    advance st;
    statement st
  end

and while_stmt st =
  Ctx.with_frame st.ctx s_while @@ fun () ->
  advance st;
  expect st "(" b_expect_lparen;
  expression st;
  expect st ")" b_expect_rparen;
  statement st

and do_stmt st =
  Ctx.with_frame st.ctx s_do @@ fun () ->
  advance st;
  statement st;
  expect_kw st "while" b_expect_while;
  expect st "(" b_expect_lparen;
  expression st;
  expect st ")" b_expect_rparen;
  expect st ";" b_semicolon

and for_stmt st =
  Ctx.with_frame st.ctx s_for @@ fun () ->
  advance st;
  expect st "(" b_expect_lparen;
  (* Initialiser: empty, a declaration, or an expression; [for (x in e)]
     is recognised after a declaration-free identifier. *)
  (match st.tok with
   | Punct ";" -> ()
   | Kw ("var" | "let" | "const") ->
     advance st;
     var_declarations st
   | Punct _ | Kw _ | Ident | Number | Str | Eof -> expression st);
  if Ctx.branch st.ctx b_for_in (st.tok = Kw "in") then begin
    advance st;
    expression st;
    expect st ")" b_expect_rparen;
    statement st
  end
  else if st.tok = Punct ")" then begin
    (* for (x in y): the [in] was consumed inside the initialiser
       expression (the relational tier), leaving the closing paren. *)
    advance st;
    statement st
  end
  else begin
    expect st ";" b_semicolon;
    if Ctx.branch st.ctx b_for_cond (st.tok <> Punct ";") then expression st;
    expect st ";" b_semicolon;
    if Ctx.branch st.ctx b_for_step (st.tok <> Punct ")") then expression st;
    expect st ")" b_expect_rparen;
    statement st
  end

and switch_stmt st =
  Ctx.with_frame st.ctx s_switch @@ fun () ->
  advance st;
  expect st "(" b_expect_lparen;
  expression st;
  expect st ")" b_expect_rparen;
  expect st "{" b_expect_lbrace;
  let rec clauses () =
    if Ctx.branch st.ctx b_case_more (st.tok = Kw "case") then begin
      advance st;
      expression st;
      expect st ":" b_expect_colon;
      clause_stmts ();
      clauses ()
    end
    else if Ctx.branch st.ctx b_case_default (st.tok = Kw "default") then begin
      advance st;
      expect st ":" b_expect_colon;
      clause_stmts ();
      clauses ()
    end
  and clause_stmts () =
    if
      st.tok <> Kw "case" && st.tok <> Kw "default" && st.tok <> Punct "}"
      && st.tok <> Eof
    then begin
      statement st;
      clause_stmts ()
    end
  in
  clauses ();
  expect st "}" b_expect_rbrace

and try_stmt st =
  Ctx.with_frame st.ctx s_try @@ fun () ->
  advance st;
  block_stmt st;
  let caught = Ctx.branch st.ctx b_catch (st.tok = Kw "catch") in
  if caught then begin
    advance st;
    expect st "(" b_expect_lparen;
    (if Ctx.branch st.ctx b_expect_ident (st.tok = Ident) then advance st
     else Ctx.reject st.ctx "expected exception name");
    expect st ")" b_expect_rparen;
    block_stmt st
  end;
  if Ctx.branch st.ctx b_finally (st.tok = Kw "finally") then begin
    advance st;
    block_stmt st
  end
  else if not caught then Ctx.reject st.ctx "try without catch or finally"

and with_stmt st =
  Ctx.with_frame st.ctx s_with @@ fun () ->
  advance st;
  expect st "(" b_expect_lparen;
  expression st;
  expect st ")" b_expect_rparen;
  statement st

and function_decl st ~named =
  Ctx.with_frame st.ctx s_function @@ fun () ->
  advance st;
  (* function *)
  if Ctx.branch st.ctx b_fn_anonymous (st.tok = Ident) then advance st
  else if named then Ctx.reject st.ctx "expected function name";
  expect st "(" b_expect_lparen;
  (if st.tok <> Punct ")" then
     let rec params () =
       (if Ctx.branch st.ctx b_expect_ident (st.tok = Ident) then advance st
        else Ctx.reject st.ctx "expected parameter name");
       if Ctx.branch st.ctx b_fn_params_more (st.tok = Punct ",") then begin
         advance st;
         params ()
       end
     in
     params ());
  expect st ")" b_expect_rparen;
  block_stmt st

and expression st = assignment st

and assignment st =
  Ctx.with_frame st.ctx s_assign @@ fun () ->
  conditional st;
  if Ctx.branch st.ctx b_assign_op (is_assign_op st.tok) then begin
    (* Semantic lvalue checking is disabled, as in the paper's setup. *)
    advance st;
    assignment st
  end

and conditional st =
  Ctx.with_frame st.ctx s_cond @@ fun () ->
  binary st binary_tiers;
  if Ctx.branch st.ctx b_ternary (st.tok = Punct "?") then begin
    advance st;
    assignment st;
    expect st ":" b_expect_colon;
    assignment st
  end

and binary st tiers =
  match tiers with
  | [] -> unary st
  | ops :: rest ->
    Ctx.with_frame st.ctx s_binary @@ fun () ->
    binary st rest;
    let rec more () =
      Ctx.tick st.ctx;
      if Ctx.branch st.ctx b_binop (List.mem st.tok ops) then begin
        advance st;
        binary st rest;
        more ()
      end
    in
    more ()

and unary st =
  Ctx.with_frame st.ctx s_unary @@ fun () ->
  if Ctx.branch st.ctx b_unop (List.mem st.tok unary_ops) then begin
    advance st;
    unary st
  end
  else
    match st.tok with
    | Kw kw when List.mem kw unary_kws ->
      advance st;
      unary st
    | Kw "new" -> new_expr st
    | Punct _ | Kw _ | Ident | Number | Str | Eof -> postfix st

and new_expr st =
  Ctx.with_frame st.ctx s_new @@ fun () ->
  advance st;
  (* new *)
  primary st;
  if Ctx.branch st.ctx b_new_args (st.tok = Punct "(") then call_args st;
  call_tail st

and postfix st =
  Ctx.with_frame st.ctx s_postfix @@ fun () ->
  primary st;
  call_tail st;
  if Ctx.branch st.ctx b_postop (st.tok = Punct "++" || st.tok = Punct "--") then
    advance st

and call_tail st =
  Ctx.with_frame st.ctx s_call @@ fun () ->
  let rec tail () =
    Ctx.tick st.ctx;
    if Ctx.branch st.ctx b_call_more (st.tok = Punct ".") then begin
      advance_member st;
      tail ()
    end
    else if st.tok = Punct "[" then begin
      advance st;
      expression st;
      expect st "]" b_expect_rbracket;
      tail ()
    end
    else if st.tok = Punct "(" then begin
      call_args st;
      tail ()
    end
  in
  tail ()

(* A member access: read the member word with the instrumented lexer and
   compare it against the builtin names (how [indexOf], [stringify] and
   [length] become reachable tokens). Unknown members are fine. *)
and advance_member st =
  Ctx.with_frame st.ctx s_member @@ fun () ->
  (* The '.' token is current, so the stream cursor sits right after it:
     read the member word directly so its characters stay comparable. *)
  Helpers.skip_set st.ctx b_ws ~label:"whitespace" ws;
  (match Ctx.peek st.ctx with
   | Some c when Ctx.in_set st.ctx b_word_start ~label:"word-start" c word_start ->
     let word = Helpers.read_set st.ctx b_word_more ~label:"word-char" word_chars in
     let rec find = function
       | [] -> ()
       | (m, site) :: rest ->
         if Ctx.str_eq st.ctx site word m then Ctx.cover st.ctx s_member_known
         else find rest
     in
     find b_member
   | Some _ | None -> Ctx.reject st.ctx "expected member name");
  advance st

and call_args st =
  expect st "(" b_expect_lparen;
  (if st.tok <> Punct ")" then
     let rec args () =
       assignment st;
       if Ctx.branch st.ctx b_args_more (st.tok = Punct ",") then begin
         advance st;
         args ()
       end
     in
     args ());
  expect st ")" b_expect_rparen

and primary st =
  Ctx.with_frame st.ctx s_primary @@ fun () ->
  match st.tok with
  | Number | Str | Ident -> advance st
  | Kw ("true" | "false" | "null" | "undefined" | "NaN" | "this" | "Object" | "JSON") ->
    advance st
  | Kw "function" -> function_decl st ~named:false
  | Kw "new" -> new_expr st
  | Punct "(" ->
    advance st;
    expression st;
    expect st ")" b_expect_rparen
  | Punct "[" -> array_literal st
  | Punct "{" -> object_literal st
  | Punct _ | Kw _ | Eof -> Ctx.reject st.ctx "expected expression"

and array_literal st =
  Ctx.with_frame st.ctx s_array_lit @@ fun () ->
  advance st;
  (* '[' *)
  (if st.tok <> Punct "]" then
     let rec elems () =
       assignment st;
       if Ctx.branch st.ctx b_elem_more (st.tok = Punct ",") then begin
         advance st;
         elems ()
       end
     in
     elems ());
  expect st "]" b_expect_rbracket

and object_literal st =
  Ctx.with_frame st.ctx s_object_lit @@ fun () ->
  advance st;
  (* '{' *)
  (if st.tok <> Punct "}" then
     let rec props () =
       (match st.tok with
        | Ident | Str | Number | Kw _ ->
          ignore (Ctx.branch st.ctx b_prop_key true);
          advance st
        | Punct _ | Eof ->
          ignore (Ctx.branch st.ctx b_prop_key false);
          Ctx.reject st.ctx "expected property key");
       expect st ":" b_expect_colon;
       assignment st;
       if Ctx.branch st.ctx b_prop_more (st.tok = Punct ",") then begin
         advance st;
         props ()
       end
     in
     props ());
  expect st "}" b_expect_rbrace

let parse ctx =
  Ctx.with_frame ctx s_program @@ fun () ->
  let st = { ctx; tok = next_token ctx } in
  if st.tok = Eof then Ctx.reject ctx "empty program";
  let rec stmts () =
    if st.tok <> Eof then begin
      statement st;
      stmts ()
    end
  in
  stmts ();
  ignore (Ctx.branch ctx b_trailing (st.tok <> Eof))

(* {1 Token inventory (Table 4 shape)} *)

let tokens =
  let lit = Token.literal in
  let punct1 = [ "{"; "}"; "("; ")"; "["; "]"; ";"; ","; "<"; ">"; "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "!"; "~"; "?"; ":"; "="; "." ] in
  let punct2 = [ "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "=="; "!="; "<="; ">="; "&&"; "||"; "++"; "--"; "<<"; ">>" ] in
  let punct3 = [ "==="; "!=="; "<<="; ">>="; ">>>" ] in
  List.map lit punct1
  @ [ Token.make "identifier" 1; Token.make "number" 1 ]
  @ List.map lit punct2
  @ [ lit "if"; lit "in"; lit "do"; Token.make "string" 2 ]
  @ List.map lit punct3
  @ [ lit "for"; lit "try"; lit "let"; lit "new"; lit "var"; lit "NaN" ]
  @ [ lit ">>>="; lit "true"; lit "null"; lit "void"; lit "with"; lit "else"; lit "this"; lit "case"; lit "JSON" ]
  @ [ lit "false"; lit "throw"; lit "while"; lit "break"; lit "catch"; lit "const" ]
  @ [ lit "return"; lit "delete"; lit "typeof"; lit "Object"; lit "switch"; lit "length" ]
  @ [ lit "default"; lit "finally"; lit "indexOf" ]
  @ [ lit "continue"; lit "function"; lit "debugger" ]
  @ [ lit "undefined"; lit "stringify" ]
  @ [ lit "instanceof" ]

(* Untracked scanner over a known-valid input, longest-match. *)
let tokenize input =
  let tags = ref [] in
  let push tag = if not (List.mem tag !tags) then tags := tag :: !tags in
  let n = String.length input in
  let ops_by_length =
    List.sort (fun a b -> compare (String.length b) (String.length a)) operators
  in
  let is_word_char c =
    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false
  in
  let keyword_tags =
    keywords @ members
  in
  let rec scan i =
    if i < n then
      match input.[i] with
      | ' ' | '\t' | '\r' | '\n' -> scan (i + 1)
      | '"' | '\'' ->
        push "string";
        let q = input.[i] in
        let rec close j =
          if j >= n then j
          else if input.[j] = '\\' then close (j + 2)
          else if input.[j] = q then j + 1
          else close (j + 1)
        in
        scan (close (i + 1))
      | '0' .. '9' ->
        push "number";
        let rec num j =
          if
            j < n
            && (match input.[j] with
                | '0' .. '9' | '.' | 'x' | 'X' | 'e' | 'E' | 'a' .. 'd' | 'f' | 'A' .. 'D' | 'F' -> true
                | _ -> false)
          then num (j + 1)
          else j
        in
        scan (num (i + 1))
      | c when is_word_char c ->
        let rec word j = if j < n && is_word_char input.[j] then word (j + 1) else j in
        let j = word i in
        let w = String.sub input i (j - i) in
        if List.mem w keyword_tags then push w else push "identifier";
        scan j
      | _ ->
        let matched =
          List.find_opt
            (fun op ->
              let l = String.length op in
              i + l <= n && String.sub input i l = op)
            ops_by_length
        in
        (match matched with
         | Some op ->
           push op;
           scan (i + String.length op)
         | None -> scan (i + 1))
  in
  scan 0;
  List.rev !tags

let subject =
  {
    Subject.name = "mjs";
    description = "JavaScript subset (paper subject: mjs, semantic checks off)";
    registry;
    parse;
    machine = None;
    compiled = None;
    compiled_preferred = false;
    fuel = 8_000;
    tokens;
    tokenize;
    original_loc = 10_920;
  }
