lib/tables/ll1.mli: Cfg Format Pdf_util
