lib/core/pfuzzer.mli: Heuristic Pdf_instr Pdf_subjects
