module Rng = Pdf_util.Rng

exception Injected of string

type kind =
  | Raise of string
  | Starve_fuel
  | Slow of int
  | Corrupt_cache
  | Kill_worker

let kind_label = function
  | Raise _ -> "raise"
  | Starve_fuel -> "starve_fuel"
  | Slow _ -> "slow"
  | Corrupt_cache -> "corrupt_cache"
  | Kill_worker -> "kill_worker"

let pp_kind ppf = function
  | Raise msg -> Format.fprintf ppf "raise(%s)" msg
  | Starve_fuel -> Format.pp_print_string ppf "starve_fuel"
  | Slow n -> Format.fprintf ppf "slow(%d)" n
  | Corrupt_cache -> Format.pp_print_string ppf "corrupt_cache"
  | Kill_worker -> Format.pp_print_string ppf "kill_worker"

type plan = {
  faults : (int, kind) Hashtbl.t;
  mutable triggered_rev : (int * kind) list;
  (* Notified on every consumed fault. Generic so pdf_fault stays free
     of telemetry dependencies; the fuzzer points it at the flight
     recorder to dump a post-mortem when a drill fires. *)
  mutable on_trigger : (int -> kind -> unit) option;
}

let empty () = { faults = Hashtbl.create 0; triggered_rev = []; on_trigger = None }

let of_list bindings =
  let faults = Hashtbl.create (List.length bindings) in
  List.iter
    (fun (index, kind) ->
      if index < 0 then invalid_arg "Fault.of_list: negative execution index";
      Hashtbl.replace faults index kind)
    bindings;
  { faults; triggered_rev = []; on_trigger = None }

(* All injectable kinds except Kill_worker, which only makes sense for
   grid cells, not fuzzer execution indices. *)
let seeded_kinds =
  [|
    (fun _rng -> Raise "injected fault");
    (fun _rng -> Starve_fuel);
    (fun rng -> Slow (1_000 + Rng.int rng 10_000));
    (fun _rng -> Corrupt_cache);
  |]

let seeded ~seed ~executions ~count =
  if executions <= 0 || count <= 0 then empty ()
  else begin
    let rng = Rng.make (0x7a17 lxor seed) in
    let faults = Hashtbl.create count in
    (* Sample without replacement so [count] distinct executions fault. *)
    let attempts = ref 0 in
    while Hashtbl.length faults < min count executions && !attempts < count * 64 do
      incr attempts;
      (* Index 0 is the campaign's very first execution; keep it faultable. *)
      let index = Rng.int rng executions in
      if not (Hashtbl.mem faults index) then
        Hashtbl.replace faults index ((Rng.choose rng seeded_kinds) rng)
    done;
    { faults; triggered_rev = []; on_trigger = None }
  end

let is_empty plan = Hashtbl.length plan.faults = 0
let size plan = Hashtbl.length plan.faults

let find plan index = Hashtbl.find_opt plan.faults index

let set_on_trigger plan f = plan.on_trigger <- Some f

let consume plan index =
  match Hashtbl.find_opt plan.faults index with
  | None -> None
  | Some kind as hit ->
    plan.triggered_rev <- (index, kind) :: plan.triggered_rev;
    (match plan.on_trigger with None -> () | Some f -> f index kind);
    hit

let triggered plan = List.rev plan.triggered_rev

let count_triggered plan pred =
  List.fold_left
    (fun acc (_, k) -> if pred k then acc + 1 else acc)
    0 plan.triggered_rev

let reset plan = plan.triggered_rev <- []
