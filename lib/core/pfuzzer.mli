(** The parser-directed fuzzer: Algorithm 1 of the paper.

    Starting from one random character, the fuzzer alternates two
    executions per iteration — the candidate input itself and the
    candidate extended by one random character — and, whenever a run is
    rejected, enqueues one new candidate per comparison made against the
    last compared input position, splicing in the character(s) the parser
    expected there. Valid inputs (accepted {e and} covering new branches)
    are reported, extend the valid-branch set, and trigger a full
    re-ranking of the queue. *)

type config = {
  seed : int;  (** RNG seed; equal seeds give equal runs *)
  max_executions : int;  (** budget in subject executions *)
  max_input_len : int;  (** candidates longer than this are discarded *)
  heuristic : Heuristic.variant;
  queue_bound : int;  (** queue is truncated to this many entries *)
  dedupe : bool;  (** drop candidates whose input was already queued *)
  incremental : bool;
      (** resume children from their parent's cached parse state instead
          of re-parsing the shared prefix (subjects with a machine-form
          parser only; observable results are bit-identical either way) *)
}

val default_config : config
(** seed 1, 2000 executions, inputs up to 64 characters, {!Heuristic.Prose},
    queue bound 50_000, dedupe on, incremental on. *)

type cache_stats = {
  hits : int;  (** executions that resumed from a cached suspension *)
  misses : int;  (** cache consultations that found no entry *)
  evictions : int;
  chars_saved : int;
      (** total prefix characters whose re-parsing hits avoided *)
}

val no_cache_stats : cache_stats
(** All-zero stats, reported when the cache was not in play. *)

type result = {
  valid_inputs : string list;  (** in discovery order *)
  valid_coverage : Pdf_instr.Coverage.t;
      (** union of the full coverage of all valid inputs (the paper's
          [vBr]) *)
  executions : int;  (** executions actually performed *)
  candidates_created : int;
  queue_peak : int;
  first_valid_at : int option;
      (** execution count when the first valid input appeared *)
  dedupe_resets : int;
      (** times the input-dedupe table hit its cap (4 × [queue_bound])
          and was generationally reset to bound memory *)
  path_resets : int;
      (** same, for the path-novelty count table *)
  cache : cache_stats;
      (** prefix-snapshot cache accounting; all zero when incremental
          execution was off or the subject has no machine-form parser *)
  wall_clock_s : float;  (** wall-clock duration of the whole run *)
  execs_per_sec : float;
      (** [executions /. wall_clock_s]; 0 when the run took no
          measurable time *)
}

type queue_event =
  | Pushed of float * string  (** candidate enqueued with this priority *)
  | Popped of float * string  (** candidate dequeued for execution *)
  | Reranked of (float * string) list
      (** queue re-prioritised after a valid input; the snapshot lists
          the pending entries in insertion order with new priorities *)
  | Truncated of (float * string) list
      (** queue truncated to its bound; snapshot as in [Reranked] *)

val fuzz :
  ?on_valid:(string -> unit) ->
  ?on_queue_event:(queue_event -> unit) ->
  ?on_execution:(Pdf_instr.Runner.run -> unit) ->
  ?obs:Pdf_obs.Observer.t ->
  ?initial_inputs:string list ->
  config ->
  Pdf_subjects.Subject.t ->
  result
(** Run the fuzzer against a subject until the execution budget is
    exhausted. [on_valid] is called on each valid input as it is found.
    [on_queue_event] observes every candidate-queue operation (snapshots
    are only taken when the observer is present) — the correctness
    harness replays them against a reference queue model to check
    priority monotonicity. [on_execution] observes every completed run in
    execution order — the incremental≡full equivalence invariant compares
    these streams. [obs] attaches a telemetry observer: structured trace
    events, per-phase timing spans, periodic status snapshots — when
    absent (the default) the telemetry paths cost one branch and allocate
    nothing. [initial_inputs] seeds the candidate queue — the §6.2
    hand-over point when pFuzzer continues from a lexical fuzzer's
    corpus. *)
