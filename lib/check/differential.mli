(** Differential fuzzing of an instrumented subject against its
    reference oracle.

    Inputs come from three interleaved streams — grammar-derived valid
    inputs, oracle-rejected mutants of those, and short random strings —
    and every one is judged by both deciders. Three properties are
    checked:

    - {b verdict agreement}: subject accepts iff oracle accepts;
    - {b no hangs}: the subject never exhausts its fuel on these inputs;
    - {b EOF hunger}: every proper prefix of an agreed-valid input is
      either itself accepted or rejected with an EOF access recorded —
      the signal Algorithm 1 needs to know an input wants extension
      rather than substitution.

    Every disagreement is shrunk to a local minimum before being
    reported. *)

type kind =
  | Verdict_mismatch  (** subject and oracle decide differently *)
  | Hang  (** subject ran out of fuel *)
  | Eof_starvation
      (** a prefix of a valid input was rejected without EOF access *)

type disagreement = {
  input : string;  (** as found *)
  shrunk : string;  (** minimised, still disagreeing *)
  kind : kind;
  detail : string;
}

type report = {
  subject : string;
  executions : int;  (** subject executions, including shrinking *)
  inputs_checked : int;
  prefixes_checked : int;
  disagreements : disagreement list;
}

val run :
  ?execs:int -> ?seed:int -> Pdf_subjects.Subject.t -> Oracle.t -> report
(** [run subject oracle] spends about [execs] (default 2000) subject
    executions, seeded by [seed] (default 1). Stops early after 10
    disagreements. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_report : Format.formatter -> report -> unit
