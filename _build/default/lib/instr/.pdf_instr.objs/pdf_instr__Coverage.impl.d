lib/instr/coverage.ml: Int Pdf_util Set Site
