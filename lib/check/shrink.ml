let canonical_chars = [ 'a'; '0'; ' ' ]

let shrink ?(max_evals = 5_000) p s =
  let evals = ref 0 in
  let holds s = incr evals; !evals <= max_evals && p s in
  let best = ref s in
  (* Chunk deletion, largest chunks first; restart from the top after
     every successful deletion so later chunks are re-tried against the
     shorter string. *)
  let rec delete_pass () =
    let s = !best in
    let n = String.length s in
    let try_chunk size =
      let found = ref false in
      let at = ref 0 in
      while (not !found) && !at + size <= n do
        let candidate =
          String.sub s 0 !at ^ String.sub s (!at + size) (n - !at - size)
        in
        if holds candidate then begin
          best := candidate;
          found := true
        end
        else incr at
      done;
      !found
    in
    let rec sizes size =
      if size >= 1 && !evals <= max_evals then
        if try_chunk size then delete_pass () else sizes (size / 2)
    in
    if n > 0 then sizes (max 1 (n / 2))
  in
  delete_pass ();
  (* Character canonicalisation on the length-minimal survivor. *)
  let canon_pass () =
    let changed = ref false in
    String.iteri
      (fun i c ->
        List.iter
          (fun r ->
            if r < c && !evals <= max_evals then begin
              let s = !best in
              let candidate = String.mapi (fun j d -> if j = i then r else d) s in
              if holds candidate then begin
                best := candidate;
                changed := true
              end
            end)
          canonical_chars)
      !best;
    !changed
  in
  while canon_pass () && !evals <= max_evals do
    ()
  done;
  !best
