module Fault = Pdf_fault.Fault
module Pfuzzer = Pdf_core.Pfuzzer
module Subject = Pdf_subjects.Subject
module Coverage = Pdf_instr.Coverage
module Runner = Pdf_instr.Runner
module Parallel = Pdf_eval.Parallel

(* Distinct execution indices spread across the budget, away from both
   ends so every fault fires before the budget runs out. *)
let spread_indices execs =
  List.sort_uniq compare
    [ execs / 7; execs / 3; execs / 2; 2 * execs / 3; (5 * execs / 6) + 1 ]
  |> List.filter (fun i -> i > 0 && i < execs)

let count_kind kind plan =
  List.length
    (List.filter (fun (_, k) -> k = kind) (Fault.triggered plan))

(* The campaign-level degradation invariants: the budget is exhausted
   (a fault never aborts the loop), every reported valid input is still
   genuinely accepted, and the reported valid coverage is still exactly
   the union of the valid inputs' full coverage. *)
let campaign_intact subject (r : Pfuzzer.result) execs =
  if r.executions <> execs then
    Some (Printf.sprintf "campaign stopped at %d/%d executions" r.executions execs)
  else if not (List.for_all (Subject.accepts subject) r.valid_inputs) then
    Some "a reported valid input is not accepted by the subject"
  else begin
    let union =
      List.fold_left
        (fun acc input ->
          Coverage.union acc (Subject.run subject input).Runner.coverage)
        Coverage.empty r.valid_inputs
    in
    if not (Coverage.equal union r.valid_coverage) then
      Some "valid coverage is no longer the union of the valid inputs' coverage"
    else None
  end

let run ?(execs = 400) ?(seed = 1) (subject : Subject.t) =
  let checks = ref [] in
  let add name ok detail =
    checks := { Invariants.name; ok; detail } :: !checks
  in
  let config = { Pfuzzer.default_config with seed; max_executions = execs } in
  let baseline = Pfuzzer.fuzz config subject in
  (* A seeded mixed-kind plan: the campaign must absorb every fault and
     still satisfy the queue/coverage invariants. *)
  let plan =
    Fault.seeded ~seed ~executions:execs ~count:(max 4 (execs / 20))
  in
  let r = Pfuzzer.fuzz ~faults:plan config subject in
  let fired = List.length (Fault.triggered plan) in
  (match campaign_intact subject r execs with
   | Some why -> add "chaos-survival" false why
   | None ->
     add "chaos-survival" (fired > 0)
       (if fired > 0 then
          Printf.sprintf
            "%d injected faults absorbed (%d crashes, %d hangs, %d rescues); \
             %d valid inputs all intact"
            fired r.crash_total r.hangs r.cache.rescues
            (List.length r.valid_inputs)
        else "no fault fired — plan too sparse for the budget"));
  (* Injected exceptions: every one must surface as exactly one
     contained crash, and they all share one (exception, site)
     identity, so the corpus stays deduplicated. *)
  let idxs = spread_indices execs in
  let raise_plan =
    Fault.of_list (List.map (fun i -> (i, Fault.Raise "chaos raise")) idxs)
  in
  let r_raise = Pfuzzer.fuzz ~faults:raise_plan config subject in
  let raised = count_kind (Fault.Raise "chaos raise") raise_plan in
  let contained =
    raised = List.length idxs
    && r_raise.crash_total >= raised
    && (match r_raise.crashes with
        | [ c ] -> c.Pfuzzer.count >= raised
        | _ -> false)
    && campaign_intact subject r_raise execs = None
  in
  add "crash-containment" contained
    (if contained then
       Printf.sprintf
         "%d injected exceptions -> %d contained crashes, 1 deduplicated identity"
         raised r_raise.crash_total
     else
       Printf.sprintf
         "%d/%d faults fired, %d crashes, %d identities"
         raised (List.length idxs) r_raise.crash_total
         (List.length r_raise.crashes));
  (* Fuel starvation must surface as hangs, not as aborts. *)
  let starve_plan =
    Fault.of_list (List.map (fun i -> (i, Fault.Starve_fuel)) idxs)
  in
  let r_starve = Pfuzzer.fuzz ~faults:starve_plan config subject in
  let starved = count_kind Fault.Starve_fuel starve_plan in
  let starve_ok =
    starved = List.length idxs
    && r_starve.hangs >= starved
    && campaign_intact subject r_starve execs = None
  in
  add "starvation-hangs" starve_ok
    (if starve_ok then
       Printf.sprintf "%d starved executions -> %d hangs" starved r_starve.hangs
     else
       Printf.sprintf "%d/%d faults fired but only %d hangs" starved
         (List.length idxs) r_starve.hangs);
  (* Slow executions change nothing but the wall clock. *)
  let slow_plan =
    Fault.of_list (List.map (fun i -> (i, Fault.Slow 20_000)) idxs)
  in
  let r_slow = Pfuzzer.fuzz ~faults:slow_plan config subject in
  let slow_ok = Invariants.results_equal baseline r_slow in
  add "slowdown-neutrality" slow_ok
    (if slow_ok then
       Printf.sprintf "%d slowed executions; campaign bit-identical"
         (count_kind (Fault.Slow 20_000) slow_plan)
     else "slow faults perturbed the campaign");
  (* Corrupting every cached snapshot mid-campaign must be invisible:
     poisoned resumes are rescued by cold re-execution. *)
  let corrupt_plan =
    Fault.of_list (List.map (fun i -> (i, Fault.Corrupt_cache)) idxs)
  in
  let r_corrupt = Pfuzzer.fuzz ~faults:corrupt_plan config subject in
  let corrupt_ok = Invariants.results_equal baseline r_corrupt in
  add "snapshot-corruption-neutrality" corrupt_ok
    (if corrupt_ok then
       Printf.sprintf
         "cache poisoned %d times; %d poisoned resumes rescued; campaign \
          bit-identical"
         (count_kind Fault.Corrupt_cache corrupt_plan)
         r_corrupt.cache.rescues
     else "cache corruption leaked into the campaign results");
  (* Worker-domain death in the parallel grid: a task that dies on its
     first attempts is retried to success; one that always dies is
     marked failed without sinking its neighbours. *)
  let attempts = Array.init 8 (fun _ -> Atomic.make 0) in
  let flaky i =
    let a = Atomic.fetch_and_add attempts.(i) 1 in
    if i = 3 && a < 2 then raise (Fault.Injected "worker death");
    i * i
  in
  let recovered =
    Parallel.map_retry ~jobs:3 ~retries:2 flaky (List.init 8 Fun.id)
  in
  let all_ok =
    List.for_all2
      (fun i r -> r = Ok (i * i))
      (List.init 8 Fun.id) recovered
  in
  let abandoned =
    Parallel.map_retry ~jobs:2 ~retries:1
      (fun i -> if i = 1 then raise (Fault.Injected "always dead") else i)
      [ 0; 1; 2 ]
  in
  let marked =
    match abandoned with
    | [ Ok 0; Error (Fault.Injected _); Ok 2 ] -> true
    | _ -> false
  in
  add "worker-death-retry" (all_ok && marked)
    (if all_ok && marked then
       "flaky task recovered by retry; permanently dead task marked failed \
        without sinking the grid"
     else if not all_ok then "a flaky task was not recovered by retries"
     else "a permanently failing task was not isolated correctly");
  { Invariants.subject = subject.Subject.name; checks = List.rev !checks }

let ok = Invariants.ok

let pp_report ppf (r : Invariants.report) =
  Format.fprintf ppf "chaos %s:" r.subject;
  List.iter
    (fun (c : Invariants.check) ->
      Format.fprintf ppf "@.  [%s] %s: %s"
        (if c.ok then "ok" else "FAIL")
        c.name c.detail)
    r.checks
