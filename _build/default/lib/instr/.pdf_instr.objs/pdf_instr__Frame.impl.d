lib/instr/frame.ml: Format Site
