(** AFL's mutation pipeline: the deterministic stages applied once per
    queue entry, and the stacked random "havoc" stage. All mutators are
    pure string transformers driven by an explicit RNG. *)

val deterministic : string -> string list
(** All deterministic-stage variants of an input, in stage order:
    walking bit flips (1/2/4 wide), byte flips, 8-bit arithmetic
    (±1..±16), and interesting-byte substitution. Empty for the empty
    string. *)

val havoc : Pdf_util.Rng.t -> string -> string
(** One havoc mutation: 1–8 stacked random operations (bit flip, random
    byte, arithmetic, interesting byte, delete, insert, duplicate
    block). *)

val splice : Pdf_util.Rng.t -> string -> string -> string
(** AFL's splice stage: the head of one input glued to the tail of
    another, then havoc'd. *)

val interesting_bytes : char list
(** The substitution alphabet of the interesting-byte stage. *)
