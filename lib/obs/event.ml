type t =
  | Run_meta of {
      subject : string;
      outcomes : int;
      seed : int;
      max_executions : int;
      incremental : bool;
      engine : string;
    }
  | Cell of { tool : string; subject : string; seed : int }
  | Exec_start of { len : int; prefix : int }
  | Exec_done of {
      dur_ns : int;
      verdict : string;
      engine : string;
      cached : bool;
      sub_index : int;
      cov : int;
      cov_delta : int;
      valid : bool;
      len : int;
    }
  | Valid of { input : string; cov : int; count : int }
  | Queue_push of { prio : float; len : int; depth : int }
  | Queue_pop of { prio : float; len : int; depth : int }
  | Queue_rerank of { depth : int }
  | Queue_trunc of { dropped : int; depth : int }
  | Cache_hit of { saved : int }
  | Cache_miss
  | Cache_evict of { evictions : int }
  | Reset of { table : string }
  | Hang of { total : int }
  | Crash of { exn : string; site : int; fresh : bool; total : int }
  | Fault of { kind : string }
  | Rescue of { prefix : int }
  | Retry of { what : string; attempt : int; detail : string }
  | Snapshot of {
      execs_per_sec : float;
      depth : int;
      valid : int;
      cov : int;
      hits : int;
      misses : int;
      rescues : int;
      plateau : int;
      hangs : int;
      crashes : int;
    }
  | Phases of { spans : (string * int) list; wall_ns : int }
  | Run_done of { valid : int; cov : int; wall_ns : int; execs_per_sec : float }
  | Shard of { shard : int; seed : int; budget : int }
  | Worker_spawn of { worker : int; pid : int; shards : int }
  | Worker_frame of { worker : int; shard : int; seq : int; final : bool }
  | Worker_exit of { worker : int; status : string; missing : int }

type stamped = { t_ns : int; exec : int; ev : t }

let kind = function
  | Run_meta _ -> "run_meta"
  | Cell _ -> "cell"
  | Exec_start _ -> "exec_start"
  | Exec_done _ -> "exec_done"
  | Valid _ -> "valid"
  | Queue_push _ -> "queue_push"
  | Queue_pop _ -> "queue_pop"
  | Queue_rerank _ -> "queue_rerank"
  | Queue_trunc _ -> "queue_trunc"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss -> "cache_miss"
  | Cache_evict _ -> "cache_evict"
  | Reset _ -> "reset"
  | Hang _ -> "hang"
  | Crash _ -> "crash"
  | Fault _ -> "fault"
  | Rescue _ -> "rescue"
  | Retry _ -> "retry"
  | Snapshot _ -> "snapshot"
  | Phases _ -> "phases"
  | Run_done _ -> "run_done"
  | Shard _ -> "shard"
  | Worker_spawn _ -> "worker_spawn"
  | Worker_frame _ -> "worker_frame"
  | Worker_exit _ -> "worker_exit"

(* Payload fields, in the order they are serialized. Span totals in
   [Phases] serialize as one field per span named [<span>_ns], so the
   schema stays flat. *)
let fields ev =
  let open Json in
  match ev with
  | Run_meta m ->
    [
      ("subject", S m.subject);
      ("outcomes", I m.outcomes);
      ("seed", I m.seed);
      ("max_executions", I m.max_executions);
      ("incremental", B m.incremental);
      ("engine", S m.engine);
    ]
  | Cell c -> [ ("tool", S c.tool); ("subject", S c.subject); ("seed", I c.seed) ]
  | Exec_start e -> [ ("len", I e.len); ("prefix", I e.prefix) ]
  | Exec_done e ->
    [
      ("dur_ns", I e.dur_ns);
      ("verdict", S e.verdict);
      ("engine", S e.engine);
      ("cached", B e.cached);
      ("sub", I e.sub_index);
      ("cov", I e.cov);
      ("cov_delta", I e.cov_delta);
      ("valid", B e.valid);
      ("len", I e.len);
    ]
  | Valid v -> [ ("input", S v.input); ("cov", I v.cov); ("count", I v.count) ]
  | Queue_push q -> [ ("prio", F q.prio); ("len", I q.len); ("depth", I q.depth) ]
  | Queue_pop q -> [ ("prio", F q.prio); ("len", I q.len); ("depth", I q.depth) ]
  | Queue_rerank q -> [ ("depth", I q.depth) ]
  | Queue_trunc q -> [ ("dropped", I q.dropped); ("depth", I q.depth) ]
  | Cache_hit c -> [ ("saved", I c.saved) ]
  | Cache_miss -> []
  | Cache_evict c -> [ ("evictions", I c.evictions) ]
  | Reset r -> [ ("table", S r.table) ]
  | Hang h -> [ ("total", I h.total) ]
  | Crash c ->
    [
      ("exn", S c.exn);
      ("site", I c.site);
      ("fresh", B c.fresh);
      ("total", I c.total);
    ]
  | Fault fa -> [ ("kind", S fa.kind) ]
  | Rescue r -> [ ("prefix", I r.prefix) ]
  | Retry r ->
    [ ("what", S r.what); ("attempt", I r.attempt); ("detail", S r.detail) ]
  | Snapshot s ->
    [
      ("execs_per_sec", F s.execs_per_sec);
      ("depth", I s.depth);
      ("valid", I s.valid);
      ("cov", I s.cov);
      ("hits", I s.hits);
      ("misses", I s.misses);
      ("rescues", I s.rescues);
      ("plateau", I s.plateau);
      ("hangs", I s.hangs);
      ("crashes", I s.crashes);
    ]
  | Phases p ->
    List.map (fun (name, ns) -> (name ^ "_ns", Json.I ns)) p.spans
    @ [ ("wall_ns", I p.wall_ns) ]
  | Run_done r ->
    [
      ("valid", I r.valid);
      ("cov", I r.cov);
      ("wall_ns", I r.wall_ns);
      ("execs_per_sec", F r.execs_per_sec);
    ]
  | Shard s ->
    [ ("shard", I s.shard); ("seed", I s.seed); ("budget", I s.budget) ]
  | Worker_spawn w ->
    [ ("worker", I w.worker); ("pid", I w.pid); ("shards", I w.shards) ]
  | Worker_frame w ->
    [
      ("worker", I w.worker);
      ("shard", I w.shard);
      ("seq", I w.seq);
      ("final", B w.final);
    ]
  | Worker_exit w ->
    [ ("worker", I w.worker); ("status", S w.status); ("missing", I w.missing) ]

let to_json_line { t_ns; exec; ev } =
  Json.flat_to_string
    ([ ("ev", Json.S (kind ev)); ("t", Json.I t_ns); ("n", Json.I exec) ]
    @ fields ev)

(* {1 Parsing} *)

let get fields k = List.assoc_opt k fields

let int_field fields k =
  match get fields k with
  | Some (Json.I i) -> i
  | _ -> Json.fail "missing int field %S" k

let str_field fields k =
  match get fields k with
  | Some (Json.S s) -> s
  | _ -> Json.fail "missing string field %S" k

let bool_field fields k =
  match get fields k with
  | Some (Json.B b) -> b
  | _ -> Json.fail "missing bool field %S" k

(* Traces written before a field existed parse with its default, so old
   traces keep loading across schema growth ([engine] arrived after the
   first release of the format). *)
let str_field_default fields k default =
  match get fields k with Some (Json.S s) -> s | _ -> default

let int_field_default fields k default =
  match get fields k with Some (Json.I i) -> i | _ -> default

(* JSON has one number type: an integral float serializes without a
   fractional part only sometimes, so accept either shape for floats. *)
let float_field fields k =
  match get fields k with
  | Some (Json.F f) -> f
  | Some (Json.I i) -> float_of_int i
  | _ -> Json.fail "missing float field %S" k

let of_fields fields =
  let f = fields in
  let ev =
    match str_field f "ev" with
    | "run_meta" ->
      Run_meta
        {
          subject = str_field f "subject";
          outcomes = int_field f "outcomes";
          seed = int_field f "seed";
          max_executions = int_field f "max_executions";
          incremental = bool_field f "incremental";
          engine = str_field_default f "engine" "interpreted";
        }
    | "cell" ->
      Cell
        {
          tool = str_field f "tool";
          subject = str_field f "subject";
          seed = int_field f "seed";
        }
    | "exec_start" ->
      Exec_start { len = int_field f "len"; prefix = int_field f "prefix" }
    | "exec_done" ->
      Exec_done
        {
          dur_ns = int_field f "dur_ns";
          verdict = str_field f "verdict";
          engine = str_field_default f "engine" "interpreted";
          cached = bool_field f "cached";
          sub_index = int_field f "sub";
          cov = int_field f "cov";
          cov_delta = int_field f "cov_delta";
          valid = bool_field f "valid";
          len = int_field f "len";
        }
    | "valid" ->
      Valid
        {
          input = str_field f "input";
          cov = int_field f "cov";
          count = int_field f "count";
        }
    | "queue_push" ->
      Queue_push
        {
          prio = float_field f "prio";
          len = int_field f "len";
          depth = int_field f "depth";
        }
    | "queue_pop" ->
      Queue_pop
        {
          prio = float_field f "prio";
          len = int_field f "len";
          depth = int_field f "depth";
        }
    | "queue_rerank" -> Queue_rerank { depth = int_field f "depth" }
    | "queue_trunc" ->
      Queue_trunc { dropped = int_field f "dropped"; depth = int_field f "depth" }
    | "cache_hit" -> Cache_hit { saved = int_field f "saved" }
    | "cache_miss" -> Cache_miss
    | "cache_evict" -> Cache_evict { evictions = int_field f "evictions" }
    | "reset" -> Reset { table = str_field f "table" }
    | "hang" -> Hang { total = int_field f "total" }
    | "crash" ->
      Crash
        {
          exn = str_field f "exn";
          site = int_field f "site";
          fresh = bool_field f "fresh";
          total = int_field f "total";
        }
    | "fault" -> Fault { kind = str_field f "kind" }
    | "rescue" -> Rescue { prefix = int_field f "prefix" }
    | "retry" ->
      Retry
        {
          what = str_field f "what";
          attempt = int_field f "attempt";
          detail = str_field f "detail";
        }
    | "snapshot" ->
      Snapshot
        {
          execs_per_sec = float_field f "execs_per_sec";
          depth = int_field f "depth";
          valid = int_field f "valid";
          cov = int_field f "cov";
          hits = int_field f "hits";
          misses = int_field f "misses";
          rescues = int_field_default f "rescues" 0;
          plateau = int_field f "plateau";
          hangs = int_field f "hangs";
          crashes = int_field f "crashes";
        }
    | "phases" ->
      let spans =
        List.filter_map
          (fun (k, v) ->
            match v with
            | Json.I ns
              when k <> "wall_ns" && k <> "t"
                   && String.length k > 3
                   && String.sub k (String.length k - 3) 3 = "_ns" ->
              Some (String.sub k 0 (String.length k - 3), ns)
            | _ -> None)
          f
      in
      Phases { spans; wall_ns = int_field f "wall_ns" }
    | "run_done" ->
      Run_done
        {
          valid = int_field f "valid";
          cov = int_field f "cov";
          wall_ns = int_field f "wall_ns";
          execs_per_sec = float_field f "execs_per_sec";
        }
    | "shard" ->
      Shard
        {
          shard = int_field f "shard";
          seed = int_field f "seed";
          budget = int_field f "budget";
        }
    | "worker_spawn" ->
      Worker_spawn
        {
          worker = int_field f "worker";
          pid = int_field f "pid";
          shards = int_field f "shards";
        }
    | "worker_frame" ->
      Worker_frame
        {
          worker = int_field f "worker";
          shard = int_field f "shard";
          seq = int_field f "seq";
          final = bool_field f "final";
        }
    | "worker_exit" ->
      Worker_exit
        {
          worker = int_field f "worker";
          status = str_field f "status";
          missing = int_field f "missing";
        }
    | k -> Json.fail "unknown event kind %S" k
  in
  { t_ns = int_field f "t"; exec = int_field f "n"; ev }

let of_json_line line = of_fields (Json.parse_flat line)
