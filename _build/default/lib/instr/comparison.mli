(** Comparison events: the observations the pFuzzer search is built on.

    Every tracked comparison of a tainted value produces one event
    recording where in the input the compared value came from, what it was
    compared against, whether the comparison succeeded, and the call-stack
    depth at the time — the facts Section 4 of the paper says the LLVM
    instrumentation collects. *)

type kind =
  | Char_eq of char  (** [c == 'x'] *)
  | Char_range of char * char  (** [lo <= c && c <= hi], e.g. [isdigit] *)
  | Char_set of Pdf_util.Charset.t * string
      (** membership in a named set, e.g. [isspace] *)
  | Str_eq of { expected : string; offset : int }
      (** string comparison against a keyword that matched up to
          [offset]; the event's input index is the position where the
          mismatch (or exhaustion) happened *)

type t = {
  trace_pos : int;
      (** number of {e distinct} outcomes covered before this event — an
          index into the run's first-occurrence order ([touched]) *)
  index : int;  (** input index of the compared character *)
  kind : kind;
  result : bool;
  stack_depth : int;
}

val replacements : Pdf_util.Rng.t -> t -> string list
(** The substitution strings this comparison suggests for the input
    position [index]: the character(s) that would have made it succeed.
    For a large set (e.g. a range), a bounded random sample is drawn. For
    [Str_eq], the single suggestion is the keyword's remaining suffix,
    which is what lets the fuzzer synthesise whole keywords (and why the
    heuristic rewards replacement length). *)

val char_constraint : t -> Pdf_util.Charset.t
(** The set of characters that would make this comparison evaluate to
    [result] — the building block of the concolic baseline's path
    constraints. For [Str_eq] the constraint concerns the character at
    [index] only. *)

val pp : Format.formatter -> t -> unit
