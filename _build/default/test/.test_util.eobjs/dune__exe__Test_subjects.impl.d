test/test_subjects.ml: Alcotest Array Buffer Char Format List Pdf_instr Pdf_subjects Pdf_util Printf QCheck QCheck_alcotest
