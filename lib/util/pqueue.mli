(** Mutable max-priority queue over float priorities.

    Backing store for the pFuzzer candidate queue (Algorithm 1). Supports
    the operation the algorithm needs when a valid input is found: a full
    re-prioritisation of all pending entries ({!rerank}) without re-running
    them. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : ?aux:int -> 'a t -> float -> 'a -> unit
(** [push q prio x] inserts [x] with priority [prio]. [aux] (default 0)
    is caller-owned scratch stored with the entry and handed back by
    {!update} — the queue never interprets it. *)

val pop : 'a t -> 'a option
(** Removes and returns an element with maximal priority. Ties are broken
    by insertion order (earlier insertions first), which keeps runs
    deterministic. *)

val pop_with_priority : 'a t -> (float * 'a) option
(** Like {!pop}, also returning the element's stored priority — the
    observation the correctness harness replays against its queue
    model. *)

val peek : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Iterates over all pending elements in unspecified order. *)

val rerank : 'a t -> ('a -> float) -> unit
(** [rerank q f] recomputes every pending element's priority with [f] and
    restores the heap invariant — the queue re-evaluation step performed
    when a new valid input extends the covered-branch set. *)

val update : 'a t -> ('a -> aux:int -> (float * int) option) -> unit
(** Selective {!rerank}: [f] sees each entry's value and stored [aux]
    and returns [Some (prio, aux)] to update it or [None] to leave it
    untouched. The heap invariant is restored only when a priority
    actually changed. Provided [None] is only returned when the
    recomputed priority would equal the stored one, the resulting heap
    state is bit-identical to a full [rerank] — entries keep their
    insertion order, so tie-breaking is unaffected. *)

val drop_worst : 'a t -> int -> unit
(** [drop_worst q n] truncates the queue to at most [n] entries, discarding
    lowest-priority ones. Used to bound memory in long runs. *)

val to_list : 'a t -> (float * 'a) list
(** Snapshot in unspecified order. *)

val snapshot : 'a t -> (float * 'a) list
(** Snapshot of the pending entries in insertion order (oldest first)
    with their current priorities. Unlike {!to_list} this is a total
    order the queue's tie-breaking can be checked against. *)
