examples/compare_tools.ml: Format Pdf_eval Pdf_subjects
