lib/subjects/tinyc.ml: Array Char Helpers List Pdf_instr Pdf_taint Pdf_util Printf String Subject Token
