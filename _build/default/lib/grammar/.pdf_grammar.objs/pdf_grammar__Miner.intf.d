lib/grammar/miner.mli: Grammar Pdf_subjects
