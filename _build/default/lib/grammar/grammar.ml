module Smap = Map.Make (String)

type symbol = Terminal of string | Nonterminal of string
type production = symbol list

type t = { start : string; rules : production list Smap.t }

let empty ~start = { start; rules = Smap.empty }
let start t = t.start

let add_production t nt production =
  let existing = Option.value ~default:[] (Smap.find_opt nt t.rules) in
  if List.mem production existing then t
  else { t with rules = Smap.add nt (existing @ [ production ]) t.rules }

let productions t nt = Option.value ~default:[] (Smap.find_opt nt t.rules)
let nonterminals t = List.map fst (Smap.bindings t.rules)

let production_count t =
  Smap.fold (fun _ ps acc -> acc + List.length ps) t.rules 0

let pp_symbol ppf = function
  | Terminal s -> Format.fprintf ppf "%S" s
  | Nonterminal n -> Format.fprintf ppf "<%s>" n

let pp ppf t =
  Smap.iter
    (fun nt ps ->
      Format.fprintf ppf "<%s> ::=@." nt;
      List.iter
        (fun p ->
          Format.fprintf ppf "  | ";
          (match p with
           | [] -> Format.fprintf ppf "\"\""
           | _ ->
             List.iteri
               (fun i sym ->
                 if i > 0 then Format.fprintf ppf " ";
                 pp_symbol ppf sym)
               p);
          Format.fprintf ppf "@.")
        ps)
    t.rules
