(* Property tests for the 256-bit vector {!Pdf_util.Charset} against a
   [Set.Make (Char)] reference model.

   The bit-vector operations (word-wise union/inter/diff/complement and
   the popcount behind [cardinal]) are exactly the kind of code where an
   off-by-one at a word boundary or a sign bit survives unit tests;
   random operation trees compared against the functorial set close that
   gap. Characters are drawn with byte-boundary bias (0x00, 0x3f, 0x40,
   0x7f, 0x80, 0xff) so word edges are exercised constantly. *)

module Charset = Pdf_util.Charset
module Cset = Set.Make (Char)

let qtest = QCheck_alcotest.to_alcotest

let char_gen =
  QCheck.(
    oneof
      [
        map Char.chr (int_range 0 255);
        (* word/byte boundary neighbourhoods of the underlying vector *)
        oneofl [ '\x00'; '\x01'; '\x3e'; '\x3f'; '\x40'; '\x7e'; '\x7f';
                 '\x80'; '\xbf'; '\xc0'; '\xfe'; '\xff' ];
        (* a tiny alphabet so intersections are non-trivially non-empty *)
        map (fun i -> Char.chr (97 + (abs i mod 4))) small_int;
      ])

let chars_gen = QCheck.small_list char_gen

let of_model s = Charset.of_list (Cset.elements s)

let check_same name (model : Cset.t) (cs : Charset.t) =
  if Charset.to_list cs <> Cset.elements model then
    QCheck.Test.fail_reportf "%s: to_list mismatch" name;
  if Charset.cardinal cs <> Cset.cardinal model then
    QCheck.Test.fail_reportf "%s: cardinal %d, model %d" name
      (Charset.cardinal cs) (Cset.cardinal model);
  if Charset.is_empty cs <> Cset.is_empty model then
    QCheck.Test.fail_reportf "%s: is_empty mismatch" name;
  if Charset.min_elt cs <> Cset.min_elt_opt model then
    QCheck.Test.fail_reportf "%s: min_elt mismatch" name;
  for i = 0 to 255 do
    let c = Char.chr i in
    if Charset.mem c cs <> Cset.mem c model then
      QCheck.Test.fail_reportf "%s: mem %C mismatch" name c
  done;
  true

let test_build =
  QCheck.Test.make ~name:"of_list/add/of_string agree with model" ~count:500
    chars_gen (fun chars ->
      let model = Cset.of_list chars in
      ignore (check_same "of_list" model (Charset.of_list chars));
      let by_add =
        List.fold_left (fun acc c -> Charset.add c acc) Charset.empty chars
      in
      ignore (check_same "add" model by_add);
      let s = String.init (List.length chars) (List.nth chars) in
      ignore (check_same "of_string" model (Charset.of_string s));
      true)

let test_remove =
  QCheck.Test.make ~name:"remove agrees with model" ~count:500
    QCheck.(pair chars_gen chars_gen)
    (fun (chars, removals) ->
      let model =
        List.fold_left (fun s c -> Cset.remove c s) (Cset.of_list chars)
          removals
      in
      let cs =
        List.fold_left
          (fun s c -> Charset.remove c s)
          (Charset.of_list chars) removals
      in
      check_same "remove" model cs)

let test_algebra =
  QCheck.Test.make ~name:"union/inter/diff/complement agree with model"
    ~count:500
    QCheck.(pair chars_gen chars_gen)
    (fun (xs, ys) ->
      let mx = Cset.of_list xs and my = Cset.of_list ys in
      let cx = of_model mx and cy = of_model my in
      ignore (check_same "union" (Cset.union mx my) (Charset.union cx cy));
      ignore (check_same "inter" (Cset.inter mx my) (Charset.inter cx cy));
      ignore (check_same "diff" (Cset.diff mx my) (Charset.diff cx cy));
      let full =
        List.init 256 Char.chr |> Cset.of_list
      in
      ignore
        (check_same "complement" (Cset.diff full mx) (Charset.complement cx));
      true)

let test_relations =
  QCheck.Test.make ~name:"equal/subset agree with model" ~count:500
    QCheck.(pair chars_gen chars_gen)
    (fun (xs, ys) ->
      let mx = Cset.of_list xs and my = Cset.of_list ys in
      let cx = of_model mx and cy = of_model my in
      Charset.equal cx cy = Cset.equal mx my
      && Charset.subset cx cy = Cset.subset mx my
      && Charset.subset cx (Charset.union cx cy)
      && Charset.equal cx cx)

let test_range =
  QCheck.Test.make ~name:"range agrees with filtered model" ~count:500
    QCheck.(pair char_gen char_gen)
    (fun (a, b) ->
      let model =
        List.init 256 Char.chr
        |> List.filter (fun c -> a <= c && c <= b)
        |> Cset.of_list
      in
      check_same "range" model (Charset.range a b))

let test_fold_iter =
  QCheck.Test.make ~name:"fold and iter visit exactly the members" ~count:500
    chars_gen (fun chars ->
      let model = Cset.of_list chars in
      let cs = of_model model in
      let folded = Charset.fold (fun c acc -> c :: acc) cs [] in
      if List.sort compare folded <> Cset.elements model then
        QCheck.Test.fail_report "fold visited the wrong members";
      let visited = ref [] in
      Charset.iter (fun c -> visited := c :: !visited) cs;
      if List.sort compare !visited <> Cset.elements model then
        QCheck.Test.fail_report "iter visited the wrong members";
      true)

let test_named_sets () =
  Alcotest.(check int) "digits" 10 (Charset.cardinal Charset.digits);
  Alcotest.(check int) "letters" 52 (Charset.cardinal Charset.letters);
  Alcotest.(check bool) "digits in printable" true
    (Charset.subset Charset.digits Charset.printable);
  Alcotest.(check bool) "letters in printable" true
    (Charset.subset Charset.letters Charset.printable);
  Alcotest.(check bool) "full has everything" true
    (Charset.equal Charset.full (Charset.complement Charset.empty))

let () =
  Alcotest.run "charset"
    [
      ( "model",
        [
          qtest test_build;
          qtest test_remove;
          qtest test_algebra;
          qtest test_relations;
          qtest test_range;
          qtest test_fold_iter;
          Alcotest.test_case "named sets" `Quick test_named_sets;
        ] );
    ]
