(** Ready-made LL(1) grammars and the table-driven subjects built from
    them, used by the §7.1 experiments and tests. *)

val arith : Cfg.t
(** Scannerless LL(1) grammar for the same arithmetic-expression
    language as the recursive-descent [expr] subject (signed numbers,
    [+]/[-], parentheses) — the two parsers accept exactly the same
    strings. *)

val dyck : Cfg.t
(** Balanced brackets over four bracket kinds, possibly empty. *)

val json : Cfg.t
(** Scannerless LL(1) JSON: objects, arrays, strings with escapes
    (including [\uXXXX] without surrogate-pair checking, which is
    context-sensitive), numbers with fraction/exponent, the three
    keywords, and whitespace — several hundred character-level
    productions, built programmatically. *)

val arith_table : Ll1.t
val dyck_table : Ll1.t
val json_table : Ll1.t

val table_expr : Pdf_subjects.Subject.t
(** [arith] with table-element coverage and diagnostic comparisons — the
    configuration §7.1 proposes. *)

val table_expr_naive : Pdf_subjects.Subject.t
(** [arith] with code coverage only and a silent driver — the
    out-of-the-box setting the paper predicts to fail. *)

val table_json : Pdf_subjects.Subject.t
(** [json] with table-element coverage and diagnostics: keyword discovery
    on a table-driven parser. *)
