lib/taint/tstring.mli: Format Taint Tchar
