test/test_integration.ml: Alcotest List Pdf_afl Pdf_core Pdf_eval Pdf_grammar Pdf_instr Pdf_klee Pdf_subjects Pdf_tables Pdf_util
