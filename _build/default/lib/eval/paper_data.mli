(** Reference values reported by the paper, used to print paper-vs-measured
    comparisons in the experiment reports and EXPERIMENTS.md. *)

val table1_loc : (string * int) list
(** Subject name → lines of code, Table 1. *)

val headline_short : (Tool.name * float) list
(** §5.3: share of tokens of length ≤ 3 found, across all subjects. *)

val headline_long : (Tool.name * float) list
(** §5.3: share of tokens of length > 3 found. *)

val tinyc_token_share : (Tool.name * float) list
(** §5.3 prose: token share on tinyC (pFuzzer 86%, AFL 80%, KLEE 66%). *)

val coverage_order : (string * string) list
(** Figure 2 qualitative outcome per subject: which tool achieved the
    highest branch coverage (subject → tool display name). *)

val json_keyword_finders : string list
(** Tools the paper reports generating the json keywords. *)
