(** The fuzzer-facing telemetry handle, bundling a trace sink, a
    flight-recorder ring, a metrics registry and a live progress line
    behind one optional value.

    The contract with the hot path: the fuzzer holds an [Observer.t
    option]; with [None] nothing is computed — no event construction, no
    clock reads, no allocation. With an observer installed, phase spans
    cost two monotonic clock reads each and trace events one small
    allocation — but only on executions the sampling predicate selects,
    so sampled modes run within a few percent of [None]; measured
    overhead numbers live in BENCH_obs.json and BENCH_monitor.json. *)

type t

val create :
  ?clock:(unit -> int) ->
  ?sink:Trace.sink ->
  ?ring:Trace.ring ->
  ?postmortem:string ->
  ?sample:int ->
  ?metrics:Metrics.t ->
  ?metrics_file:string ->
  ?progress:Progress.t ->
  unit ->
  t
(** All parts optional: sink-only gives tracing, progress-only gives the
    live line, metrics adds per-phase histograms (registered as
    [phase/<name>_ns]). [ring] attaches a flight recorder — it receives
    the same (sampled) event stream as the sink, with or without one.
    [postmortem] is the path prefix {!flight_dump} writes under.
    [sample] records exec-level events for 1-in-N executions (default 1
    = everything); raises [Invalid_argument] when < 1. [metrics_file]
    atomically rewrites a Prometheus text snapshot on each status
    interval (enabling the snapshot cadence even without a progress
    line). [clock] overrides the monotonic clock for deterministic
    tests. *)

val tracing : t -> bool
(** Is a sink or ring attached? Event construction should be guarded on
    this. *)

val sampled : t -> exec:int -> bool
(** Should exec-level events for this execution index be recorded?
    Deterministic on the index alone (never wall clock), so jobs:1 and
    jobs:N shards sample identical executions; always true at
    [sample = 1]. Structural events (valid, crash, hang, fault, rescue,
    lifecycle) are not subject to sampling. The fuzzer gates its phase
    spans on the same predicate, so at [sample > 1] the span totals and
    histograms cover only the sampled executions — that is what keeps
    the sampled and flight-recorder modes within a few percent of an
    unobserved run (BENCH_monitor.json). *)

val now_ns : t -> int
(** Nanoseconds since the observer was created. *)

val emit : t -> exec:int -> Event.t -> unit
(** Stamp with the current clock and the given execution count, and
    forward to the sink and ring (no-op without either). *)

val metrics : t -> Metrics.t option

(** {1 Flight recorder} *)

val flight_recorder : t -> Trace.ring option

val flight_dump : t -> reason:string -> string option
(** Dump the ring's retained events to [<postmortem>-<reason>.jsonl]
    (atomic), returning the path. [None] when no ring or no postmortem
    prefix is attached. Called on fresh crashes, hangs, fault-drill
    triggers and worker deaths. *)

(** {1 Phase spans} *)

val span_start : t -> int
val span_end : t -> Phase.t -> int -> unit
(** [span_end t phase (span_start t)] adds the elapsed nanoseconds to
    the phase's cumulative total and, when a metrics registry is
    attached, its histogram. *)

val span_next : t -> Phase.t -> int -> int
(** Like {!span_end}, but returns the end timestamp so back-to-back
    spans share one clock read: [span_end t p2 (span_next t p1 start)]. *)

val phase_totals : t -> (string * int) list

(** {1 Run lifecycle} *)

val run_meta :
  t ->
  subject:string ->
  outcomes:int ->
  seed:int ->
  max_executions:int ->
  incremental:bool ->
  engine:string ->
  unit
(** Emit the run header and remember the totals and resolved engine tier
    the progress line needs. *)

val snapshot_due : t -> bool
(** True when the status cadence has elapsed. Always false without a
    progress line or metrics file, so purely-traced runs contain no
    time-driven events and merged traces stay deterministic. *)

val snapshot :
  t ->
  exec:int ->
  depth:int ->
  valid:int ->
  cov:int ->
  hits:int ->
  misses:int ->
  rescues:int ->
  plateau:int ->
  hangs:int ->
  crashes:int ->
  unit
(** Emit a {!Event.Snapshot}, rewrite the metrics file, and repaint the
    live line. Throughput is computed from the delta since the previous
    snapshot. *)

val finish : t -> exec:int -> valid:int -> cov:int -> unit
(** End of run: emit {!Event.Phases} (with p50/p99 per phase when
    metrics are attached) and {!Event.Run_done}, write the final metrics
    file state, and release the live line. Does not close the sink — its
    opener owns it. *)

val wall_ns : t -> int
