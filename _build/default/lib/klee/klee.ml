module Rng = Pdf_util.Rng
module Pqueue = Pdf_util.Pqueue
module Coverage = Pdf_instr.Coverage
module Runner = Pdf_instr.Runner
module Subject = Pdf_subjects.Subject

type config = {
  seed : int;
  max_executions : int;
  max_input_len : int;
  frontier_bound : int;
  negations_per_run : int;
}

let default_config =
  {
    seed = 1;
    max_executions = 2000;
    max_input_len = 64;
    frontier_bound = 100_000;
    negations_per_run = 64;
  }

type state = {
  input : string;
  bound : int;  (** events before this index follow the parent's path *)
  generation : int;
}

type result = {
  valid_inputs : string list;
  valid_coverage : Coverage.t;
  executions : int;
  states_created : int;
  solver_failures : int;
}

type engine = {
  config : config;
  subject : Subject.t;
  rng : Rng.t;
  frontier : state Pqueue.t;
  mutable seen_code : Coverage.t;  (* all outcomes ever covered *)
  mutable valid_cov : Coverage.t;
  mutable valid_rev : string list;
  mutable executions : int;
  mutable states_created : int;
  mutable solver_failures : int;
  seen_inputs : (string, unit) Hashtbl.t;
  on_valid : string -> unit;
}

exception Budget_exhausted

let execute eng input =
  if eng.executions >= eng.config.max_executions then raise Budget_exhausted;
  eng.executions <- eng.executions + 1;
  Subject.run eng.subject input

let push_state eng ~score state =
  if
    String.length state.input <= eng.config.max_input_len
    && not (Hashtbl.mem eng.seen_inputs state.input)
  then begin
    Hashtbl.replace eng.seen_inputs state.input ();
    eng.states_created <- eng.states_created + 1;
    Pqueue.push eng.frontier score state;
    (* Truncate with hysteresis: a full drop sorts the heap, so only do
       it after the frontier has doubled past its bound. *)
    if Pqueue.length eng.frontier > 2 * eng.config.frontier_bound then
      Pqueue.drop_worst eng.frontier eng.config.frontier_bound
  end

(* Expand one state: run it, emit if it covers new code, then negate the
   deepest comparison events beyond the parent's bound. *)
let expand eng state =
  let run = execute eng state.input in
  let new_outcomes = Coverage.new_against run.coverage ~baseline:eng.seen_code in
  eng.seen_code <- Coverage.union eng.seen_code run.coverage;
  if Runner.accepted run && new_outcomes > 0 then begin
    eng.valid_rev <- run.input :: eng.valid_rev;
    eng.valid_cov <- Coverage.union eng.valid_cov run.coverage;
    eng.on_valid run.input
  end;
  let events = run.comparisons in
  let n = Array.length events in
  (* Deepest-first negation, as SAGE's generational search does; the
     per-run cap keeps the fan-out finite but the frontier still grows
     multiplicatively on long paths. *)
  let first = max state.bound (n - eng.config.negations_per_run) in
  for k = n - 1 downto first do
    let pc = Path_constraint.of_comparisons events k in
    match Solver.solve eng.rng ~base:run.input ~min_length:0 pc with
    | None -> eng.solver_failures <- eng.solver_failures + 1
    | Some input ->
      let child = { input; bound = k; generation = state.generation + 1 } in
      (* covnew-flavoured scheduling: states born from runs that covered
         new code run earlier; deeper negations break ties. *)
      (* Forcing a failed equality to succeed is KLEE's forte (magic
         bytes solve in one step), so those negations are preferred over
         flipping broad character-class tests. *)
      let equality_bonus =
        match events.(k).Pdf_instr.Comparison.kind with
        | Pdf_instr.Comparison.Char_eq _ | Pdf_instr.Comparison.Str_eq _
          when not events.(k).Pdf_instr.Comparison.result ->
          5.0
        | Pdf_instr.Comparison.Char_eq _ | Pdf_instr.Comparison.Str_eq _
        | Pdf_instr.Comparison.Char_range _ | Pdf_instr.Comparison.Char_set _ ->
          0.0
      in
      let score =
        (10.0 *. float_of_int new_outcomes)
        +. equality_bonus
        +. (0.01 *. float_of_int k)
        -. (0.1 *. float_of_int child.generation)
        +. Rng.float eng.rng 1.0
      in
      push_state eng ~score child
  done;
  (* EOF hunger: the parser wanted more input than the state provides. *)
  if run.eof_access && String.length run.input < eng.config.max_input_len then begin
    let extension =
      run.input ^ String.make 1 (Option.value ~default:' ' (Solver.pick eng.rng Pdf_util.Charset.printable))
    in
    push_state eng ~score:(float_of_int new_outcomes) { input = extension; bound = 0; generation = state.generation + 1 }
  end

let fuzz ?(on_valid = fun _ -> ()) ?(initial_inputs = []) config subject =
  let eng =
    {
      config;
      subject;
      rng = Rng.make config.seed;
      frontier = Pqueue.create ();
      seen_code = Coverage.empty;
      valid_cov = Coverage.empty;
      valid_rev = [];
      executions = 0;
      states_created = 0;
      solver_failures = 0;
      seen_inputs = Hashtbl.create 4096;
      on_valid;
    }
  in
  (try
     List.iter
       (fun input -> push_state eng ~score:1.0 { input; bound = 0; generation = 0 })
       initial_inputs;
     expand eng { input = ""; bound = 0; generation = 0 };
     let rec loop () =
       match Pqueue.pop eng.frontier with
       | Some state ->
         expand eng state;
         loop ()
       | None -> ()
     in
     loop ()
   with Budget_exhausted -> ());
  {
    valid_inputs = List.rev eng.valid_rev;
    valid_coverage = eng.valid_cov;
    executions = eng.executions;
    states_created = eng.states_created;
    solver_failures = eng.solver_failures;
  }
