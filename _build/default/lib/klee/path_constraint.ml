module Charset = Pdf_util.Charset
module Imap = Map.Make (Int)

type t = Charset.t Imap.t

let empty = Imap.empty

let constrain i set t =
  let current = Option.value ~default:Charset.full (Imap.find_opt i t) in
  Imap.add i (Charset.inter current set) t

let allowed i t = Option.value ~default:Charset.full (Imap.find_opt i t)
let satisfiable t = Imap.for_all (fun _ set -> not (Charset.is_empty set)) t
let max_index t = Option.map fst (Imap.max_binding_opt t)
let cardinality t = Imap.cardinal t

let of_comparisons events k =
  let t = ref empty in
  for j = 0 to k - 1 do
    let e = events.(j) in
    t := constrain e.Pdf_instr.Comparison.index (Pdf_instr.Comparison.char_constraint e) !t
  done;
  let e = events.(k) in
  let negated =
    Charset.complement (Pdf_instr.Comparison.char_constraint e)
  in
  constrain e.Pdf_instr.Comparison.index negated !t
