lib/taint/tchar.mli: Format Taint
