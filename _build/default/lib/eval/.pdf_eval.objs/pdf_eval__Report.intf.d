lib/eval/report.mli: Experiment Format Pdf_subjects
