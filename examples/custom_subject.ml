(* Bringing your own parser.

   This is the integration path a downstream user follows: write a
   recursive-descent parser against the instrumented stream API
   (Pdf_instr.Ctx), declare its sites, wrap it as a Subject, and fuzz
   it. The parser here accepts semantic versions such as
   "1.2.3-alpha.1+build7".

   Run with: dune exec examples/custom_subject.exe *)

module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site
module Charset = Pdf_util.Charset
module Helpers = Pdf_subjects.Helpers

let registry = Site.create_registry "semver"
let s_parse = Site.block registry "parse"
let s_number = Site.block registry "number"
let s_ident = Site.block registry "identifier"
let b_digit = Site.branch registry "digit?"
let b_dot1 = Site.branch registry "dot-minor"
let b_dot2 = Site.branch registry "dot-patch"
let b_prerelease = Site.branch registry "prerelease?"
let b_build = Site.branch registry "build?"
let b_ident_char = Site.branch registry "ident-char?"
let b_ident_sep = Site.branch registry "ident-sep?"
let b_trailing = Site.branch registry "trailing?"

let ident_chars = Charset.union Charset.letters (Charset.union Charset.digits (Charset.singleton '-'))

let number ctx =
  Ctx.with_frame ctx s_number @@ fun () ->
  match Ctx.next ctx with
  | None -> Ctx.reject ctx "expected digit, found end of input"
  | Some c ->
    if not (Ctx.in_range ctx b_digit c '0' '9') then Ctx.reject ctx "expected digit";
    let rec more () =
      match Ctx.peek ctx with
      | Some c when Ctx.in_range ctx b_digit c '0' '9' ->
        ignore (Ctx.next ctx);
        more ()
      | Some _ | None -> ()
    in
    more ()

let identifiers ctx =
  Ctx.with_frame ctx s_ident @@ fun () ->
  let rec one () =
    let part = Helpers.read_set ctx b_ident_char ~label:"ident" ident_chars in
    if Pdf_taint.Tstring.length part = 0 then Ctx.reject ctx "empty identifier";
    if Helpers.eat_if ctx b_ident_sep '.' then one ()
  in
  one ()

let parse ctx =
  Ctx.with_frame ctx s_parse @@ fun () ->
  number ctx;
  Helpers.expect ctx b_dot1 '.';
  number ctx;
  Helpers.expect ctx b_dot2 '.';
  number ctx;
  if Helpers.eat_if ctx b_prerelease '-' then identifiers ctx;
  if Helpers.eat_if ctx b_build '+' then identifiers ctx;
  match Ctx.peek ctx with
  | Some _ ->
    ignore (Ctx.branch ctx b_trailing true);
    Ctx.reject ctx "trailing input"
  | None -> ignore (Ctx.branch ctx b_trailing false)

let subject =
  {
    Pdf_subjects.Subject.name = "semver";
    description = "semantic version strings (custom example subject)";
    registry;
    parse;
    machine = None;
    compiled = None;
    compiled_preferred = false;
    fuel = 10_000;
    tokens = [];
    tokenize = (fun _ -> []);
    original_loc = 0;
  }

let () =
  Printf.printf "Fuzzing a custom semantic-version parser...\n\n";
  let config =
    { Pdf_core.Pfuzzer.default_config with seed = 5; max_executions = 8000 }
  in
  let result =
    Pdf_core.Pfuzzer.fuzz
      ~on_valid:(fun v -> Printf.printf "  valid version: %S\n" v)
      config subject
  in
  Printf.printf "\n%d executions, %d valid versions, %.1f%% branch coverage\n"
    result.executions
    (List.length result.valid_inputs)
    (Pdf_instr.Coverage.percent result.valid_coverage registry)
