(* Reaching deep code in a language processor (the paper's tinyC subject).

   tinyC parses AND executes its input, so coverage beyond the parser
   requires syntactically valid programs: loops, conditionals,
   assignments. This example compares the AFL-like lexical fuzzer with
   pFuzzer on the same virtual budget and shows the kinds of programs
   each produces — the paper's Figure 2/3 story on one subject.

   Run with: dune exec examples/fuzz_tinyc.exe *)

let summarize name (valid : string list) coverage subject =
  let tags = Pdf_eval.Token_report.found_tags subject valid in
  Printf.printf "%s: %d valid programs, %.1f%% coverage, tokens: %s\n" name
    (List.length valid)
    (Pdf_instr.Coverage.percent coverage subject.Pdf_subjects.Subject.registry)
    (String.concat " " tags);
  List.iteri
    (fun i input -> if i < 8 then Printf.printf "    %S\n" input)
    valid

let () =
  let subject = Pdf_subjects.Catalog.find "tinyc" in
  let budget_units = 4_000_000 in
  Printf.printf "Budget: %d virtual units (AFL executions are 100x cheaper)\n\n"
    budget_units;
  let afl = Pdf_eval.Tool.run Pdf_eval.Tool.Afl ~budget_units ~seed:1 subject in
  summarize "AFL   " afl.valid_inputs afl.valid_coverage subject;
  let pf = Pdf_eval.Tool.run Pdf_eval.Tool.Pfuzzer ~budget_units ~seed:1 subject in
  summarize "pFuzzer" pf.valid_inputs pf.valid_coverage subject;
  Printf.printf
    "\nAFL's programs stay shallow (single characters and operators);\n\
     pFuzzer synthesises keyword-bearing statements like if(...) by\n\
     satisfying the lexer's string comparisons.\n"
