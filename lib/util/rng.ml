type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let make seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }
let state t = t.state
let of_state s = { state = s }

let int t bound =
  assert (bound > 0);
  (* Mask to 62 bits so the value fits OCaml's native int non-negatively. *)
  let v = Int64.to_int (Int64.logand (bits64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L
let char t = Char.chr (int t 256)

let printable_alphabet =
  let printable = List.init 95 (fun i -> Char.chr (0x20 + i)) in
  Array.of_list (('\n' :: '\t' :: printable))

let printable t = printable_alphabet.(int t (Array.length printable_alphabet))

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
