(** Growable arrays (amortised O(1) push).

    The allocation-free backing store of the execution hot path: traces,
    comparison logs and frame logs are appended here instead of being
    consed onto reversed lists. A vector is created with a [dummy]
    element used to fill unoccupied capacity, which keeps the
    implementation free of [Obj.magic] and keeps vacated slots from
    retaining dead values. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create dummy] is an empty vector. [dummy] fills unused slots; it is
    never returned by accessors. *)

val of_prefix : 'a array -> len:int -> 'a -> 'a t
(** [of_prefix arr ~len dummy] is a vector whose first [len] elements are
    shared with [arr] — no copy is made. The borrowed array is never
    written: the first {!push} copies the prefix into owned storage
    (copy-on-write). The caller must not mutate [arr.(0..len-1)] while
    the vector is live. Raises [Invalid_argument] if [len] is out of
    bounds. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append one element, growing the backing array geometrically. *)

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th element; raises [Invalid_argument] out of
    bounds. *)

val last : 'a t -> 'a option

val clear : 'a t -> unit
(** Reset the length to 0 and overwrite occupied slots with the dummy so
    previous contents can be collected. Capacity is retained. *)

val iter : ('a -> unit) -> 'a t -> unit
(** In insertion order. *)

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array
(** Fresh array of exactly [length t] elements. *)

val to_list : 'a t -> 'a list
