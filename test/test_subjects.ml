module Subject = Pdf_subjects.Subject
module Catalog = Pdf_subjects.Catalog
module Token = Pdf_subjects.Token
module Runner = Pdf_instr.Runner
module Rng = Pdf_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let accepts name input = Subject.accepts (Catalog.find name) input
let verdict name input = (Subject.run (Catalog.find name) input).Runner.verdict

let check_accepts name cases () =
  List.iter
    (fun input ->
      if not (accepts name input) then
        Alcotest.failf "%s should accept %S (%s)" name input
          (Format.asprintf "%a" Runner.pp_verdict (verdict name input)))
    cases

let check_rejects name cases () =
  List.iter
    (fun input ->
      match verdict name input with
      | Runner.Rejected _ -> ()
      | v ->
        Alcotest.failf "%s should reject %S but %a" name input Runner.pp_verdict v)
    cases

(* {1 Acceptance tables} *)

let expr_valid = [ "1"; "11"; "+1"; "-1"; "1+1"; "1-1"; "(1)"; "(2-94)"; "((3))"; "1+2-3"; "-(4)"; "(1)+(2)" ]
let expr_invalid = [ ""; "A"; "("; ")"; "1)"; "()"; "1+"; "+"; "1 1"; "2-"; "(2-94"; "1a" ]

let paren_valid = [ "()"; "[]"; "{}"; "<>"; "()[]"; "([{<>}])"; "(()())"; "<<>>" ]
let paren_invalid = [ ""; "("; ")"; ")("; "(]"; "([)]"; "a"; "() " ]

let ini_valid =
  [ "key=value"; "key = value"; "[section]"; "[]"; "[s]\nk=v"; "; comment";
    "# comment"; ""; "\n\n"; "  k = v  "; "k.x-y_z=1"; "[a]\n;c\nk=v\n" ]

let ini_invalid = [ "["; "[x"; "[x\n]"; "=v"; "key"; "key value"; "*k=v"; "k\n=v" ]

let csv_valid =
  [ "a,b,c"; "a,b\nc,d"; ""; ","; "\"quoted\""; "\"with,comma\",x";
    "\"esc\"\"aped\""; "a,\nb,"; "x\n"; " " ]

let csv_invalid = [ "\""; "\"unterminated"; "a\"b"; "\"q\"x" ]

let json_valid =
  [ "1"; "-2.5"; "1e9"; "-0.5E-3"; "\"\""; "\"abc\""; "\"\\n\\t\\\"\"";
    "true"; "false"; "null"; "[]"; "[1,2,3]"; "{}"; "{\"k\":1}";
    "{\"a\":[true,null],\"b\":{\"c\":\"\"}}"; " 1 "; "\t[ 1 , 2 ]\n";
    "\"\\u0041\""; "\"\\ud834\\udd1e\"" ]

let json_invalid =
  [ ""; "tru"; "truex"; "nul"; "[1,]"; "[,1]"; "{"; "{\"k\":}"; "{k:1}";
    "01x"; "-"; "1."; "1e"; "\"unterminated"; "\"\\q\""; "\"\\u12g4\"";
    "\"\\ud834\""; "\"\\ud834\\u0041\""; "1 2"; "\"ctrl\x01\"" ]

let tinyc_valid =
  [ ";"; "a=1;"; "{}"; "{a=1;b=2;}"; "a=b=3;"; "a<2;"; "1+2-3;";
    "if(a<2)b=1;"; "if(a<2)b=1;else b=2;"; "if(1)if(0);else;";
    "while(a<0)b=1;"; "while(0);"; "do a=1; while(a<1);"; "(1);"; "a=(b)+1;" ]

let tinyc_invalid =
  [ ""; "a"; "a=1"; "ab=1;"; "if;"; "if(a<2)"; "while;"; "do a=1;";
    "do a=1; while(a<1)"; "a=;"; "{a=1;"; "1++;"; "=1;"; "a==1;"; "9=a;" ]

let tinyc_hangs = [ "while(9);"; "do;while(1);" ]

let mjs_valid =
  [ "x;"; "1;"; "'s';"; "\"s\";"; "x = 1;"; "var x = 1;"; "let y;";
    "const z = 0;"; "if (x) y; else z;"; "while (x) { y; }";
    "do { x; } while (y);"; "for (;;) break;"; "for (var i = 0; i < 9; i++) x;";
    "for (x in y) z;"; "function f(a, b) { return a + b; }";
    "x = function () {};"; "try { x; } catch (e) {}";
    "try { x; } finally {}"; "switch (x) { case 1: break; default: y; }";
    "throw x;"; "x = y ? 1 : 2;"; "x = [1, 2, 3];"; "x = {a: 1, 'b': 2};";
    "x.y.z;"; "x[1];"; "f(1)(2);"; "new F();"; "typeof x;"; "delete x.y;";
    "void 0;"; "x instanceof Object;"; "'a' in b;"; "x++;"; "--x;";
    "x <<= 2;"; "a >>>= 1;"; "x === null;"; "y !== undefined;"; "NaN;";
    "JSON.stringify(x);"; "x.indexOf(y);"; "x.length;"; "debugger;";
    "with (x) y;"; "0x1F;"; "1.5e-3;"; "x && y || z;"; "~x ^ y & z | w;" ]

let mjs_invalid =
  [ ""; "x"; "var;"; "var x = ;"; "if x) y;"; "while () x;"; "function () {};";
    "f(;"; "x = {a };"; "[1, ;"; "'unterminated"; "\"bad\\q\";"; "1.x;";
    "0x;"; "1e;"; "x..y;"; "try { x; }"; "do x; while y;"; "switch x {}";
    "x ? 1;"; "@;"; "x = } ;" ]

(* {1 Tokenizers} *)

let check_tokens name input expected () =
  let subj = Catalog.find name in
  Alcotest.(check (slist string compare)) "token tags" expected (subj.tokenize input)

(* {1 Generators: random valid inputs are accepted} *)

let gen_expr rng =
  let buf = Buffer.create 16 in
  let rec go depth =
    (match Rng.int rng 3 with
     | 0 -> Buffer.add_char buf (Char.chr (Char.code '0' + Rng.int rng 10))
     | 1 ->
       Buffer.add_char buf (if Rng.bool rng then '+' else '-');
       Buffer.add_char buf (Char.chr (Char.code '0' + Rng.int rng 10))
     | _ ->
       if depth < 3 then begin
         Buffer.add_char buf '(';
         go (depth + 1);
         Buffer.add_char buf ')'
       end
       else Buffer.add_char buf '7');
    if Rng.int rng 3 = 0 && depth < 4 then begin
      Buffer.add_char buf (if Rng.bool rng then '+' else '-');
      go (depth + 1)
    end
  in
  go 0;
  Buffer.contents buf

let gen_json rng =
  let buf = Buffer.create 32 in
  let rec value depth =
    match (if depth > 2 then Rng.int rng 4 else Rng.int rng 6) with
    | 0 -> Buffer.add_string buf (string_of_int (Rng.int rng 100))
    | 1 -> Buffer.add_string buf "\"s\""
    | 2 -> Buffer.add_string buf (Rng.choose rng [| "true"; "false"; "null" |])
    | 3 -> Buffer.add_string buf (Printf.sprintf "-%d.5e%d" (Rng.int rng 9) (Rng.int rng 9))
    | 4 ->
      Buffer.add_char buf '[';
      let n = Rng.int rng 3 in
      for i = 0 to n - 1 do
        if i > 0 then Buffer.add_char buf ',';
        value (depth + 1)
      done;
      Buffer.add_char buf ']'
    | _ ->
      Buffer.add_char buf '{';
      let n = Rng.int rng 3 in
      for i = 0 to n - 1 do
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"k%d\":" i);
        value (depth + 1)
      done;
      Buffer.add_char buf '}'
  in
  value 0;
  Buffer.contents buf

let gen_tinyc rng =
  let buf = Buffer.create 32 in
  let var () = Char.chr (Char.code 'a' + Rng.int rng 26) in
  let rec expr depth =
    if depth > 2 then Buffer.add_char buf (var ())
    else
      match Rng.int rng 4 with
      | 0 -> Buffer.add_char buf (var ())
      | 1 -> Buffer.add_string buf (string_of_int (Rng.int rng 100))
      | 2 ->
        expr (depth + 1);
        Buffer.add_char buf (if Rng.bool rng then '+' else '-');
        expr (depth + 1)
      | _ ->
        Buffer.add_char buf '(';
        expr (depth + 1);
        Buffer.add_char buf ')'
  in
  let rec stmt depth =
    if depth > 2 then Buffer.add_char buf ';'
    else
      match Rng.int rng 5 with
      | 0 ->
        Buffer.add_char buf (var ());
        Buffer.add_char buf '=';
        expr 1;
        Buffer.add_char buf ';'
      | 1 ->
        Buffer.add_string buf "if(";
        expr 1;
        Buffer.add_char buf '<';
        expr 1;
        Buffer.add_char buf ')';
        stmt (depth + 1)
      | 2 ->
        Buffer.add_string buf "while(0)";
        stmt (depth + 1)
      | 3 ->
        Buffer.add_char buf '{';
        for _ = 1 to Rng.int rng 3 do
          stmt (depth + 1)
        done;
        Buffer.add_char buf '}'
      | _ ->
        expr 1;
        Buffer.add_char buf ';'
  in
  stmt 0;
  Buffer.contents buf

let prop_generated_accepted name gen =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s accepts generated inputs" name)
    ~count:200 QCheck.small_int
    (fun seed ->
      let input = gen (Rng.make seed) in
      match verdict name input with
      | Runner.Accepted -> true
      | Runner.Hang -> QCheck.assume_fail () (* tinyc if(..) may loop *)
      | Runner.Rejected reason ->
        QCheck.Test.fail_reportf "%s rejected %S: %s" name input reason
      | Runner.Crash c ->
        QCheck.Test.fail_reportf "%s crashed on %S: %s" name input c.detail)

(* {1 Inventory shape (Tables 2-4)} *)

let test_inventories () =
  let count name = List.length (Catalog.find name).Subject.tokens in
  Alcotest.(check int) "json inventory (Table 2)" 12 (count "json");
  Alcotest.(check int) "tinyc inventory (Table 3)" 15 (count "tinyc");
  Alcotest.(check int) "mjs inventory (Table 4 shape)" 89 (count "mjs");
  let by_len name =
    let s = Catalog.find name in
    List.map
      (fun l -> (l, List.length (Token.of_length l s.Subject.tokens)))
      (Token.lengths s.Subject.tokens)
  in
  Alcotest.(check (list (pair int int)))
    "json token lengths" [ (1, 8); (2, 1); (4, 2); (5, 1) ] (by_len "json");
  Alcotest.(check (list (pair int int)))
    "tinyc token lengths" [ (1, 11); (2, 2); (4, 1); (5, 1) ] (by_len "tinyc")

let test_hangs () =
  List.iter
    (fun input ->
      match verdict "tinyc" input with
      | Runner.Hang -> ()
      | v -> Alcotest.failf "expected hang for %S, got %a" input Runner.pp_verdict v)
    tinyc_hangs

let test_catalog () =
  Alcotest.(check int) "five evaluation subjects" 5 (List.length Catalog.evaluation);
  Alcotest.(check int) "nine subjects in total" 9 (List.length Catalog.all);
  Alcotest.check_raises "unknown subject" Not_found (fun () ->
      ignore (Catalog.find "nope"))

let test_tinyc_variants () =
  (* The three tinyc instances accept the same syntax... *)
  List.iter
    (fun input ->
      Alcotest.(check bool) (Printf.sprintf "tt accepts %S" input) true
        (accepts "tinyc-tt" input))
    [ "a=1;"; "if(a<2)b=1;"; "do a=1; while(a<1);" ];
  (* ...but the semantic variant rejects use-before-assignment (§7.3). *)
  Alcotest.(check bool) "sem rejects use of unassigned" true
    (match verdict "tinyc-sem" "g<5;" with Runner.Rejected _ -> true | _ -> false);
  Alcotest.(check bool) "sem accepts define-then-use" true (accepts "tinyc-sem" "{g=1;g<5;}");
  Alcotest.(check bool) "plain tinyc has no such check" true (accepts "tinyc" "g<5;")

let test_tinyc_tt_comparison_signal () =
  (* The token-taint variant reports the missing `while' of a do-statement
     as a substitutable comparison; the plain variant does not. *)
  let input = "do a=1; " in
  let run_plain = Subject.run (Catalog.find "tinyc") input in
  let run_tt = Subject.run (Catalog.find "tinyc-tt") input in
  let suggests_while (run : Runner.run) =
    Array.exists
      (fun (c : Pdf_instr.Comparison.t) ->
        match c.kind with
        | Pdf_instr.Comparison.Str_eq { expected = "while"; offset = 0 } -> true
        | _ -> false)
      run.comparisons
  in
  Alcotest.(check bool) "plain: no signal" false (suggests_while run_plain);
  Alcotest.(check bool) "tt: while suggested" true (suggests_while run_tt)

let test_json_utf16_blind_spot () =
  (* The \u escape path must emit no comparison events (implicit flow,
     §5.2): pFuzzer cannot learn the hex alphabet. *)
  let subj = Catalog.find "json" in
  let run = Subject.run subj "\"\\uZ\"" in
  Alcotest.(check bool) "rejected" true (not (Runner.accepted run));
  let has_hex_suggestion =
    Array.exists
      (fun (c : Pdf_instr.Comparison.t) -> c.index >= 3)
      run.comparisons
  in
  Alcotest.(check bool) "no comparison touches the hex digit" false has_hex_suggestion

let suite name valid invalid =
  ( name,
    [
      Alcotest.test_case "accepts valid inputs" `Quick (check_accepts name valid);
      Alcotest.test_case "rejects invalid inputs" `Quick (check_rejects name invalid);
    ] )

let () =
  Alcotest.run "pdf_subjects"
    [
      suite "expr" expr_valid expr_invalid;
      suite "paren" paren_valid paren_invalid;
      suite "ini" ini_valid ini_invalid;
      suite "csv" csv_valid csv_invalid;
      suite "json" json_valid json_invalid;
      suite "tinyc" tinyc_valid tinyc_invalid;
      suite "mjs" mjs_valid mjs_invalid;
      ( "tokenizers",
        [
          Alcotest.test_case "expr" `Quick
            (check_tokens "expr" "(2-94)" [ "("; ")"; "-"; "number" ]);
          Alcotest.test_case "json" `Quick
            (check_tokens "json" "{\"k\": [true, -1]}"
               [ "{"; "}"; "["; "]"; ":"; ","; "-"; "number"; "string"; "true" ]);
          Alcotest.test_case "tinyc" `Quick
            (check_tokens "tinyc" "if(a<2)b=1;else while(0);"
               [ "if"; "("; ")"; "<"; "="; ";"; "else"; "while"; "identifier"; "number" ]);
          Alcotest.test_case "mjs keywords" `Quick
            (check_tokens "mjs" "x instanceof Object;"
               [ "identifier"; "instanceof"; "Object"; ";" ]);
          Alcotest.test_case "mjs longest-match ops" `Quick
            (check_tokens "mjs" "a>>>=1;" [ "identifier"; ">>>="; "number"; ";" ]);
          Alcotest.test_case "mjs members" `Quick
            (check_tokens "mjs" "JSON.stringify(x.length);"
               [ "JSON"; "."; "stringify"; "("; ")"; "identifier"; "length"; ";" ]);
        ] );
      ( "generators",
        [
          qtest (prop_generated_accepted "expr" gen_expr);
          qtest (prop_generated_accepted "json" gen_json);
          qtest (prop_generated_accepted "tinyc" gen_tinyc);
        ] );
      ( "structure",
        [
          Alcotest.test_case "token inventories" `Quick test_inventories;
          Alcotest.test_case "tinyc hangs" `Quick test_hangs;
          Alcotest.test_case "catalog" `Quick test_catalog;
          Alcotest.test_case "json UTF-16 blind spot" `Quick test_json_utf16_blind_spot;
          Alcotest.test_case "tinyc variants (7.2/7.3)" `Quick test_tinyc_variants;
          Alcotest.test_case "token-taint signal (7.2)" `Quick test_tinyc_tt_comparison_signal;
        ] );
    ]
