lib/util/pqueue.ml: Array Obj
