type t = {
  clock : unit -> int;
  t0 : int;
  sink : Trace.sink option;  (* file sink and/or flight-recorder ring *)
  ring : Trace.ring option;
  postmortem : string option;  (* path prefix for flight-recorder dumps *)
  sample : int;  (* exec-level events recorded 1-in-[sample] *)
  metrics : Metrics.t option;
  metrics_file : string option;
  progress : Progress.t option;
  phase_ns : int array;  (* cumulative span per Phase.t, always kept *)
  phase_hist : Pdf_util.Stats.Histogram.t array option;  (* iff metrics *)
  snapshot_interval_ns : int;  (* 0 = snapshots disabled *)
  mutable engine : string;  (* resolved tier, learned from run_meta *)
  mutable max_executions : int;
  mutable outcomes : int;
  mutable last_snap_t : int;
  mutable last_snap_exec : int;
}

let create ?(clock = Clock.now_ns) ?sink ?ring ?postmortem ?(sample = 1)
    ?metrics ?metrics_file ?progress () =
  if sample < 1 then invalid_arg "Observer.create: sample must be >= 1";
  let t0 = clock () in
  {
    clock;
    t0;
    (* The ring is just another sink: events reach it through the same
       emission path, so it sees exactly what a file trace would —
       including the sampling filter. *)
    sink =
      (match (sink, ring) with
       | None, None -> None
       | Some s, None -> Some s
       | None, Some r -> Some (Trace.ring_sink r)
       | Some s, Some r -> Some (Trace.tee s (Trace.ring_sink r)));
    ring;
    postmortem;
    sample;
    metrics;
    metrics_file;
    progress;
    phase_ns = Array.make Phase.count 0;
    phase_hist =
      (match metrics with
       | None -> None
       | Some m ->
         Some
           (Array.of_list
              (List.map
                 (fun p -> Metrics.histogram m ("phase/" ^ Phase.name p ^ "_ns"))
                 Phase.all)));
    (* Snapshots fire on the progress cadence only: a trace without a
       live status line stays structurally deterministic (no
       time-driven events), which the jobs:1 ≡ jobs:N merged-trace
       check relies on. A metrics file needs the same cadence, so it
       opts in to snapshots exactly like a progress line does. *)
    snapshot_interval_ns =
      (match progress with
       | Some p -> max 1 (Progress.interval_ns p)
       | None -> (match metrics_file with Some _ -> 1_000_000_000 | None -> 0));
    engine = "?";
    max_executions = 0;
    outcomes = 0;
    last_snap_t = 0;
    last_snap_exec = 0;
  }

let tracing t = t.sink <> None
let now_ns t = t.clock () - t.t0
let wall_ns = now_ns
let metrics t = t.metrics

(* Deterministic on the execution index alone — never on wall clock —
   so jobs:1 and jobs:N shards sample identical executions and merged
   traces stay reproducible. [sample = 1] keeps every event, making an
   unsampled trace byte-identical to the pre-sampling format. *)
let sampled t ~exec = t.sample <= 1 || exec mod t.sample = 0

let emit t ~exec ev =
  match t.sink with
  | None -> ()
  | Some sink -> sink.Trace.emit { Event.t_ns = now_ns t; exec; ev }

(* {1 Flight recorder} *)

let flight_recorder t = t.ring

let flight_dump t ~reason =
  match (t.ring, t.postmortem) with
  | Some r, Some prefix ->
    let path = Printf.sprintf "%s-%s.jsonl" prefix reason in
    Trace.dump_ring r path;
    Some path
  | _ -> None

(* {1 Phase spans} *)

let span_start t = t.clock ()

let record_span t phase d =
  let i = Phase.index phase in
  t.phase_ns.(i) <- t.phase_ns.(i) + d;
  match t.phase_hist with
  | None -> ()
  | Some hists -> Pdf_util.Stats.Histogram.record hists.(i) d

let span_end t phase start = record_span t phase (t.clock () - start)

let span_next t phase start =
  let now = t.clock () in
  record_span t phase (now - start);
  now

let phase_totals t =
  List.map (fun p -> (Phase.name p, t.phase_ns.(Phase.index p))) Phase.all

(* {1 Run lifecycle} *)

let run_meta t ~subject ~outcomes ~seed ~max_executions ~incremental ~engine =
  t.max_executions <- max_executions;
  t.outcomes <- outcomes;
  t.engine <- engine;
  emit t ~exec:0
    (Event.Run_meta
       { subject; outcomes; seed; max_executions; incremental; engine })

let snapshot_due t =
  t.snapshot_interval_ns > 0 && now_ns t - t.last_snap_t >= t.snapshot_interval_ns

let rate t ~now ~exec =
  let dt = now - t.last_snap_t in
  if dt <= 0 then 0.0 else float_of_int (exec - t.last_snap_exec) *. 1e9 /. float_of_int dt

let write_metrics_file t ~exec =
  match (t.metrics_file, t.metrics) with
  | Some path, Some m ->
    Pdf_util.Atomic_file.write_string path
      (Exposition.prometheus (Metrics.snapshot ~origin:0 ~clock:exec m))
  | _ -> ()

let snapshot t ~exec ~depth ~valid ~cov ~hits ~misses ~rescues ~plateau ~hangs
    ~crashes =
  let now = now_ns t in
  let execs_per_sec = rate t ~now ~exec in
  t.last_snap_t <- now;
  t.last_snap_exec <- exec;
  emit t ~exec
    (Event.Snapshot
       {
         execs_per_sec;
         depth;
         valid;
         cov;
         hits;
         misses;
         rescues;
         plateau;
         hangs;
         crashes;
       });
  write_metrics_file t ~exec;
  match t.progress with
  | None -> ()
  | Some p ->
    Progress.print p
      (Progress.render ~execs:exec ~max_executions:t.max_executions ~execs_per_sec
         ~engine:t.engine ~depth ~valid ~cov ~outcomes:t.outcomes ~hits ~misses
         ~rescues ~plateau ~hangs ~crashes)

let finish t ~exec ~valid ~cov =
  let wall = now_ns t in
  (if tracing t then begin
     let spans = phase_totals t in
     let spans =
       match t.phase_hist with
       | None -> spans
       | Some hists ->
         spans
         @ List.concat_map
             (fun p ->
               let h = hists.(Phase.index p) in
               if Pdf_util.Stats.Histogram.count h = 0 then []
               else
                 [
                   (Phase.name p ^ "_p50", Pdf_util.Stats.Histogram.percentile h 50.0);
                   (Phase.name p ^ "_p99", Pdf_util.Stats.Histogram.percentile h 99.0);
                 ])
             Phase.all
     in
     emit t ~exec (Event.Phases { spans; wall_ns = wall });
     emit t ~exec
       (Event.Run_done
          {
            valid;
            cov;
            wall_ns = wall;
            execs_per_sec =
              (if wall <= 0 then 0.0 else float_of_int exec *. 1e9 /. float_of_int wall);
          })
   end);
  write_metrics_file t ~exec;
  match t.progress with None -> () | Some p -> Progress.finish p
