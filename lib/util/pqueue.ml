type 'a entry = { mutable prio : float; seq : int; value : 'a }

type 'a t = { mutable heap : 'a entry array; mutable size : int; mutable next_seq : int }

(* Sentinel entry filling every slot at index >= size. Vacated slots must
   not keep pointing at popped entries: the backing array would otherwise
   retain dead values (and their whole candidate payloads) until the slot
   happens to be overwritten. The sentinel is a single shared record whose
   payload is [()]; it is never returned, so the unsafe cast never
   escapes. *)
let dummy : unit entry = { prio = neg_infinity; seq = -1; value = () }
let dummy_entry () : 'a entry = Obj.magic dummy

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* Max-heap order: higher priority first; on equal priority, lower seq
   (earlier insertion) first. *)
let before a b = a.prio > b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!best) then best := l;
  if r < t.size && before t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let nheap = Array.make ncap (dummy_entry ()) in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let push t prio value =
  let entry = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_entry t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      t.heap.(t.size) <- dummy_entry ();
      sift_down t 0
    end
    else t.heap.(0) <- dummy_entry ();
    Some top
  end

let pop t = Option.map (fun e -> e.value) (pop_entry t)

let pop_with_priority t = Option.map (fun e -> (e.prio, e.value)) (pop_entry t)

let peek t = if t.size = 0 then None else Some t.heap.(0).value

let iter f t =
  for i = 0 to t.size - 1 do
    f t.heap.(i).value
  done

let heapify t =
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let rerank t f =
  for i = 0 to t.size - 1 do
    t.heap.(i).prio <- f t.heap.(i).value
  done;
  heapify t

let drop_worst t n =
  if t.size > n then begin
    let entries = Array.sub t.heap 0 t.size in
    Array.sort (fun a b -> if before a b then -1 else 1) entries;
    Array.blit entries 0 t.heap 0 n;
    Array.fill t.heap n (t.size - n) (dummy_entry ());
    t.size <- n;
    heapify t
  end

let to_list t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    acc := (t.heap.(i).prio, t.heap.(i).value) :: !acc
  done;
  !acc

let snapshot t =
  let entries = Array.sub t.heap 0 t.size in
  Array.sort (fun a b -> compare a.seq b.seq) entries;
  Array.to_list (Array.map (fun e -> (e.prio, e.value)) entries)
