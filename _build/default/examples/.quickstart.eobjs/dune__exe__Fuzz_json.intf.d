examples/fuzz_json.mli:
