(** Chaos harness: drive seeded campaigns through deterministic fault
    plans ({!Pdf_fault.Fault}) and check that the fuzzer degrades
    gracefully instead of aborting or corrupting its results.

    Checked, per subject:
    - {b chaos survival}: a seeded mixed-kind plan fires and the
      campaign still exhausts its budget with every valid input
      genuinely accepted and the valid coverage still the union of the
      valid inputs' coverage;
    - {b crash containment}: injected exceptions surface as contained
      crashes sharing one deduplicated (exception, site) identity;
    - {b starvation hangs}: fuel-starved executions surface as hangs;
    - {b slowdown neutrality}: slowed executions leave the campaign
      bit-identical (wall clock aside);
    - {b snapshot-corruption neutrality}: poisoning every cached parse
      snapshot is invisible — crashed resumes are rescued by cold
      re-execution;
    - {b worker-death retry}: in {!Pdf_eval.Parallel.map_retry}, a task
      whose domain dies transiently is retried to success and a
      permanently dying task is isolated as [Error] without sinking the
      rest of the grid. *)

val run : ?execs:int -> ?seed:int -> Pdf_subjects.Subject.t -> Invariants.report
(** [run subject] drives the chaos drills with [execs] (default 400)
    executions per campaign under [seed] (default 1). Fault plans are
    derived deterministically from the seed, so a failure reproduces. *)

val ok : Invariants.report -> bool

val pp_report : Format.formatter -> Invariants.report -> unit
