(** Post-hoc trace analysis: replay a JSONL trace into the paper's
    evaluation shapes — coverage over executions (Figure 2), valid
    inputs over time, a per-phase wall-clock breakdown, and the slowest
    executions. *)

type meta = {
  subject : string;
  outcomes : int;
  seed : int;
  max_executions : int;
  incremental : bool;
  engine : string;  (** execution tier of the run; "interpreted" for old traces *)
}

type point = { exec : int; t_ns : int; cov : int; valid : int }

type slow = {
  s_exec : int;
  s_dur_ns : int;
  s_verdict : string;
  s_len : int;
  s_cached : bool;
}

type t = {
  cell : (string * string * int) option;
  meta : meta option;
  execs : int;
  wall_ns : int;
  final_cov : int;  (** valid-coverage cardinal after the last execution *)
  final_valid : int;
  execs_per_sec : float;
  curve : point list;  (** full resolution, one point per execution *)
  phases : (string * int) list;
  phase_percentiles : (string * int) list;
  slowest : slow list;
  cache_hits : int;
  cache_misses : int;
  valids : (int * string) list;
  engines : (string * (int * int)) list;
      (** engine tag -> (executions, total exec duration ns) from the
          tagged [exec_done] events, in first-seen order *)
  hangs : int;  (** cumulative fuel-exhaustion count *)
  crashes : int;  (** cumulative contained-crash count *)
  crash_unique : int;  (** distinct (exn, site) crash identities *)
  faults : int;  (** injected faults that fired (chaos runs only) *)
  rescues : int;  (** crashed cache resumes recovered by re-execution *)
}

val analyse : ?top:int -> ?cell:string * string * int -> Event.stamped list -> t
(** Fold one run's events. [top] (default 10) bounds the slowest-
    execution list. *)

val segments :
  Event.stamped list ->
  ((string * string * int) option * Event.stamped list) list
(** Split a merged evaluate trace at its [Cell] markers; a trace without
    them is a single anonymous segment. *)

val bucketed : rows:int -> t -> point list
(** The curve thinned to at most [rows] evenly spaced execution counts,
    final point always included — its [cov] equals the run's reported
    valid-coverage cardinal. *)

val csv : t -> string
(** Full-resolution [exec,t_s,branches,coverage_pct,valid] rows for
    external plotting. *)

val render : ?rows:int -> Format.formatter -> t -> unit
(** Human-readable report via {!Pdf_util.Render}: summary, coverage
    table + bar chart, per-phase breakdown summing exactly to the wall
    clock, slowest executions. *)

val report_events : ?rows:int -> ?top:int -> Format.formatter -> Event.stamped list -> t list
(** Segment, analyse and render every run in a trace; returns the
    analyses in trace order. *)
