module Frame = Pdf_instr.Frame
module Site = Pdf_instr.Site
module Runner = Pdf_instr.Runner
module Subject = Pdf_subjects.Subject

type node = {
  name : string;
  start_pos : int;
  mutable end_pos : int;
  mutable children : node list; (* reverse order while building *)
}

(* Rebuild the derivation tree from the frame event stream. Frames nest
   properly because [with_frame] is scoped. *)
let tree_of_frames events input_len =
  let root = { name = "<root>"; start_pos = 0; end_pos = input_len; children = [] } in
  let stack = ref [ root ] in
  Array.iter
    (fun event ->
      match (event, !stack) with
      | Frame.Enter { site; pos }, parent :: _ ->
        let node = { name = Site.name site; start_pos = pos; end_pos = pos; children = [] } in
        parent.children <- node :: parent.children;
        stack := node :: !stack
      | Frame.Exit { pos }, node :: rest ->
        node.end_pos <- pos;
        node.children <- List.rev node.children;
        stack := rest
      | (Frame.Enter _ | Frame.Exit _), [] -> assert false)
    events;
  root.children <- List.rev root.children;
  root

(* Convert one node into a production: the input slices between child
   spans become terminals, the children become nonterminals. *)
let rec add_node grammar input node =
  let symbols = ref [] in
  let cursor = ref node.start_pos in
  let emit_terminal upto =
    if upto > !cursor then begin
      symbols := Grammar.Terminal (String.sub input !cursor (upto - !cursor)) :: !symbols;
      cursor := upto
    end
  in
  let grammar =
    List.fold_left
      (fun grammar child ->
        emit_terminal child.start_pos;
        symbols := Grammar.Nonterminal child.name :: !symbols;
        cursor := child.end_pos;
        add_node grammar input child)
      grammar node.children
  in
  emit_terminal node.end_pos;
  Grammar.add_production grammar node.name (List.rev !symbols)

let mine (subject : Subject.t) inputs =
  let root_name = ref None in
  let grammar = ref (Grammar.empty ~start:"") in
  List.iter
    (fun input ->
      let run = Subject.run ~track_frames:true subject input in
      if Runner.accepted run then begin
        let root = tree_of_frames run.frames (String.length input) in
        match root.children with
        | [ top ] ->
          if !root_name = None then begin
            root_name := Some top.name;
            grammar := Grammar.empty ~start:top.name
          end;
          grammar := add_node !grammar input top
        | [] | _ :: _ :: _ -> ()
      end)
    inputs;
  !grammar
