lib/klee/klee.mli: Pdf_instr Pdf_subjects
