(** Path constraints over input characters.

    A parser's path condition decomposes into independent per-position
    character predicates, so a constraint set is a map from input index
    to the set of characters allowed there. Conjunction is set
    intersection; the system is satisfiable iff every position's set is
    non-empty. This is the complete, decidable fragment the KLEE-like
    baseline solves. *)

type t

val empty : t

val constrain : int -> Pdf_util.Charset.t -> t -> t
(** [constrain i set t] conjoins "input(i) ∈ set". *)

val allowed : int -> t -> Pdf_util.Charset.t
(** The set allowed at a position; {!Pdf_util.Charset.full} when
    unconstrained. *)

val satisfiable : t -> bool
val max_index : t -> int option
val cardinality : t -> int
(** Number of constrained positions. *)

val of_comparisons : Pdf_instr.Comparison.t array -> int -> t
(** [of_comparisons events k] is the conjunction of the observed
    character constraints of [events.(0) .. events.(k-1)] with the
    {e negation} of [events.(k)] — one branch-negation step of concolic
    execution. *)
