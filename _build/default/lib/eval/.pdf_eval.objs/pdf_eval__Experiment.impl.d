lib/eval/experiment.ml: List Pdf_instr Pdf_subjects Printf Token_report Tool
