(** Classic grammar analyses: nullability, FIRST and FOLLOW sets,
    computed by fixpoint iteration. FIRST/FOLLOW sets are character sets;
    end-of-input is tracked separately ({!follow_eof}). *)

type t

val analyze : Cfg.t -> t

val nullable : t -> string -> bool
(** Can the nonterminal derive the empty string? *)

val first : t -> string -> Pdf_util.Charset.t
(** Characters that can begin a sentence derived from the nonterminal. *)

val first_of_rhs : t -> Cfg.symbol list -> Pdf_util.Charset.t * bool
(** FIRST of a sentential form, and whether it is nullable. *)

val follow : t -> string -> Pdf_util.Charset.t
(** Characters that can follow the nonterminal in a sentential form
    derived from the start symbol. *)

val follow_eof : t -> string -> bool
(** Can end-of-input follow the nonterminal? *)
