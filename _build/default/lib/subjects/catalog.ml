let evaluation =
  [ Ini.subject; Csv.subject; Json.subject; Tinyc.subject; Mjs.subject ]

let all =
  [ Expr.subject; Paren.subject ] @ evaluation @ [ Tinyc.subject_token_taints; Tinyc.subject_semantic ]

let find name = List.find (fun s -> s.Subject.name = name) all
