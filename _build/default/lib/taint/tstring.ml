type t = Tchar.t array

let empty = [||]
let of_string s = Array.init (String.length s) (fun i -> Tchar.untainted s.[i])
let of_chars cs = Array.of_list cs
let length = Array.length
let get t i = t.(i)
let append_char t c = Array.append t [| c |]
let concat = Array.append
let sub = Array.sub
let to_string t = String.init (Array.length t) (fun i -> t.(i).Tchar.ch)

let taint t =
  Array.fold_left (fun acc (c : Tchar.t) -> Taint.union acc c.taint) Taint.empty t

let taint_of_char t i = t.(i).Tchar.taint
let chars t = Array.to_list t

let equal_payload a b =
  length a = length b
  && (let ok = ref true in
      Array.iteri (fun i (c : Tchar.t) -> if c.ch <> b.(i).Tchar.ch then ok := false) a;
      !ok)

let pp ppf t = Format.fprintf ppf "%S" (to_string t)
