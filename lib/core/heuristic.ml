module Coverage = Pdf_instr.Coverage

type variant =
  | Prose
  | Paper_formula
  | No_stack
  | No_length
  | No_replacement
  | Coverage_only
  | Dfs
  | Bfs

let all =
  [
    ("prose", Prose);
    ("paper-formula", Paper_formula);
    ("no-stack", No_stack);
    ("no-length", No_length);
    ("no-replacement", No_replacement);
    ("coverage-only", Coverage_only);
    ("dfs", Dfs);
    ("bfs", Bfs);
  ]

(* [score] split on its one coverage-dependent input: [new_cov] is the
   count of parent-coverage outcomes not yet in vBr, and everything else
   is a pure function of the candidate. The fuzzer caches [new_cov] per
   queued candidate and re-scores through this entry point, so an
   incremental re-rank reproduces [score]'s floats bit-for-bit — the
   arithmetic below is the single definition both paths share, and
   float addition order matters for that identity. *)
let score_with_cov variant ~new_cov (c : Candidate.t) =
  let new_cov = float_of_int new_cov in
  let len = float_of_int (String.length c.data) in
  let repl = float_of_int (String.length c.repl) in
  let parents = float_of_int c.parents in
  let path_penalty = float_of_int c.path_count in
  match variant with
  | Prose -> new_cov -. len +. (2.0 *. repl) -. c.avg_stack -. parents -. path_penalty
  | Paper_formula ->
    new_cov -. len +. (2.0 *. repl) -. c.avg_stack +. parents -. path_penalty
  | No_stack -> new_cov -. len +. (2.0 *. repl) -. parents -. path_penalty
  | No_length -> new_cov +. (2.0 *. repl) -. c.avg_stack -. parents -. path_penalty
  | No_replacement -> new_cov -. len -. c.avg_stack -. parents -. path_penalty
  | Coverage_only -> new_cov
  | Dfs -> len
  | Bfs -> -.len

let score variant ~vbr (c : Candidate.t) =
  score_with_cov variant
    ~new_cov:(Coverage.new_against c.parent_coverage ~baseline:vbr)
    c
