module Grammar = Pdf_grammar.Grammar
module Miner = Pdf_grammar.Miner
module Generator = Pdf_grammar.Generator
module Catalog = Pdf_subjects.Catalog
module Subject = Pdf_subjects.Subject
module Rng = Pdf_util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* {1 Grammar} *)

let test_grammar_basics () =
  let g = Grammar.empty ~start:"s" in
  Alcotest.(check string) "start" "s" (Grammar.start g);
  Alcotest.(check int) "empty" 0 (Grammar.production_count g);
  let p = [ Grammar.Terminal "a"; Grammar.Nonterminal "s" ] in
  let g = Grammar.add_production g "s" p in
  let g = Grammar.add_production g "s" p in
  Alcotest.(check int) "duplicate productions kept once" 1 (Grammar.production_count g);
  let g = Grammar.add_production g "s" [ Grammar.Terminal "b" ] in
  Alcotest.(check int) "two rules" 2 (List.length (Grammar.productions g "s"));
  Alcotest.(check (list string)) "nonterminals" [ "s" ] (Grammar.nonterminals g);
  Alcotest.(check (list (list string))) "unknown nonterminal" []
    (List.map (fun _ -> []) (Grammar.productions g "t"))

let test_grammar_pp () =
  let g =
    Grammar.add_production (Grammar.empty ~start:"s") "s"
      [ Grammar.Terminal "x"; Grammar.Nonterminal "t" ]
  in
  let out = Format.asprintf "%a" Grammar.pp g in
  Alcotest.(check bool) "renders" true (String.length out > 5)

(* {1 Generator} *)

let recursive_grammar =
  (* s ::= "(" s ")" | "x" — generation must terminate via the cheap
     production even with generous depth. *)
  let g = Grammar.empty ~start:"s" in
  let g =
    Grammar.add_production g "s"
      [ Grammar.Terminal "("; Grammar.Nonterminal "s"; Grammar.Terminal ")" ]
  in
  Grammar.add_production g "s" [ Grammar.Terminal "x" ]

let prop_generator_terminates =
  QCheck.Test.make ~name:"generation terminates on recursive grammars" ~count:200
    QCheck.small_int
    (fun seed ->
      let rng = Rng.make seed in
      let s = Generator.generate rng ~max_depth:20 recursive_grammar in
      String.length s >= 1 && String.length s <= 50)

let prop_generator_well_formed =
  QCheck.Test.make ~name:"generated sentences match the grammar" ~count:200
    QCheck.small_int
    (fun seed ->
      let rng = Rng.make seed in
      let s = Generator.generate rng ~max_depth:10 recursive_grammar in
      (* Must be (^n x )^n. *)
      let n = String.length s in
      let rec check i j =
        if i > j then false
        else if i = j then s.[i] = 'x'
        else s.[i] = '(' && s.[j] = ')' && check (i + 1) (j - 1)
      in
      n mod 2 = 1 && check 0 (n - 1))

let test_generator_empty_grammar () =
  let rng = Rng.make 1 in
  Alcotest.(check string) "empty grammar yields empty string" ""
    (Generator.generate rng (Grammar.empty ~start:"s"))

let test_generate_many () =
  let rng = Rng.make 1 in
  Alcotest.(check int) "count" 25
    (List.length (Generator.generate_many rng 25 recursive_grammar))

(* {1 Miner} *)

let test_mine_expr () =
  let subject = Catalog.find "expr" in
  let inputs = [ "1"; "1+1"; "(2-94)"; "-5"; "(1)" ] in
  let g = Miner.mine subject inputs in
  Alcotest.(check bool) "has productions" true (Grammar.production_count g > 0);
  Alcotest.(check string) "start symbol is the root frame" "parse" (Grammar.start g)

let test_mine_skips_invalid () =
  let subject = Catalog.find "expr" in
  let g = Miner.mine subject [ "((("; "xyz" ] in
  Alcotest.(check int) "nothing mined from rejected inputs" 0
    (Grammar.production_count g)

let mined_generates_accepted name inputs samples =
  let subject = Catalog.find name in
  let g = Miner.mine subject inputs in
  let rng = Rng.make 11 in
  let sentences = Generator.generate_many rng ~max_depth:12 samples g in
  List.iter
    (fun s ->
      (* The empty sentence is a known overgeneralisation: non-emptiness
         is a semantic side condition the mined CFG cannot express
         (paper §7.3). *)
      if s <> "" && not (Subject.accepts subject s) then
        Alcotest.failf "mined %s grammar generated rejected input %S" name s)
    sentences

let test_mined_expr_generates_valid () =
  mined_generates_accepted "expr" [ "1"; "1+1"; "(2-94)"; "-5"; "(1)"; "12" ] 100

let test_mined_json_generates_valid () =
  mined_generates_accepted "json"
    [ "1"; "[]"; "[1,2]"; "{\"k\":true}"; "\"s\""; "null"; "false"; "{\"a\":[{}]}" ]
    100

let test_mined_paren_generates_valid () =
  mined_generates_accepted "paren" [ "()"; "[]"; "(())"; "([])"; "()()" ] 100

let test_mined_grammar_recursion_depth () =
  (* The §7.4 motivation: grammar-based generation reaches much deeper
     recursion than the inputs it was mined from. *)
  let subject = Catalog.find "paren" in
  let inputs = [ "()"; "(())"; "[]" ] in
  let g = Miner.mine subject inputs in
  let rng = Rng.make 3 in
  let sentences = Generator.generate_many rng ~max_depth:30 200 g in
  let depth s = (Subject.run subject s).Pdf_instr.Runner.max_depth in
  let max_gen = List.fold_left (fun acc s -> max acc (depth s)) 0 sentences in
  let max_seed = List.fold_left (fun acc s -> max acc (depth s)) 0 inputs in
  Alcotest.(check bool)
    (Printf.sprintf "generated depth %d exceeds seed depth %d" max_gen max_seed)
    true (max_gen > max_seed)

let () =
  Alcotest.run "pdf_grammar"
    [
      ( "grammar",
        [
          Alcotest.test_case "basics" `Quick test_grammar_basics;
          Alcotest.test_case "pretty printing" `Quick test_grammar_pp;
        ] );
      ( "generator",
        [
          Alcotest.test_case "empty grammar" `Quick test_generator_empty_grammar;
          Alcotest.test_case "generate_many" `Quick test_generate_many;
          qtest prop_generator_terminates;
          qtest prop_generator_well_formed;
        ] );
      ( "miner",
        [
          Alcotest.test_case "mines expr" `Quick test_mine_expr;
          Alcotest.test_case "skips invalid inputs" `Quick test_mine_skips_invalid;
          Alcotest.test_case "mined expr generates valid" `Quick test_mined_expr_generates_valid;
          Alcotest.test_case "mined json generates valid" `Quick test_mined_json_generates_valid;
          Alcotest.test_case "mined paren generates valid" `Quick test_mined_paren_generates_valid;
          Alcotest.test_case "recursion beyond seeds" `Quick test_mined_grammar_recursion_depth;
        ] );
    ]
