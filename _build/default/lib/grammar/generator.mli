(** Grammar-based test generation over a mined grammar: random expansion
    with a depth budget, falling back to each nonterminal's cheapest
    production when the budget runs out so expansion always terminates.
    This is the §7.4 tool-chain step that produces deeply recursive
    inputs cheaply once pFuzzer has supplied the grammar. *)

val generate : Pdf_util.Rng.t -> ?max_depth:int -> Grammar.t -> string
(** One random sentence from the start symbol. Nonterminals without any
    production expand to the empty string. *)

val generate_many : Pdf_util.Rng.t -> ?max_depth:int -> int -> Grammar.t -> string list
(** [generate_many rng n g] draws [n] sentences (duplicates possible). *)
