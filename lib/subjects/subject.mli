(** First-class subject descriptions.

    A subject bundles everything the fuzzers and the evaluation need: the
    instrumented parser, its site registry (coverage denominator), its
    token inventory and an oracle tokenizer that maps a {e valid} input to
    the set of token tags it contains. *)

type t = {
  name : string;
  description : string;
  registry : Pdf_instr.Site.registry;
  parse : Pdf_instr.Ctx.t -> unit;
  machine : Pdf_instr.Machine.recognizer option;
      (** step-wise form of [parse], when the subject provides one; it
          must recognize exactly the same language with the same
          observations. Enables incremental (snapshot/resume) execution. *)
  compiled : Pdf_instr.Compiled.t option;
      (** staged (pre-specialized closure tree) form, when the subject
          provides one; observationally identical to [machine] — same
          language, same comparison log, coverage, trace and reject
          strings — but with per-step allocation moved to staging time.
          Selected by the fuzzer's [Compiled] engine. *)
  compiled_preferred : bool;
      (** whether the staged form is a measured per-execution win over
          the interpreted walker for this subject (BENCH_compiled.json).
          When false, the fuzzer's [Compiled] engine quietly keeps the
          interpreted tier — the staged form still exists for the
          cross-engine equivalence checks, but [--engine compiled] is
          never a pessimization. Results are bit-identical either way. *)
  fuel : int;  (** per-run fuel budget (interpreting subjects hang) *)
  tokens : Token.t list;
  tokenize : string -> string list;
      (** token tags occurring in a valid input; behaviour on invalid
          inputs is unspecified *)
  original_loc : int;  (** lines of code of the paper's C subject (Table 1) *)
}

val run :
  ?track_comparisons:bool -> ?track_trace:bool -> ?track_frames:bool ->
  t -> string ->
  Pdf_instr.Runner.run
(** Execute the subject on one input with its fuel budget. Pass
    [~track_comparisons:false] to skip the comparison log (lexical
    fuzzers need only coverage) and [~track_trace:true] to record the
    full outcome trace with multiplicities (the AFL shim's bitmap needs
    it; the pFuzzer search does not). *)

val exec_journaled :
  ?track_comparisons:bool -> ?track_trace:bool -> ?track_frames:bool ->
  t -> Pdf_instr.Machine.recognizer -> string ->
  Pdf_instr.Runner.run * Pdf_instr.Runner.journal
(** Execute a machine-form subject with read-boundary journaling, for
    incremental (snapshot/resume) execution; see {!Pdf_instr.Runner}.
    Pass the subject's own [machine]. *)

val accepts : t -> string -> bool
