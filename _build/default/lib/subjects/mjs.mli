(** mjs subject: a parser for the JavaScript subset of the paper's [mjs]
    engine (Cesanta's embedded JS). Statements, the full C-like operator
    set, object/array literals, functions, [try]/[catch], [switch], and
    the builtin names ([Object], [JSON.stringify], [indexOf], …) whose
    recognition goes through instrumented string comparisons. Semantic
    checking is disabled, as in the paper's setup (§5.1). *)

val subject : Subject.t
