(* Quickstart: the paper's Section 2 walkthrough.

   We know nothing about the mystery program except that it reads input
   character by character and rejects invalid input. Parser-directed
   fuzzing discovers its input language — arithmetic expressions — by
   tracking the comparisons each rejected input triggers.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let subject = Pdf_subjects.Catalog.find "expr" in
  Printf.printf "Fuzzing the mystery program P from Section 2...\n\n";
  let config =
    { Pdf_core.Pfuzzer.default_config with seed = 1; max_executions = 3000 }
  in
  let result =
    Pdf_core.Pfuzzer.fuzz
      ~on_valid:(fun input -> Printf.printf "  found valid input: %S\n" input)
      config subject
  in
  Printf.printf "\n%d executions, %d valid inputs, %.1f%% branch coverage\n"
    result.executions
    (List.length result.valid_inputs)
    (Pdf_instr.Coverage.percent result.valid_coverage subject.registry);
  let tags = Pdf_eval.Token_report.found_tags subject result.valid_inputs in
  Printf.printf "tokens covered: %s\n" (String.concat " " tags);
  Printf.printf
    "\nP accepts arithmetic expressions: digits, +, -, and parentheses —\n\
     discovered without any documentation or example inputs.\n"
