(** Sets of characters represented as 256-bit vectors.

    This is the value domain of the constraint solver used by the
    KLEE-like baseline: a path constraint on one input position is a
    conjunction of character predicates, each of which denotes a
    [Charset.t]; conjunction is {!inter} and satisfiability is
    [not (is_empty _)]. The fuzzers also use char sets to describe
    substitution alphabets. *)

type t

val empty : t
val full : t

val singleton : char -> t
val of_list : char list -> t
val of_string : string -> t
(** [of_string s] contains exactly the characters occurring in [s]. *)

val range : char -> char -> t
(** [range lo hi] contains all [c] with [lo <= c <= hi] (inclusive).
    Empty if [lo > hi]. *)

val add : char -> t -> t
val remove : char -> t -> t
val mem : char -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t

val cardinal : t -> int
val is_empty : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool

val iter : (char -> unit) -> t -> unit
val fold : (char -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> char list
(** Ascending order. *)

val min_elt : t -> char option
val pick : Rng.t -> t -> char option
(** [pick rng t] draws a uniformly random member, or [None] if empty. *)

val digits : t
val letters : t
val printable : t

val pp : Format.formatter -> t -> unit
