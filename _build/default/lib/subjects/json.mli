(** JSON parser modelled on the paper's [cJSON] subject.

    The [\uXXXX] escape is deliberately decoded through {e untracked}
    comparisons and arithmetic: cJSON's UTF-16 handling relies on implicit
    information flow that the paper's prototype cannot taint (§5.2), and
    reproducing the same blind spot here keeps the evaluation shape
    faithful — pFuzzer cannot learn the hex alphabet and misses the
    UTF-16 conversion branches. *)

val subject : Subject.t
