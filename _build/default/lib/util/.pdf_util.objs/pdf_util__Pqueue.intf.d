lib/util/pqueue.mli:
