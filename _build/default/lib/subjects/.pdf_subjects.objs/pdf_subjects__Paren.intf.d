lib/subjects/paren.mli: Subject
