(* Command-line interface to the parser-directed fuzzing toolkit:

     pfuzzer fuzz --subject json --tool pfuzzer --executions 20000
     pfuzzer fuzz --subject json --trace t.jsonl --stats-interval 1
     pfuzzer fuzz --subject json --trace-sample 100 --flight-recorder fr
     pfuzzer campaign --subject json --workers 4 --executions 20000
     pfuzzer campaign --subject json --workers 4 --metrics-file m.prom
     pfuzzer monitor m.prom
     pfuzzer trace-report t.jsonl
     pfuzzer run --subject tinyc "if(a<2)b=1;"
     pfuzzer evaluate --budget 2000000 --seeds 1,2,3
     pfuzzer mine --subject expr --executions 3000 --samples 20
     pfuzzer check --subject json --executions 2000 --seed 1
     pfuzzer subjects
*)

open Cmdliner

(* Validated argument converters: bad values become one-line errors with
   usage, never raw exceptions. *)

let bounded_int what ~min_v =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= min_v -> Ok n
    | Some n ->
      Error
        (`Msg
           (Printf.sprintf "%s must be %s, got %d" what
              (if min_v > 0 then "positive" else "non-negative")
              n))
    | None ->
      Error (`Msg (Printf.sprintf "invalid %s %S, expected an integer" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let pos_int what = bounded_int what ~min_v:1
let nonneg_int what = bounded_int what ~min_v:0

let nonneg_float what =
  let parse s =
    match float_of_string_opt s with
    | Some f when f >= 0.0 -> Ok f
    | Some _ -> Error (`Msg (Printf.sprintf "%s must be non-negative" what))
    | None ->
      Error (`Msg (Printf.sprintf "invalid %s %S, expected a number" what s))
  in
  Arg.conv (parse, Format.pp_print_float)

let subject_arg =
  let doc = "Subject parser to fuzz (see the `subjects' command)." in
  Arg.(required & opt (some string) None & info [ "s"; "subject" ] ~docv:"NAME" ~doc)

let find_subject name =
  match Pdf_subjects.Catalog.find name with
  | subject -> Ok subject
  | exception Not_found ->
    Error
      (`Msg
         (Printf.sprintf "unknown subject %S; available: %s" name
            (String.concat ", "
               (List.map
                  (fun s -> s.Pdf_subjects.Subject.name)
                  Pdf_subjects.Catalog.all))))

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let executions_arg default =
  let doc = "Execution budget." in
  Arg.(
    value
    & opt (pos_int "execution budget") default
    & info [ "n"; "executions" ] ~docv:"N" ~doc)

(* fuzz *)

let tool_arg =
  let doc = "Tool to run: pfuzzer, afl or klee." in
  Arg.(value & opt string "pfuzzer" & info [ "t"; "tool" ] ~docv:"TOOL" ~doc)

(* Build the observer requested on the command line (None when no
   telemetry flag is set) and run [f] with it. Every output file is
   staged to a temporary and renamed into place only after [f] returns:
   an interrupted or crashed run never leaves a truncated trace behind,
   only the previous complete file (if any). *)
let with_observer ~trace ~trace_chrome ~trace_sample ~metrics_file
    ~flight_recorder ~stats_interval f =
  let staged = ref [] in
  let open_sink path mk =
    let st = Pdf_util.Atomic_file.stage path in
    staged := st :: !staged;
    mk (Pdf_util.Atomic_file.channel st)
  in
  let sinks =
    List.filter_map Fun.id
      [
        Option.map (fun p -> open_sink p Pdf_obs.Trace.jsonl) trace;
        Option.map (fun p -> open_sink p Pdf_obs.Trace.chrome) trace_chrome;
      ]
  in
  let sink =
    match sinks with
    | [] -> None
    | [ s ] -> Some s
    | s :: rest -> Some (List.fold_left Pdf_obs.Trace.tee s rest)
  in
  let progress =
    if stats_interval > 0.0 then
      Some (Pdf_obs.Progress.create ~interval_s:stats_interval ())
    else None
  in
  let ring = Option.map (fun _ -> Pdf_obs.Trace.ring 512) flight_recorder in
  let obs =
    match (sink, progress, ring, metrics_file) with
    | None, None, None, None -> None
    | _ ->
      Some
        (Pdf_obs.Observer.create ?sink ?ring ?postmortem:flight_recorder
           ~sample:trace_sample ?metrics_file ?progress
           ~metrics:(Pdf_obs.Metrics.create ()) ())
  in
  let close_sink () =
    match sink with Some s -> Pdf_obs.Trace.close s | None -> ()
  in
  match f obs with
  | v ->
    close_sink ();
    List.iter Pdf_util.Atomic_file.commit !staged;
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    (try close_sink () with _ -> ());
    List.iter Pdf_util.Atomic_file.abort !staged;
    Printexc.raise_with_backtrace e bt

(* Loading a checkpoint is the one place where a bad file must stop the
   run with a distinctive status: exit 2 lets scripts tell "checkpoint
   unusable" apart from both ordinary CLI errors and fuzzing failures. *)
let load_checkpoint_or_die path =
  match Pdf_core.Pfuzzer.Checkpoint.load path with
  | Ok ck -> ck
  | Error msg ->
    Printf.eprintf "pfuzzer: cannot resume from %s: %s\n%!" path msg;
    exit 2

let write_crash_corpus path (crashes : Pdf_core.Pfuzzer.crash list) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (c : Pdf_core.Pfuzzer.crash) ->
      let open Pdf_obs.Json in
      write_flat buf
        [
          ("exn", S c.exn);
          ("site", S (Printf.sprintf "%08x" c.site));
          ("detail", S c.detail);
          ("input", S c.input);
          ("first_at", I c.first_at);
          ("count", I c.count);
        ];
      Buffer.add_char buf '\n')
    crashes;
  Pdf_util.Atomic_file.write_string path (Buffer.contents buf)

let engine_conv =
  let parse s =
    match Pdf_core.Pfuzzer.engine_of_string s with
    | Some e -> Ok e
    | None ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown engine %S; available: compiled, interpreted" s))
  in
  Arg.conv
    ( parse,
      fun ppf e ->
        Format.pp_print_string ppf (Pdf_core.Pfuzzer.engine_to_string e) )

let minor_heap_arg =
  Arg.(
    value
    & opt (nonneg_int "minor heap size") 0
    & info [ "minor-heap" ] ~docv:"WORDS"
        ~doc:
          "Minor-heap size in words for this campaign. 0 (default) derives a \
           size from the campaign's working set (32 words per queue slot, \
           clamped to [256k, 4M] words). Purely GC pacing: results are \
           bit-identical for every value.")

let fuzz_cmd =
  let run subject_name tool_name seed executions quiet no_incremental engine
      batch trace trace_chrome trace_sample metrics_file flight_recorder
      stats_interval checkpoint checkpoint_every resume crashes_out die_after
      minor_heap =
    match find_subject subject_name with
    | Error e -> Error e
    | Ok subject ->
      (match Pdf_eval.Tool.of_string tool_name with
       | None ->
         Error
           (`Msg
              (Printf.sprintf "unknown tool %S; available: afl, klee, pfuzzer"
                 tool_name))
       | Some tool
         when tool <> Pdf_eval.Tool.Pfuzzer
              && (checkpoint <> None || resume || die_after > 0) ->
         Error
           (`Msg
              "--checkpoint, --resume and --die-after need pFuzzer's \
               deterministic engine; use --tool pfuzzer")
       | Some _ when resume && checkpoint = None ->
         Error (`Msg "--resume needs --checkpoint FILE to resume from")
       | Some tool ->
         let budget_units = executions * Pdf_eval.Tool.cost_per_execution tool in
         let resume_from =
           if resume then Some (load_checkpoint_or_die (Option.get checkpoint))
           else None
         in
         (match resume_from with
          | Some ck ->
            Printf.printf "# resuming %s from execution %d (seed and budget come from the checkpoint)\n"
              (Pdf_core.Pfuzzer.Checkpoint.subject_name ck)
              (Pdf_core.Pfuzzer.Checkpoint.executions ck)
          | None -> ());
         let on_checkpoint =
           Option.map
             (fun path ck -> Pdf_core.Pfuzzer.Checkpoint.save path ck)
             checkpoint
         in
         let on_execution =
           if die_after = 0 then None
           else begin
             let executed = ref 0 in
             Some
               (fun _ ->
                 incr executed;
                 if !executed >= die_after then begin
                   Printf.eprintf "pfuzzer: dying after %d executions (--die-after)\n%!"
                     die_after;
                   Unix._exit 137
                 end)
           end
         in
         Pdf_util.Gc_tune.set_minor_heap
           (if minor_heap > 0 then minor_heap
            else
              Pdf_util.Gc_tune.default_minor_words
                ~queue_bound:Pdf_core.Pfuzzer.default_config.queue_bound);
         let outcome =
           with_observer ~trace ~trace_chrome ~trace_sample ~metrics_file
             ~flight_recorder ~stats_interval (fun obs ->
               Pdf_eval.Tool.run ?obs ?on_checkpoint ?resume_from ?on_execution
                 ?checkpoint_every ~incremental:(not no_incremental) ~engine
                 ~batch tool ~budget_units ~seed subject)
         in
         if not quiet then
           List.iter (fun input -> Printf.printf "%S\n" input) outcome.valid_inputs;
         let tags = Pdf_eval.Token_report.found_tags subject outcome.valid_inputs in
         Printf.printf
           "# %s on %s: %d executions in %.2fs (%.0f execs/sec), %d valid inputs, \
            %.1f%% branch coverage, %d hangs, %d crashes (%d unique), %d tokens: %s\n"
           (Pdf_eval.Tool.display_name tool)
           subject.name outcome.executions outcome.wall_clock_s
           outcome.execs_per_sec
           (List.length outcome.valid_inputs)
           (Pdf_instr.Coverage.percent outcome.valid_coverage subject.registry)
           outcome.hangs outcome.crash_total
           (List.length outcome.crashes)
           (List.length tags) (String.concat " " tags);
         let c = outcome.cache in
         if c.Pdf_core.Pfuzzer.hits + c.misses > 0 then
           Printf.printf
             "# prefix cache: %d hits, %d misses (%.1f%% hit rate), %d evictions, %d chars saved\n"
             c.hits c.misses
             (100. *. float_of_int c.hits /. float_of_int (c.hits + c.misses))
             c.evictions c.chars_saved;
         (match crashes_out with
          | None -> ()
          | Some path ->
            write_crash_corpus path outcome.crashes;
            Printf.printf "# crash corpus (%d identities) written to %s\n"
              (List.length outcome.crashes) path);
         Ok ())
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the summary line.")
  in
  let no_incremental =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:
            "Disable pFuzzer's prefix-snapshot cache and re-execute every \
             input from scratch. Results are bit-identical either way; this \
             exists for benchmarking and debugging.")
  in
  let engine =
    Arg.(
      value
      & opt engine_conv Pdf_core.Pfuzzer.default_config.engine
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "pFuzzer execution tier: `compiled' (default) runs subjects \
             through their staged recognizer in a reusable arena, \
             `interpreted' through the combinator interpreter. Results are \
             bit-identical; subjects without a staged recognizer silently \
             use the interpreted tier.")
  in
  let batch =
    Arg.(
      value
      & opt (pos_int "batch size") Pdf_core.Pfuzzer.default_config.batch
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Candidates drained per main-loop batch; checkpointing happens \
             only at batch boundaries. Results are identical for every N.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a structured JSONL event trace of the run, one event per \
             line (see `trace-report').")
  in
  let trace_chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-chrome" ] ~docv:"FILE"
          ~doc:
            "Write the run's trace in Chrome trace_event format, loadable in \
             chrome://tracing or Perfetto.")
  in
  let stats_interval =
    Arg.(
      value
      & opt (nonneg_float "stats interval") 0.0
      & info [ "stats-interval" ] ~docv:"SECS"
          ~doc:
            "Paint a live status line (execs/sec, engine tier, queue depth, \
             valid inputs, coverage, cache hit rate, rescues, plateau age, \
             hangs, crashes) on stderr every SECS seconds. 0 (default) \
             disables it.")
  in
  let trace_sample =
    Arg.(
      value
      & opt (pos_int "sample interval") 1
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:
            "Record exec-level trace events for 1-in-N executions, chosen \
             deterministically on the execution index (so sampled traces are \
             reproducible and shard-merge deterministic). Structural events \
             (valid inputs, crashes, hangs, faults, rescues) are always \
             recorded. 1 (default) records everything.")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"FILE"
          ~doc:
            "Atomically rewrite FILE with a Prometheus text snapshot of the \
             run's metrics on each status interval (1s when no \
             --stats-interval is set). Watch it live with `pfuzzer monitor \
             FILE'.")
  in
  let flight_recorder =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-recorder" ] ~docv:"PREFIX"
          ~doc:
            "Keep the last 512 trace events in an in-memory ring (cheap even \
             with file tracing off) and dump them to PREFIX-<reason>.jsonl \
             when a fresh crash is recorded, a hang fires, or a fault drill \
             triggers.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a crash-safe campaign checkpoint to FILE every \
             --checkpoint-every executions (atomic write-then-rename; a kill \
             mid-save leaves the previous checkpoint intact). With --resume, \
             also the file to resume from.")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (some (pos_int "checkpoint interval")) None
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Executions between checkpoints (default 1000).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume the campaign from the --checkpoint file instead of \
             starting fresh. Seed and budget come from the checkpoint; the \
             resumed run finds exactly the inputs the uninterrupted run would \
             have. Exits 2 if the checkpoint is missing, corrupted or from \
             another format version.")
  in
  let crashes_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "crashes" ] ~docv:"FILE"
          ~doc:
            "Write the deduplicated crash corpus as JSONL: one line per \
             (exception, crash-site) identity with its first triggering \
             input.")
  in
  let die_after =
    Arg.(
      value
      & opt (nonneg_int "die-after") 0
      & info [ "die-after" ] ~docv:"N"
          ~doc:
            "Kill the process (exit 137, as SIGKILL would) after N subject \
             executions in this process. Exists to exercise --resume: run \
             with --checkpoint and --die-after, then run again with --resume. \
             0 (default) disables it.")
  in
  let term =
    Term.(
      term_result
        (const run $ subject_arg $ tool_arg $ seed_arg $ executions_arg 20_000
         $ quiet $ no_incremental $ engine $ batch $ trace $ trace_chrome
         $ trace_sample $ metrics_file $ flight_recorder $ stats_interval
         $ checkpoint $ checkpoint_every $ resume $ crashes_out $ die_after
         $ minor_heap_arg))
  in
  Cmd.v (Cmd.info "fuzz" ~doc:"Fuzz one subject with one tool.") term

(* campaign *)

let campaign_cmd =
  let run subject_name seed executions workers shards frame_every retries
      kill_worker trace metrics_file postmortem out quiet minor_heap =
    match find_subject subject_name with
    | Error e -> Error e
    | Ok subject ->
      let config =
        { Pdf_core.Pfuzzer.default_config with seed; max_executions = executions }
      in
      (* Workers inherit the coordinator's GC sizing through fork. *)
      Pdf_util.Gc_tune.set_minor_heap
        (if minor_heap > 0 then minor_heap
         else Pdf_util.Gc_tune.default_minor_words ~queue_bound:config.queue_bound);
      let staged = Option.map Pdf_util.Atomic_file.stage trace in
      let sink =
        Option.map
          (fun st -> Pdf_obs.Trace.jsonl (Pdf_util.Atomic_file.channel st))
          staged
      in
      let obs = Option.map (fun s -> Pdf_obs.Observer.create ~sink:s ()) sink in
      (match
         Pdf_eval.Dist.run_campaign ~workers ~shards ~frame_every ~retries
           ~trace:(trace <> None) ?obs ?metrics_file ?postmortem ?kill_worker
           config subject
       with
       | exception Failure msg ->
         (* Replay rounds exhausted, or fork unavailable (a domain was
            spawned earlier in this process). Same distinctive status as
            an unusable checkpoint: not a CLI error, not a crash. *)
         Option.iter (fun s -> try Pdf_obs.Trace.close s with _ -> ()) sink;
         Option.iter Pdf_util.Atomic_file.abort staged;
         Printf.eprintf "pfuzzer: campaign failed: %s\n%!" msg;
         exit 2
       | outcome ->
         (* One JSONL file, readable by trace-report: the coordinator's
            lifecycle events first, then each worker's per-shard stream
            in shard order — the concatenation order is the plan order,
            not the scheduling order. *)
         (match (staged, sink) with
          | Some st, Some s ->
            Pdf_obs.Trace.close s;
            let oc = Pdf_util.Atomic_file.channel st in
            List.iter (output_string oc) outcome.shard_traces;
            Pdf_util.Atomic_file.commit st;
            Printf.printf "# campaign trace written to %s\n" (Option.get trace)
          | _ -> ());
         let r = outcome.result in
         if not quiet then
           List.iter (fun input -> Printf.printf "%S\n" input) r.valid_inputs;
         let budgets =
           String.concat ","
             (List.map
                (fun (sh : Pdf_eval.Dist.shard) -> string_of_int sh.shard_budget)
                outcome.o_plan.shards)
         in
         Printf.printf
           "# campaign on %s: %d shards (budgets %s) over %d workers, %d \
            executions in %.2fs, %d valid inputs, %.1f%% branch coverage, %d \
            hangs, %d crashes (%d unique)\n"
           subject.name
           (List.length outcome.o_plan.shards)
           budgets outcome.workers r.executions outcome.wall_clock_s
           (List.length r.valid_inputs)
           (Pdf_instr.Coverage.percent r.valid_coverage subject.registry)
           r.hangs r.crash_total
           (List.length r.crashes);
         Printf.printf
           "# workers: %s; %d frames accepted, %d rejected, %d shard replays\n"
           (String.concat ", "
              (List.map
                 (fun (w, s) -> Printf.sprintf "%d %s" w s)
                 outcome.worker_status))
           outcome.frames_accepted
           (List.length outcome.frames_rejected)
           outcome.replays;
         List.iter
           (fun (w, reason) ->
             Printf.printf "# worker %d rejected frame: %s\n" w reason)
           outcome.frames_rejected;
         (match outcome.metrics with
          | None -> ()
          | Some s ->
            Printf.printf "# fleet metrics (clock %d): %s\n" s.Pdf_obs.Metrics.clock
              (String.concat ", "
                 (List.map
                    (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                    s.Pdf_obs.Metrics.counters)));
         (match out with
          | None -> ()
          | Some path ->
            (* Timing-free by construction: every field is a pure
               function of (subject, seed, executions, shards), so two
               campaigns with different worker counts must produce
               byte-identical files — CI diffs them directly. *)
            let digest =
              Digest.to_hex (Digest.string (Marshal.to_string r []))
            in
            let buf = Buffer.create 256 in
            let open Pdf_obs.Json in
            (* The merged-metrics block keeps only the deterministic
               parts of the fleet totals — counters and histogram
               counts. Gauges and timing quantiles are
               scheduling-dependent and would break the byte-identity
               of --out across worker counts. *)
            let metric_fields =
              match outcome.metrics with
              | None -> []
              | Some s ->
                List.map
                  (fun (n, v) -> (Pdf_obs.Exposition.metric_name n, I v))
                  s.Pdf_obs.Metrics.counters
                @ List.map
                    (fun (n, h) ->
                      ( Pdf_obs.Exposition.metric_name n ^ "_count",
                        I (Pdf_util.Stats.Histogram.count h) ))
                    s.Pdf_obs.Metrics.histograms
            in
            write_flat buf
              ([
                 ("subject", S subject.name);
                 ("seed", I seed);
                 ("executions", I r.executions);
                 ("shards", I (List.length outcome.o_plan.shards));
                 ("shard_budgets", S budgets);
                 ("valid_inputs", I (List.length r.valid_inputs));
                 ( "coverage_pct",
                   F (Pdf_instr.Coverage.percent r.valid_coverage subject.registry)
                 );
                 ("first_valid_at", I (Option.value r.first_valid_at ~default:(-1)));
                 ("crash_identities", I (List.length r.crashes));
                 ("crash_total", I r.crash_total);
                 ("hangs", I r.hangs);
                 ("result_digest", S digest);
               ]
              @ metric_fields);
            Buffer.add_char buf '\n';
            Pdf_util.Atomic_file.write_string path (Buffer.contents buf);
            Printf.printf "# campaign summary written to %s\n" path);
         Ok ())
  in
  let workers =
    Arg.(
      value
      & opt (pos_int "worker count") 2
      & info [ "w"; "workers" ] ~docv:"N"
          ~doc:
            "Worker processes to fork. The merged result is bit-identical \
             for every N — workers are concurrency, the shard plan is the \
             computation.")
  in
  let shards =
    Arg.(
      value
      & opt (pos_int "shard count") 4
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Shards in the campaign plan: independent fuzzing runs with \
             derived seeds and budget slices, dealt round-robin to the \
             workers. Changing S changes the campaign; changing --workers \
             does not.")
  in
  let frame_every =
    Arg.(
      value
      & opt (pos_int "frame interval") 500
      & info [ "frame-every" ] ~docv:"N"
          ~doc:"Per-shard executions between progress sync frames.")
  in
  let retries =
    Arg.(
      value
      & opt (nonneg_int "retries") 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Replay rounds for shards whose worker died before sending a \
             final frame. Exits 2 when a shard is still missing after the \
             last round.")
  in
  let kill_worker =
    Arg.(
      value
      & opt (some (nonneg_int "worker id")) None
      & info [ "kill-worker" ] ~docv:"W"
          ~doc:
            "Chaos drill: SIGKILL worker W at its first accepted frame. The \
             campaign must still produce the bit-identical merged result by \
             replaying the lost shards.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a JSONL trace: the coordinator's shard plan and worker \
             lifecycle events, then every worker's per-shard event stream \
             concatenated in shard order.")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"FILE"
          ~doc:
            "Atomically rewrite FILE with a Prometheus text snapshot of the \
             fleet's merged metrics as sync frames arrive. Watch it live with \
             `pfuzzer monitor FILE'.")
  in
  let postmortem =
    Arg.(
      value
      & opt (some string) None
      & info [ "postmortem" ] ~docv:"PREFIX"
          ~doc:
            "Attach a flight recorder to the coordinator's lifecycle events \
             and dump it to PREFIX-worker<W>.jsonl when worker W dies \
             abnormally or leaves shards unfinished.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write a one-line JSON campaign summary with no timing fields \
             (plus the deterministic slice of the fleet metrics: counters and \
             histogram counts): byte-identical across worker counts, so CI \
             can diff the files from --workers 1 and --workers 4 directly.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the summary lines.")
  in
  let term =
    Term.(
      term_result
        (const run $ subject_arg $ seed_arg $ executions_arg 20_000 $ workers
         $ shards $ frame_every $ retries $ kill_worker $ trace $ metrics_file
         $ postmortem $ out $ quiet $ minor_heap_arg))
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a distributed fuzzing campaign: a deterministic shard plan \
          executed by N forked workers streaming sync frames to a merging \
          coordinator. The result is bit-identical for every worker count.")
    term

(* run *)

let run_cmd =
  let run subject_name input =
    match find_subject subject_name with
    | Error e -> Error e
    | Ok subject ->
      let run = Pdf_subjects.Subject.run subject input in
      Format.printf "%s: %a@." subject.name Pdf_instr.Runner.pp_verdict run.verdict;
      Format.printf "coverage: %.1f%% (%d outcomes), %d comparisons, eof-access: %b@."
        (Pdf_instr.Coverage.percent run.coverage subject.registry)
        (Pdf_instr.Coverage.cardinal run.coverage)
        (Array.length run.comparisons) run.eof_access;
      Array.iter
        (fun c -> Format.printf "  %a@." Pdf_instr.Comparison.pp c)
        run.comparisons;
      Ok ()
  in
  let input =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT" ~doc:"Input string.")
  in
  let term = Term.(term_result (const run $ subject_arg $ input)) in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one input through an instrumented subject and dump the observations.")
    term

(* evaluate *)

let evaluate_cmd =
  let run budget seeds jobs retries trace =
    let seeds = if seeds = [] then [ 1 ] else seeds in
    let jobs = if jobs = 0 then Pdf_eval.Parallel.default_jobs () else jobs in
    let config = { Pdf_eval.Experiment.budget_units = budget; seeds; verbose = true } in
    let run_grid trace_oc =
      Pdf_eval.Experiment.run ~jobs ~retries ?trace:trace_oc config
        Pdf_subjects.Catalog.evaluation
    in
    let experiment =
      match trace with
      | None -> run_grid None
      | Some path ->
        Pdf_util.Atomic_file.with_out path (fun oc -> run_grid (Some oc))
    in
    Pdf_eval.Report.full Format.std_formatter experiment;
    match experiment.failures with
    | [] -> Ok ()
    | failures ->
      Error
        (`Msg
           (Printf.sprintf
              "%d evaluation cell(s) failed after %d retries (reported as \
               all-zero above)"
              (List.length failures) retries))
  in
  let budget =
    Arg.(
      value
      & opt (pos_int "budget") Pdf_eval.Experiment.default_config.budget_units
      & info [ "budget" ] ~docv:"UNITS"
          ~doc:"Virtual budget per (tool, subject): 1 unit per AFL execution, 100 per pFuzzer/KLEE execution.")
  in
  let seeds =
    Arg.(value & opt (list int) [ 1 ] & info [ "seeds" ] ~docv:"S1,S2,..." ~doc:"Seeds; best run is reported.")
  in
  let jobs =
    Arg.(
      value
      & opt (nonneg_int "jobs") 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Evaluation-grid cells to run concurrently (OCaml domains). 1 is \
             strictly sequential; 0 means one worker per recommended domain. \
             Results are identical for every N.")
  in
  let retries =
    Arg.(
      value
      & opt (nonneg_int "retries") 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Times to re-run a grid cell whose execution raised before \
             marking it failed. A cell that exhausts its retries is reported \
             as all-zero and the command exits non-zero.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a merged JSONL trace of every grid cell, each segment \
             headed by a `cell' event. The merge order is the grid order, \
             independent of --jobs.")
  in
  let term =
    Term.(term_result (const run $ budget $ seeds $ jobs $ retries $ trace))
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Run the paper's full evaluation and print every table and figure.")
    term

(* trace-report *)

let trace_report_cmd =
  let run file rows top csv_out chrome_out =
    match Pdf_obs.Trace.read_file file with
    | exception Sys_error m -> Error (`Msg m)
    | exception Failure m -> Error (`Msg (Printf.sprintf "%s: %s" file m))
    | events ->
      let analyses =
        Pdf_obs.Trace_report.report_events ~rows ~top Format.std_formatter events
      in
      (match csv_out with
       | None -> ()
       | Some path ->
         Pdf_util.Atomic_file.with_out path (fun oc ->
             List.iter
               (fun (a : Pdf_obs.Trace_report.t) ->
                 (match a.cell with
                  | Some (tool, subject, seed) ->
                    Printf.fprintf oc "# %s on %s, seed %d\n" tool subject seed
                  | None -> ());
                 output_string oc (Pdf_obs.Trace_report.csv a))
               analyses);
         Printf.printf "# coverage-over-time CSV written to %s\n" path);
      (match chrome_out with
       | None -> ()
       | Some path ->
         Pdf_util.Atomic_file.with_out path (fun oc ->
             let sink = Pdf_obs.Trace.chrome oc in
             List.iter (Pdf_obs.Trace.emit sink) events;
             Pdf_obs.Trace.close sink);
         Printf.printf "# Chrome trace written to %s\n" path);
      Ok ()
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace written by fuzz/evaluate --trace.")
  in
  let rows =
    Arg.(
      value
      & opt (pos_int "row count") 20
      & info [ "rows" ] ~docv:"N" ~doc:"Rows in the coverage-over-time table.")
  in
  let top =
    Arg.(
      value
      & opt (pos_int "top count") 10
      & info [ "top" ] ~docv:"N" ~doc:"Slowest executions to list.")
  in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Also export the full-resolution coverage-over-time curve as CSV.")
  in
  let chrome_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:"Also convert the trace to Chrome trace_event format.")
  in
  let term =
    Term.(term_result (const run $ file $ rows $ top $ csv_out $ chrome_out))
  in
  Cmd.v
    (Cmd.info "trace-report"
       ~doc:
         "Replay a JSONL trace into coverage-over-time and valid-input tables, \
          a per-phase time breakdown and the slowest executions.")
    term

(* mine *)

let mine_cmd =
  let run subject_name seed executions samples =
    match find_subject subject_name with
    | Error e -> Error e
    | Ok subject ->
      let config =
        { Pdf_core.Pfuzzer.default_config with seed; max_executions = executions }
      in
      let result = Pdf_core.Pfuzzer.fuzz config subject in
      Printf.printf "# mined from %d valid inputs\n" (List.length result.valid_inputs);
      let grammar = Pdf_grammar.Miner.mine subject result.valid_inputs in
      Format.printf "%a" Pdf_grammar.Grammar.pp grammar;
      if samples > 0 then begin
        let rng = Pdf_util.Rng.make seed in
        let sentences = Pdf_grammar.Generator.generate_many rng samples grammar in
        let ok = List.filter (Pdf_subjects.Subject.accepts subject) sentences in
        Printf.printf "# %d/%d generated sentences accepted\n" (List.length ok) samples;
        List.iter (fun s -> Printf.printf "%S\n" s) sentences
      end;
      Ok ()
  in
  let samples =
    Arg.(
      value
      & opt (nonneg_int "sample count") 10
      & info [ "samples" ] ~docv:"N" ~doc:"Sentences to generate from the mined grammar.")
  in
  let term =
    Term.(
      term_result (const run $ subject_arg $ seed_arg $ executions_arg 5000 $ samples))
  in
  Cmd.v
    (Cmd.info "mine"
       ~doc:"Fuzz a subject, mine a grammar from the valid inputs (paper Section 7.4), and sample it.")
    term

(* pipeline *)

let pipeline_cmd =
  let run subject_name seed budget =
    match find_subject subject_name with
    | Error e -> Error e
    | Ok subject ->
      let result = Pdf_eval.Pipeline.run ~budget_units:budget ~seed subject in
      List.iter
        (fun (s : Pdf_eval.Pipeline.stage_report) ->
          Printf.printf "# %s: %d executions, %d new valid inputs, %.1f%% cumulative coverage\n"
            (Pdf_eval.Tool.display_name s.stage)
            s.executions s.new_valid s.coverage_after)
        result.stages;
      List.iter (fun input -> Printf.printf "%S\n" input) result.valid_inputs;
      Ok ()
  in
  let budget =
    Arg.(
      value
      & opt (pos_int "budget") 1_000_000
      & info [ "budget" ] ~docv:"UNITS" ~doc:"Total virtual budget.")
  in
  let term = Term.(term_result (const run $ subject_arg $ seed_arg $ budget)) in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:"Run the Section 6.2 tool chain: AFL, then pFuzzer, then KLEE, handing the corpus over.")
    term

(* check *)

let check_cmd =
  let run subject_name seed executions chaos =
    let subjects =
      match subject_name with
      | None -> Ok (Pdf_check.Harness.checked_subjects ())
      | Some name ->
        (match find_subject name with
         | Error e -> Error e
         | Ok subject -> Ok [ subject ])
    in
    match subjects with
    | Error e -> Error e
    | Ok subjects ->
      let outcome = Pdf_check.Harness.run ~execs:executions ~seed ~chaos subjects in
      Format.printf "%a" Pdf_check.Harness.pp outcome;
      if Pdf_check.Harness.ok outcome then Ok ()
      else Error (`Msg "correctness checks failed")
  in
  let subject =
    let doc =
      "Subject to check (defaults to every subject with a reference oracle)."
    in
    Arg.(value & opt (some string) None & info [ "s"; "subject" ] ~docv:"NAME" ~doc)
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Also run the chaos drills: seeded fault plans (injected \
             exceptions, fuel starvation, slowdowns, snapshot corruption, \
             worker death) must degrade the campaign gracefully, never \
             corrupt it.")
  in
  let term =
    Term.(
      term_result (const run $ subject $ seed_arg $ executions_arg 2000 $ chaos))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the correctness harness: differential fuzzing against reference \
          oracles (with shrinking), fuzzer invariant checks, and (with \
          --chaos) fault-injection drills.")
    term

(* monitor *)

let monitor_cmd =
  let run file once interval =
    let render_once () =
      match Pdf_util.Atomic_file.read_string file with
      | exception Sys_error _ ->
        (* The fuzzer may not have written its first snapshot yet; a
           transient miss is part of normal startup, not an error. *)
        Printf.printf "[pfuzzer monitor] waiting for %s\n" file
      | text ->
        print_string (Pdf_obs.Exposition.render (Pdf_obs.Exposition.parse text))
    in
    if once then begin
      render_once ();
      flush stdout;
      Ok ()
    end
    else begin
      let tty = try Unix.isatty Unix.stdout with Unix.Unix_error _ -> false in
      let rec loop () =
        if tty then print_string "\027[2J\027[H";
        render_once ();
        flush stdout;
        Unix.sleepf interval;
        loop ()
      in
      loop ()
    end
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Prometheus text file written by --metrics-file.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render the current snapshot once and exit (for scripts and CI).")
  in
  let interval =
    Arg.(
      value
      & opt (nonneg_float "refresh interval") 1.0
      & info [ "interval" ] ~docv:"SECS" ~doc:"Refresh cadence.")
  in
  let term = Term.(term_result (const run $ file $ once $ interval)) in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Render a live dashboard from a --metrics-file snapshot: re-read \
          the file every --interval seconds (atomic rewrites mean a read \
          never sees a torn snapshot) and print one aligned block per \
          metric family.")
    term

(* subjects *)

let subjects_cmd =
  let run () =
    List.iter
      (fun (s : Pdf_subjects.Subject.t) ->
        Printf.printf "%-8s %s (%d sites, %d tokens)\n" s.name s.description
          (Pdf_instr.Site.site_count s.registry)
          (List.length s.tokens))
      Pdf_subjects.Catalog.all
  in
  Cmd.v (Cmd.info "subjects" ~doc:"List available subjects.") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "pfuzzer" ~version:"1.0.0"
      ~doc:"Parser-directed fuzzing (Mathis et al., PLDI 2019) in OCaml"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fuzz_cmd;
            campaign_cmd;
            run_cmd;
            evaluate_cmd;
            trace_report_cmd;
            mine_cmd;
            pipeline_cmd;
            check_cmd;
            monitor_cmd;
            subjects_cmd;
          ]))
