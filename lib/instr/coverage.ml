(* Dense bitset over outcome ids.

   Outcome ids are dense (site [i] owns outcomes [2i] and [2i+1], see
   {!Site}), so a set of covered outcomes is a bit vector of at most
   [Site.total_outcomes] bits. Values are immutable int arrays of
   [Sys.int_size]-bit words, little-endian in bit index; trailing zero
   words are permitted and ignored by every observation, so [equal] and
   [cardinal] are representation-independent. All the per-execution set
   operations ([union], [diff], [new_against]) are word-parallel
   O(words) loops instead of O(n log n) persistent-set merges. *)

type t = int array

let bits = Sys.int_size

let empty = [||]

(* Population count for one word. 63-bit OCaml ints cannot hold the
   64-bit SWAR masks, so count the two 32-bit halves separately. The
   final multiply must be masked to a byte: an OCaml int is wider than
   32 bits, so the byte sums that a 32-bit register would discard
   survive above bit 32. *)
let popcount x =
  let count32 v =
    let v = v - ((v lsr 1) land 0x5555_5555) in
    let v = (v land 0x3333_3333) + ((v lsr 2) land 0x3333_3333) in
    let v = (v + (v lsr 4)) land 0x0f0f_0f0f in
    (v * 0x0101_0101) lsr 24 land 0xff
  in
  count32 (x land 0xffff_ffff) + count32 ((x lsr 32) land 0x7fff_ffff)

let check_oid i =
  if i < 0 then invalid_arg "Coverage: negative outcome id"

let add i t =
  check_oid i;
  let w = i / bits in
  let n = max (Array.length t) (w + 1) in
  let r = Array.make n 0 in
  Array.blit t 0 r 0 (Array.length t);
  r.(w) <- r.(w) lor (1 lsl (i mod bits));
  r

let mem i t =
  i >= 0
  && i / bits < Array.length t
  && (t.(i / bits) lsr (i mod bits)) land 1 = 1

let union a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let n = max la lb in
    let r = Array.make n 0 in
    for i = 0 to n - 1 do
      r.(i) <-
        (if i < la then a.(i) else 0) lor (if i < lb then b.(i) else 0)
    done;
    r
  end

let diff a b =
  let lb = Array.length b in
  Array.mapi (fun i w -> if i < lb then w land lnot b.(i) else w) a

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t

let is_empty t = Array.for_all (fun w -> w = 0) t

let of_iter iter =
  let hi = ref (-1) in
  iter (fun i ->
      check_oid i;
      if i > !hi then hi := i);
  if !hi < 0 then empty
  else begin
    let r = Array.make ((!hi / bits) + 1) 0 in
    iter (fun i -> r.(i / bits) <- r.(i / bits) lor (1 lsl (i mod bits)));
    r
  end

let of_list l = of_iter (fun f -> List.iter f l)

(* Direct loops rather than [of_iter]: this builds the parent-coverage
   set once per candidate-generating execution, and the iterator version
   pays two closure allocations per call. *)
let of_array ?len a =
  let len =
    match len with None -> Array.length a | Some l -> min l (Array.length a)
  in
  let hi = ref (-1) in
  for i = 0 to len - 1 do
    let v = Array.unsafe_get a i in
    check_oid v;
    if v > !hi then hi := v
  done;
  if !hi < 0 then empty
  else begin
    let r = Array.make ((!hi / bits) + 1) 0 in
    for i = 0 to len - 1 do
      let v = Array.unsafe_get a i in
      r.(v / bits) <- r.(v / bits) lor (1 lsl (v mod bits))
    done;
    r
  end

let to_list t =
  let acc = ref [] in
  for w = Array.length t - 1 downto 0 do
    if t.(w) <> 0 then
      for b = bits - 1 downto 0 do
        if (t.(w) lsr b) land 1 = 1 then acc := ((w * bits) + b) :: !acc
      done
  done;
  !acc

(* [inter_cardinal] and [new_against] run once per enqueued candidate
   (several times per execution); [for]-loop accumulators keep them free
   of per-call allocation — both the closure-and-ref pattern of
   [Array.iteri] and the closure a captured-variable [let rec] costs. *)
let inter_cardinal a b =
  let n = min (Array.length a) (Array.length b) in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + popcount (Array.unsafe_get a i land Array.unsafe_get b i)
  done;
  !acc

let new_against c ~baseline =
  let lb = Array.length baseline in
  let acc = ref 0 in
  for i = 0 to Array.length c - 1 do
    let w = Array.unsafe_get c i in
    let w = if i < lb then w land lnot (Array.unsafe_get baseline i) else w in
    acc := !acc + popcount w
  done;
  !acc

let percent c registry =
  Pdf_util.Stats.ratio (cardinal c) (Site.total_outcomes registry)

let subset a b =
  let lb = Array.length b in
  let ok = ref true in
  Array.iteri
    (fun i w ->
      let wb = if i < lb then b.(i) else 0 in
      if w land lnot wb <> 0 then ok := false)
    a;
  !ok

let equal a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let ok = ref true in
  for i = 0 to n - 1 do
    let wa = if i < la then a.(i) else 0
    and wb = if i < lb then b.(i) else 0 in
    if wa <> wb then ok := false
  done;
  !ok
