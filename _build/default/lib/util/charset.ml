(* A char set is four 64-bit words; character [c] lives in word [c/64],
   bit [c mod 64]. *)
type t = { w0 : int64; w1 : int64; w2 : int64; w3 : int64 }

let empty = { w0 = 0L; w1 = 0L; w2 = 0L; w3 = 0L }
let full = { w0 = -1L; w1 = -1L; w2 = -1L; w3 = -1L }

let word t i =
  match i with
  | 0 -> t.w0
  | 1 -> t.w1
  | 2 -> t.w2
  | 3 -> t.w3
  | _ -> assert false

let with_word t i w =
  match i with
  | 0 -> { t with w0 = w }
  | 1 -> { t with w1 = w }
  | 2 -> { t with w2 = w }
  | 3 -> { t with w3 = w }
  | _ -> assert false

let bit c = Int64.shift_left 1L (Char.code c land 63)
let idx c = Char.code c lsr 6

let add c t =
  let i = idx c in
  with_word t i (Int64.logor (word t i) (bit c))

let remove c t =
  let i = idx c in
  with_word t i (Int64.logand (word t i) (Int64.lognot (bit c)))

let mem c t = Int64.logand (word t (idx c)) (bit c) <> 0L

let singleton c = add c empty
let of_list cs = List.fold_left (fun t c -> add c t) empty cs

let of_string s =
  let t = ref empty in
  String.iter (fun c -> t := add c !t) s;
  !t

let range lo hi =
  let t = ref empty in
  for c = Char.code lo to Char.code hi do
    t := add (Char.chr c) !t
  done;
  !t

let map2 f a b =
  { w0 = f a.w0 b.w0; w1 = f a.w1 b.w1; w2 = f a.w2 b.w2; w3 = f a.w3 b.w3 }

let union = map2 Int64.logor
let inter = map2 Int64.logand
let diff a b = map2 (fun x y -> Int64.logand x (Int64.lognot y)) a b
let complement t = diff full t

let popcount64 x =
  let rec go acc x = if x = 0L then acc else go (acc + 1) Int64.(logand x (sub x 1L)) in
  go 0 x

let cardinal t = popcount64 t.w0 + popcount64 t.w1 + popcount64 t.w2 + popcount64 t.w3
let is_empty t = t.w0 = 0L && t.w1 = 0L && t.w2 = 0L && t.w3 = 0L
let equal a b = a.w0 = b.w0 && a.w1 = b.w1 && a.w2 = b.w2 && a.w3 = b.w3
let subset a b = is_empty (diff a b)

let iter f t =
  for c = 0 to 255 do
    let ch = Char.chr c in
    if mem ch t then f ch
  done

let fold f t init =
  let acc = ref init in
  iter (fun c -> acc := f c !acc) t;
  !acc

let to_list t = List.rev (fold (fun c acc -> c :: acc) t [])

let min_elt t =
  let rec go c = if c > 255 then None else if mem (Char.chr c) t then Some (Char.chr c) else go (c + 1) in
  go 0

let pick rng t =
  let n = cardinal t in
  if n = 0 then None
  else begin
    let k = Rng.int rng n in
    let found = ref None and seen = ref 0 in
    (try
       iter
         (fun c ->
           if !seen = k then begin
             found := Some c;
             raise Exit
           end;
           incr seen)
         t
     with Exit -> ());
    !found
  end

let digits = range '0' '9'
let letters = union (range 'a' 'z') (range 'A' 'Z')
let printable = range ' ' '~'

let pp ppf t =
  Format.fprintf ppf "{";
  iter
    (fun c ->
      if c >= ' ' && c <= '~' then Format.fprintf ppf "%c" c
      else Format.fprintf ppf "\\x%02x" (Char.code c))
    t;
  Format.fprintf ppf "}"
