(** Token inventory entries for the input-coverage evaluation (§5.3).

    Following the paper, strings, numbers and identifiers are each
    classified as a single token regardless of their spelling, and every
    token carries the length under which the paper groups it (Tables
    2–4): punctuation and keywords use their literal length, while the
    class tokens use the length the paper assigns (number/identifier 1,
    string 2). *)

type t = { tag : string; length : int }
(** [tag] is the canonical tag a subject's {i tokenize} function emits
    when the token occurs in a valid input. *)

val make : string -> int -> t
val literal : string -> t
(** [literal s] is [make s (String.length s)]. *)

val of_length : int -> t list -> t list
(** Inventory entries of the given length. *)

val lengths : t list -> int list
(** Distinct lengths occurring in an inventory, ascending. *)
