(** The AFL-style live status line.

    Rendering is a pure function of the sampled numbers so it can be
    golden-tested; painting overwrites in place on a tty and degrades to
    plain lines when redirected. *)

type t

val create : ?out:out_channel -> ?interval_s:float -> unit -> t
(** Defaults: stderr, one-second cadence. *)

val interval_ns : t -> int

val render :
  execs:int ->
  max_executions:int ->
  execs_per_sec:float ->
  engine:string ->
  depth:int ->
  valid:int ->
  cov:int ->
  outcomes:int ->
  hits:int ->
  misses:int ->
  rescues:int ->
  plateau:int ->
  hangs:int ->
  crashes:int ->
  string
(** One status line: executions, throughput, the resolved engine tier
    ("?" when unknown), queue depth, valid count, coverage percentage,
    cache hit rate ("-" before any consultation), cache rescue count,
    plateau age in executions, and cumulative hang and crash counts. *)

val print : t -> string -> unit
val finish : t -> unit
(** Terminate a live line with a newline, if one is painted. *)
