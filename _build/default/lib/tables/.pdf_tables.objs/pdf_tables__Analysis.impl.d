lib/tables/analysis.ml: Cfg Hashtbl List Option Pdf_util
