type verdict = Accepted | Rejected of string | Hang

type run = {
  input : string;
  verdict : verdict;
  comparisons : Comparison.t array;
  coverage : Coverage.t;
  trace : int array;
  touched : int array;
  eof_access : bool;
  max_depth : int;
  frames : Frame.event array;
}

let exec ~registry ~parse ?fuel ?track_comparisons ?track_trace ?track_frames
    input =
  let ctx =
    Ctx.make ~registry ?fuel ?track_comparisons ?track_trace ?track_frames input
  in
  let verdict =
    match parse ctx with
    | () -> Accepted
    | exception Ctx.Reject reason -> Rejected reason
    | exception Ctx.Out_of_fuel -> Hang
  in
  {
    input;
    verdict;
    comparisons = Ctx.comparisons_array ctx;
    coverage = Ctx.coverage ctx;
    trace = Ctx.trace ctx;
    touched = Ctx.touched ctx;
    eof_access = Ctx.eof_access ctx;
    max_depth = Ctx.max_depth ctx;
    frames = Ctx.frames ctx;
  }

let accepted run = run.verdict = Accepted

let max_index_where pred run =
  Array.fold_left
    (fun acc (c : Comparison.t) ->
      if pred c then
        match acc with None -> Some c.index | Some i -> Some (max i c.index)
      else acc)
    None run.comparisons

let last_compared_index run = max_index_where (fun _ -> true) run

(* The first invalid character: the rightmost position where the parser's
   expectation failed. Positions beyond it may have been touched by
   class-membership probes (e.g. "is this still a letter?") whose success
   carries no substitution information, so failed comparisons take
   precedence. *)
let substitution_index run =
  match max_index_where (fun (c : Comparison.t) -> not c.result) run with
  | Some _ as failed -> failed
  | None -> last_compared_index run

let comparisons_at_last_index run =
  match substitution_index run with
  | None -> []
  | Some idx ->
    Array.fold_left
      (fun acc (c : Comparison.t) -> if c.index = idx then c :: acc else acc)
      [] run.comparisons
    |> List.rev

let coverage_up_to_last_index run =
  match substitution_index run with
  | None -> run.coverage
  | Some idx ->
    (* [trace_pos] counts distinct outcomes covered before the event, and
       [touched] lists outcomes in first-occurrence order — so the
       coverage accumulated before the first comparison at the last index
       is exactly a prefix of [touched]. No full trace required. *)
    let cut =
      Array.fold_left
        (fun acc (c : Comparison.t) ->
          if c.index = idx then min acc c.trace_pos else acc)
        (Array.length run.touched) run.comparisons
    in
    Coverage.of_array ~len:(min cut (Array.length run.touched)) run.touched

let avg_stack_of_last_two run =
  let n = Array.length run.comparisons in
  if n = 0 then 0.0
  else if n = 1 then float_of_int run.comparisons.(0).stack_depth
  else
    float_of_int (run.comparisons.(n - 1).stack_depth + run.comparisons.(n - 2).stack_depth)
    /. 2.0

(* First-occurrence order of outcomes: a compact path identity that is
   insensitive to loop iteration counts ("non-duplicate branches"). The
   context maintains that order incrementally, so hashing it is one
   allocation-free FNV-1a pass over [touched] — no per-run hash table. *)
let path_hash run =
  let h = ref 0x811c9dc5 in
  Array.iter
    (fun oid -> h := (!h lxor oid) * 0x0100_0193 land max_int)
    run.touched;
  !h

let pp_verdict ppf = function
  | Accepted -> Format.fprintf ppf "accepted"
  | Rejected reason -> Format.fprintf ppf "rejected (%s)" reason
  | Hang -> Format.fprintf ppf "hang"
