module Charset = Pdf_util.Charset

type conflict = {
  nonterminal : string;
  lookahead : char option;
  productions : int * int;
}

type t = {
  grammar : Cfg.t;
  (* (nonterminal, Some char | None-for-EOF) -> production *)
  table : (string * char option, Cfg.production) Hashtbl.t;
}

exception Conflict of conflict

let build grammar =
  let analysis = Analysis.analyze grammar in
  let table = Hashtbl.create 64 in
  let add nonterminal lookahead production =
    match Hashtbl.find_opt table (nonterminal, lookahead) with
    | Some existing when existing <> production ->
      raise
        (Conflict
           {
             nonterminal;
             lookahead;
             productions =
               ( Cfg.production_index grammar existing,
                 Cfg.production_index grammar production );
           })
    | Some _ -> ()
    | None -> Hashtbl.replace table (nonterminal, lookahead) production
  in
  match
    List.iter
      (fun (p : Cfg.production) ->
        let rhs_first, rhs_nullable = Analysis.first_of_rhs analysis p.rhs in
        Charset.iter (fun c -> add p.lhs (Some c) p) rhs_first;
        if rhs_nullable then begin
          Charset.iter (fun c -> add p.lhs (Some c) p) (Analysis.follow analysis p.lhs);
          if Analysis.follow_eof analysis p.lhs then add p.lhs None p
        end)
      (Cfg.productions grammar)
  with
  | () -> Ok { grammar; table }
  | exception Conflict c -> Error c

let grammar t = t.grammar
let lookup t nonterminal c = Hashtbl.find_opt t.table (nonterminal, Some c)
let lookup_eof t nonterminal = Hashtbl.find_opt t.table (nonterminal, None)

let expected t nonterminal =
  Hashtbl.fold
    (fun (nt, lookahead) _ acc ->
      match lookahead with
      | Some c when nt = nonterminal -> Charset.add c acc
      | Some _ | None -> acc)
    t.table Charset.empty

let entries t =
  Hashtbl.fold
    (fun (nt, lookahead) production acc ->
      (nt, lookahead, Cfg.production_index t.grammar production) :: acc)
    t.table []
  |> List.sort compare

let pp_conflict ppf c =
  let lookahead =
    match c.lookahead with Some ch -> Printf.sprintf "%C" ch | None -> "EOF"
  in
  let a, b = c.productions in
  Format.fprintf ppf "LL(1) conflict on <%s> with lookahead %s: productions %d and %d"
    c.nonterminal lookahead a b
