module Iset = Set.Make (Int)

type t = Iset.t

let empty = Iset.empty
let singleton = Iset.singleton
let union = Iset.union
let is_empty = Iset.is_empty
let mem = Iset.mem
let max_index t = Iset.max_elt_opt t
let min_index t = Iset.min_elt_opt t
let cardinal = Iset.cardinal
let to_list = Iset.elements
let of_list l = Iset.of_list l
let equal = Iset.equal

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (to_list t)))
