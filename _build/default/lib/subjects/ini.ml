module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site
module Charset = Pdf_util.Charset
module Tstring = Pdf_taint.Tstring

let registry = Site.create_registry "ini"
let s_parse = Site.block registry "parse"
let s_line = Site.block registry "line"
let s_section = Site.block registry "section"
let s_kvpair = Site.block registry "kvpair"
let s_comment = Site.block registry "comment"
let b_blank = Site.branch registry "line.blank"
let b_comment_semi = Site.branch registry "line.semicolon?"
let b_comment_hash = Site.branch registry "line.hash?"
let b_lbracket = Site.branch registry "line.lbracket?"
let b_newline = Site.branch registry "line.newline?"
let b_keychar = Site.branch registry "line.keychar?"
let b_rbracket = Site.branch registry "section.rbracket?"
let b_section_nl = Site.branch registry "section.newline?"
let b_section_empty = Site.branch registry "section.empty-name?"
let b_key_more = Site.branch registry "key.more?"
let b_equals = Site.branch registry "kvpair.equals"
let b_value_char = Site.branch registry "value.char?"
let b_inline_ws = Site.branch registry "inline-ws?"

let inline_ws = Charset.of_string " \t\r"
let key_chars = Charset.union Charset.letters (Charset.union Charset.digits (Charset.of_string "_.-"))
let value_chars = Charset.complement (Charset.singleton '\n')

let skip_inline_ws ctx = Helpers.skip_set ctx b_inline_ws ~label:"inline-ws" inline_ws

let skip_to_eol ctx =
  ignore (Helpers.read_set ctx b_value_char ~label:"line-char" value_chars)

(* [section] parses the body after '[': a (possibly empty, as in inih)
   name terminated by ']'. Any character except ']' and newline may
   appear in a name. *)
let section ctx =
  Ctx.with_frame ctx s_section @@ fun () ->
  let rec name len =
    match Ctx.next ctx with
    | None -> Ctx.reject ctx "unterminated section header"
    | Some c ->
      if Ctx.eq ctx b_rbracket c ']' then begin
        ignore (Ctx.branch ctx b_section_empty (len = 0));
        skip_to_eol ctx
      end
      else if Ctx.eq ctx b_section_nl c '\n' then
        Ctx.reject ctx "newline in section header"
      else name (len + 1)
  in
  name 0

(* [kvpair first] parses a key (whose first character has already been
   consumed) up to '=', then the value to end of line. *)
let kvpair ctx =
  Ctx.with_frame ctx s_kvpair @@ fun () ->
  ignore (Helpers.read_set ctx b_key_more ~label:"key-char" key_chars);
  skip_inline_ws ctx;
  Helpers.expect ctx b_equals '=';
  skip_inline_ws ctx;
  skip_to_eol ctx

let line ctx =
  Ctx.with_frame ctx s_line @@ fun () ->
  skip_inline_ws ctx;
  match Ctx.peek ctx with
  | None -> ignore (Ctx.branch ctx b_blank true)
  | Some c ->
    ignore (Ctx.branch ctx b_blank false);
    if Ctx.eq ctx b_newline c '\n' then ignore (Ctx.next ctx)
    else if Ctx.eq ctx b_comment_semi c ';' || Ctx.eq ctx b_comment_hash c '#' then begin
      Ctx.with_frame ctx s_comment @@ fun () ->
      ignore (Ctx.next ctx);
      skip_to_eol ctx
    end
    else if Ctx.eq ctx b_lbracket c '[' then begin
      ignore (Ctx.next ctx);
      section ctx
    end
    else if Ctx.in_set ctx b_keychar ~label:"key-char" c key_chars then kvpair ctx
    else Ctx.reject ctx "invalid start of line"

let parse ctx =
  Ctx.with_frame ctx s_parse @@ fun () ->
  let rec lines () =
    if not (Ctx.at_eof ctx) then begin
      line ctx;
      (* [line] stops either at a newline it consumed or at end of line;
         consume the terminating newline if present. *)
      (match Ctx.peek ctx with
       | Some c when Ctx.eq ctx b_newline c '\n' -> ignore (Ctx.next ctx)
       | Some _ | None -> ());
      lines ()
    end
  in
  lines ();
  (* Final EOF probe so an accepted input still signals extensibility. *)
  ignore (Ctx.peek ctx)

let tokens =
  [
    Token.literal "[";
    Token.literal "]";
    Token.literal "=";
    Token.literal ";";
    Token.make "identifier" 1;
  ]

let tokenize input =
  let tags = ref [] in
  let push tag = if not (List.mem tag !tags) then tags := tag :: !tags in
  String.iter
    (fun c ->
      match c with
      | '[' -> push "["
      | ']' -> push "]"
      | '=' -> push "="
      | ';' | '#' -> push ";"
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> push "identifier"
      | _ -> ())
    input;
  List.rev !tags

let subject =
  {
    Subject.name = "ini";
    description = "INI configuration files (paper subject: inih)";
    registry;
    parse;
    fuel = 100_000;
    tokens;
    tokenize;
    original_loc = 293;
  }
