lib/eval/tool.mli: Pdf_instr Pdf_subjects
