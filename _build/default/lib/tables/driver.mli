(** An instrumented table-driven (LL(1)) parser — the §7.1 future-work
    system.

    The driver is a single push-down loop over the parse table, so plain
    code coverage barely distinguishes inputs: the paper predicts that
    "the coverage metric will not work on table-driven parsers out of the
    box" and proposes coverage of {e table elements} instead. Both modes
    are provided so the prediction can be measured:

    - {!Code}: only the driver's own handful of sites are registered —
      the out-of-the-box setting;
    - {!Table_elements}: one site per populated table cell, so expanding
      a new (nonterminal, lookahead) entry counts as new coverage.

    Similarly, a real table parser indexes the table directly and
    compares nothing, starving the comparison tracker; drivers that build
    "expected one of …" diagnostics do compare. {!diagnostics} selects
    between the two. *)

type coverage_mode = Code | Table_elements

type diagnostics =
  | Silent  (** table miss rejects without comparing the lookahead *)
  | Expected_sets
      (** a miss compares the lookahead against the row's expected set,
          giving the fuzzer a substitution source *)

val subject :
  name:string ->
  description:string ->
  ?coverage:coverage_mode ->
  ?diagnostics:diagnostics ->
  ?tokens:Pdf_subjects.Token.t list ->
  ?tokenize:(string -> string list) ->
  Ll1.t ->
  Pdf_subjects.Subject.t
(** Package a parse table as a fuzzable subject. Defaults:
    [Table_elements] coverage, [Expected_sets] diagnostics. *)
