(** Persistent sets of covered outcomes.

    Snapshots are taken frequently by the fuzzers (e.g. "branches covered
    up to the last accepted character"), so the representation is a
    persistent integer set. *)

type t

val empty : t
val add : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int
val is_empty : t -> bool
val of_list : int list -> t
val to_list : t -> int list
val new_against : t -> baseline:t -> int
(** [new_against c ~baseline] counts outcomes in [c] absent from
    [baseline] — the [size(branches \ vBr)] term of the heuristic. *)

val percent : t -> Site.registry -> float
(** Covered outcomes as a percentage of the registry's total. *)

val equal : t -> t -> bool
