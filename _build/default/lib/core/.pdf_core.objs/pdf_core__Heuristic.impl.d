lib/core/heuristic.ml: Candidate Pdf_instr String
