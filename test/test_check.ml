(* Tests for the correctness harness itself: oracle unit vectors, the
   shrinker, the producers, differential + invariant smoke passes over
   every seed subject, and — the part that proves the harness has teeth —
   mutation tests that inject a bug into a subject and require the
   differential driver to find it and shrink the counterexample to a
   handful of characters. *)

module Ctx = Pdf_instr.Ctx
module Subject = Pdf_subjects.Subject
module Oracle = Pdf_check.Oracle
module Producer = Pdf_check.Producer
module Shrink = Pdf_check.Shrink
module Differential = Pdf_check.Differential
module Invariants = Pdf_check.Invariants
module Harness = Pdf_check.Harness
module Rng = Pdf_util.Rng

let subject name =
  try Pdf_subjects.Catalog.find name
  with Not_found -> Alcotest.failf "no subject %S in the catalog" name

let oracle name =
  match Oracle.find name with
  | Some o -> o
  | None -> Alcotest.failf "no oracle %S" name

(* {1 Oracle unit vectors}

   Hand-picked inputs with known verdicts, independent of both the
   oracles and the subjects. Each is checked against the oracle *and*
   the instrumented subject, so a vector typo shows up as a double
   failure rather than a silent agreement. *)

let vectors =
  [
    ( "paren",
      [ "()"; "[]"; "<>"; "{}"; "([]{})"; "<<[()]>>"; "()()" ],
      [ ""; "("; ")"; "(]"; "([)]"; "()x"; "x"; "(()" ] );
    ( "expr",
      [ "1"; "42"; "1+2"; "-3"; "(1+2)"; "1+-2"; "(((7)))"; "10-2+3" ],
      [ ""; "+"; "1+"; "--1"; "(1"; "1)"; "a"; "1 + 2" ] );
    ( "ini",
      [ ""; "\n"; "; comment\n"; "# comment\n"; "[sec]\n"; "key=value\n";
        "[s]\nk=v\n"; "k.e-y_2=v\n"; "key = spaced\n";
        (* the final newline is optional, and a section header tolerates
           trailing junk on its line *)
        "key=v"; "[a]b\n" ],
      [ "[sec\n"; "=v\n"; "key\n"; "key!=v\n" ] );
    ( "csv",
      [ ""; "a"; "a,b"; "a,b\nc,d"; "\"a,b\""; "\"he said \"\"hi\"\"\"";
        "a,\nb,"; "\"\"" ],
      [ "\"a"; "\"a\"x"; "\"a\"\"" ] );
    ( "json",
      [ "1"; "-0.5"; "007"; "true"; "null"; "[]"; "[1,2]"; "{}";
        "{\"a\":1}"; "\"s\""; "\"\\u0041\""; "\"\\ud834\\udd1e\"";
        " [ 1 , { \"k\" : false } ] " ],
      [ ""; "tru"; "truely"; "[1,]"; "{\"a\":}"; "\"\\u12\""; "\"\\ud834\"";
        "\"a\nb\""; "01a"; "[1 2]" ] );
  ]

let test_oracle_vectors () =
  List.iter
    (fun (name, accepted, rejected) ->
      let o = oracle name and s = subject name in
      List.iter
        (fun input ->
          Alcotest.(check bool)
            (Printf.sprintf "%s oracle accepts %S" name input)
            true (o.Oracle.accepts input);
          Alcotest.(check bool)
            (Printf.sprintf "%s subject accepts %S" name input)
            true (Subject.accepts s input))
        accepted;
      List.iter
        (fun input ->
          Alcotest.(check bool)
            (Printf.sprintf "%s oracle rejects %S" name input)
            false (o.Oracle.accepts input);
          Alcotest.(check bool)
            (Printf.sprintf "%s subject rejects %S" name input)
            false (Subject.accepts s input))
        rejected)
    vectors

(* {1 Shrinker} *)

let test_shrink_units () =
  let contains c s = String.contains s c in
  Alcotest.(check string) "single relevant char survives" "x"
    (Shrink.shrink (contains 'x') "aaxbb");
  Alcotest.(check string) "already minimal" "x" (Shrink.shrink (contains 'x') "x");
  Alcotest.(check string) "empty stays empty"
    "" (Shrink.shrink (fun _ -> true) "");
  (* A length predicate shrinks to exactly the threshold, all-canonical. *)
  let s = Shrink.shrink (fun s -> String.length s >= 3) "kqzwvut" in
  Alcotest.(check int) "length predicate hits the bound" 3 (String.length s);
  (* Pair predicate: both halves must survive chunk deletion. *)
  let p s = contains '(' s && contains ')' s in
  let s = Shrink.shrink p "xx(yyy)zz" in
  Alcotest.(check bool) "predicate preserved" true (p s);
  Alcotest.(check bool) "shrunk to the two relevant chars"
    true (String.length s = 2)

let test_shrink_preserves_predicate () =
  (* Random predicates over random strings: the result must satisfy the
     predicate and be no longer than the input. *)
  let rng = Rng.make 11 in
  for _ = 1 to 50 do
    let n = Rng.int rng 20 in
    let input = String.init n (fun _ -> Rng.printable rng) in
    let c = Rng.printable rng in
    let p s = not (String.contains s c) in
    if p input then begin
      let s = Shrink.shrink p input in
      Alcotest.(check bool) "predicate holds on result" true (p s);
      Alcotest.(check bool) "no longer than input" true
        (String.length s <= String.length input)
    end
  done

(* {1 Producers} *)

let test_producers () =
  let rng = Rng.make 3 in
  List.iter
    (fun (o : Oracle.t) ->
      let valids = ref 0 and invalids = ref 0 in
      for _ = 1 to 40 do
        (match Producer.valid rng o with
         | Some s ->
           incr valids;
           Alcotest.(check bool)
             (Printf.sprintf "%s producer valid %S accepted" o.name s)
             true (o.accepts s)
         | None -> ());
        match Producer.invalid rng o with
        | Some s ->
          incr invalids;
          Alcotest.(check bool)
            (Printf.sprintf "%s producer invalid %S rejected" o.name s)
            false (o.accepts s)
        | None -> ()
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%s producer yields valid inputs" o.name)
        true (!valids > 10);
      Alcotest.(check bool)
        (Printf.sprintf "%s producer yields invalid inputs" o.name)
        true (!invalids > 10))
    Oracle.all

(* {1 Differential + invariant smoke}

   Small budgets: the full-size pass is [pfuzzer check]'s job; here we
   only need every subject wired up and agreeing. *)

let test_differential_smoke () =
  List.iter
    (fun (s : Subject.t) ->
      let o = oracle s.name in
      let r = Differential.run ~execs:400 ~seed:7 s o in
      Alcotest.(check int)
        (Printf.sprintf "%s: no disagreements" s.name)
        0
        (List.length r.disagreements);
      Alcotest.(check bool)
        (Printf.sprintf "%s: inputs were actually checked" s.name)
        true (r.inputs_checked > 20))
    (Harness.checked_subjects ())

let test_invariants_smoke () =
  List.iter
    (fun (s : Subject.t) ->
      let r = Invariants.run ~execs:150 ~seed:5 s in
      Alcotest.(check int)
        (Printf.sprintf "%s: ten invariants evaluated" s.name)
        10
        (List.length r.checks);
      if not (Invariants.ok r) then
        Alcotest.failf "%s" (Format.asprintf "%a" Invariants.pp_report r))
    (Harness.checked_subjects ())

(* {1 Mutation tests}

   Inject a bug into a seed subject and require the differential driver
   to (a) notice and (b) shrink the witness to at most 8 characters —
   the acceptance bar for the harness being useful, not just green. *)

let check_finds_bug ~name ~max_len buggy oracle_name =
  let o = oracle oracle_name in
  let r = Differential.run ~execs:1500 ~seed:1 buggy o in
  if r.disagreements = [] then
    Alcotest.failf "%s: differential driver missed the injected bug" name;
  List.iter
    (fun (d : Differential.disagreement) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: shrunk %S no longer than original %S" name
           d.shrunk d.input)
        true
        (String.length d.shrunk <= String.length d.input))
    r.disagreements;
  let best =
    List.fold_left
      (fun acc (d : Differential.disagreement) ->
        min acc (String.length d.shrunk))
      max_int r.disagreements
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: a counterexample shrank to <= %d chars (got %d)"
       name max_len best)
    true (best <= max_len)

let test_mutation_spurious_reject () =
  (* The subject wrongly rejects any input mentioning '<'; minimal
     witness is "<>" (a lone '<' is rejected by both sides). *)
  let base = subject "paren" in
  let buggy =
    {
      base with
      name = "paren(buggy-reject)";
      parse =
        (fun ctx ->
          base.parse ctx;
          if String.contains (Ctx.input ctx) '<' then
            Ctx.reject ctx "injected bug");
    }
  in
  check_finds_bug ~name:"spurious-reject" ~max_len:8 buggy "paren"

let test_mutation_accept_everything () =
  (* The subject swallows its own parse errors — the classic forgotten
     exit code. Minimal witness is any 1-char invalid input. *)
  let base = subject "expr" in
  let buggy =
    {
      base with
      name = "expr(buggy-accept)";
      parse =
        (fun ctx -> try base.parse ctx with Ctx.Reject _ -> ());
    }
  in
  check_finds_bug ~name:"accept-everything" ~max_len:8 buggy "expr"

let test_mutation_object_slip () =
  (* The subject chokes on every object member — any json containing a
     ':' is wrongly rejected. The minimal witness is a small object like
     {"":0}, which exercises shrinking through the json oracle's richer
     language (a bare deletion pass cannot reach it; whole-chunk deletions
     must cooperate). *)
  let base = subject "json" in
  let buggy =
    {
      base with
      name = "json(buggy-object)";
      parse =
        (fun ctx ->
          base.parse ctx;
          if String.contains (Ctx.input ctx) ':' then
            Ctx.reject ctx "injected bug");
    }
  in
  check_finds_bug ~name:"object-slip" ~max_len:8 buggy "json"

(* {1 Harness aggregation} *)

let test_harness_runs () =
  let subjects = Harness.checked_subjects () in
  Alcotest.(check int) "five subjects have oracles" 5 (List.length subjects);
  let outcome = Harness.run ~execs:300 ~seed:2 [ subject "paren" ] in
  Alcotest.(check bool) "paren harness passes" true (Harness.ok outcome)

let () =
  Alcotest.run "check"
    [
      ( "oracle",
        [
          Alcotest.test_case "unit vectors (oracle and subject)" `Quick
            test_oracle_vectors;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "unit cases" `Quick test_shrink_units;
          Alcotest.test_case "predicate preserved on random inputs" `Quick
            test_shrink_preserves_predicate;
        ] );
      ( "producer",
        [ Alcotest.test_case "valid/invalid as labelled" `Quick test_producers ] );
      ( "differential",
        [
          Alcotest.test_case "seed subjects agree with oracles" `Quick
            test_differential_smoke;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "all invariants hold on seed subjects" `Slow
            test_invariants_smoke;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "spurious reject is found and shrunk" `Quick
            test_mutation_spurious_reject;
          Alcotest.test_case "accept-everything is found and shrunk" `Quick
            test_mutation_accept_everything;
          Alcotest.test_case "object slip is found and shrunk" `Quick
            test_mutation_object_slip;
        ] );
      ( "harness",
        [ Alcotest.test_case "aggregation and subject set" `Quick test_harness_runs ] );
    ]
