(** Monotonic nanosecond clock used for every telemetry timestamp. *)

val now_ns : unit -> int
(** Nanoseconds from an arbitrary monotonic origin. Differences are
    wall-clock durations; absolute values are only meaningful relative
    to each other within one process. *)
