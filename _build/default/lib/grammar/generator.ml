module Rng = Pdf_util.Rng

(* Cost of a production = one more than the sum of its nonterminals'
   costs; used to pick a terminating expansion when depth is exhausted.
   Computed by fixpoint; unreachable nonterminals keep an infinite cost
   and expand to the empty string. *)
let costs grammar =
  let tbl = Hashtbl.create 16 in
  let cost_of_nt nt =
    Option.value ~default:max_int (Hashtbl.find_opt tbl nt)
  in
  let cost_of_production p =
    List.fold_left
      (fun acc sym ->
        match sym with
        | Grammar.Terminal _ -> acc
        | Grammar.Nonterminal nt ->
          let c = cost_of_nt nt in
          if acc = max_int || c = max_int then max_int else acc + c)
      1 p
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun nt ->
        let best =
          List.fold_left
            (fun acc p -> min acc (cost_of_production p))
            max_int (Grammar.productions grammar nt)
        in
        if best < cost_of_nt nt then begin
          Hashtbl.replace tbl nt best;
          changed := true
        end)
      (Grammar.nonterminals grammar)
  done;
  (cost_of_nt, cost_of_production)

let generate rng ?(max_depth = 12) grammar =
  let cost_of_nt, cost_of_production = costs grammar in
  ignore cost_of_nt;
  let buf = Buffer.create 64 in
  let rec expand nt depth =
    match Grammar.productions grammar nt with
    | [] -> ()
    | productions ->
      let production =
        if depth <= 0 then
          (* Out of budget: cheapest production. *)
          List.fold_left
            (fun best p ->
              if cost_of_production p < cost_of_production best then p else best)
            (List.hd productions) productions
        else Rng.choose_list rng productions
      in
      List.iter
        (fun sym ->
          match sym with
          | Grammar.Terminal s -> Buffer.add_string buf s
          | Grammar.Nonterminal child -> expand child (depth - 1))
        production
  in
  expand (Grammar.start grammar) max_depth;
  Buffer.contents buf

let generate_many rng ?max_depth n grammar =
  List.init n (fun _ -> generate rng ?max_depth grammar)
