(** The KLEE-like baseline: concolic execution with generational branch
    negation.

    Each execution's comparison log is the path condition; every suffix
    negation of that log yields a child state whose path constraint is
    handed to the character-domain solver. States are scheduled by a
    coverage-optimising searcher (KLEE's [covnew] flavour), and — as in
    the paper's KLEE configuration — an input is emitted only when it
    covers new code. Path explosion on deeply structured subjects
    emerges naturally: every run spawns one child per comparison event,
    so the frontier grows with path length. *)

type config = {
  seed : int;
  max_executions : int;
  max_input_len : int;
  frontier_bound : int;  (** states kept in the worklist *)
  negations_per_run : int;
      (** at most this many (deepest-first) branch negations are expanded
          per run, bounding the per-run fan-out *)
}

val default_config : config

type result = {
  valid_inputs : string list;
      (** accepted inputs that covered new code, discovery order *)
  valid_coverage : Pdf_instr.Coverage.t;
  executions : int;
  states_created : int;
  solver_failures : int;  (** unsatisfiable negation attempts *)
}

val fuzz :
  ?on_valid:(string -> unit) ->
  ?initial_inputs:string list ->
  config ->
  Pdf_subjects.Subject.t ->
  result
(** [initial_inputs] seeds the state frontier — the §6.2 hand-over point
    when symbolic exploration continues from a fuzzing corpus. *)
