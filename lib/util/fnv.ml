(* FNV-1a over byte ranges, masked to a non-negative OCaml int.

   The point of this module is hashing *parts* of strings in place: the
   fuzzer's hot loops key tables by an input prefix or by a
   prefix-plus-substitution concatenation, and hashing the range (or
   resuming a saved prefix hash over the tail) avoids materialising a
   substring just to throw it at [Hashtbl.hash]. The prime/offset pair
   is the standard 32-bit one; [land max_int] keeps values usable as
   non-negative [Hashtbl] keys on 63-bit ints. *)

let offset_basis = 0x811c9dc5
let prime = 0x0100_0193

let[@inline] byte h c = (h lxor Char.code c) * prime land max_int

let range s pos len =
  let h = ref offset_basis in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * prime land max_int
  done;
  !h

let prefix s len = range s 0 len

let string s = range s 0 (String.length s)

(* Resume a hash produced by [prefix]/[range] over another string, as if
   the two ranges had been concatenated: [continue (prefix a n) b] equals
   [string (String.sub a 0 n ^ b)] without building the concatenation. *)
let continue h s =
  let r = ref h in
  for i = 0 to String.length s - 1 do
    r := (!r lxor Char.code (String.unsafe_get s i)) * prime land max_int
  done;
  !r
