lib/util/charset.ml: Char Format List Rng String
