(** Well-balanced brackets over four bracket kinds — the Dyck-language
    subject used to reproduce the Section 3 search-strategy argument
    (random choice closes an [n]-deep prefix with probability about
    [1/(n+1)]). *)

val subject : Subject.t
