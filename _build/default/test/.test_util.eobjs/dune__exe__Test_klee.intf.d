test/test_klee.mli:
