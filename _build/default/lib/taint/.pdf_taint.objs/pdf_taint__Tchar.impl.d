lib/taint/tchar.ml: Char Format Taint
