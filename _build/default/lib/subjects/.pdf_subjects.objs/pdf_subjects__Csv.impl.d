lib/subjects/csv.ml: Helpers List Pdf_instr Pdf_util String Subject Token
