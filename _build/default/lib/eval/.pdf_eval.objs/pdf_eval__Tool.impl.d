lib/eval/tool.ml: Pdf_afl Pdf_core Pdf_instr Pdf_klee Pdf_subjects String
