module Rng = Pdf_util.Rng
module Coverage = Pdf_instr.Coverage
module Runner = Pdf_instr.Runner
module Subject = Pdf_subjects.Subject

type config = {
  seed : int;
  max_executions : int;
  seed_input : string;
  havoc_per_entry : int;
  deterministic_limit : int;
}

let default_config =
  {
    seed = 1;
    max_executions = 200_000;
    seed_input = " ";
    havoc_per_entry = 256;
    deterministic_limit = 16;
  }

type entry = { data : string; mutable det_done : bool }

type result = {
  valid_inputs : string list;
  valid_coverage : Coverage.t;
  executions : int;
  queue_length : int;
  bitmap_density : int;
}

type state = {
  config : config;
  subject : Subject.t;
  rng : Rng.t;
  virgin : Bitmap.t;
  builder : Bitmap.builder;
  mutable queue : entry list;  (* reverse discovery order *)
  mutable queue_len : int;
  mutable valid_rev : string list;
  mutable valid_cov : Coverage.t;
  mutable executions : int;
  on_valid : string -> unit;
}

exception Budget_exhausted

(* Run one input; if its classified edge map shows new bits, it becomes a
   queue entry, and accepted entries join the valid corpus. *)
let execute st input =
  if st.executions >= st.config.max_executions then raise Budget_exhausted;
  st.executions <- st.executions + 1;
  let run = Subject.run ~track_comparisons:false ~track_trace:true st.subject input in
  let sparse = Bitmap.sparse_of_trace st.builder run.trace in
  if Bitmap.new_bits ~virgin:st.virgin sparse then begin
    Bitmap.merge ~into:st.virgin sparse;
    st.queue <- { data = input; det_done = false } :: st.queue;
    st.queue_len <- st.queue_len + 1;
    if Runner.accepted run then begin
      st.valid_rev <- input :: st.valid_rev;
      st.valid_cov <- Coverage.union st.valid_cov run.coverage;
      st.on_valid input
    end
  end

let fuzz ?(on_valid = fun _ -> ()) config subject =
  let st =
    {
      config;
      subject;
      rng = Rng.make config.seed;
      virgin = Bitmap.create ();
      builder = Bitmap.builder ();
      queue = [];
      queue_len = 0;
      valid_rev = [];
      valid_cov = Coverage.empty;
      executions = 0;
      on_valid;
    }
  in
  (try
     execute st config.seed_input;
     if st.queue = [] then
       (* The seed produced no bits (degenerate subject): force it in. *)
       st.queue <- [ { data = config.seed_input; det_done = false } ];
     (* Queue cycling, as AFL does: walk the queue repeatedly; new
        entries found during a cycle are picked up in the next one. *)
     while true do
       let snapshot = List.rev st.queue in
       List.iter
         (fun entry ->
           if
             (not entry.det_done)
             && String.length entry.data <= config.deterministic_limit
           then begin
             entry.det_done <- true;
             List.iter (execute st) (Mutator.deterministic entry.data)
           end;
           for _ = 1 to config.havoc_per_entry do
             execute st (Mutator.havoc st.rng entry.data)
           done;
           (* Occasional splice against a random other entry. *)
           if st.queue_len > 1 then begin
             let other = List.nth snapshot (Rng.int st.rng (List.length snapshot)) in
             execute st (Mutator.splice st.rng entry.data other.data)
           end)
         snapshot
     done
   with Budget_exhausted -> ());
  {
    valid_inputs = List.rev st.valid_rev;
    valid_coverage = st.valid_cov;
    executions = st.executions;
    queue_length = st.queue_len;
    bitmap_density = Bitmap.count_nonzero st.virgin;
  }
