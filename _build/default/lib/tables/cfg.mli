(** Context-free grammars over character terminals, for building
    table-driven parsers (the paper's §7.1 future-work direction).

    Terminals are single characters — the parsers built from these
    grammars are {e scannerless}, reading the instrumented input stream
    directly, which is the setting parser-directed fuzzing assumes. *)

type symbol = T of char | N of string

type production = { lhs : string; rhs : symbol list }

type t

val make : start:string -> production list -> t
(** @raise Invalid_argument if a right-hand side mentions a nonterminal
    with no production, or the start symbol has none. *)

val start : t -> string
val productions : t -> production list
val productions_of : t -> string -> production list
(** In declaration order. *)

val nonterminals : t -> string list
(** In first-occurrence order. *)

val production_index : t -> production -> int
(** Position in {!productions}; used as the table entry payload. *)

val pp : Format.formatter -> t -> unit
