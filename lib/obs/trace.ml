type sink = { emit : Event.stamped -> unit; close : unit -> unit }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let emit sink ev = sink.emit ev
let close sink = sink.close ()

let jsonl oc =
  {
    emit =
      (fun ev ->
        output_string oc (Event.to_json_line ev);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let buffer () =
  let buf = Buffer.create 4096 in
  ( {
      emit =
        (fun ev ->
          Buffer.add_string buf (Event.to_json_line ev);
          Buffer.add_char buf '\n');
      close = (fun () -> ());
    },
    fun () -> Buffer.contents buf )

let tee a b =
  {
    emit =
      (fun ev ->
        a.emit ev;
        b.emit ev);
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

(* {1 Flight recorder}

   A fixed-capacity ring of the most recent stamped events. Emission is
   one array store and a counter bump — no serialization, no I/O — so it
   can stay attached even when file tracing is off. JSON is paid only
   when a post-mortem is actually dumped. *)

type ring = {
  ring_events : Event.stamped array;
  ring_capacity : int;
  mutable ring_total : int;
}

let ring capacity =
  if capacity <= 0 then invalid_arg "Trace.ring: capacity must be positive";
  {
    ring_events =
      Array.make capacity { Event.t_ns = 0; exec = 0; ev = Event.Cache_miss };
    ring_capacity = capacity;
    ring_total = 0;
  }

let ring_sink r =
  {
    emit =
      (fun ev ->
        r.ring_events.(r.ring_total mod r.ring_capacity) <- ev;
        r.ring_total <- r.ring_total + 1);
    close = (fun () -> ());
  }

let ring_total r = r.ring_total
let ring_capacity r = r.ring_capacity

let ring_events r =
  let n = min r.ring_total r.ring_capacity in
  let start = r.ring_total - n in
  List.init n (fun i -> r.ring_events.((start + i) mod r.ring_capacity))

let dump_ring r path =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (Event.to_json_line ev);
      Buffer.add_char buf '\n')
    (ring_events r);
  Pdf_util.Atomic_file.write_string path (Buffer.contents buf)

(* {1 Chrome trace_event sink}

   Writes the JSON-array flavour of the trace_event format, loadable in
   chrome://tracing and Perfetto. Executions become complete ("X")
   spans, valid inputs instant events, coverage and queue depth counter
   tracks; high-frequency queue push/pop events are folded into the
   depth counter rather than emitted individually. *)

let chrome oc =
  let first = ref true in
  let entry fields =
    if !first then first := false else output_string oc ",\n";
    output_string oc (Json.flat_to_string fields)
  in
  let us ns = float_of_int ns /. 1e3 in
  let open Json in
  output_string oc "[\n";
  let base = [ ("pid", I 1); ("tid", I 1) ] in
  let emit (s : Event.stamped) =
    match s.ev with
    | Event.Run_meta m ->
      entry
        ([
           ("name", S "process_name");
           ("ph", S "M");
           ("arg_name", S (Printf.sprintf "pfuzzer %s seed %d" m.subject m.seed));
         ]
        @ base)
    | Event.Cell c ->
      entry
        ([
           ("name", S "cell");
           ("ph", S "i");
           ("ts", F (us s.t_ns));
           ("s", S "g");
           ("tool", S c.tool);
           ("subject", S c.subject);
           ("seed", I c.seed);
         ]
        @ base)
    | Event.Exec_done e ->
      entry
        ([
           ("name", S "exec");
           ("ph", S "X");
           ("ts", F (us (s.t_ns - e.dur_ns)));
           ("dur", F (us e.dur_ns));
           ("n", I s.exec);
           ("verdict", S e.verdict);
           ("cached", B e.cached);
           ("valid", B e.valid);
         ]
        @ base);
      entry
        ([
           ("name", S "coverage");
           ("ph", S "C");
           ("ts", F (us s.t_ns));
           ("branches", I e.cov);
         ]
        @ base)
    | Event.Valid v ->
      entry
        ([
           ("name", S "valid");
           ("ph", S "i");
           ("ts", F (us s.t_ns));
           ("s", S "g");
           ("input", S v.input);
           ("count", I v.count);
         ]
        @ base)
    | Event.Queue_push { depth; _ } | Event.Queue_pop { depth; _ } ->
      entry
        ([
           ("name", S "queue_depth");
           ("ph", S "C");
           ("ts", F (us s.t_ns));
           ("depth", I depth);
         ]
        @ base)
    | Event.Phases p ->
      let phase_names = List.map Phase.name Phase.all in
      List.iter
        (fun (name, ns) ->
          if List.mem name phase_names then
            entry
              [
                ("name", S ("phase:" ^ name));
                ("ph", S "X");
                ("ts", F 0.0);
                ("dur", F (us ns));
                ("pid", I 1);
                ("tid", I 2);
              ])
        p.spans;
      ignore p.wall_ns
    | _ -> ()
  in
  { emit; close = (fun () -> output_string oc "\n]\n"; flush oc) }

(* {1 Reading and normalizing} *)

let read_channel ic =
  let rec go acc lineno =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | "" -> go acc (lineno + 1)
    | line ->
      (match Event.of_json_line line with
       | ev -> go (ev :: acc) (lineno + 1)
       | exception Json.Malformed m ->
         failwith (Printf.sprintf "trace line %d: %s" lineno m))
  in
  go [] 1

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)

(* Zero every wall-clock-dependent field of one JSONL line, leaving the
   structural content: the jobs:1 ≡ jobs:N merged-trace determinism
   check compares normalized lines. Non-JSON lines pass through. *)
let is_timing_key k =
  k = "t" || k = "execs_per_sec"
  || (String.length k > 3 && String.sub k (String.length k - 3) 3 = "_ns")

let normalize_line line =
  match Json.parse_flat line with
  | exception Json.Malformed _ -> line
  | fields ->
    Json.flat_to_string
      (List.map
         (fun (k, v) ->
           if is_timing_key k then
             (k, match v with Json.F _ -> Json.F 0.0 | _ -> Json.I 0)
           else (k, v))
         fields)

let normalize s =
  String.split_on_char '\n' s |> List.map normalize_line |> String.concat "\n"
