(** The parser-directed fuzzer: Algorithm 1 of the paper.

    Starting from one random character, the fuzzer alternates two
    executions per iteration — the candidate input itself and the
    candidate extended by one random character — and, whenever a run is
    rejected, enqueues one new candidate per comparison made against the
    last compared input position, splicing in the character(s) the parser
    expected there. Valid inputs (accepted {e and} covering new branches)
    are reported, extend the valid-branch set, and trigger a full
    re-ranking of the queue. *)

type engine = Interpreted | Compiled
(** The execution tier for subject runs. [Compiled] routes cold
    executions through the subject's staged recognizer in a reusable
    {!Pdf_instr.Runner.arena} — a pure performance knob: the staged
    recognizer makes exactly the observations its interpreted twin
    makes, so results are bit-identical between engines ([pfuzzer check]
    enforces this). The request degrades silently to [Interpreted] for
    subjects without a staged recognizer. *)

val engine_to_string : engine -> string
val engine_of_string : string -> engine option

type config = {
  seed : int;  (** RNG seed; equal seeds give equal runs *)
  max_executions : int;  (** budget in subject executions *)
  max_input_len : int;  (** candidates longer than this are discarded *)
  heuristic : Heuristic.variant;
  queue_bound : int;  (** queue is truncated to this many entries *)
  dedupe : bool;  (** drop candidates whose input was already queued *)
  incremental : bool;
      (** resume children from their parent's cached parse state instead
          of re-parsing the shared prefix (subjects with a machine-form
          parser only; observable results are bit-identical either way) *)
  engine : engine;
  batch : int;
      (** candidates drained per main-loop batch; checkpoint
          opportunities occur only at batch boundaries. Results are
          identical for every batch size (min 1). *)
}

val default_config : config
(** seed 1, 2000 executions, inputs up to 64 characters, {!Heuristic.Prose},
    queue bound 50_000, dedupe on, incremental on, engine [Compiled],
    batch 16. *)

type cache_stats = {
  hits : int;  (** executions that resumed from a cached suspension *)
  misses : int;  (** cache consultations that found no entry *)
  evictions : int;
  chars_saved : int;
      (** total prefix characters whose re-parsing hits avoided *)
  rescues : int;
      (** cached resumes that crashed (corrupt or genuinely crashing
          snapshot) and were recovered by invalidating the entry and
          re-executing cold *)
}

val no_cache_stats : cache_stats
(** All-zero stats, reported when the cache was not in play. *)

type crash = {
  exn : string;  (** exception constructor name *)
  site : int;  (** crash-site hash; see {!Pdf_instr.Runner.crash} *)
  detail : string;  (** printed form of the first witnessed exception *)
  input : string;  (** first input that triggered this crash identity *)
  first_at : int;  (** execution count at the first witness *)
  count : int;  (** executions that crashed with this identity *)
}
(** One deduplicated crash-corpus entry. Identities are [(exn, site)]
    pairs; at most 256 distinct identities are retained (further fresh
    identities still count towards [crash_total]). *)

type result = {
  valid_inputs : string list;  (** in discovery order *)
  valid_coverage : Pdf_instr.Coverage.t;
      (** union of the full coverage of all valid inputs (the paper's
          [vBr]) *)
  hits : Pdf_instr.Hits.t;
      (** global branch hit-counts: how many executions (of any verdict)
          reached each outcome. Deterministic for a fixed seed, and
          mergeable across distributed shards by pointwise sum *)
  engine : string;
      (** the execution tier that actually ran: "compiled" or
          "interpreted" (also when a [Compiled] request degraded) *)
  executions : int;  (** executions actually performed *)
  candidates_created : int;
  queue_peak : int;
  first_valid_at : int option;
      (** execution count when the first valid input appeared *)
  dedupe_resets : int;
      (** times the input-dedupe table hit its cap (4 × [queue_bound])
          and was generationally reset to bound memory *)
  path_resets : int;
      (** same, for the path-novelty count table *)
  cache : cache_stats;
      (** prefix-snapshot cache accounting; all zero when incremental
          execution was off or the subject has no machine-form parser *)
  crashes : crash list;
      (** deduplicated crash corpus in discovery order; empty for a
          well-behaved subject *)
  crash_total : int;  (** executions that ended in a [Crash] verdict *)
  hangs : int;  (** executions that ended in a [Hang] verdict *)
  wall_clock_s : float;  (** wall-clock duration of the whole run *)
  execs_per_sec : float;
      (** [executions /. wall_clock_s]; 0 when the run took no
          measurable time *)
}

type queue_event =
  | Pushed of float * string  (** candidate enqueued with this priority *)
  | Popped of float * string  (** candidate dequeued for execution *)
  | Reranked of (float * string) list
      (** queue re-prioritised after a valid input; the snapshot lists
          the pending entries in insertion order with new priorities *)
  | Truncated of (float * string) list
      (** queue truncated to its bound; snapshot as in [Reranked] *)

(** {1 Checkpoints}

    A checkpoint captures the campaign's deterministic state at a
    loop-top instant: configuration, RNG state, the candidate queue (in
    insertion order) plus the candidate about to execute, the
    valid-branch set, the dedupe/path tables, all counters, and the
    crash corpus. The prefix-snapshot cache is excluded — resuming with
    a cold cache is safe because incremental execution is bit-identical
    to full execution. On disk a checkpoint is
    [magic "pfckpt" | version byte | MD5 of payload | payload], written
    atomically; decoding rejects wrong magic, wrong version, and any
    payload that fails its digest, each with a one-line error. *)

module Checkpoint : sig
  type t

  val version : int
  (** Format version this build reads and writes (currently 3; v2 added
      the [engine] and [batch] config fields, v3 the global branch
      hit-counts). *)

  val subject_name : t -> string
  val executions : t -> int
  val config : t -> config

  val partial_result : t -> result
  (** The campaign-so-far captured by this checkpoint, as a result
      record: valid inputs in discovery order, valid coverage, branch
      hit-counts, crash corpus and all deterministic counters at the
      checkpoint instant. Cache accounting and wall-clock fields are
      zero (checkpoints deliberately exclude them), and [engine] is the
      {e requested} tier from the config — whether the request degraded
      is only known to the live campaign. Distributed workers serialize
      this as their periodic sync frames. *)

  val encode : t -> string

  val decode : string -> (t, string) Stdlib.result
  (** Inverse of {!encode}; [Error] carries a one-line human-readable
      reason. The error precedence is explicit and stable: a too-short
      file, then bad magic, then a {b payload digest mismatch}, then a
      {b version mismatch}, then an unreadable payload. The digest is
      verified {e before} the version byte is interpreted (the header
      layout is frozen across versions, so this is well-defined):
      corruption is never misreported as version skew even when the rot
      hits the version byte, and a clean checkpoint from another build
      reports a genuine version mismatch. *)

  val save : string -> t -> unit
  (** Atomic write-to-temp-then-rename; a kill mid-save leaves the
      previous checkpoint intact. *)

  val load : string -> (t, string) Stdlib.result
end

val fuzz :
  ?on_valid:(string -> unit) ->
  ?on_queue_event:(queue_event -> unit) ->
  ?on_execution:(Pdf_instr.Runner.run -> unit) ->
  ?obs:Pdf_obs.Observer.t ->
  ?faults:Pdf_fault.Fault.plan ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Checkpoint.t -> unit) ->
  ?initial_inputs:string list ->
  config ->
  Pdf_subjects.Subject.t ->
  result
(** Run the fuzzer against a subject until the execution budget is
    exhausted. [on_valid] is called on each valid input as it is found.
    [on_queue_event] observes every candidate-queue operation (snapshots
    are only taken when the observer is present) — the correctness
    harness replays them against a reference queue model to check
    priority monotonicity. [on_execution] observes every completed run in
    execution order — the incremental≡full equivalence invariant compares
    these streams. [obs] attaches a telemetry observer: structured trace
    events, per-phase timing spans, periodic status snapshots — when
    absent (the default) the telemetry paths cost one branch and allocate
    nothing. [faults] installs a deterministic chaos plan: planned
    execution indices are degraded (crash, hang, slow-down, cache
    corruption) instead of executed normally, and the campaign must keep
    going. [on_checkpoint] is called with a fresh {!Checkpoint.t} every
    [checkpoint_every] (default 1000) executions, at a loop-top instant;
    what to do with it (typically {!Checkpoint.save}, or serializing
    {!Checkpoint.partial_result} as a distributed sync frame) is the
    caller's choice.

    Exception contract: subject exceptions never escape [fuzz] — they
    are contained as [Crash] verdicts by {!Pdf_instr.Runner} and triaged
    into [result.crashes]. This holds identically when [fuzz] runs
    inside a distributed worker process ([Pdf_eval.Dist]); the death of
    the worker process itself is outside this function's contract and is
    recovered by the coordinator replaying the shard.

    [initial_inputs] seeds the candidate queue — the §6.2
    hand-over point when pFuzzer continues from a lexical fuzzer's
    corpus. *)

val resume_from :
  ?on_valid:(string -> unit) ->
  ?on_queue_event:(queue_event -> unit) ->
  ?on_execution:(Pdf_instr.Runner.run -> unit) ->
  ?obs:Pdf_obs.Observer.t ->
  ?faults:Pdf_fault.Fault.plan ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Checkpoint.t -> unit) ->
  Checkpoint.t ->
  Pdf_subjects.Subject.t ->
  result
(** Continue a checkpointed campaign to its budget. The subject must be
    the one named in the checkpoint ([Invalid_argument] otherwise); the
    config — including seed and budget — comes from the checkpoint. A
    resumed run's result equals the uninterrupted run's result in every
    field except cache accounting and wall-clock timing. Queue-event
    streams start from the restored queue, so [on_queue_event] replay
    models must be primed with the checkpoint's queue contents. *)
