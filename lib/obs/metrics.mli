(** A small counter/gauge/histogram registry.

    Handles are cheap mutable cells resolved once by name; the hot path
    touches the cell, never the table. Histograms are
    {!Pdf_util.Stats.Histogram}s, so registry snapshots can be merged
    across shards associatively. *)

type t

val create : unit -> t

type counter

val counter : t -> string -> counter
(** Resolve (registering on first use). Raises [Invalid_argument] if the
    name is already registered as a different instrument type. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> string -> Pdf_util.Stats.Histogram.t

type snapshot = {
  origin : int;
      (** which registry produced this: a shard id in distributed
          campaigns, [0] for a local run, [-1] for fleet totals *)
  clock : int;
      (** logical stamp — the execution count (or frame sequence) when
          the snapshot was taken; drives latest-wins gauge merging *)
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Pdf_util.Stats.Histogram.t) list;
}

val snapshot : ?origin:int -> ?clock:int -> t -> snapshot
(** Name-sorted, deterministic ordering. Defaults: origin 0, clock 0. *)

val empty_snapshot : snapshot

(** Coordinator-side fold of fleet snapshots, mirroring [Dist.Merge]:
    keyed per origin, latest clock wins (ties broken by a total
    structural order). [join] is commutative, associative and idempotent
    — duplicate and out-of-order snapshot delivery are invisible. *)
module Fleet : sig
  type nonrec t

  val empty : t
  val add : t -> snapshot -> t
  val join : t -> t -> t
  val equal : t -> t -> bool

  val snapshots : t -> snapshot list
  (** Current per-origin snapshots, in origin order. *)

  val totals : t -> snapshot
  (** Cross-origin aggregate: counters sum, gauges take the value from
      the latest snapshot by [(clock, origin)], histograms merge. The
      result has [origin = -1] and the fleet's maximum clock. *)
end
