(* The fuzzer's per-execution work, partitioned for the wall-clock
   breakdown. Anything not covered by a span shows up as "other" in the
   trace report (loop bookkeeping, observer overhead itself). *)

type t = Exec | Cache | Score | Queue | Gen

let all = [ Exec; Cache; Score; Queue; Gen ]
let count = 5
let index = function Exec -> 0 | Cache -> 1 | Score -> 2 | Queue -> 3 | Gen -> 4

let name = function
  | Exec -> "exec"  (* subject execution: parse of the candidate input *)
  | Cache -> "cache"  (* prefix-snapshot lookup, store and accounting *)
  | Score -> "score"  (* heuristic scoring, including queue reranks *)
  | Queue -> "queue"  (* priority-queue push/pop/truncate maintenance *)
  | Gen -> "gen"  (* candidate generation: dedupe, child construction *)
