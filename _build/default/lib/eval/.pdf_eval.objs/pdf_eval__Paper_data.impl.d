lib/eval/paper_data.ml: Tool
