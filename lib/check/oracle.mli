(** Reference oracles: small, obviously-correct recognizers for the seed
    subjects' languages, written independently of the instrumented
    parsers in {!Pdf_subjects}.

    An oracle decides the same language as its subject but shares no code
    with it: each is a direct recursive-descent recognizer over a plain
    [string], derived from the subject's documented grammar. The
    differential driver fuzzes subject against oracle; any disagreement
    is either a subject bug or an oracle bug, and both are worth
    knowing about. *)

type t = {
  name : string;  (** matching {!Pdf_subjects.Subject.t.name} *)
  accepts : string -> bool;
  grammar : Pdf_tables.Cfg.t;
      (** character-level grammar of (a diverse subset of) the language,
          the known-valid producer's sampling source *)
}

val paren : t
val expr : t
val ini : t
val csv : t
val json : t

val all : t list
(** The five seed-subject oracles, in catalog order. *)

val find : string -> t option
