module Charset = Pdf_util.Charset

type t = {
  nullable : (string, bool) Hashtbl.t;
  first : (string, Charset.t) Hashtbl.t;
  follow : (string, Charset.t) Hashtbl.t;
  follow_eof : (string, bool) Hashtbl.t;
}

let get_bool tbl key = Option.value ~default:false (Hashtbl.find_opt tbl key)
let get_set tbl key = Option.value ~default:Charset.empty (Hashtbl.find_opt tbl key)

let nullable t = get_bool t.nullable
let first t = get_set t.first
let follow t = get_set t.follow
let follow_eof t = get_bool t.follow_eof

let first_of_rhs t rhs =
  let rec go acc = function
    | [] -> (acc, true)
    | Cfg.T c :: _ -> (Charset.add c acc, false)
    | Cfg.N name :: rest ->
      let acc = Charset.union acc (first t name) in
      if nullable t name then go acc rest else (acc, false)
  in
  go Charset.empty rhs

let analyze grammar =
  let t =
    {
      nullable = Hashtbl.create 16;
      first = Hashtbl.create 16;
      follow = Hashtbl.create 16;
      follow_eof = Hashtbl.create 16;
    }
  in
  let changed = ref true in
  (* Nullability fixpoint. *)
  while !changed do
    changed := false;
    List.iter
      (fun (p : Cfg.production) ->
        let rhs_nullable =
          List.for_all
            (function Cfg.T _ -> false | Cfg.N name -> get_bool t.nullable name)
            p.rhs
        in
        if rhs_nullable && not (get_bool t.nullable p.lhs) then begin
          Hashtbl.replace t.nullable p.lhs true;
          changed := true
        end)
      (Cfg.productions grammar)
  done;
  (* FIRST fixpoint. *)
  changed := true;
  while !changed do
    changed := false;
    List.iter
      (fun (p : Cfg.production) ->
        let rhs_first, _ = first_of_rhs t p.rhs in
        let current = get_set t.first p.lhs in
        let updated = Charset.union current rhs_first in
        if not (Charset.equal current updated) then begin
          Hashtbl.replace t.first p.lhs updated;
          changed := true
        end)
      (Cfg.productions grammar)
  done;
  (* FOLLOW fixpoint: start symbol can be followed by EOF. *)
  Hashtbl.replace t.follow_eof (Cfg.start grammar) true;
  changed := true;
  while !changed do
    changed := false;
    let add_follow name set eof =
      let current = get_set t.follow name in
      let updated = Charset.union current set in
      if not (Charset.equal current updated) then begin
        Hashtbl.replace t.follow name updated;
        changed := true
      end;
      if eof && not (get_bool t.follow_eof name) then begin
        Hashtbl.replace t.follow_eof name true;
        changed := true
      end
    in
    List.iter
      (fun (p : Cfg.production) ->
        let rec walk = function
          | [] -> ()
          | Cfg.T _ :: rest -> walk rest
          | Cfg.N name :: rest ->
            let rest_first, rest_nullable = first_of_rhs t rest in
            add_follow name rest_first false;
            if rest_nullable then
              add_follow name (get_set t.follow p.lhs) (get_bool t.follow_eof p.lhs);
            walk rest
        in
        walk p.rhs)
      (Cfg.productions grammar)
  done;
  t
