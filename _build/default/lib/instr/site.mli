(** Instrumentation sites.

    A site is a static program location in a subject parser: either a
    basic {i block} (one coverage outcome: reached) or a {i branch} (two
    outcomes: taken / not taken). Subjects declare all their sites against
    a per-subject registry at module initialisation time, which gives the
    evaluation a static denominator for branch-coverage percentages — the
    role gcov's block/branch counts play in the paper. *)

type kind = Block | Branch

type t

type registry

val create_registry : string -> registry
(** [create_registry subject_name] makes an empty registry. *)

val block : registry -> string -> t
(** Declare a block site. Names must be unique within the registry. *)

val branch : registry -> string -> t
(** Declare a branch site. *)

val kind : t -> kind
val name : t -> string
val id : t -> int
(** Dense ids, unique within the registry. *)

val outcome : t -> bool -> int
(** [outcome site taken] is the dense outcome identifier recorded in
    coverage sets and traces. For a block site, [taken] is ignored. *)

val registry_name : registry -> string
val site_count : registry -> int
val total_outcomes : registry -> int
(** Blocks contribute 1, branches 2. The denominator of coverage %. *)

val sites : registry -> t list
(** All declared sites, in declaration order. *)

val outcome_name : registry -> int -> string
(** Human-readable description of an outcome id, for reports. *)
