(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, runs the ablation studies from DESIGN.md, and
   measures instrumentation overhead with Bechamel.

     dune exec bench/main.exe                 # everything, default budget
     dune exec bench/main.exe -- --quick      # small budgets (seconds)
     dune exec bench/main.exe -- figure-2     # one section
     dune exec bench/main.exe -- --budget 10000000 --seeds 1,2,3
     dune exec bench/main.exe -- micro --quick --out micro.json

   Sections: table-1 table-2 table-3 table-4 figure-2 figure-3 headline
             ablation-dyck ablation-heuristic ablation-grammar
             ablation-tables ablation-token-taints ablation-semantics
             pipeline micro incremental compiled obs dist loop

   --out FILE dumps the machine-readable results of the sections that
   produce them (micro, incremental, obs) as JSON — the CI bench smoke
   step uploads this as an artifact. --trace FILE writes a merged JSONL
   telemetry trace of the evaluation grid (the figure-2/3/headline
   sections), readable with `pfuzzer_cli trace-report'. *)

module Render = Pdf_util.Render
module Rng = Pdf_util.Rng
module Coverage = Pdf_instr.Coverage
module Subject = Pdf_subjects.Subject
module Catalog = Pdf_subjects.Catalog
module Pfuzzer = Pdf_core.Pfuzzer
module Heuristic = Pdf_core.Heuristic
module Experiment = Pdf_eval.Experiment
module Report = Pdf_eval.Report
module Token_report = Pdf_eval.Token_report

let ppf = Format.std_formatter

type options = {
  budget : int;
  seeds : int list;
  jobs : int;
  sections : string list;
  quick : bool;
  out : string option;
  trace : string option;
  minor_heap : int;  (* words; 0 keeps the runtime default *)
}

let valid_sections =
  [
    "table-1"; "table-2"; "table-3"; "table-4"; "figure-2"; "figure-3";
    "headline"; "ablation-dyck"; "ablation-heuristic"; "ablation-grammar";
    "ablation-tables"; "ablation-token-taints"; "ablation-semantics";
    "pipeline"; "micro"; "incremental"; "compiled"; "obs"; "monitor"; "dist";
    "loop";
  ]

let usage_line =
  "usage: main.exe [--quick] [--budget N] [--seeds S1,S2,...] [--jobs N|auto] \
   [--out FILE] [--trace FILE] [--minor-heap WORDS] [SECTION...]\n\
   sections: " ^ String.concat " " valid_sections

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("bench: " ^ m);
      prerr_endline usage_line;
      exit 2)
    fmt

let int_arg name v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> die "invalid %s %S, expected an integer" name v

let parse_args () =
  let budget = ref 4_000_000 in
  let seeds = ref [ 1 ] in
  let jobs = ref 1 in
  let sections = ref [] in
  let quick = ref false in
  let out = ref None in
  let trace = ref None in
  let minor_heap = ref 0 in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      budget := 400_000;
      quick := true;
      go rest
    | "--budget" :: v :: rest ->
      budget := int_arg "budget" v;
      if !budget <= 0 then die "budget must be positive, got %d" !budget;
      go rest
    | "--seeds" :: v :: rest ->
      seeds := List.map (int_arg "seed") (String.split_on_char ',' v);
      if !seeds = [] then die "empty seed list";
      go rest
    | "--jobs" :: v :: rest ->
      jobs :=
        (if v = "auto" then Pdf_eval.Parallel.default_jobs ()
         else int_arg "jobs" v);
      if !jobs < 0 then die "jobs must be non-negative, got %d" !jobs;
      if !jobs = 0 then jobs := Pdf_eval.Parallel.default_jobs ();
      go rest
    | "--out" :: v :: rest ->
      out := Some v;
      go rest
    | "--trace" :: v :: rest ->
      trace := Some v;
      go rest
    | "--minor-heap" :: v :: rest ->
      minor_heap := int_arg "minor-heap" v;
      if !minor_heap < 0 then
        die "minor-heap must be non-negative, got %d" !minor_heap;
      go rest
    | [ ("--budget" | "--seeds" | "--jobs" | "--out" | "--trace" | "--minor-heap") ] ->
      die "missing value for the last option"
    | opt :: _ when String.length opt > 0 && opt.[0] = '-' ->
      die "unknown option %s" opt
    | section :: rest ->
      if not (List.mem section valid_sections) then
        die "unknown section %S" section;
      sections := section :: !sections;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  {
    budget = !budget;
    seeds = !seeds;
    jobs = !jobs;
    sections = List.rev !sections;
    quick = !quick;
    out = !out;
    trace = !trace;
    minor_heap = !minor_heap;
  }

(* Machine-readable output: sections that measure something append a JSON
   fragment here; --out writes them as one object, in section order. *)
let json_sections : (string * string) list ref = ref []
let add_json name fragment = json_sections := (name, fragment) :: !json_sections

let write_json options =
  match options.out with
  | None -> ()
  | Some file ->
    Pdf_util.Atomic_file.with_out file (fun oc ->
        Printf.fprintf oc "{\n%s\n}\n"
          (String.concat ",\n"
             (List.map
                (fun (k, v) -> Printf.sprintf "  %S: %s" k v)
                (List.rev !json_sections))));
    Format.fprintf ppf "@.Wrote JSON results to %s@." file

let wants options section =
  options.sections = [] || List.mem section options.sections

(* {1 Static tables} *)

let table_1 () =
  Render.section ppf "table-1: evaluation subjects (paper Table 1)";
  Report.table_1 ppf Catalog.evaluation

let table_tokens name section =
  Render.section ppf (Printf.sprintf "%s: token inventory" section);
  Report.token_inventory ppf (Catalog.find name)

(* {1 The main experiment: Figures 2 and 3, headline numbers} *)

let experiment_result = ref None

let get_experiment options =
  match !experiment_result with
  | Some e -> e
  | None ->
    let config =
      { Experiment.budget_units = options.budget; seeds = options.seeds; verbose = true }
    in
    Format.fprintf ppf
      "@.Running the evaluation grid: budget %d units per (tool, subject),@.\
       seeds %s, %d job(s); AFL pays 1 unit per execution, pFuzzer/KLEE pay 100.@."
      options.budget
      (String.concat "," (List.map string_of_int options.seeds))
      options.jobs;
    let run_grid trace_oc =
      Experiment.run ~jobs:options.jobs ?trace:trace_oc config Catalog.evaluation
    in
    let e =
      match options.trace with
      | None -> run_grid None
      | Some path ->
        let e =
          Pdf_util.Atomic_file.with_out path (fun oc -> run_grid (Some oc))
        in
        Format.fprintf ppf "@.Wrote evaluation-grid trace to %s@." path;
        e
    in
    experiment_result := Some e;
    e

let figure_2 options =
  Render.section ppf "figure-2: branch coverage per subject and tool";
  Report.figure_2 ppf (get_experiment options)

let figure_3 options =
  Render.section ppf "figure-3: tokens generated, by token length";
  Report.figure_3 ppf (get_experiment options)

let headline options =
  Render.section ppf "headline: Section 5.3 token shares";
  Report.headline ppf (get_experiment options)

(* {1 Ablation A1: search strategies on the Dyck language}

   Section 3 argues that neither pure depth-first nor pure breadth-first
   search closes bracket prefixes effectively, motivating the combined
   heuristic. *)

let nesting_depth input =
  let depth = ref 0 and best = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' | '[' | '{' | '<' ->
        incr depth;
        if !depth > !best then best := !depth
      | ')' | ']' | '}' | '>' -> decr depth
      | _ -> ())
    input;
  !best

let ablation_dyck options =
  Render.section ppf "ablation-dyck: search strategy on balanced brackets (Section 3)";
  let subject = Catalog.find "paren" in
  let execs = max 1 (options.budget / 100) in
  let rows =
    List.map
      (fun (name, heuristic) ->
        let result =
          Pfuzzer.fuzz
            { Pfuzzer.default_config with heuristic; max_executions = execs }
            subject
        in
        let max_nest =
          List.fold_left (fun acc s -> max acc (nesting_depth s)) 0 result.valid_inputs
        in
        [
          name;
          string_of_int (List.length result.valid_inputs);
          string_of_int max_nest;
          Printf.sprintf "%.1f" (Coverage.percent result.valid_coverage subject.registry);
          (match result.first_valid_at with Some n -> string_of_int n | None -> "-");
        ])
      [
        ("pFuzzer heuristic", Heuristic.Prose);
        ("depth-first", Heuristic.Dfs);
        ("breadth-first", Heuristic.Bfs);
        ("coverage only", Heuristic.Coverage_only);
      ]
  in
  Render.table ppf
    ~title:(Printf.sprintf "paren subject, %d executions per strategy" execs)
    ~header:[ "strategy"; "valid inputs"; "max nesting"; "coverage %"; "first valid at" ]
    rows

(* {1 Ablation A2: heuristic term ablation on tinyC}

   Including the paper's own pseudo-code/prose discrepancy on the sign
   of the numParents term (Algorithm 1, line 50). *)

let ablation_heuristic options =
  Render.section ppf "ablation-heuristic: Algorithm 1 heuristic variants on tinyC";
  let subject = Catalog.find "tinyc" in
  let execs = max 1 (options.budget / 40) in
  let rows =
    List.map
      (fun (name, heuristic) ->
        let result =
          Pfuzzer.fuzz
            { Pfuzzer.default_config with heuristic; max_executions = execs }
            subject
        in
        let tags = Token_report.found_tags subject result.valid_inputs in
        [
          name;
          string_of_int (List.length tags);
          Printf.sprintf "%.1f" (Coverage.percent result.valid_coverage subject.registry);
          string_of_int (List.length result.valid_inputs);
        ])
      [
        ("prose (default)", Heuristic.Prose);
        ("paper formula (+parents)", Heuristic.Paper_formula);
        ("no stack term", Heuristic.No_stack);
        ("no length term", Heuristic.No_length);
        ("no replacement bonus", Heuristic.No_replacement);
        ("coverage only", Heuristic.Coverage_only);
      ]
  in
  Render.table ppf
    ~title:(Printf.sprintf "tinyc subject, %d executions per variant" execs)
    ~header:[ "variant"; "tokens found"; "coverage %"; "valid inputs" ]
    rows

(* {1 Ablation A3: grammar mining (Section 7.4)} *)

let ablation_grammar options =
  Render.section ppf "ablation-grammar: pFuzzer vs mined-grammar generation (Section 7.4)";
  let subject = Catalog.find "json" in
  let execs = max 1 (options.budget / 100) in
  let result =
    Pfuzzer.fuzz { Pfuzzer.default_config with max_executions = execs } subject
  in
  let depth_of inputs =
    List.fold_left
      (fun acc s -> max acc (Subject.run subject s).Pdf_instr.Runner.max_depth)
      0 inputs
  in
  let grammar = Pdf_grammar.Miner.mine subject result.valid_inputs in
  let rng = Rng.make 17 in
  let sentences = Pdf_grammar.Generator.generate_many rng ~max_depth:16 500 grammar in
  let accepted = List.filter (Subject.accepts subject) sentences in
  let rows =
    [
      [
        "pFuzzer alone";
        string_of_int (List.length result.valid_inputs);
        string_of_int (depth_of result.valid_inputs);
        Printf.sprintf "%d execs" result.executions;
      ];
      [
        "mined grammar";
        string_of_int (List.length accepted);
        string_of_int (depth_of accepted);
        Printf.sprintf "%d/%d sentences accepted" (List.length accepted)
          (List.length sentences);
      ];
    ]
  in
  Render.table ppf
    ~title:
      (Printf.sprintf
         "json subject: grammar mined from %d pFuzzer inputs (%d productions)"
         (List.length result.valid_inputs)
         (Pdf_grammar.Grammar.production_count grammar))
    ~header:[ "generator"; "valid inputs"; "max recursion depth"; "notes" ]
    rows

(* {1 Ablation A4: table-driven parsers (Section 7.1)}

   The paper predicts code coverage will not guide the search on a
   table-driven parser "out of the box" and proposes coverage of table
   elements instead. Both driver configurations parse exactly the same
   language as the recursive-descent expr subject. *)

let ablation_tables options =
  Render.section ppf "ablation-tables: table-driven parsing (Section 7.1)";
  let execs = max 1 (options.budget / 100) in
  let rows =
    List.map
      (fun (label, subject) ->
        let result =
          Pfuzzer.fuzz { Pfuzzer.default_config with max_executions = execs } subject
        in
        [
          label;
          string_of_int (List.length result.valid_inputs);
          Printf.sprintf "%.1f"
            (Coverage.percent result.valid_coverage subject.Subject.registry);
          (match result.first_valid_at with Some n -> string_of_int n | None -> "-");
        ])
      [
        ("recursive descent (paper setting)", Catalog.find "expr");
        ("table-driven, cells + diagnostics", Pdf_tables.Grammars.table_expr);
        ("table-driven, out of the box", Pdf_tables.Grammars.table_expr_naive);
        ("table-driven LL(1) JSON", Pdf_tables.Grammars.table_json);
      ]
  in
  Render.table ppf
    ~title:
      (Printf.sprintf
         "pFuzzer on three parsers for the same language, %d executions each" execs)
    ~header:[ "parser"; "valid inputs"; "coverage %"; "first valid at" ]
    rows

(* {1 Ablation A5: token-taint recovery (Section 7.2)}

   Tokenization breaks the taint flow: the parser's "expected token"
   checks carry no comparison the fuzzer can satisfy (why the paper's
   pFuzzer misses do/else/while on tinyC). The tinyc-tt variant re-attaches
   expectations to the token's input position, as §7.2 proposes. *)

let ablation_token_taints options =
  Render.section ppf "ablation-token-taints: §7.2 taint recovery through the tokenizer";
  let execs = max 1 (options.budget / 40) in
  let rows =
    List.map
      (fun name ->
        let subject = Catalog.find name in
        let result =
          Pfuzzer.fuzz { Pfuzzer.default_config with max_executions = execs } subject
        in
        let tags = Token_report.found_tags subject result.valid_inputs in
        [
          name;
          string_of_int (List.length tags);
          (if List.mem "while" tags then "yes" else "no");
          Printf.sprintf "%.1f" (Coverage.percent result.valid_coverage subject.registry);
        ])
      [ "tinyc"; "tinyc-tt" ]
  in
  Render.table ppf
    ~title:(Printf.sprintf "pFuzzer, %d executions per variant" execs)
    ~header:[ "subject"; "tokens found"; "finds `while'"; "coverage %" ]
    rows

(* {1 Ablation A6: semantic restrictions (Section 7.3)}

   pFuzzer assumes that a character accepted by the parser is correct, so
   its outputs pass the parser but routinely fail delayed context-sensitive
   checks. We fuzz the plain tinyC, then replay its valid inputs against
   the variant whose interpreter rejects use-before-assignment. *)

let ablation_semantics options =
  Render.section ppf "ablation-semantics: §7.3 delayed semantic checks";
  let plain = Catalog.find "tinyc" and sem = Catalog.find "tinyc-sem" in
  let execs = max 1 (options.budget / 40) in
  let result =
    Pfuzzer.fuzz { Pfuzzer.default_config with max_executions = execs } plain
  in
  let survivors = List.filter (Subject.accepts sem) result.valid_inputs in
  let total = List.length result.valid_inputs in
  Render.table ppf
    ~title:
      (Printf.sprintf "pFuzzer corpus from plain tinyC (%d executions)" execs)
    ~header:[ "measure"; "count" ]
    [
      [ "parser-valid inputs"; string_of_int total ];
      [ "also semantically valid"; string_of_int (List.length survivors) ];
      [
        "killed by use-before-assignment";
        string_of_int (total - List.length survivors);
      ];
    ];
  Format.fprintf ppf
    "Syntactically valid inputs failing the semantic check confirm the@.\
     paper's §7.3 limitation: the search has no notion of delayed constraints.@."

(* {1 The §6.2 pipeline: lexical -> syntactic -> symbolic} *)

let pipeline options =
  Render.section ppf "pipeline: AFL -> pFuzzer -> KLEE hand-over (Section 6.2)";
  List.iter
    (fun name ->
      let subject = Catalog.find name in
      let result =
        Pdf_eval.Pipeline.run ~budget_units:options.budget ~seed:1 subject
      in
      let rows =
        List.map
          (fun (s : Pdf_eval.Pipeline.stage_report) ->
            [
              Pdf_eval.Tool.display_name s.stage;
              string_of_int s.executions;
              string_of_int s.new_valid;
              Printf.sprintf "%.1f" s.coverage_after;
            ])
          result.stages
      in
      let tags = Token_report.found_tags subject result.valid_inputs in
      Render.table ppf
        ~title:
          (Printf.sprintf "%s: %d units total; final corpus %d inputs, %d tokens"
             name options.budget
             (List.length result.valid_inputs)
             (List.length tags))
        ~header:[ "stage"; "executions"; "new valid"; "cumulative coverage %" ]
        rows)
    [ "json"; "tinyc" ]

(* {1 Micro-benchmarks (Bechamel): instrumentation overhead (Section 4)} *)

let micro options =
  Render.section ppf "micro: instrumentation overhead and hot-path costs (Bechamel)";
  let open Bechamel in
  let json = Catalog.find "json" in
  let sample_input = {|{"key": [1, -2.5e3, true, false, null], "s": "txt"}|} in
  let tinyc = Catalog.find "tinyc" in
  let tinyc_input = "if(a<2)b=1;else while(0)c=c+1;" in
  let trace =
    (Subject.run ~track_comparisons:false ~track_trace:true json sample_input)
      .Pdf_instr.Runner.trace
  in
  let builder = Pdf_afl.Bitmap.builder () in
  let rng = Rng.make 1 in
  let tests =
    [
      Test.make ~name:"json/full-instrumentation"
        (Staged.stage (fun () -> ignore (Subject.run json sample_input)));
      Test.make ~name:"json/coverage-only"
        (Staged.stage (fun () ->
             ignore (Subject.run ~track_comparisons:false json sample_input)));
      Test.make ~name:"json/oracle-scanner"
        (Staged.stage (fun () -> ignore (json.tokenize sample_input)));
      Test.make ~name:"tinyc/full-instrumentation"
        (Staged.stage (fun () -> ignore (Subject.run tinyc tinyc_input)));
      Test.make ~name:"tinyc/coverage-only"
        (Staged.stage (fun () ->
             ignore (Subject.run ~track_comparisons:false tinyc tinyc_input)));
      Test.make ~name:"afl/bitmap-fold"
        (Staged.stage (fun () ->
             ignore (Pdf_afl.Bitmap.sparse_of_trace builder trace)));
      Test.make ~name:"afl/havoc"
        (Staged.stage (fun () -> ignore (Pdf_afl.Mutator.havoc rng sample_input)));
      Test.make ~name:"pqueue/push-pop-1k"
        (Staged.stage (fun () ->
             let q = Pdf_util.Pqueue.create () in
             for i = 1 to 1000 do
               Pdf_util.Pqueue.push q (float_of_int (i mod 97)) i
             done;
             while Pdf_util.Pqueue.pop q <> None do
               ()
             done));
    ]
  in
  let cfg =
    if options.quick then Benchmark.cfg ~limit:500 ~quota:(Time.second 0.1) ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |] in
  let results = Hashtbl.create 16 in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter (fun k v -> Hashtbl.replace results k v) analyzed)
    tests;
  let time_of name =
    match Hashtbl.find_opt results name with
    | None -> nan
    | Some o ->
      (match Analyze.OLS.estimates o with
       | Some (t :: _) -> t
       | Some [] | None -> nan)
  in
  let names =
    [
      "json/full-instrumentation"; "json/coverage-only"; "json/oracle-scanner";
      "tinyc/full-instrumentation"; "tinyc/coverage-only"; "afl/bitmap-fold";
      "afl/havoc"; "pqueue/push-pop-1k";
    ]
  in
  let rows =
    List.map
      (fun name ->
        let ns = time_of name in
        [ name; Printf.sprintf "%.0f" ns; Printf.sprintf "%.0f" (1e9 /. ns) ])
      names
  in
  Render.table ppf ~title:"hot-path costs (OLS estimate)"
    ~header:[ "benchmark"; "ns/run"; "execs/sec" ] rows;
  add_json "micro"
    (Printf.sprintf "[\n%s\n  ]"
       (String.concat ",\n"
          (List.map
             (fun name ->
               let ns = time_of name in
               Printf.sprintf
                 "    { \"name\": %S, \"ns_per_run\": %.0f, \"execs_per_sec\": %.0f }"
                 name ns (1e9 /. ns))
             names)));
  let full = time_of "json/full-instrumentation"
  and scanner = time_of "json/oracle-scanner" in
  Format.fprintf ppf
    "@.Instrumentation overhead vs a plain scanner: %.0fx (the paper reports@.\
     a ~100x slowdown for its LLVM taint instrumentation, Section 4).@."
    (full /. scanner)

(* {1 Incremental execution: prefix-snapshot resume vs full re-execution}

   The fuzzer's dominant execution is a one-character extension of an
   input it just ran. With the prefix-snapshot cache the child resumes
   from the parent's suspended parse and executes only the new suffix;
   this section measures that saving directly on deeply nested inputs
   (where the shared prefix — hence the saving — is largest) and reports
   the cache hit rate of a real fuzzing run.

   Noise discipline as in BENCH_hotpath.json: full and resumed
   executions are timed in interleaved rounds on the same boot, paired
   per round, and the median pairwise speedup is reported. *)

module Runner = Pdf_instr.Runner

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then nan
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let time_ns_per_run f iters =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  ((Unix.gettimeofday () -. t0) *. 1e9) /. float_of_int iters

let incremental options =
  Render.section ppf
    "incremental: prefix-snapshot resume vs full re-execution";
  let rounds = 6 in
  let iters = if options.quick then 400 else 4000 in
  let cases =
    List.concat_map
      (fun (name, opener, closer) ->
        List.map (fun depth -> (name, opener, closer, depth)) [ 16; 32; 64 ])
      [ ("json", '[', ']'); ("expr", '(', ')') ]
  in
  let measured =
    List.map
      (fun (name, opener, closer, depth) ->
        let subject = Catalog.find name in
        let machine =
          match subject.Subject.machine with
          | Some m -> m
          | None -> failwith (name ^ " has no machine-form parser")
        in
        (* The fuzzer's extension scenario: the parent ran, its
           EOF-position snapshot is cached, the child appends one
           character. *)
        let child =
          String.make depth opener ^ "1" ^ String.make depth closer
        in
        let parent = String.sub child 0 (String.length child - 1) in
        let _parent_run, journal = Subject.exec_journaled subject machine parent in
        let snap =
          match Runner.snapshot_at journal (String.length parent) with
          | Some s -> s
          | None -> failwith "parent run has no EOF-position snapshot"
        in
        (* Equivalence sanity before timing anything. *)
        let full_run, _ = Subject.exec_journaled subject machine child in
        let res_run, _ = Runner.resume snap child in
        if
          full_run.Runner.verdict <> res_run.Runner.verdict
          || full_run.Runner.comparisons <> res_run.Runner.comparisons
          || not (Coverage.equal full_run.Runner.coverage res_run.Runner.coverage)
        then failwith "resume diverged from full execution";
        let per_round =
          List.init rounds (fun _ ->
              let full_ns =
                time_ns_per_run
                  (fun () -> ignore (Subject.exec_journaled subject machine child))
                  iters
              in
              let resumed_ns =
                time_ns_per_run (fun () -> ignore (Runner.resume snap child)) iters
              in
              (full_ns, resumed_ns, full_ns /. resumed_ns))
        in
        let fulls = List.map (fun (f, _, _) -> f) per_round in
        let resumeds = List.map (fun (_, r, _) -> r) per_round in
        let speedups = List.map (fun (_, _, s) -> s) per_round in
        ( Printf.sprintf "%s/depth-%d" name depth,
          String.length child,
          median fulls,
          median resumeds,
          median speedups,
          List.fold_left max neg_infinity speedups ))
      cases
  in
  Render.table ppf
    ~title:
      (Printf.sprintf
         "one-character extension of a nested input (%d interleaved rounds, %d execs each)"
         rounds iters)
    ~header:
      [ "case"; "len"; "full ns"; "resumed ns"; "speedup (median)"; "best" ]
    (List.map
       (fun (case, len, full, resumed, sp_med, sp_best) ->
         [
           case;
           string_of_int len;
           Printf.sprintf "%.0f" full;
           Printf.sprintf "%.0f" resumed;
           Printf.sprintf "%.2fx" sp_med;
           Printf.sprintf "%.2fx" sp_best;
         ])
       measured);
  (* Cache accounting of a real fuzzing run: the hit rate tells how often
     the measured fast path is actually taken. *)
  let fuzz_execs = if options.quick then 2_000 else 20_000 in
  let fuzz_stats =
    List.map
      (fun name ->
        let subject = Catalog.find name in
        let r =
          Pfuzzer.fuzz
            { Pfuzzer.default_config with max_executions = fuzz_execs }
            subject
        in
        (name, r.Pfuzzer.cache))
      [ "json"; "expr" ]
  in
  Render.table ppf
    ~title:
      (Printf.sprintf "prefix-cache accounting over a %d-execution fuzzing run"
         fuzz_execs)
    ~header:[ "subject"; "hits"; "misses"; "hit rate"; "evictions"; "chars saved" ]
    (List.map
       (fun (name, (c : Pfuzzer.cache_stats)) ->
         [
           name;
           string_of_int c.hits;
           string_of_int c.misses;
           Printf.sprintf "%.1f%%"
             (100. *. float_of_int c.hits /. float_of_int (max 1 (c.hits + c.misses)));
           string_of_int c.evictions;
           string_of_int c.chars_saved;
         ])
       fuzz_stats);
  add_json "incremental"
    (Printf.sprintf
       "{\n    \"rounds\": %d,\n    \"iters_per_round\": %d,\n    \"rows\": [\n%s\n    ],\n    \"fuzz_cache\": {\n%s\n    }\n  }"
       rounds iters
       (String.concat ",\n"
          (List.map
             (fun (case, len, full, resumed, sp_med, sp_best) ->
               Printf.sprintf
                 "      { \"name\": %S, \"input_len\": %d, \"full_ns_median\": %.0f, \
                  \"resumed_ns_median\": %.0f, \"speedup_pairwise_median\": %.2f, \
                  \"speedup_pairwise_best\": %.2f }"
                 case len full resumed sp_med sp_best)
             measured))
       (String.concat ",\n"
          (List.map
             (fun (name, (c : Pfuzzer.cache_stats)) ->
               Printf.sprintf
                 "      %S: { \"executions\": %d, \"hits\": %d, \"misses\": %d, \
                  \"evictions\": %d, \"chars_saved\": %d }"
                 name fuzz_execs c.hits c.misses c.evictions c.chars_saved)
             fuzz_stats)))

(* {1 Compiled execution tier: staged closures vs the interpreted walker}

   The engine A/B of whole fuzzing campaigns: the same seeded session
   with [engine = Interpreted] and [engine = Compiled], timed in
   interleaved rounds (so load noise hits both sides alike), paired per
   round, median pairwise speedup reported. Equivalence is asserted
   before anything is timed — a fast engine that changes results would
   be a bug, not a win. The JSON records the build profile baked in at
   compile time: the headline comparison in BENCH_compiled.json is
   dev-interpreted (the previous default) vs release-compiled (the new
   one), which multiplies this in-binary ratio by the release flags. *)

let compiled_corpus = function
  | "paren" ->
    [ "([]{})"; "<<[()]>>"; "()()"; "((((((()))))))"; "([{<>}])([{<>}])" ]
  | "expr" -> [ "1+2"; "10-2+3"; "(((7)))"; "-3+42-17+(9-(8))"; "123456789" ]
  | "ini" ->
    [
      "[s]\nk=v\n"; "key = spaced value here\n";
      "; comment line\n[sec]\nk.e-y_2=value\nanother=1\n";
    ]
  | "csv" ->
    [
      "a,b\nc,d"; "\"he said \"\"hi\"\"\",x,y\nlong,bare,fields,here"; "a,\nb,";
    ]
  | "json" ->
    [
      "{\"a\":1}"; " [ 1 , { \"k\" : false } ] ";
      "{\"key\":[1,2,3,\"str\",true,null],\"n\":-1.5e3}";
    ]
  | name -> failwith ("no compiled-bench corpus for " ^ name)

let compiled_bench options =
  Render.section ppf
    (Printf.sprintf "compiled: staged execution tier vs interpreted (%s profile)"
       Build_profile.profile);
  let rounds = if options.quick then 4 else 8 in
  let slice = if options.quick then 3_000 else 30_000 in
  let campaign_execs = if options.quick then 2_000 else 20_000 in
  let subjects = [ "expr"; "paren"; "ini"; "csv"; "json" ] in
  let measured =
    List.map
      (fun name ->
        let subject = Catalog.find name in
        let machine =
          match subject.Subject.machine with
          | Some m -> m
          | None -> failwith (name ^ " has no machine-form parser")
        in
        let compiled =
          match subject.Subject.compiled with
          | Some c -> c
          | None -> failwith (name ^ " has no staged recognizer")
        in
        let inputs = compiled_corpus name in
        let arena =
          Runner.arena ~registry:subject.Subject.registry
            ~fuel:subject.Subject.fuel ()
        in
        (* Equivalence sanity before timing anything: per-input
           observations and a whole seeded campaign must coincide. *)
        List.iter
          (fun input ->
            let interp, _ = Subject.exec_journaled subject machine input in
            let comp, _ = Runner.exec_compiled arena compiled input in
            if not (Pdf_check.Invariants.runs_equal interp comp) then
              failwith
                (Printf.sprintf "%s: engines diverge on %S" name input))
          inputs;
        let check_cfg =
          { Pfuzzer.default_config with max_executions = 2_000 }
        in
        let rc =
          Pfuzzer.fuzz { check_cfg with engine = Pfuzzer.Compiled } subject
        in
        let ri =
          Pfuzzer.fuzz { check_cfg with engine = Pfuzzer.Interpreted } subject
        in
        if not (Pdf_check.Invariants.results_equal rc ri) then
          failwith (name ^ ": compiled and interpreted campaigns diverge");
        (* Per-execution engine cost: the incremental path's cold
           execution, interpreted walker vs staged closures, interleaved
           and paired per round. *)
        let execs_per_slice = slice * List.length inputs in
        let time_slice f =
          let t0 = Unix.gettimeofday () in
          for _ = 1 to slice do
            List.iter f inputs
          done;
          (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int execs_per_slice
        in
        let run_interp input = ignore (Subject.exec_journaled subject machine input)
        and run_comp input = ignore (Runner.exec_compiled arena compiled input) in
        (* warmup *)
        List.iter run_interp inputs;
        List.iter run_comp inputs;
        let per_round =
          List.init rounds (fun _ ->
              let interp = time_slice run_interp in
              let comp = time_slice run_comp in
              (interp, comp, interp /. comp))
        in
        let interp_ns = median (List.map (fun (a, _, _) -> a) per_round) in
        let comp_ns = median (List.map (fun (_, b, _) -> b) per_round) in
        let sp = median (List.map (fun (_, _, s) -> s) per_round) in
        (* Per-config minima: the least-noise estimate, preferred for
           cross-run comparisons on a loaded machine. *)
        let interp_min =
          List.fold_left (fun acc (a, _, _) -> min acc a) infinity per_round
        in
        let comp_min =
          List.fold_left (fun acc (_, b, _) -> min acc b) infinity per_round
        in
        (* Whole-campaign context: the same engines inside a real
           fuzzing run, where queue and cache work dilute the ratio. *)
        let campaign_cfg =
          { Pfuzzer.default_config with max_executions = campaign_execs }
        in
        let time_campaign engine =
          let t0 = Unix.gettimeofday () in
          let (_ : Pfuzzer.result) =
            Pfuzzer.fuzz { campaign_cfg with engine } subject
          in
          (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int campaign_execs
        in
        let c_interp = time_campaign Pfuzzer.Interpreted in
        let c_comp = time_campaign Pfuzzer.Compiled in
        (name, (interp_ns, comp_ns, sp), (interp_min, comp_min), (c_interp, c_comp)))
      subjects
  in
  Render.table ppf
    ~title:
      (Printf.sprintf
         "cold execution, ns/exec (%d interleaved rounds, %d execs each)"
         rounds slice)
    ~header:
      [ "subject"; "interpreted"; "compiled"; "speedup (median)"; "speedup (minima)" ]
    (List.map
       (fun (name, (interp, comp, sp), (imin, cmin), _) ->
         [
           name;
           Printf.sprintf "%.0f" interp;
           Printf.sprintf "%.0f" comp;
           Printf.sprintf "%.2fx" sp;
           Printf.sprintf "%.2fx" (imin /. cmin);
         ])
       measured);
  Render.table ppf
    ~title:
      (Printf.sprintf "whole fuzzing campaigns, ns/execution (%d execs)"
         campaign_execs)
    ~header:[ "subject"; "interpreted"; "compiled"; "speedup" ]
    (List.map
       (fun (name, _, _, (ci, cc)) ->
         [
           name;
           Printf.sprintf "%.0f" ci;
           Printf.sprintf "%.0f" cc;
           Printf.sprintf "%.2fx" (ci /. cc);
         ])
       measured);
  add_json "compiled"
    (Printf.sprintf
       "{\n    \"profile\": %S,\n    \"rounds\": %d,\n    \"execs_per_round\": %d,\n    \"rows\": [\n%s\n    ]\n  }"
       Build_profile.profile rounds slice
       (String.concat ",\n"
          (List.map
             (fun (name, (interp, comp, sp), (imin, cmin), (ci, cc)) ->
               Printf.sprintf
                 "      { \"name\": %S, \"interpreted_ns_per_exec\": %.0f, \
                  \"compiled_ns_per_exec\": %.0f, \"speedup_pairwise_median\": %.2f, \
                  \"interpreted_ns_min\": %.0f, \"compiled_ns_min\": %.0f, \
                  \"campaign_interpreted_ns_per_exec\": %.0f, \
                  \"campaign_compiled_ns_per_exec\": %.0f }"
                 name interp comp sp imin cmin ci cc)
             measured)))

(* {1 Search-loop overhead: campaign cost beyond raw execution}

   The campaign/exec gap: a fuzzing campaign spends campaign_ns per
   execution, a bare execution loop over a fixed corpus spends exec_ns;
   the difference is pure search-loop overhead — candidate generation,
   dedupe, scoring, queue and cache maintenance. This section measures
   that difference per subject, plus minor-heap allocation per campaign
   execution, and is written against stable APIs only so the identical
   source can be compiled at an older revision for before/after
   comparisons (BENCH_loop.json). Both sides run the interpreted engine:
   the overhead under measurement is engine-independent, and pinning the
   engine keeps the raw loop and the campaign comparable across
   revisions regardless of per-subject engine preferences. *)

let loop_bench options =
  Render.section ppf
    (Printf.sprintf "loop: search-loop overhead (%s profile)"
       Build_profile.profile);
  let rounds = if options.quick then 3 else 5 in
  let slice = if options.quick then 3_000 else 30_000 in
  let campaign_execs = if options.quick then 2_000 else 20_000 in
  let subjects = [ "expr"; "paren"; "ini"; "csv"; "json" ] in
  let measured =
    List.map
      (fun name ->
        let subject = Catalog.find name in
        let machine =
          match subject.Subject.machine with
          | Some m -> m
          | None -> failwith (name ^ " has no machine-form parser")
        in
        let inputs = compiled_corpus name in
        let run_one input =
          ignore (Subject.exec_journaled subject machine input)
        in
        (* Raw execution cost: the interpreted walker over the fixed
           corpus, best of [rounds] slices. *)
        let execs_per_slice = slice * List.length inputs in
        let time_slice () =
          let t0 = Unix.gettimeofday () in
          for _ = 1 to slice do
            List.iter run_one inputs
          done;
          (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int execs_per_slice
        in
        List.iter run_one inputs;
        (* warmup *)
        let exec_ns =
          List.fold_left min infinity (List.init rounds (fun _ -> time_slice ()))
        in
        (* Whole-campaign cost and allocation rate, same engine. *)
        let cfg =
          {
            Pfuzzer.default_config with
            max_executions = campaign_execs;
            engine = Pfuzzer.Interpreted;
          }
        in
        ignore (Pfuzzer.fuzz { cfg with max_executions = 2_000 } subject);
        (* warmup *)
        let samples =
          List.init rounds (fun _ ->
              let w0 = Gc.minor_words () in
              let t0 = Unix.gettimeofday () in
              let (_ : Pfuzzer.result) = Pfuzzer.fuzz cfg subject in
              let dt = Unix.gettimeofday () -. t0 in
              let dw = Gc.minor_words () -. w0 in
              ( dt *. 1e9 /. float_of_int campaign_execs,
                dw /. float_of_int campaign_execs ))
        in
        let campaign_ns = median (List.map fst samples) in
        let minor_words = median (List.map snd samples) in
        (name, campaign_ns, exec_ns, campaign_ns -. exec_ns, minor_words))
      subjects
  in
  Render.table ppf
    ~title:
      (Printf.sprintf
         "campaign vs raw execution, ns/exec (%d campaign execs, %d-exec raw \
          slices, %d rounds)"
         campaign_execs slice rounds)
    ~header:
      [ "subject"; "campaign"; "raw exec"; "overhead"; "minor words/exec" ]
    (List.map
       (fun (name, c, e, o, w) ->
         [
           name;
           Printf.sprintf "%.0f" c;
           Printf.sprintf "%.0f" e;
           Printf.sprintf "%.0f" o;
           Printf.sprintf "%.0f" w;
         ])
       measured);
  add_json "loop"
    (Printf.sprintf
       "{\n    \"profile\": %S,\n    \"engine\": \"interpreted\",\n    \
        \"campaign_execs\": %d,\n    \"raw_slice_execs\": %d,\n    \
        \"rounds\": %d,\n    \"minor_heap_words\": %d,\n    \"rows\": [\n%s\n    ]\n  }"
       Build_profile.profile campaign_execs slice rounds
       Gc.((get ()).minor_heap_size)
       (String.concat ",\n"
          (List.map
             (fun (name, c, e, o, w) ->
               Printf.sprintf
                 "      { \"name\": %S, \"campaign_ns_per_exec\": %.0f, \
                  \"exec_ns_per_exec\": %.0f, \"overhead_ns_per_exec\": %.0f, \
                  \"minor_words_per_exec\": %.0f }"
                 name c e o w)
             measured)))

(* {1 Telemetry overhead: the fuzzer with the observer off, on, and fully
   traced}

   The observability contract is "near-zero cost when disabled": the
   fuzzer holds an [Observer.t option] and every telemetry site is one
   branch on [None]. This section measures whole fuzzing runs in
   interleaved rounds — disabled, metrics-only (spans + histograms, no
   sink), and traced into an in-memory buffer — and reports median
   ns/execution for each, plus the overhead relative to disabled. *)

let obs_bench options =
  Render.section ppf "obs: telemetry overhead on the fuzzing hot path";
  let rounds = 5 in
  let execs = if options.quick then 1_000 else 5_000 in
  let measured =
    List.map
      (fun subject_name ->
        let subject = Catalog.find subject_name in
        let config = { Pfuzzer.default_config with max_executions = execs } in
        let time_run f =
          let t0 = Unix.gettimeofday () in
          let (_ : Pfuzzer.result) = f () in
          (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int execs
        in
        let per_round =
          List.init rounds (fun _ ->
              let off = time_run (fun () -> Pfuzzer.fuzz config subject) in
              let metrics_only =
                time_run (fun () ->
                    let obs =
                      Pdf_obs.Observer.create ~metrics:(Pdf_obs.Metrics.create ()) ()
                    in
                    Pfuzzer.fuzz ~obs config subject)
              in
              let traced =
                time_run (fun () ->
                    let sink, _ = Pdf_obs.Trace.buffer () in
                    let obs =
                      Pdf_obs.Observer.create ~sink
                        ~metrics:(Pdf_obs.Metrics.create ()) ()
                    in
                    Pfuzzer.fuzz ~obs config subject)
              in
              (off, metrics_only, traced))
        in
        let off = median (List.map (fun (a, _, _) -> a) per_round) in
        let metrics_only = median (List.map (fun (_, b, _) -> b) per_round) in
        let traced = median (List.map (fun (_, _, c) -> c) per_round) in
        (subject_name, off, metrics_only, traced))
      [ "json"; "tinyc" ]
  in
  let pct base v = 100. *. ((v /. base) -. 1.) in
  Render.table ppf
    ~title:
      (Printf.sprintf
         "whole fuzzing runs, ns/execution (%d interleaved rounds, %d execs each)"
         rounds execs)
    ~header:
      [ "subject"; "disabled"; "metrics only"; "traced"; "metrics ovh"; "trace ovh" ]
    (List.map
       (fun (name, off, m, t) ->
         [
           name;
           Printf.sprintf "%.0f" off;
           Printf.sprintf "%.0f" m;
           Printf.sprintf "%.0f" t;
           Printf.sprintf "%+.1f%%" (pct off m);
           Printf.sprintf "%+.1f%%" (pct off t);
         ])
       measured);
  add_json "obs"
    (Printf.sprintf "{\n    \"rounds\": %d,\n    \"execs_per_run\": %d,\n    \"rows\": [\n%s\n    ]\n  }"
       rounds execs
       (String.concat ",\n"
          (List.map
             (fun (name, off, m, t) ->
               Printf.sprintf
                 "      { \"name\": %S, \"disabled_ns_per_exec\": %.0f, \
                  \"metrics_ns_per_exec\": %.0f, \"traced_ns_per_exec\": %.0f, \
                  \"metrics_overhead_pct\": %.1f, \"traced_overhead_pct\": %.1f }"
                 name off m t (pct off m) (pct off t))
             measured)))

(* {1 Monitoring overhead: sampled tracing and the flight recorder}

   The monitoring contract: full tracing is allowed to be expensive
   (BENCH_obs.json puts it around double the disabled cost), but the
   always-on production modes must not be. Sampling exec-level events
   1-in-100 has to bring the overhead down to single digits, and the
   flight-recorder ring — retention without serialization — must be
   within a few percent of running blind. Interleaved rounds as in the
   obs section: disabled, fully traced, sampled 1/100, and ring-only at
   the same sampling rate. *)

let monitor_bench options =
  Render.section ppf "monitor: sampled tracing and flight-recorder overhead";
  let rounds = if options.quick then 5 else 9 in
  let execs = if options.quick then 1_000 else 10_000 in
  let sample = 100 in
  let measured =
    List.map
      (fun subject_name ->
        let subject = Catalog.find subject_name in
        let config = { Pfuzzer.default_config with max_executions = execs } in
        let time_run f =
          let t0 = Unix.gettimeofday () in
          let (_ : Pfuzzer.result) = f () in
          (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int execs
        in
        let per_round =
          List.init rounds (fun _ ->
              let off = time_run (fun () -> Pfuzzer.fuzz config subject) in
              let full =
                time_run (fun () ->
                    let sink, _ = Pdf_obs.Trace.buffer () in
                    let obs = Pdf_obs.Observer.create ~sink () in
                    Pfuzzer.fuzz ~obs config subject)
              in
              let sampled =
                time_run (fun () ->
                    let sink, _ = Pdf_obs.Trace.buffer () in
                    let obs = Pdf_obs.Observer.create ~sink ~sample () in
                    Pfuzzer.fuzz ~obs config subject)
              in
              let recorder =
                time_run (fun () ->
                    let obs =
                      Pdf_obs.Observer.create ~ring:(Pdf_obs.Trace.ring 512)
                        ~sample ()
                    in
                    Pfuzzer.fuzz ~obs config subject)
              in
              (off, full, sampled, recorder))
        in
        let off = median (List.map (fun (a, _, _, _) -> a) per_round) in
        let full = median (List.map (fun (_, b, _, _) -> b) per_round) in
        let sampled = median (List.map (fun (_, _, c, _) -> c) per_round) in
        let recorder = median (List.map (fun (_, _, _, d) -> d) per_round) in
        (subject_name, off, full, sampled, recorder))
      [ "json"; "tinyc" ]
  in
  let pct base v = 100. *. ((v /. base) -. 1.) in
  Render.table ppf
    ~title:
      (Printf.sprintf
         "whole fuzzing runs, ns/execution (%d interleaved rounds, %d execs \
          each, sampling 1/%d)"
         rounds execs sample)
    ~header:
      [
        "subject"; "disabled"; "full trace"; "sampled"; "ring 512";
        "full ovh"; "sampled ovh"; "ring ovh";
      ]
    (List.map
       (fun (name, off, full, sampled, recorder) ->
         [
           name;
           Printf.sprintf "%.0f" off;
           Printf.sprintf "%.0f" full;
           Printf.sprintf "%.0f" sampled;
           Printf.sprintf "%.0f" recorder;
           Printf.sprintf "%+.1f%%" (pct off full);
           Printf.sprintf "%+.1f%%" (pct off sampled);
           Printf.sprintf "%+.1f%%" (pct off recorder);
         ])
       measured);
  add_json "monitor"
    (Printf.sprintf
       "{\n    \"rounds\": %d,\n    \"execs_per_run\": %d,\n    \"sample\": %d,\n\
       \    \"rows\": [\n%s\n    ]\n  }"
       rounds execs sample
       (String.concat ",\n"
          (List.map
             (fun (name, off, full, sampled, recorder) ->
               Printf.sprintf
                 "      { \"name\": %S, \"disabled_ns_per_exec\": %.0f, \
                  \"full_trace_ns_per_exec\": %.0f, \
                  \"sampled_ns_per_exec\": %.0f, \
                  \"recorder_ns_per_exec\": %.0f, \
                  \"full_overhead_pct\": %.1f, \
                  \"sampled_overhead_pct\": %.1f, \
                  \"recorder_overhead_pct\": %.1f }"
                 name off full sampled recorder (pct off full)
                 (pct off sampled) (pct off recorder))
             measured)))

(* {1 Distributed campaigns: equivalence, then worker scaling}

   Equivalence before timing: the merged result of every fleet must be
   bit-identical to the sequential reference, or the scaling numbers
   measure a different computation. Scaling is then honest wall clock
   over the same shard plan, with the machine's core count recorded —
   on a single-core runner every worker count shares one CPU, and the
   fork/pipe overhead makes N>1 slower, not faster. The JSON says so
   rather than pretending. *)

let dist_bench options =
  Render.section ppf "dist: distributed campaign equivalence and worker scaling";
  let subject_name = "json" in
  let subject = Catalog.find subject_name in
  let execs = max 400 (options.budget / 100) in
  let shards = 8 in
  let frame_every = max 1 (execs / (4 * shards)) in
  let config = { Pfuzzer.default_config with max_executions = execs } in
  let reference = Pdf_eval.Dist.reference ~shards config subject in
  let ref_bytes = Marshal.to_string reference [] in
  let rounds = if options.quick then 3 else 5 in
  let worker_counts = [ 1; 2; 4 ] in
  let measured =
    List.map
      (fun workers ->
        let outcomes =
          List.init rounds (fun _ ->
              Pdf_eval.Dist.run_campaign ~workers ~shards ~frame_every config
                subject)
        in
        List.iter
          (fun (o : Pdf_eval.Dist.outcome) ->
            if Marshal.to_string o.result [] <> ref_bytes then
              failwith
                (Printf.sprintf
                   "dist: workers:%d diverged from the sequential reference"
                   workers))
          outcomes;
        let walls =
          List.map (fun (o : Pdf_eval.Dist.outcome) -> o.wall_clock_s) outcomes
        in
        (workers, median walls))
      worker_counts
  in
  let t1 = match measured with (_, t) :: _ -> t | [] -> nan in
  let cores = Pdf_eval.Parallel.default_jobs () in
  Render.table ppf
    ~title:
      (Printf.sprintf
         "%s subject, %d executions over %d shards, %d round(s), %d core(s) \
          available — every fleet bit-identical to the reference"
         subject_name execs shards rounds cores)
    ~header:[ "workers"; "wall s (median)"; "scaling vs workers:1" ]
    (List.map
       (fun (workers, wall) ->
         [
           string_of_int workers;
           Printf.sprintf "%.3f" wall;
           Printf.sprintf "%.2fx" (t1 /. wall);
         ])
       measured);
  if cores < 2 then
    Format.fprintf ppf
      "Single-core machine: worker processes time-slice one CPU, so the@.\
       scaling column measures fork and pipe overhead, not speedup.@.";
  add_json "dist"
    (Printf.sprintf
       "{\n    \"subject\": %S,\n    \"executions\": %d,\n    \"shards\": %d,\n\
       \    \"rounds\": %d,\n    \"cores\": %d,\n    \"equivalent\": true,\n\
       \    \"rows\": [\n%s\n    ]\n  }"
       subject_name execs shards rounds cores
       (String.concat ",\n"
          (List.map
             (fun (workers, wall) ->
               Printf.sprintf
                 "      { \"workers\": %d, \"wall_s_median\": %.3f, \
                  \"scaling_vs_1\": %.2f }"
                 workers wall (t1 /. wall))
             measured)))

let () =
  let options = parse_args () in
  if options.minor_heap > 0 then
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = options.minor_heap };
  (* dist forks worker processes; OCaml 5 forbids fork once any domain
     has been spawned, so it must precede the evaluation-grid sections. *)
  if wants options "dist" then dist_bench options;
  if wants options "table-1" then table_1 ();
  if wants options "table-2" then table_tokens "json" "table-2";
  if wants options "table-3" then table_tokens "tinyc" "table-3";
  if wants options "table-4" then table_tokens "mjs" "table-4";
  if wants options "figure-2" then figure_2 options;
  if wants options "figure-3" then figure_3 options;
  if wants options "headline" then headline options;
  if wants options "ablation-dyck" then ablation_dyck options;
  if wants options "ablation-heuristic" then ablation_heuristic options;
  if wants options "ablation-grammar" then ablation_grammar options;
  if wants options "ablation-tables" then ablation_tables options;
  if wants options "ablation-token-taints" then ablation_token_taints options;
  if wants options "ablation-semantics" then ablation_semantics options;
  if wants options "pipeline" then pipeline options;
  if wants options "micro" then micro options;
  if wants options "incremental" then incremental options;
  if wants options "compiled" then compiled_bench options;
  if wants options "loop" then loop_bench options;
  if wants options "obs" then obs_bench options;
  if wants options "monitor" then monitor_bench options;
  write_json options;
  Format.pp_print_flush ppf ()
