(** The fuzzer-facing telemetry handle, bundling a trace sink, a metrics
    registry and a live progress line behind one optional value.

    The contract with the hot path: the fuzzer holds an [Observer.t
    option]; with [None] nothing is computed — no event construction, no
    clock reads, no allocation. With an observer installed, phase spans
    cost two monotonic clock reads each and trace events one small
    allocation; measured overhead numbers live in BENCH_obs.json. *)

type t

val create :
  ?clock:(unit -> int) ->
  ?sink:Trace.sink ->
  ?metrics:Metrics.t ->
  ?progress:Progress.t ->
  unit ->
  t
(** All parts optional: sink-only gives tracing, progress-only gives the
    live line, metrics adds per-phase histograms (registered as
    [phase/<name>_ns]). [clock] overrides the monotonic clock for
    deterministic tests. *)

val tracing : t -> bool
(** Is a sink attached? Event construction should be guarded on this. *)

val now_ns : t -> int
(** Nanoseconds since the observer was created. *)

val emit : t -> exec:int -> Event.t -> unit
(** Stamp with the current clock and the given execution count, and
    forward to the sink (no-op without one). *)

val metrics : t -> Metrics.t option

(** {1 Phase spans} *)

val span_start : t -> int
val span_end : t -> Phase.t -> int -> unit
(** [span_end t phase (span_start t)] adds the elapsed nanoseconds to
    the phase's cumulative total and, when a metrics registry is
    attached, its histogram. *)

val span_next : t -> Phase.t -> int -> int
(** Like {!span_end}, but returns the end timestamp so back-to-back
    spans share one clock read: [span_end t p2 (span_next t p1 start)]. *)

val phase_totals : t -> (string * int) list

(** {1 Run lifecycle} *)

val run_meta :
  t ->
  subject:string ->
  outcomes:int ->
  seed:int ->
  max_executions:int ->
  incremental:bool ->
  engine:string ->
  unit
(** Emit the run header and remember the totals the progress line needs. *)

val snapshot_due : t -> bool
(** True when the progress cadence has elapsed. Always false without a
    progress line, so purely-traced runs contain no time-driven events
    and merged traces stay deterministic. *)

val snapshot :
  t ->
  exec:int ->
  depth:int ->
  valid:int ->
  cov:int ->
  hits:int ->
  misses:int ->
  plateau:int ->
  hangs:int ->
  crashes:int ->
  unit
(** Emit a {!Event.Snapshot} and repaint the live line. Throughput is
    computed from the delta since the previous snapshot. *)

val finish : t -> exec:int -> valid:int -> cov:int -> unit
(** End of run: emit {!Event.Phases} (with p50/p99 per phase when
    metrics are attached) and {!Event.Run_done}, and release the live
    line. Does not close the sink — its opener owns it. *)

val wall_ns : t -> int
