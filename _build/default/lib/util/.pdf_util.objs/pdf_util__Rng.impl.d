lib/util/rng.ml: Array Char Int64 List
