lib/subjects/tinyc.mli: Subject
