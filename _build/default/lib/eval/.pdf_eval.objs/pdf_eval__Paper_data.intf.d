lib/eval/paper_data.mli: Tool
