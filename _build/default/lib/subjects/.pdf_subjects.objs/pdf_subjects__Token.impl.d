lib/subjects/token.ml: List String
