type t = {
  name : string;
  description : string;
  registry : Pdf_instr.Site.registry;
  parse : Pdf_instr.Ctx.t -> unit;
  fuel : int;
  tokens : Token.t list;
  tokenize : string -> string list;
  original_loc : int;
}

let run ?track_comparisons ?track_trace ?track_frames t input =
  Pdf_instr.Runner.exec ~registry:t.registry ~parse:t.parse ~fuel:t.fuel
    ?track_comparisons ?track_trace ?track_frames input

let accepts t input = Pdf_instr.Runner.accepted (run t input)
