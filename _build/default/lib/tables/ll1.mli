(** LL(1) parse-table construction.

    The table maps (nonterminal, lookahead character) to a production; a
    separate end-of-input column handles EOF lookahead for nullable
    tails. Construction fails with a description of the first conflict if
    the grammar is not LL(1). *)

type t

type conflict = {
  nonterminal : string;
  lookahead : char option;  (** [None] = end of input *)
  productions : int * int;  (** indices of the clashing productions *)
}

val build : Cfg.t -> (t, conflict) result

val grammar : t -> Cfg.t

val lookup : t -> string -> char -> Cfg.production option
val lookup_eof : t -> string -> Cfg.production option

val expected : t -> string -> Pdf_util.Charset.t
(** All characters with a table entry for the nonterminal — the
    "expected one of …" set a diagnostic-producing driver reports. *)

val entries : t -> (string * char option * int) list
(** Every populated table cell as (nonterminal, lookahead, production
    index) — the denominator of table-element coverage (§7.1). *)

val pp_conflict : Format.formatter -> conflict -> unit
