lib/taint/tstring.ml: Array Format String Taint Tchar
