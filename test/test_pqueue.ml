(* Property tests for {!Pdf_util.Pqueue} against a sorted-list reference
   model.

   The queue's contract is total: pop order is (priority desc, insertion
   order asc), and [rerank] keeps original insertion order for
   tie-breaking while [drop_worst] keeps the n best under the same
   order. The model is a plain association list with explicit sequence
   numbers, so every observable — pop, peek, length, snapshot — can be
   predicted exactly, not just up to ties. Priorities are drawn from a
   tiny set to make ties the common case rather than the rare one. *)

module Pqueue = Pdf_util.Pqueue

let qtest = QCheck_alcotest.to_alcotest

type op = Push of int | Pop | Peek | Rerank of int | Drop_worst of int

let op_gen =
  QCheck.(
    oneof
      [
        map (fun p -> Push (abs p mod 4)) small_int;
        always Pop;
        always Peek;
        map (fun k -> Rerank (abs k mod 5)) small_int;
        map (fun n -> Drop_worst (abs n mod 6)) small_int;
      ])

let ops_gen =
  QCheck.(
    make
      ~print:(fun ops ->
        String.concat ";"
          (List.map
             (function
               | Push p -> Printf.sprintf "push %d" p
               | Pop -> "pop"
               | Peek -> "peek"
               | Rerank k -> Printf.sprintf "rerank %d" k
               | Drop_worst n -> Printf.sprintf "drop_worst %d" n)
             ops))
      Gen.(list_size (int_range 0 40) (QCheck.gen op_gen)))

(* Reference model: entries in insertion order with explicit seqs. *)
module Model = struct
  type entry = { mutable prio : float; seq : int; value : int }
  type t = { mutable entries : entry list; mutable next_seq : int }

  let create () = { entries = []; next_seq = 0 }

  let push t prio value =
    t.entries <- t.entries @ [ { prio; seq = t.next_seq; value } ];
    t.next_seq <- t.next_seq + 1

  let order a b =
    (* priority desc, then seq asc — Pqueue's [before] as a comparator *)
    if a.prio > b.prio then -1
    else if a.prio < b.prio then 1
    else compare a.seq b.seq

  let best t =
    match List.sort order t.entries with [] -> None | e :: _ -> Some e

  let pop t =
    match best t with
    | None -> None
    | Some e ->
      t.entries <- List.filter (fun e' -> e'.seq <> e.seq) t.entries;
      Some (e.prio, e.value)

  let peek t = Option.map (fun e -> e.value) (best t)

  let rerank t f = List.iter (fun e -> e.prio <- f e.value) t.entries

  let drop_worst t n =
    let kept = List.filteri (fun i _ -> i < n) (List.sort order t.entries) in
    t.entries <-
      List.sort (fun a b -> compare a.seq b.seq) kept

  let snapshot t =
    List.map
      (fun e -> (e.prio, e.value))
      (List.sort (fun a b -> compare a.seq b.seq) t.entries)

  let length t = List.length t.entries
end

let rerank_fn k v = float_of_int ((v * (k + 2)) mod 5)

let check_snapshot model q =
  if Pqueue.length q <> Model.length model then
    QCheck.Test.fail_reportf "length %d, model %d" (Pqueue.length q)
      (Model.length model);
  let snap = Pqueue.snapshot q and msnap = Model.snapshot model in
  if snap <> msnap then QCheck.Test.fail_report "snapshot mismatch";
  (* to_list is order-free; compare as multisets. *)
  if List.sort compare (Pqueue.to_list q) <> List.sort compare msnap then
    QCheck.Test.fail_report "to_list multiset mismatch"

let apply model q counter op =
  match op with
  | Push p ->
    let v = !counter in
    incr counter;
    let prio = float_of_int p in
    Pqueue.push q prio v;
    Model.push model prio v
  | Pop ->
    let got = Pqueue.pop_with_priority q and want = Model.pop model in
    if got <> want then QCheck.Test.fail_report "pop_with_priority mismatch"
  | Peek ->
    if Pqueue.peek q <> Model.peek model then
      QCheck.Test.fail_report "peek mismatch"
  | Rerank k ->
    Pqueue.rerank q (rerank_fn k);
    Model.rerank model (rerank_fn k)
  | Drop_worst n ->
    Pqueue.drop_worst q n;
    Model.drop_worst model n

let test_ops_model =
  QCheck.Test.make ~name:"op sequences agree with sorted-list model"
    ~count:1000 ops_gen (fun ops ->
      let model = Model.create () and q = Pqueue.create () in
      let counter = ref 0 in
      List.iter
        (fun op ->
          apply model q counter op;
          check_snapshot model q)
        ops;
      (* Drain: full pop order must match the model's. *)
      let rec drain () =
        let got = Pqueue.pop_with_priority q and want = Model.pop model in
        if got <> want then QCheck.Test.fail_report "drain order mismatch";
        if got <> None then drain ()
      in
      drain ();
      if not (Pqueue.is_empty q) then
        QCheck.Test.fail_report "queue not empty after drain";
      true)

let test_fifo_on_ties =
  QCheck.Test.make ~name:"equal priorities pop in insertion order" ~count:200
    QCheck.(int_range 0 50)
    (fun n ->
      let q = Pqueue.create () in
      for v = 0 to n - 1 do
        Pqueue.push q 1.0 v
      done;
      let order = List.init n (fun _ -> Option.get (Pqueue.pop q)) in
      order = List.init n Fun.id)

let test_rerank_keeps_tie_order =
  QCheck.Test.make ~name:"rerank preserves insertion order on ties" ~count:200
    QCheck.(int_range 1 30)
    (fun n ->
      let q = Pqueue.create () in
      for v = 0 to n - 1 do
        (* Distinct priorities going in... *)
        Pqueue.push q (float_of_int v) v
      done;
      (* ...collapsed to one tie class by rerank: insertion order must
         decide the pop order. *)
      Pqueue.rerank q (fun _ -> 0.0);
      let order = List.init n (fun _ -> Option.get (Pqueue.pop q)) in
      order = List.init n Fun.id)

let () =
  Alcotest.run "pqueue"
    [
      ( "model",
        [
          qtest test_ops_model;
          qtest test_fifo_on_ties;
          qtest test_rerank_keeps_tie_order;
        ] );
    ]
