(** The trace event model.

    Every event is stamped with two clocks: [t_ns], monotonic
    nanoseconds since the observer was created, and [exec], the
    execution-count clock (how many subject executions had completed
    when the event fired — the paper's x-axis). Events serialize as
    single-line flat JSON objects; the schema is documented in
    DESIGN.md §9. *)

type t =
  | Run_meta of {
      subject : string;
      outcomes : int;  (** total branch outcomes in the subject registry *)
      seed : int;
      max_executions : int;
      incremental : bool;
      engine : string;
          (** the execution tier actually in effect: "interpreted" or
              "compiled" *)
    }  (** first event of a fuzzing run *)
  | Cell of { tool : string; subject : string; seed : int }
      (** marks the start of one evaluation-grid cell in a merged trace *)
  | Exec_start of { len : int; prefix : int }
      (** an execution begins; [prefix] is the inherited-prefix hint *)
  | Exec_done of {
      dur_ns : int;  (** full processing span, including child generation *)
      verdict : string;  (** "accepted", "rejected" or "hang" *)
      engine : string;  (** execution tier that ran it; see {!Run_meta} *)
      cached : bool;  (** resumed from a prefix snapshot *)
      sub_index : int;  (** substitution index, -1 when none *)
      cov : int;  (** valid-coverage cardinal after this execution *)
      cov_delta : int;  (** branches this execution added to it *)
      valid : bool;
      len : int;
    }
  | Valid of { input : string; cov : int; count : int }
  | Queue_push of { prio : float; len : int; depth : int }
  | Queue_pop of { prio : float; len : int; depth : int }
  | Queue_rerank of { depth : int }
  | Queue_trunc of { dropped : int; depth : int }
  | Cache_hit of { saved : int }  (** [saved] prefix chars not re-parsed *)
  | Cache_miss
  | Cache_evict of { evictions : int }  (** cumulative eviction count *)
  | Reset of { table : string }  (** "dedupe" or "path" generational reset *)
  | Hang of { total : int }
      (** an execution exhausted its fuel ([Ctx.Out_of_fuel]); [total]
          is the cumulative hang count *)
  | Crash of { exn : string; site : int; fresh : bool; total : int }
      (** the subject crashed; [fresh] marks the first sighting of this
          [(exn, site)] identity, duplicates have [fresh = false];
          [total] is the cumulative crash count *)
  | Fault of { kind : string }
      (** a planned fault fired at this execution (chaos runs only);
          [kind] is the {!Pdf_fault.Fault.kind_label} *)
  | Rescue of { prefix : int }
      (** a cached-snapshot resume crashed; the entry was invalidated
          and the input re-executed cold *)
  | Retry of { what : string; attempt : int; detail : string }
      (** a failed unit of work (e.g. an evaluation-grid cell) is being
          retried; [attempt] counts from 1 *)
  | Snapshot of {
      execs_per_sec : float;
      depth : int;
      valid : int;
      cov : int;
      hits : int;
      misses : int;
      rescues : int;
          (** cumulative cache rescues (poisoned snapshot re-executed
              cold); absent in pre-PR-9 traces, parsed as 0 *)
      plateau : int;  (** executions since valid coverage last grew *)
      hangs : int;
      crashes : int;
    }  (** periodic status sample, driving the live progress line *)
  | Phases of { spans : (string * int) list; wall_ns : int }
      (** cumulative per-phase wall-clock spans at end of run; spans
          serialize as one [<name>_ns] field each *)
  | Run_done of { valid : int; cov : int; wall_ns : int; execs_per_sec : float }
  | Shard of { shard : int; seed : int; budget : int }
      (** one entry of a distributed campaign's shard plan, emitted by
          the coordinator before any worker is spawned *)
  | Worker_spawn of { worker : int; pid : int; shards : int }
      (** a campaign worker process was forked; [shards] is how many
          plan entries it owns *)
  | Worker_frame of { worker : int; shard : int; seq : int; final : bool }
      (** the coordinator accepted a sync frame; [seq] is the frame's
          per-shard sequence number, [final] marks the shard's result
          frame (progress frames have [final = false]) *)
  | Worker_exit of { worker : int; status : string; missing : int }
      (** a worker's pipe reached EOF and it was reaped; [status] is
          ["exit:<code>"] or ["signal:<signum>"], [missing] counts its
          shards that still lack a final frame (each will be replayed) *)

type stamped = { t_ns : int; exec : int; ev : t }

val kind : t -> string
val to_json_line : stamped -> string
(** One flat JSON object, no trailing newline. *)

val of_json_line : string -> stamped
(** Inverse of {!to_json_line}. Raises {!Json.Malformed} on anything
    that is not a well-formed event line. *)

val of_fields : (string * Json.v) list -> stamped
