module Bitmap = Pdf_afl.Bitmap
module Mutator = Pdf_afl.Mutator
module Afl = Pdf_afl.Afl
module Catalog = Pdf_subjects.Catalog
module Subject = Pdf_subjects.Subject
module Rng = Pdf_util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* {1 Bitmap} *)

let test_bitmap_new_bits () =
  let virgin = Bitmap.create () in
  let b = Bitmap.builder () in
  let sparse = Bitmap.sparse_of_trace b [| 1; 2; 3 |] in
  Alcotest.(check bool) "fresh trace has new bits" true (Bitmap.new_bits ~virgin sparse);
  Bitmap.merge ~into:virgin sparse;
  Alcotest.(check bool) "merged trace has no new bits" false
    (Bitmap.new_bits ~virgin sparse);
  let sparse2 = Bitmap.sparse_of_trace b [| 1; 2; 3; 4 |] in
  Alcotest.(check bool) "longer trace lights new edges" true
    (Bitmap.new_bits ~virgin sparse2)

let test_bitmap_hit_buckets () =
  (* Repeating an edge 1 vs 3 times lands in different count buckets, so
     loop-count changes register coarsely, as in AFL. *)
  let virgin = Bitmap.create () in
  let b = Bitmap.builder () in
  Bitmap.merge ~into:virgin (Bitmap.sparse_of_trace b [| 7; 8 |]);
  let thrice = Bitmap.sparse_of_trace b [| 7; 8; 7; 8; 7; 8 |] in
  Alcotest.(check bool) "different bucket is new" true (Bitmap.new_bits ~virgin thrice)

let test_bitmap_builder_reuse () =
  let b = Bitmap.builder () in
  let s1 = Bitmap.sparse_of_trace b [| 1; 2 |] in
  let s2 = Bitmap.sparse_of_trace b [| 1; 2 |] in
  Alcotest.(check bool) "builder state fully reset between runs" true
    (List.sort compare s1 = List.sort compare s2)

let test_bitmap_count () =
  let virgin = Bitmap.create () in
  Alcotest.(check int) "empty" 0 (Bitmap.count_nonzero virgin);
  let b = Bitmap.builder () in
  Bitmap.merge ~into:virgin (Bitmap.sparse_of_trace b [| 1; 2; 3 |]);
  Alcotest.(check bool) "populated" true (Bitmap.count_nonzero virgin > 0)

let test_bitmap_union () =
  let b = Bitmap.builder () in
  let m1 = Bitmap.create () and m2 = Bitmap.create () in
  let s1 = Bitmap.sparse_of_trace b [| 1; 2; 3 |] in
  let s2 = Bitmap.sparse_of_trace b [| 3; 4; 5 |] in
  Bitmap.merge ~into:m1 s1;
  Bitmap.merge ~into:m2 s2;
  let u = Bitmap.union m1 m2 in
  Alcotest.(check bool) "commutative" true
    (Bitmap.equal u (Bitmap.union m2 m1));
  Alcotest.(check bool) "idempotent" true
    (Bitmap.equal (Bitmap.union m1 m1) m1);
  Alcotest.(check bool) "empty map is the identity" true
    (Bitmap.equal (Bitmap.union m1 (Bitmap.create ())) m1);
  (* The union subsumes both inputs: neither run lights new bits. *)
  Alcotest.(check bool) "left input subsumed" false (Bitmap.new_bits ~virgin:u s1);
  Alcotest.(check bool) "right input subsumed" false (Bitmap.new_bits ~virgin:u s2);
  Alcotest.(check bool) "union at least as populated" true
    (Bitmap.count_nonzero u >= max (Bitmap.count_nonzero m1) (Bitmap.count_nonzero m2))

let prop_sparse_edge_count =
  QCheck.Test.make ~name:"one edge per trace step" ~count:200
    QCheck.(small_list small_nat)
    (fun trace ->
      let b = Bitmap.builder () in
      let sparse = Bitmap.sparse_of_trace b (Array.of_list trace) in
      let total = List.fold_left (fun acc (_, _) -> acc + 1) 0 sparse in
      (* Distinct edges cannot exceed trace length. *)
      total <= List.length trace && (trace = [] ) = (sparse = []))

(* {1 Mutators} *)

let test_deterministic_counts () =
  let input = "ab" in
  let variants = Mutator.deterministic input in
  (* bit flips: (16-1+1) + (16-2+1) + (16-4+1) = 16+15+13 = 44
     byte flips: 2; arith: 2*10 = 20; interesting: 2*17 - 2 no-ops
     ('a' and 'z'... only 'a' collides for this input) = 33. *)
  Alcotest.(check int) "stage sizes" (44 + 2 + 20 + 33) (List.length variants);
  Alcotest.(check int) "empty input has no variants" 0
    (List.length (Mutator.deterministic ""))

let prop_deterministic_changes =
  QCheck.Test.make ~name:"deterministic variants differ from the input" ~count:100
    QCheck.(string_of_size (QCheck.Gen.int_range 1 6))
    (fun input ->
      List.for_all (fun v -> v <> input) (Mutator.deterministic input))

let prop_deterministic_preserves_length =
  QCheck.Test.make ~name:"deterministic variants preserve length" ~count:100
    QCheck.(string_of_size (QCheck.Gen.int_range 1 6))
    (fun input ->
      List.for_all
        (fun v -> String.length v = String.length input)
        (Mutator.deterministic input))

let prop_havoc_bounded =
  QCheck.Test.make ~name:"havoc output stays under 256 bytes" ~count:300
    QCheck.(pair small_int (string_of_size (QCheck.Gen.int_range 0 64)))
    (fun (seed, input) ->
      let rng = Rng.make seed in
      String.length (Mutator.havoc rng input) <= 256)

let prop_havoc_deterministic =
  QCheck.Test.make ~name:"havoc is deterministic per seed" ~count:200
    QCheck.(pair small_int small_string)
    (fun (seed, input) ->
      Mutator.havoc (Rng.make seed) input = Mutator.havoc (Rng.make seed) input)

let prop_splice_bounded =
  QCheck.Test.make ~name:"splice output stays under 256 bytes" ~count:200
    QCheck.(triple small_int small_string small_string)
    (fun (seed, a, b) ->
      let rng = Rng.make seed in
      String.length (Mutator.splice rng a b) <= 256)

(* {1 The fuzzer} *)

let fuzz ?(seed = 1) ?(execs = 30_000) name =
  let subject = Catalog.find name in
  (Afl.fuzz { Afl.default_config with seed; max_executions = execs } subject, subject)

let test_afl_finds_valid_csv () =
  let result, subject = fuzz "csv" in
  Alcotest.(check bool) "found valid inputs" true (List.length result.valid_inputs > 0);
  List.iter
    (fun input ->
      if not (Subject.accepts subject input) then
        Alcotest.failf "reported valid input %S is rejected" input)
    result.valid_inputs

let test_afl_deterministic () =
  let r1, _ = fuzz "ini" ~execs:10_000 in
  let r2, _ = fuzz "ini" ~execs:10_000 in
  Alcotest.(check (list string)) "same seed, same corpus" r1.valid_inputs r2.valid_inputs

let test_afl_budget () =
  let result, _ = fuzz "ini" ~execs:500 in
  Alcotest.(check int) "budget respected" 500 result.executions

let test_afl_queue_grows () =
  let result, _ = fuzz "json" ~execs:20_000 in
  Alcotest.(check bool) "interesting queue grows beyond the seed" true
    (result.queue_length > 1);
  Alcotest.(check bool) "bitmap populated" true (result.bitmap_density > 0)

let test_afl_misses_keywords () =
  (* The paper's central negative result for AFL: random mutation does
     not produce 4+-character keywords on json within a modest budget. *)
  let result, subject = fuzz "json" ~execs:50_000 in
  let tags = Pdf_eval.Token_report.found_tags subject result.valid_inputs in
  List.iter
    (fun kw ->
      Alcotest.(check bool) (Printf.sprintf "misses %s" kw) false (List.mem kw tags))
    [ "true"; "false"; "null" ]

let () =
  Alcotest.run "pdf_afl"
    [
      ( "bitmap",
        [
          Alcotest.test_case "new bits" `Quick test_bitmap_new_bits;
          Alcotest.test_case "hit buckets" `Quick test_bitmap_hit_buckets;
          Alcotest.test_case "builder reuse" `Quick test_bitmap_builder_reuse;
          Alcotest.test_case "count nonzero" `Quick test_bitmap_count;
          Alcotest.test_case "union is a distributed-merge join" `Quick
            test_bitmap_union;
          qtest prop_sparse_edge_count;
        ] );
      ( "mutator",
        [
          Alcotest.test_case "deterministic stage sizes" `Quick test_deterministic_counts;
          qtest prop_deterministic_changes;
          qtest prop_deterministic_preserves_length;
          qtest prop_havoc_bounded;
          qtest prop_havoc_deterministic;
          qtest prop_splice_bounded;
        ] );
      ( "fuzzer",
        [
          Alcotest.test_case "finds valid csv" `Quick test_afl_finds_valid_csv;
          Alcotest.test_case "deterministic" `Quick test_afl_deterministic;
          Alcotest.test_case "budget respected" `Quick test_afl_budget;
          Alcotest.test_case "queue grows" `Quick test_afl_queue_grows;
          Alcotest.test_case "misses long keywords" `Slow test_afl_misses_keywords;
        ] );
    ]
