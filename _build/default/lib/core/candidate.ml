type t = {
  data : string;
  repl : string;
  parents : int;
  parent_coverage : Pdf_instr.Coverage.t;
  avg_stack : float;
  path_count : int;
}

let seed data =
  {
    data;
    repl = "";
    parents = 0;
    parent_coverage = Pdf_instr.Coverage.empty;
    avg_stack = 0.0;
    path_count = 0;
  }

let pp ppf t =
  Format.fprintf ppf "%S (repl=%S, parents=%d, stack=%.1f)" t.data t.repl t.parents
    t.avg_stack
