module Rng = Pdf_util.Rng

let interesting_bytes =
  [ '\000'; '\001'; '\016'; '\032'; '\064'; '\100'; '\127'; '\128'; '\255';
    ' '; '\n'; '0'; '9'; 'a'; 'z'; 'A'; 'Z' ]

(* One copy per variant: mutate a private [Bytes] copy of the input and
   freeze it. The buffer never escapes [f] mutable, so the unsafe freeze
   is sound — the old [Bytes.of_string]/[Bytes.to_string] round trip
   copied every variant twice. *)
let with_copy input f =
  let b = Bytes.of_string input in
  f b;
  Bytes.unsafe_to_string b

let flip_bits input width =
  let n = String.length input * 8 in
  let variants = ref [] in
  for bit = 0 to n - width do
    let v =
      with_copy input (fun b ->
          for k = bit to bit + width - 1 do
            let byte = k / 8 and off = k mod 8 in
            Bytes.set b byte
              (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl off)))
          done)
    in
    variants := v :: !variants
  done;
  List.rev !variants

let flip_bytes input =
  List.init (String.length input) (fun i ->
      with_copy input (fun b ->
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF))))

let arith input =
  let variants = ref [] in
  String.iteri
    (fun i c ->
      let base = Char.code c in
      List.iter
        (fun delta ->
          let v =
            with_copy input (fun b ->
                Bytes.set b i (Char.chr ((base + delta) land 0xFF)))
          in
          variants := v :: !variants)
        [ 1; -1; 2; -2; 4; -4; 8; -8; 16; -16 ])
    input;
  List.rev !variants

let interesting input =
  let variants = ref [] in
  String.iteri
    (fun i current ->
      List.iter
        (fun c ->
          (* Skip no-op substitutions, as AFL's could_be_interest does. *)
          if c <> current then
            variants := with_copy input (fun b -> Bytes.set b i c) :: !variants)
        interesting_bytes)
    input;
  List.rev !variants

let deterministic input =
  if input = "" then []
  else
    flip_bits input 1 @ flip_bits input 2 @ flip_bits input 4 @ flip_bytes input
    @ arith input @ interesting input

let havoc_op rng input =
  let len = String.length input in
  match Rng.int rng 7 with
  | 0 when len > 0 ->
    (* flip one bit *)
    with_copy input (fun b ->
        let i = Rng.int rng len in
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8))))
  | 1 when len > 0 ->
    (* random byte *)
    with_copy input (fun b -> Bytes.set b (Rng.int rng len) (Rng.char rng))
  | 2 when len > 0 ->
    (* arithmetic *)
    with_copy input (fun b ->
        let i = Rng.int rng len in
        let delta = Rng.int rng 35 + 1 in
        let delta = if Rng.bool rng then delta else -delta in
        Bytes.set b i (Char.chr ((Char.code (Bytes.get b i) + delta) land 0xFF)))
  | 3 when len > 0 ->
    (* interesting byte *)
    with_copy input (fun b ->
        Bytes.set b (Rng.int rng len)
          (Rng.choose rng (Array.of_list interesting_bytes)))
  | 4 when len > 0 ->
    (* delete a byte *)
    let i = Rng.int rng len in
    String.sub input 0 i ^ String.sub input (i + 1) (len - i - 1)
  | 5 ->
    (* insert a byte *)
    let i = if len = 0 then 0 else Rng.int rng (len + 1) in
    String.sub input 0 i ^ String.make 1 (Rng.char rng)
    ^ String.sub input i (len - i)
  | _ when len > 0 ->
    (* duplicate a block *)
    let src = Rng.int rng len in
    let block_len = 1 + Rng.int rng (min 8 (len - src)) in
    let dst = Rng.int rng (len + 1) in
    String.sub input 0 dst
    ^ String.sub input src block_len
    ^ String.sub input dst (len - dst)
  | _ -> input ^ String.make 1 (Rng.char rng)

let havoc rng input =
  let rounds = 1 + Rng.int rng 8 in
  let rec go acc k = if k = 0 then acc else go (havoc_op rng acc) (k - 1) in
  let result = go input rounds in
  if String.length result > 256 then String.sub result 0 256 else result

let splice rng a b =
  if a = "" || b = "" then havoc rng (a ^ b)
  else
    let cut_a = Rng.int rng (String.length a) in
    let cut_b = Rng.int rng (String.length b) in
    let spliced = String.sub a 0 cut_a ^ String.sub b cut_b (String.length b - cut_b) in
    havoc rng spliced
