(** AFL-style edge-coverage bitmap.

    Execution traces are folded into a fixed-size map indexed by a hash
    of (previous block, current block); hit counts are classified into
    AFL's logarithmic buckets so loop iteration counts only matter
    coarsely. A fuzzing queue keeps an input exactly when its classified
    map lights up bits not yet in the accumulated "virgin" map.

    A single run touches only as many edges as its trace is long, so
    per-run maps are sparse lists built through a reusable {!builder} —
    the fuzzer executes hundreds of thousands of runs and must not zero
    64 KB per run. *)

type t
(** The dense accumulated ("virgin") map. *)

type sparse = (int * int) list
(** A single run's classified edges: (cell index, classified count). *)

type builder

val size : int
(** Number of map cells (65536, as in AFL). *)

val create : unit -> t
val builder : unit -> builder

val sparse_of_trace : builder -> int array -> sparse
(** Fold an outcome-id trace into classified sparse edges. The builder is
    reusable immediately afterwards. *)

val new_bits : virgin:t -> sparse -> bool
(** Does the run contain any classified bit absent from [virgin]? *)

val merge : into:t -> sparse -> unit
(** Accumulate a run into the virgin map. *)

val union : t -> t -> t
(** Bitwise union of two virgin maps, into a fresh map. Commutative,
    associative and idempotent — the merge a distributed campaign uses
    to combine per-worker AFL maps in any grouping or arrival order. *)

val equal : t -> t -> bool

val count_nonzero : t -> int
