examples/quickstart.ml: List Pdf_core Pdf_eval Pdf_instr Pdf_subjects Printf String
