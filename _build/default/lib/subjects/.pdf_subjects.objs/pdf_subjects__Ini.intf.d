lib/subjects/ini.mli: Subject
