lib/klee/solver.ml: Bytes Path_constraint Pdf_util String
