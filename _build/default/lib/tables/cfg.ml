type symbol = T of char | N of string

type production = { lhs : string; rhs : symbol list }

type t = { start : string; productions : production list; nts : string list }

let make ~start productions =
  let defined = List.sort_uniq compare (List.map (fun p -> p.lhs) productions) in
  let check_symbol = function
    | T _ -> ()
    | N name ->
      if not (List.mem name defined) then
        invalid_arg (Printf.sprintf "Cfg.make: nonterminal %S has no production" name)
  in
  List.iter (fun p -> List.iter check_symbol p.rhs) productions;
  if not (List.mem start defined) then
    invalid_arg (Printf.sprintf "Cfg.make: start symbol %S has no production" start);
  let nts =
    List.fold_left
      (fun acc p -> if List.mem p.lhs acc then acc else p.lhs :: acc)
      [] productions
    |> List.rev
  in
  { start; productions; nts }

let start t = t.start
let productions t = t.productions
let productions_of t name = List.filter (fun p -> p.lhs = name) t.productions
let nonterminals t = t.nts

let production_index t production =
  let rec find i = function
    | [] -> invalid_arg "Cfg.production_index: unknown production"
    | p :: rest -> if p == production || p = production then i else find (i + 1) rest
  in
  find 0 t.productions

let pp_symbol ppf = function
  | T c -> Format.fprintf ppf "%C" c
  | N name -> Format.fprintf ppf "<%s>" name

let pp ppf t =
  List.iter
    (fun p ->
      Format.fprintf ppf "<%s> ::=" p.lhs;
      if p.rhs = [] then Format.fprintf ppf " ε"
      else List.iter (fun sym -> Format.fprintf ppf " %a" pp_symbol sym) p.rhs;
      Format.fprintf ppf "@.")
    t.productions
