module Subject = Pdf_subjects.Subject
module Coverage = Pdf_instr.Coverage

type config = { budget_units : int; seeds : int list; verbose : bool }

let default_config = { budget_units = 2_000_000; seeds = [ 1 ]; verbose = false }

type cell = {
  outcome : Tool.outcome;
  coverage_percent : float;
  found_tags : string list;
}

type failure = {
  f_subject : string;
  f_tool : Tool.name;
  f_seed : int;
  f_error : string;
}

type t = {
  config : config;
  subjects : Subject.t list;
  cells : (string * (Tool.name * cell) list) list;
  failures : failure list;
}

let make_cell (subject : Subject.t) (outcome : Tool.outcome) =
  {
    outcome;
    coverage_percent = Coverage.percent outcome.valid_coverage subject.registry;
    found_tags = Token_report.found_tags subject outcome.valid_inputs;
  }

(* Best run selection, as in §5.1 ("we report the best run"): highest
   valid-input coverage first, then most tokens found. *)
let better a b =
  if a.coverage_percent <> b.coverage_percent then
    a.coverage_percent > b.coverage_percent
  else List.length a.found_tags > List.length b.found_tags

let run ?(tools = Tool.all) ?(jobs = 1) ?(retries = 2) ?trace config subjects =
  (* Flatten the (subject, tool, seed) grid: every cell is a pure
     function of its coordinates, so the list can be mapped over a
     domain pool. Parallel.map preserves input order, which makes the
     regrouping below — and therefore the reported cells — identical to
     the sequential nested-loop order for any [jobs]. *)
  let grid =
    List.concat_map
      (fun (subject : Subject.t) ->
        List.concat_map
          (fun tool ->
            List.map (fun seed -> (subject, tool, seed)) config.seeds)
          tools)
      subjects
  in
  (* With [trace], each cell records into its own in-memory sink headed
     by a [Cell] event; the buffers are concatenated in grid order after
     the parallel map, so the merged trace is identical for any [jobs]
     up to wall-clock timestamps. *)
  let tracing = trace <> None in
  let run_cell ((subject : Subject.t), tool, seed) =
    if config.verbose then
      Printf.eprintf "[experiment] %s on %s, seed %d...\n%!"
        (Tool.display_name tool) subject.name seed;
    let obs, contents =
      if tracing then begin
        let sink, contents = Pdf_obs.Trace.buffer () in
        Pdf_obs.Trace.emit sink
          {
            Pdf_obs.Event.t_ns = 0;
            exec = 0;
            ev =
              Pdf_obs.Event.Cell
                { tool = Tool.display_name tool; subject = subject.name; seed };
          };
        (Some (Pdf_obs.Observer.create ~sink ()), contents)
      end
      else (None, fun () -> "")
    in
    let outcome =
      Tool.run ?obs tool ~budget_units:config.budget_units ~seed subject
    in
    (* AFL and KLEE take no observer, so their segments would otherwise
       be empty; give them at least the run summary. *)
    (match obs with
     | Some o when tool <> Tool.Pfuzzer ->
       Pdf_obs.Observer.emit o ~exec:outcome.Tool.executions
         (Pdf_obs.Event.Run_done
            {
              valid = List.length outcome.Tool.valid_inputs;
              cov = Coverage.cardinal outcome.Tool.valid_coverage;
              wall_ns = int_of_float (outcome.Tool.wall_clock_s *. 1e9);
              execs_per_sec = outcome.Tool.execs_per_sec;
            })
     | _ -> ());
    (make_cell subject outcome, contents ())
  in
  (* One sick cell must not sink the grid: failed cells are retried on
     the main domain, and a cell whose every attempt raised is marked
     with the all-zero outcome instead of aborting the experiment. Retry
     telemetry goes straight to the merged trace (failures are rare and
     retries run sequentially after the parallel pass, so there is no
     per-cell buffer to race with). *)
  let retry_events = ref [] in
  let grid_arr = Array.of_list grid in
  let on_retry ~index ~attempt e =
    let (subject : Subject.t), tool, seed = grid_arr.(index) in
    if config.verbose then
      Printf.eprintf "[experiment] retrying %s on %s, seed %d (retry %d): %s\n%!"
        (Tool.display_name tool) subject.name seed attempt
        (Printexc.to_string e);
    retry_events :=
      {
        Pdf_obs.Event.t_ns = 0;
        exec = 0;
        ev =
          Pdf_obs.Event.Retry
            {
              what =
                Printf.sprintf "%s/%s/%d" (Tool.display_name tool) subject.name
                  seed;
              attempt;
              detail = Printexc.to_string e;
            };
      }
      :: !retry_events
  in
  let attempts = Parallel.map_retry ~jobs ~retries ~on_retry run_cell grid in
  let failures = ref [] in
  let traced =
    List.map2
      (fun ((subject : Subject.t), tool, seed) attempt ->
        match attempt with
        | Ok cell -> cell
        | Error e ->
          failures :=
            {
              f_subject = subject.name;
              f_tool = tool;
              f_seed = seed;
              f_error = Printexc.to_string e;
            }
            :: !failures;
          (make_cell subject (Tool.empty_outcome tool ~subject:subject.name), ""))
      grid attempts
  in
  (match trace with
   | None -> ()
   | Some oc ->
     List.iter (fun (_, buf) -> output_string oc buf) traced;
     let sink = Pdf_obs.Trace.jsonl oc in
     List.iter (Pdf_obs.Trace.emit sink) (List.rev !retry_events);
     flush oc);
  let results = Array.of_list (List.map fst traced) in
  let idx = ref 0 in
  let cells =
    List.map
      (fun (subject : Subject.t) ->
        let per_tool =
          List.map
            (fun tool ->
              let best = ref None in
              List.iter
                (fun _seed ->
                  let cell = results.(!idx) in
                  incr idx;
                  match !best with
                  | None -> best := Some cell
                  | Some b -> if better cell b then best := Some cell)
                config.seeds;
              match !best with
              | Some cell -> (tool, cell)
              | None -> invalid_arg "Experiment.run: empty seed list")
            tools
        in
        (subject.name, per_tool))
      subjects
  in
  { config; subjects; cells; failures = List.rev !failures }

let cell t subject tool = List.assoc tool (List.assoc subject t.cells)

let cell_equal a b =
  let outcome_equal (a : Tool.outcome) (b : Tool.outcome) =
    a.tool = b.tool && a.subject = b.subject
    && a.valid_inputs = b.valid_inputs
    && Coverage.equal a.valid_coverage b.valid_coverage
    && a.executions = b.executions
    && a.cache = b.cache
  in
  outcome_equal a.outcome b.outcome
  && a.coverage_percent = b.coverage_percent
  && a.found_tags = b.found_tags

let equal a b =
  List.length a.cells = List.length b.cells
  && List.for_all2
       (fun (sa, ta) (sb, tb) ->
         sa = sb
         && List.length ta = List.length tb
         && List.for_all2
              (fun (na, ca) (nb, cb) -> na = nb && cell_equal ca cb)
              ta tb)
       a.cells b.cells

let headline t ~min_len ~max_len =
  let tools = match t.cells with [] -> [] | (_, per_tool) :: _ -> List.map fst per_tool in
  List.map
    (fun tool ->
      let per_subject =
        List.map
          (fun (subject : Subject.t) ->
            (subject, (cell t subject.name tool).found_tags))
          t.subjects
      in
      (tool, Token_report.share ~min_len ~max_len per_subject))
    tools
