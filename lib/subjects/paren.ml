module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site

let registry = Site.create_registry "paren"
let s_parse = Site.block registry "parse"
let s_seq = Site.block registry "seq"

let pairs = [ ('(', ')'); ('[', ']'); ('{', '}'); ('<', '>') ]

let b_open =
  List.map (fun (o, _) -> (o, Site.branch registry (Printf.sprintf "open-%c?" o))) pairs

let b_close =
  List.map (fun (_, c) -> (c, Site.branch registry (Printf.sprintf "close-%c" c))) pairs

let b_empty = Site.branch registry "parse.empty?"
let b_trailing = Site.branch registry "parse.trailing?"

module Machine = Pdf_instr.Machine
module K = Helpers.K

(* seq consumes a (possibly empty) balanced sequence and stops at the
   first character that cannot open a bracket. *)
let rec seq (k : K.k) : K.k =
 fun ctx ->
  K.with_frame s_seq
    (fun k ->
      K.peek (fun c ->
          match c with
          | None -> k
          | Some c -> try_opens pairs c k))
    k ctx

and try_opens ps c (k : K.k) : K.k =
 fun ctx ->
  match ps with
  | [] -> k ctx
  | (o, close) :: rest ->
    if Ctx.eq ctx (List.assoc o b_open) c o then
      K.skip (seq (K.expect (List.assoc close b_close) close (seq k))) ctx
    else try_opens rest c k ctx

let machine : Machine.recognizer =
 fun ctx ->
  K.with_frame s_parse
    (fun k ->
      (* Probe with a peek, not [at_eof]: rejecting the empty input must
         register an EOF access so the fuzzer (and the EOF-hunger oracle
         check) can tell this rejection wants *more* input rather than
         different input. *)
      K.peek (fun c ctx ->
          if Ctx.branch ctx b_empty (c = None) then Ctx.reject ctx "empty input"
          else
            seq
              (K.peek (fun c ctx ->
                   match c with
                   | Some _ ->
                     ignore (Ctx.branch ctx b_trailing true);
                     Ctx.reject ctx "unbalanced input"
                   | None ->
                     ignore (Ctx.branch ctx b_trailing false);
                     k ctx))
              ctx))
    K.stop ctx

let parse ctx = Machine.run ctx machine

(* {1 Staged (compiled) form}

   Same grammar, same sites, same reject strings — but the per-pair site
   lookups ([List.assoc] on every comparison) and the reject messages
   are resolved into a flat array at staging, and the dispatch chain
   walks it by index. The chain stays an in-order [Ctx.eq] sequence over
   the same pairs: the comparison log is the observation record, so the
   probe order must match the interpreted twin exactly. *)
module C = Pdf_instr.Compiled

let compiled : C.t =
  let table =
    Array.of_list
      (List.map
         (fun (o, close) ->
           let msg_eof, msg = C.reject_msgs close in
           ( C.slot_eq (List.assoc o b_open) o,
             o,
             List.assoc close b_close,
             close,
             msg_eof,
             msg ))
         pairs)
  in
  let len = Array.length table in
  (* [seq] re-enters per invocation (the nesting is genuinely recursive),
     but each entry stages its frame and peek node once instead of per
     character, and bracket matching runs over the precomputed table. *)
  let rec seq (k : C.k) : C.k =
    C.with_frame s_seq
      (fun k ->
        C.peek (fun c ->
            match c with None -> k | Some c -> try_opens 0 c k))
      k
  and try_opens i c (k : C.k) : C.k =
   fun ctx ->
    if i >= len then k ctx
    else
      let slo, o, bc, close, msg_eof, msg = Array.unsafe_get table i in
      if Ctx.eq_slot ctx slo c o then
        C.skip (seq (C.expect_with ~msg_eof ~msg bc close (seq k))) ctx
      else try_opens (i + 1) c k ctx
  in
  C.with_frame s_parse
    (fun k ->
      let tail =
        C.peek (fun c ->
            fun ctx ->
              match c with
              | Some _ ->
                ignore (Ctx.branch ctx b_trailing true);
                Ctx.reject ctx "unbalanced input"
              | None ->
                ignore (Ctx.branch ctx b_trailing false);
                k ctx)
      in
      let body = seq tail in
      (* Same empty-input probe as the interpreted machine: a peek, so
         the rejection registers an EOF access. *)
      C.peek (fun c ->
          fun ctx ->
            if Ctx.branch ctx b_empty (c = None) then
              Ctx.reject ctx "empty input"
            else body ctx))
    C.stop

let tokens =
  List.concat_map
    (fun (o, c) -> [ Token.literal (String.make 1 o); Token.literal (String.make 1 c) ])
    pairs

let tokenize input =
  let tags = ref [] in
  let push tag = if not (List.mem tag !tags) then tags := tag :: !tags in
  String.iter
    (fun c ->
      match c with
      | '(' | ')' | '[' | ']' | '{' | '}' | '<' | '>' -> push (String.make 1 c)
      | _ -> ())
    input;
  List.rev !tags

let subject =
  {
    Subject.name = "paren";
    description = "well-balanced brackets (Dyck language, Section 3 ablation)";
    registry;
    parse;
    machine = Some machine;
    compiled = Some compiled;
    compiled_preferred = true;
    fuel = 100_000;
    tokens;
    tokenize;
    original_loc = 40;
  }
