lib/subjects/helpers.ml: List Pdf_instr Pdf_taint Pdf_util Printf
