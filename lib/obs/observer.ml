type t = {
  clock : unit -> int;
  t0 : int;
  sink : Trace.sink option;
  metrics : Metrics.t option;
  progress : Progress.t option;
  phase_ns : int array;  (* cumulative span per Phase.t, always kept *)
  phase_hist : Pdf_util.Stats.Histogram.t array option;  (* iff metrics *)
  snapshot_interval_ns : int;  (* 0 = snapshots disabled *)
  mutable max_executions : int;
  mutable outcomes : int;
  mutable last_snap_t : int;
  mutable last_snap_exec : int;
}

let create ?(clock = Clock.now_ns) ?sink ?metrics ?progress () =
  let t0 = clock () in
  {
    clock;
    t0;
    sink;
    metrics;
    progress;
    phase_ns = Array.make Phase.count 0;
    phase_hist =
      (match metrics with
       | None -> None
       | Some m ->
         Some
           (Array.of_list
              (List.map
                 (fun p -> Metrics.histogram m ("phase/" ^ Phase.name p ^ "_ns"))
                 Phase.all)));
    (* Snapshots fire on the progress cadence only: a trace without a
       live status line stays structurally deterministic (no
       time-driven events), which the jobs:1 ≡ jobs:N merged-trace
       check relies on. *)
    snapshot_interval_ns =
      (match progress with None -> 0 | Some p -> max 1 (Progress.interval_ns p));
    max_executions = 0;
    outcomes = 0;
    last_snap_t = 0;
    last_snap_exec = 0;
  }

let tracing t = t.sink <> None
let now_ns t = t.clock () - t.t0
let wall_ns = now_ns
let metrics t = t.metrics

let emit t ~exec ev =
  match t.sink with
  | None -> ()
  | Some sink -> sink.Trace.emit { Event.t_ns = now_ns t; exec; ev }

(* {1 Phase spans} *)

let span_start t = t.clock ()

let record_span t phase d =
  let i = Phase.index phase in
  t.phase_ns.(i) <- t.phase_ns.(i) + d;
  match t.phase_hist with
  | None -> ()
  | Some hists -> Pdf_util.Stats.Histogram.record hists.(i) d

let span_end t phase start = record_span t phase (t.clock () - start)

let span_next t phase start =
  let now = t.clock () in
  record_span t phase (now - start);
  now

let phase_totals t =
  List.map (fun p -> (Phase.name p, t.phase_ns.(Phase.index p))) Phase.all

(* {1 Run lifecycle} *)

let run_meta t ~subject ~outcomes ~seed ~max_executions ~incremental ~engine =
  t.max_executions <- max_executions;
  t.outcomes <- outcomes;
  emit t ~exec:0
    (Event.Run_meta
       { subject; outcomes; seed; max_executions; incremental; engine })

let snapshot_due t =
  t.snapshot_interval_ns > 0 && now_ns t - t.last_snap_t >= t.snapshot_interval_ns

let rate t ~now ~exec =
  let dt = now - t.last_snap_t in
  if dt <= 0 then 0.0 else float_of_int (exec - t.last_snap_exec) *. 1e9 /. float_of_int dt

let snapshot t ~exec ~depth ~valid ~cov ~hits ~misses ~plateau ~hangs ~crashes =
  let now = now_ns t in
  let execs_per_sec = rate t ~now ~exec in
  t.last_snap_t <- now;
  t.last_snap_exec <- exec;
  emit t ~exec
    (Event.Snapshot
       { execs_per_sec; depth; valid; cov; hits; misses; plateau; hangs; crashes });
  match t.progress with
  | None -> ()
  | Some p ->
    Progress.print p
      (Progress.render ~execs:exec ~max_executions:t.max_executions ~execs_per_sec
         ~depth ~valid ~cov ~outcomes:t.outcomes ~hits ~misses ~plateau ~hangs
         ~crashes)

let finish t ~exec ~valid ~cov =
  let wall = now_ns t in
  (if tracing t then begin
     let spans = phase_totals t in
     let spans =
       match t.phase_hist with
       | None -> spans
       | Some hists ->
         spans
         @ List.concat_map
             (fun p ->
               let h = hists.(Phase.index p) in
               if Pdf_util.Stats.Histogram.count h = 0 then []
               else
                 [
                   (Phase.name p ^ "_p50", Pdf_util.Stats.Histogram.percentile h 50.0);
                   (Phase.name p ^ "_p99", Pdf_util.Stats.Histogram.percentile h 99.0);
                 ])
             Phase.all
     in
     emit t ~exec (Event.Phases { spans; wall_ns = wall });
     emit t ~exec
       (Event.Run_done
          {
            valid;
            cov;
            wall_ns = wall;
            execs_per_sec =
              (if wall <= 0 then 0.0 else float_of_int exec *. 1e9 /. float_of_int wall);
          })
   end);
  match t.progress with None -> () | Some p -> Progress.finish p
