lib/instr/site.mli:
