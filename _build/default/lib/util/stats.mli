(** Small descriptive-statistics helpers for experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], nearest-rank method. *)

val ratio : int -> int -> float
(** [ratio num den] as a percentage in [0,100]; 0 when [den = 0]. *)
