test/test_afl.mli:
