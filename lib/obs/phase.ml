(* The fuzzer's per-execution work, partitioned for the wall-clock
   breakdown. Anything not covered by a span shows up as "other" in the
   trace report (loop bookkeeping, candidate construction, observer
   overhead itself). *)

type t = Exec | Cache | Score | Queue

let all = [ Exec; Cache; Score; Queue ]
let count = 4
let index = function Exec -> 0 | Cache -> 1 | Score -> 2 | Queue -> 3

let name = function
  | Exec -> "exec"  (* subject execution: parse of the candidate input *)
  | Cache -> "cache"  (* prefix-snapshot lookup, store and accounting *)
  | Score -> "score"  (* heuristic scoring, including full reranks *)
  | Queue -> "queue"  (* priority-queue push/pop/truncate maintenance *)
