lib/core/pfuzzer.ml: Candidate Hashtbl Heuristic List Option Pdf_instr Pdf_subjects Pdf_util String
