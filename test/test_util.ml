module Rng = Pdf_util.Rng
module Charset = Pdf_util.Charset
module Pqueue = Pdf_util.Pqueue
module Stats = Pdf_util.Stats
module Render = Pdf_util.Render

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* {1 Rng} *)

let test_rng_determinism () =
  let a = Rng.make 42 and b = Rng.make 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.make 1 and b = Rng.make 2 in
  let draws rng = List.init 8 (fun _ -> Rng.bits64 rng) in
  Alcotest.(check bool) "different seeds differ" false (draws a = draws b)

let test_rng_copy () =
  let a = Rng.make 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copies aligned" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.make 9 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs from parent" false
    (List.init 8 (fun _ -> Rng.bits64 a) = List.init 8 (fun _ -> Rng.bits64 b))

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.make seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float stays in [0, bound)" ~count:200
    QCheck.(pair small_int (float_range 0.001 100.0))
    (fun (seed, bound) ->
      let rng = Rng.make seed in
      let v = Rng.float rng bound in
      v >= 0.0 && v < bound)

let test_rng_printable () =
  let rng = Rng.make 3 in
  for _ = 1 to 500 do
    let c = Rng.printable rng in
    if not ((c >= ' ' && c <= '~') || c = '\n' || c = '\t') then
      Alcotest.failf "not printable: %C" c
  done

let prop_rng_shuffle_permutes =
  QCheck.Test.make ~name:"Rng.shuffle preserves the multiset" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let rng = Rng.make seed in
      let arr = Array.of_list xs in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let test_rng_choose () =
  let rng = Rng.make 11 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    let x = Rng.choose rng arr in
    Alcotest.(check bool) "member" true (Array.exists (( = ) x) arr)
  done;
  Alcotest.check_raises "empty choose_list" (Invalid_argument "Rng.choose_list: empty list")
    (fun () -> ignore (Rng.choose_list rng []))

(* {1 Charset} *)

let char_gen = QCheck.map Char.chr (QCheck.int_range 0 255)

let prop_charset_add_mem =
  QCheck.Test.make ~name:"mem after add" ~count:500 char_gen (fun c ->
      Charset.mem c (Charset.add c Charset.empty))

let prop_charset_remove =
  QCheck.Test.make ~name:"not mem after remove" ~count:500 char_gen (fun c ->
      not (Charset.mem c (Charset.remove c Charset.full)))

let prop_charset_union =
  QCheck.Test.make ~name:"union membership" ~count:500
    QCheck.(triple char_gen (small_list char_gen) (small_list char_gen))
    (fun (c, xs, ys) ->
      let a = Charset.of_list xs and b = Charset.of_list ys in
      Charset.mem c (Charset.union a b) = (Charset.mem c a || Charset.mem c b))

let prop_charset_inter =
  QCheck.Test.make ~name:"inter membership" ~count:500
    QCheck.(triple char_gen (small_list char_gen) (small_list char_gen))
    (fun (c, xs, ys) ->
      let a = Charset.of_list xs and b = Charset.of_list ys in
      Charset.mem c (Charset.inter a b) = (Charset.mem c a && Charset.mem c b))

let prop_charset_complement =
  QCheck.Test.make ~name:"complement membership" ~count:500
    QCheck.(pair char_gen (small_list char_gen))
    (fun (c, xs) ->
      let a = Charset.of_list xs in
      Charset.mem c (Charset.complement a) = not (Charset.mem c a))

let prop_charset_cardinal =
  QCheck.Test.make ~name:"cardinal counts distinct members" ~count:300
    QCheck.(small_list char_gen)
    (fun xs ->
      Charset.cardinal (Charset.of_list xs) = List.length (List.sort_uniq compare xs))

let test_charset_basics () =
  check Alcotest.int "full" 256 (Charset.cardinal Charset.full);
  check Alcotest.int "empty" 0 (Charset.cardinal Charset.empty);
  check Alcotest.int "digits" 10 (Charset.cardinal Charset.digits);
  check Alcotest.int "letters" 52 (Charset.cardinal Charset.letters);
  check Alcotest.int "printable" 95 (Charset.cardinal Charset.printable);
  Alcotest.(check bool) "range empty when inverted" true
    (Charset.is_empty (Charset.range 'z' 'a'));
  check
    Alcotest.(list char)
    "to_list sorted" [ 'a'; 'b'; 'c' ]
    (Charset.to_list (Charset.of_string "cba"));
  check Alcotest.(option char) "min_elt" (Some 'a') (Charset.min_elt (Charset.of_string "ba"));
  check Alcotest.(option char) "min_elt empty" None (Charset.min_elt Charset.empty)

let prop_charset_pick_member =
  QCheck.Test.make ~name:"pick returns a member" ~count:300
    QCheck.(pair small_int (small_list char_gen))
    (fun (seed, xs) ->
      let set = Charset.of_list xs in
      let rng = Rng.make seed in
      match Charset.pick rng set with
      | None -> Charset.is_empty set
      | Some c -> Charset.mem c set)

let test_charset_subset () =
  Alcotest.(check bool) "digits subset printable" true
    (Charset.subset Charset.digits Charset.printable);
  Alcotest.(check bool) "printable not subset digits" false
    (Charset.subset Charset.printable Charset.digits)

(* {1 Pqueue} *)

let prop_pqueue_pop_sorted =
  QCheck.Test.make ~name:"pops descend by priority" ~count:300
    QCheck.(small_list (float_bound_inclusive 100.0))
    (fun prios ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q p i) prios;
      let popped = ref [] in
      let rec go () =
        match Pqueue.pop q with
        | None -> ()
        | Some i ->
          popped := List.nth prios i :: !popped;
          go ()
      in
      go ();
      let order = List.rev !popped in
      (* Pops must be non-increasing and a permutation of the input;
         equal priorities may interleave by insertion order. *)
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | [] | [ _ ] -> true
      in
      non_increasing order && List.sort compare order = List.sort compare prios)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.push q 1.0 "first";
  Pqueue.push q 1.0 "second";
  Pqueue.push q 1.0 "third";
  check Alcotest.(option string) "tie: insertion order" (Some "first") (Pqueue.pop q);
  check Alcotest.(option string) "tie: insertion order" (Some "second") (Pqueue.pop q)

let test_pqueue_rerank () =
  let q = Pqueue.create () in
  Pqueue.push q 1.0 10;
  Pqueue.push q 2.0 20;
  Pqueue.push q 3.0 30;
  Pqueue.rerank q (fun v -> -.float_of_int v);
  check Alcotest.(option int) "rerank inverts order" (Some 10) (Pqueue.pop q);
  check Alcotest.(option int) "rerank inverts order" (Some 20) (Pqueue.pop q)

let test_pqueue_drop_worst () =
  let q = Pqueue.create () in
  for i = 1 to 10 do
    Pqueue.push q (float_of_int i) i
  done;
  Pqueue.drop_worst q 3;
  check Alcotest.int "truncated" 3 (Pqueue.length q);
  let popped = List.init 3 (fun _ -> Option.get (Pqueue.pop q)) in
  check Alcotest.(list int) "kept the best" [ 10; 9; 8 ] popped

let test_pqueue_empty () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  check Alcotest.(option int) "pop empty" None (Pqueue.pop q);
  check Alcotest.(option int) "peek empty" None (Pqueue.peek q)

(* Regression test for the heap's space leak: a popped (or truncated)
   entry must not stay strongly reachable from the queue's backing
   array. Track the payloads through weak pointers and demand the GC can
   reclaim them while the queue itself is still alive. *)
let test_pqueue_no_retention () =
  let q = Pqueue.create () in
  let w = Weak.create 2 in
  (* Local function so the payloads' only strong refs are the queue's. *)
  let fill () =
    let a = Bytes.make 16 'a' and b = Bytes.make 16 'b' in
    Weak.set w 0 (Some a);
    Weak.set w 1 (Some b);
    Pqueue.push q 2.0 a;
    Pqueue.push q 1.0 b
  in
  fill ();
  ignore (Pqueue.pop q);
  (* [b] leaves via truncation rather than popping. *)
  Pqueue.drop_worst q 0;
  Gc.full_major ();
  Alcotest.(check bool) "popped payload reclaimed" false (Weak.check w 0);
  Alcotest.(check bool) "truncated payload reclaimed" false (Weak.check w 1);
  Alcotest.(check bool) "queue still usable" true
    (Pqueue.push q 1.0 (Bytes.make 1 'c');
     Pqueue.pop q <> None)

let test_pqueue_iter_tolist () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v) [ (1.0, 1); (3.0, 3); (2.0, 2) ];
  let seen = ref 0 in
  Pqueue.iter (fun _ -> incr seen) q;
  check Alcotest.int "iter visits all" 3 !seen;
  check Alcotest.int "to_list length" 3 (List.length (Pqueue.to_list q));
  check Alcotest.(option int) "peek is max" (Some 3) (Pqueue.peek q)

(* {1 Stats} *)

let test_stats () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "mean empty" 0.0 (Stats.mean []);
  check (Alcotest.float 1e-9) "stddev constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check (Alcotest.float 1e-6) "stddev" (sqrt (2.0 /. 3.0)) (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "median" 2.0 (Stats.percentile 50.0 [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "p100" 3.0 (Stats.percentile 100.0 [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "ratio" 50.0 (Stats.ratio 1 2);
  check (Alcotest.float 1e-9) "ratio zero den" 0.0 (Stats.ratio 1 0)

(* Nearest-rank reference shared by the percentile properties below. *)
let nearest_rank p xs =
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let percentile_gen =
  QCheck.(
    pair (float_bound_inclusive 100.0)
      (list_of_size Gen.(1 -- 40) (float_bound_inclusive 1e6)))

let prop_percentile_nearest_rank =
  QCheck.Test.make ~name:"percentile is nearest-rank" ~count:500 percentile_gen
    (fun (p, xs) -> Stats.percentile p xs = nearest_rank p xs)

let prop_percentile_boundaries =
  QCheck.Test.make ~name:"percentile boundaries: p=0 is min, p=100 is max"
    ~count:300
    QCheck.(list_of_size Gen.(1 -- 40) (float_bound_inclusive 1e6))
    (fun xs ->
      Stats.percentile 0.0 xs = Stats.minimum xs
      && Stats.percentile 100.0 xs = Stats.maximum xs)

let prop_percentile_single =
  QCheck.Test.make ~name:"percentile of a single element is that element"
    ~count:200
    QCheck.(pair (float_bound_inclusive 100.0) (float_bound_inclusive 1e6))
    (fun (p, x) -> Stats.percentile p [ x ] = x)

let prop_percentile_ties =
  QCheck.Test.make ~name:"percentile of an all-equal list is that value"
    ~count:200
    QCheck.(
      triple (float_bound_inclusive 100.0) (int_range 1 30)
        (float_bound_inclusive 1e6))
    (fun (p, n, x) -> Stats.percentile p (List.init n (fun _ -> x)) = x)

(* {1 Stats.Histogram} *)

module Hist = Stats.Histogram

let hist_of xs =
  let h = Hist.create () in
  List.iter (Hist.record h) xs;
  h

let sample_gen = QCheck.(list_of_size Gen.(0 -- 60) (int_range 0 10_000_000))

let prop_hist_merge_associative =
  QCheck.Test.make ~name:"Histogram.merge is associative and commutative"
    ~count:200
    QCheck.(triple sample_gen sample_gen sample_gen)
    (fun (a, b, c) ->
      let ha = hist_of a and hb = hist_of b and hc = hist_of c in
      Hist.equal
        (Hist.merge (Hist.merge ha hb) hc)
        (Hist.merge ha (Hist.merge hb hc))
      && Hist.equal (Hist.merge ha hb) (Hist.merge hb ha)
      && Hist.equal (Hist.merge ha hb) (hist_of (a @ b)))

let prop_hist_bucket_monotone =
  QCheck.Test.make
    ~name:"Histogram buckets: lower <= v < next lower, index monotone"
    ~count:1000
    QCheck.(pair (int_range 0 max_int) (int_range 0 max_int))
    (fun (v, w) ->
      let i = Hist.bucket_index v in
      Hist.bucket_lower i <= v
      && (i + 1 >= Hist.num_buckets || v < Hist.bucket_lower (i + 1))
      && if v <= w then i <= Hist.bucket_index w else i >= Hist.bucket_index w)

let prop_hist_percentile_exact_small =
  QCheck.Test.make
    ~name:"Histogram percentile is exact below the unit-bucket limit"
    ~count:300
    QCheck.(
      pair (float_bound_inclusive 100.0)
        (list_of_size Gen.(1 -- 60) (int_range 0 63)))
    (fun (p, xs) ->
      let exact =
        int_of_float (nearest_rank p (List.map float_of_int xs))
      in
      Hist.percentile (hist_of xs) p = exact)

let prop_hist_percentile_bounded_error =
  QCheck.Test.make
    ~name:"Histogram percentile within 1/32 of exact nearest-rank"
    ~count:300
    QCheck.(
      pair (float_bound_inclusive 100.0)
        (list_of_size Gen.(1 -- 60) (int_range 0 50_000_000)))
    (fun (p, xs) ->
      let exact = int_of_float (nearest_rank p (List.map float_of_int xs)) in
      let approx = Hist.percentile (hist_of xs) p in
      approx <= exact
      && float_of_int (exact - approx) <= float_of_int exact /. 32.0 +. 1.0)

let prop_hist_accumulators =
  QCheck.Test.make ~name:"Histogram count/sum/min/max are exact" ~count:300
    sample_gen (fun xs ->
      let h = hist_of xs in
      Hist.count h = List.length xs
      && Hist.sum h = List.fold_left ( + ) 0 xs
      && (xs = [] || Hist.min_value h = List.fold_left min max_int xs)
      && (xs = [] || Hist.max_value h = List.fold_left max 0 xs))

(* {1 Render} *)

let render_to_string f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let found = ref false in
  for i = 0 to hl - nl do
    if String.sub haystack i nl = needle then found := true
  done;
  !found

let test_render_table () =
  let out =
    render_to_string (fun ppf ->
        Render.table ppf ~title:"T" ~header:[ "a"; "b" ]
          [ [ "1"; "22" ]; [ "333"; "4" ] ])
  in
  List.iter
    (fun cell ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" cell) true (contains out cell))
    [ "333"; "22"; "| a " ]

let test_render_table_arity () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Render.table: row arity mismatch") (fun () ->
      render_to_string (fun ppf ->
          Render.table ppf ~title:"T" ~header:[ "a"; "b" ] [ [ "1" ] ])
      |> ignore)

let test_render_bar_chart () =
  let out =
    render_to_string (fun ppf ->
        Render.bar_chart ppf ~title:"coverage" [ ("x", 50.0); ("y", 100.0) ])
  in
  Alcotest.(check bool) "nonempty" true (String.length out > 10)

let test_render_grouped () =
  let out =
    render_to_string (fun ppf ->
        Render.grouped_bar_chart ppf ~title:"t" ~series:[ "A"; "B" ]
          [ ("g", [ 1.0; 2.0 ]) ])
  in
  Alcotest.(check bool) "nonempty" true (String.length out > 10);
  Alcotest.check_raises "series mismatch"
    (Invalid_argument "Render.grouped_bar_chart: series arity mismatch") (fun () ->
      render_to_string (fun ppf ->
          Render.grouped_bar_chart ppf ~title:"t" ~series:[ "A" ] [ ("g", [ 1.0; 2.0 ]) ])
      |> ignore)

(* {1 Vec: copy-on-write prefix borrowing}

   Snapshots share a run's recording buffers through [Vec.of_prefix];
   resuming must never scribble on the parent's arrays. *)

module Vec = Pdf_util.Vec

let test_vec_of_prefix_cow () =
  let arr = [| 1; 2; 3; 4 |] in
  let v = Vec.of_prefix arr ~len:2 0 in
  check Alcotest.int "borrowed length" 2 (Vec.length v);
  check Alcotest.int "reads through" 2 (Vec.get v 1);
  Vec.push v 99;
  Vec.push v 100;
  check Alcotest.(array int) "borrowed array untouched" [| 1; 2; 3; 4 |] arr;
  check Alcotest.(list int) "prefix + pushes" [ 1; 2; 99; 100 ] (Vec.to_list v);
  (* Two vectors can borrow the same prefix independently (multi-shot
     snapshots). *)
  let w = Vec.of_prefix arr ~len:3 0 in
  Vec.push w 7;
  check Alcotest.(list int) "independent borrow" [ 1; 2; 3; 7 ] (Vec.to_list w);
  check Alcotest.(list int) "first borrow unaffected" [ 1; 2; 99; 100 ]
    (Vec.to_list v);
  (* Boundary lengths. *)
  let empty = Vec.of_prefix arr ~len:0 0 in
  check Alcotest.int "empty borrow" 0 (Vec.length empty);
  let full = Vec.of_prefix arr ~len:4 0 in
  check Alcotest.int "full borrow" 4 (Vec.length full);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Vec.of_prefix") (fun () ->
      ignore (Vec.of_prefix arr ~len:5 0))

(* {1 Atomic_file: crash-safe writes} *)

module Atomic_file = Pdf_util.Atomic_file

let in_temp_dir f =
  let dir = Filename.temp_file "pdf_atomic" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_atomic_write_read_roundtrip () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "out.bin" in
      let payload = "binary\x00payload\nwith newline" in
      Atomic_file.write_string path payload;
      check Alcotest.string "round-trip" payload (Atomic_file.read_string path);
      Atomic_file.write_string path "second";
      check Alcotest.string "replaces in place" "second"
        (Atomic_file.read_string path);
      check Alcotest.(array string) "no temp residue" [| "out.bin" |]
        (Sys.readdir dir))

let test_atomic_with_out_commit_and_abort () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "report.txt" in
      Atomic_file.with_out path (fun oc -> output_string oc "good");
      check Alcotest.string "committed on success" "good"
        (Atomic_file.read_string path);
      (match
         Atomic_file.with_out path (fun oc ->
             output_string oc "half-written";
             failwith "interrupted")
       with
      | () -> Alcotest.fail "with_out swallowed the exception"
      | exception Failure _ -> ());
      check Alcotest.string "previous content intact after abort" "good"
        (Atomic_file.read_string path);
      check Alcotest.(array string) "aborted temp removed" [| "report.txt" |]
        (Sys.readdir dir))

let test_atomic_stage_abort_idempotent () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "never.txt" in
      let st = Atomic_file.stage path in
      output_string (Atomic_file.channel st) "doomed";
      Atomic_file.abort st;
      Atomic_file.abort st;
      check Alcotest.bool "destination never created" false (Sys.file_exists path);
      check Alcotest.(array string) "directory clean" [||] (Sys.readdir dir))

let () =
  Alcotest.run "pdf_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "printable alphabet" `Quick test_rng_printable;
          Alcotest.test_case "choose" `Quick test_rng_choose;
          qtest prop_rng_int_bounds;
          qtest prop_rng_float_bounds;
          qtest prop_rng_shuffle_permutes;
        ] );
      ( "charset",
        [
          Alcotest.test_case "basics" `Quick test_charset_basics;
          Alcotest.test_case "subset" `Quick test_charset_subset;
          qtest prop_charset_add_mem;
          qtest prop_charset_remove;
          qtest prop_charset_union;
          qtest prop_charset_inter;
          qtest prop_charset_complement;
          qtest prop_charset_cardinal;
          qtest prop_charset_pick_member;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "rerank" `Quick test_pqueue_rerank;
          Alcotest.test_case "drop_worst" `Quick test_pqueue_drop_worst;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "iter/to_list/peek" `Quick test_pqueue_iter_tolist;
          Alcotest.test_case "no retention after pop" `Quick test_pqueue_no_retention;
          qtest prop_pqueue_pop_sorted;
        ] );
      ( "stats",
        [
          Alcotest.test_case "descriptive stats" `Quick test_stats;
          qtest prop_percentile_nearest_rank;
          qtest prop_percentile_boundaries;
          qtest prop_percentile_single;
          qtest prop_percentile_ties;
        ] );
      ( "histogram",
        [
          qtest prop_hist_merge_associative;
          qtest prop_hist_bucket_monotone;
          qtest prop_hist_percentile_exact_small;
          qtest prop_hist_percentile_bounded_error;
          qtest prop_hist_accumulators;
        ] );
      ("vec", [ Alcotest.test_case "of_prefix copy-on-write" `Quick test_vec_of_prefix_cow ]);
      ( "atomic-file",
        [
          Alcotest.test_case "write/read round-trip" `Quick
            test_atomic_write_read_roundtrip;
          Alcotest.test_case "with_out commits and aborts" `Quick
            test_atomic_with_out_commit_and_abort;
          Alcotest.test_case "abort is idempotent" `Quick
            test_atomic_stage_abort_idempotent;
        ] );
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_render_table;
          Alcotest.test_case "table arity" `Quick test_render_table_arity;
          Alcotest.test_case "bar chart" `Quick test_render_bar_chart;
          Alcotest.test_case "grouped chart" `Quick test_render_grouped;
        ] );
    ]
