let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let minimum = function
  | [] -> 0.0
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> 0.0
  | x :: xs -> List.fold_left max x xs

let percentile p = function
  | [] -> 0.0
  | xs ->
    let sorted = List.sort compare xs in
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    List.nth sorted (rank - 1)

let ratio num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

module Histogram = struct
  (* HDR-style log-linear buckets: values below [sub_count] get exact
     unit buckets; above, each power of two is split into [sub_count/2]
     linear sub-buckets, so the relative quantization error is bounded by
     2 / sub_count (~3.1%) everywhere. Bucket index and lower bound are
     pure integer arithmetic, no floats. *)
  let sub_bits = 6
  let sub_count = 1 lsl sub_bits (* 64 *)
  let half = sub_count / 2

  (* Highest bucket: values up to max_int, whose msb is 61 on 64-bit
     (OCaml ints are 63-bit). Keeping the bucket count tight means every
     bucket's lower bound — including the one-past-the-end boundary —
     stays representable without overflow. *)
  let num_buckets = sub_count + ((61 - sub_bits + 1) * half)

  let msb v =
    let v = ref v and r = ref 0 in
    if !v lsr 32 <> 0 then (v := !v lsr 32; r := !r + 32);
    if !v lsr 16 <> 0 then (v := !v lsr 16; r := !r + 16);
    if !v lsr 8 <> 0 then (v := !v lsr 8; r := !r + 8);
    if !v lsr 4 <> 0 then (v := !v lsr 4; r := !r + 4);
    if !v lsr 2 <> 0 then (v := !v lsr 2; r := !r + 2);
    if !v lsr 1 <> 0 then incr r;
    !r

  let bucket_index v =
    let v = if v < 0 then 0 else v in
    if v < sub_count then v
    else begin
      let bucket = msb v - sub_bits + 1 in
      let sub = v lsr bucket in
      sub_count + ((bucket - 1) * half) + (sub - half)
    end

  let bucket_lower i =
    if i < sub_count then i
    else begin
      let bucket = ((i - sub_count) / half) + 1 in
      let sub = half + ((i - sub_count) mod half) in
      sub lsl bucket
    end

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : int;
    mutable min_v : int;  (* max_int when empty *)
    mutable max_v : int;  (* -1 when empty *)
  }

  let create () =
    { counts = Array.make num_buckets 0; count = 0; sum = 0; min_v = max_int; max_v = -1 }

  let record t v =
    let v = if v < 0 then 0 else v in
    let i = bucket_index v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v

  let count t = t.count
  let sum t = t.sum
  let min_value t = if t.count = 0 then 0 else t.min_v
  let max_value t = if t.count = 0 then 0 else t.max_v
  let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

  let merge a b =
    let t = create () in
    for i = 0 to num_buckets - 1 do
      t.counts.(i) <- a.counts.(i) + b.counts.(i)
    done;
    t.count <- a.count + b.count;
    t.sum <- a.sum + b.sum;
    t.min_v <- min a.min_v b.min_v;
    t.max_v <- max a.max_v b.max_v;
    t

  let equal a b =
    a.count = b.count && a.sum = b.sum && a.min_v = b.min_v && a.max_v = b.max_v
    && a.counts = b.counts

  (* Nearest-rank percentile over bucket lower bounds, exact for values
     below [sub_count] (unit buckets). The extreme ranks return the exact
     tracked min/max so p=0/p=100 never suffer quantization. *)
  let percentile t p =
    if t.count = 0 then 0
    else begin
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
      let rank = max 1 (min t.count rank) in
      if rank = 1 && p <= 0.0 then min_value t
      else if rank = t.count then max_value t
      else begin
        let seen = ref 0 and i = ref 0 and res = ref (min_value t) in
        (try
           while !i < num_buckets do
             let c = t.counts.(!i) in
             if c > 0 then begin
               seen := !seen + c;
               if !seen >= rank then begin
                 res := bucket_lower !i;
                 raise Exit
               end
             end;
             incr i
           done
         with Exit -> ());
        max !res (min_value t)
      end
    end

  let to_list t =
    let rec go i acc =
      if i < 0 then acc
      else if t.counts.(i) > 0 then go (i - 1) ((bucket_lower i, t.counts.(i)) :: acc)
      else go (i - 1) acc
    in
    go (num_buckets - 1) []
end
