(* Reference recognizers, deliberately written in the most boring style
   available: an index-passing recursive descent over the plain input
   string, one local function per grammar rule, an exception for the
   first failure. No instrumentation, no taint, no sharing with
   lib/subjects — these are the independent second opinion the
   differential driver compares the instrumented parsers against. *)

module Cfg = Pdf_tables.Cfg

type t = {
  name : string;
  accepts : string -> bool;
  grammar : Cfg.t;
}

exception Fail

(* {1 paren} — non-empty balanced brackets over ()[]{}<>. *)

let paren_accepts s =
  let n = String.length s in
  let close_of = function
    | '(' -> ')'
    | '[' -> ']'
    | '{' -> '}'
    | '<' -> '>'
    | _ -> raise Fail
  in
  let is_open = function '(' | '[' | '{' | '<' -> true | _ -> false in
  (* Position after the longest balanced sequence starting at [i]. *)
  let rec seq i =
    if i < n && is_open s.[i] then begin
      let j = seq (i + 1) in
      if j < n && s.[j] = close_of s.[i] then seq (j + 1) else raise Fail
    end
    else i
  in
  n > 0 && (try seq 0 = n with Fail -> false)

(* {1 expr} — signed arithmetic over integers, [+]/[-], parentheses. *)

let expr_accepts s =
  let n = String.length s in
  let is_digit c = c >= '0' && c <= '9' in
  let rec expr i =
    let rec ops i =
      if i < n && (s.[i] = '+' || s.[i] = '-') then ops (factor (i + 1)) else i
    in
    ops (factor i)
  and factor i =
    (* At most one unary sign. *)
    let i = if i < n && (s.[i] = '+' || s.[i] = '-') then i + 1 else i in
    if i < n && is_digit s.[i] then begin
      let rec digits j = if j < n && is_digit s.[j] then digits (j + 1) else j in
      digits (i + 1)
    end
    else if i < n && s.[i] = '(' then begin
      let j = expr (i + 1) in
      if j < n && s.[j] = ')' then j + 1 else raise Fail
    end
    else raise Fail
  in
  (try expr 0 = n with Fail -> false)

(* {1 ini} — lines: blank, comment, [section], key = value. *)

let ini_accepts s =
  let n = String.length s in
  let is_inline_ws c = c = ' ' || c = '\t' || c = '\r' in
  let is_key c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '-'
  in
  let rec skip_ws i = if i < n && is_inline_ws s.[i] then skip_ws (i + 1) else i in
  let rec to_eol i = if i < n && s.[i] <> '\n' then to_eol (i + 1) else i in
  (* Position after one line's body: past the newline when the line form
     consumed it itself (blank line), otherwise at the newline/EOF. *)
  let line i =
    let i = skip_ws i in
    if i >= n then i
    else if s.[i] = '\n' then i + 1
    else if s.[i] = ';' || s.[i] = '#' then to_eol (i + 1)
    else if s.[i] = '[' then begin
      let rec name j =
        if j >= n then raise Fail (* unterminated header *)
        else if s.[j] = ']' then to_eol (j + 1)
        else if s.[j] = '\n' then raise Fail (* newline in header *)
        else name (j + 1)
      in
      name (i + 1)
    end
    else if is_key s.[i] then begin
      let rec key j = if j < n && is_key s.[j] then key (j + 1) else j in
      let j = skip_ws (key (i + 1)) in
      if j < n && s.[j] = '=' then to_eol (j + 1) else raise Fail
    end
    else raise Fail
  in
  let rec lines i =
    if i >= n then true
    else begin
      let j = line i in
      let j = if j < n && s.[j] = '\n' then j + 1 else j in
      lines j
    end
  in
  (try lines 0 with Fail -> false)

(* {1 csv} — records of comma-separated bare or quoted fields. *)

let csv_accepts s =
  let n = String.length s in
  (* Position after the closing quote of a quoted body; '""' continues
     the field. *)
  let rec quoted i =
    if i >= n then raise Fail (* unterminated *)
    else if s.[i] = '"' then
      if i + 1 < n && s.[i + 1] = '"' then quoted (i + 2) else i + 1
    else quoted (i + 1)
  in
  let field i =
    if i < n && s.[i] = '"' then quoted (i + 1)
    else begin
      let rec bare j =
        if j < n && s.[j] <> ',' && s.[j] <> '"' && s.[j] <> '\n' then bare (j + 1)
        else j
      in
      bare i
    end
  in
  let rec record i =
    let j = field i in
    if j < n && s.[j] = ',' then record (j + 1) else j
  in
  let rec file i =
    let j = record i in
    if j = n then true
    else if s.[j] = '\n' then j + 1 = n || file (j + 1)
    else raise Fail (* junk after a field, e.g. closed quote then text *)
  in
  (try file 0 with Fail -> false)

(* {1 json} — cJSON-style JSON: objects, arrays, strings with escapes
   and surrogate-pair checking, numbers (leading zeros allowed, as in
   the subject), the three keywords, whitespace, nothing trailing. *)

let json_accepts s =
  let n = String.length s in
  let is_ws c = c = ' ' || c = '\t' || c = '\r' || c = '\n' in
  let is_digit c = c >= '0' && c <= '9' in
  let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
  let hex_val c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise Fail
  in
  let rec ws i = if i < n && is_ws s.[i] then ws (i + 1) else i in
  let digits i =
    if i < n && is_digit s.[i] then begin
      let rec go j = if j < n && is_digit s.[j] then go (j + 1) else j in
      go (i + 1)
    end
    else raise Fail
  in
  let quad i =
    if i + 4 > n then raise Fail;
    let v = ref 0 in
    for k = i to i + 3 do
      v := (!v * 16) + hex_val s.[k]
    done;
    (!v, i + 4)
  in
  let escape i =
    if i >= n then raise Fail;
    match s.[i] with
    | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> i + 1
    | 'u' ->
      let v, j = quad (i + 1) in
      if v >= 0xD800 && v <= 0xDBFF then begin
        (* High surrogate: must pair with \uDC00..\uDFFF. *)
        if j + 1 < n && s.[j] = '\\' && s.[j + 1] = 'u' then begin
          let w, k = quad (j + 2) in
          if w >= 0xDC00 && w <= 0xDFFF then k else raise Fail
        end
        else raise Fail
      end
      else if v >= 0xDC00 && v <= 0xDFFF then raise Fail (* unpaired low *)
      else j
    | _ -> raise Fail
  in
  (* Position after the closing quote; [i] is just after the opener. *)
  let string_body i =
    let rec go i =
      if i >= n then raise Fail
      else
        match s.[i] with
        | '"' -> i + 1
        | '\\' -> go (escape (i + 1))
        | c when Char.code c < 0x20 -> raise Fail
        | _ -> go (i + 1)
    in
    go i
  in
  let number i =
    let i = if i < n && s.[i] = '-' then i + 1 else i in
    let i = digits i in
    let i = if i < n && s.[i] = '.' then digits (i + 1) else i in
    if i < n && (s.[i] = 'e' || s.[i] = 'E') then begin
      let i = i + 1 in
      let i = if i < n && (s.[i] = '+' || s.[i] = '-') then i + 1 else i in
      digits i
    end
    else i
  in
  let rec value i =
    if i >= n then raise Fail
    else
      match s.[i] with
      | '{' -> obj (ws (i + 1))
      | '[' -> arr (ws (i + 1))
      | '"' -> string_body (i + 1)
      | '-' -> number i
      | c when is_digit c -> number i
      | c when is_letter c ->
        let rec word j = if j < n && is_letter s.[j] then word (j + 1) else j in
        let j = word i in
        (match String.sub s i (j - i) with
         | "true" | "false" | "null" -> j
         | _ -> raise Fail)
      | _ -> raise Fail
  and obj i =
    if i < n && s.[i] = '}' then i + 1
    else begin
      let rec members i =
        let i = ws i in
        if not (i < n && s.[i] = '"') then raise Fail;
        let i = ws (string_body (i + 1)) in
        if not (i < n && s.[i] = ':') then raise Fail;
        let i = ws (value (ws (i + 1))) in
        if i < n && s.[i] = ',' then members (i + 1)
        else if i < n && s.[i] = '}' then i + 1
        else raise Fail
      in
      members i
    end
  and arr i =
    if i < n && s.[i] = ']' then i + 1
    else begin
      let rec elements i =
        let i = ws (value (ws i)) in
        if i < n && s.[i] = ',' then elements (i + 1)
        else if i < n && s.[i] = ']' then i + 1
        else raise Fail
      in
      elements i
    end
  in
  (try ws (value (ws 0)) = n with Fail -> false)

(* {1 Producer grammars for ini and csv}

   lib/tables ships character-level grammars for the other three
   languages (arith, dyck, json); these two cover a diverse valid subset
   of ini and csv. They need not be exhaustive — the differential driver
   also feeds mutants and random strings — but everything they generate
   should be valid, so the known-valid stream stays cheap. *)

let class_ nt chars rest =
  List.map (fun c -> { Cfg.lhs = nt; rhs = Cfg.T c :: rest }) chars

let chars_of_string s = List.init (String.length s) (String.get s)

let ini_grammar =
  let p lhs rhs = { Cfg.lhs; rhs } in
  let t c = Cfg.T c and n x = Cfg.N x in
  Cfg.make ~start:"file"
    ([
       p "file" [];
       p "file" [ n "line"; n "file" ];
       p "line" [ n "ws"; t '\n' ];
       p "line" [ n "ws"; t ';'; n "rest"; t '\n' ];
       p "line" [ n "ws"; t '#'; n "rest"; t '\n' ];
       p "line" [ n "ws"; t '['; n "name"; t ']'; n "rest"; t '\n' ];
       p "line" [ n "ws"; n "key"; n "ws"; t '='; n "value"; t '\n' ];
       p "ws" [];
       p "ws" [ t ' '; n "ws" ];
       p "ws" [ t '\t'; n "ws" ];
       p "name" [];
       p "key-rest" [];
       p "rest" [];
       p "value" [];
     ]
    @ class_ "name" (chars_of_string "abs1_ .") [ Cfg.N "name" ]
    @ class_ "key" (chars_of_string "kaZ09_.-") [ Cfg.N "key-rest" ]
    @ class_ "key-rest" (chars_of_string "ey1._-") [ Cfg.N "key-rest" ]
    @ class_ "rest" (chars_of_string "cmt =[;x") [ Cfg.N "rest" ]
    @ class_ "value" (chars_of_string "val 42;#]") [ Cfg.N "value" ])

let csv_grammar =
  let p lhs rhs = { Cfg.lhs; rhs } in
  let t c = Cfg.T c and n x = Cfg.N x in
  Cfg.make ~start:"file"
    ([
       p "file" [ n "record" ];
       p "file" [ n "record"; t '\n' ];
       p "file" [ n "record"; t '\n'; n "file" ];
       p "record" [ n "field" ];
       p "record" [ n "field"; t ','; n "record" ];
       p "field" [];
       p "field" [ t '"'; n "qbody" ];
       p "qbody" [ t '"' ];
       p "qbody" [ t '"'; t '"'; n "qbody" ];
       p "bare-rest" [];
     ]
    @ class_ "field" (chars_of_string "abc1 ;") [ Cfg.N "bare-rest" ]
    @ class_ "bare-rest" (chars_of_string "xyz2 .") [ Cfg.N "bare-rest" ]
    @ class_ "qbody" (chars_of_string "q,\nz ") [ Cfg.N "qbody" ])

let paren =
  { name = "paren"; accepts = paren_accepts; grammar = Pdf_tables.Grammars.dyck }

let expr =
  { name = "expr"; accepts = expr_accepts; grammar = Pdf_tables.Grammars.arith }

let ini = { name = "ini"; accepts = ini_accepts; grammar = ini_grammar }
let csv = { name = "csv"; accepts = csv_accepts; grammar = csv_grammar }

let json =
  { name = "json"; accepts = json_accepts; grammar = Pdf_tables.Grammars.json }

let all = [ expr; paren; ini; csv; json ]

let find name = List.find_opt (fun o -> o.name = name) all
