test/test_instr.ml: Alcotest Array Char List Pdf_instr Pdf_subjects Pdf_taint Pdf_util Printf QCheck QCheck_alcotest String
