(** The running example of the paper's Section 2: a parser for signed,
    parenthesised arithmetic expressions over [+] and [-], accepting
    inputs such as ["1"], ["+1"], ["1-1"] and ["(2-94)"]. *)

val subject : Subject.t
