examples/custom_subject.ml: List Pdf_core Pdf_instr Pdf_subjects Pdf_taint Pdf_util Printf
