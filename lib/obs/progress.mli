(** The AFL-style live status line.

    Rendering is a pure function of the sampled numbers so it can be
    golden-tested; painting overwrites in place on a tty and degrades to
    plain lines when redirected. *)

type t

val create : ?out:out_channel -> ?interval_s:float -> unit -> t
(** Defaults: stderr, one-second cadence. *)

val interval_ns : t -> int

val render :
  execs:int ->
  max_executions:int ->
  execs_per_sec:float ->
  depth:int ->
  valid:int ->
  cov:int ->
  outcomes:int ->
  hits:int ->
  misses:int ->
  plateau:int ->
  hangs:int ->
  crashes:int ->
  string
(** One status line: executions, throughput, queue depth, valid count,
    coverage percentage, cache hit rate ("-" before any consultation),
    plateau age in executions, and cumulative hang and crash counts. *)

val print : t -> string -> unit
val finish : t -> unit
(** Terminate a live line with a newline, if one is painted. *)
