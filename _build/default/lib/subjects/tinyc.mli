(** Tiny-C subject: the paper's [tinyC] — a C subset with single-letter
    variables, integer arithmetic, comparisons, assignments, blocks, and
    [if]/[else]/[while]/[do] statements. As in the paper, accepted
    programs are also executed (under a fuel budget, so the paper's
    [while(9);] infinite loop shows up as a hang verdict). *)

val subject : Subject.t
(** The paper-faithful subject: token-kind expectations in the parser
    (e.g. the [while] required after a [do] body) record branch coverage
    only, because tokenization breaks the taint flow (§7.2). *)

val subject_semantic : Subject.t
(** The §7.3 variant ["tinyc-sem"]: executing a program that reads a
    variable before assigning it is a (semantic) rejection. Inputs that
    pass the parser routinely fail this check, reproducing the paper's
    observation that delayed, context-sensitive constraints are beyond
    the purely syntactic search. *)

val subject_token_taints : Subject.t
(** The §7.2 future-work variant ["tinyc-tt"]: token expectations also
    emit a comparison event at the token's input position suggesting the
    expected spelling, restoring the substitution signal through the
    tokenizer. *)
