lib/tables/grammars.ml: Cfg Char Driver Format List Ll1 Pdf_subjects String
