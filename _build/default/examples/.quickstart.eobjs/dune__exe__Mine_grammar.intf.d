examples/mine_grammar.mli:
