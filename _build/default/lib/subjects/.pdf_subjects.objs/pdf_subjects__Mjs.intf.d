lib/subjects/mjs.mli: Subject
