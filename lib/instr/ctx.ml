module Tchar = Pdf_taint.Tchar
module Tstring = Pdf_taint.Tstring
module Taint = Pdf_taint.Taint
module Charset = Pdf_util.Charset
module Vec = Pdf_util.Vec

exception Reject of string
exception Out_of_fuel

(* All per-run observations land in growable buffers (Vec) rather than
   reversed lists: recording an outcome or a comparison event is an
   amortised O(1) array store with no per-element cons, and the final
   packaging into arrays is a single blit instead of a list reversal. *)
type t = {
  registry : Site.registry;
  mutable text : string; (* mutable only for {!rearm} *)
  mutable cursor : int;
  mutable eof_access : bool;
  comparisons : Comparison.t Vec.t;
  covered : Bytes.t; (* dense outcome presence, indexed by outcome id *)
  touched : int Vec.t; (* outcomes covered, first-occurrence order *)
  trace : int Vec.t;
  mutable stack : int;
  mutable max_stack : int;
  mutable fuel : int;
  track_comparisons : bool;
  track_trace : bool;
  track_frames : bool;
  frames : Frame.event Vec.t;
  (* Memoised [peek] result: parsers probe the same position repeatedly
     when trying alternatives, and each probe would otherwise allocate a
     fresh tainted character. *)
  mutable peeked : Tchar.t option;
  mutable peeked_at : int;
  (* Pre-tainted input (compiled tier): when [pretaint] is on, [peek]
     serves boxed tainted characters out of a (byte, position) memo — no
     allocation and, crucially, no mutable-store write barrier on the
     memo fields, which profiles as one of the hottest costs of the
     per-character loop. A [Tchar.t] is immutable and fully determined
     by its position and byte, so the memo survives [rearm] untouched:
     starting a run costs nothing, where rebuilding a pretainted copy of
     the input used to cost O(n) allocations per execution. Rows are
     created lazily per byte value and grown as longer inputs appear. *)
  pretaint : bool;
  pretaint_memo : Tchar.t option array array;
}

let dummy_comparison =
  {
    Comparison.trace_pos = 0;
    index = 0;
    kind = Comparison.Char_eq '\000';
    result = false;
    stack_depth = 0;
  }

let dummy_frame = Frame.Exit { pos = 0 }

let make ~registry ?(fuel = 100_000) ?(track_comparisons = true)
    ?(track_trace = false) ?(track_frames = false) ?(pretaint = false) text =
  {
    registry;
    text;
    cursor = 0;
    eof_access = false;
    comparisons = Vec.create dummy_comparison;
    covered = Bytes.make (2 * Site.site_count registry) '\000';
    touched = Vec.create 0;
    trace = Vec.create ~capacity:64 0;
    stack = 0;
    max_stack = 0;
    fuel;
    track_comparisons;
    track_trace;
    track_frames;
    frames = Vec.create dummy_frame;
    peeked = None;
    peeked_at = -1;
    pretaint;
    pretaint_memo = (if pretaint then Array.make 256 [||] else [||]);
  }

(* Reset a context for a fresh run over new input, keeping the allocated
   recording buffers (and their grown capacities). This is what makes an
   execution arena pay off: after warm-up, starting a run allocates
   nothing but the input string itself. Only contexts created by [make]
   may be rearmed — a [restore]d context borrows its buffers from a
   parent run, and [Vec.clear] dropping the borrow would silently detach
   it — callers ({!Runner}'s arena) guarantee this by construction. *)
let rearm t ~fuel text =
  t.text <- text;
  t.cursor <- 0;
  t.eof_access <- false;
  Vec.clear t.comparisons;
  Bytes.fill t.covered 0 (Bytes.length t.covered) '\000';
  Vec.clear t.touched;
  Vec.clear t.trace;
  t.stack <- 0;
  t.max_stack <- 0;
  t.fuel <- fuel;
  Vec.clear t.frames;
  t.peeked <- None;
  t.peeked_at <- -1

(* {2 Snapshot marks}

   A mark is the O(1) part of a suspension point: watermarks into the
   append-only recording buffers plus the scalar run state. Taken
   together with the (immutable) buffer prefixes below the watermarks it
   determines the full observation state of the run at that instant —
   the buffers only ever grow, so the prefixes survive unmodified until
   the end of the run and can be shared, not copied, when a snapshot is
   materialised. *)
type mark = {
  m_comparisons : int;
  m_touched : int;
  m_trace : int;
  m_frames : int;
  m_stack : int;
  m_max_stack : int;
  m_fuel : int;
  m_eof_access : bool;
}

let mark t =
  {
    m_comparisons = Vec.length t.comparisons;
    m_touched = Vec.length t.touched;
    m_trace = Vec.length t.trace;
    m_frames = Vec.length t.frames;
    m_stack = t.stack;
    m_max_stack = t.max_stack;
    m_fuel = t.fuel;
    m_eof_access = t.eof_access;
  }

(* Rebuild a context mid-parse from a snapshot: the recording buffers
   are borrowed prefixes of the parent run's packaged arrays
   (copy-on-write via {!Vec.of_prefix}), and the dense coverage
   presence map is reconstructed from the touched prefix — O(distinct
   outcomes covered in the prefix), bounded by the registry size. *)
let restore ~registry ~(mark : mark) ~cursor ~comparisons ~touched ~trace
    ~frames ?(track_comparisons = true) ?(track_trace = false)
    ?(track_frames = false) text =
  let covered = Bytes.make (2 * Site.site_count registry) '\000' in
  for i = 0 to mark.m_touched - 1 do
    Bytes.unsafe_set covered (Array.unsafe_get touched i) '\001'
  done;
  {
    registry;
    text;
    cursor;
    eof_access = mark.m_eof_access;
    comparisons = Vec.of_prefix comparisons ~len:mark.m_comparisons dummy_comparison;
    covered;
    touched = Vec.of_prefix touched ~len:mark.m_touched 0;
    trace = Vec.of_prefix trace ~len:mark.m_trace 0;
    stack = mark.m_stack;
    max_stack = mark.m_max_stack;
    fuel = mark.m_fuel;
    track_comparisons;
    track_trace;
    track_frames;
    frames = Vec.of_prefix frames ~len:mark.m_frames dummy_frame;
    peeked = None;
    peeked_at = -1;
    pretaint = false;
    pretaint_memo = [||];
  }

let[@inline] pos t = t.cursor
let input t = t.text
let[@inline] at_eof t = t.cursor >= String.length t.text
let[@inline] depth t = t.stack

let peek t =
  if at_eof t then begin
    t.eof_access <- true;
    None
  end
  else if t.pretaint then begin
    let code = Char.code (String.unsafe_get t.text t.cursor) in
    let row = Array.unsafe_get t.pretaint_memo code in
    if t.cursor < Array.length row then Array.unsafe_get row t.cursor
    else begin
      (* First time this byte value is read at a position this deep:
         (re)build the row with headroom. Rows only ever grow, and every
         slot of a row is filled at construction, so the hot path above
         is two loads and a bounds test. *)
      let cap = 2 * (t.cursor + 1) in
      let cap = if cap < 64 then 64 else cap in
      let ch = Char.unsafe_chr code in
      let row = Array.init cap (fun i -> Some (Tchar.input i ch)) in
      Array.unsafe_set t.pretaint_memo code row;
      Array.unsafe_get row t.cursor
    end
  end
  else if t.peeked_at = t.cursor then t.peeked
  else begin
    (* [at_eof] above established [cursor < length text]. *)
    let c = Some (Tchar.input t.cursor (String.unsafe_get t.text t.cursor)) in
    t.peeked <- c;
    t.peeked_at <- t.cursor;
    c
  end

let next t =
  match peek t with
  | None -> None
  | Some _ as c ->
    t.cursor <- t.cursor + 1;
    c

(* Outcome ids come from this run's registry, so [oid] is within
   [covered] by construction (it was sized from the same registry) and
   the accesses can skip their bound checks. *)
let[@inline] record_outcome t oid =
  if Bytes.unsafe_get t.covered oid = '\000' then begin
    Bytes.unsafe_set t.covered oid '\001';
    Vec.push t.touched oid
  end;
  if t.track_trace then Vec.push t.trace oid

let[@inline] cover t site = record_outcome t (Site.outcome site true)

let[@inline] branch t site cond =
  record_outcome t (Site.outcome site cond);
  cond

let enter_frame t site =
  cover t site;
  t.stack <- t.stack + 1;
  if t.stack > t.max_stack then t.max_stack <- t.stack;
  if t.track_frames then
    Vec.push t.frames (Frame.Enter { site; pos = t.cursor })

let exit_frame t =
  t.stack <- t.stack - 1;
  if t.track_frames then Vec.push t.frames (Frame.Exit { pos = t.cursor })

(* Hand-rolled protect: [Fun.protect] allocates a closure for [finally]
   on every call, and nonterminal entry is one of the hottest sites in a
   recursive-descent parse. *)
let with_frame t site f =
  enter_frame t site;
  match f () with
  | v ->
    exit_frame t;
    v
  | exception e ->
    exit_frame t;
    raise e

let[@inline] tick t =
  if t.fuel <= 0 then raise Out_of_fuel;
  t.fuel <- t.fuel - 1

let emit t ~index ~kind ~result =
  if t.track_comparisons then
    Vec.push t.comparisons
      {
        Comparison.trace_pos = Vec.length t.touched;
        index;
        kind;
        result;
        stack_depth = t.stack;
      }

(* A comparison against a tainted character: record the branch outcome
   always; log the comparison event only when the operand actually derives
   from the input (constants have nothing to substitute). The boolean is
   computed first and the event payload built only when it will actually
   be logged — constructing a [kind] block for an untracked run (or, for
   [one_of], a charset and a label per call) is wasted allocation on the
   hottest path. *)
let[@inline] emit_tainted t (c : Tchar.t) kind result =
  let index = Taint.max_index_raw c.taint in
  if index >= 0 then emit t ~index ~kind ~result

let eq t site c expected =
  let result = c.Tchar.ch = expected in
  if t.track_comparisons then
    emit_tainted t c (Comparison.Char_eq expected) result;
  branch t site result

let in_range t site c lo hi =
  let result = c.Tchar.ch >= lo && c.Tchar.ch <= hi in
  if t.track_comparisons then
    emit_tainted t c (Comparison.Char_range (lo, hi)) result;
  branch t site result

let in_set t site ~label c set =
  let result = Charset.mem c.Tchar.ch set in
  if t.track_comparisons then
    emit_tainted t c (Comparison.Char_set (set, label)) result;
  branch t site result

let one_of t site c chars =
  let result = String.contains chars c.Tchar.ch in
  if t.track_comparisons then
    emit_tainted t c
      (Comparison.Char_set (Charset.of_string chars, "one-of " ^ chars))
      result;
  branch t site result

(* Pre-resolved comparison slots: the compiled tier stages the two
   outcome ids and the event-kind block once, so the per-character path
   is a compare, a possible event push and a coverage store — no
   [Site.outcome] dispatch and no kind allocation per call. The
   observation sequence is identical to the [eq]/[in_range]/[in_set]/
   [one_of] forms above: event first, then outcome. *)
type slot = { sl_true : int; sl_false : int; sl_kind : Comparison.kind }

let slot site kind =
  {
    sl_true = Site.outcome site true;
    sl_false = Site.outcome site false;
    sl_kind = kind;
  }

let[@inline] slot_result t sl (c : Tchar.t) result =
  if t.track_comparisons then emit_tainted t c sl.sl_kind result;
  record_outcome t (if result then sl.sl_true else sl.sl_false);
  result

let[@inline] eq_slot t sl (c : Tchar.t) expected =
  slot_result t sl c (Char.equal c.Tchar.ch expected)

let[@inline] in_range_slot t sl (c : Tchar.t) lo hi =
  slot_result t sl c (c.Tchar.ch >= lo && c.Tchar.ch <= hi)

let[@inline] in_set_slot t sl (c : Tchar.t) set =
  slot_result t sl c (Charset.mem c.Tchar.ch set)

let[@inline] one_of_slot t sl (c : Tchar.t) chars =
  slot_result t sl c (String.contains chars c.Tchar.ch)

(* Instrumented strcmp. Walk the token and the keyword in lockstep,
   emitting a per-position character event; on a mismatch after partial
   progress, additionally emit the keyword-suffix event whose replacement
   completes the keyword in one substitution. *)
let rec str_eq t site (tok : Tstring.t) keyword =
  if not t.track_comparisons then begin
    (* Untracked fast path: plain lockstep compare, no taint fold and no
       event payloads. *)
    let tok_len = Tstring.length tok and kw_len = String.length keyword in
    let rec same i =
      if i >= tok_len then i >= kw_len
      else if i >= kw_len then false
      else (Tstring.get tok i).Tchar.ch = keyword.[i] && same (i + 1)
    in
    branch t site (same 0)
  end
  else str_eq_tracked t site tok keyword

and str_eq_tracked t site (tok : Tstring.t) keyword =
  let tok_len = Tstring.length tok and kw_len = String.length keyword in
  let next_input_index () =
    (* Position just past the token in the input: where an extension of
       the token would have to appear. *)
    match Taint.max_index (Tstring.taint tok) with
    | Some i -> Some (i + 1)
    | None -> None
  in
  let emit_char_event i result =
    let c = Tstring.get tok i in
    let index = Taint.max_index_raw c.Tchar.taint in
    if index >= 0 then emit t ~index ~kind:(Comparison.Char_eq keyword.[i]) ~result
  in
  let emit_suffix_event ~index ~offset =
    emit t ~index ~kind:(Comparison.Str_eq { expected = keyword; offset }) ~result:false
  in
  let rec walk i =
    if i >= tok_len && i >= kw_len then true (* full match *)
    else if i >= tok_len then begin
      (* Token is a proper prefix of the keyword: the mismatch is at the
         position just past the token. *)
      (match next_input_index () with
       | None -> ()
       | Some index ->
         emit t ~index ~kind:(Comparison.Char_eq keyword.[i]) ~result:false;
         if i > 0 then emit_suffix_event ~index ~offset:i);
      false
    end
    else if i >= kw_len then begin
      (* Token is longer than the keyword: no substitution can help at
         this position, but record the failed comparison for coverage. *)
      (match Taint.max_index (Tstring.get tok i).Tchar.taint with
       | None -> ()
       | Some index ->
         emit t ~index
           ~kind:(Comparison.Str_eq { expected = keyword; offset = kw_len })
           ~result:false);
      false
    end
    else if (Tstring.get tok i).Tchar.ch = keyword.[i] then begin
      emit_char_event i true;
      walk (i + 1)
    end
    else begin
      emit_char_event i false;
      (match Taint.max_index (Tstring.get tok i).Tchar.taint with
       | Some index when i > 0 -> emit_suffix_event ~index ~offset:i
       | Some _ | None -> ());
      false
    end
  in
  branch t site (walk 0)

(* §7.2 token-taint recovery: a parser that demands a specific token can
   report the expectation at the token's input position even though the
   token value itself carries no direct data flow. On mismatch the event's
   replacement is the expected spelling, to be spliced at [at]. *)
let expect_token t site ~at ~spelling ~matched =
  if not matched then
    emit t ~index:at
      ~kind:(Comparison.Str_eq { expected = spelling; offset = 0 })
      ~result:false;
  branch t site matched

let reject _t reason = raise (Reject reason)

let comparisons t = Vec.to_list t.comparisons
let comparisons_array t = Vec.to_array t.comparisons
let coverage t = Coverage.of_iter (fun f -> Vec.iter f t.touched)
let trace t = Vec.to_array t.trace
let touched t = Vec.to_array t.touched
let eof_access t = t.eof_access
let max_depth t = t.max_stack
let frames t = Vec.to_array t.frames
