(** Test-input production for the differential driver.

    Known-valid inputs are sampled from the oracle's character-level
    grammar (reusing {!Pdf_grammar.Generator} over a converted
    {!Pdf_tables.Cfg}) and filtered through the oracle — the grammars
    over-approximate slightly (e.g. the table-JSON grammar has no
    surrogate-pair rule), so the oracle has the last word. Known-invalid
    inputs are oracle-rejected mutants of valid ones, which keeps them
    {e near} the language boundary where disagreements live. *)

val grammar_of_cfg : Pdf_tables.Cfg.t -> Pdf_grammar.Grammar.t
(** Character terminals become single-character terminal strings. *)

val valid : Pdf_util.Rng.t -> Oracle.t -> string option
(** A grammar-derived input the oracle accepts, or [None] when the
    bounded retry budget only produced oracle-rejected sentences. *)

val invalid : Pdf_util.Rng.t -> Oracle.t -> string option
(** A mutant of a valid input that the oracle rejects. *)

val random_input : Pdf_util.Rng.t -> string
(** A short random string over the fuzzer's printable alphabet. *)
