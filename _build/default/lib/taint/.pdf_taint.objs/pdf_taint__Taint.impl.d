lib/taint/taint.ml: Format Int List Set String
