(* CLOCK_MONOTONIC via bechamel's noalloc stub: one C call, nanosecond
   resolution, immune to wall-clock adjustments. All telemetry
   timestamps are taken here so traces are comparable across sinks. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())
