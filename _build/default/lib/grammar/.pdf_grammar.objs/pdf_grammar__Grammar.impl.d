lib/grammar/grammar.ml: Format List Map Option String
