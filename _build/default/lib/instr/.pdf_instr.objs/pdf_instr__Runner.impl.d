lib/instr/runner.ml: Array Comparison Coverage Ctx Format Frame List
