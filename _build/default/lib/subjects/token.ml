type t = { tag : string; length : int }

let make tag length = { tag; length }
let literal s = { tag = s; length = String.length s }
let of_length n tokens = List.filter (fun t -> t.length = n) tokens

let lengths tokens =
  List.sort_uniq compare (List.map (fun t -> t.length) tokens)
