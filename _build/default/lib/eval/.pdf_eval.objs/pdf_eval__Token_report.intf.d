lib/eval/token_report.mli: Pdf_subjects
