lib/util/rng.mli:
