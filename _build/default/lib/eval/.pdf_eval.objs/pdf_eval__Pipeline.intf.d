lib/eval/pipeline.mli: Pdf_instr Pdf_subjects Tool
