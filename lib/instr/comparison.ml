module Charset = Pdf_util.Charset
module Rng = Pdf_util.Rng

type kind =
  | Char_eq of char
  | Char_range of char * char
  | Char_set of Charset.t * string
  | Str_eq of { expected : string; offset : int }

type t = {
  trace_pos : int;
  index : int;
  kind : kind;
  result : bool;
  stack_depth : int;
}

(* Small satisfying sets (symbol alphabets, digits) are enumerated in
   full — the parser really compared against each of those values.
   Proposing every member of e.g. a 95-character printable-set comparison
   would flood the queue, so large classes are sampled. *)
let enumerate_bound = 16
let sample_bound = 4

(* Replacement strings are overwhelmingly single characters, and
   [replacements] runs for every comparison a rejected input logged —
   interning the 256 singletons means proposing one never allocates the
   string again (the list cells still do). *)
let singleton = Array.init 256 (fun i -> String.make 1 (Char.chr i))

let sample_set rng set =
  let n = Charset.cardinal set in
  if n = 0 then []
  else if n <= enumerate_bound then begin
    (* Enumerate ascending, built back to front from the interned
       singletons — same list [to_list]-then-map produced, without the
       intermediate char list or fresh strings. *)
    let acc = ref [] in
    for c = 255 downto 0 do
      if Charset.mem (Char.chr c) set then acc := singleton.(c) :: !acc
    done;
    !acc
  end
  else
    let rec draw acc k =
      if k = 0 then acc
      else
        match Charset.pick rng set with
        | None -> acc
        | Some c ->
          let s = singleton.(Char.code c) in
          if List.mem s acc then draw acc k else draw (s :: acc) (k - 1)
    in
    draw [] sample_bound

let replacements rng t =
  match t.kind with
  | Char_eq c -> [ singleton.(Char.code c) ]
  | Char_range (lo, hi) -> sample_set rng (Charset.range lo hi)
  | Char_set (set, _) -> sample_set rng set
  | Str_eq { expected; offset } ->
    if offset >= String.length expected then []
    else [ String.sub expected offset (String.length expected - offset) ]

let satisfying_set = function
  | Char_eq c -> Charset.singleton c
  | Char_range (lo, hi) -> Charset.range lo hi
  | Char_set (set, _) -> set
  | Str_eq { expected; offset } ->
    if offset >= String.length expected then Charset.empty
    else Charset.singleton expected.[offset]

let char_constraint t =
  let sat = satisfying_set t.kind in
  if t.result then sat else Charset.complement sat

let pp ppf t =
  let kind_str =
    match t.kind with
    | Char_eq c -> Printf.sprintf "== %C" c
    | Char_range (lo, hi) -> Printf.sprintf "in [%C..%C]" lo hi
    | Char_set (_, label) -> Printf.sprintf "in %s" label
    | Str_eq { expected; offset } -> Printf.sprintf "streq %S@%d" expected offset
  in
  Format.fprintf ppf "idx=%d %s -> %b (depth %d)" t.index kind_str t.result
    t.stack_depth
