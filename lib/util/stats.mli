(** Small descriptive-statistics helpers for experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], nearest-rank method. *)

val ratio : int -> int -> float
(** [ratio num den] as a percentage in [0,100]; 0 when [den = 0]. *)

(** HDR-style bucketed histogram over non-negative integers (negative
    samples clamp to 0), built for nanosecond spans: recording is O(1)
    and allocation-free, quantiles cost one pass over a fixed bucket
    array, and merging is associative — shards can be combined in any
    grouping with identical results.

    Buckets are log-linear: exact unit buckets below 64, then each
    power of two split into 32 linear sub-buckets, bounding relative
    quantization error by 1/32 everywhere. *)
module Histogram : sig
  type t

  val create : unit -> t
  val record : t -> int -> unit

  val count : t -> int
  val sum : t -> int
  (** Exact (not quantized) sum of recorded values. *)

  val min_value : t -> int
  (** Exact minimum; 0 when empty. *)

  val max_value : t -> int
  (** Exact maximum; 0 when empty. *)

  val mean : t -> float

  val merge : t -> t -> t
  (** Associative and commutative; neither argument is mutated. *)

  val equal : t -> t -> bool

  val percentile : t -> float -> int
  (** [percentile t p] with [p] in [0,100], nearest-rank over bucket
      lower bounds: exact for samples below 64 and for the extreme
      ranks (which return the tracked min/max), within the bucket's
      quantization bound otherwise. 0 when empty. *)

  val to_list : t -> (int * int) list
  (** Non-empty buckets as [(lower_bound, count)], increasing. *)

  (** Bucket geometry, exposed for property tests. *)

  val num_buckets : int
  val bucket_index : int -> int
  val bucket_lower : int -> int
end
