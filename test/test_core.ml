module Pfuzzer = Pdf_core.Pfuzzer
module Heuristic = Pdf_core.Heuristic
module Candidate = Pdf_core.Candidate
module Coverage = Pdf_instr.Coverage
module Catalog = Pdf_subjects.Catalog
module Subject = Pdf_subjects.Subject

let qtest = QCheck_alcotest.to_alcotest

(* {1 Heuristic} *)

let candidate ?(data = "ab") ?(repl = "b") ?(parents = 1) ?(cov = [])
    ?(avg_stack = 0.0) ?(path_count = 0) () =
  {
    Candidate.data;
    repl;
    parents;
    parent_coverage = Coverage.of_list cov;
    avg_stack;
    path_count;
  }

let score ?(variant = Heuristic.Prose) ?(vbr = Coverage.empty) c =
  Heuristic.score variant ~vbr c

let test_heuristic_terms () =
  let base = candidate () in
  Alcotest.(check bool) "new coverage raises priority" true
    (score (candidate ~cov:[ 1; 2; 3 ] ()) > score base);
  Alcotest.(check bool) "longer input lowers priority" true
    (score (candidate ~data:"abcdef" ()) < score base);
  Alcotest.(check bool) "longer replacement raises priority" true
    (score (candidate ~repl:"while" ()) > score base);
  Alcotest.(check bool) "deeper stack lowers priority" true
    (score (candidate ~avg_stack:5.0 ()) < score base);
  Alcotest.(check bool) "repeated path lowers priority" true
    (score (candidate ~path_count:4 ()) < score base)

let test_heuristic_vbr () =
  let c = candidate ~cov:[ 1; 2; 3 ] () in
  Alcotest.(check bool) "already-covered branches stop counting" true
    (score ~vbr:(Coverage.of_list [ 1; 2 ]) c < score c)

let test_heuristic_parents_sign () =
  let shallow = candidate ~parents:0 () and deep = candidate ~parents:5 () in
  Alcotest.(check bool) "prose: fewer parents rank higher" true
    (score ~variant:Heuristic.Prose shallow > score ~variant:Heuristic.Prose deep);
  Alcotest.(check bool) "paper formula: more parents rank higher" true
    (score ~variant:Heuristic.Paper_formula deep
     > score ~variant:Heuristic.Paper_formula shallow)

let test_heuristic_variants () =
  Alcotest.(check int) "eight variants" 8 (List.length Heuristic.all);
  let long = candidate ~data:(String.make 30 'x') () in
  let short = candidate ~data:"x" () in
  Alcotest.(check bool) "dfs prefers long" true
    (score ~variant:Heuristic.Dfs long > score ~variant:Heuristic.Dfs short);
  Alcotest.(check bool) "bfs prefers short" true
    (score ~variant:Heuristic.Bfs short > score ~variant:Heuristic.Bfs long);
  Alcotest.(check bool) "no_length ignores length" true
    (score ~variant:Heuristic.No_length long = score ~variant:Heuristic.No_length short)

let test_candidate_seed () =
  let c = Candidate.seed "x" in
  Alcotest.(check string) "data" "x" c.Candidate.data;
  Alcotest.(check string) "no replacement" "" c.Candidate.repl;
  Alcotest.(check int) "no parents" 0 c.Candidate.parents

(* {1 The fuzzer} *)

let fuzz ?(seed = 1) ?(execs = 2000) ?(heuristic = Heuristic.Prose) name =
  let subject = Catalog.find name in
  ( Pfuzzer.fuzz
      { Pfuzzer.default_config with seed; max_executions = execs; heuristic }
      subject,
    subject )

let test_finds_expr_inputs () =
  let result, subject = fuzz "expr" in
  Alcotest.(check bool) "finds several valid inputs" true
    (List.length result.valid_inputs >= 5);
  List.iter
    (fun input ->
      if not (Subject.accepts subject input) then
        Alcotest.failf "reported valid input %S is rejected" input)
    result.valid_inputs

let test_valid_inputs_cover_new_code () =
  (* Each reported input must have contributed new coverage at the time
     it was found, so the union grows strictly along the list. *)
  let result, subject = fuzz "expr" in
  let _ =
    List.fold_left
      (fun acc input ->
        let run = Subject.run subject input in
        let grown = Coverage.union acc run.Pdf_instr.Runner.coverage in
        if Coverage.cardinal grown = Coverage.cardinal acc then
          Alcotest.failf "input %S added no coverage" input;
        grown)
      Coverage.empty result.valid_inputs
  in
  ()

let test_deterministic () =
  let r1, _ = fuzz "json" ~execs:1500 in
  let r2, _ = fuzz "json" ~execs:1500 in
  Alcotest.(check (list string)) "same seed, same valid inputs" r1.valid_inputs
    r2.valid_inputs

let test_seed_sensitivity () =
  let r1, _ = fuzz "expr" ~seed:1 in
  let r2, _ = fuzz "expr" ~seed:2 in
  (* Extremely unlikely to coincide exactly. *)
  Alcotest.(check bool) "different seeds explore differently" true
    (r1.valid_inputs <> r2.valid_inputs || r1.executions <> r2.executions)

let test_budget_respected () =
  let result, _ = fuzz "expr" ~execs:100 in
  Alcotest.(check int) "exactly the budget" 100 result.executions

let test_finds_json_keywords () =
  let result, subject = fuzz "json" ~execs:20_000 ~seed:1 in
  let tags = Pdf_eval.Token_report.found_tags subject result.valid_inputs in
  List.iter
    (fun kw ->
      Alcotest.(check bool) (Printf.sprintf "finds %s" kw) true (List.mem kw tags))
    [ "true"; "false"; "null" ]

let test_finds_paren_nesting () =
  let result, _ = fuzz "paren" ~execs:4000 in
  Alcotest.(check bool) "finds balanced inputs" true (List.length result.valid_inputs > 0)

let test_first_valid_at () =
  let result, _ = fuzz "expr" in
  match result.first_valid_at with
  | None -> Alcotest.fail "no valid input found"
  | Some n ->
    Alcotest.(check bool) "within budget" true (n >= 1 && n <= result.executions)

let test_queue_stats () =
  let result, _ = fuzz "expr" in
  Alcotest.(check bool) "candidates were created" true (result.candidates_created > 0);
  Alcotest.(check bool) "queue grew" true (result.queue_peak > 0)

let test_small_queue_bound () =
  let subject = Catalog.find "expr" in
  let result =
    Pfuzzer.fuzz
      { Pfuzzer.default_config with max_executions = 1500; queue_bound = 50 }
      subject
  in
  Alcotest.(check bool) "still finds inputs with a tiny queue" true
    (List.length result.valid_inputs > 0)

let test_dedupe_off () =
  let subject = Catalog.find "expr" in
  let result =
    Pfuzzer.fuzz
      { Pfuzzer.default_config with max_executions = 1500; dedupe = false }
      subject
  in
  Alcotest.(check bool) "works without dedupe" true
    (List.length result.valid_inputs > 0)

let test_max_input_len () =
  let subject = Catalog.find "paren" in
  let result =
    Pfuzzer.fuzz
      { Pfuzzer.default_config with max_executions = 3000; max_input_len = 4 }
      subject
  in
  List.iter
    (fun input ->
      Alcotest.(check bool) "respects max length" true (String.length input <= 4))
    result.valid_inputs

let test_fuzzer_on_table_subject () =
  (* The core algorithm is engine-agnostic: it works unchanged on the
     table-driven driver because it only consumes run observations. *)
  let result =
    Pfuzzer.fuzz
      { Pfuzzer.default_config with max_executions = 3000 }
      Pdf_tables.Grammars.table_expr
  in
  Alcotest.(check bool) "finds valid inputs on a table parser" true
    (List.length result.valid_inputs >= 3)

let test_initial_inputs_seed_queue () =
  (* A seeded corpus lets the fuzzer skip the discovery phase: with the
     paper's arithmetic subject and a seed input exercising parentheses,
     the paren-handling branches are covered within a small budget. *)
  let subject = Catalog.find "expr" in
  let config = { Pfuzzer.default_config with max_executions = 400 } in
  let unseeded = Pfuzzer.fuzz config subject in
  let seeded = Pfuzzer.fuzz ~initial_inputs:[ "(2-94)" ] config subject in
  let paren_covered (r : Pfuzzer.result) =
    List.exists (fun input -> String.contains input '(') r.valid_inputs
  in
  Alcotest.(check bool) "seeded run reaches parentheses" true (paren_covered seeded);
  (* The unseeded run with the same tiny budget almost surely has not;
     this is a smoke check of the seeding path, not a strong claim. *)
  ignore unseeded

(* {1 Incremental execution} *)

let test_incremental_equivalence () =
  (* The prefix-snapshot cache is a pure optimisation: with it on and
     off, the same seed must produce bit-identical per-execution streams
     and results. *)
  let subject = Catalog.find "json" in
  let stream incremental =
    let runs = ref [] in
    let result =
      Pfuzzer.fuzz
        ~on_execution:(fun run -> runs := run :: !runs)
        { Pfuzzer.default_config with max_executions = 2000; incremental }
        subject
    in
    (result, List.rev !runs)
  in
  let on, runs_on = stream true in
  let off, runs_off = stream false in
  Alcotest.(check (list string)) "same valid inputs" off.valid_inputs on.valid_inputs;
  Alcotest.(check int) "same executions" off.executions on.executions;
  Alcotest.(check bool) "same valid coverage" true
    (Coverage.equal off.valid_coverage on.valid_coverage);
  Alcotest.(check int) "same stream length" (List.length runs_off)
    (List.length runs_on);
  List.iter2
    (fun (a : Pdf_instr.Runner.run) (b : Pdf_instr.Runner.run) ->
      if
        a.input <> b.input || a.verdict <> b.verdict
        || a.comparisons <> b.comparisons
        || not (Coverage.equal a.coverage b.coverage)
        || a.touched <> b.touched || a.eof_access <> b.eof_access
      then Alcotest.failf "streams diverge at input %S" a.input)
    runs_on runs_off

let test_cache_stats_sanity () =
  let subject = Catalog.find "expr" in
  let run incremental =
    Pfuzzer.fuzz
      { Pfuzzer.default_config with max_executions = 2000; incremental }
      subject
  in
  let on = run true in
  let c = on.Pfuzzer.cache in
  Alcotest.(check bool) "cache consulted" true (c.hits + c.misses > 0);
  Alcotest.(check bool) "mostly hits on the extension workload" true
    (c.hits > c.misses);
  Alcotest.(check bool) "hits save prefix characters" true (c.chars_saved > 0);
  Alcotest.(check bool) "consultations bounded by executions" true
    (c.hits + c.misses <= on.executions);
  let off = run false in
  Alcotest.(check bool) "cache inert when disabled" true
    (off.Pfuzzer.cache = Pfuzzer.no_cache_stats)

let test_path_counts_capped () =
  (* The path-novelty table is generationally reset at its cap, like the
     dedupe table; at default sizes a short run never trips it. *)
  let subject = Catalog.find "expr" in
  let normal =
    Pfuzzer.fuzz { Pfuzzer.default_config with max_executions = 1000 } subject
  in
  Alcotest.(check int) "no resets at default cap" 0 normal.path_resets;
  let tiny =
    Pfuzzer.fuzz
      { Pfuzzer.default_config with max_executions = 1000; queue_bound = 1 }
      subject
  in
  (* cap = 4 x queue_bound = 4: any workload with > 4 distinct paths
     forces at least one reset. *)
  Alcotest.(check bool) "tiny cap forces generational resets" true
    (tiny.path_resets > 0);
  Alcotest.(check bool) "fuzzer still works across resets" true
    (List.length tiny.valid_inputs > 0)

(* {1 Resilience: checkpoints, faults, crash corpus} *)

module Fault = Pdf_fault.Fault

let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Run [name] to its budget, capturing the first periodic checkpoint the
   campaign emits. *)
let capture_checkpoint ?(execs = 900) ?(every = 300) name =
  let subject = Catalog.find name in
  let captured = ref None in
  let full =
    Pfuzzer.fuzz ~checkpoint_every:every
      ~on_checkpoint:(fun ck -> if !captured = None then captured := Some ck)
      { Pfuzzer.default_config with max_executions = execs }
      subject
  in
  match !captured with
  | None -> Alcotest.fail "no checkpoint was captured"
  | Some ck -> (full, ck, subject)

let test_checkpoint_roundtrip () =
  let _, ck, _ = capture_checkpoint "json" in
  match Pfuzzer.Checkpoint.(decode (encode ck)) with
  | Error e -> Alcotest.failf "encode/decode round-trip failed: %s" e
  | Ok ck' ->
    Alcotest.(check string) "subject name survives" "json"
      (Pfuzzer.Checkpoint.subject_name ck');
    Alcotest.(check int) "execution count survives"
      (Pfuzzer.Checkpoint.executions ck)
      (Pfuzzer.Checkpoint.executions ck');
    Alcotest.(check bool) "config survives" true
      (Pfuzzer.Checkpoint.config ck' = Pfuzzer.Checkpoint.config ck)

let expect_decode_error what s fragment =
  match Pfuzzer.Checkpoint.decode s with
  | Ok _ -> Alcotest.failf "%s: decode unexpectedly succeeded" what
  | Error e ->
    if not (contains_sub e fragment) then
      Alcotest.failf "%s: error %S does not mention %S" what e fragment

let test_checkpoint_rejects_damage () =
  let _, ck, _ = capture_checkpoint "paren" in
  let enc = Pfuzzer.Checkpoint.encode ck in
  expect_decode_error "truncated header" (String.sub enc 0 10) "too short";
  let bad_magic = "XXXXXX" ^ String.sub enc 6 (String.length enc - 6) in
  expect_decode_error "bad magic" bad_magic "bad magic";
  let bumped = Bytes.of_string enc in
  Bytes.set bumped 6 (Char.chr (Char.code enc.[6] + 1));
  expect_decode_error "version bump" (Bytes.to_string bumped) "version mismatch";
  let corrupted = Bytes.of_string enc in
  Bytes.set corrupted 40 (Char.chr (Char.code enc.[40] lxor 0xff));
  expect_decode_error "flipped payload byte" (Bytes.to_string corrupted)
    "digest mismatch";
  (* Truncating the payload (header intact) also trips the digest. *)
  expect_decode_error "truncated payload"
    (String.sub enc 0 (String.length enc - 5))
    "digest mismatch"

(* The decode error precedence is explicit: the payload digest is
   verified before the version byte is interpreted, so a file that is
   both corrupted and version-skewed reports corruption — rot is never
   misreported as skew — while a clean file from another build reports
   the genuine version mismatch. Both orders of damage are pinned. *)
let test_checkpoint_digest_before_version () =
  let _, ck, _ = capture_checkpoint "paren" in
  let enc = Pfuzzer.Checkpoint.encode ck in
  (* Skew alone: digest intact, version reported. *)
  let skewed = Bytes.of_string enc in
  Bytes.set skewed 6 (Char.chr (Char.code enc.[6] + 1));
  expect_decode_error "skew only" (Bytes.to_string skewed) "version mismatch";
  (* Corruption alone: digest reported. *)
  let rotted = Bytes.of_string enc in
  Bytes.set rotted 40 (Char.chr (Char.code enc.[40] lxor 0xff));
  expect_decode_error "rot only" (Bytes.to_string rotted) "digest mismatch";
  (* Corruption applied first, then skew: digest wins. *)
  let rot_then_skew = Bytes.of_string enc in
  Bytes.set rot_then_skew 40 (Char.chr (Char.code enc.[40] lxor 0xff));
  Bytes.set rot_then_skew 6 (Char.chr (Char.code enc.[6] + 1));
  expect_decode_error "rot then skew" (Bytes.to_string rot_then_skew)
    "digest mismatch";
  (* Skew applied first, then corruption: same verdict — the order the
     damage happened in cannot matter, only the precedence does. *)
  let skew_then_rot = Bytes.of_string enc in
  Bytes.set skew_then_rot 6 (Char.chr (Char.code enc.[6] + 1));
  Bytes.set skew_then_rot 40 (Char.chr (Char.code enc.[40] lxor 0xff));
  expect_decode_error "skew then rot" (Bytes.to_string skew_then_rot)
    "digest mismatch"

let test_checkpoint_file_roundtrip () =
  let _, ck, _ = capture_checkpoint "csv" in
  let path = Filename.temp_file "pfuzzer_ck" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Pfuzzer.Checkpoint.save path ck;
      match Pfuzzer.Checkpoint.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok ck' ->
        Alcotest.(check string) "subject survives the file system" "csv"
          (Pfuzzer.Checkpoint.subject_name ck');
        Alcotest.(check int) "executions survive the file system"
          (Pfuzzer.Checkpoint.executions ck)
          (Pfuzzer.Checkpoint.executions ck'));
  match Pfuzzer.Checkpoint.load "/nonexistent/pfuzzer.ckpt" with
  | Ok _ -> Alcotest.fail "loading a missing file succeeded"
  | Error _ -> ()

let test_resume_equivalence_all_subjects () =
  (* The headline resilience invariant: interrupt-then-resume is
     observationally identical to running uninterrupted, on every seed
     subject. [results_equal] ignores only wall-clock and cache
     accounting. *)
  List.iter
    (fun name ->
      let full, ck, subject = capture_checkpoint name in
      let resumed = Pfuzzer.resume_from ck subject in
      Alcotest.(check bool)
        (Printf.sprintf "resumed = uninterrupted on %s" name)
        true
        (Pdf_check.Invariants.results_equal full resumed))
    [ "paren"; "ini"; "csv"; "json"; "expr" ]

let test_resume_rejects_wrong_subject () =
  let _, ck, _ = capture_checkpoint "json" in
  match Pfuzzer.resume_from ck (Catalog.find "expr") with
  | (_ : Pfuzzer.result) ->
    Alcotest.fail "resuming a json checkpoint on expr succeeded"
  | exception Invalid_argument _ -> ()

let test_fault_plan_crash_corpus () =
  let subject = Catalog.find "json" in
  let indices = [ 50; 150; 250; 350; 450 ] in
  let plan =
    Fault.of_list (List.map (fun i -> (i, Fault.Raise "chaos raise")) indices)
  in
  let r =
    Pfuzzer.fuzz ~faults:plan
      { Pfuzzer.default_config with max_executions = 600 }
      subject
  in
  let fired = List.length (Fault.triggered plan) in
  Alcotest.(check int) "every planned fault fired" (List.length indices) fired;
  Alcotest.(check int) "every firing was a contained crash" fired r.crash_total;
  Alcotest.(check int) "campaign ran to its budget regardless" 600 r.executions;
  Alcotest.(check int) "raises are not hangs" 0 r.hangs;
  match r.crashes with
  | [ c ] ->
    Alcotest.(check string) "deduplicated under the injected exception"
      (Printexc.exn_slot_name (Fault.Injected "x"))
      c.exn;
    Alcotest.(check int) "dedup count totals the firings" fired c.count;
    Alcotest.(check bool) "first witness within the budget" true
      (c.first_at > 0 && c.first_at <= 600);
    Alcotest.(check bool) "detail records the injected message" true
      (contains_sub c.detail "chaos raise")
  | l -> Alcotest.failf "expected one crash identity, got %d" (List.length l)

let test_fault_plan_starvation_hangs () =
  let subject = Catalog.find "expr" in
  let plan = Fault.of_list [ (10, Fault.Starve_fuel); (20, Fault.Starve_fuel) ] in
  let r =
    Pfuzzer.fuzz ~faults:plan
      { Pfuzzer.default_config with max_executions = 200 }
      subject
  in
  Alcotest.(check int) "both starvations fired" 2
    (List.length (Fault.triggered plan));
  Alcotest.(check bool) "starvations surface as hangs" true (r.hangs >= 2);
  Alcotest.(check int) "no crashes" 0 r.crash_total;
  Alcotest.(check int) "campaign ran to its budget" 200 r.executions

(* {1 Engines and batching}

   The engine and batch knobs are pure performance controls: any setting
   must produce the same campaign, observation for observation. *)

let stream_with config subject =
  let runs = ref [] in
  let result =
    Pfuzzer.fuzz ~on_execution:(fun run -> runs := run :: !runs) config subject
  in
  (result, List.rev !runs)

let check_streams_identical what (ra, runs_a) (rb, runs_b) =
  Alcotest.(check bool)
    (Printf.sprintf "%s: aggregate results identical" what)
    true
    (Pdf_check.Invariants.results_equal ra rb);
  Alcotest.(check int)
    (Printf.sprintf "%s: same stream length" what)
    (List.length runs_a) (List.length runs_b);
  List.iter2
    (fun a b ->
      if not (Pdf_check.Invariants.runs_equal a b) then
        Alcotest.failf "%s: streams diverge at input %S" what
          a.Pdf_instr.Runner.input)
    runs_a runs_b

let test_engine_equivalence () =
  (* Compiled and interpreted tiers: bit-identical campaigns. *)
  let subject = Catalog.find "json" in
  let config = { Pfuzzer.default_config with max_executions = 1500 } in
  check_streams_identical "compiled vs interpreted"
    (stream_with { config with engine = Pfuzzer.Compiled } subject)
    (stream_with { config with engine = Pfuzzer.Interpreted } subject)

let test_batch_size_independence () =
  (* The batch size only changes checkpoint cadence, never results:
     draining one candidate per engine entry and sixteen must coincide. *)
  let subject = Catalog.find "expr" in
  let config = { Pfuzzer.default_config with max_executions = 1500 } in
  let one = stream_with { config with batch = 1 } subject in
  let sixteen = stream_with { config with batch = 16 } subject in
  check_streams_identical "batch 1 vs batch 16" one sixteen;
  let seven = stream_with { config with batch = 7 } subject in
  check_streams_identical "batch 1 vs batch 7" one seven

let test_checkpoint_cadence_vs_batch () =
  (* A checkpoint interval that does not divide the batch size still
     round-trips: checkpoints land on the next batch boundary, and
     resuming one reproduces the uninterrupted campaign exactly. *)
  let subject = Catalog.find "csv" in
  let config =
    { Pfuzzer.default_config with max_executions = 900; batch = 4 }
  in
  let captured = ref None in
  let full =
    Pfuzzer.fuzz ~checkpoint_every:7
      ~on_checkpoint:(fun ck -> if !captured = None then captured := Some ck)
      config subject
  in
  match !captured with
  | None -> Alcotest.fail "no checkpoint captured with every=7, batch=4"
  | Some ck ->
    (* Checkpoints fire at the first batch boundary at or past the
       interval — never early, and within one batch's worth of
       executions late (each candidate costs at most two). *)
    let at = Pfuzzer.Checkpoint.executions ck in
    Alcotest.(check bool) "checkpoint not early" true (at >= 7);
    Alcotest.(check bool) "checkpoint within one batch of the interval" true
      (at <= 7 + (4 * 2));
    let resumed = Pfuzzer.resume_from ck subject in
    Alcotest.(check bool) "resumed = uninterrupted despite batch skew" true
      (Pdf_check.Invariants.results_equal full resumed)

(* {1 Generational resets preserve determinism}

   [seen_inputs] and [path_counts] reset wholesale at 4 x queue_bound.
   With both tables rekeyed by FNV hash the reset path is load-bearing:
   a tiny queue bound forces many generations per campaign, and the
   search must stay deterministic through every one — same seed, same
   stream, and a checkpoint taken after resets have fired must restore
   the mid-generation table contents exactly. (A tiny-cap campaign is
   *not* compared against a default-cap one: resets re-admit previously
   seen candidates by design, so the cap is behaviour, not tuning.) *)

let test_generational_reset_determinism () =
  let subject = Catalog.find "expr" in
  let config =
    { Pfuzzer.default_config with max_executions = 3000; queue_bound = 8 }
  in
  let ((ra, _) as a) = stream_with config subject in
  Alcotest.(check bool) "dedupe resets fired" true (ra.Pfuzzer.dedupe_resets > 0);
  Alcotest.(check bool) "path resets fired" true (ra.path_resets > 0);
  check_streams_identical "tiny-cap campaign, run twice" a
    (stream_with config subject);
  (* Round-trip a checkpoint captured after the tables have already been
     through at least one reset: the restored generation must contain
     exactly the entries live at capture time, or the resumed half of the
     campaign diverges. *)
  let captured = ref None in
  let full =
    Pfuzzer.fuzz ~checkpoint_every:500
      ~on_checkpoint:(fun ck ->
        let partial = Pfuzzer.Checkpoint.partial_result ck in
        if !captured = None && partial.Pfuzzer.dedupe_resets > 0 then
          captured := Some ck)
      config subject
  in
  match !captured with
  | None -> Alcotest.fail "no checkpoint captured after a dedupe reset"
  | Some ck ->
    let resumed = Pfuzzer.resume_from ck subject in
    Alcotest.(check bool) "resume across a reset generation = uninterrupted"
      true
      (Pdf_check.Invariants.results_equal full resumed)

let test_crash_mid_batch () =
  (* Faults that fire in the middle of a batch are contained like any
     other crash: the batch keeps draining and the budget is honoured. *)
  let subject = Catalog.find "json" in
  let indices = [ 18; 19; 20 ] in
  let plan =
    Fault.of_list (List.map (fun i -> (i, Fault.Raise "mid-batch chaos")) indices)
  in
  let r =
    Pfuzzer.fuzz ~faults:plan
      { Pfuzzer.default_config with max_executions = 200; batch = 16 }
      subject
  in
  Alcotest.(check int) "every mid-batch fault fired" (List.length indices)
    (List.length (Fault.triggered plan));
  Alcotest.(check int) "each firing was contained" (List.length indices)
    r.crash_total;
  Alcotest.(check int) "budget honoured through mid-batch crashes" 200
    r.executions

let test_grid_determinism_with_engines () =
  (* The evaluation grid stays bit-deterministic under the compiled
     default: parallel and sequential runs coincide. *)
  let config =
    {
      Pdf_eval.Experiment.budget_units = 20_000;
      seeds = [ 1; 2 ];
      verbose = false;
    }
  in
  let subjects = [ Catalog.find "paren"; Catalog.find "ini" ] in
  let sequential = Pdf_eval.Experiment.run ~jobs:1 config subjects in
  let parallel = Pdf_eval.Experiment.run ~jobs:3 config subjects in
  Alcotest.(check bool) "jobs:1 = jobs:3 with compiled engine" true
    (Pdf_eval.Experiment.equal sequential parallel)

let prop_heuristic_monotone_in_coverage =
  QCheck.Test.make ~name:"heuristic is monotone in new coverage" ~count:100
    QCheck.(pair (int_range 0 20) (int_range 0 20))
    (fun (a, b) ->
      let mk n = candidate ~cov:(List.init n (fun i -> i)) () in
      a <= b
      || score (mk a) >= score (mk b)
      || score (mk a) <= score (mk b) = (a <= b))

let prop_all_variants_total =
  QCheck.Test.make ~name:"every variant scores every candidate" ~count:100
    QCheck.(pair small_string (int_range 0 10))
    (fun (data, parents) ->
      let c = candidate ~data ~parents () in
      List.for_all
        (fun (_, v) ->
          let s = Heuristic.score v ~vbr:Coverage.empty c in
          Float.is_finite s)
        Heuristic.all)

let () =
  Alcotest.run "pdf_core"
    [
      ( "heuristic",
        [
          Alcotest.test_case "term directions" `Quick test_heuristic_terms;
          Alcotest.test_case "vbr baseline" `Quick test_heuristic_vbr;
          Alcotest.test_case "parents sign discrepancy" `Quick test_heuristic_parents_sign;
          Alcotest.test_case "variants" `Quick test_heuristic_variants;
          Alcotest.test_case "candidate seed" `Quick test_candidate_seed;
          qtest prop_heuristic_monotone_in_coverage;
          qtest prop_all_variants_total;
        ] );
      ( "fuzzer",
        [
          Alcotest.test_case "finds expr inputs" `Quick test_finds_expr_inputs;
          Alcotest.test_case "valid inputs cover new code" `Quick
            test_valid_inputs_cover_new_code;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "budget respected" `Quick test_budget_respected;
          Alcotest.test_case "finds json keywords" `Slow test_finds_json_keywords;
          Alcotest.test_case "closes parentheses" `Quick test_finds_paren_nesting;
          Alcotest.test_case "first_valid_at" `Quick test_first_valid_at;
          Alcotest.test_case "queue statistics" `Quick test_queue_stats;
          Alcotest.test_case "small queue bound" `Quick test_small_queue_bound;
          Alcotest.test_case "dedupe off" `Quick test_dedupe_off;
          Alcotest.test_case "max input length" `Quick test_max_input_len;
          Alcotest.test_case "works on table-driven subjects" `Quick
            test_fuzzer_on_table_subject;
          Alcotest.test_case "initial corpus seeds the queue" `Quick
            test_initial_inputs_seed_queue;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "on/off streams identical" `Quick
            test_incremental_equivalence;
          Alcotest.test_case "cache stats sanity" `Quick test_cache_stats_sanity;
          Alcotest.test_case "path counts capped" `Quick test_path_counts_capped;
          Alcotest.test_case "generational resets stay deterministic" `Quick
            test_generational_reset_determinism;
        ] );
      ( "engine",
        [
          Alcotest.test_case "compiled = interpreted streams" `Quick
            test_engine_equivalence;
          Alcotest.test_case "batch size never changes results" `Quick
            test_batch_size_independence;
          Alcotest.test_case "checkpoint cadence not divisible by batch" `Quick
            test_checkpoint_cadence_vs_batch;
          Alcotest.test_case "crashes mid-batch are contained" `Quick
            test_crash_mid_batch;
          Alcotest.test_case "grid deterministic under compiled default" `Quick
            test_grid_determinism_with_engines;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "checkpoint encode/decode round-trip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "checkpoint rejects damage" `Quick
            test_checkpoint_rejects_damage;
          Alcotest.test_case "digest mismatch outranks version skew" `Quick
            test_checkpoint_digest_before_version;
          Alcotest.test_case "checkpoint file round-trip" `Quick
            test_checkpoint_file_roundtrip;
          Alcotest.test_case "resume equivalence on every subject" `Slow
            test_resume_equivalence_all_subjects;
          Alcotest.test_case "resume rejects wrong subject" `Quick
            test_resume_rejects_wrong_subject;
          Alcotest.test_case "fault plan builds a crash corpus" `Quick
            test_fault_plan_crash_corpus;
          Alcotest.test_case "starvation faults surface as hangs" `Quick
            test_fault_plan_starvation_hangs;
        ] );
    ]
