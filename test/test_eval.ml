module Tool = Pdf_eval.Tool
module Token_report = Pdf_eval.Token_report
module Experiment = Pdf_eval.Experiment
module Report = Pdf_eval.Report
module Paper_data = Pdf_eval.Paper_data
module Catalog = Pdf_subjects.Catalog

(* {1 Tool} *)

let test_tool_basics () =
  Alcotest.(check int) "three tools" 3 (List.length Tool.all);
  Alcotest.(check int) "afl cost" 1 (Tool.cost_per_execution Tool.Afl);
  Alcotest.(check int) "pfuzzer cost" 100 (Tool.cost_per_execution Tool.Pfuzzer);
  Alcotest.(check int) "klee cost" 100 (Tool.cost_per_execution Tool.Klee);
  Alcotest.(check bool) "of_string round trip" true
    (List.for_all
       (fun t -> Tool.of_string (Tool.display_name t) = Some t)
       Tool.all);
  Alcotest.(check bool) "unknown tool" true (Tool.of_string "gcc" = None)

let test_tool_budget_model () =
  let subject = Catalog.find "expr" in
  let a = Tool.run Tool.Afl ~budget_units:1000 ~seed:1 subject in
  Alcotest.(check bool) "afl gets the full unit count" true (a.executions <= 1000);
  let p = Tool.run Tool.Pfuzzer ~budget_units:1000 ~seed:1 subject in
  Alcotest.(check bool) "pfuzzer pays 100 units per execution" true
    (p.executions <= 10);
  Alcotest.(check string) "subject recorded" "expr" p.subject

(* {1 Token report} *)

let test_found_tags () =
  let subject = Catalog.find "json" in
  let tags = Token_report.found_tags subject [ "[true]"; "1" ] in
  Alcotest.(check (slist string compare)) "tags from valid inputs"
    [ "["; "]"; "true"; "number" ] tags

let test_found_tags_filters_inventory () =
  (* Tags outside the inventory never leak into the report. *)
  let subject = Catalog.find "csv" in
  let tags = Token_report.found_tags subject [ "a,b" ] in
  Alcotest.(check (slist string compare)) "only inventory tags" [ ","; "field" ] tags

let test_by_length () =
  let subject = Catalog.find "json" in
  let groups = Token_report.by_length subject [ "{"; "}"; "true" ] in
  Alcotest.(check (list (triple int int int)))
    "per-length found/total"
    [ (1, 2, 8); (2, 0, 1); (4, 1, 2); (5, 0, 1) ]
    groups

let test_share () =
  let json = Catalog.find "json" in
  let all_tags = List.map (fun (t : Pdf_subjects.Token.t) -> t.tag) json.tokens in
  Alcotest.(check (float 1e-6)) "everything found" 100.0
    (Token_report.share ~min_len:0 ~max_len:max_int [ (json, all_tags) ]);
  Alcotest.(check (float 1e-6)) "nothing found" 0.0
    (Token_report.share ~min_len:0 ~max_len:max_int [ (json, []) ]);
  (* json's long tokens are null/true/false; finding 2 of 3 is 66.7%,
     and short tokens in the found list must not count. *)
  Alcotest.(check (float 0.1)) "long tokens only" 66.7
    (Token_report.share ~min_len:4 ~max_len:max_int
       [ (json, [ "true"; "null"; "{" ]) ]);
  Alcotest.(check (float 1e-6)) "band excludes short" 100.0
    (Token_report.share ~min_len:4 ~max_len:5 [ (json, [ "true"; "false"; "null" ]) ])

(* {1 Experiment + Report} *)

let run_small () =
  let config = { Experiment.budget_units = 30_000; seeds = [ 1 ]; verbose = false } in
  Experiment.run config [ Catalog.find "expr"; Catalog.find "paren" ]

let test_experiment_grid () =
  let e = run_small () in
  Alcotest.(check int) "two subjects" 2 (List.length e.cells);
  List.iter
    (fun (subject, per_tool) ->
      Alcotest.(check int) (subject ^ " has three tools") 3 (List.length per_tool);
      List.iter
        (fun (_, cell) ->
          Alcotest.(check bool) "coverage within [0,100]" true
            (cell.Experiment.coverage_percent >= 0.0
             && cell.Experiment.coverage_percent <= 100.0))
        per_tool)
    e.cells

let test_experiment_cell_lookup () =
  let e = run_small () in
  let cell = Experiment.cell e "expr" Tool.Pfuzzer in
  Alcotest.(check string) "cell subject" "expr" cell.Experiment.outcome.subject;
  Alcotest.check_raises "unknown subject" Not_found (fun () ->
      ignore (Experiment.cell e "nope" Tool.Afl))

let test_experiment_headline () =
  let e = run_small () in
  let shares = Experiment.headline e ~min_len:0 ~max_len:3 in
  Alcotest.(check int) "one share per tool" 3 (List.length shares);
  List.iter
    (fun (_, v) ->
      Alcotest.(check bool) "share within [0,100]" true (v >= 0.0 && v <= 100.0))
    shares

let test_experiment_best_of_seeds () =
  let config = { Experiment.budget_units = 20_000; seeds = [ 1; 2 ]; verbose = false } in
  let e = Experiment.run config [ Catalog.find "expr" ] in
  let cell = Experiment.cell e "expr" Tool.Pfuzzer in
  let single seed =
    let config = { Experiment.budget_units = 20_000; seeds = [ seed ]; verbose = false } in
    (Experiment.cell (Experiment.run config [ Catalog.find "expr" ]) "expr" Tool.Pfuzzer)
      .Experiment.coverage_percent
  in
  Alcotest.(check bool) "best of seeds >= each single seed" true
    (cell.Experiment.coverage_percent >= Float.max (single 1) (single 2))

(* The domain-pool runner must be an implementation detail: the same
   grid fanned over 4 domains merges into cells semantically identical
   to the sequential run. [Experiment.equal] compares everything that
   matters — valid inputs, executions, coverage sets and found tokens —
   while ignoring the wall-clock timing fields, which differ between
   any two runs. *)
let test_experiment_jobs_deterministic () =
  let config =
    { Experiment.budget_units = 20_000; seeds = [ 1; 2 ]; verbose = false }
  in
  let subjects = [ Catalog.find "expr"; Catalog.find "paren" ] in
  let seq = Experiment.run ~jobs:1 config subjects in
  let par = Experiment.run ~jobs:4 config subjects in
  Alcotest.(check bool) "jobs:4 cells equal to jobs:1" true
    (Experiment.equal seq par)

let test_pipeline () =
  let subject = Catalog.find "expr" in
  let result = Pdf_eval.Pipeline.run ~budget_units:100_000 ~seed:1 subject in
  Alcotest.(check int) "three stages" 3 (List.length result.stages);
  Alcotest.(check bool) "corpus nonempty" true (List.length result.valid_inputs > 0);
  List.iter
    (fun input ->
      Alcotest.(check bool) (Printf.sprintf "corpus input %S valid" input) true
        (Pdf_subjects.Subject.accepts subject input))
    result.valid_inputs;
  (* Cumulative coverage never decreases across stages. *)
  let rec non_decreasing = function
    | (a : Pdf_eval.Pipeline.stage_report) :: (b :: _ as rest) ->
      a.coverage_after <= b.coverage_after && non_decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "coverage monotone across stages" true
    (non_decreasing result.stages);
  (* No duplicates in the corpus. *)
  Alcotest.(check int) "corpus deduplicated"
    (List.length result.valid_inputs)
    (List.length (List.sort_uniq compare result.valid_inputs))

let test_experiment_no_failures () =
  let e = run_small () in
  Alcotest.(check int) "healthy grid has no failed cells" 0
    (List.length e.Experiment.failures)

(* {1 Parallel retry} *)

let test_map_retry_order () =
  let items = List.init 17 Fun.id in
  let out = Pdf_eval.Parallel.map_retry ~jobs:4 (fun x -> x * x) items in
  Alcotest.(check (list int)) "order and values preserved"
    (List.map (fun x -> x * x) items)
    (List.map
       (function Ok v -> v | Error _ -> Alcotest.fail "unexpected failure")
       out)

let test_map_retry_transient_failure () =
  (* Item 3 fails on its first two attempts, then succeeds; every other
     item succeeds immediately. The whole batch must come back [Ok]. *)
  let attempts = Array.init 8 (fun _ -> Atomic.make 0) in
  let retried = ref [] in
  let out =
    Pdf_eval.Parallel.map_retry ~jobs:3 ~retries:2
      ~on_retry:(fun ~index ~attempt _e -> retried := (index, attempt) :: !retried)
      (fun i ->
        let n = Atomic.fetch_and_add attempts.(i) 1 in
        if i = 3 && n < 2 then failwith "transient";
        i * 10)
      (List.init 8 Fun.id)
  in
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * 10) v
      | Error _ -> Alcotest.failf "slot %d failed after retries" i)
    out;
  Alcotest.(check int) "item 3 ran three times" 3 (Atomic.get attempts.(3));
  Alcotest.(check (list (pair int int))) "on_retry saw index 3, attempts 1 and 2"
    [ (3, 1); (3, 2) ]
    (List.rev !retried)

let test_map_retry_permanent_failure () =
  let out =
    Pdf_eval.Parallel.map_retry ~jobs:2 ~retries:1
      (fun i -> if i = 1 then failwith "permanent" else i)
      [ 0; 1; 2 ]
  in
  match out with
  | [ Ok 0; Error (Failure _); Ok 2 ] -> ()
  | _ -> Alcotest.fail "expected exactly slot 1 to exhaust its retries"

let render f =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_report_renders () =
  let e = run_small () in
  let out = render (fun ppf -> Report.full ppf e) in
  Alcotest.(check bool) "report is substantial" true (String.length out > 500);
  List.iter
    (fun needle ->
      let found = ref false in
      let nl = String.length needle and ol = String.length out in
      for i = 0 to ol - nl do
        if String.sub out i nl = needle then found := true
      done;
      Alcotest.(check bool) (Printf.sprintf "mentions %s" needle) true !found)
    [ "Table 1"; "Figure 2"; "Figure 3"; "AFL"; "KLEE"; "pFuzzer" ]

let test_report_inventories () =
  let out = render (fun ppf -> Report.token_inventory ppf (Catalog.find "json")) in
  Alcotest.(check bool) "json inventory renders" true (String.length out > 50)

let test_paper_data () =
  Alcotest.(check int) "five subjects in Table 1" 5 (List.length Paper_data.table1_loc);
  Alcotest.(check (option int)) "mjs loc" (Some 10920)
    (List.assoc_opt "mjs" Paper_data.table1_loc);
  Alcotest.(check (option (float 1e-9))) "afl short-token share" (Some 91.5)
    (List.assoc_opt Tool.Afl Paper_data.headline_short);
  Alcotest.(check (option (float 1e-9))) "pfuzzer long-token share" (Some 52.5)
    (List.assoc_opt Tool.Pfuzzer Paper_data.headline_long);
  Alcotest.(check int) "coverage winners for all subjects" 5
    (List.length Paper_data.coverage_order)

let () =
  Alcotest.run "pdf_eval"
    [
      ( "tool",
        [
          Alcotest.test_case "basics" `Quick test_tool_basics;
          Alcotest.test_case "budget model" `Quick test_tool_budget_model;
        ] );
      ( "token-report",
        [
          Alcotest.test_case "found tags" `Quick test_found_tags;
          Alcotest.test_case "inventory filter" `Quick test_found_tags_filters_inventory;
          Alcotest.test_case "by length" `Quick test_by_length;
          Alcotest.test_case "share" `Quick test_share;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "grid" `Quick test_experiment_grid;
          Alcotest.test_case "cell lookup" `Quick test_experiment_cell_lookup;
          Alcotest.test_case "headline" `Quick test_experiment_headline;
          Alcotest.test_case "best of seeds" `Slow test_experiment_best_of_seeds;
          Alcotest.test_case "jobs determinism" `Slow test_experiment_jobs_deterministic;
          Alcotest.test_case "healthy grid has no failures" `Quick
            test_experiment_no_failures;
        ] );
      ( "parallel-retry",
        [
          Alcotest.test_case "order preserved" `Quick test_map_retry_order;
          Alcotest.test_case "transient failure recovered" `Quick
            test_map_retry_transient_failure;
          Alcotest.test_case "permanent failure reported in place" `Quick
            test_map_retry_permanent_failure;
        ] );
      ( "pipeline", [ Alcotest.test_case "three-stage hand-over" `Quick test_pipeline ] );
      ( "report",
        [
          Alcotest.test_case "full report renders" `Quick test_report_renders;
          Alcotest.test_case "inventories render" `Quick test_report_inventories;
          Alcotest.test_case "paper reference data" `Quick test_paper_data;
        ] );
    ]
