lib/grammar/miner.ml: Array Grammar List Pdf_instr Pdf_subjects String
