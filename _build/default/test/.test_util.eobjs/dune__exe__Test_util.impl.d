test/test_util.ml: Alcotest Array Buffer Char Format List Option Pdf_util Printf QCheck QCheck_alcotest String
