examples/custom_subject.mli:
