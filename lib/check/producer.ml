module Rng = Pdf_util.Rng
module Cfg = Pdf_tables.Cfg
module Grammar = Pdf_grammar.Grammar
module Generator = Pdf_grammar.Generator

let grammar_of_cfg cfg =
  List.fold_left
    (fun g { Cfg.lhs; rhs } ->
      Grammar.add_production g lhs
        (List.map
           (function
             | Cfg.T c -> Grammar.Terminal (String.make 1 c)
             | Cfg.N n -> Grammar.Nonterminal n)
           rhs))
    (Grammar.empty ~start:(Cfg.start cfg))
    (Cfg.productions cfg)

(* Converted grammars, memoised per oracle name: the conversion walks
   every production and the JSON grammar has several hundred. *)
let converted : (string, Grammar.t) Hashtbl.t = Hashtbl.create 8

let grammar_for (oracle : Oracle.t) =
  match Hashtbl.find_opt converted oracle.name with
  | Some g -> g
  | None ->
    let g = grammar_of_cfg oracle.grammar in
    Hashtbl.add converted oracle.name g;
    g

let retries = 30

let valid rng (oracle : Oracle.t) =
  let grammar = grammar_for oracle in
  let rec go k =
    if k = 0 then None
    else begin
      let depth = 3 + Rng.int rng 10 in
      let candidate = Generator.generate rng ~max_depth:depth grammar in
      if oracle.accepts candidate then Some candidate else go (k - 1)
    end
  in
  go retries

let mutate rng s =
  let n = String.length s in
  match Rng.int rng (if n = 0 then 2 else 5) with
  | 0 -> s ^ String.make 1 (Rng.printable rng) (* append *)
  | 1 ->
    (* insert *)
    let at = Rng.int rng (n + 1) in
    String.sub s 0 at ^ String.make 1 (Rng.printable rng) ^ String.sub s at (n - at)
  | 2 ->
    (* delete *)
    let at = Rng.int rng n in
    String.sub s 0 at ^ String.sub s (at + 1) (n - at - 1)
  | 3 ->
    (* substitute *)
    let at = Rng.int rng n in
    String.sub s 0 at ^ String.make 1 (Rng.printable rng) ^ String.sub s (at + 1) (n - at - 1)
  | _ ->
    (* truncate *)
    String.sub s 0 (Rng.int rng n)

let invalid rng (oracle : Oracle.t) =
  match valid rng oracle with
  | None -> None
  | Some seed ->
    let rec go s k =
      if k = 0 then None
      else begin
        let mutant = mutate rng s in
        if not (oracle.accepts mutant) then Some mutant else go mutant (k - 1)
      end
    in
    go seed retries

let random_input rng =
  let len = Rng.int rng 13 in
  String.init len (fun _ -> Rng.printable rng)
