lib/subjects/expr.mli: Subject
