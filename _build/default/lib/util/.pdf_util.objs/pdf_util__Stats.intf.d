lib/util/stats.mli:
