lib/grammar/generator.mli: Grammar Pdf_util
