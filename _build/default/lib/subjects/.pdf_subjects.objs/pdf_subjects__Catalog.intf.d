lib/subjects/catalog.mli: Subject
