(** INI-file parser modelled on the paper's [inih] subject: sections in
    brackets, [key = value] pairs, [;]/[#] comments, blank lines. *)

val subject : Subject.t
