lib/subjects/subject.mli: Pdf_instr Token
