(** Deterministic fault injection for resilience testing.

    A {!plan} maps execution indices (0-based, in campaign order) to
    faults. The fuzzer consults the plan before each execution and — when
    an index is planned — degrades that one execution instead of running
    the subject normally. Because plans are keyed on the deterministic
    execution counter and built from a seed, a chaos run is exactly
    reproducible: same plan, same faults, same campaign.

    The plan mutates only on the driving domain (it records which faults
    actually fired); it is not safe to share across domains. *)

exception Injected of string
(** The exception a {!Raise} fault makes the subject throw. Contained by
    [Runner] as a [Crash] verdict like any real subject exception. *)

type kind =
  | Raise of string
      (** subject raises [Injected msg] immediately — models a crashing
          subject; the execution yields a [Crash] verdict *)
  | Starve_fuel
      (** the execution's fuel runs out immediately — models a
          pathological hang;
          yields [Hang] *)
  | Slow of int
      (** spin [n] iterations of busy work before executing normally —
          models a pathologically slow execution; observationally
          neutral apart from wall-clock *)
  | Corrupt_cache
      (** poison every cached prefix snapshot before executing — models
          snapshot corruption; the fuzzer must rescue each poisoned hit
          by re-executing cold *)
  | Kill_worker
      (** kill the worker processing a grid cell — consumed by the
          eval-grid chaos tests, not by the fuzzer loop *)

type plan

val empty : unit -> plan
val of_list : (int * kind) list -> plan
(** Explicit plan; later bindings for the same index win. Negative
    indices are rejected. *)

val seeded : seed:int -> executions:int -> count:int -> plan
(** [seeded ~seed ~executions ~count] draws [count] distinct execution
    indices in [\[0, executions)] and assigns each a fault kind
    (uniformly among [Raise]/[Starve_fuel]/[Slow]/[Corrupt_cache]),
    deterministically from [seed]. *)

val is_empty : plan -> bool
val size : plan -> int

val find : plan -> int -> kind option
(** Look up without recording a trigger. *)

val consume : plan -> int -> kind option
(** Look up, recording the hit in the trigger log when present (and
    notifying the {!set_on_trigger} hook). The fuzzer calls this once
    per execution index. *)

val set_on_trigger : plan -> (int -> kind -> unit) -> unit
(** Install a callback fired on every consumed fault, with the execution
    index and kind. Deliberately generic — pdf_fault knows nothing about
    telemetry — so the fuzzer can point it at the flight recorder and
    dump a post-mortem the moment a drill fires. *)

val triggered : plan -> (int * kind) list
(** Faults that actually fired, in firing order. *)

val count_triggered : plan -> (kind -> bool) -> int
val reset : plan -> unit
(** Clear the trigger log (for reusing one plan across runs). *)

val kind_label : kind -> string
(** Short stable label for events/logs: ["raise"], ["starve_fuel"], … *)

val pp_kind : Format.formatter -> kind -> unit
