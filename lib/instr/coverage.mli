(** Sets of covered outcomes, as dense bitsets.

    Outcome ids are dense within a registry, so coverage is a bit vector
    sized by the highest recorded outcome — at most
    [Site.total_outcomes]. Values are immutable; [union], [diff] and
    [new_against] are word-parallel O(words) operations, which matters
    because the fuzzers take and compare these snapshots on every
    execution. *)

type t

val empty : t
val add : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int
val is_empty : t -> bool
val of_list : int list -> t

val of_array : ?len:int -> int array -> t
(** [of_array ~len a] is the set of the first [len] (default all)
    elements of [a] — the bulk constructor the run harness uses to turn
    a trace prefix or a touched-outcome buffer into coverage without
    element-by-element rebuilding. *)

val of_iter : ((int -> unit) -> unit) -> t
(** [of_iter iter] builds a set from a push-style iterator. [iter] is
    invoked twice (sizing pass, fill pass) and must enumerate the same
    elements both times. *)

val to_list : t -> int list
(** In increasing order. *)

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] counts outcomes present in both sets — a
    word-parallel AND-popcount, allocation-free. The incremental queue
    re-rank uses it to decide whether a candidate's score depends on a
    freshly covered delta at all. *)

val new_against : t -> baseline:t -> int
(** [new_against c ~baseline] counts outcomes in [c] absent from
    [baseline] — the [size(branches \ vBr)] term of the heuristic. *)

val percent : t -> Site.registry -> float
(** Covered outcomes as a percentage of the registry's total. *)

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true when every outcome in [a] is also in [b]. *)
