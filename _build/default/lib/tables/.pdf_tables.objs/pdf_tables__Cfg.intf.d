lib/tables/cfg.mli: Format
