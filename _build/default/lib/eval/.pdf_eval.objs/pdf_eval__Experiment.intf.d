lib/eval/experiment.mli: Pdf_subjects Tool
