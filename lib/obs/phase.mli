(** The instrumented phases of the fuzzer's per-execution work. *)

type t =
  | Exec  (** subject execution: parsing the candidate input *)
  | Cache  (** prefix-snapshot lookup, store and accounting *)
  | Score  (** heuristic scoring, including queue reranks *)
  | Queue  (** priority-queue push/pop/truncate maintenance *)
  | Gen
      (** candidate generation: path-novelty accounting, the
          hash-before-allocate dedupe probe and child construction in
          [addInputs] *)

val all : t list
val count : int
val index : t -> int
val name : t -> string
